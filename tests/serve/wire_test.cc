/**
 * @file
 * Wire-protocol framing tests: encode/decode roundtrips under
 * arbitrary chunking, rejection of malformed length prefixes, and the
 * strict Hello grammar (docs/serve.md).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/wire.hh"

namespace dcatch::serve {
namespace {

std::vector<Frame>
feedAll(FrameReader &reader, const std::string &bytes,
        std::size_t chunk)
{
    std::vector<Frame> out;
    for (std::size_t i = 0; i < bytes.size(); i += chunk) {
        std::size_t n = std::min(chunk, bytes.size() - i);
        EXPECT_TRUE(reader.feed(bytes.data() + i, n, out));
    }
    return out;
}

TEST(Wire, EncodeDecodeRoundtrip)
{
    const std::vector<Frame> frames = {
        {FrameType::Hello, "v1 2 run-7"},
        {FrameType::QueueMeta, "0 1 n0/q"},
        {FrameType::ThreadMeta, "3 0 1 worker"},
        {FrameType::Records, "line one\nline two\n"},
        {FrameType::End, ""},
        {FrameType::Report, std::string(100000, 'x')},
    };
    std::string bytes;
    for (const Frame &frame : frames)
        bytes += encodeFrame(frame.type, frame.payload);

    // Whole buffer at once, then byte-by-byte, then odd chunks: the
    // decoder must produce the identical frame list regardless of how
    // the stream fragments.
    for (std::size_t chunk : {bytes.size(), std::size_t{1},
                              std::size_t{7}, std::size_t{4096}}) {
        FrameReader reader;
        std::vector<Frame> got = feedAll(reader, bytes, chunk);
        ASSERT_EQ(got.size(), frames.size()) << "chunk=" << chunk;
        for (std::size_t i = 0; i < frames.size(); ++i) {
            EXPECT_EQ(got[i].type, frames[i].type);
            EXPECT_EQ(got[i].payload, frames[i].payload);
        }
        EXPECT_EQ(reader.pendingBytes(), 0u);
    }
}

TEST(Wire, PartialFrameStaysPending)
{
    std::string bytes = encodeFrame(FrameType::Records, "abcdef");
    FrameReader reader;
    std::vector<Frame> out;
    ASSERT_TRUE(reader.feed(bytes.data(), bytes.size() - 1, out));
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(reader.pendingBytes(), bytes.size() - 1);
    ASSERT_TRUE(reader.feed(bytes.data() + bytes.size() - 1, 1, out));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].payload, "abcdef");
    EXPECT_EQ(reader.pendingBytes(), 0u);
}

TEST(Wire, ZeroLengthPrefixPoisons)
{
    const char bytes[4] = {0, 0, 0, 0}; // length 0: no type byte
    FrameReader reader;
    std::vector<Frame> out;
    std::string error;
    EXPECT_FALSE(reader.feed(bytes, sizeof(bytes), out, &error));
    EXPECT_FALSE(error.empty());
    // Poisoned: even a well-formed frame is rejected afterwards.
    std::string good = encodeFrame(FrameType::End, "");
    EXPECT_FALSE(reader.feed(good.data(), good.size(), out));
    EXPECT_TRUE(out.empty());
}

TEST(Wire, OversizedLengthPrefixPoisons)
{
    std::uint32_t length = kMaxFrameLength + 1;
    char bytes[4];
    for (int i = 0; i < 4; ++i)
        bytes[i] = static_cast<char>((length >> (8 * i)) & 0xff);
    FrameReader reader;
    std::vector<Frame> out;
    std::string error;
    EXPECT_FALSE(reader.feed(bytes, sizeof(bytes), out, &error));
    EXPECT_NE(error.find("frame"), std::string::npos);
}

TEST(Wire, HelloRoundtrip)
{
    Hello hello{"MR-3274", 16};
    Hello parsed;
    std::string error;
    ASSERT_TRUE(parseHello(encodeHello(hello), parsed, &error)) << error;
    EXPECT_EQ(parsed.runId, "MR-3274");
    EXPECT_EQ(parsed.producers, 16);
}

TEST(Wire, HelloParseTable)
{
    struct Case
    {
        const char *payload;
        bool ok;
        const char *runId;
        int producers;
    };
    const Case cases[] = {
        {"v1 1 run", true, "run", 1},
        {"v1 65536 run with spaces", true, "run with spaces", 65536},
        {"", false, "", 0},
        {"v2 1 run", false, "", 0},       // unknown version
        {"v1 0 run", false, "", 0},       // producer count < 1
        {"v1 65537 run", false, "", 0},   // producer count too large
        {"v1 -3 run", false, "", 0},
        {"v1 two run", false, "", 0},
        {"v1 2x run", false, "", 0},      // trailing garbage in count
        {"v1 2", false, "", 0},           // missing run id
        {"v1 2 ", false, "", 0},          // empty run id
    };
    for (const Case &c : cases) {
        Hello parsed;
        std::string error;
        bool ok = parseHello(c.payload, parsed, &error);
        EXPECT_EQ(ok, c.ok) << "payload '" << c.payload << "': "
                            << error;
        if (ok && c.ok) {
            EXPECT_EQ(parsed.runId, c.runId);
            EXPECT_EQ(parsed.producers, c.producers);
        }
        if (!c.ok)
            EXPECT_FALSE(error.empty()) << c.payload;
    }
}

TEST(Wire, ClientFrameClassification)
{
    EXPECT_TRUE(isClientFrame(FrameType::Hello));
    EXPECT_TRUE(isClientFrame(FrameType::QueueMeta));
    EXPECT_TRUE(isClientFrame(FrameType::ThreadMeta));
    EXPECT_TRUE(isClientFrame(FrameType::Records));
    EXPECT_TRUE(isClientFrame(FrameType::End));
    EXPECT_FALSE(isClientFrame(FrameType::Candidate));
    EXPECT_FALSE(isClientFrame(FrameType::Report));
    EXPECT_FALSE(isClientFrame(FrameType::Error));
}

} // namespace
} // namespace dcatch::serve
