/**
 * @file
 * ServeCore tests, driven in-process (no sockets): the daemon's
 * candidate report must be byte-identical to the batch pipeline's
 * trace-analysis stage for every benchmark, producer count, shard
 * count, and delivery interleaving; malformed input must quarantine
 * the one session with a structured Error and leave the daemon
 * serving; online epoch detection must emit candidates and evict aged
 * accesses.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/benchmark.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "runtime/sim.hh"
#include "serve/service.hh"
#include "serve/session.hh"
#include "serve/wire.hh"
#include "trace/trace_store.hh"

namespace dcatch::serve {
namespace {

const char *const kBenchmarks[] = {"CA-1011", "HB-4539", "HB-4729",
                                   "MR-3274", "MR-4637", "ZK-1144",
                                   "ZK-1270"};

/** A benchmark's monitored trace (the Simulation owns the store). */
struct BenchTrace
{
    std::unique_ptr<sim::Simulation> sim;
    const trace::TraceStore *store = nullptr;
};

BenchTrace
buildBench(const std::string &id)
{
    const apps::Benchmark &bench = apps::benchmark(id);
    BenchTrace out;
    out.sim = std::make_unique<sim::Simulation>(bench.config);
    bench.build(*out.sim);
    out.sim->run();
    out.store = &out.sim->tracer().store();
    return out;
}

/** What the daemon must emit: the batch trace-analysis answer. */
std::string
expectedReport(const trace::TraceStore &store, const std::string &runId)
{
    hb::HbGraph graph(store, hb::HbGraph::Options());
    EXPECT_FALSE(graph.oom());
    detect::RaceDetector detector;
    return canonicalReport(runId, store.totalRecords(),
                           detector.detect(graph));
}

/**
 * Encode @p store as per-producer byte streams: every producer sends
 * Hello, producer 0 carries the metadata, records are partitioned
 * round-robin (each producer's subsequence stays seq-ascending), and
 * each stream ends with End.
 */
std::vector<std::string>
producerStreams(const trace::TraceStore &store, const std::string &runId,
                int producers, std::size_t batch)
{
    std::vector<std::string> streams(
        static_cast<std::size_t>(producers));
    for (std::string &stream : streams)
        stream = encodeFrame(FrameType::Hello,
                             encodeHello({runId, producers}));
    for (const auto &[id, queue] : store.queues())
        streams[0] += encodeFrame(
            FrameType::QueueMeta,
            std::to_string(queue.node) + " " +
                (queue.singleConsumer ? "1" : "0") + " " + id);
    for (const auto &[tid, thread] : store.threads())
        streams[0] += encodeFrame(
            FrameType::ThreadMeta,
            std::to_string(thread.thread) + " " +
                std::to_string(thread.node) + " " +
                (thread.handlerThread ? "1" : "0") + " " + thread.name);

    std::vector<trace::Record> merged = store.mergedRecords();
    std::vector<std::string> current(
        static_cast<std::size_t>(producers));
    std::vector<std::size_t> lines(static_cast<std::size_t>(producers),
                                   0);
    for (std::size_t i = 0; i < merged.size(); ++i) {
        std::size_t p = i % static_cast<std::size_t>(producers);
        merged[i].appendLine(store.symbols(), current[p]);
        current[p] += '\n';
        if (++lines[p] >= batch) {
            streams[p] +=
                encodeFrame(FrameType::Records, current[p]);
            current[p].clear();
            lines[p] = 0;
        }
    }
    for (std::size_t p = 0; p < streams.size(); ++p) {
        if (!current[p].empty())
            streams[p] += encodeFrame(FrameType::Records, current[p]);
        streams[p] += encodeFrame(FrameType::End, "");
    }
    return streams;
}

/** Frames each connection accumulated by the end of a drive. */
struct DriveResult
{
    std::vector<std::string> reports; ///< one per connection ("" = none)
    std::vector<std::string> errors;
    std::size_t candidateFrames = 0;
};

/**
 * Deliver the streams round-robin in @p chunk-byte slices — the
 * adversarial interleaving knob — then drain and collect the frames.
 */
DriveResult
drive(ServeCore &core, const std::vector<std::string> &streams,
      std::size_t chunk)
{
    std::vector<ConnId> conns;
    for (std::size_t p = 0; p < streams.size(); ++p)
        conns.push_back(core.connect());
    std::vector<std::size_t> offset(streams.size(), 0);
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t p = 0; p < streams.size(); ++p) {
            if (offset[p] >= streams[p].size())
                continue;
            std::size_t n =
                std::min(chunk, streams[p].size() - offset[p]);
            EXPECT_TRUE(core.deliver(conns[p],
                                     streams[p].data() + offset[p], n));
            offset[p] += n;
            progress = true;
        }
    }
    core.drain();

    DriveResult result;
    result.reports.resize(streams.size());
    result.errors.resize(streams.size());
    for (std::size_t p = 0; p < streams.size(); ++p) {
        for (const Frame &frame : core.poll(conns[p])) {
            if (frame.type == FrameType::Report)
                result.reports[p] = frame.payload;
            else if (frame.type == FrameType::Error)
                result.errors[p] = frame.payload;
            else if (frame.type == FrameType::Candidate)
                ++result.candidateFrames;
        }
        core.disconnect(conns[p]);
    }
    core.drain();
    return result;
}

// The tentpole acceptance: streaming every benchmark through the
// daemon yields a byte-identical candidate report for every
// producer count, shard count, and chunking.
TEST(ServeEquivalence, AllBenchmarksProducersJobsInterleavings)
{
    struct Config
    {
        int producers;
        int jobs;
        std::size_t batch;
        std::size_t chunk;
    };
    const Config configs[] = {
        {1, 1, 16, 1 << 20}, // single stream, single shard
        {1, 2, 7, 64},       // tiny frames, fragmented delivery
        {3, 1, 16, 33},      // watermark merge across 3 producers
        {3, 2, 5, 9},        // merge + shards + heavy fragmentation
    };
    for (const char *id : kBenchmarks) {
        BenchTrace bench = buildBench(id);
        std::string expected = expectedReport(*bench.store, id);
        for (const Config &config : configs) {
            ServeOptions options;
            options.jobs = config.jobs;
            options.window = 32; // several epochs per benchmark
            ServeCore core(options);
            DriveResult result =
                drive(core,
                      producerStreams(*bench.store, id,
                                      config.producers, config.batch),
                      config.chunk);
            for (int p = 0; p < config.producers; ++p) {
                EXPECT_EQ(result.reports[static_cast<std::size_t>(p)],
                          expected)
                    << id << " producers=" << config.producers
                    << " jobs=" << config.jobs
                    << " chunk=" << config.chunk << " producer=" << p;
            }
            core.shutdown();
        }
    }
}

// Byte-by-byte delivery: the most hostile fragmentation still
// reassembles to the identical report.
TEST(ServeEquivalence, ByteByByteDelivery)
{
    BenchTrace bench = buildBench("CA-1011");
    std::string expected = expectedReport(*bench.store, "CA-1011");
    ServeCore core(ServeOptions{});
    DriveResult result =
        drive(core, producerStreams(*bench.store, "CA-1011", 2, 8), 1);
    EXPECT_EQ(result.reports[0], expected);
    EXPECT_EQ(result.reports[1], expected);
}

// Epoch window of 1: every record closes an epoch; the final report
// is still exact and eviction has definitely run.
TEST(ServeEquivalence, WindowOfOne)
{
    BenchTrace bench = buildBench("ZK-1270");
    std::string expected = expectedReport(*bench.store, "ZK-1270");
    ServeOptions options;
    options.window = 1;
    options.retainEpochs = 1;
    ServeCore core(options);
    DriveResult result =
        drive(core, producerStreams(*bench.store, "ZK-1270", 1, 64),
              1 << 20);
    EXPECT_EQ(result.reports[0], expected);
    ServeStats stats = core.stats();
    EXPECT_GT(stats.epochsClosed, 0u);
    EXPECT_GT(stats.evictedAccesses, 0u);
}

// Watermark-merge slice size (--batch): purely an amortization
// granularity.  The report, every Candidate frame, and the epoch
// counters must be identical for any value, including the degenerate
// record-at-a-time slice.
TEST(ServeEquivalence, BatchSliceIsUnobservable)
{
    BenchTrace bench = buildBench("MR-3274");
    std::string expected = expectedReport(*bench.store, "MR-3274");

    std::string baseline_report;
    std::size_t baseline_candidates = 0;
    std::size_t baseline_epochs = 0;
    bool first = true;
    for (std::size_t batch : {std::size_t{1}, std::size_t{3},
                              std::size_t{1} << 20}) {
        ServeOptions options;
        options.window = 16;
        options.batch = batch;
        ServeCore core(options);
        DriveResult result =
            drive(core, producerStreams(*bench.store, "MR-3274", 3, 8),
                  17);
        ServeStats stats = core.stats();
        core.shutdown();
        SCOPED_TRACE("batch=" + std::to_string(batch));
        EXPECT_EQ(result.reports[0], expected);
        if (first) {
            baseline_report = result.reports[0];
            baseline_candidates = result.candidateFrames;
            baseline_epochs = stats.epochsClosed;
            first = false;
        } else {
            EXPECT_EQ(result.reports[0], baseline_report);
            EXPECT_EQ(result.candidateFrames, baseline_candidates);
            EXPECT_EQ(stats.epochsClosed, baseline_epochs);
        }
    }
}

// Concurrent sessions on one daemon: different runs, different
// shards, no cross-talk.
TEST(ServeEquivalence, ConcurrentSessions)
{
    BenchTrace mr = buildBench("MR-3274");
    BenchTrace zk = buildBench("ZK-1144");
    std::string expected_mr = expectedReport(*mr.store, "MR-3274");
    std::string expected_zk = expectedReport(*zk.store, "ZK-1144");

    ServeOptions options;
    options.jobs = 2;
    options.window = 16;
    ServeCore core(options);
    std::vector<std::string> streams_mr =
        producerStreams(*mr.store, "MR-3274", 2, 8);
    std::vector<std::string> streams_zk =
        producerStreams(*zk.store, "ZK-1144", 2, 8);

    // Interleave the two runs' connections by hand.
    std::vector<std::string> all = {streams_mr[0], streams_zk[0],
                                    streams_mr[1], streams_zk[1]};
    DriveResult result = drive(core, all, 41);
    EXPECT_EQ(result.reports[0], expected_mr);
    EXPECT_EQ(result.reports[2], expected_mr);
    EXPECT_EQ(result.reports[1], expected_zk);
    EXPECT_EQ(result.reports[3], expected_zk);

    ServeStats stats = core.stats();
    EXPECT_EQ(stats.sessionsOpened, 2u);
    EXPECT_EQ(stats.sessionsFinished, 2u);
    EXPECT_EQ(stats.sessionsQuarantined, 0u);
}

// Online candidates flow while the run streams, and every online
// emission references a variable the final (authoritative) report
// also knows about -- the preview never invents state.
TEST(ServeOnline, CandidatesEmittedOnline)
{
    BenchTrace bench = buildBench("MR-3274");
    ServeOptions options;
    options.window = 8;
    ServeCore core(options);
    DriveResult result =
        drive(core, producerStreams(*bench.store, "MR-3274", 1, 8),
              1 << 20);
    EXPECT_GT(result.candidateFrames, 0u);
    EXPECT_FALSE(result.reports[0].empty());
    ServeStats stats = core.stats();
    EXPECT_EQ(stats.onlineCandidates, result.candidateFrames);
    EXPECT_GT(stats.maxOnlineIndexBytes, 0u);
}

/** A handcrafted record line (valid under Record::fromLine). */
std::string
memLine(trace::SymbolPool &pool, std::uint64_t seq, int thread = 0)
{
    trace::Record rec;
    rec.type = trace::RecordType::MemRead;
    rec.node = 0;
    rec.thread = thread;
    rec.seq = seq;
    rec.site = pool.intern("site");
    rec.callstack = pool.intern("cs");
    rec.id = pool.intern("var:x");
    return rec.toLine(pool) + "\n";
}

/** Open a session with one producer and feed it @p frames. */
DriveResult
driveFrames(ServeCore &core, const std::string &runId,
            const std::vector<Frame> &frames)
{
    std::string stream =
        encodeFrame(FrameType::Hello, encodeHello({runId, 1}));
    for (const Frame &frame : frames)
        stream += encodeFrame(frame.type, frame.payload);
    stream += encodeFrame(FrameType::End, "");
    return drive(core, {stream}, 1 << 20);
}

// Satellite 1: every malformed input quarantines with a structured
// Error naming the defect; the daemon survives and a fresh session
// still produces the exact report.
TEST(ServeQuarantine, MalformedInputTable)
{
    trace::SymbolPool pool;
    struct Case
    {
        const char *name;
        std::vector<Frame> frames;
        const char *errorSubstr;
    };
    const std::vector<Case> cases = {
        {"malformed record line",
         {{FrameType::Records, "this is not a trace line\n"}},
         "malformed trace line"},
        {"out-of-order sequence",
         {{FrameType::Records,
           memLine(pool, 5) + memLine(pool, 3)}},
         "out-of-order sequence number 3 (after 5)"},
        {"duplicate sequence",
         {{FrameType::Records, memLine(pool, 4) + memLine(pool, 4)}},
         "out-of-order sequence number 4 (after 4)"},
        {"second Hello",
         {{FrameType::Hello, "v1 1 dup"}},
         "second Hello"},
        {"malformed QueueMeta",
         {{FrameType::QueueMeta, "not numbers"}},
         "malformed QueueMeta"},
        {"QueueMeta bad flag",
         {{FrameType::QueueMeta, "0 7 q"}},
         "malformed QueueMeta"},
        {"malformed ThreadMeta",
         {{FrameType::ThreadMeta, "1 2"}},
         "malformed ThreadMeta"},
        {"server-side frame from client",
         {{FrameType::Report, "forged"}},
         "server-side frame"},
    };

    for (const Case &c : cases) {
        ServeCore core(ServeOptions{});
        std::string run = std::string("bad-") + c.name;
        DriveResult result = driveFrames(core, run, c.frames);
        EXPECT_TRUE(result.reports[0].empty()) << c.name;
        ASSERT_FALSE(result.errors[0].empty()) << c.name;
        EXPECT_NE(result.errors[0].find(c.errorSubstr),
                  std::string::npos)
            << c.name << ": got '" << result.errors[0] << "'";
        ServeStats stats = core.stats();
        EXPECT_EQ(stats.sessionsQuarantined, 1u) << c.name;
        EXPECT_EQ(stats.sessionsFinished, 1u) << c.name;

        // The daemon is still healthy: a clean run on the same core
        // produces the exact batch answer.
        BenchTrace bench = buildBench("CA-1011");
        DriveResult clean = drive(
            core, producerStreams(*bench.store, "CA-1011", 1, 16),
            1 << 20);
        EXPECT_EQ(clean.reports[0],
                  expectedReport(*bench.store, "CA-1011"))
            << c.name;
        core.shutdown();
    }
}

// Two producers joining one run must announce the same producer
// count; a mismatch quarantines the session with an Error naming it.
TEST(ServeQuarantine, ProducerCountMismatch)
{
    ServeCore core(ServeOptions{});
    ConnId a = core.connect();
    ConnId b = core.connect();
    std::string hello_a =
        encodeFrame(FrameType::Hello, encodeHello({"run", 2}));
    std::string hello_b =
        encodeFrame(FrameType::Hello, encodeHello({"run", 3}));
    EXPECT_TRUE(core.deliver(a, hello_a.data(), hello_a.size()));
    core.drain();
    EXPECT_TRUE(core.deliver(b, hello_b.data(), hello_b.size()));
    core.drain();
    bool saw_error = false;
    for (const Frame &frame : core.poll(b))
        if (frame.type == FrameType::Error) {
            saw_error = true;
            EXPECT_NE(frame.payload.find("announced"),
                      std::string::npos);
        }
    EXPECT_TRUE(saw_error);
    // The quarantined run drains to reapable once its joined
    // producers are gone; only then does it fold into the stats.
    core.disconnect(a);
    core.disconnect(b);
    core.drain();
    EXPECT_EQ(core.stats().sessionsQuarantined, 1u);
}

// Protocol errors before a session binds are connection-fatal:
// deliver() returns false and the Error frame explains why.
TEST(ServeQuarantine, ConnectionLevelErrors)
{
    {
        // First frame is not Hello.
        ServeCore core(ServeOptions{});
        ConnId conn = core.connect();
        std::string bytes = encodeFrame(FrameType::Records, "x\n");
        EXPECT_FALSE(core.deliver(conn, bytes.data(), bytes.size()));
        std::vector<Frame> frames = core.poll(conn);
        ASSERT_FALSE(frames.empty());
        EXPECT_EQ(frames[0].type, FrameType::Error);
        core.disconnect(conn);
    }
    {
        // Unparseable Hello payload.
        ServeCore core(ServeOptions{});
        ConnId conn = core.connect();
        std::string bytes = encodeFrame(FrameType::Hello, "v9 1 run");
        EXPECT_FALSE(core.deliver(conn, bytes.data(), bytes.size()));
        core.disconnect(conn);
    }
    {
        // Framing violation: a zero length prefix.
        ServeCore core(ServeOptions{});
        ConnId conn = core.connect();
        const char zeros[4] = {0, 0, 0, 0};
        EXPECT_FALSE(core.deliver(conn, zeros, sizeof(zeros)));
        core.disconnect(conn);
    }
}

// A producer that vanishes without End still lets the run finalize:
// the disconnect is an implicit End, and the surviving producer gets
// the full report (it delivered every record).
TEST(ServeQuarantine, DisconnectWithoutEndFinalizes)
{
    BenchTrace bench = buildBench("HB-4539");
    std::string expected = expectedReport(*bench.store, "HB-4539");

    ServeCore core(ServeOptions{});
    ConnId a = core.connect();
    ConnId b = core.connect();
    // Producer a carries everything; producer b only says Hello.
    std::vector<std::string> streams =
        producerStreams(*bench.store, "HB-4539", 1, 32);
    // Rewrite a's Hello to announce 2 producers.
    std::string stream_a =
        encodeFrame(FrameType::Hello, encodeHello({"HB-4539", 2})) +
        streams[0].substr(
            encodeFrame(FrameType::Hello, encodeHello({"HB-4539", 1}))
                .size());
    std::string stream_b =
        encodeFrame(FrameType::Hello, encodeHello({"HB-4539", 2}));
    EXPECT_TRUE(core.deliver(b, stream_b.data(), stream_b.size()));
    EXPECT_TRUE(core.deliver(a, stream_a.data(), stream_a.size()));
    core.drain();
    // Producer b drops its connection; the session treats it as End.
    core.disconnect(b);
    core.drain();
    std::string report;
    for (const Frame &frame : core.poll(a))
        if (frame.type == FrameType::Report)
            report = frame.payload;
    EXPECT_EQ(report, expected);
    core.disconnect(a);
}

} // namespace
} // namespace dcatch::serve
