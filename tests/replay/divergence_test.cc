/**
 * @file
 * Divergence detection: mutate a recorded ScheduleLog (truncate, drop,
 * swap, corrupt the chosen thread, inject a bogus runnable tid) and
 * assert ReplayPolicy reports a structured divergence — the exact
 * decision index where the mutation is deterministic, and a useful
 * runnable-set diff — instead of hanging, crashing, or silently
 * steering a different run.
 */

#include <gtest/gtest.h>

#include "apps/benchmark.hh"
#include "replay/driver.hh"
#include "replay/policies.hh"
#include "runtime/sim.hh"

namespace dcatch::replay {
namespace {

class DivergenceTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        const apps::Benchmark &bench = apps::benchmark("ZK-1144");
        sim::Simulation sim(bench.config);
        recorded_ = new ScheduleLog();
        attachRecorder(sim, *recorded_);
        bench.build(sim);
        sim::RunResult run = sim.run();
        recorded_->header = headerFromConfig(bench.config);
        recorded_->header.benchmarkId = bench.id;
        recorded_->header.label = "divergence-test";
        for (const sim::FailureEvent &failure : run.failures)
            recorded_->header.expectedFailureKinds.push_back(
                sim::failureKindName(failure.kind));
        recorded_->header.traceChecksum =
            sim.tracer().store().contentDigest();
        recorded_->header.traceRecords =
            sim.tracer().store().totalRecords();
        ASSERT_GT(recorded_->size(), 10u);
    }

    static void
    TearDownTestSuite()
    {
        delete recorded_;
        recorded_ = nullptr;
    }

    ScheduleLog
    copy() const
    {
        return *recorded_;
    }

    static ScheduleLog *recorded_;
};

ScheduleLog *DivergenceTest::recorded_ = nullptr;

TEST_F(DivergenceTest, SanityUnmutatedLogReplaysIdentically)
{
    ReplayOutcome outcome = replayLog(copy());
    ASSERT_TRUE(outcome.identical()) << outcome.divergence.describe();
}

TEST_F(DivergenceTest, TruncationReportsExhaustionAtExactIndex)
{
    ScheduleLog log = copy();
    std::size_t keep = log.size() / 2;
    log.decisions().resize(keep);
    ReplayOutcome outcome = replayLog(log);
    ASSERT_TRUE(outcome.diverged);
    EXPECT_EQ(outcome.divergence.index, keep);
    EXPECT_NE(outcome.divergence.reason.find("exhausted"),
              std::string::npos)
        << outcome.divergence.reason;
    // The live runnable set at the break point is reported.
    EXPECT_FALSE(outcome.divergence.actualRunnable.empty());
    EXPECT_FALSE(outcome.identical());
}

TEST_F(DivergenceTest, BogusRunnableTidReportsMismatchAtExactIndex)
{
    ScheduleLog log = copy();
    std::size_t where = log.size() / 3;
    log.decisions()[where].runnable.push_back(999);
    ReplayOutcome outcome = replayLog(log);
    ASSERT_TRUE(outcome.diverged);
    EXPECT_EQ(outcome.divergence.index, where);
    EXPECT_EQ(outcome.divergence.reason, "runnable-set mismatch");
    // The diff names the phantom thread on the "recorded but not
    // runnable" side.
    std::string report = outcome.divergence.describe();
    EXPECT_NE(report.find("t999 was recorded runnable but is not"),
              std::string::npos)
        << report;
    EXPECT_EQ(outcome.divergence.expectedRunnable,
              log.decisions()[where].runnable);
    EXPECT_FALSE(outcome.divergence.actualRunnable.empty());
}

TEST_F(DivergenceTest, CorruptChosenReportsNotRunnableAtExactIndex)
{
    ScheduleLog log = copy();
    std::size_t where = log.size() / 2;
    log.decisions()[where].chosen = 999; // not in the runnable set
    ReplayOutcome outcome = replayLog(log);
    ASSERT_TRUE(outcome.diverged);
    EXPECT_EQ(outcome.divergence.index, where);
    EXPECT_NE(outcome.divergence.reason.find(
                  "recorded choice t999 is not runnable"),
              std::string::npos)
        << outcome.divergence.reason;
}

TEST_F(DivergenceTest, DroppedDecisionNeverReplaysIdentically)
{
    ScheduleLog log = copy();
    std::size_t where = log.size() / 3;
    log.decisions().erase(log.decisions().begin() +
                          static_cast<std::ptrdiff_t>(where));
    ReplayOutcome outcome = replayLog(log);
    // The mutation may surface as an immediate mismatch or only later
    // (e.g. as an undrained/exhausted log), but it must be caught.
    EXPECT_FALSE(outcome.identical());
    if (outcome.diverged)
        EXPECT_GE(outcome.divergence.index, where);
}

TEST_F(DivergenceTest, SwappedDecisionsNeverReplayIdentically)
{
    ScheduleLog log = copy();
    // Find two adjacent decisions with different choices so the swap
    // actually changes the schedule.
    std::size_t where = 0;
    for (std::size_t i = 0; i + 1 < log.size(); ++i) {
        if (log.at(i).chosen != log.at(i + 1).chosen) {
            where = i;
            break;
        }
    }
    std::swap(log.decisions()[where], log.decisions()[where + 1]);
    ReplayOutcome outcome = replayLog(log);
    EXPECT_FALSE(outcome.identical());
    if (outcome.diverged)
        EXPECT_GE(outcome.divergence.index, where);
}

} // namespace
} // namespace dcatch::replay
