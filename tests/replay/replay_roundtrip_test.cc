/**
 * @file
 * End-to-end record/replay property: for every registered benchmark,
 * under both the FIFO and seeded-random policies, recording a run and
 * replaying its ScheduleLog reproduces the run exactly — every
 * recorded decision is consumed, the trace is byte-identical, and
 * detection over the replayed trace reports the same candidates.
 * Also exercises the repro-bundle path end to end: the pipeline's
 * monitored and harmful bundles replay identically from disk, and a
 * harmful bundle reproduces the recorded failure kinds.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "dcatch/pipeline.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "replay/driver.hh"
#include "replay/policies.hh"

namespace dcatch {
namespace {

std::string
traceText(const trace::TraceStore &store)
{
    std::string all;
    for (auto it = store.merged().begin(); it != store.merged().end();
         ++it)
        all += (*it).toLine() + "\n";
    return all;
}

std::vector<std::string>
candidateKeys(const trace::TraceStore &store)
{
    hb::HbGraph graph(store);
    detect::RaceDetector detector;
    std::vector<std::string> keys;
    for (const auto &cand : detector.detect(graph))
        keys.push_back(cand.callstackKey());
    return keys;
}

using Case = std::tuple<const char *, sim::PolicyKind>;

class ReplayRoundTripTest : public ::testing::TestWithParam<Case>
{
};

TEST_P(ReplayRoundTripTest, RecordedRunReplaysIdentically)
{
    const apps::Benchmark &bench =
        apps::benchmark(std::get<0>(GetParam()));
    sim::SimConfig config = bench.config;
    config.policy = std::get<1>(GetParam());
    if (config.policy == sim::PolicyKind::Random)
        config.seed = 7919;

    sim::Simulation sim(config);
    replay::ScheduleLog log;
    replay::attachRecorder(sim, log);
    bench.build(sim);
    sim::RunResult run = sim.run();

    log.header = replay::headerFromConfig(config);
    log.header.benchmarkId = bench.id;
    log.header.label = "test";
    for (const sim::FailureEvent &failure : run.failures)
        log.header.expectedFailureKinds.push_back(
            sim::failureKindName(failure.kind));
    log.header.traceChecksum = sim.tracer().store().contentDigest();
    log.header.traceRecords = sim.tracer().store().totalRecords();
    ASSERT_GT(log.size(), 0u);

    // Survive serialization too: replay the decoded bytes.
    replay::ScheduleLog decoded = replay::ScheduleLog::decode(log.encode());
    replay::ReplayOutcome outcome = replay::replayLog(decoded);

    EXPECT_FALSE(outcome.diverged) << outcome.divergence.describe();
    EXPECT_EQ(outcome.decisionsUsed, log.size());
    EXPECT_TRUE(outcome.checksumMatch);
    EXPECT_TRUE(outcome.failureKindsMatch);
    EXPECT_TRUE(outcome.identical());
    EXPECT_EQ(outcome.run.status, run.status);

    // Byte-identical trace, not merely an equal digest.
    EXPECT_EQ(traceText(outcome.trace),
              traceText(sim.tracer().store()));
    // Same detection output over the replayed trace.
    EXPECT_EQ(candidateKeys(outcome.trace),
              candidateKeys(sim.tracer().store()));
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, ReplayRoundTripTest,
    ::testing::Combine(::testing::Values("CA-1011", "HB-4539", "HB-4729",
                                         "MR-3274", "MR-4637", "ZK-1144",
                                         "ZK-1270"),
                       ::testing::Values(sim::PolicyKind::Fifo,
                                         sim::PolicyKind::Random)),
    [](const ::testing::TestParamInfo<Case> &info) {
        std::string name = std::get<0>(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + (std::get<1>(info.param) == sim::PolicyKind::Fifo
                           ? "_fifo"
                           : "_random");
    });

TEST(ReplayBundleTest, PipelineBundlesReplayFromDisk)
{
    const apps::Benchmark &bench = apps::benchmark("MR-3274");
    PipelineOptions options;
    options.runTrigger = true;
    options.reproDir = ::testing::TempDir() + "replay_bundle_test";
    PipelineResult result = runPipeline(bench, options);

    ASSERT_TRUE(result.scheduleRecorded);
    ASSERT_FALSE(result.monitoredBundleDir.empty());
    EXPECT_EQ(result.metrics.scheduleDecisions,
              result.monitoredSchedule->size());

    replay::ReplayOutcome monitored =
        replay::replayBundle(result.monitoredBundleDir);
    EXPECT_TRUE(monitored.identical())
        << monitored.divergence.describe();
    EXPECT_EQ(monitored.header.label, "monitored");

    // At least one harmful report (the known MR-3274 bug) with a
    // bundle that reproduces the recorded failure kinds from disk.
    int harmful = 0;
    for (const trigger::TriggerReport &report : result.triggered) {
        if (report.cls != trigger::TriggerClass::Harmful)
            continue;
        ++harmful;
        ASSERT_FALSE(report.bundleDir.empty());
        replay::ReplayOutcome outcome =
            replay::replayBundle(report.bundleDir);
        EXPECT_TRUE(outcome.identical())
            << outcome.divergence.describe();
        EXPECT_TRUE(outcome.run.failed())
            << "harmful bundle must reproduce the failure";
        EXPECT_TRUE(outcome.header.hasTrigger);
    }
    EXPECT_GT(harmful, 0);
}

} // namespace
} // namespace dcatch
