/**
 * @file
 * Unit tests of the ScheduleLog binary format: encode/decode
 * round-trips (header, trigger section, thread table, decisions),
 * malformed-decision rejection at encode time, and corruption
 * detection (magic, checksum, truncation, trailing bytes) at decode
 * time.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <functional>

#include "replay/schedule_log.hh"

namespace dcatch::replay {
namespace {

ScheduleLog
sampleLog()
{
    ScheduleLog log;
    log.header.benchmarkId = "MR-3274";
    log.header.label = "trigger a-then-b";
    log.header.seed = 7919;
    log.header.policy = 1;
    log.header.maxSteps = 100000;
    log.header.rpcWorkersPerNode = 2;
    log.header.loopHangBound = 64;
    log.header.fullMemoryTrace = true;
    log.header.traceChecksum = 0xdeadbeefcafef00dull;
    log.header.traceRecords = 4242;
    log.header.expectedFailureKinds = {"fatal-log", "hang"};
    log.header.hasTrigger = true;
    log.header.trigger.first = {"site-a", "main>f>g", 3, "moved up"};
    log.header.trigger.second = {"site-b", "", 0, ""};
    log.header.trigger.order = "a-then-b";

    log.noteThreadName(0, "main");
    log.noteThreadName(2, "rpc-worker");

    log.append({{0}, 0});
    log.append({{0, 1, 2}, 1});
    log.append({{1, 2, 7}, 7}); // gap in the tid sequence
    return log;
}

TEST(ScheduleLogTest, RoundTripPreservesEverything)
{
    ScheduleLog log = sampleLog();
    ScheduleLog back = ScheduleLog::decode(log.encode());

    EXPECT_EQ(back.header.benchmarkId, log.header.benchmarkId);
    EXPECT_EQ(back.header.label, log.header.label);
    EXPECT_EQ(back.header.seed, log.header.seed);
    EXPECT_EQ(back.header.policy, log.header.policy);
    EXPECT_EQ(back.header.maxSteps, log.header.maxSteps);
    EXPECT_EQ(back.header.rpcWorkersPerNode,
              log.header.rpcWorkersPerNode);
    EXPECT_EQ(back.header.loopHangBound, log.header.loopHangBound);
    EXPECT_EQ(back.header.fullMemoryTrace, log.header.fullMemoryTrace);
    EXPECT_EQ(back.header.traceChecksum, log.header.traceChecksum);
    EXPECT_EQ(back.header.traceRecords, log.header.traceRecords);
    EXPECT_EQ(back.header.expectedFailureKinds,
              log.header.expectedFailureKinds);
    ASSERT_TRUE(back.header.hasTrigger);
    EXPECT_EQ(back.header.trigger.first.site, "site-a");
    EXPECT_EQ(back.header.trigger.first.callstack, "main>f>g");
    EXPECT_EQ(back.header.trigger.first.instance, 3);
    EXPECT_EQ(back.header.trigger.first.note, "moved up");
    EXPECT_EQ(back.header.trigger.second.site, "site-b");
    EXPECT_EQ(back.header.trigger.order, "a-then-b");

    EXPECT_EQ(back.threadNames(), log.threadNames());
    EXPECT_EQ(back.threadName(0), "main");
    EXPECT_EQ(back.threadName(1), "");
    EXPECT_EQ(back.threadLabel(2), "t2(rpc-worker)");
    EXPECT_EQ(back.threadLabel(1), "t1");

    ASSERT_EQ(back.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_EQ(back.at(i).runnable, log.at(i).runnable) << i;
        EXPECT_EQ(back.at(i).chosen, log.at(i).chosen) << i;
    }
    // Re-encoding is byte-stable.
    EXPECT_EQ(back.encode(), log.encode());
}

TEST(ScheduleLogTest, EmptyLogRoundTrips)
{
    ScheduleLog log;
    ScheduleLog back = ScheduleLog::decode(log.encode());
    EXPECT_EQ(back.size(), 0u);
    EXPECT_FALSE(back.header.hasTrigger);
}

TEST(ScheduleLogTest, FileRoundTrip)
{
    std::string path = ::testing::TempDir() + "schedule_log_test.bin";
    ScheduleLog log = sampleLog();
    log.writeToFile(path);
    ScheduleLog back = ScheduleLog::loadFromFile(path);
    EXPECT_EQ(back.encode(), log.encode());
}

TEST(ScheduleLogTest, ConfigRoundTrip)
{
    sim::SimConfig config;
    config.policy = sim::PolicyKind::Random;
    config.seed = 31337;
    config.maxSteps = 5000;
    ScheduleHeader header = headerFromConfig(config);
    sim::SimConfig back = configFromHeader(header);
    EXPECT_EQ(back.policy, config.policy);
    EXPECT_EQ(back.seed, config.seed);
    EXPECT_EQ(back.maxSteps, config.maxSteps);
    EXPECT_EQ(back.rpcWorkersPerNode, config.rpcWorkersPerNode);
    EXPECT_EQ(back.loopHangBound, config.loopHangBound);

    header.policy = 99;
    EXPECT_THROW(configFromHeader(header), ScheduleLogError);
}

TEST(ScheduleLogTest, EncodeRejectsMalformedDecisions)
{
    ScheduleLog log;
    log.append({{3, 1}, 1}); // not strictly ascending
    EXPECT_THROW(log.encode(), ScheduleLogError);

    ScheduleLog log2;
    log2.append({{0, 1}, 5}); // chosen not in the runnable set
    EXPECT_THROW(log2.encode(), ScheduleLogError);

    ScheduleLog log3;
    log3.append({{}, -1}); // empty runnable set
    EXPECT_THROW(log3.encode(), ScheduleLogError);
}

TEST(ScheduleLogTest, DecodeRejectsBadMagic)
{
    std::string bytes = sampleLog().encode();
    bytes[0] = 'X';
    EXPECT_THROW(ScheduleLog::decode(bytes), ScheduleLogError);
    EXPECT_THROW(ScheduleLog::decode(""), ScheduleLogError);
}

TEST(ScheduleLogTest, DecodeRejectsFlippedByte)
{
    std::string bytes = sampleLog().encode();
    bytes[bytes.size() / 2] ^= 0x40;
    EXPECT_THROW(ScheduleLog::decode(bytes), ScheduleLogError);
}

TEST(ScheduleLogTest, DecodeRejectsTruncation)
{
    std::string bytes = sampleLog().encode();
    for (std::size_t keep : {bytes.size() - 1, bytes.size() / 2,
                             std::size_t(5)})
        EXPECT_THROW(ScheduleLog::decode(bytes.substr(0, keep)),
                     ScheduleLogError)
            << "kept " << keep << " bytes";
}

TEST(ScheduleLogTest, DecodeRejectsTrailingGarbage)
{
    std::string bytes = sampleLog().encode() + "junk";
    EXPECT_THROW(ScheduleLog::decode(bytes), ScheduleLogError);
}

// --- Table-driven corruption paths ---------------------------------
//
// Mirrors the malformed-trace-line tests: every way the on-disk bytes
// can rot must surface as a ScheduleLogError whose message names the
// failure, never as garbage data or UB.  Mutations that keep the
// checksum valid (re-checksummed below) prove the *structural* checks
// fire on their own, not just the checksum.

/** FNV-1a as schedule_log.cc computes it over the body bytes. */
std::uint64_t
fnv64(const std::string &bytes, std::size_t count)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (std::size_t i = 0; i < count; ++i) {
        hash ^= static_cast<unsigned char>(bytes[i]);
        hash *= 1099511628211ull;
    }
    return hash;
}

/** Recompute the trailing checksum after mutating the body. */
std::string
rechecksum(std::string bytes)
{
    std::size_t body = bytes.size() - 8;
    std::uint64_t checksum = fnv64(bytes, body);
    for (int i = 0; i < 8; ++i)
        bytes[body + static_cast<std::size_t>(i)] =
            static_cast<char>((checksum >> (8 * i)) & 0xff);
    return bytes;
}

struct CorruptionCase
{
    const char *name;
    std::function<std::string(std::string)> corrupt;
    /** Substring the structured error message must contain. */
    const char *expect;
};

TEST(ScheduleLogTest, CorruptionTable)
{
    // Encoded layout of sampleLog(): magic (4 bytes), version varint
    // (1 byte, 0x01), header, thread table, decisions — the last body
    // byte is the final decision's chosen-index varint (index 2 into
    // its 3-thread runnable table) — then an 8-byte checksum.
    const std::vector<CorruptionCase> cases = {
        {"bad magic",
         [](std::string b) { b[0] = 'X'; return b; },
         "missing DCSL magic"},
        {"empty input",
         [](std::string) { return std::string(); },
         "missing DCSL magic"},
        {"checksum mismatch",
         [](std::string b) { b[b.size() / 2] ^= 0x40; return b; },
         "checksum mismatch"},
        {"truncated to half",
         [](std::string b) { return b.substr(0, b.size() / 2); },
         "checksum mismatch"},
        {"truncated inside the checksum",
         [](std::string b) { return b.substr(0, b.size() - 3); },
         "checksum mismatch"},
        {"unsupported version (re-checksummed)",
         [](std::string b) { b[4] = 0x02; return rechecksum(b); },
         "unsupported version"},
        {"chosen thread-table index out of range (re-checksummed)",
         [](std::string b) {
             // 99 >= the 3-entry runnable table of the last decision.
             b[b.size() - 9] = 0x63;
             return rechecksum(b);
         },
         "chose index 99 of 3"},
        {"trailing bytes (re-checksummed)",
         [](std::string b) {
             b.insert(b.size() - 8, "\x01\x01", 2);
             return rechecksum(b);
         },
         "trailing bytes"},
    };

    const std::string bytes = sampleLog().encode();
    for (const CorruptionCase &c : cases) {
        SCOPED_TRACE(c.name);
        try {
            ScheduleLog::decode(c.corrupt(bytes));
            ADD_FAILURE() << "decode accepted corrupt input";
        } catch (const ScheduleLogError &error) {
            EXPECT_NE(std::string(error.what()).find(c.expect),
                      std::string::npos)
                << "error message was: " << error.what();
        }
    }
}

TEST(ScheduleLogTest, TruncatedFileRaisesStructuredError)
{
    // File-level truncation (a crashed writer, a partial copy): every
    // prefix of the on-disk bytes must be rejected on load.
    std::string bytes = sampleLog().encode();
    std::string path =
        ::testing::TempDir() + "schedule_log_truncated.bin";
    for (std::size_t keep :
         {std::size_t(0), std::size_t(3), bytes.size() / 2,
          bytes.size() - 1}) {
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(keep));
        out.close();
        EXPECT_THROW(ScheduleLog::loadFromFile(path),
                     ScheduleLogError)
            << "kept " << keep << " of " << bytes.size() << " bytes";
    }
    EXPECT_THROW(ScheduleLog::loadFromFile(path + ".does-not-exist"),
                 ScheduleLogError);
}

} // namespace
} // namespace dcatch::replay
