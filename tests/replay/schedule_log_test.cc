/**
 * @file
 * Unit tests of the ScheduleLog binary format: encode/decode
 * round-trips (header, trigger section, thread table, decisions),
 * malformed-decision rejection at encode time, and corruption
 * detection (magic, checksum, truncation, trailing bytes) at decode
 * time.
 */

#include <gtest/gtest.h>

#include "replay/schedule_log.hh"

namespace dcatch::replay {
namespace {

ScheduleLog
sampleLog()
{
    ScheduleLog log;
    log.header.benchmarkId = "MR-3274";
    log.header.label = "trigger a-then-b";
    log.header.seed = 7919;
    log.header.policy = 1;
    log.header.maxSteps = 100000;
    log.header.rpcWorkersPerNode = 2;
    log.header.loopHangBound = 64;
    log.header.fullMemoryTrace = true;
    log.header.traceChecksum = 0xdeadbeefcafef00dull;
    log.header.traceRecords = 4242;
    log.header.expectedFailureKinds = {"fatal-log", "hang"};
    log.header.hasTrigger = true;
    log.header.trigger.first = {"site-a", "main>f>g", 3, "moved up"};
    log.header.trigger.second = {"site-b", "", 0, ""};
    log.header.trigger.order = "a-then-b";

    log.noteThreadName(0, "main");
    log.noteThreadName(2, "rpc-worker");

    log.append({{0}, 0});
    log.append({{0, 1, 2}, 1});
    log.append({{1, 2, 7}, 7}); // gap in the tid sequence
    return log;
}

TEST(ScheduleLogTest, RoundTripPreservesEverything)
{
    ScheduleLog log = sampleLog();
    ScheduleLog back = ScheduleLog::decode(log.encode());

    EXPECT_EQ(back.header.benchmarkId, log.header.benchmarkId);
    EXPECT_EQ(back.header.label, log.header.label);
    EXPECT_EQ(back.header.seed, log.header.seed);
    EXPECT_EQ(back.header.policy, log.header.policy);
    EXPECT_EQ(back.header.maxSteps, log.header.maxSteps);
    EXPECT_EQ(back.header.rpcWorkersPerNode,
              log.header.rpcWorkersPerNode);
    EXPECT_EQ(back.header.loopHangBound, log.header.loopHangBound);
    EXPECT_EQ(back.header.fullMemoryTrace, log.header.fullMemoryTrace);
    EXPECT_EQ(back.header.traceChecksum, log.header.traceChecksum);
    EXPECT_EQ(back.header.traceRecords, log.header.traceRecords);
    EXPECT_EQ(back.header.expectedFailureKinds,
              log.header.expectedFailureKinds);
    ASSERT_TRUE(back.header.hasTrigger);
    EXPECT_EQ(back.header.trigger.first.site, "site-a");
    EXPECT_EQ(back.header.trigger.first.callstack, "main>f>g");
    EXPECT_EQ(back.header.trigger.first.instance, 3);
    EXPECT_EQ(back.header.trigger.first.note, "moved up");
    EXPECT_EQ(back.header.trigger.second.site, "site-b");
    EXPECT_EQ(back.header.trigger.order, "a-then-b");

    EXPECT_EQ(back.threadNames(), log.threadNames());
    EXPECT_EQ(back.threadName(0), "main");
    EXPECT_EQ(back.threadName(1), "");
    EXPECT_EQ(back.threadLabel(2), "t2(rpc-worker)");
    EXPECT_EQ(back.threadLabel(1), "t1");

    ASSERT_EQ(back.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_EQ(back.at(i).runnable, log.at(i).runnable) << i;
        EXPECT_EQ(back.at(i).chosen, log.at(i).chosen) << i;
    }
    // Re-encoding is byte-stable.
    EXPECT_EQ(back.encode(), log.encode());
}

TEST(ScheduleLogTest, EmptyLogRoundTrips)
{
    ScheduleLog log;
    ScheduleLog back = ScheduleLog::decode(log.encode());
    EXPECT_EQ(back.size(), 0u);
    EXPECT_FALSE(back.header.hasTrigger);
}

TEST(ScheduleLogTest, FileRoundTrip)
{
    std::string path = ::testing::TempDir() + "schedule_log_test.bin";
    ScheduleLog log = sampleLog();
    log.writeToFile(path);
    ScheduleLog back = ScheduleLog::loadFromFile(path);
    EXPECT_EQ(back.encode(), log.encode());
}

TEST(ScheduleLogTest, ConfigRoundTrip)
{
    sim::SimConfig config;
    config.policy = sim::PolicyKind::Random;
    config.seed = 31337;
    config.maxSteps = 5000;
    ScheduleHeader header = headerFromConfig(config);
    sim::SimConfig back = configFromHeader(header);
    EXPECT_EQ(back.policy, config.policy);
    EXPECT_EQ(back.seed, config.seed);
    EXPECT_EQ(back.maxSteps, config.maxSteps);
    EXPECT_EQ(back.rpcWorkersPerNode, config.rpcWorkersPerNode);
    EXPECT_EQ(back.loopHangBound, config.loopHangBound);

    header.policy = 99;
    EXPECT_THROW(configFromHeader(header), ScheduleLogError);
}

TEST(ScheduleLogTest, EncodeRejectsMalformedDecisions)
{
    ScheduleLog log;
    log.append({{3, 1}, 1}); // not strictly ascending
    EXPECT_THROW(log.encode(), ScheduleLogError);

    ScheduleLog log2;
    log2.append({{0, 1}, 5}); // chosen not in the runnable set
    EXPECT_THROW(log2.encode(), ScheduleLogError);

    ScheduleLog log3;
    log3.append({{}, -1}); // empty runnable set
    EXPECT_THROW(log3.encode(), ScheduleLogError);
}

TEST(ScheduleLogTest, DecodeRejectsBadMagic)
{
    std::string bytes = sampleLog().encode();
    bytes[0] = 'X';
    EXPECT_THROW(ScheduleLog::decode(bytes), ScheduleLogError);
    EXPECT_THROW(ScheduleLog::decode(""), ScheduleLogError);
}

TEST(ScheduleLogTest, DecodeRejectsFlippedByte)
{
    std::string bytes = sampleLog().encode();
    bytes[bytes.size() / 2] ^= 0x40;
    EXPECT_THROW(ScheduleLog::decode(bytes), ScheduleLogError);
}

TEST(ScheduleLogTest, DecodeRejectsTruncation)
{
    std::string bytes = sampleLog().encode();
    for (std::size_t keep : {bytes.size() - 1, bytes.size() / 2,
                             std::size_t(5)})
        EXPECT_THROW(ScheduleLog::decode(bytes.substr(0, keep)),
                     ScheduleLogError)
            << "kept " << keep << " bytes";
}

TEST(ScheduleLogTest, DecodeRejectsTrailingGarbage)
{
    std::string bytes = sampleLog().encode() + "junk";
    EXPECT_THROW(ScheduleLog::decode(bytes), ScheduleLogError);
}

} // namespace
} // namespace dcatch::replay
