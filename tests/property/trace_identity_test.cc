/**
 * @file
 * Byte-identity contract of the interned columnar trace substrate
 * (docs/trace_format.md): for every benchmark and scheduling policy,
 * and for analysis jobs ∈ {1, 8},
 *
 *  - the serialized per-thread trace files are byte-identical across
 *    worker counts (the SoA + symbol-pool representation is an
 *    in-memory optimisation only — it must never leak into the
 *    on-disk format);
 *  - contentDigest() and serializedBytes() agree with the files
 *    actually written;
 *  - loading the files back yields a store with the same digest,
 *    size, and line sequence (full decode/encode round trip through
 *    the interner).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>

#include "dcatch/pipeline.hh"

namespace dcatch {
namespace {

namespace fs = std::filesystem;

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** relpath -> bytes for every trace file under @p dir. */
std::map<std::string, std::string>
snapshotDir(const std::string &dir)
{
    std::map<std::string, std::string> files;
    for (const auto &entry : fs::recursive_directory_iterator(dir))
        if (entry.is_regular_file())
            files[fs::relative(entry.path(), dir).string()] =
                readFile(entry.path());
    return files;
}

struct TraceSnapshot
{
    std::uint64_t digest = 0;
    std::size_t serializedBytes = 0;
    std::size_t records = 0;
    std::map<std::string, std::string> files;
};

TraceSnapshot
runWith(const char *bench_id, sim::PolicyKind policy, int jobs,
        const std::string &dir)
{
    apps::Benchmark bench = apps::benchmark(bench_id);
    bench.config.policy = policy;
    bench.config.seed = 424242;

    PipelineOptions options;
    options.measureBase = false;
    options.runTrigger = false;
    options.jobs = jobs;
    PipelineResult result = runPipeline(bench, options);

    fs::remove_all(dir);
    result.monitoredTrace.writeToDirectory(dir);

    TraceSnapshot snap;
    snap.digest = result.monitoredTrace.contentDigest();
    snap.serializedBytes = result.monitoredTrace.serializedBytes();
    snap.records = result.monitoredTrace.totalRecords();
    snap.files = snapshotDir(dir);
    return snap;
}

using Param = std::tuple<const char *, sim::PolicyKind>;

class TraceIdentityTest : public ::testing::TestWithParam<Param>
{
};

TEST_P(TraceIdentityTest, FilesAndDigestAreByteIdenticalAcrossJobs)
{
    const char *bench_id = std::get<0>(GetParam());
    sim::PolicyKind policy = std::get<1>(GetParam());
    const char *policy_name =
        policy == sim::PolicyKind::Fifo ? "fifo" : "random";
    std::string dir = fs::temp_directory_path().string() +
                      "/dcatch-trace-ident-" + bench_id + "-" +
                      policy_name;

    TraceSnapshot serial = runWith(bench_id, policy, 1, dir + "-j1");
    TraceSnapshot parallel = runWith(bench_id, policy, 8, dir + "-j8");

    // Worker count is unobservable in the serialized trace.
    EXPECT_EQ(serial.digest, parallel.digest);
    EXPECT_EQ(serial.serializedBytes, parallel.serializedBytes);
    EXPECT_EQ(serial.records, parallel.records);
    ASSERT_EQ(serial.files.size(), parallel.files.size());
    for (const auto &[path, bytes] : serial.files) {
        auto it = parallel.files.find(path);
        ASSERT_NE(it, parallel.files.end())
            << "trace file missing at jobs=8: " << path;
        EXPECT_EQ(bytes, it->second)
            << "trace file differs at jobs=8: " << path;
    }

    // The cached serialized size is exactly what landed on disk
    // (one trailing newline per line, nothing else).
    std::size_t on_disk = 0;
    for (const auto &[path, bytes] : serial.files)
        on_disk += bytes.size();
    EXPECT_EQ(serial.serializedBytes, on_disk);

    // Decode/encode round trip through a fresh pool.
    trace::TraceStore loaded;
    EXPECT_EQ(loaded.loadFromDirectory(dir + "-j1"), serial.records);
    EXPECT_EQ(loaded.contentDigest(), serial.digest);
    EXPECT_EQ(loaded.serializedBytes(), serial.serializedBytes);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, TraceIdentityTest,
    ::testing::Combine(::testing::Values("CA-1011", "HB-4539", "HB-4729",
                                         "MR-3274", "MR-4637", "ZK-1144",
                                         "ZK-1270"),
                       ::testing::Values(sim::PolicyKind::Fifo,
                                         sim::PolicyKind::Random)),
    [](const ::testing::TestParamInfo<Param> &info) {
        std::string name = std::get<0>(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + (std::get<1>(info.param) == sim::PolicyKind::Fifo
                           ? "_fifo"
                           : "_random");
    });

} // namespace
} // namespace dcatch
