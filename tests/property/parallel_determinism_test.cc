/**
 * @file
 * Determinism contract of the parallel analysis backend
 * (docs/parallelism.md): for every benchmark and scheduling policy,
 * the pipeline's output with jobs ∈ {1, 2, 8} is byte-identical —
 * same text report, same JSON report (timings normalised), same
 * monitored-trace digest, same trigger classifications, and
 * byte-identical repro bundles (schedule.bin / report.json /
 * trace.digest for the monitored run and every harmful
 * classification).  jobs == 1 is the exact serial path, so this
 * pins the parallel backend to the serial semantics.
 *
 * A second suite pins the same full-output identity across the
 * frontier-merge kernels (scalar vs. forced AVX2), and a third across
 * the detection/closure overlap (--no-overlap vs. the overlapped
 * default): SIMD path and overlap pre-pass must both be unobservable
 * in every report byte, exactly like the job count.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/frontier_merge.hh"
#include "dcatch/pipeline.hh"
#include "dcatch/report_printer.hh"

namespace dcatch {
namespace {

namespace fs = std::filesystem;

/** Everything that must not depend on the worker count. */
struct Snapshot
{
    std::string textReport;
    std::string jsonReport; ///< metrics subtree nulled (timings)
    std::uint64_t traceDigest = 0;
    std::vector<std::string> finalKeys;
    std::vector<std::string> classifications;
    std::map<std::string, std::string> bundleFiles; ///< relpath -> bytes
};

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

Snapshot
runWith(const char *bench_id, sim::PolicyKind policy, int jobs,
        const std::string &repro_dir,
        hb::HbGraph::Engine engine = hb::HbGraph::Engine::Auto,
        bool overlap = true)
{
    apps::Benchmark bench = apps::benchmark(bench_id);
    bench.config.policy = policy;
    bench.config.seed = 12345;

    PipelineOptions options;
    options.measureBase = false;
    options.runTrigger = true;
    options.jobs = jobs;
    options.hbEngine = engine;
    options.overlapDetection = overlap;
    options.reproDir = repro_dir;
    fs::remove_all(repro_dir);
    PipelineResult result = runPipeline(bench, options);

    Snapshot snap;
    PrintOptions print;
    print.showMetrics = false; // timings and job count may differ
    snap.textReport = renderReport(bench, result, print);
    // Normalise the only worker-count-dependent JSON fields (wall
    // clocks and the echoed job count); everything else must match.
    PhaseMetrics &m = result.metrics;
    m.baseSec = m.tracingSec = m.analysisSec = m.pruningSec =
        m.loopSec = m.triggerSec = m.detectSec = 0;
    m.jobs = 0;
    // The overlap pre-pass stats legitimately track the worker count
    // (jobs=1 runs no pre-pass at all); null the subtree like the
    // wall clocks.  Everything under metrics.hb stays compared.
    m.detectPath.clear();
    m.overlappedEpochs = 0;
    m.detectOverlapSec = 0;
    snap.jsonReport = reportToJson(bench, result).dump();
    snap.traceDigest = result.monitoredTrace.contentDigest();
    for (const detect::Candidate &cand : result.finalReports())
        snap.finalKeys.push_back(cand.callstackKey());
    for (const trigger::TriggerReport &report : result.triggered)
        snap.classifications.push_back(
            report.candidate.callstackKey() + " => " +
            trigger::triggerClassName(report.cls) +
            (report.failingOrder.empty() ? ""
                                         : "/" + report.failingOrder));
    for (const auto &entry : fs::recursive_directory_iterator(repro_dir))
        if (entry.is_regular_file())
            snap.bundleFiles[fs::relative(entry.path(), repro_dir)
                                 .string()] = readFile(entry.path());
    return snap;
}

using Param = std::tuple<const char *, sim::PolicyKind>;

class ParallelDeterminismTest : public ::testing::TestWithParam<Param>
{
};

TEST_P(ParallelDeterminismTest, JobsCountIsUnobservableInOutput)
{
    const char *bench_id = std::get<0>(GetParam());
    sim::PolicyKind policy = std::get<1>(GetParam());
    const char *policy_name =
        policy == sim::PolicyKind::Fifo ? "fifo" : "random";

    // One repro directory reused across the jobs values (bundle
    // paths are embedded in reports, so they must not encode the
    // worker count); each run snapshots its files before the next
    // wipes the directory.
    std::string repro = fs::temp_directory_path().string() +
                        "/dcatch-par-prop-" + bench_id + "-" +
                        policy_name;
    Snapshot serial = runWith(bench_id, policy, 1, repro);
    for (int jobs : {2, 8}) {
        Snapshot parallel = runWith(bench_id, policy, jobs, repro);
        SCOPED_TRACE(std::string(bench_id) + " " + policy_name +
                     " jobs=" + std::to_string(jobs));
        EXPECT_EQ(serial.textReport, parallel.textReport);
        EXPECT_EQ(serial.jsonReport, parallel.jsonReport);
        EXPECT_EQ(serial.traceDigest, parallel.traceDigest);
        EXPECT_EQ(serial.finalKeys, parallel.finalKeys);
        EXPECT_EQ(serial.classifications, parallel.classifications);
        ASSERT_EQ(serial.bundleFiles.size(),
                  parallel.bundleFiles.size());
        for (const auto &[path, bytes] : serial.bundleFiles) {
            auto it = parallel.bundleFiles.find(path);
            ASSERT_NE(it, parallel.bundleFiles.end())
                << "bundle file missing in parallel run: " << path;
            EXPECT_EQ(bytes, it->second)
                << "bundle file differs: " << path;
        }
    }
}

/** SIMD kernel choice must be as unobservable as the job count. */
class KernelDeterminismTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(KernelDeterminismTest, KernelChoiceIsUnobservableInOutput)
{
    const char *bench_id = GetParam();
    std::string repro = fs::temp_directory_path().string() +
                        "/dcatch-kern-prop-" + bench_id;

    frontier::Kernel scalar = frontier::Kernel::Scalar;
    frontier::forceKernelForTest(&scalar);
    Snapshot scalar_snap =
        runWith(bench_id, sim::PolicyKind::Fifo, 2, repro);

    frontier::Kernel simd = frontier::Kernel::Avx2;
    frontier::forceKernelForTest(&simd);
    Snapshot simd_snap =
        runWith(bench_id, sim::PolicyKind::Fifo, 2, repro);
    frontier::forceKernelForTest(nullptr);

    EXPECT_EQ(scalar_snap.textReport, simd_snap.textReport);
    EXPECT_EQ(scalar_snap.jsonReport, simd_snap.jsonReport);
    EXPECT_EQ(scalar_snap.traceDigest, simd_snap.traceDigest);
    EXPECT_EQ(scalar_snap.finalKeys, simd_snap.finalKeys);
    EXPECT_EQ(scalar_snap.classifications, simd_snap.classifications);
    ASSERT_EQ(scalar_snap.bundleFiles.size(),
              simd_snap.bundleFiles.size());
    for (const auto &[path, bytes] : scalar_snap.bundleFiles) {
        auto it = simd_snap.bundleFiles.find(path);
        ASSERT_NE(it, simd_snap.bundleFiles.end())
            << "bundle file missing under SIMD kernel: " << path;
        EXPECT_EQ(bytes, it->second)
            << "bundle file differs under SIMD kernel: " << path;
    }
}

/**
 * The detection/closure overlap must be as unobservable as the job
 * count: with the chain engine and many jobs, the pre-pass streams
 * epochs during Rule-Eserial closure and memoizes ordered pairs, yet
 * every report byte, candidate, classification, and repro bundle must
 * equal the --no-overlap run's.
 */
class OverlapDeterminismTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(OverlapDeterminismTest, OverlapIsUnobservableInOutput)
{
    const char *bench_id = GetParam();
    std::string repro = fs::temp_directory_path().string() +
                        "/dcatch-ovl-prop-" + bench_id;

    for (hb::HbGraph::Engine engine :
         {hb::HbGraph::Engine::ChainFrontier,
          hb::HbGraph::Engine::Auto}) {
        SCOPED_TRACE(engine == hb::HbGraph::Engine::Auto ? "auto"
                                                         : "chain");
        Snapshot off = runWith(bench_id, sim::PolicyKind::Fifo, 8,
                               repro, engine, /*overlap=*/false);
        Snapshot on = runWith(bench_id, sim::PolicyKind::Fifo, 8,
                              repro, engine, /*overlap=*/true);
        EXPECT_EQ(off.textReport, on.textReport);
        EXPECT_EQ(off.jsonReport, on.jsonReport);
        EXPECT_EQ(off.traceDigest, on.traceDigest);
        EXPECT_EQ(off.finalKeys, on.finalKeys);
        EXPECT_EQ(off.classifications, on.classifications);
        ASSERT_EQ(off.bundleFiles.size(), on.bundleFiles.size());
        for (const auto &[path, bytes] : off.bundleFiles) {
            auto it = on.bundleFiles.find(path);
            ASSERT_NE(it, on.bundleFiles.end())
                << "bundle file missing with overlap: " << path;
            EXPECT_EQ(bytes, it->second)
                << "bundle file differs with overlap: " << path;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, OverlapDeterminismTest,
    ::testing::Values("CA-1011", "HB-4539", "HB-4729", "MR-3274",
                      "MR-4637", "ZK-1144", "ZK-1270"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, KernelDeterminismTest,
    ::testing::Values("CA-1011", "MR-3274", "ZK-1144"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, ParallelDeterminismTest,
    ::testing::Combine(::testing::Values("CA-1011", "HB-4539", "HB-4729",
                                         "MR-3274", "MR-4637", "ZK-1144",
                                         "ZK-1270"),
                       ::testing::Values(sim::PolicyKind::Fifo,
                                         sim::PolicyKind::Random)),
    [](const ::testing::TestParamInfo<Param> &info) {
        std::string name = std::get<0>(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + (std::get<1>(info.param) ==
                               sim::PolicyKind::Fifo
                           ? "_fifo"
                           : "_random");
    });

} // namespace
} // namespace dcatch
