/**
 * @file
 * Property tests cross-validating the four happens-before engines
 * (chain-frontier, dense reachable sets, vector clocks, and the
 * adaptive selector) on randomly generated traces and on every
 * benchmark's real trace:
 *
 *  - all engines answer every happensBefore query identically, both
 *    after construction and after incremental (pull-style) edge
 *    additions;
 *  - the race detector produces the *identical* candidate list under
 *    every engine — same order, same keys, same dynamic-pair counts —
 *    so every Table 4/5 number is engine-independent.
 */

#include <gtest/gtest.h>

#include "apps/benchmark.hh"
#include "common/rng.hh"
#include "detect/race_detect.hh"
#include "hb/vector_clock.hh"
#include "runtime/sim.hh"
#include "support/trace_builder.hh"

namespace dcatch::hb {
namespace {

using testsupport::TraceBuilder;
using trace::RecordType;

/**
 * Generate a random but well-formed trace: a few regular threads
 * doing memory accesses and message passing, plus one single-consumer
 * event queue whose handler thread serializes randomly created events
 * (which exercises Pnreg segmentation and the Eserial fixpoint).
 */
void
buildRandomTrace(TraceBuilder &tb, Rng &rng)
{
    const int threads = static_cast<int>(rng.nextRange(2, 4));
    const int handlerThread = threads; // dedicated event consumer
    const int vars = static_cast<int>(rng.nextRange(1, 3));
    tb.queue("n0/q", 0, true);

    struct PendingMsg
    {
        int to;
        std::string id;
    };
    std::vector<PendingMsg> inFlight;
    std::vector<std::string> createdEvents;
    int nextMsg = 0, nextEvent = 0;
    const int steps = static_cast<int>(rng.nextRange(30, 60));

    for (int s = 0; s < steps; ++s) {
        int t = static_cast<int>(rng.nextRange(0, threads - 1));
        std::string ts = std::to_string(t);
        switch (rng.nextRange(0, 3)) {
          case 0:
          case 1: {
            std::string var =
                "var:x" + std::to_string(rng.nextRange(0, vars - 1));
            tb.mem(rng.nextChance(1, 2), 0, t,
                   "t" + ts + ".s" + std::to_string(s), var);
            break;
          }
          case 2: {
            if (rng.nextChance(1, 2) && !inFlight.empty()) {
                PendingMsg msg = inFlight.back();
                inFlight.pop_back();
                tb.add(RecordType::MsgRecv, 0, msg.to, "recv", msg.id);
            } else {
                int to = static_cast<int>(rng.nextRange(0, threads - 1));
                std::string id = "m-" + std::to_string(nextMsg++);
                tb.add(RecordType::MsgSend, 0, t, "send", id);
                inFlight.push_back({to, id});
            }
            break;
          }
          default: {
            std::string id = "n0/q#" + std::to_string(nextEvent++);
            tb.add(RecordType::EventCreate, 0, t, "enq", id);
            createdEvents.push_back(id);
            break;
          }
        }
        // The consumer drains the queue in creation order, sometimes
        // lagging behind to interleave handlers with producers.
        while (!createdEvents.empty() && rng.nextChance(1, 2)) {
            std::string id = createdEvents.front();
            createdEvents.erase(createdEvents.begin());
            tb.add(RecordType::EventBegin, 0, handlerThread, "evt", id);
            tb.mem(rng.nextChance(1, 2), 0, handlerThread,
                   "h." + id,
                   "var:x" + std::to_string(rng.nextRange(0, vars - 1)));
            tb.add(RecordType::EventEnd, 0, handlerThread, "evt", id);
        }
    }
    for (const std::string &id : createdEvents) {
        tb.add(RecordType::EventBegin, 0, handlerThread, "evt", id);
        tb.add(RecordType::EventEnd, 0, handlerThread, "evt", id);
    }
}

/** The four engine configurations built over one trace. */
struct AllEngines
{
    HbGraph chain, dense, vc, adaptive;

    static HbGraph::Options options(HbGraph::Engine engine)
    {
        HbGraph::Options o;
        o.engine = engine;
        return o;
    }

    explicit AllEngines(const trace::TraceStore &store)
        : chain(store, options(HbGraph::Engine::ChainFrontier)),
          dense(store, options(HbGraph::Engine::Dense)),
          vc(store, options(HbGraph::Engine::VectorClock)),
          adaptive(store, options(HbGraph::Engine::Auto))
    {
    }
};

/** All-pairs agreement between the four HbGraph engines and clocks. */
void
expectAllPairsAgree(const AllEngines &e)
{
    const HbGraph &dense = e.dense;
    VectorClockGraph clocks(dense);
    ASSERT_EQ(e.chain.size(), dense.size());
    ASSERT_EQ(e.vc.size(), dense.size());
    ASSERT_EQ(e.adaptive.size(), dense.size());
    ASSERT_NE(e.adaptive.engine(), HbGraph::Engine::Auto);
    int n = static_cast<int>(dense.size());
    for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
            bool want = dense.happensBefore(u, v);
            ASSERT_EQ(e.chain.happensBefore(u, v), want)
                << "chain vs dense on " << u << " => " << v << ": "
                << dense.recordLine(u) << " vs "
                << dense.recordLine(v);
            ASSERT_EQ(e.vc.happensBefore(u, v), want)
                << "vc vs dense on " << u << " => " << v << ": "
                << dense.recordLine(u) << " vs "
                << dense.recordLine(v);
            ASSERT_EQ(e.adaptive.happensBefore(u, v), want)
                << "auto(" << e.adaptive.engineName()
                << ") vs dense on " << u << " => " << v;
            ASSERT_EQ(clocks.happensBefore(u, v), want)
                << "clocks vs dense on " << u << " => " << v;
        }
    }
}

/** The detector must yield the identical report list on both. */
void
expectSameCandidates(const HbGraph &got_graph, const HbGraph &dense)
{
    detect::RaceDetector detector;
    auto got = detector.detect(got_graph);
    auto want = detector.detect(dense);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].callstackKey(), want[i].callstackKey());
        EXPECT_EQ(got[i].staticKey(), want[i].staticKey());
        EXPECT_EQ(got[i].dynamicPairs, want[i].dynamicPairs);
        EXPECT_EQ(got[i].a.site, want[i].a.site);
        EXPECT_EQ(got[i].b.site, want[i].b.site);
        EXPECT_EQ(got[i].a.vertex, want[i].a.vertex);
        EXPECT_EQ(got[i].b.vertex, want[i].b.vertex);
    }
}

/** Candidate lists from every engine against the dense reference. */
void
expectSameCandidatesAllEngines(const AllEngines &e)
{
    expectSameCandidates(e.chain, e.dense);
    expectSameCandidates(e.vc, e.dense);
    expectSameCandidates(e.adaptive, e.dense);
}

class RandomTraces : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomTraces, EnginesAgreeIncludingIncrementalEdges)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
    TraceBuilder tb;
    buildRandomTrace(tb, rng);

    AllEngines engines(tb.store());
    expectAllPairsAgree(engines);
    expectSameCandidatesAllEngines(engines);

    // Random forward (pull-style) edges must fold into every closure
    // identically — the chain engine incrementally, dense and vc by
    // re-closure.
    int n = static_cast<int>(engines.dense.size());
    if (n >= 2) {
        std::vector<std::pair<int, int>> extra;
        for (int k = 0; k < 5; ++k) {
            int u = static_cast<int>(rng.nextRange(0, n - 2));
            int v = static_cast<int>(
                rng.nextRange(u + 1, n - 1));
            extra.emplace_back(u, v);
        }
        engines.chain.addEdges(extra);
        engines.dense.addEdges(extra);
        engines.vc.addEdges(extra);
        engines.adaptive.addEdges(extra);
        EXPECT_GE(engines.chain.incrementalUpdates(), 1u);
        expectAllPairsAgree(engines);
        expectSameCandidatesAllEngines(engines);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraces,
                         ::testing::Range(0, 12));

class BenchmarkTraces : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BenchmarkTraces, CandidateSetsAreEngineIndependent)
{
    const apps::Benchmark &bench = apps::benchmark(GetParam());
    sim::Simulation sim(bench.config);
    bench.build(sim);
    sim.run();

    AllEngines engines(sim.tracer().store());
    expectAllPairsAgree(engines);
    expectSameCandidatesAllEngines(engines);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkTraces,
    ::testing::Values("CA-1011", "HB-4539", "HB-4729", "MR-3274",
                      "MR-4637", "ZK-1144", "ZK-1270"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace dcatch::hb
