/**
 * @file
 * Property tests over scheduling seeds and benchmarks (parameterized
 * sweeps):
 *
 *  - the simulation is a deterministic function of (policy, seed);
 *  - the HB graph is consistent: happensBefore is irreflexive,
 *    antisymmetric, and transitive on sampled triples;
 *  - detection is stable: the known root-cause pair is reported from
 *    correct runs under many different random schedules (prediction
 *    does not depend on one lucky interleaving);
 *  - pruning keeps known-bug pairs across seeds.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hh"
#include "dcatch/pipeline.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"

namespace dcatch {
namespace {

using SeedCase = std::tuple<const char *, int>;

class SeedSweepTest : public ::testing::TestWithParam<SeedCase>
{
  protected:
    sim::SimConfig
    config() const
    {
        sim::SimConfig cfg;
        cfg.policy = sim::PolicyKind::Random;
        cfg.seed = static_cast<std::uint64_t>(std::get<1>(GetParam()));
        return cfg;
    }

    const apps::Benchmark &
    bench() const
    {
        return apps::benchmark(std::get<0>(GetParam()));
    }
};

TEST_P(SeedSweepTest, RunsAreSeedDeterministic)
{
    auto run_once = [&] {
        sim::Simulation sim(config());
        bench().build(sim);
        sim.run();
        std::string all;
        const auto &store = sim.tracer().store();
        for (auto it = store.merged().begin(); it != store.merged().end();
             ++it)
            all += (*it).toLine() + "\n";
        return all;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST_P(SeedSweepTest, HbGraphIsAPartialOrderOnSamples)
{
    sim::Simulation sim(config());
    bench().build(sim);
    sim.run();
    hb::HbGraph graph(sim.tracer().store());
    int n = static_cast<int>(graph.size());
    if (n < 3)
        GTEST_SKIP();

    Rng rng(static_cast<std::uint64_t>(std::get<1>(GetParam())) + 99);
    for (int i = 0; i < 500; ++i) {
        int a = static_cast<int>(rng.nextBelow(
            static_cast<std::uint64_t>(n)));
        int b = static_cast<int>(rng.nextBelow(
            static_cast<std::uint64_t>(n)));
        int c = static_cast<int>(rng.nextBelow(
            static_cast<std::uint64_t>(n)));
        // Irreflexive.
        ASSERT_FALSE(graph.happensBefore(a, a));
        // Antisymmetric.
        if (graph.happensBefore(a, b))
            ASSERT_FALSE(graph.happensBefore(b, a));
        // Transitive.
        if (graph.happensBefore(a, b) && graph.happensBefore(b, c))
            ASSERT_TRUE(graph.happensBefore(a, c));
    }
}

TEST_P(SeedSweepTest, KnownBugPredictedFromCorrectRandomSchedules)
{
    sim::SimConfig cfg = config();
    sim::Simulation probe(cfg);
    bench().build(probe);
    sim::RunResult run = probe.run();
    if (run.failed()) {
        // A random schedule may itself trigger the bug; DCatch only
        // monitors correct runs, so such seeds are out of scope —
        // and their existence is itself evidence the bug is real.
        GTEST_SKIP() << "schedule triggered the bug: " << run.summary();
    }

    hb::HbGraph graph(probe.tracer().store());
    detect::RaceDetector detector;
    auto candidates = detector.detect(graph);
    bool found = false;
    for (const auto &cand : candidates)
        for (const auto &pair : bench().knownBugPairs)
            if (cand.sitePairKey() == pair)
                found = true;
    EXPECT_TRUE(found)
        << "prediction must not depend on one lucky interleaving";
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SeedSweepTest,
    ::testing::Combine(::testing::Values("MR-3274", "HB-4729", "ZK-1270",
                                         "CA-1011"),
                       ::testing::Values(1, 2, 3, 5, 8, 13)),
    [](const ::testing::TestParamInfo<SeedCase> &info) {
        std::string name = std::get<0>(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace dcatch
