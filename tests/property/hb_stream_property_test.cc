/**
 * @file
 * Property tests for the incremental (streaming) HB graph mode that
 * backs dcatchd: feeding a trace record-by-record through
 * HbGraph::streaming() + append()/flush()/finishStream() must
 * converge to exactly the batch graph built over the same store —
 * identical all-pairs reachability and an identical race-detector
 * candidate list — for every flush cadence.  Mid-stream, the
 * incremental graph must be sound: any HB edge it reports already
 * holds in the final batch closure (it may only under-approximate,
 * never invent orderings).
 */

#include <gtest/gtest.h>

#include "apps/benchmark.hh"
#include "common/rng.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "runtime/sim.hh"
#include "support/trace_builder.hh"

namespace dcatch::hb {
namespace {

using testsupport::TraceBuilder;
using trace::RecordType;

/** Same shape as the engines property test: regular threads doing
 *  memory and message traffic plus one single-consumer event queue,
 *  so the streaming Eserial fixpoint gets exercised. */
void
buildRandomTrace(TraceBuilder &tb, Rng &rng)
{
    const int threads = static_cast<int>(rng.nextRange(2, 4));
    const int handlerThread = threads;
    const int vars = static_cast<int>(rng.nextRange(1, 3));
    tb.queue("n0/q", 0, true);

    struct PendingMsg
    {
        int to;
        std::string id;
    };
    std::vector<PendingMsg> inFlight;
    std::vector<std::string> createdEvents;
    int nextMsg = 0, nextEvent = 0;
    const int steps = static_cast<int>(rng.nextRange(30, 60));

    for (int s = 0; s < steps; ++s) {
        int t = static_cast<int>(rng.nextRange(0, threads - 1));
        std::string ts = std::to_string(t);
        switch (rng.nextRange(0, 3)) {
          case 0:
          case 1: {
            std::string var =
                "var:x" + std::to_string(rng.nextRange(0, vars - 1));
            tb.mem(rng.nextChance(1, 2), 0, t,
                   "t" + ts + ".s" + std::to_string(s), var);
            break;
          }
          case 2: {
            if (rng.nextChance(1, 2) && !inFlight.empty()) {
                PendingMsg msg = inFlight.back();
                inFlight.pop_back();
                tb.add(RecordType::MsgRecv, 0, msg.to, "recv", msg.id);
            } else {
                int to = static_cast<int>(rng.nextRange(0, threads - 1));
                std::string id = "m-" + std::to_string(nextMsg++);
                tb.add(RecordType::MsgSend, 0, t, "send", id);
                inFlight.push_back({to, id});
            }
            break;
          }
          default: {
            std::string id = "n0/q#" + std::to_string(nextEvent++);
            tb.add(RecordType::EventCreate, 0, t, "enq", id);
            createdEvents.push_back(id);
            break;
          }
        }
        while (!createdEvents.empty() && rng.nextChance(1, 2)) {
            std::string id = createdEvents.front();
            createdEvents.erase(createdEvents.begin());
            tb.add(RecordType::EventBegin, 0, handlerThread, "evt", id);
            tb.mem(rng.nextChance(1, 2), 0, handlerThread,
                   "h." + id,
                   "var:x" + std::to_string(rng.nextRange(0, vars - 1)));
            tb.add(RecordType::EventEnd, 0, handlerThread, "evt", id);
        }
    }
    for (const std::string &id : createdEvents) {
        tb.add(RecordType::EventBegin, 0, handlerThread, "evt", id);
        tb.add(RecordType::EventEnd, 0, handlerThread, "evt", id);
    }
}

/**
 * Stream every record of @p store through a streaming graph, calling
 * flush() every @p flushEvery appends, with a mid-stream soundness
 * probe against @p final_batch at each flush when @p probe is set.
 */
std::unique_ptr<HbGraph>
streamAll(const trace::TraceStore &store, std::size_t flushEvery,
          const HbGraph *final_batch)
{
    HbGraph::Options options;
    auto stream = HbGraph::streaming(store, options);
    std::size_t appended = 0;
    for (const trace::Record &rec : store.mergedRecords()) {
        stream->append(rec);
        if (++appended % flushEvery == 0) {
            stream->flush();
            if (final_batch) {
                // Soundness probe: the prefix graph may miss edges
                // (retroactive chaining, unflushed Eserial) but must
                // never report an ordering absent from the final
                // batch closure.
                int n = static_cast<int>(stream->size());
                for (int u = 0; u < n; ++u)
                    for (int v = 0; v < n; ++v)
                        if (stream->happensBefore(u, v))
                            EXPECT_TRUE(
                                final_batch->happensBefore(u, v))
                                << "spurious stream edge " << u
                                << " => " << v << " at prefix " << n;
            }
        }
    }
    stream->finishStream();
    return stream;
}

/** All-pairs equality between the finished stream and the batch. */
void
expectSameClosure(const HbGraph &stream, const HbGraph &batch)
{
    ASSERT_EQ(stream.size(), batch.size());
    int n = static_cast<int>(batch.size());
    for (int u = 0; u < n; ++u)
        for (int v = 0; v < n; ++v)
            ASSERT_EQ(stream.happensBefore(u, v),
                      batch.happensBefore(u, v))
                << "stream vs batch on " << u << " => " << v << ": "
                << batch.recordLine(u) << " vs " << batch.recordLine(v);
}

/** Identical detector output — the dcatchd byte-equivalence pin. */
void
expectSameCandidates(const HbGraph &stream, const HbGraph &batch)
{
    detect::RaceDetector detector;
    auto got = detector.detect(stream);
    auto want = detector.detect(batch);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].callstackKey(), want[i].callstackKey());
        EXPECT_EQ(got[i].staticKey(), want[i].staticKey());
        EXPECT_EQ(got[i].dynamicPairs, want[i].dynamicPairs);
        EXPECT_EQ(got[i].a.site, want[i].a.site);
        EXPECT_EQ(got[i].b.site, want[i].b.site);
        EXPECT_EQ(got[i].a.vertex, want[i].a.vertex);
        EXPECT_EQ(got[i].b.vertex, want[i].b.vertex);
    }
}

class RandomStreams : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomStreams, StreamingConvergesToBatchAtEveryCadence)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 9973 + 5);
    TraceBuilder tb;
    buildRandomTrace(tb, rng);
    const trace::TraceStore &store = tb.store();

    HbGraph::Options chainOpts;
    chainOpts.engine = HbGraph::Engine::ChainFrontier;
    HbGraph batch(store, chainOpts);

    // flushEvery = 1 exercises the first-flush/appendVertices path on
    // every record; a prime cadence lands flushes at odd prefixes;
    // the huge cadence means finishStream() does all the work.
    for (std::size_t flushEvery :
         {std::size_t{1}, std::size_t{13}, std::size_t{1} << 30}) {
        SCOPED_TRACE("flushEvery=" + std::to_string(flushEvery));
        auto stream =
            streamAll(store, flushEvery, flushEvery == 13 ? &batch
                                                          : nullptr);
        EXPECT_TRUE(stream->streamExact());
        expectSameClosure(*stream, batch);
        expectSameCandidates(*stream, batch);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStreams,
                         ::testing::Range(0, 12));

class BenchmarkStreams : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BenchmarkStreams, StreamingMatchesBatchOnRealTraces)
{
    const apps::Benchmark &bench = apps::benchmark(GetParam());
    sim::Simulation sim(bench.config);
    bench.build(sim);
    sim.run();
    const trace::TraceStore &store = sim.tracer().store();

    HbGraph::Options chainOpts;
    chainOpts.engine = HbGraph::Engine::ChainFrontier;
    HbGraph batch(store, chainOpts);

    for (std::size_t flushEvery : {std::size_t{64}, std::size_t{1} << 30}) {
        SCOPED_TRACE("flushEvery=" + std::to_string(flushEvery));
        auto stream = streamAll(store, flushEvery, nullptr);
        EXPECT_TRUE(stream->streamExact()) << "prediction fell back";
        expectSameClosure(*stream, batch);
        expectSameCandidates(*stream, batch);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkStreams,
    ::testing::Values("CA-1011", "HB-4539", "HB-4729", "MR-3274",
                      "MR-4637", "ZK-1144", "ZK-1270"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace dcatch::hb
