/**
 * @file
 * Property tests pinning the SIMD kernel contract
 * (docs/hb_auto_engine.md): the scalar and AVX2 frontier-merge
 * kernels are bit-for-bit interchangeable — on random packed rows at
 * the kernel level (including the sub-width tails the vector loop
 * hands back to the scalar epilogue), and end-to-end (identical
 * happens-before answers and race-candidate lists when the whole
 * chain-frontier engine runs under a forced kernel).
 *
 * On hardware without AVX2 (or in a -DDCATCH_ENABLE_SIMD=OFF build)
 * forcing Avx2 falls back to Scalar and these tests degenerate to
 * scalar-vs-truth checks, which still pin the reference semantics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/frontier_merge.hh"
#include "common/rng.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "support/trace_builder.hh"

namespace dcatch::frontier {
namespace {

using testsupport::TraceBuilder;
using trace::RecordType;

/** Scoped kernel override; restores runtime selection on exit. */
class KernelGuard
{
  public:
    explicit KernelGuard(Kernel kernel) { forceKernelForTest(&kernel); }
    ~KernelGuard() { forceKernelForTest(nullptr); }
};

/** A sorted row of packed words over strictly increasing chains. */
std::vector<Word>
randomRow(Rng &rng, std::size_t n)
{
    std::vector<Word> row;
    std::uint32_t chain = static_cast<std::uint32_t>(
        rng.nextRange(0, 3));
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t limit = static_cast<std::uint32_t>(
            rng.nextRange(0, 0x7fffffff));
        row.push_back(pack(chain, limit));
        chain += static_cast<std::uint32_t>(rng.nextRange(1, 4));
    }
    return row;
}

/** Same chain sequence as @p base, fresh random limits. */
std::vector<Word>
withRandomLimits(Rng &rng, const std::vector<Word> &base)
{
    std::vector<Word> row;
    for (Word w : base)
        row.push_back(pack(chainOf(w), static_cast<std::uint32_t>(
                                           rng.nextRange(0, 0x7fffffff))));
    return row;
}

TEST(FrontierMergeKernelTest, ForcedScalarIsHonored)
{
    KernelGuard guard(Kernel::Scalar);
    EXPECT_EQ(activeKernel(), Kernel::Scalar);
    EXPECT_STREQ(kernelName(activeKernel()), "scalar");
}

TEST(FrontierMergeKernelTest, ForcingAvx2ResolvesToARealKernel)
{
    KernelGuard guard(Kernel::Avx2);
    // Either the CPU has AVX2 (forced honored) or the force falls
    // back to scalar — never an invalid dispatch.
    Kernel k = activeKernel();
    EXPECT_TRUE(k == Kernel::Avx2 || k == Kernel::Scalar);
    std::printf("forced-avx2 resolves to: %s\n", kernelName(k));
}

TEST(FrontierMergePropertyTest, SameChainsKernelsAgree)
{
    Rng rng(0xfee1deadu);
    // Sizes straddle the 4-word vector width to cover full vector
    // iterations, the scalar tail, and the empty row.
    for (std::size_t n : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 13u, 32u, 100u}) {
        for (int rep = 0; rep < 20; ++rep) {
            std::vector<Word> a = randomRow(rng, n);
            std::vector<Word> same = withRandomLimits(rng, a);
            std::vector<Word> diff = same;
            if (n > 0) {
                std::size_t at = rng.nextRange(0, n - 1);
                diff[at] = pack(chainOf(diff[at]) + 1, limitOf(diff[at]));
            }
            bool scalar_same, scalar_diff, simd_same, simd_diff;
            {
                KernelGuard guard(Kernel::Scalar);
                scalar_same = sameChains(a.data(), same.data(), n);
                scalar_diff = sameChains(a.data(), diff.data(), n);
            }
            {
                KernelGuard guard(Kernel::Avx2);
                simd_same = sameChains(a.data(), same.data(), n);
                simd_diff = sameChains(a.data(), diff.data(), n);
            }
            EXPECT_TRUE(scalar_same) << "n=" << n;
            EXPECT_EQ(simd_same, scalar_same) << "n=" << n;
            EXPECT_EQ(simd_diff, scalar_diff) << "n=" << n;
            if (n > 0) {
                EXPECT_FALSE(scalar_diff) << "n=" << n;
            }
        }
    }
}

TEST(FrontierMergePropertyTest, MaxInPlaceKernelsAgree)
{
    Rng rng(0xabad1deau);
    for (std::size_t n : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 13u, 32u, 100u}) {
        for (int rep = 0; rep < 20; ++rep) {
            std::vector<Word> dst = randomRow(rng, n);
            std::vector<Word> src = withRandomLimits(rng, dst);
            // Sometimes make src identical so "changed" can be false.
            if (rng.nextChance(1, 4))
                src = dst;

            std::vector<Word> scalar_dst = dst, simd_dst = dst;
            bool scalar_changed, simd_changed;
            {
                KernelGuard guard(Kernel::Scalar);
                scalar_changed =
                    maxInPlace(scalar_dst.data(), src.data(), n);
            }
            {
                KernelGuard guard(Kernel::Avx2);
                simd_changed =
                    maxInPlace(simd_dst.data(), src.data(), n);
            }
            EXPECT_EQ(simd_dst, scalar_dst) << "n=" << n;
            EXPECT_EQ(simd_changed, scalar_changed) << "n=" << n;

            // Ground truth: elementwise max, changed iff dst grew.
            bool want_changed = false;
            for (std::size_t i = 0; i < n; ++i) {
                Word want = dst[i] > src[i] ? dst[i] : src[i];
                EXPECT_EQ(scalar_dst[i], want) << "i=" << i;
                want_changed |= want != dst[i];
            }
            EXPECT_EQ(scalar_changed, want_changed) << "n=" << n;
        }
    }
}

/** Reference different-shape merge: map union with per-chain max. */
std::vector<Word>
referenceMerge(const std::vector<Word> &dst, const std::vector<Word> &src)
{
    std::map<std::uint32_t, std::uint32_t> best;
    for (Word w : dst)
        best[chainOf(w)] = std::max(best[chainOf(w)], limitOf(w));
    for (Word w : src)
        best[chainOf(w)] = std::max(best[chainOf(w)], limitOf(w));
    std::vector<Word> out;
    for (const auto &[chain, limit] : best)
        out.push_back(pack(chain, limit));
    return out;
}

/** Run mergeWouldChange + mergeMax under @p kernel. */
std::pair<bool, std::vector<Word>>
mergeUnder(Kernel kernel, const std::vector<Word> &dst,
           const std::vector<Word> &src)
{
    KernelGuard guard(kernel);
    bool would = mergeWouldChange(dst.data(), dst.size(), src.data(),
                                  src.size());
    std::vector<Word> out(dst.size() + src.size());
    out.resize(
        mergeMax(out.data(), dst.data(), dst.size(), src.data(),
                 src.size()));
    return {would, out};
}

void
checkMergePair(const std::vector<Word> &dst, const std::vector<Word> &src,
               const char *what)
{
    auto [scalar_would, scalar_out] = mergeUnder(Kernel::Scalar, dst, src);
    auto [simd_would, simd_out] = mergeUnder(Kernel::Avx2, dst, src);
    std::vector<Word> want = referenceMerge(dst, src);
    EXPECT_EQ(scalar_out, want) << what;
    EXPECT_EQ(simd_out, scalar_out) << what;
    EXPECT_EQ(simd_would, scalar_would) << what;
    // mergeWouldChange is exactly "the merged row differs from dst".
    EXPECT_EQ(scalar_would, want != dst) << what;
}

TEST(FrontierMergeDifferentShapeTest, EmptyAndSingleEntryRows)
{
    std::vector<Word> empty;
    std::vector<Word> one{pack(5, 100)};
    std::vector<Word> other{pack(7, 3)};
    checkMergePair(empty, empty, "empty/empty");
    checkMergePair(empty, one, "empty/one");
    checkMergePair(one, empty, "one/empty");
    checkMergePair(one, one, "one/one identical");
    checkMergePair(one, other, "one/other disjoint");
    checkMergePair(one, {pack(5, 99)}, "one/lower limit");
    checkMergePair(one, {pack(5, 101)}, "one/higher limit");
}

TEST(FrontierMergeDifferentShapeTest, AllEqualChainRows)
{
    // Rows over the identical chain sequence must merge to the
    // elementwise max through the sorted-merge kernels too (the
    // AVX2 variant streams these as pure 4-word blocks).
    Rng rng(0x5eedf00du);
    for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u, 33u}) {
        for (int rep = 0; rep < 10; ++rep) {
            std::vector<Word> dst = randomRow(rng, n);
            std::vector<Word> src = withRandomLimits(rng, dst);
            checkMergePair(dst, src, "equal chains");
            checkMergePair(dst, dst, "identical rows");
        }
    }
}

TEST(FrontierMergeDifferentShapeTest, Avx2TailBoundaries)
{
    // 3/4/5/8-word rows straddle the 4-word vector width: no full
    // block, exactly one, one plus a tail, exactly two.
    Rng rng(0x7a11b0dau);
    for (std::size_t ndst : {3u, 4u, 5u, 8u}) {
        for (std::size_t nsrc : {3u, 4u, 5u, 8u}) {
            for (int rep = 0; rep < 20; ++rep) {
                std::vector<Word> dst = randomRow(rng, ndst);
                std::vector<Word> src = randomRow(rng, nsrc);
                checkMergePair(dst, src, "tail boundary");
            }
        }
    }
}

TEST(FrontierMergeDifferentShapeTest, RandomMixedShapes)
{
    // Random overlap patterns: shared chains with differing limits,
    // chains private to either side, and long equal-chain runs broken
    // by insertions (the realignment path of the AVX2 kernels).
    Rng rng(0xc0ffee11u);
    for (int rep = 0; rep < 200; ++rep) {
        std::size_t ndst = rng.nextRange(0, 24);
        std::vector<Word> dst = randomRow(rng, ndst);
        std::vector<Word> src;
        for (Word w : dst) {
            if (rng.nextChance(2, 3))
                src.push_back(pack(
                    chainOf(w), static_cast<std::uint32_t>(
                                    rng.nextRange(0, 0x7fffffff))));
            if (rng.nextChance(1, 4))
                src.push_back(pack(
                    chainOf(w) + 1000000u,
                    static_cast<std::uint32_t>(
                        rng.nextRange(0, 0x7fffffff))));
        }
        std::sort(src.begin(), src.end());
        src.erase(std::unique(src.begin(), src.end(),
                              [](Word a, Word b) {
                                  return chainOf(a) == chainOf(b);
                              }),
                  src.end());
        checkMergePair(dst, src, "mixed shapes");
        checkMergePair(src, dst, "mixed shapes swapped");
    }
}

/**
 * Random well-formed trace mixing thread forks, memory accesses, and
 * a single-consumer event queue (the shapes whose frontiers the
 * kernels merge in production).
 */
void
buildRandomTrace(TraceBuilder &tb, Rng &rng)
{
    const int threads = static_cast<int>(rng.nextRange(2, 4));
    const int handler = threads;
    tb.queue("n0/q", 0, true);
    int next_event = 0;
    std::vector<std::string> pending;
    const int steps = static_cast<int>(rng.nextRange(30, 60));
    for (int s = 0; s < steps; ++s) {
        int t = static_cast<int>(rng.nextRange(0, threads - 1));
        if (rng.nextChance(1, 3)) {
            std::string id = "n0/q#" + std::to_string(next_event++);
            tb.add(RecordType::EventCreate, 0, t, "enq", id);
            pending.push_back(id);
        } else {
            tb.mem(rng.nextChance(1, 2), 0, t,
                   "t" + std::to_string(t) + ".s" + std::to_string(s),
                   "var:x" + std::to_string(rng.nextRange(0, 2)));
        }
        while (!pending.empty() && rng.nextChance(1, 2)) {
            std::string id = pending.front();
            pending.erase(pending.begin());
            tb.add(RecordType::EventBegin, 0, handler, "evt", id);
            tb.mem(rng.nextChance(1, 2), 0, handler, "h." + id,
                   "var:x" + std::to_string(rng.nextRange(0, 2)));
            tb.add(RecordType::EventEnd, 0, handler, "evt", id);
        }
    }
    for (const std::string &id : pending) {
        tb.add(RecordType::EventBegin, 0, handler, "evt", id);
        tb.add(RecordType::EventEnd, 0, handler, "evt", id);
    }
}

/** Full HB matrix + candidate list digest under one forced kernel. */
std::string
analysisSignature(const trace::TraceStore &store, Kernel kernel)
{
    KernelGuard guard(kernel);
    hb::HbGraph::Options options;
    options.engine = hb::HbGraph::Engine::ChainFrontier;
    hb::HbGraph graph(store, options);
    std::string sig;
    int n = static_cast<int>(graph.size());
    for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v)
            sig += graph.happensBefore(u, v) ? '1' : '0';
        sig += '\n';
    }
    detect::RaceDetector detector;
    for (const detect::Candidate &cand : detector.detect(graph))
        sig += cand.callstackKey() + " " +
               std::to_string(cand.dynamicPairs) + "\n";
    return sig;
}

class RandomTraces : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomTraces, WholeEngineIdenticalUnderEitherKernel)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
    TraceBuilder tb;
    buildRandomTrace(tb, rng);
    std::string scalar_sig =
        analysisSignature(tb.store(), Kernel::Scalar);
    std::string simd_sig = analysisSignature(tb.store(), Kernel::Avx2);
    EXPECT_EQ(scalar_sig, simd_sig);
    EXPECT_FALSE(scalar_sig.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraces, ::testing::Range(0, 10));

} // namespace
} // namespace dcatch::frontier
