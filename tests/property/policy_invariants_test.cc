/**
 * @file
 * Property tests of the scheduler-policy purity contract
 * (runtime/scheduler.hh): every base policy — FIFO, random, PCT,
 * delay-bounded — (1) always returns an element of the runnable set,
 * (2) never starves a lone runnable thread, and (3) is a pure
 * function of (constructor parameters, runnable, step): two fresh
 * instances with the same parameters agree on every query, in any
 * query order, with repetition.  The schedule-space shrinker's
 * prefix-replay depends on (3): it re-derives a policy's continuation
 * without replaying its call history.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "runtime/scheduler.hh"

namespace dcatch::sim {
namespace {

struct PolicyCase
{
    std::string name;
    std::function<std::unique_ptr<SchedulerPolicy>()> make;
};

/** Every base policy, across several seeds and parameter shapes. */
std::vector<PolicyCase>
policyCases()
{
    std::vector<PolicyCase> cases;
    cases.push_back({"fifo", [] {
        return std::make_unique<FifoPolicy>();
    }});
    for (std::uint64_t seed : {1ull, 42ull, 0xdecafull}) {
        cases.push_back({"random/" + std::to_string(seed), [seed] {
            return std::make_unique<RandomPolicy>(seed);
        }});
        for (int depth : {0, 3, 16})
            cases.push_back(
                {"pct:" + std::to_string(depth) + "/" +
                     std::to_string(seed),
                 [seed, depth] {
                     return std::make_unique<PctPolicy>(seed, depth,
                                                        500);
                 }});
        for (int budget : {1, 2, 8})
            cases.push_back(
                {"delay:" + std::to_string(budget) + "/" +
                     std::to_string(seed),
                 [seed, budget] {
                     return std::make_unique<DelayBoundedPolicy>(
                         seed, budget, 500);
                 }});
    }
    return cases;
}

/** Deterministic pseudo-random strictly-ascending runnable set for
 *  query @p index: 1..6 tids drawn from [0, 16). */
std::vector<int>
runnableSet(std::uint64_t index)
{
    std::uint64_t h = Rng::mix(0x9e3779b97f4a7c15ull + index);
    std::size_t size = 1 + h % 6;
    std::vector<int> tids;
    for (int tid = 0; tid < 16 && tids.size() < size; ++tid) {
        h = Rng::mix(h + tid);
        if (h % 3 == 0)
            tids.push_back(tid);
    }
    if (tids.empty())
        tids.push_back(static_cast<int>(h % 16));
    return tids;
}

TEST(PolicyInvariantsTest, PickIsAlwaysAMemberOfRunnable)
{
    for (const PolicyCase &pc : policyCases()) {
        auto policy = pc.make();
        for (std::uint64_t step = 1; step <= 400; ++step) {
            std::vector<int> runnable = runnableSet(step);
            int chosen = policy->pick(runnable, step);
            EXPECT_TRUE(std::count(runnable.begin(), runnable.end(),
                                   chosen))
                << pc.name << " step " << step << " chose t" << chosen;
        }
    }
}

TEST(PolicyInvariantsTest, LoneRunnableThreadIsNeverStarved)
{
    for (const PolicyCase &pc : policyCases()) {
        auto policy = pc.make();
        for (std::uint64_t step = 1; step <= 400; ++step) {
            int tid = static_cast<int>(Rng::mix(step) % 16);
            EXPECT_EQ(policy->pick({tid}, step), tid)
                << pc.name << " step " << step;
        }
    }
}

TEST(PolicyInvariantsTest, PickIsAPureFunctionOfSeedRunnableStep)
{
    for (const PolicyCase &pc : policyCases()) {
        // Record a forward pass on one fresh instance...
        auto forward = pc.make();
        std::vector<int> picks;
        for (std::uint64_t step = 1; step <= 200; ++step)
            picks.push_back(forward->pick(runnableSet(step), step));

        // ...then replay the queries on a second fresh instance in
        // *reverse* order, with each query asked twice.  A policy
        // with hidden mutable state (an RNG stream, a cursor) would
        // disagree; a pure function cannot.
        auto backward = pc.make();
        for (std::uint64_t step = 200; step >= 1; --step) {
            std::vector<int> runnable = runnableSet(step);
            int first = backward->pick(runnable, step);
            int again = backward->pick(runnable, step);
            EXPECT_EQ(first, picks[step - 1])
                << pc.name << " step " << step
                << " depends on call history";
            EXPECT_EQ(again, first)
                << pc.name << " step " << step << " is not idempotent";
        }
    }
}

TEST(PolicyInvariantsTest, FifoIsRoundRobin)
{
    FifoPolicy fifo;
    std::vector<int> runnable = {2, 5, 9};
    for (std::uint64_t step = 1; step <= 9; ++step)
        EXPECT_EQ(fifo.pick(runnable, step),
                  runnable[(step - 1) % runnable.size()])
            << "step " << step;
}

TEST(PolicyInvariantsTest, DistinctSeedsDiversifySchedules)
{
    // Not an invariant of any single policy, but the reason the
    // explorer fans over seeds: across 64 seeds the random policy
    // must exercise more than one choice at a 4-way branch point.
    std::vector<int> runnable = {0, 1, 2, 3};
    std::vector<int> seen;
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        RandomPolicy policy(seed);
        int chosen = policy.pick(runnable, 7);
        if (!std::count(seen.begin(), seen.end(), chosen))
            seen.push_back(chosen);
    }
    EXPECT_GT(seen.size(), 1u);
}

} // namespace
} // namespace dcatch::sim
