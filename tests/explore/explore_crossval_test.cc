/**
 * @file
 * Tier-1 ground-truth cross-validation of the schedule explorer
 * against the detector (ISSUE 5 acceptance): on every benchmark, an
 * adversarial campaign at fixed seeds must (a) replay-verify every
 * failing run from its bundle, (b) shrink it to a minimized schedule
 * that replays to the *same* failure signature byte-for-byte, and
 * (c) map the failure back to a candidate DCatch predicted from the
 * monitored correct run — an unmapped failure is a detector false
 * negative and fails the test.
 */

#include <gtest/gtest.h>

#include "apps/benchmark.hh"
#include "explore/explorer.hh"

namespace dcatch::explore {
namespace {

/** The campaign every test case runs: the bench/CLI default policy
 *  family at the fixed seed base the floors are calibrated to. */
ExploreOptions
campaignOptions()
{
    ExploreOptions options;
    options.runsPerPolicy = 5;
    options.jobs = 0; // hardware concurrency; results are identical
    options.seedBase = 1;
    options.shrink = true;
    options.crossValidate = true;
    return options;
}

class ExploreCrossvalTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ExploreCrossvalTest, FailuresMapToCandidatesAndReplay)
{
    const apps::Benchmark &bench = apps::benchmark(GetParam());
    ExploreOptions options = campaignOptions();
    options.bundleDir =
        ::testing::TempDir() + "explore_crossval_" + bench.id;

    const std::vector<PolicySpec> policies =
        parsePolicyList("random,pct:3,delay:2");
    CampaignResult result = explore(bench, policies, options);

    EXPECT_EQ(result.benchmarkId, bench.id);
    EXPECT_GT(result.monitoredSteps, 0u);
    ASSERT_EQ(result.runs.size(),
              policies.size() * std::size_t(options.runsPerPolicy));
    ASSERT_EQ(result.coverage.size(), policies.size());

    for (const RunRecord &rec : result.runs) {
        if (!rec.failed) {
            EXPECT_TRUE(rec.signature.empty())
                << rec.policy << " seed " << rec.seed;
            continue;
        }
        SCOPED_TRACE(bench.id + " " + rec.policy + " seed " +
                     std::to_string(rec.seed));
        EXPECT_FALSE(rec.signature.empty());

        // (a) the captured bundle replays the failure identically.
        EXPECT_TRUE(rec.replayVerified);
        EXPECT_FALSE(rec.bundleDir.empty());

        // (b) the minimized schedule reproduces the same signature.
        EXPECT_TRUE(rec.minimizedVerified);
        EXPECT_EQ(rec.minimizedSignature, rec.signature);
        EXPECT_LE(rec.shrunkPrefix, rec.decisions);

        // (c) the failure's racing site pair is in DCatch's report.
        EXPECT_TRUE(rec.crossValidated)
            << "explorer found a failure DCatch did not predict "
               "(false negative): "
            << rec.signature;
        EXPECT_FALSE(rec.matchedPair.empty());
        EXPECT_FALSE(rec.matchTier.empty());
    }

    EXPECT_TRUE(result.allBundlesVerified());
    EXPECT_TRUE(result.allMinimizedVerified());
    EXPECT_TRUE(result.allFailuresCrossValidated());

    // At this fixed seed set the adversarial policies demonstrably
    // reach failing interleavings on the two floor-gated benchmarks
    // (scripts/explore_floor.json) — the campaign is not vacuous.
    if (bench.id == "MR-3274" || bench.id == "ZK-1270")
        EXPECT_GE(result.failures(), 1);
}

std::vector<const char *>
benchmarkIds()
{
    std::vector<const char *> ids;
    for (const apps::Benchmark &b : apps::allBenchmarks())
        ids.push_back(b.id.c_str());
    return ids;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, ExploreCrossvalTest,
    ::testing::ValuesIn(benchmarkIds()),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

/** The campaign result is a pure value: any worker count produces
 *  byte-identical JSON (index-addressed record slots). */
TEST(ExploreDeterminismTest, JobCountDoesNotChangeTheCampaign)
{
    const apps::Benchmark &bench = apps::benchmark("ZK-1144");
    const std::vector<PolicySpec> policies =
        parsePolicyList("random,pct:3");
    ExploreOptions options = campaignOptions();
    options.runsPerPolicy = 3;
    options.crossValidate = false; // horizon-only monitored stage

    options.jobs = 1;
    CampaignResult serial = explore(bench, policies, options);
    options.jobs = 4;
    CampaignResult parallel = explore(bench, policies, options);

    EXPECT_EQ(serial.toJson().dump(), parallel.toJson().dump());
}

} // namespace
} // namespace dcatch::explore
