/**
 * @file
 * Unit tests for the trace layer: record naming and categories,
 * tracer policies (selective / full / focused / disabled), store
 * statistics, and file round-trip.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "trace/trace_store.hh"

namespace dcatch::trace {
namespace {

Record
mkRecord(RecordType type, int thread, const std::string &site,
         const std::string &id, std::int64_t aux = 0)
{
    Record rec;
    rec.type = type;
    rec.node = 0;
    rec.thread = thread;
    rec.site = site;
    rec.id = id;
    rec.aux = aux;
    rec.callstack = "t" + std::to_string(thread) + ":frame";
    return rec;
}

TEST(RecordTest, TypeNamesRoundTrip)
{
    for (int i = 0; i <= static_cast<int>(RecordType::LoopExit); ++i) {
        auto type = static_cast<RecordType>(i);
        RecordType parsed;
        ASSERT_TRUE(parseRecordType(recordTypeName(type), parsed));
        EXPECT_EQ(parsed, type);
    }
    RecordType dummy;
    EXPECT_FALSE(parseRecordType("NotARecord", dummy));
}

TEST(RecordTest, LineRoundTrip)
{
    Record rec = mkRecord(RecordType::MemWrite, 3, "a.site/x",
                          "map:n/j#k", 42);
    rec.seq = 17;
    rec.node = 2;
    Record parsed;
    ASSERT_TRUE(Record::fromLine(rec.toLine(), parsed));
    EXPECT_EQ(parsed.seq, rec.seq);
    EXPECT_EQ(parsed.type, rec.type);
    EXPECT_EQ(parsed.node, rec.node);
    EXPECT_EQ(parsed.thread, rec.thread);
    EXPECT_EQ(parsed.site, rec.site);
    EXPECT_EQ(parsed.id, rec.id);
    EXPECT_EQ(parsed.aux, rec.aux);
    EXPECT_EQ(parsed.callstack, rec.callstack);
}

TEST(RecordTest, MalformedLinesRejected)
{
    Record rec;
    EXPECT_FALSE(Record::fromLine("", rec));
    EXPECT_FALSE(Record::fromLine("17 Bogus n0 t0 site=a id=b aux=0 cs=c",
                                  rec));
    EXPECT_FALSE(Record::fromLine("notanumber MemRead n0 t0 site=a id=b "
                                  "aux=0 cs=c",
                                  rec));
    EXPECT_FALSE(Record::fromLine("1 MemRead n0 t0 site=a id=b", rec));
}

TEST(RecordTest, CategoriesCoverAllTypes)
{
    EXPECT_EQ(recordCategory(RecordType::MemRead), RecordCategory::Mem);
    EXPECT_EQ(recordCategory(RecordType::RpcBegin),
              RecordCategory::RpcSocket);
    EXPECT_EQ(recordCategory(RecordType::MsgSend),
              RecordCategory::RpcSocket);
    EXPECT_EQ(recordCategory(RecordType::EventCreate),
              RecordCategory::Event);
    EXPECT_EQ(recordCategory(RecordType::ThreadJoin),
              RecordCategory::Thread);
    EXPECT_EQ(recordCategory(RecordType::CoordPushed),
              RecordCategory::Coord);
    EXPECT_EQ(recordCategory(RecordType::LockRelease),
              RecordCategory::Lock);
    EXPECT_EQ(recordCategory(RecordType::LoopIter),
              RecordCategory::Loop);
}

TEST(TracerTest, SelectivePolicyFiltersUnscopedAccesses)
{
    Tracer tracer;
    EXPECT_TRUE(tracer.recordMemAccess(
        mkRecord(RecordType::MemRead, 0, "s", "var:x"), true));
    EXPECT_FALSE(tracer.recordMemAccess(
        mkRecord(RecordType::MemRead, 0, "s", "var:x"), false));
    EXPECT_EQ(tracer.store().totalRecords(), 1u);
}

TEST(TracerTest, FullPolicyKeepsEverything)
{
    TracerConfig config;
    config.selectiveMemory = false;
    Tracer tracer(config);
    EXPECT_TRUE(tracer.recordMemAccess(
        mkRecord(RecordType::MemRead, 0, "s", "var:x"), false));
}

TEST(TracerTest, FocusOverridesScopeAndRestrictsVars)
{
    TracerConfig config;
    config.focusVars = {"var:x"};
    Tracer tracer(config);
    // Focused variable: recorded even outside the traced scope.
    EXPECT_TRUE(tracer.recordMemAccess(
        mkRecord(RecordType::MemWrite, 0, "s", "var:x"), false));
    // Other variables: dropped even inside the scope.
    EXPECT_FALSE(tracer.recordMemAccess(
        mkRecord(RecordType::MemWrite, 0, "s", "var:y"), true));
}

TEST(TracerTest, DisabledMemoryAndOps)
{
    TracerConfig config;
    config.traceMemory = false;
    config.traceOps = false;
    config.traceLocks = false;
    Tracer tracer(config);
    EXPECT_FALSE(tracer.recordMemAccess(
        mkRecord(RecordType::MemRead, 0, "s", "var:x"), true));
    tracer.recordOp(mkRecord(RecordType::MsgSend, 0, "s", "m-1"));
    tracer.recordLockOp(mkRecord(RecordType::LockAcquire, 0, "s", "L"));
    EXPECT_EQ(tracer.store().totalRecords(), 0u);
}

TEST(TraceStoreTest, PerThreadLogsAndGlobalOrder)
{
    TraceStore store;
    for (int i = 0; i < 6; ++i) {
        Record rec = mkRecord(RecordType::MemWrite, i % 2, "s",
                              "var:" + std::to_string(i));
        rec.seq = store.nextSeq();
        store.append(rec);
    }
    EXPECT_EQ(store.threadCount(), 2);
    EXPECT_EQ(store.threadLog(0).size(), 3u);
    EXPECT_EQ(store.threadLog(1).size(), 3u);
    auto all = store.allRecords();
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1].seq, all[i].seq);
}

TEST(TraceStoreTest, DirectoryRoundTrip)
{
    TraceStore store;
    for (int i = 0; i < 10; ++i) {
        Record rec = mkRecord(
            i % 2 ? RecordType::MemRead : RecordType::MemWrite, i % 3,
            "site" + std::to_string(i), "var:x", i);
        rec.seq = store.nextSeq();
        store.append(rec);
    }
    std::string dir =
        (std::filesystem::temp_directory_path() / "dcatch-trace-test")
            .string();
    std::filesystem::remove_all(dir);
    store.writeToDirectory(dir);

    TraceStore loaded;
    EXPECT_EQ(loaded.loadFromDirectory(dir), 10u);
    auto a = store.allRecords();
    auto b = loaded.allRecords();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].toLine(), b[i].toLine());
    std::filesystem::remove_all(dir);
}

TEST(TraceStoreTest, SerializedBytesMatchesLineLengths)
{
    TraceStore store;
    Record rec = mkRecord(RecordType::MemWrite, 0, "s", "var:x");
    rec.seq = store.nextSeq();
    store.append(rec);
    EXPECT_EQ(store.serializedBytes(), rec.toLine().size() + 1);
}

} // namespace
} // namespace dcatch::trace
