/**
 * @file
 * Unit tests for the trace layer: record naming and categories,
 * line parsing (including a table of malformed inputs), tracer
 * policies (selective / full / focused / disabled), store statistics,
 * file round-trip, and corrupt-trace reporting.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>

#include "trace/trace_store.hh"

namespace dcatch::trace {
namespace {

Record
mkRecord(SymbolPool &pool, RecordType type, int thread,
         const std::string &site, const std::string &id,
         std::int64_t aux = 0)
{
    Record rec;
    rec.type = type;
    rec.node = 0;
    rec.thread = thread;
    rec.site = pool.intern(site);
    rec.id = pool.intern(id);
    rec.aux = aux;
    rec.callstack =
        pool.intern("t" + std::to_string(thread) + ":frame");
    return rec;
}

TEST(RecordTest, TypeNamesRoundTrip)
{
    for (int i = 0; i <= static_cast<int>(RecordType::LoopExit); ++i) {
        auto type = static_cast<RecordType>(i);
        RecordType parsed;
        ASSERT_TRUE(parseRecordType(recordTypeName(type), parsed));
        EXPECT_EQ(parsed, type);
    }
    RecordType dummy;
    EXPECT_FALSE(parseRecordType("NotARecord", dummy));
}

TEST(RecordTest, LineRoundTrip)
{
    SymbolPool pool;
    Record rec = mkRecord(pool, RecordType::MemWrite, 3, "a.site/x",
                          "map:n/j#k", 42);
    rec.seq = 17;
    rec.node = 2;
    Record parsed;
    ASSERT_TRUE(Record::fromLine(rec.toLine(pool), pool, parsed));
    EXPECT_EQ(parsed.seq, rec.seq);
    EXPECT_EQ(parsed.type, rec.type);
    EXPECT_EQ(parsed.node, rec.node);
    EXPECT_EQ(parsed.thread, rec.thread);
    EXPECT_EQ(parsed.site, rec.site);
    EXPECT_EQ(parsed.id, rec.id);
    EXPECT_EQ(parsed.aux, rec.aux);
    EXPECT_EQ(parsed.callstack, rec.callstack);
}

TEST(RecordTest, LineRoundTripExtremes)
{
    SymbolPool pool;
    Record rec = mkRecord(pool, RecordType::LoopExit, 0, "s", "x");
    rec.seq = std::numeric_limits<std::uint64_t>::max();
    rec.aux = std::numeric_limits<std::int64_t>::min();
    rec.node = -1;
    Record parsed;
    ASSERT_TRUE(Record::fromLine(rec.toLine(pool), pool, parsed));
    EXPECT_EQ(parsed.seq, rec.seq);
    EXPECT_EQ(parsed.aux, rec.aux);
    EXPECT_EQ(parsed.node, rec.node);
}

TEST(RecordTest, CallstackWithSpacesRoundTrips)
{
    // The callstack is the trailing field: embedded spaces re-join.
    SymbolPool pool;
    Record rec = mkRecord(pool, RecordType::MemRead, 1, "s", "v");
    rec.callstack = pool.intern("t1:op new Thread:run");
    Record parsed;
    ASSERT_TRUE(Record::fromLine(rec.toLine(pool), pool, parsed));
    EXPECT_EQ(pool.view(parsed.callstack), "t1:op new Thread:run");
}

TEST(RecordTest, LineLengthMatchesToLine)
{
    SymbolPool pool;
    Record rec = mkRecord(pool, RecordType::MemWrite, 7, "site/a:b",
                          "var:x", -123456789);
    rec.seq = 90210;
    rec.node = 12;
    EXPECT_EQ(rec.lineLength(pool), rec.toLine(pool).size());

    Record zero;
    EXPECT_EQ(zero.lineLength(pool), zero.toLine(pool).size());
}

TEST(RecordTest, MalformedLinesRejected)
{
    struct Case
    {
        const char *name;
        const char *line;
        const char *reason; ///< substring expected in the error
    };
    static const Case kCases[] = {
        {"empty", "", "truncated"},
        {"truncated-missing-aux-cs", "1 MemRead n0 t0 site=a id=b",
         "truncated"},
        {"truncated-missing-cs",
         "1 MemRead n0 t0 site=a id=b aux=0", "truncated"},
        {"unknown-type", "17 Bogus n0 t0 site=a id=b aux=0 cs=c",
         "unknown record type"},
        {"seq-not-numeric",
         "notanumber MemRead n0 t0 site=a id=b aux=0 cs=c", "seq"},
        {"seq-negative", "-4 MemRead n0 t0 site=a id=b aux=0 cs=c",
         "seq"},
        {"seq-overflow",
         "99999999999999999999999 MemRead n0 t0 site=a id=b aux=0 cs=c",
         "seq"},
        {"node-missing-prefix", "1 MemRead 0 t0 site=a id=b aux=0 cs=c",
         "n<int>"},
        {"node-not-numeric", "1 MemRead nX t0 site=a id=b aux=0 cs=c",
         "n<int>"},
        {"node-bare-n", "1 MemRead n t0 site=a id=b aux=0 cs=c",
         "n<int>"},
        {"thread-missing-prefix",
         "1 MemRead n0 0 site=a id=b aux=0 cs=c", "t<int>"},
        {"thread-not-numeric",
         "1 MemRead n0 tX site=a id=b aux=0 cs=c", "t<int>"},
        {"thread-negative", "1 MemRead n0 t-1 site=a id=b aux=0 cs=c",
         "negative"},
        {"site-prefix-missing",
         "1 MemRead n0 t0 sote=a id=b aux=0 cs=c", "site="},
        {"site-shifted-by-embedded-space",
         "1 MemRead n0 t0 site=a b id=c aux=0 cs=d", "id="},
        {"id-prefix-missing", "1 MemRead n0 t0 site=a b=c aux=0 cs=d",
         "id="},
        {"aux-prefix-missing", "1 MemRead n0 t0 site=a id=b 0 cs=c",
         "aux="},
        {"aux-not-numeric",
         "1 MemRead n0 t0 site=a id=b aux=zero cs=c", "aux"},
        {"aux-trailing-junk",
         "1 MemRead n0 t0 site=a id=b aux=1x cs=c", "aux"},
        {"cs-prefix-missing", "1 MemRead n0 t0 site=a id=b aux=0 c",
         "cs="},
    };
    for (const Case &c : kCases) {
        SymbolPool pool;
        Record rec;
        std::string why;
        EXPECT_FALSE(Record::fromLine(c.line, pool, rec, &why))
            << c.name << ": accepted " << c.line;
        EXPECT_NE(why.find(c.reason), std::string::npos)
            << c.name << ": error was '" << why << "', expected '"
            << c.reason << "'";
    }
}

TEST(TracerTest, SelectivePolicyFiltersUnscopedAccesses)
{
    Tracer tracer;
    SymbolPool &pool = tracer.store().symbols();
    EXPECT_TRUE(tracer.recordMemAccess(
        mkRecord(pool, RecordType::MemRead, 0, "s", "var:x"), true));
    EXPECT_FALSE(tracer.recordMemAccess(
        mkRecord(pool, RecordType::MemRead, 0, "s", "var:x"), false));
    EXPECT_EQ(tracer.store().totalRecords(), 1u);
}

TEST(TracerTest, FullPolicyKeepsEverything)
{
    TracerConfig config;
    config.selectiveMemory = false;
    Tracer tracer(config);
    EXPECT_TRUE(tracer.recordMemAccess(
        mkRecord(tracer.store().symbols(), RecordType::MemRead, 0, "s",
                 "var:x"),
        false));
}

TEST(TracerTest, FocusOverridesScopeAndRestrictsVars)
{
    TracerConfig config;
    config.focusVars = {"var:x"};
    Tracer tracer(config);
    SymbolPool &pool = tracer.store().symbols();
    // Focused variable: recorded even outside the traced scope.
    EXPECT_TRUE(tracer.recordMemAccess(
        mkRecord(pool, RecordType::MemWrite, 0, "s", "var:x"), false));
    // Other variables: dropped even inside the scope.
    EXPECT_FALSE(tracer.recordMemAccess(
        mkRecord(pool, RecordType::MemWrite, 0, "s", "var:y"), true));
}

TEST(TracerTest, DisabledMemoryAndOps)
{
    TracerConfig config;
    config.traceMemory = false;
    config.traceOps = false;
    config.traceLocks = false;
    Tracer tracer(config);
    SymbolPool &pool = tracer.store().symbols();
    EXPECT_FALSE(tracer.recordMemAccess(
        mkRecord(pool, RecordType::MemRead, 0, "s", "var:x"), true));
    tracer.recordOp(mkRecord(pool, RecordType::MsgSend, 0, "s", "m-1"));
    tracer.recordLockOp(
        mkRecord(pool, RecordType::LockAcquire, 0, "s", "L"));
    EXPECT_EQ(tracer.store().totalRecords(), 0u);
}

TEST(TraceStoreTest, PerThreadLogsAndGlobalOrder)
{
    TraceStore store;
    for (int i = 0; i < 6; ++i) {
        Record rec = mkRecord(store.symbols(), RecordType::MemWrite,
                              i % 2, "s", "var:" + std::to_string(i));
        rec.seq = store.nextSeq();
        store.append(rec);
    }
    EXPECT_EQ(store.threadCount(), 2);
    EXPECT_EQ(store.threadLog(0).size(), 3u);
    EXPECT_EQ(store.threadLog(1).size(), 3u);
    EXPECT_TRUE(store.threadLog(99).empty());

    // The merged view yields strictly increasing sequence numbers.
    std::uint64_t prev = 0;
    std::size_t count = 0;
    for (auto it = store.merged().begin(); it != store.merged().end();
         ++it) {
        if (count > 0)
            EXPECT_LT(prev, (*it).seq());
        prev = (*it).seq();
        ++count;
    }
    EXPECT_EQ(count, store.totalRecords());

    // And mergedRecords materializes the same order.
    auto all = store.mergedRecords();
    ASSERT_EQ(all.size(), 6u);
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1].seq, all[i].seq);
}

TEST(TraceStoreTest, RecordViewResolvesSymbols)
{
    TraceStore store;
    Record rec = mkRecord(store.symbols(), RecordType::MemWrite, 2,
                          "site/a", "var:x", 7);
    rec.seq = store.nextSeq();
    store.append(rec);
    auto view = store.threadLog(2)[0];
    EXPECT_EQ(view.type(), RecordType::MemWrite);
    EXPECT_EQ(view.thread(), 2);
    EXPECT_EQ(view.aux(), 7);
    EXPECT_EQ(view.site(), "site/a");
    EXPECT_EQ(view.id(), "var:x");
    EXPECT_EQ(view.siteSym(), rec.site);
    EXPECT_EQ(view.toLine(), rec.toLine(store.symbols()));
}

TEST(TraceStoreTest, DirectoryRoundTrip)
{
    TraceStore store;
    for (int i = 0; i < 10; ++i) {
        Record rec = mkRecord(
            store.symbols(),
            i % 2 ? RecordType::MemRead : RecordType::MemWrite, i % 3,
            "site" + std::to_string(i), "var:x", i);
        rec.seq = store.nextSeq();
        store.append(rec);
    }
    std::string dir =
        (std::filesystem::temp_directory_path() / "dcatch-trace-test")
            .string();
    std::filesystem::remove_all(dir);
    store.writeToDirectory(dir);

    TraceStore loaded;
    EXPECT_EQ(loaded.loadFromDirectory(dir), 10u);
    ASSERT_EQ(loaded.totalRecords(), store.totalRecords());
    auto a = store.merged().begin();
    auto b = loaded.merged().begin();
    for (; a != store.merged().end(); ++a, ++b)
        EXPECT_EQ((*a).toLine(), (*b).toLine());
    EXPECT_EQ(loaded.contentDigest(), store.contentDigest());
    EXPECT_EQ(loaded.serializedBytes(), store.serializedBytes());
    std::filesystem::remove_all(dir);
}

TEST(TraceStoreTest, LoadReportsCorruptLines)
{
    std::string dir = (std::filesystem::temp_directory_path() /
                       "dcatch-trace-corrupt-test")
                          .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    {
        std::ofstream out(std::filesystem::path(dir) /
                          "thread-000.trace");
        out << "0 MemRead n0 t0 site=a id=b aux=0 cs=c\n";
        out << "1 MemRead n0 t0 site=a id=b\n"; // truncated
    }
    TraceStore store;
    try {
        store.loadFromDirectory(dir);
        FAIL() << "corrupt line was silently accepted";
    } catch (const TraceParseError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("thread-000.trace:2"), std::string::npos)
            << what;
        EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    }
    std::filesystem::remove_all(dir);
}

TEST(TraceStoreTest, LoadReportsOutOfOrderSequence)
{
    std::string dir = (std::filesystem::temp_directory_path() /
                       "dcatch-trace-ooo-test")
                          .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    {
        std::ofstream out(std::filesystem::path(dir) /
                          "thread-000.trace");
        out << "5 MemRead n0 t0 site=a id=b aux=0 cs=c\n";
        out << "3 MemRead n0 t0 site=a id=b aux=0 cs=c\n";
    }
    TraceStore store;
    EXPECT_THROW(store.loadFromDirectory(dir), TraceParseError);
    std::filesystem::remove_all(dir);
}

TEST(TraceStoreTest, SerializedBytesMatchesLineLengths)
{
    TraceStore store;
    Record rec =
        mkRecord(store.symbols(), RecordType::MemWrite, 0, "s", "var:x");
    rec.seq = store.nextSeq();
    store.append(rec);
    EXPECT_EQ(store.serializedBytes(),
              rec.toLine(store.symbols()).size() + 1);
}

TEST(TraceStoreTest, SharedPoolAcrossStores)
{
    TraceStore parent;
    Record rec = mkRecord(parent.symbols(), RecordType::MemWrite, 0,
                          "site/shared", "var:x");
    rec.seq = parent.nextSeq();
    parent.append(rec);

    TraceStore slice(parent.sharedSymbols());
    slice.append(rec);
    EXPECT_EQ(slice.threadLog(0)[0].site(), "site/shared");
    EXPECT_EQ(&slice.symbols(), &parent.symbols());
}

} // namespace
} // namespace dcatch::trace
