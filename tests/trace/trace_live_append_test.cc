/**
 * @file
 * TraceStore single-writer / concurrent-reader contract (the header's
 * concurrency section): one thread appends while reader threads
 * iterate ThreadLogView and MergedView and resolve symbols.  Readers
 * must always observe a consistent prefix — row counts only grow,
 * every observed row is fully readable, per-thread sequence numbers
 * ascend, and a merged iterator yields exactly the snapshot it took
 * at begin().  The TSan CI job runs this test to certify the daemon's
 * live-ingestion path.
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "trace/record.hh"
#include "trace/trace_store.hh"

namespace dcatch::trace {
namespace {

constexpr int kThreads = 4;
constexpr int kPerThread = 4000;

TEST(TraceLiveAppend, ReadersSeeConsistentPrefixes)
{
    TraceStore store;
    // Interning is writer-only; pre-intern everything the appends use
    // so the writer loop never grows the pool concurrently with a
    // reader that calls intern (readers only view()).
    std::vector<SymId> sites, ids;
    for (int t = 0; t < kThreads; ++t) {
        sites.push_back(
            store.symbols().intern("site/t" + std::to_string(t)));
        ids.push_back(
            store.symbols().intern("var:t" + std::to_string(t)));
    }
    SymId callstack = store.symbols().intern("main/loop");

    std::atomic<bool> writing{true};

    std::thread writer([&] {
        for (int i = 0; i < kPerThread; ++i) {
            for (int t = 0; t < kThreads; ++t) {
                Record rec;
                rec.type = (i % 2) == 0 ? RecordType::MemRead
                                        : RecordType::MemWrite;
                rec.node = t % 2;
                rec.thread = t;
                rec.seq = store.nextSeq();
                rec.site = sites[static_cast<std::size_t>(t)];
                rec.callstack = callstack;
                rec.id = ids[static_cast<std::size_t>(t)];
                rec.aux = i;
                store.append(rec);
            }
        }
        writing.store(false, std::memory_order_release);
    });

    // Reader A: per-thread logs.  Sizes are monotone; every visible
    // row has ascending seq and resolvable symbol text.
    std::thread log_reader([&] {
        std::vector<std::size_t> last_size(kThreads, 0);
        do {
            for (int t = 0; t < kThreads; ++t) {
                TraceStore::ThreadLogView log = store.threadLog(t);
                std::size_t size = log.size();
                ASSERT_GE(size,
                          last_size[static_cast<std::size_t>(t)]);
                last_size[static_cast<std::size_t>(t)] = size;
                std::uint64_t prev_seq = 0;
                bool first = true;
                for (std::size_t i = 0; i < size; ++i) {
                    TraceStore::RecordView row = log[i];
                    ASSERT_EQ(row.thread(), t);
                    if (!first)
                        ASSERT_GT(row.seq(), prev_seq);
                    prev_seq = row.seq();
                    first = false;
                    ASSERT_FALSE(row.site().empty());
                    ASSERT_EQ(row.id(),
                              "var:t" + std::to_string(t));
                }
            }
        } while (writing.load(std::memory_order_acquire));
    });

    // Reader B: merged view.  Each iteration snapshots a prefix and
    // must yield it completely, in strictly ascending global order.
    std::thread merge_reader([&] {
        std::size_t last_count = 0;
        do {
            std::size_t counted = 0;
            std::uint64_t prev_seq = 0;
            bool first = true;
            for (TraceStore::RecordView row : store.merged()) {
                if (!first)
                    ASSERT_GT(row.seq(), prev_seq);
                prev_seq = row.seq();
                first = false;
                ++counted;
            }
            // The snapshot can only grow between iterations.
            ASSERT_GE(counted, last_count);
            last_count = counted;
        } while (writing.load(std::memory_order_acquire));
    });

    // Reader C: totals and serialized-size counters are always safe.
    std::thread counter_reader([&] {
        std::size_t last_total = 0;
        do {
            std::size_t total = store.totalRecords();
            ASSERT_GE(total, last_total);
            last_total = total;
        } while (writing.load(std::memory_order_acquire));
    });

    writer.join();
    log_reader.join();
    merge_reader.join();
    counter_reader.join();

    // Quiescent: everything is visible and fully ordered.
    ASSERT_EQ(store.totalRecords(),
              static_cast<std::size_t>(kThreads) * kPerThread);
    std::size_t counted = 0;
    std::uint64_t prev_seq = 0;
    bool first = true;
    for (TraceStore::RecordView row : store.merged()) {
        if (!first)
            ASSERT_GT(row.seq(), prev_seq);
        prev_seq = row.seq();
        first = false;
        ++counted;
    }
    EXPECT_EQ(counted, static_cast<std::size_t>(kThreads) * kPerThread);
}

} // namespace
} // namespace dcatch::trace
