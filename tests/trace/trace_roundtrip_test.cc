/**
 * @file
 * Trace persistence round-trip: for every registered benchmark,
 * writing the monitored trace with TraceStore::writeToDirectory and
 * loading it back reproduces the same records (count, serialized
 * bytes, content digest, per-record lines) and — after re-registering
 * the queue/thread metadata, which the per-thread files do not carry —
 * the same detection output.
 */

#include <gtest/gtest.h>

#include "apps/benchmark.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "runtime/sim.hh"
#include "trace/trace_store.hh"

namespace dcatch {
namespace {

class TraceRoundTripTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TraceRoundTripTest, WriteLoadPreservesRecordsAndDetection)
{
    const apps::Benchmark &bench = apps::benchmark(GetParam());
    sim::Simulation sim(bench.config);
    bench.build(sim);
    sim.run();
    const trace::TraceStore &original = sim.tracer().store();

    std::string dir = ::testing::TempDir() + "trace_roundtrip_" +
                      std::string(GetParam());
    original.writeToDirectory(dir);

    trace::TraceStore loaded;
    std::size_t count = loaded.loadFromDirectory(dir);
    EXPECT_EQ(count, original.totalRecords());
    EXPECT_EQ(loaded.totalRecords(), original.totalRecords());
    EXPECT_EQ(loaded.serializedBytes(), original.serializedBytes());
    EXPECT_EQ(loaded.contentDigest(), original.contentDigest());
    EXPECT_EQ(loaded.countsByCategory(), original.countsByCategory());

    auto a = original.merged().begin();
    auto b = loaded.merged().begin();
    for (std::size_t i = 0; a != original.merged().end();
         ++a, ++b, ++i)
        ASSERT_EQ((*a).toLine(), (*b).toLine()) << "record " << i;

    // The trace files carry records only; queue/thread metadata must
    // be re-registered before analysis (documented contract).
    for (const auto &[id, queue] : original.queues())
        loaded.noteQueue(queue);
    for (const auto &[tid, thread] : original.threads())
        loaded.noteThread(thread);

    auto keys = [](const trace::TraceStore &store) {
        hb::HbGraph graph(store);
        detect::RaceDetector detector;
        std::vector<std::string> out;
        for (const auto &cand : detector.detect(graph))
            out.push_back(cand.callstackKey());
        return out;
    };
    EXPECT_EQ(keys(loaded), keys(original));
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, TraceRoundTripTest,
    ::testing::Values("CA-1011", "HB-4539", "HB-4729", "MR-3274",
                      "MR-4637", "ZK-1144", "ZK-1270"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace dcatch
