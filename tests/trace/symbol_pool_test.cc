/**
 * @file
 * Unit and property tests for the append-only string interner behind
 * the columnar trace substrate: dense first-intern-order ids, the
 * empty-string-is-id-0 invariant, view stability across arena growth,
 * id stability across millions of interns, and the deterministic
 * collect-then-merge pattern under the TaskPool (interning is
 * single-writer; parallel stages collect strings into index-addressed
 * slots and merge them in index order, so the resulting pool is
 * byte-identical regardless of worker count).
 */

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/task_pool.hh"
#include "trace/symbol_pool.hh"

namespace dcatch::trace {
namespace {

TEST(SymbolPoolTest, EmptyStringIsAlwaysIdZero)
{
    SymbolPool pool;
    EXPECT_EQ(pool.size(), 1u);
    EXPECT_EQ(pool.intern(""), 0u);
    EXPECT_EQ(pool.find(""), 0u);
    EXPECT_EQ(pool.view(0), "");
    EXPECT_EQ(pool.size(), 1u);
}

TEST(SymbolPoolTest, IdsAreDenseInFirstInternOrder)
{
    SymbolPool pool;
    EXPECT_EQ(pool.intern("alpha"), 1u);
    EXPECT_EQ(pool.intern("beta"), 2u);
    EXPECT_EQ(pool.intern("alpha"), 1u) << "re-intern is idempotent";
    EXPECT_EQ(pool.intern("gamma"), 3u);
    EXPECT_EQ(pool.size(), 4u);
    EXPECT_EQ(pool.view(1), "alpha");
    EXPECT_EQ(pool.view(2), "beta");
    EXPECT_EQ(pool.view(3), "gamma");
}

TEST(SymbolPoolTest, FindDoesNotIntern)
{
    SymbolPool pool;
    EXPECT_EQ(pool.find("absent"), kNoSym);
    EXPECT_EQ(pool.size(), 1u);
    SymId id = pool.intern("present");
    EXPECT_EQ(pool.find("present"), id);
}

TEST(SymbolPoolTest, LongStringsSpanArenaChunks)
{
    SymbolPool pool;
    // Longer than one 64 KiB arena chunk: must still round-trip.
    std::string big(200 * 1024, 'x');
    big += "tail";
    SymId id = pool.intern(big);
    EXPECT_EQ(pool.view(id), big);
    // And the arena keeps serving small strings afterwards.
    SymId small = pool.intern("small");
    EXPECT_EQ(pool.view(small), "small");
    EXPECT_GT(pool.bytes(), big.size());
}

TEST(SymbolPoolTest, IdsAndViewsStableAcrossAMillionInterns)
{
    SymbolPool pool;
    // Capture early views/ids, then force thousands of arena chunks
    // and many rehashes; the early handles must survive untouched.
    SymId early_id = pool.intern("early-symbol");
    std::string_view early_view = pool.view(early_id);
    const char *early_data = early_view.data();

    constexpr int kCount = 1'000'000;
    std::vector<SymId> first(kCount);
    for (int i = 0; i < kCount; ++i)
        first[static_cast<std::size_t>(i)] =
            pool.intern("sym-" + std::to_string(i));
    EXPECT_EQ(pool.size(), static_cast<std::size_t>(kCount) + 2);

    // Same strings again: identical ids, no growth.
    for (int i = 0; i < kCount; ++i)
        ASSERT_EQ(pool.intern("sym-" + std::to_string(i)),
                  first[static_cast<std::size_t>(i)])
            << "id changed for sym-" << i;
    EXPECT_EQ(pool.size(), static_cast<std::size_t>(kCount) + 2);

    // The early view still points at the same stable bytes.
    EXPECT_EQ(pool.view(early_id), "early-symbol");
    EXPECT_EQ(pool.view(early_id).data(), early_data);
    // Sampled round-trips across the whole range.
    for (int i = 0; i < kCount; i += 9973)
        ASSERT_EQ(pool.view(first[static_cast<std::size_t>(i)]),
                  "sym-" + std::to_string(i));
}

TEST(SymbolPoolTest, ConcurrentReadsSeePublishedSymbols)
{
    SymbolPool pool;
    constexpr std::size_t kCount = 20'000;
    std::vector<SymId> ids(kCount);
    for (std::size_t i = 0; i < kCount; ++i)
        ids[i] = pool.intern("r-" + std::to_string(i));

    // view/find are safe concurrently once the ids are published
    // before the pool fork (the header's single-writer contract).
    TaskPool tasks(8);
    std::vector<char> ok(kCount, 0);
    tasks.parallelFor(kCount, [&](std::size_t i) {
        std::string want = "r-" + std::to_string(i);
        ok[i] = pool.view(ids[i]) == want && pool.find(want) == ids[i];
    });
    for (std::size_t i = 0; i < kCount; ++i)
        ASSERT_TRUE(ok[i]) << "reader " << i << " saw a torn symbol";
}

TEST(SymbolPoolTest, CollectThenMergeIsDeterministicAcrossJobs)
{
    // The pattern every parallel analysis stage uses: bodies write
    // the strings they need into index-addressed slots, and a single
    // writer interns them in index order afterwards.  The resulting
    // pool must be identical for any worker count.
    constexpr std::size_t kCount = 50'000;
    auto build = [](int jobs) {
        TaskPool tasks(jobs);
        std::vector<std::string> slots(kCount);
        tasks.parallelFor(kCount, [&](std::size_t i) {
            slots[i] = "site-" + std::to_string(i % 977) + "/" +
                       std::to_string(i);
        });
        auto pool = std::make_unique<SymbolPool>();
        std::vector<SymId> ids(kCount);
        for (std::size_t i = 0; i < kCount; ++i)
            ids[i] = pool->intern(slots[i]);
        return std::pair(std::move(pool), std::move(ids));
    };

    auto [serial_pool, serial_ids] = build(1);
    for (int jobs : {2, 8}) {
        auto [pool, ids] = build(jobs);
        ASSERT_EQ(pool->size(), serial_pool->size()) << "jobs=" << jobs;
        ASSERT_EQ(ids, serial_ids) << "jobs=" << jobs;
        for (SymId id = 0; id < pool->size(); ++id)
            ASSERT_EQ(pool->view(id), serial_pool->view(id))
                << "jobs=" << jobs << " id=" << id;
    }
}

} // namespace
} // namespace dcatch::trace
