/**
 * @file
 * Behavioural tests for mini HBase, mini Cassandra, and mini
 * ZooKeeper (the detector-independent semantics of each system).
 */

#include <gtest/gtest.h>

#include "apps/cassandra/mini_cassandra.hh"
#include "apps/hbase/mini_hbase.hh"
#include "apps/zookeeper/mini_zk.hh"
#include "runtime/sim.hh"

namespace dcatch::apps {
namespace {

using namespace dcatch::sim;

template <typename Install>
trace::TraceStore
runApp(Install install, RunResult *result_out = nullptr)
{
    Simulation sim;
    install(sim);
    RunResult result = sim.run();
    if (result_out)
        *result_out = result;
    return sim.tracer().store();
}

int
countSite(const trace::TraceStore &store, const std::string &site)
{
    int n = 0;
    for (auto it = store.merged().begin(); it != store.merged().end();
         ++it)
        if ((*it).site() == site)
            ++n;
    return n;
}

std::uint64_t
lastSeqOf(const trace::TraceStore &store, const std::string &site)
{
    std::uint64_t seq = 0;
    for (auto it = store.merged().begin(); it != store.merged().end();
         ++it)
        if ((*it).site() == site)
            seq = (*it).seq();
    return seq;
}

// ---------------------------------------------------------------- HBase

TEST(MiniHBaseTest, SplitAlterRunsFigure3Chain)
{
    RunResult result;
    trace::TraceStore store = runApp(
        [](Simulation &sim) {
            hb::install(sim, hb::Workload::SplitAlter4539);
        },
        &result);
    EXPECT_FALSE(result.failed()) << result.summary();
    // The Figure 3 chain executed end to end: put -> RPC -> event ->
    // znode update -> push -> erase, in that order.
    EXPECT_EQ(countSite(store, hb::kSplitPut), 2);
    EXPECT_EQ(countSite(store, hb::kOpenZkSet), 1);
    EXPECT_EQ(countSite(store, hb::kWatchErase), 2);
    EXPECT_LT(lastSeqOf(store, hb::kSplitPut),
              lastSeqOf(store, hb::kOpenZkSet));
    EXPECT_LT(lastSeqOf(store, hb::kOpenZkSet),
              lastSeqOf(store, hb::kWatchErase));
    // The alter handler saw the drained open set (no abort).
    EXPECT_EQ(countSite(store, hb::kAlterSchema), 1);
}

TEST(MiniHBaseTest, EnableExpireCleansUpOnce)
{
    RunResult result;
    trace::TraceStore store = runApp(
        [](Simulation &sim) {
            hb::install(sim, hb::Workload::EnableExpire4729);
        },
        &result);
    EXPECT_FALSE(result.failed()) << result.summary();
    // The enable handler's delete succeeded; the shutdown handler's
    // best-effort delete then failed silently (aux = -1 attempt).
    EXPECT_EQ(countSite(store, hb::kEnableRemove), 1);
    EXPECT_EQ(countSite(store, hb::kShutRemove), 1);
    for (auto it = store.merged().begin(); it != store.merged().end();
         ++it)
        if ((*it).site() == hb::kShutRemove)
            EXPECT_EQ((*it).aux(), -1) << "second delete finds no znode";
}

// ------------------------------------------------------------ Cassandra

TEST(MiniCassandraTest, GossipPropagatesBeforeMutation)
{
    RunResult result;
    trace::TraceStore store =
        runApp([](Simulation &sim) { ca::install(sim); }, &result);
    EXPECT_FALSE(result.failed()) << result.summary();
    EXPECT_EQ(countSite(store, ca::kGossipApplyToken), 2);
    EXPECT_EQ(countSite(store, ca::kMutateReadToken), 1);
    EXPECT_LT(lastSeqOf(store, ca::kGossipApplyToken),
              lastSeqOf(store, ca::kMutateReadToken))
        << "in the correct run the token arrives before the mutation";
    // The hint was recorded (backup succeeded).
    EXPECT_EQ(countSite(store, ca::kMutateHint), 1);
}

TEST(MiniCassandraTest, RingWatcherExitsAfterToken)
{
    trace::TraceStore store =
        runApp([](Simulation &sim) { ca::install(sim); });
    int loop_exits = 0;
    for (auto it = store.merged().begin(); it != store.merged().end();
         ++it)
        if ((*it).type() == trace::RecordType::LoopExit &&
            (*it).site() == ca::kRingWatchLoopExit)
            ++loop_exits;
    EXPECT_EQ(loop_exits, 1);
}

// ------------------------------------------------------------ ZooKeeper

TEST(MiniZooKeeperTest, ElectionConvergesOnHighestZxid)
{
    RunResult result;
    trace::TraceStore store = runApp(
        [](Simulation &sim) {
            zk::install(sim, zk::Workload::Election1144);
        },
        &result);
    EXPECT_FALSE(result.failed()) << result.summary();
    // Both peers voted; the handler adopted zxid 7 exactly once (the
    // second vote is not greater) and the election loop exited.
    EXPECT_EQ(countSite(store, zk::kVoteWriteHighest), 1);
    int loop_exits = 0;
    for (auto it = store.merged().begin(); it != store.merged().end();
         ++it)
        if ((*it).type() == trace::RecordType::LoopExit &&
            (*it).site() == zk::kElectLoopExit)
            ++loop_exits;
    EXPECT_EQ(loop_exits, 1);
    // The elect read observed the adopted (peer) zxid.
    for (auto it = store.merged().begin(); it != store.merged().end();
         ++it)
        if ((*it).site() == zk::kElectReadHighest)
            EXPECT_EQ((*it).aux(), 2) << "version 2 = the handler's write";
}

TEST(MiniZooKeeperTest, EpochSyncReachesQuorum)
{
    RunResult result;
    trace::TraceStore store = runApp(
        [](Simulation &sim) {
            zk::install(sim, zk::Workload::Epoch1270);
        },
        &result);
    EXPECT_FALSE(result.failed()) << result.summary();
    // Both followers registered, both were sent NEWEPOCH, both acked.
    EXPECT_EQ(countSite(store, zk::kFollowerInfoPut), 4); // 2x(key+map)
    EXPECT_EQ(countSite(store, zk::kLeaderSendEpoch), 2);
    EXPECT_EQ(countSite(store, zk::kAckWrite), 2);
}

} // namespace
} // namespace dcatch::apps
