/**
 * @file
 * Behavioural tests for mini MapReduce itself (not the detector):
 * job lifecycle, the cancel and kill paths, the retry-loop fetch, and
 * the scaling knob.
 */

#include <gtest/gtest.h>

#include "apps/mapreduce/mini_mr.hh"
#include "runtime/sim.hh"

namespace dcatch::apps::mr {
namespace {

using namespace dcatch::sim;

trace::TraceStore
runWorkload(Workload workload, int jobs = 1,
            RunResult *result_out = nullptr)
{
    SimConfig cfg;
    cfg.maxSteps = 10'000'000;
    Simulation sim(cfg);
    install(sim, workload, jobs);
    RunResult result = sim.run();
    if (result_out)
        *result_out = result;
    return sim.tracer().store();
}

int
countRecords(const trace::TraceStore &store, trace::RecordType type,
             const std::string &site)
{
    int n = 0;
    for (auto it = store.merged().begin(); it != store.merged().end();
         ++it)
        if ((*it).type() == type && (*it).site() == site)
            ++n;
    return n;
}

TEST(MiniMrTest, HangWorkloadCompletesCleanly)
{
    RunResult result;
    runWorkload(Workload::Hang3274, 1, &result);
    EXPECT_EQ(result.status, RunStatus::Completed);
    EXPECT_TRUE(result.failures.empty()) << result.summary();
}

TEST(MiniMrTest, TaskIsRegisteredFetchedAndCompleted)
{
    trace::TraceStore store = runWorkload(Workload::Hang3274);
    EXPECT_EQ(countRecords(store, trace::RecordType::MemWrite, kRegPut),
              2); // element + structural write of the put
    EXPECT_GE(
        countRecords(store, trace::RecordType::MemRead, kGetTaskRead), 1);
    // The container's retry loop exited (LoopExit at the loop site).
    EXPECT_EQ(
        countRecords(store, trace::RecordType::LoopExit, kTaskLoopExit),
        1);
    // The cancel arrived after completion: unregister removed the
    // entry without harm.
    EXPECT_EQ(
        countRecords(store, trace::RecordType::MemWrite, kUnregRemove),
        2);
}

TEST(MiniMrTest, KillWorkloadCommitsBeforeKill)
{
    trace::TraceStore store = runWorkload(Workload::Crash4637);
    // The commit handler read a non-empty output path (it did not
    // throw) and then the kill cleared it.
    int commit_reads =
        countRecords(store, trace::RecordType::MemRead, kCommitRead);
    int kill_writes =
        countRecords(store, trace::RecordType::MemWrite, kKillWrite);
    EXPECT_EQ(commit_reads, 1);
    EXPECT_EQ(kill_writes, 1);

    std::uint64_t commit_seq = 0, kill_seq = 0;
    for (auto it = store.merged().begin(); it != store.merged().end();
         ++it) {
        if ((*it).site() == kCommitRead)
            commit_seq = (*it).seq();
        if ((*it).site() == kKillWrite)
            kill_seq = (*it).seq();
    }
    EXPECT_LT(commit_seq, kill_seq)
        << "in the correct run the commit precedes the kill";
}

TEST(MiniMrTest, ScalingRunsAllJobs)
{
    for (int jobs : {2, 5}) {
        RunResult result;
        trace::TraceStore store =
            runWorkload(Workload::Hang3274, jobs, &result);
        EXPECT_FALSE(result.failed()) << result.summary();
        // One registration and one loop exit per job.
        EXPECT_EQ(
            countRecords(store, trace::RecordType::LoopExit,
                         kTaskLoopExit),
            jobs);
    }
}

TEST(MiniMrTest, NmRegistrationReachesAm)
{
    trace::TraceStore store = runWorkload(Workload::Hang3274);
    EXPECT_EQ(
        countRecords(store, trace::RecordType::MemWrite, kNmReadyWrite),
        1);
    EXPECT_EQ(
        countRecords(store, trace::RecordType::MemRead, kNmReadyRead),
        1);
}

TEST(MiniMrTest, SelectiveTraceOmitsBackgroundLoad)
{
    trace::TraceStore store = runWorkload(Workload::Hang3274);
    for (auto it = store.merged().begin(); it != store.merged().end();
         ++it)
        EXPECT_EQ((*it).site().rfind("bg.", 0), std::string_view::npos)
            << "background accesses are outside the traced scope";
}

} // namespace
} // namespace dcatch::apps::mr
