/**
 * @file
 * Unit tests for the shared streaming-detection machinery: the
 * OrderedMemo soundness contract, the epoch window/retention state
 * the serve Session drives, and the batch pipeline's overlap
 * pre-pass (detect/streaming.hh).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "common/chain_frontier.hh"
#include "detect/race_detect.hh"
#include "detect/streaming.hh"
#include "support/trace_builder.hh"

namespace dcatch::detect {
namespace {

using testsupport::TraceBuilder;
using trace::RecordType;

TEST(OrderedMemoTest, PackPairIsCanonicalAndLookupMatches)
{
    EXPECT_EQ(OrderedMemo::packPair(3, 7), OrderedMemo::packPair(7, 3));
    EXPECT_NE(OrderedMemo::packPair(3, 7), OrderedMemo::packPair(3, 8));

    OrderedMemo memo;
    EXPECT_TRUE(memo.empty());
    memo.addPacked({OrderedMemo::packPair(5, 2)});
    EXPECT_EQ(memo.size(), 1u);
    EXPECT_TRUE(memo.ordered(2, 5));
    EXPECT_TRUE(memo.ordered(5, 2));
    EXPECT_FALSE(memo.ordered(2, 6));
}

TEST(StreamingDetectorTest, WindowFillsAndEpochAdvances)
{
    StreamingDetector sd({/*window=*/3, /*retainEpochs=*/2});
    TraceBuilder tb;
    tb.mem(true, 0, 0, "w", "var:x");
    hb::HbGraph graph(tb.store());

    EXPECT_EQ(sd.currentEpoch(), 0u);
    EXPECT_FALSE(sd.noteRecord());
    EXPECT_FALSE(sd.noteRecord());
    EXPECT_TRUE(sd.noteRecord());
    sd.closeEpoch(graph, [](std::uint32_t, int, int) {});
    EXPECT_EQ(sd.currentEpoch(), 1u);
    EXPECT_EQ(sd.stats().epochsClosed, 1u);
    // The window counter reset with the epoch.
    EXPECT_FALSE(sd.noteRecord());
}

/** All pairs (earlier, later) the detector semantics should emit for
 *  @p graph, brute-forced: conflicting (>= 1 write), same variable,
 *  concurrent. */
std::set<std::pair<int, int>>
referencePairs(const hb::HbGraph &graph)
{
    std::set<std::pair<int, int>> want;
    const std::vector<int> &accesses = graph.memAccesses();
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        for (std::size_t j = i + 1; j < accesses.size(); ++j) {
            int u = accesses[i], v = accesses[j];
            const trace::Record &ru = graph.record(u);
            const trace::Record &rv = graph.record(v);
            if (ru.id != rv.id)
                continue;
            bool wu = ru.type == RecordType::MemWrite;
            bool wv = rv.type == RecordType::MemWrite;
            if (!wu && !wv)
                continue;
            if (!graph.concurrent(u, v))
                continue;
            want.insert({std::min(u, v), std::max(u, v)});
        }
    }
    return want;
}

TEST(StreamingDetectorTest, SingleEpochEmitsExactlyTheConcurrentPairs)
{
    TraceBuilder tb;
    tb.mem(true, 0, 0, "w1", "var:x");
    tb.mem(false, 0, 1, "r1", "var:x");
    tb.mem(false, 0, 2, "r2", "var:x"); // read-read with r1: skipped
    tb.mem(true, 1, 3, "w2", "var:y");
    tb.mem(true, 1, 4, "w3", "var:y");
    hb::HbGraph graph(tb.store());

    StreamingDetector sd({/*window=*/64, /*retainEpochs=*/2});
    for (int v : graph.memAccesses()) {
        const trace::Record &rec = graph.record(v);
        sd.noteAccess(rec.id, v,
                      rec.type == RecordType::MemWrite);
        sd.noteRecord();
    }
    std::set<std::pair<int, int>> got;
    sd.closeEpoch(graph, [&](std::uint32_t epoch, int a, int b) {
        EXPECT_EQ(epoch, 0u);
        EXPECT_LT(a, b); // earlier retained access first
        got.insert({a, b});
    });
    EXPECT_EQ(got, referencePairs(graph));
}

TEST(StreamingDetectorTest, RetentionEvictsAgedAccesses)
{
    TraceBuilder tb;
    // One conflicting pair per epoch-sized slice, all on distinct
    // variables so no cross-epoch pair exists to emit.
    for (int e = 0; e < 4; ++e) {
        std::string var = "var:" + std::to_string(e);
        tb.mem(true, 0, 2 * e, "w", var);
        tb.mem(true, 0, 2 * e + 1, "w2", var);
    }
    hb::HbGraph graph(tb.store());

    StreamingDetector sd({/*window=*/2, /*retainEpochs=*/1});
    std::size_t emitted = 0;
    for (int v : graph.memAccesses()) {
        const trace::Record &rec = graph.record(v);
        sd.noteAccess(rec.id, v,
                      rec.type == RecordType::MemWrite);
        if (sd.noteRecord())
            sd.closeEpoch(graph,
                          [&](std::uint32_t, int, int) { ++emitted; });
    }
    EXPECT_EQ(sd.stats().epochsClosed, 4u);
    EXPECT_EQ(emitted, 4u); // each same-epoch pair, nothing stale
    // retain=1 keeps only the epoch that just closed: each of the
    // first three epochs' 2 accesses were evicted by its successor.
    EXPECT_EQ(sd.stats().evictedAccesses, 6u);
    EXPECT_GT(sd.indexBytes(), 0u);
    EXPECT_GT(sd.stats().maxIndexBytes, 0u);

    sd.reset();
    EXPECT_EQ(sd.indexBytes(), 0u);
}

/** A trace with enough shape to exercise grouping: several variables,
 *  repeated static sites, an HB edge ordering one pair. */
trace::TraceStore &
mixedTrace(TraceBuilder &tb)
{
    tb.mem(true, 0, 0, "w", "var:x", 1);
    tb.add(RecordType::ThreadCreate, 0, 0, "spawn", "thr:1");
    tb.add(RecordType::ThreadBegin, 0, 1, "begin", "thr:1");
    tb.mem(false, 0, 1, "r", "var:x", 1); // ordered after w by fork
    tb.mem(false, 0, 2, "r", "var:x", 2); // concurrent with w
    for (int i = 0; i < 3; ++i) {
        tb.mem(true, 1, 3, "w2", "var:y", i);
        tb.mem(false, 1, 4, "r2", "var:y", i);
    }
    tb.mem(true, 1, 5, "w3", "var:z");
    return tb.store();
}

TEST(StreamingDetectorTest, BruteForcedMemoLeavesDetectOutputIdentical)
{
    TraceBuilder tb;
    hb::HbGraph graph(mixedTrace(tb));

    RaceDetector detector;
    std::vector<Candidate> base = detector.detect(graph);

    // A memo holding every genuinely ordered access pair — the
    // maximal coverage any pre-pass could reach.  detect() must not
    // change a byte of output for any memo between empty and this.
    AccessPlan plan = AccessPlan::build(graph);
    OrderedMemo memo;
    std::vector<std::uint64_t> packed;
    const std::vector<int> &accesses = graph.memAccesses();
    for (std::size_t i = 0; i < accesses.size(); ++i)
        for (std::size_t j = i + 1; j < accesses.size(); ++j)
            if (!graph.concurrent(accesses[i], accesses[j]))
                packed.push_back(OrderedMemo::packPair(accesses[i],
                                                       accesses[j]));
    memo.addPacked(packed);

    std::vector<Candidate> memoized =
        detector.detect(graph, nullptr, &plan, &memo);
    ASSERT_EQ(memoized.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(memoized[i].var, base[i].var);
        EXPECT_EQ(memoized[i].dynamicPairs, base[i].dynamicPairs);
        EXPECT_EQ(memoized[i].a.vertex, base[i].a.vertex);
        EXPECT_EQ(memoized[i].b.vertex, base[i].b.vertex);
        EXPECT_EQ(memoized[i].callstackKey(), base[i].callstackKey());
    }
}

TEST(StreamingDetectorTest, PrepassShardUnionIsShardCountInvariant)
{
    TraceBuilder tb;
    hb::HbGraph graph(mixedTrace(tb));
    AccessPlan plan = AccessPlan::build(graph);

    // Snapshot where one chain covers every vertex: all forward pairs
    // are "ordered", so the pre-pass must surface exactly the pairs
    // detect() enumerates — any strided split of the work units
    // included.
    std::vector<std::vector<int>> preds(graph.size());
    std::vector<int> chainHint(graph.size());
    for (std::size_t v = 0; v < graph.size(); ++v) {
        chainHint[v] = static_cast<int>(v) - 1;
        if (v > 0)
            preds[v].push_back(static_cast<int>(v) - 1);
    }
    ChainFrontierIndex snapshot;
    snapshot.build(preds, chainHint);

    auto run = [&](std::size_t shards) {
        std::set<std::uint64_t> ordered;
        std::set<std::uint32_t> epochs;
        for (std::size_t s = 0; s < shards; ++s) {
            std::vector<std::uint64_t> pairs;
            std::unordered_set<std::uint32_t> touched;
            StreamingDetector::prepassShard(plan, snapshot, s, shards,
                                            /*window=*/4, pairs,
                                            touched);
            ordered.insert(pairs.begin(), pairs.end());
            epochs.insert(touched.begin(), touched.end());
        }
        return std::make_pair(ordered, epochs);
    };

    auto [one_pairs, one_epochs] = run(1);
    auto [three_pairs, three_epochs] = run(3);
    EXPECT_FALSE(one_pairs.empty());
    EXPECT_EQ(one_pairs, three_pairs);
    EXPECT_EQ(one_epochs, three_epochs);
}

TEST(StreamingDetectorTest, PrepassAgainstEdgelessSnapshotOrdersNothing)
{
    TraceBuilder tb;
    hb::HbGraph graph(mixedTrace(tb));
    AccessPlan plan = AccessPlan::build(graph);

    std::vector<std::vector<int>> preds(graph.size());
    std::vector<int> chainHint(graph.size(), -1);
    ChainFrontierIndex snapshot;
    snapshot.build(preds, chainHint);

    std::vector<std::uint64_t> pairs;
    std::unordered_set<std::uint32_t> touched;
    StreamingDetector::prepassShard(plan, snapshot, 0, 1, /*window=*/4,
                                    pairs, touched);
    EXPECT_TRUE(pairs.empty());
    EXPECT_FALSE(touched.empty());
}

} // namespace
} // namespace dcatch::detect
