/**
 * @file
 * Unit tests for the race detector and report counting.
 */

#include <gtest/gtest.h>

#include "detect/race_detect.hh"
#include "support/trace_builder.hh"

namespace dcatch::detect {
namespace {

using testsupport::TraceBuilder;
using trace::RecordType;

TEST(RaceDetectTest, ReportsConcurrentConflictingPair)
{
    TraceBuilder tb;
    tb.mem(true, 0, 0, "w", "var:x", 1);
    tb.mem(false, 0, 1, "r", "var:x", 1);
    hb::HbGraph g(tb.store());
    auto cands = RaceDetector().detect(g);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0].var, "var:x");
    EXPECT_EQ(sitePair(cands[0].a.site, cands[0].b.site),
              sitePair("w", "r"));
}

TEST(RaceDetectTest, IgnoresReadReadPairs)
{
    TraceBuilder tb;
    tb.mem(false, 0, 0, "r1", "var:x");
    tb.mem(false, 0, 1, "r2", "var:x");
    hb::HbGraph g(tb.store());
    EXPECT_TRUE(RaceDetector().detect(g).empty());
}

TEST(RaceDetectTest, IgnoresDifferentVariables)
{
    TraceBuilder tb;
    tb.mem(true, 0, 0, "w", "var:x");
    tb.mem(true, 0, 1, "w2", "var:y");
    hb::HbGraph g(tb.store());
    EXPECT_TRUE(RaceDetector().detect(g).empty());
}

TEST(RaceDetectTest, IgnoresOrderedPairs)
{
    TraceBuilder tb;
    // Fork edge orders the write before the child's read.
    tb.mem(true, 0, 0, "w", "var:x");
    tb.add(RecordType::ThreadCreate, 0, 0, "spawn", "thr:1");
    tb.add(RecordType::ThreadBegin, 0, 1, "begin", "thr:1");
    tb.mem(false, 0, 1, "r", "var:x");
    hb::HbGraph g(tb.store());
    EXPECT_TRUE(RaceDetector().detect(g).empty());
}

TEST(RaceDetectTest, ReportsWriteWritePair)
{
    TraceBuilder tb;
    tb.mem(true, 0, 0, "w1", "var:x");
    tb.mem(true, 1, 1, "w2", "var:x");
    hb::HbGraph g(tb.store());
    auto cands = RaceDetector().detect(g);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_TRUE(cands[0].a.isWrite);
    EXPECT_TRUE(cands[0].b.isWrite);
}

TEST(RaceDetectTest, DeduplicatesDynamicInstancesIntoOneReport)
{
    TraceBuilder tb;
    // Same static race executed three times.
    for (int i = 0; i < 3; ++i) {
        tb.mem(true, 0, 0, "w", "var:x", i + 1);
        tb.mem(false, 0, 1, "r", "var:x", i + 1);
    }
    hb::HbGraph g(tb.store());
    auto cands = RaceDetector().detect(g);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_GT(cands[0].dynamicPairs, 1);
    ReportCounts counts = countReports(cands);
    EXPECT_EQ(counts.staticPairs, 1);
    EXPECT_EQ(counts.callstackPairs, 1);
}

TEST(RaceDetectTest, DistinguishesCallstackPairsSharingSites)
{
    TraceBuilder tb;
    // Same site pair under two different callstacks (the CA-1011
    // situation in Table 4, where benign and harmful reports share
    // static identities).
    tb.add(RecordType::MemWrite, 0, 0, "w", "var:x", 1, "csA");
    tb.add(RecordType::MemRead, 0, 1, "r", "var:x", 1, "csB");
    tb.add(RecordType::MemWrite, 0, 2, "w", "var:x", 2, "csC");
    hb::HbGraph g(tb.store());
    auto cands = RaceDetector().detect(g);
    ReportCounts counts = countReports(cands);
    EXPECT_EQ(counts.staticPairs, 2);   // (w,r) and (w,w)
    EXPECT_GE(counts.callstackPairs, 3); // csA/csB, csC/csB, csA/csC
}

TEST(RaceDetectTest, SameThreadHandlerInstancesCanRace)
{
    TraceBuilder tb;
    tb.queue("n0/q", 0, false);
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#0");
    tb.add(RecordType::MemWrite, 0, 1, "h.w", "var:x", 1, "cs1");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#0");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#1");
    tb.add(RecordType::MemWrite, 0, 1, "h.w", "var:x", 2, "cs1");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#1");
    hb::HbGraph g(tb.store());
    auto cands = RaceDetector().detect(g);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0].a.site, "h.w");
    EXPECT_EQ(cands[0].b.site, "h.w");
}

TEST(RaceDetectTest, InstanceBoundKeepsStaticCoverage)
{
    TraceBuilder tb;
    // 50 dynamic instances on each side; with the default bound the
    // detector must still find the (single) static pair.
    for (int i = 0; i < 50; ++i)
        tb.mem(true, 0, 0, "w", "var:x", i + 1);
    for (int i = 0; i < 50; ++i)
        tb.mem(false, 0, 1, "r", "var:x", 50);
    hb::HbGraph g(tb.store());
    auto cands = RaceDetector().detect(g);
    ReportCounts counts = countReports(cands);
    EXPECT_EQ(counts.staticPairs, 1);
}

TEST(RaceDetectTest, CandidateKeysAreOrderIndependent)
{
    Candidate c1;
    c1.var = "var:x";
    c1.a.site = "s1";
    c1.a.callstack = "csA";
    c1.b.site = "s2";
    c1.b.callstack = "csB";
    Candidate c2 = c1;
    std::swap(c2.a, c2.b);
    EXPECT_EQ(c1.staticKey(), c2.staticKey());
    EXPECT_EQ(c1.callstackKey(), c2.callstackKey());
    EXPECT_EQ(c1.sitePairKey(), c2.sitePairKey());
}

} // namespace
} // namespace dcatch::detect
