/**
 * @file
 * Test support: terse construction of synthetic traces for exercising
 * the HB graph rules and the race detector without running a workload.
 */

#ifndef DCATCH_TESTS_SUPPORT_TRACE_BUILDER_HH
#define DCATCH_TESTS_SUPPORT_TRACE_BUILDER_HH

#include <string>

#include "trace/trace_store.hh"

namespace dcatch::testsupport {

/** Builds a TraceStore record by record, auto-assigning sequence
 *  numbers in call order (so call order == global order). */
class TraceBuilder
{
  public:
    /** Append a record; returns its sequence number. */
    std::uint64_t
    add(trace::RecordType type, int node, int thread,
        const std::string &site, const std::string &id,
        std::int64_t aux = 0, const std::string &callstack = "")
    {
        trace::SymbolPool &pool = store_.symbols();
        trace::Record rec;
        rec.type = type;
        rec.node = node;
        rec.thread = thread;
        rec.site = pool.intern(site);
        rec.id = pool.intern(id);
        rec.aux = aux;
        rec.callstack = pool.intern(
            callstack.empty() ? ("t" + std::to_string(thread))
                              : callstack);
        rec.seq = store_.nextSeq();
        store_.append(rec);
        return rec.seq;
    }

    /** Shorthand for memory accesses. */
    std::uint64_t
    mem(bool is_write, int node, int thread, const std::string &site,
        const std::string &var, std::int64_t version = 0)
    {
        return add(is_write ? trace::RecordType::MemWrite
                            : trace::RecordType::MemRead,
                   node, thread, site, var, version);
    }

    /** Register a queue's metadata. */
    void
    queue(const std::string &queue_id, int node, bool single_consumer)
    {
        trace::QueueMeta meta;
        meta.queueId = queue_id;
        meta.node = node;
        meta.singleConsumer = single_consumer;
        store_.noteQueue(meta);
    }

    trace::TraceStore &store() { return store_; }

  private:
    trace::TraceStore store_;
};

} // namespace dcatch::testsupport

#endif // DCATCH_TESTS_SUPPORT_TRACE_BUILDER_HH
