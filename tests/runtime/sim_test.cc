/**
 * @file
 * Integration tests for the simulation substrate: threads, RPC,
 * messages, events, coordination service, shared memory, locks, and
 * failure semantics.
 */

#include <gtest/gtest.h>

#include "runtime/lock.hh"
#include "runtime/shared.hh"
#include "runtime/sim.hh"

namespace dcatch::sim {
namespace {

TEST(SimTest, SpawnedThreadRunsOnNode)
{
    Simulation sim;
    Node &n1 = sim.addNode("n1");
    bool ran = false;
    sim.spawn(nullptr, n1, "worker", [&](ThreadContext &ctx) {
        EXPECT_EQ(ctx.node().name(), "n1");
        ran = true;
    });
    RunResult result = sim.run();
    EXPECT_EQ(result.status, RunStatus::Completed);
    EXPECT_TRUE(ran);
    EXPECT_FALSE(result.failed());
}

TEST(SimTest, ForkJoinTracesAndCompletes)
{
    Simulation sim;
    Node &n1 = sim.addNode("n1");
    std::vector<int> order;
    sim.spawn(nullptr, n1, "parent", [&](ThreadContext &ctx) {
        ThreadHandle child = ctx.sim().spawn(
            &ctx, ctx.node(), "child",
            [&](ThreadContext &) { order.push_back(1); }, false,
            "test.spawn");
        ctx.sim().joinThread(ctx, child, "test.join");
        order.push_back(2);
    });
    EXPECT_FALSE(sim.run().failed());
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);

    // Trace must contain the full fork/join vocabulary.
    auto records = sim.tracer().store().mergedRecords();
    int creates = 0, begins = 0, ends = 0, joins = 0;
    for (const auto &rec : records) {
        switch (rec.type) {
          case trace::RecordType::ThreadCreate: ++creates; break;
          case trace::RecordType::ThreadBegin: ++begins; break;
          case trace::RecordType::ThreadEnd: ++ends; break;
          case trace::RecordType::ThreadJoin: ++joins; break;
          default: break;
        }
    }
    EXPECT_EQ(creates, 1);
    EXPECT_EQ(begins, 2);  // parent + child
    EXPECT_EQ(ends, 2);
    EXPECT_EQ(joins, 1);
}

TEST(SimTest, SynchronousRpcRoundTrip)
{
    Simulation sim;
    Node &server = sim.addNode("server");
    sim.addNode("client");
    server.registerRpc("add", [](ThreadContext &, const Payload &args) {
        return Payload{}.setInt("sum", args.getInt("a") + args.getInt("b"));
    });
    std::int64_t sum = 0;
    sim.spawn(nullptr, sim.node("client"), "caller",
              [&](ThreadContext &ctx) {
                  Payload reply = ctx.rpcCall(
                      "test.call", "server", "add",
                      Payload{}.setInt("a", 2).setInt("b", 40));
                  sum = reply.getInt("sum");
              });
    EXPECT_FALSE(sim.run().failed());
    EXPECT_EQ(sum, 42);
}

TEST(SimTest, RpcToUnknownFunctionReturnsError)
{
    Simulation sim;
    Node &server = sim.addNode("server");
    server.registerRpc("ping", [](ThreadContext &, const Payload &) {
        return Payload{};
    });
    sim.addNode("client");
    std::string error;
    sim.spawn(nullptr, sim.node("client"), "caller",
              [&](ThreadContext &ctx) {
                  Payload reply =
                      ctx.rpcCall("t", "server", "nope", Payload{});
                  error = reply.get("__error");
              });
    EXPECT_FALSE(sim.run().failed());
    EXPECT_EQ(error, "no_such_rpc");
}

TEST(SimTest, AsyncMessageDelivery)
{
    Simulation sim;
    Node &receiver = sim.addNode("receiver");
    sim.addNode("sender");
    std::string got;
    receiver.registerVerb("greet",
                          [&](ThreadContext &, const Payload &msg) {
                              got = msg.get("text");
                          });
    sim.spawn(nullptr, sim.node("sender"), "sender-main",
              [&](ThreadContext &ctx) {
                  ctx.send("t", "receiver", "greet",
                           Payload{}.set("text", "hello"));
                  // Give the dispatcher a chance before finishing.
                  ctx.pause(10);
              });
    EXPECT_FALSE(sim.run().failed());
    EXPECT_EQ(got, "hello");
}

TEST(SimTest, EventQueueDispatchesFifo)
{
    Simulation sim;
    Node &n1 = sim.addNode("n1");
    EventQueue &q = n1.addEventQueue("events", 1);
    std::vector<std::int64_t> seen;
    q.on("tick", [&](ThreadContext &, const Event &e) {
        seen.push_back(e.payload.getInt("i"));
    });
    sim.spawn(nullptr, n1, "producer", [&](ThreadContext &ctx) {
        for (int i = 0; i < 5; ++i)
            ctx.node().queue("events").enqueue(
                ctx, "t.enq", "tick", Payload{}.setInt("i", i));
        ctx.pause(20);
    });
    EXPECT_FALSE(sim.run().failed());
    ASSERT_EQ(seen.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(SimTest, CoordServiceWatchersReceivePush)
{
    Simulation sim;
    Node &writer = sim.addNode("writer");
    Node &watcher = sim.addNode("watcher");
    std::vector<std::string> notes;
    sim.coord().watch(watcher, "/state",
                      [&](ThreadContext &, const CoordNotification &n) {
                          notes.push_back(coordChangeName(n.change) + (":" + n.path));
                      });
    sim.spawn(nullptr, writer, "writer-main", [&](ThreadContext &ctx) {
        EXPECT_TRUE(sim.coord().create(ctx, "t.create", "/state/x", "v1"));
        EXPECT_TRUE(sim.coord().setData(ctx, "t.set", "/state/x", "v2"));
        EXPECT_TRUE(sim.coord().remove(ctx, "t.del", "/state/x"));
        EXPECT_FALSE(sim.coord().remove(ctx, "t.del", "/state/x"));
        ctx.pause(20);
    });
    EXPECT_FALSE(sim.run().failed());
    ASSERT_EQ(notes.size(), 3u);
    EXPECT_EQ(notes[0], "Created:/state/x");
    EXPECT_EQ(notes[1], "DataChanged:/state/x");
    EXPECT_EQ(notes[2], "Deleted:/state/x");
}

TEST(SimTest, SharedVarVersionsAdvance)
{
    Simulation sim;
    Node &n1 = sim.addNode("n1");
    auto var = std::make_shared<SharedVar<int>>(n1, "x", 0);
    sim.spawn(nullptr, n1, "w", [&](ThreadContext &ctx) {
        Frame f(ctx, "handler", ScopeKind::Event, "e:test");
        var->write(ctx, "site.w1", 10);
        EXPECT_EQ(var->read(ctx, "site.r1"), 10);
        var->write(ctx, "site.w2", 20);
        EXPECT_EQ(var->read(ctx, "site.r2"), 20);
    });
    EXPECT_FALSE(sim.run().failed());
    auto records = sim.tracer().store().mergedRecords();
    std::vector<std::int64_t> versions;
    for (const auto &rec : records)
        if (rec.isMemoryAccess())
            versions.push_back(rec.aux);
    ASSERT_EQ(versions.size(), 4u);
    EXPECT_EQ(versions[0], 1);
    EXPECT_EQ(versions[1], 1);
    EXPECT_EQ(versions[2], 2);
    EXPECT_EQ(versions[3], 2);
}

TEST(SimTest, SelectiveTracingSkipsUnscopedAccesses)
{
    Simulation sim;
    Node &n1 = sim.addNode("n1");
    auto var = std::make_shared<SharedVar<int>>(n1, "x", 0);
    sim.spawn(nullptr, n1, "w", [&](ThreadContext &ctx) {
        var->write(ctx, "site.unscoped", 1); // outside any handler
        Frame f(ctx, "handler", ScopeKind::Rpc, "r:test");
        var->write(ctx, "site.scoped", 2);
    });
    EXPECT_FALSE(sim.run().failed());
    int mem_records = 0;
    for (const auto &rec : sim.tracer().store().mergedRecords())
        if (rec.isMemoryAccess())
            ++mem_records;
    EXPECT_EQ(mem_records, 1);
}

TEST(SimTest, FullTracingKeepsAllAccesses)
{
    trace::TracerConfig tc;
    tc.selectiveMemory = false;
    Simulation sim;
    sim.setTracerConfig(tc);
    Node &n1 = sim.addNode("n1");
    auto var = std::make_shared<SharedVar<int>>(n1, "x", 0);
    sim.spawn(nullptr, n1, "w", [&](ThreadContext &ctx) {
        var->write(ctx, "site.unscoped", 1);
        Frame f(ctx, "handler", ScopeKind::Rpc, "r:test");
        var->write(ctx, "site.scoped", 2);
    });
    EXPECT_FALSE(sim.run().failed());
    int mem_records = 0;
    for (const auto &rec : sim.tracer().store().mergedRecords())
        if (rec.isMemoryAccess())
            ++mem_records;
    EXPECT_EQ(mem_records, 2);
}

TEST(SimTest, AbortCrashesWholeNode)
{
    Simulation sim;
    Node &n1 = sim.addNode("n1");
    bool other_survived_too_long = false;
    sim.spawn(nullptr, n1, "sibling", [&](ThreadContext &ctx) {
        // Yield forever; must be unwound when the node crashes.
        for (int i = 0; i < 10000; ++i)
            ctx.yield();
        other_survived_too_long = true;
    });
    sim.spawn(nullptr, n1, "aborter", [&](ThreadContext &ctx) {
        ctx.pause(3);
        ctx.abortNode("site.abort", "fatal state");
    });
    RunResult result = sim.run();
    EXPECT_EQ(result.status, RunStatus::Completed);
    EXPECT_TRUE(result.hasFailure(FailureKind::Abort));
    EXPECT_FALSE(other_survived_too_long);
    EXPECT_TRUE(sim.node("n1").crashed());
}

TEST(SimTest, UncaughtExceptionKillsOnlyThatThread)
{
    Simulation sim;
    Node &n1 = sim.addNode("n1");
    bool sibling_finished = false;
    sim.spawn(nullptr, n1, "thrower", [&](ThreadContext &ctx) {
        ctx.throwUncaught("site.throw", "NPE");
    });
    sim.spawn(nullptr, n1, "sibling", [&](ThreadContext &ctx) {
        ctx.pause(5);
        sibling_finished = true;
    });
    RunResult result = sim.run();
    EXPECT_EQ(result.status, RunStatus::Completed);
    EXPECT_TRUE(result.hasFailure(FailureKind::UncaughtException));
    EXPECT_TRUE(sibling_finished);
    EXPECT_FALSE(sim.node("n1").crashed());
}

TEST(SimTest, FatalLogRecordsFailureAndContinues)
{
    Simulation sim;
    Node &n1 = sim.addNode("n1");
    bool reached_after = false;
    sim.spawn(nullptr, n1, "logger", [&](ThreadContext &ctx) {
        ctx.fatalLog("site.fatal", "bad things");
        reached_after = true;
    });
    RunResult result = sim.run();
    EXPECT_TRUE(result.hasFailure(FailureKind::FatalLog));
    EXPECT_TRUE(reached_after);
}

TEST(SimTest, RetryUntilExitsWhenConditionHolds)
{
    Simulation sim;
    Node &n1 = sim.addNode("n1");
    int value = 0;
    sim.spawn(nullptr, n1, "setter", [&](ThreadContext &ctx) {
        ctx.pause(5);
        value = 7;
    });
    bool ok = false;
    sim.spawn(nullptr, n1, "poller", [&](ThreadContext &ctx) {
        ok = ctx.retryUntil("site.loop", [&] { return value == 7; });
    });
    RunResult result = sim.run();
    EXPECT_FALSE(result.failed());
    EXPECT_TRUE(ok);
}

TEST(SimTest, RetryUntilReportsLoopHang)
{
    SimConfig cfg;
    cfg.loopHangBound = 20;
    Simulation sim(cfg);
    Node &n1 = sim.addNode("n1");
    bool ok = true;
    sim.spawn(nullptr, n1, "poller", [&](ThreadContext &ctx) {
        ok = ctx.retryUntil("site.loop", [] { return false; });
    });
    RunResult result = sim.run();
    EXPECT_FALSE(ok);
    EXPECT_TRUE(result.hasFailure(FailureKind::LoopHang));
}

TEST(SimTest, RpcAgainstCrashedNodeReturnsError)
{
    Simulation sim;
    Node &server = sim.addNode("server");
    server.registerRpc("ping", [](ThreadContext &, const Payload &) {
        return Payload{};
    });
    sim.addNode("client");
    std::string error;
    sim.spawn(nullptr, server, "suicider", [&](ThreadContext &ctx) {
        ctx.abortNode("site.die", "going down");
    });
    sim.spawn(nullptr, sim.node("client"), "caller",
              [&](ThreadContext &ctx) {
                  ctx.pause(10); // let the server die first
                  Payload reply =
                      ctx.rpcCall("t", "server", "ping", Payload{});
                  error = reply.get("__error");
              });
    RunResult result = sim.run();
    EXPECT_EQ(result.status, RunStatus::Completed);
    EXPECT_EQ(error, "node_crashed");
}

TEST(SimTest, LockProvidesMutualExclusion)
{
    Simulation sim;
    Node &n1 = sim.addNode("n1");
    auto lock = std::make_shared<SimLock>(n1, "L");
    int inside = 0;
    bool overlap = false;
    for (int i = 0; i < 3; ++i) {
        sim.spawn(nullptr, n1, "t" + std::to_string(i),
                  [&](ThreadContext &ctx) {
                      for (int k = 0; k < 10; ++k) {
                          Locked guard(*lock, ctx, "site.cs");
                          if (++inside != 1)
                              overlap = true;
                          ctx.yield();
                          --inside;
                      }
                  });
    }
    EXPECT_FALSE(sim.run().failed());
    EXPECT_FALSE(overlap);
}

TEST(SimTest, DeterministicTraceAcrossRuns)
{
    auto run_once = [] {
        Simulation sim;
        Node &n1 = sim.addNode("n1");
        EventQueue &q = n1.addEventQueue("ev", 1);
        auto var = std::make_shared<SharedVar<int>>(n1, "x", 0);
        q.on("bump", [var](ThreadContext &ctx, const Event &) {
            var->write(ctx, "s.w", var->read(ctx, "s.r") + 1);
        });
        sim.spawn(nullptr, n1, "driver", [&](ThreadContext &ctx) {
            for (int i = 0; i < 3; ++i)
                ctx.node().queue("ev").enqueue(ctx, "s.enq", "bump");
            ctx.pause(30);
        });
        sim.run();
        std::vector<std::string> lines;
        const auto &store = sim.tracer().store();
        for (auto it = store.merged().begin(); it != store.merged().end();
             ++it)
            lines.push_back((*it).toLine());
        return lines;
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace dcatch::sim
