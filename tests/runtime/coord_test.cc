/**
 * @file
 * Unit tests for the coordination (ZooKeeper-like) service: znode
 * semantics, revalidation after the control point, watcher delivery
 * order, prefix filtering, and version monotonicity in traces.
 */

#include <gtest/gtest.h>

#include <vector>

#include "runtime/sim.hh"

namespace dcatch::sim {
namespace {

TEST(CoordTest, CreateGetSetRemoveSemantics)
{
    Simulation sim;
    Node &n1 = sim.addNode("n1");
    sim.spawn(nullptr, n1, "main", [&](ThreadContext &ctx) {
        Frame f(ctx, "main", ScopeKind::Message, "m:x");
        CoordService &zk = ctx.sim().coord();
        EXPECT_FALSE(zk.exists(ctx, "t.e", "/a"));
        EXPECT_FALSE(zk.getData(ctx, "t.g", "/a").has_value());
        EXPECT_FALSE(zk.setData(ctx, "t.s", "/a", "v"));
        EXPECT_FALSE(zk.remove(ctx, "t.d", "/a"));

        EXPECT_TRUE(zk.create(ctx, "t.c", "/a", "v1"));
        EXPECT_FALSE(zk.create(ctx, "t.c", "/a", "v2")) << "exists";
        EXPECT_EQ(zk.getData(ctx, "t.g", "/a").value_or(""), "v1");
        EXPECT_TRUE(zk.setData(ctx, "t.s", "/a", "v2"));
        EXPECT_EQ(zk.getData(ctx, "t.g", "/a").value_or(""), "v2");
        EXPECT_TRUE(zk.remove(ctx, "t.d", "/a"));
        EXPECT_FALSE(zk.exists(ctx, "t.e", "/a"));
    });
    EXPECT_FALSE(sim.run().failed());
}

TEST(CoordTest, WatcherPrefixFiltering)
{
    Simulation sim;
    Node &writer = sim.addNode("writer");
    Node &sub = sim.addNode("sub");
    std::vector<std::string> seen;
    sim.coord().watch(sub, "/a/",
                      [&](ThreadContext &, const CoordNotification &n) {
                          seen.push_back(n.path);
                      });
    sim.spawn(nullptr, writer, "main", [&](ThreadContext &ctx) {
        Frame f(ctx, "main", ScopeKind::Message, "m:w");
        sim.coord().create(ctx, "t.c", "/a/x", "1");
        sim.coord().create(ctx, "t.c", "/b/y", "2"); // filtered out
        sim.coord().create(ctx, "t.c", "/a/z", "3");
        ctx.pause(20);
    });
    EXPECT_FALSE(sim.run().failed());
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], "/a/x");
    EXPECT_EQ(seen[1], "/a/z");
}

TEST(CoordTest, NotificationsDeliveredInUpdateOrder)
{
    Simulation sim;
    Node &writer = sim.addNode("writer");
    Node &sub = sim.addNode("sub");
    std::vector<std::int64_t> versions;
    sim.coord().watch(sub, "/s",
                      [&](ThreadContext &, const CoordNotification &n) {
                          versions.push_back(n.version);
                      });
    sim.spawn(nullptr, writer, "main", [&](ThreadContext &ctx) {
        Frame f(ctx, "main", ScopeKind::Message, "m:w");
        sim.coord().create(ctx, "t.c", "/s/k", "0");
        for (int i = 0; i < 5; ++i)
            sim.coord().setData(ctx, "t.s", "/s/k",
                                std::to_string(i));
        ctx.pause(30);
    });
    EXPECT_FALSE(sim.run().failed());
    ASSERT_EQ(versions.size(), 6u);
    for (std::size_t i = 1; i < versions.size(); ++i)
        EXPECT_LT(versions[i - 1], versions[i]);
}

TEST(CoordTest, TwoWatchersBothNotified)
{
    Simulation sim;
    Node &writer = sim.addNode("writer");
    Node &sub1 = sim.addNode("sub1");
    Node &sub2 = sim.addNode("sub2");
    int count1 = 0, count2 = 0;
    sim.coord().watch(sub1, "/s",
                      [&](ThreadContext &, const CoordNotification &) {
                          ++count1;
                      });
    sim.coord().watch(sub2, "/s",
                      [&](ThreadContext &, const CoordNotification &) {
                          ++count2;
                      });
    sim.spawn(nullptr, writer, "main", [&](ThreadContext &ctx) {
        Frame f(ctx, "main", ScopeKind::Message, "m:w");
        sim.coord().create(ctx, "t.c", "/s/k", "v");
        ctx.pause(20);
    });
    EXPECT_FALSE(sim.run().failed());
    EXPECT_EQ(count1, 1);
    EXPECT_EQ(count2, 1);
}

TEST(CoordTest, ZnodeAccessesAreTracedAsMemoryOps)
{
    Simulation sim;
    Node &n1 = sim.addNode("n1");
    sim.spawn(nullptr, n1, "main", [&](ThreadContext &ctx) {
        Frame f(ctx, "main", ScopeKind::Message, "m:x");
        sim.coord().create(ctx, "t.c", "/p", "v");
        sim.coord().getData(ctx, "t.g", "/p");
        sim.coord().remove(ctx, "t.d", "/p");
    });
    sim.run();
    int reads = 0, writes = 0, updates = 0;
    const auto &store = sim.tracer().store();
    for (auto it = store.merged().begin(); it != store.merged().end();
         ++it) {
        auto rec = *it;
        if (rec.id() == "znode:/p") {
            if (rec.type() == trace::RecordType::MemRead)
                ++reads;
            if (rec.type() == trace::RecordType::MemWrite)
                ++writes;
        }
        if (rec.type() == trace::RecordType::CoordUpdate)
            ++updates;
    }
    EXPECT_EQ(reads, 1);
    EXPECT_EQ(writes, 2);  // create + remove
    EXPECT_EQ(updates, 2); // only successful mutations publish
}

} // namespace
} // namespace dcatch::sim
