/**
 * @file
 * Unit tests for the serialized token-passing scheduler.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "runtime/scheduler.hh"

namespace dcatch::sim {
namespace {

TEST(SchedulerTest, RunsSingleThreadToCompletion)
{
    Scheduler sched(std::make_unique<FifoPolicy>());
    int counter = 0;
    sched.addThread([&] { counter = 42; }, /*daemon=*/false);
    EXPECT_EQ(sched.run(1000), RunStatus::Completed);
    EXPECT_EQ(counter, 42);
}

TEST(SchedulerTest, CompletesWithNoThreads)
{
    Scheduler sched(std::make_unique<FifoPolicy>());
    EXPECT_EQ(sched.run(1000), RunStatus::Completed);
}

TEST(SchedulerTest, SerializesExecution)
{
    Scheduler sched(std::make_unique<FifoPolicy>());
    std::atomic<int> inside{0};
    std::atomic<bool> overlap{false};
    for (int i = 0; i < 4; ++i) {
        int tid = i;
        sched.addThread(
            [&, tid] {
                for (int k = 0; k < 50; ++k) {
                    if (inside.fetch_add(1) != 0)
                        overlap = true;
                    inside.fetch_sub(1);
                    sched.yield(tid);
                }
            },
            false);
    }
    EXPECT_EQ(sched.run(100000), RunStatus::Completed);
    EXPECT_FALSE(overlap.load());
}

TEST(SchedulerTest, DaemonThreadsDoNotBlockCompletion)
{
    Scheduler sched(std::make_unique<FifoPolicy>());
    bool flag = false;
    int daemon_tid = 0;
    daemon_tid = sched.addThread(
        [&] {
            // Block forever.
            sched.blockUntil(daemon_tid, [] { return false; });
        },
        /*daemon=*/true);
    sched.addThread([&] { flag = true; }, /*daemon=*/false);
    EXPECT_EQ(sched.run(1000), RunStatus::Completed);
    EXPECT_TRUE(flag);
}

TEST(SchedulerTest, DetectsDeadlock)
{
    Scheduler sched(std::make_unique<FifoPolicy>());
    int tid = 0;
    tid = sched.addThread(
        [&] { sched.blockUntil(tid, [] { return false; }); },
        /*daemon=*/false);
    EXPECT_EQ(sched.run(1000), RunStatus::Deadlock);
}

TEST(SchedulerTest, EnforcesStepLimit)
{
    Scheduler sched(std::make_unique<FifoPolicy>());
    int tid = 0;
    tid = sched.addThread(
        [&] {
            while (true)
                sched.yield(tid);
        },
        /*daemon=*/false);
    EXPECT_EQ(sched.run(100), RunStatus::StepLimit);
    EXPECT_EQ(sched.steps(), 100u);
}

TEST(SchedulerTest, BlockUntilWakesWhenPredicateHolds)
{
    Scheduler sched(std::make_unique<FifoPolicy>());
    bool ready = false;
    bool observed = false;
    int waiter = 0;
    waiter = sched.addThread(
        [&] {
            sched.blockUntil(waiter, [&] { return ready; });
            observed = true;
        },
        false);
    int setter = waiter + 1;
    sched.addThread(
        [&, setter] {
            sched.yield(setter);
            ready = true;
        },
        false);
    EXPECT_EQ(sched.run(1000), RunStatus::Completed);
    EXPECT_TRUE(observed);
}

TEST(SchedulerTest, QuiesceHookCanRescueDeadlock)
{
    Scheduler sched(std::make_unique<FifoPolicy>());
    bool released = false;
    int tid = 0;
    tid = sched.addThread(
        [&] { sched.blockUntil(tid, [&] { return released; }); },
        false);
    int calls = 0;
    auto rescue = [&] {
        ++calls;
        released = true;
        return true;
    };
    EXPECT_EQ(sched.run(1000, rescue), RunStatus::Completed);
    EXPECT_EQ(calls, 1);
}

TEST(SchedulerTest, FifoPolicyIsDeterministic)
{
    auto run_once = [] {
        Scheduler sched(std::make_unique<FifoPolicy>());
        std::vector<int> order;
        for (int i = 0; i < 3; ++i) {
            int tid = i;
            sched.addThread(
                [&, tid] {
                    for (int k = 0; k < 5; ++k) {
                        order.push_back(tid);
                        sched.yield(tid);
                    }
                },
                false);
        }
        sched.run(10000);
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(SchedulerTest, RandomPolicyIsSeedDeterministic)
{
    auto run_once = [](std::uint64_t seed) {
        Scheduler sched(std::make_unique<RandomPolicy>(seed));
        std::vector<int> order;
        for (int i = 0; i < 3; ++i) {
            int tid = i;
            sched.addThread(
                [&, tid] {
                    for (int k = 0; k < 5; ++k) {
                        order.push_back(tid);
                        sched.yield(tid);
                    }
                },
                false);
        }
        sched.run(10000);
        return order;
    };
    EXPECT_EQ(run_once(7), run_once(7));
    EXPECT_NE(run_once(7), run_once(8));
}

TEST(SchedulerTest, DestructorKillsBlockedThreads)
{
    // Scope the scheduler so its destructor runs with a daemon thread
    // still blocked; the test passes if we do not hang or crash.
    {
        Scheduler sched(std::make_unique<FifoPolicy>());
        int tid = 0;
        tid = sched.addThread(
            [&] { sched.blockUntil(tid, [] { return false; }); },
            /*daemon=*/true);
        sched.addThread([] {}, false);
        EXPECT_EQ(sched.run(1000), RunStatus::Completed);
    }
    SUCCEED();
}

TEST(SchedulerTest, ThreadsSpawnedDuringRunAreScheduled)
{
    Scheduler sched(std::make_unique<FifoPolicy>());
    bool child_ran = false;
    int parent = 0;
    parent = sched.addThread(
        [&] {
            int child = sched.addThread([&] { child_ran = true; }, false);
            (void)child;
            sched.yield(parent);
        },
        false);
    EXPECT_EQ(sched.run(1000), RunStatus::Completed);
    EXPECT_TRUE(child_ran);
}

} // namespace
} // namespace dcatch::sim
