/**
 * @file
 * Fault-injection tests: node crashes at deterministic points and the
 * substrate's failure semantics under them — in-flight RPC failure,
 * message dropping, watcher silencing, and survivor-node progress.
 */

#include <gtest/gtest.h>

#include <memory>

#include "runtime/faults.hh"
#include "runtime/lock.hh"
#include "runtime/shared.hh"
#include "runtime/sim.hh"

namespace dcatch::sim {
namespace {

TEST(FaultsTest, InjectedCrashRecordsAbort)
{
    Simulation sim;
    sim.addNode("victim");
    injectCrash(sim, "victim", 3);
    sim.spawn(nullptr, sim.node("victim"), "payload",
              [](ThreadContext &ctx) { ctx.pause(50); });
    RunResult result = sim.run();
    EXPECT_EQ(result.status, RunStatus::Completed);
    EXPECT_TRUE(result.hasFailure(FailureKind::Abort));
    EXPECT_TRUE(sim.node("victim").crashed());
}

TEST(FaultsTest, InFlightRpcFailsWhenServerDies)
{
    Simulation sim;
    Node &server = sim.addNode("server");
    sim.addNode("client");
    // The RPC body stalls long enough for the crash to land mid-call:
    // pause(40) spans hundreds of scheduler steps, so a crash keyed
    // to step 30 arrives with the call dispatched and unanswered.
    server.registerRpc("slow", [](ThreadContext &ctx, const Payload &) {
        ctx.pause(40);
        return Payload{}.set("done", "1");
    });
    injectCrash(sim, "server", 30);
    std::string error;
    sim.spawn(nullptr, sim.node("client"), "caller",
              [&](ThreadContext &ctx) {
                  Payload reply =
                      ctx.rpcCall("t.call", "server", "slow", Payload{});
                  error = reply.get("__error");
              });
    RunResult result = sim.run();
    EXPECT_EQ(result.status, RunStatus::Completed);
    EXPECT_EQ(error, "node_crashed")
        << "caller must not hang on a dead server";
}

TEST(FaultsTest, MessagesToCrashedNodeAreDropped)
{
    Simulation sim;
    Node &receiver = sim.addNode("receiver");
    sim.addNode("sender");
    int delivered = 0;
    receiver.registerVerb("ping", [&](ThreadContext &, const Payload &) {
        ++delivered;
    });
    injectCrash(sim, "receiver", 2);
    sim.spawn(nullptr, sim.node("sender"), "sender-main",
              [](ThreadContext &ctx) {
                  ctx.pause(20); // after the crash
                  ctx.send("t.send", "receiver", "ping", Payload{});
                  ctx.pause(10);
              });
    RunResult result = sim.run();
    EXPECT_EQ(result.status, RunStatus::Completed);
    EXPECT_EQ(delivered, 0);
}

TEST(FaultsTest, CrashedSubscriberStopsReceivingPushes)
{
    Simulation sim;
    Node &writer = sim.addNode("writer");
    Node &watcher = sim.addNode("watcher");
    int notified = 0;
    sim.coord().watch(watcher, "/s",
                      [&](ThreadContext &, const CoordNotification &) {
                          ++notified;
                      });
    injectCrash(sim, "watcher", 2);
    sim.spawn(nullptr, writer, "writer-main", [&](ThreadContext &ctx) {
        ctx.pause(20);
        sim.coord().create(ctx, "t.create", "/s/x", "v");
        ctx.pause(10);
    });
    RunResult result = sim.run();
    EXPECT_EQ(result.status, RunStatus::Completed);
    EXPECT_EQ(notified, 0);
}

TEST(FaultsTest, SurvivorsKeepRunningAfterPeerCrash)
{
    Simulation sim;
    sim.addNode("victim");
    Node &survivor = sim.addNode("survivor");
    auto counter = std::make_shared<SharedVar<int>>(survivor, "c", 0);
    injectCrash(sim, "victim", 2);
    int final_value = 0;
    sim.spawn(nullptr, survivor, "worker", [&](ThreadContext &ctx) {
        Frame f(ctx, "work", ScopeKind::Event, "e:w");
        for (int i = 1; i <= 20; ++i)
            counter->write(ctx, "t.w", i);
        final_value = counter->peek();
    });
    RunResult result = sim.run();
    EXPECT_EQ(result.status, RunStatus::Completed);
    EXPECT_EQ(final_value, 20);
    EXPECT_FALSE(sim.node("survivor").crashed());
}

TEST(FaultsTest, LockHeldByCrashedThreadIsNotReleased)
{
    // A crash while holding a lock leaves it held — like a real node
    // that dies holding external resources; peers on the same node
    // die too, so no survivor deadlocks on it.
    Simulation sim;
    Node &node = sim.addNode("n");
    auto lock = std::make_shared<SimLock>(node, "L");
    injectCrash(sim, "n", 40);
    sim.spawn(nullptr, node, "holder", [&](ThreadContext &ctx) {
        lock->acquire(ctx, "t.acq");
        ctx.pause(100); // spans step 40: crash lands while held
        lock->release(ctx, "t.rel");
    });
    RunResult result = sim.run();
    EXPECT_EQ(result.status, RunStatus::Completed);
    EXPECT_TRUE(sim.node("n").crashed());
}

TEST(FaultsTest, Hb4729StyleWorkloadSurvivesExpiry)
{
    // A miniature of the HB-4729 pattern: expire (crash) a region
    // server after the master finished using its znodes; the master
    // must complete cleanly.
    Simulation sim;
    Node &master = sim.addNode("master");
    Node &rs = sim.addNode("rs");
    bool cleaned = false;
    sim.spawn(nullptr, rs, "rs.startup", [](ThreadContext &ctx) {
        Frame f(ctx, "startup", ScopeKind::Message, "m:rs");
        ctx.sim().coord().create(ctx, "t.create", "/unassigned/r", "x");
    });
    injectCrash(sim, "rs", 100);
    sim.spawn(nullptr, master, "master.cleanup", [&](ThreadContext &ctx) {
        Frame f(ctx, "cleanup", ScopeKind::Message, "m:clean");
        ctx.pause(50); // spans well past step 100: after the expiry
        ctx.sim().coord().remove(ctx, "t.remove", "/unassigned/r");
        cleaned = true;
    });
    RunResult result = sim.run();
    EXPECT_EQ(result.status, RunStatus::Completed);
    EXPECT_TRUE(cleaned);
}

TEST(FaultsTest, InjectionPointIsPolicyIndependent)
{
    // The crash is keyed off the global scheduler step count, so the
    // injection point does not drift with how often a policy admits
    // the injector thread (the historical pause-counting variant
    // did): under *any* policy the node dies at the injector's first
    // admission at or after the requested step, and per seed the
    // failure step is exactly reproducible.
    auto runOnce = [](PolicyKind policy, std::uint64_t seed) {
        SimConfig config;
        config.policy = policy;
        config.seed = seed;
        Simulation sim(config);
        sim.addNode("victim");
        sim.addNode("peer");
        injectCrash(sim, "victim", 25);
        sim.spawn(nullptr, sim.node("victim"), "victim-loop",
                  [](ThreadContext &ctx) { ctx.pause(30); });
        sim.spawn(nullptr, sim.node("peer"), "peer-loop",
                  [](ThreadContext &ctx) { ctx.pause(30); });
        RunResult result = sim.run();
        EXPECT_EQ(result.status, RunStatus::Completed);
        EXPECT_EQ(result.failures.size(), 1u);
        EXPECT_EQ(result.failures.front().site, kInjectedCrashSite);
        return result.failures.front().step;
    };
    std::uint64_t fifo = runOnce(PolicyKind::Fifo, 1);
    std::uint64_t random_a = runOnce(PolicyKind::Random, 7);
    std::uint64_t random_b = runOnce(PolicyKind::Random, 7);
    std::uint64_t random_c = runOnce(PolicyKind::Random, 99);
    EXPECT_EQ(random_a, random_b) << "same seed, same failure step";
    EXPECT_GE(fifo, 25u);
    EXPECT_GE(random_a, 25u);
    EXPECT_GE(random_c, 25u);
}

} // namespace
} // namespace dcatch::sim
