/**
 * @file
 * Tests for the report renderer: the text report names the racing
 * sites, impact rationale, and trigger verdicts; the JSON export
 * carries the same content in machine-readable form.
 */

#include <gtest/gtest.h>

#include "dcatch/report_printer.hh"

namespace dcatch {
namespace {

class ReportPrinterTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        bench_ = &apps::benchmark("MR-3274");
        PipelineOptions options;
        options.measureBase = false;
        options.runTrigger = true;
        result_ = new PipelineResult(runPipeline(*bench_, options));
    }

    static void
    TearDownTestSuite()
    {
        delete result_;
        result_ = nullptr;
    }

    static const apps::Benchmark *bench_;
    static PipelineResult *result_;
};

const apps::Benchmark *ReportPrinterTest::bench_ = nullptr;
PipelineResult *ReportPrinterTest::result_ = nullptr;

TEST_F(ReportPrinterTest, TextNamesTheRootCauseSites)
{
    std::string text = renderReport(*bench_, *result_);
    EXPECT_NE(text.find("mr.am.getTask/jmap.read"), std::string::npos);
    EXPECT_NE(text.find("mr.am.unregister/jmap.remove"),
              std::string::npos);
    EXPECT_NE(text.find("monitored run"), std::string::npos);
}

TEST_F(ReportPrinterTest, TextShowsImpactAndTriggerVerdicts)
{
    std::string text = renderReport(*bench_, *result_);
    EXPECT_NE(text.find("impact:"), std::string::npos);
    EXPECT_NE(text.find("triggered: harmful"), std::string::npos);
    EXPECT_NE(text.find("triggered: serial"), std::string::npos);
    EXPECT_NE(text.find("failing order"), std::string::npos);
}

TEST_F(ReportPrinterTest, QuietModeDropsMetrics)
{
    PrintOptions options;
    options.showMetrics = false;
    std::string text = renderReport(*bench_, *result_, options);
    EXPECT_EQ(text.find("phases:"), std::string::npos);
    std::string full = renderReport(*bench_, *result_);
    EXPECT_NE(full.find("phases:"), std::string::npos);
}

TEST_F(ReportPrinterTest, JsonCarriesReportsAndMetrics)
{
    Json json = reportToJson(*bench_, *result_);
    std::string dump = json.dump(-1);
    EXPECT_NE(dump.find("\"benchmark\": \"MR-3274\""),
              std::string::npos);
    EXPECT_NE(dump.find("\"classification\": \"harmful\""),
              std::string::npos);
    EXPECT_NE(dump.find("\"traceRecords\""), std::string::npos);
    EXPECT_NE(dump.find("mr.am.getTask/jmap.read"), std::string::npos);
    // Balanced braces (cheap well-formedness check).
    long depth = 0;
    bool in_string = false;
    char prev = 0;
    for (char c : dump) {
        if (c == '"' && prev != '\\')
            in_string = !in_string;
        if (!in_string) {
            if (c == '{' || c == '[')
                ++depth;
            if (c == '}' || c == ']')
                --depth;
        }
        ASSERT_GE(depth, 0);
        prev = c;
    }
    EXPECT_EQ(depth, 0);
}

} // namespace
} // namespace dcatch
