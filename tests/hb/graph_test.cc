/**
 * @file
 * Unit tests for the happens-before graph: each MTEP rule, the
 * Eserial fixpoint, segmentation (Preg vs. Pnreg), rule ablation, and
 * the reachability closure.
 */

#include <gtest/gtest.h>

#include "hb/graph.hh"
#include "support/trace_builder.hh"

namespace dcatch::hb {
namespace {

using testsupport::TraceBuilder;
using trace::RecordType;

/** Find a vertex by type+site (unique in these tests). */
int
vtx(const HbGraph &g, RecordType type, const std::string &site)
{
    for (std::size_t v = 0; v < g.size(); ++v)
        if (g.record(static_cast<int>(v)).type == type &&
            g.site(static_cast<int>(v)) == site)
            return static_cast<int>(v);
    return -1;
}

TEST(HbGraphTest, ProgramOrderWithinRegularThread)
{
    TraceBuilder tb;
    tb.mem(true, 0, 0, "s1", "var:x");
    tb.mem(false, 0, 0, "s2", "var:x");
    tb.mem(true, 0, 0, "s3", "var:x");
    HbGraph g(tb.store());
    int a = vtx(g, RecordType::MemWrite, "s1");
    int b = vtx(g, RecordType::MemRead, "s2");
    int c = vtx(g, RecordType::MemWrite, "s3");
    EXPECT_TRUE(g.happensBefore(a, b));
    EXPECT_TRUE(g.happensBefore(b, c));
    EXPECT_TRUE(g.happensBefore(a, c)); // transitive
    EXPECT_FALSE(g.happensBefore(c, a));
}

TEST(HbGraphTest, NoOrderAcrossUnrelatedThreads)
{
    TraceBuilder tb;
    tb.mem(true, 0, 0, "s1", "var:x");
    tb.mem(true, 0, 1, "s2", "var:x");
    HbGraph g(tb.store());
    int a = vtx(g, RecordType::MemWrite, "s1");
    int b = vtx(g, RecordType::MemWrite, "s2");
    EXPECT_TRUE(g.concurrent(a, b));
}

TEST(HbGraphTest, ForkJoinRule)
{
    TraceBuilder tb;
    tb.add(RecordType::ThreadCreate, 0, 0, "spawn", "thr:1");
    tb.add(RecordType::ThreadBegin, 0, 1, "begin", "thr:1");
    tb.mem(true, 0, 1, "child.w", "var:x");
    tb.add(RecordType::ThreadEnd, 0, 1, "end", "thr:1");
    tb.add(RecordType::ThreadJoin, 0, 0, "join", "thr:1");
    tb.mem(false, 0, 0, "parent.r", "var:x");
    HbGraph g(tb.store());
    int w = vtx(g, RecordType::MemWrite, "child.w");
    int r = vtx(g, RecordType::MemRead, "parent.r");
    EXPECT_TRUE(g.happensBefore(w, r));
}

TEST(HbGraphTest, ForkJoinDisabledLeavesConcurrency)
{
    TraceBuilder tb;
    tb.add(RecordType::ThreadCreate, 0, 0, "spawn", "thr:1");
    tb.add(RecordType::ThreadBegin, 0, 1, "begin", "thr:1");
    tb.mem(true, 0, 1, "child.w", "var:x");
    tb.add(RecordType::ThreadEnd, 0, 1, "end", "thr:1");
    tb.add(RecordType::ThreadJoin, 0, 0, "join", "thr:1");
    tb.mem(false, 0, 0, "parent.r", "var:x");
    HbGraph::Options opts;
    opts.rules.thread = false;
    HbGraph g(tb.store(), opts);
    int w = vtx(g, RecordType::MemWrite, "child.w");
    int r = vtx(g, RecordType::MemRead, "parent.r");
    EXPECT_TRUE(g.concurrent(w, r));
}

TEST(HbGraphTest, RpcRule)
{
    TraceBuilder tb;
    // Caller thread 0 on node 0; RPC worker thread 1 on node 1.
    tb.add(RecordType::RpcCreate, 0, 0, "call", "rpc-1");
    tb.add(RecordType::RpcBegin, 1, 1, "fn", "rpc-1");
    tb.mem(true, 1, 1, "rpc.w", "var:x");
    tb.add(RecordType::RpcEnd, 1, 1, "fn", "rpc-1");
    tb.add(RecordType::RpcJoin, 0, 0, "call", "rpc-1");
    tb.mem(false, 0, 0, "after.r", "var:x");
    HbGraph g(tb.store());
    int create = vtx(g, RecordType::RpcCreate, "call");
    int begin = vtx(g, RecordType::RpcBegin, "fn");
    int w = vtx(g, RecordType::MemWrite, "rpc.w");
    int r = vtx(g, RecordType::MemRead, "after.r");
    EXPECT_TRUE(g.happensBefore(create, begin));
    EXPECT_TRUE(g.happensBefore(w, r)); // via End => Join
}

TEST(HbGraphTest, SocketRule)
{
    TraceBuilder tb;
    tb.mem(true, 0, 0, "pre.w", "var:x");
    tb.add(RecordType::MsgSend, 0, 0, "send", "msg-1");
    tb.add(RecordType::MsgRecv, 1, 1, "recv", "msg-1");
    tb.mem(false, 1, 1, "handler.r", "var:x");
    HbGraph g(tb.store());
    int w = vtx(g, RecordType::MemWrite, "pre.w");
    int r = vtx(g, RecordType::MemRead, "handler.r");
    EXPECT_TRUE(g.happensBefore(w, r));
}

TEST(HbGraphTest, PushRuleBroadcastsToAllSubscribers)
{
    TraceBuilder tb;
    tb.add(RecordType::CoordUpdate, 0, 0, "zk.set", "/p#5");
    tb.add(RecordType::CoordPushed, 1, 1, "watch", "/p#5");
    tb.add(RecordType::CoordPushed, 2, 2, "watch", "/p#5");
    HbGraph g(tb.store());
    int u = vtx(g, RecordType::CoordUpdate, "zk.set");
    EXPECT_TRUE(g.happensBefore(u, 1));
    EXPECT_TRUE(g.happensBefore(u, 2));
    EXPECT_EQ(g.stats().push, 2u);
}

TEST(HbGraphTest, EventEnqueueRule)
{
    TraceBuilder tb;
    tb.mem(true, 0, 0, "pre.w", "var:x");
    tb.add(RecordType::EventCreate, 0, 0, "enq", "n0/q#0");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#0");
    tb.mem(false, 0, 1, "handler.r", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#0");
    tb.queue("n0/q", 0, true);
    HbGraph g(tb.store());
    int w = vtx(g, RecordType::MemWrite, "pre.w");
    int r = vtx(g, RecordType::MemRead, "handler.r");
    EXPECT_TRUE(g.happensBefore(w, r));
}

TEST(HbGraphTest, PnregIsolatesHandlerInstancesOnSameThread)
{
    TraceBuilder tb;
    tb.queue("n0/q", 0, false); // multi-consumer queue
    // Two handler instances run (as it happens) on the same thread;
    // Rule-Pnreg must NOT order their bodies.
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#0");
    tb.mem(true, 0, 1, "h1.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#0");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#1");
    tb.mem(true, 0, 1, "h2.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#1");
    HbGraph g(tb.store());
    int w1 = vtx(g, RecordType::MemWrite, "h1.w");
    int w2 = vtx(g, RecordType::MemWrite, "h2.w");
    EXPECT_TRUE(g.concurrent(w1, w2));
}

TEST(HbGraphTest, EserialOrdersSingleConsumerHandlers)
{
    TraceBuilder tb;
    tb.queue("n0/q", 0, true); // single-consumer
    // Both events created by thread 0, in order.
    tb.add(RecordType::EventCreate, 0, 0, "enq1", "n0/q#0");
    tb.add(RecordType::EventCreate, 0, 0, "enq2", "n0/q#1");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#0");
    tb.mem(true, 0, 1, "h1.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#0");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#1");
    tb.mem(true, 0, 1, "h2.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#1");
    HbGraph g(tb.store());
    int w1 = vtx(g, RecordType::MemWrite, "h1.w");
    int w2 = vtx(g, RecordType::MemWrite, "h2.w");
    EXPECT_TRUE(g.happensBefore(w1, w2));
    EXPECT_GE(g.stats().eserial, 1u);
}

TEST(HbGraphTest, EserialRequiresOrderedCreates)
{
    TraceBuilder tb;
    tb.queue("n0/q", 0, true);
    // Creates from two unrelated threads: no Create=>Create order, so
    // Eserial must not fire even though handling was serialized.
    tb.add(RecordType::EventCreate, 0, 0, "enq1", "n0/q#0");
    tb.add(RecordType::EventCreate, 0, 2, "enq2", "n0/q#1");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#0");
    tb.mem(true, 0, 1, "h1.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#0");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#1");
    tb.mem(true, 0, 1, "h2.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#1");
    HbGraph g(tb.store());
    int w1 = vtx(g, RecordType::MemWrite, "h1.w");
    int w2 = vtx(g, RecordType::MemWrite, "h2.w");
    EXPECT_TRUE(g.concurrent(w1, w2));
    EXPECT_EQ(g.stats().eserial, 0u);
}

TEST(HbGraphTest, EserialFixpointChains)
{
    TraceBuilder tb;
    tb.queue("n0/q", 0, true);
    // e0 and e1 created in order by thread 0; e2 created *inside* the
    // handler of e1.  Fixpoint must derive End(e1) => Begin(e2) ...
    // actually End(e0) => Begin(e1) first, then create(e2) inside h1
    // gives Create(e1-handler ops) => Create(e2), enabling
    // End(e1) => Begin(e2) on the second pass.
    tb.add(RecordType::EventCreate, 0, 0, "enq0", "n0/q#0");
    tb.add(RecordType::EventCreate, 0, 0, "enq1", "n0/q#1");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#0");
    tb.mem(true, 0, 1, "h0.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#0");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#1");
    tb.add(RecordType::EventCreate, 0, 1, "enq2", "n0/q#2");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#1");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#2");
    tb.mem(true, 0, 1, "h2.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#2");
    HbGraph g(tb.store());
    int w0 = vtx(g, RecordType::MemWrite, "h0.w");
    int w2 = vtx(g, RecordType::MemWrite, "h2.w");
    // h0 => h2 requires chaining Eserial through e1's handler.
    EXPECT_TRUE(g.happensBefore(w0, w2));
}

TEST(HbGraphTest, MultiConsumerQueueGetsNoEserial)
{
    TraceBuilder tb;
    tb.queue("n0/q", 0, false);
    tb.add(RecordType::EventCreate, 0, 0, "enq1", "n0/q#0");
    tb.add(RecordType::EventCreate, 0, 0, "enq2", "n0/q#1");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#0");
    tb.mem(true, 0, 1, "h1.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#0");
    tb.add(RecordType::EventBegin, 0, 2, "evt", "n0/q#1");
    tb.mem(true, 0, 2, "h2.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 2, "evt", "n0/q#1");
    HbGraph g(tb.store());
    EXPECT_EQ(g.stats().eserial, 0u);
    int w1 = vtx(g, RecordType::MemWrite, "h1.w");
    int w2 = vtx(g, RecordType::MemWrite, "h2.w");
    EXPECT_TRUE(g.concurrent(w1, w2));
}

TEST(HbGraphTest, AblationDropsRecordsAndDegradesSegmentation)
{
    TraceBuilder tb;
    tb.queue("n0/q", 0, false);
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#0");
    tb.mem(true, 0, 1, "h1.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#0");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#1");
    tb.mem(true, 0, 1, "h2.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#1");

    // With event records: concurrent (Pnreg isolation).
    HbGraph full(tb.store());
    EXPECT_TRUE(full.concurrent(vtx(full, RecordType::MemWrite, "h1.w"),
                                vtx(full, RecordType::MemWrite, "h2.w")));

    // Without event records the thread looks regular: Preg falsely
    // orders the two handler bodies (the Table 9 false negatives).
    HbGraph::Options opts;
    opts.rules = RuleSet::withoutEvent();
    HbGraph ablated(tb.store(), opts);
    int w1 = vtx(ablated, RecordType::MemWrite, "h1.w");
    int w2 = vtx(ablated, RecordType::MemWrite, "h2.w");
    EXPECT_TRUE(ablated.happensBefore(w1, w2));
}

TEST(HbGraphTest, PullEdgeAdditionRecloses)
{
    for (HbGraph::Engine engine :
         {HbGraph::Engine::ChainFrontier, HbGraph::Engine::Dense}) {
        TraceBuilder tb;
        tb.mem(true, 0, 0, "w", "var:x", 1);
        tb.add(RecordType::LoopIter, 1, 1, "loop", "loop:nm/0", 0);
        tb.add(RecordType::LoopExit, 1, 1, "loop", "loop:nm/0", 1);
        tb.mem(false, 1, 1, "after.r", "var:x", 1);
        HbGraph::Options opts;
        opts.engine = engine;
        HbGraph g(tb.store(), opts);
        int w = vtx(g, RecordType::MemWrite, "w");
        int exit = vtx(g, RecordType::LoopExit, "loop");
        int r = vtx(g, RecordType::MemRead, "after.r");
        EXPECT_TRUE(g.concurrent(w, r));
        g.addEdges({{w, exit}});
        EXPECT_TRUE(g.happensBefore(w, r)); // through exit -> after.r
        EXPECT_EQ(g.stats().pull, 1u);
        if (engine == HbGraph::Engine::ChainFrontier)
            EXPECT_GE(g.incrementalUpdates(), 1u);
    }
}

TEST(HbGraphTest, MemoryBudgetTriggersOom)
{
    TraceBuilder tb;
    for (int i = 0; i < 200; ++i)
        tb.mem(true, 0, 0, "s" + std::to_string(i), "var:x");
    HbGraph::Options opts;
    opts.memoryBudgetBytes = 64; // absurdly small
    HbGraph g(tb.store(), opts);
    EXPECT_TRUE(g.oom());
    EXPECT_THROW(g.happensBefore(0, 1), std::runtime_error);
}

TEST(HbGraphTest, DenseEngineOomsWhereChainFrontierFits)
{
    // 1200 vertices: dense ancestor bit-sets need 1200 * 150 bytes
    // (~176 KB), while one long program-order chain costs a few KB of
    // shared frontier.
    TraceBuilder tb;
    for (int i = 0; i < 1200; ++i)
        tb.mem(true, 0, 0, "s" + std::to_string(i), "var:x");
    HbGraph::Options opts;
    opts.memoryBudgetBytes = 64ull << 10;

    opts.engine = HbGraph::Engine::Dense;
    HbGraph dense(tb.store(), opts);
    EXPECT_TRUE(dense.oom());

    opts.engine = HbGraph::Engine::ChainFrontier;
    HbGraph chain(tb.store(), opts);
    EXPECT_FALSE(chain.oom());
    EXPECT_TRUE(chain.happensBefore(0, 1199));
    EXPECT_LT(chain.reachBytes(), 64ull << 10);
}

TEST(HbGraphTest, ChainEngineReportsDecompositionStats)
{
    TraceBuilder tb;
    tb.add(RecordType::ThreadCreate, 0, 0, "spawn", "thr:1");
    tb.add(RecordType::ThreadBegin, 0, 1, "begin", "thr:1");
    tb.mem(true, 0, 1, "child.w", "var:x");
    tb.add(RecordType::ThreadEnd, 0, 1, "end", "thr:1");
    tb.add(RecordType::ThreadJoin, 0, 0, "join", "thr:1");
    HbGraph g(tb.store());
    EXPECT_STREQ(g.engineName(), "chain");
    EXPECT_GT(g.chainCount(), 0u);
    EXPECT_GT(g.frontierRows(), 0u);
    EXPECT_GT(g.reachBytes(), 0u);
    EXPECT_EQ(g.closureRuns(), 0u); // never runs the dense closure

    HbGraph::Options opts;
    opts.engine = HbGraph::Engine::Dense;
    HbGraph d(tb.store(), opts);
    EXPECT_STREQ(d.engineName(), "dense");
    EXPECT_EQ(d.chainCount(), 0u);
    EXPECT_GE(d.closureRuns(), 1u);
}

TEST(HbGraphTest, ChainEngineFoldsEserialEdgesIncrementally)
{
    TraceBuilder tb;
    tb.queue("n0/q", 0, true);
    tb.add(RecordType::EventCreate, 0, 0, "enq1", "n0/q#0");
    tb.add(RecordType::EventCreate, 0, 0, "enq2", "n0/q#1");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#0");
    tb.mem(true, 0, 1, "h1.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#0");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#1");
    tb.mem(true, 0, 1, "h2.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#1");
    HbGraph g(tb.store());
    EXPECT_GE(g.stats().eserial, 1u);
    EXPECT_GE(g.incrementalUpdates(), g.stats().eserial);
    EXPECT_EQ(g.closureRuns(), 0u);
}

TEST(HbGraphTest, LocksAreExcludedFromTheGraph)
{
    TraceBuilder tb;
    tb.add(RecordType::LockAcquire, 0, 0, "cs", "lock:n0/L");
    tb.mem(true, 0, 0, "w", "var:x");
    tb.add(RecordType::LockRelease, 0, 0, "cs", "lock:n0/L");
    HbGraph g(tb.store());
    EXPECT_EQ(g.size(), 1u); // only the memory access survives
}

TEST(HbGraphTest, FindVertexMatchesAux)
{
    TraceBuilder tb;
    tb.mem(true, 0, 0, "w", "var:x", 1);
    tb.mem(true, 0, 0, "w", "var:x", 2);
    HbGraph g(tb.store());
    EXPECT_EQ(g.findVertex(RecordType::MemWrite, "w", "var:x", 2), 1);
    EXPECT_EQ(g.findVertex(RecordType::MemWrite, "w", "var:x", 3), -1);
    EXPECT_EQ(g.findVertex(RecordType::MemWrite, "w", "var:x"), 0);
}

} // namespace
} // namespace dcatch::hb
