/**
 * @file
 * Unit tests for the adaptive engine selector (HbGraph::Engine::Auto):
 * the pure crossover model HbGraph::decide() on both sides of the
 * vertex cutoff, the density and memory-budget terms, and end-to-end
 * forced selection on real graphs by moving Options::
 * autoDenseVertexCutoff across the trace's vertex count.
 */

#include <gtest/gtest.h>

#include "hb/graph.hh"
#include "support/trace_builder.hh"

namespace dcatch::hb {
namespace {

using testsupport::TraceBuilder;
using trace::RecordType;

constexpr std::size_t kBudget = 512u << 20;
constexpr std::size_t kCutoff = HbGraph::kAutoDenseVertexCutoff;

TEST(AutoEngineDecideTest, SmallSparseTraceResolvesDense)
{
    HbGraph::EngineDecision d = HbGraph::decide(
        HbGraph::Engine::Auto, /*vertices=*/100, /*threads=*/4,
        /*crossEdges=*/0, kBudget, kCutoff);
    EXPECT_EQ(d.resolved, HbGraph::Engine::Dense);
    EXPECT_EQ(d.requested, HbGraph::Engine::Auto);
    EXPECT_EQ(d.vertices, 100u);
    EXPECT_EQ(d.effectiveCutoff, kCutoff);
}

TEST(AutoEngineDecideTest, LargeTraceResolvesChain)
{
    HbGraph::EngineDecision d = HbGraph::decide(
        HbGraph::Engine::Auto, /*vertices=*/2 * kCutoff + 1,
        /*threads=*/8, /*crossEdges=*/0, kBudget, kCutoff);
    EXPECT_EQ(d.resolved, HbGraph::Engine::ChainFrontier);
}

TEST(AutoEngineDecideTest, ExactlyAtCutoffIsStillDense)
{
    HbGraph::EngineDecision d = HbGraph::decide(
        HbGraph::Engine::Auto, kCutoff, 4, 0, kBudget, kCutoff);
    EXPECT_EQ(d.resolved, HbGraph::Engine::Dense);
    d = HbGraph::decide(HbGraph::Engine::Auto, kCutoff + 1, 4, 0,
                        kBudget, kCutoff);
    EXPECT_EQ(d.resolved, HbGraph::Engine::ChainFrontier);
}

TEST(AutoEngineDecideTest, CrossEdgeDensityRaisesTheCutoff)
{
    // Dense closure cost scales with edges; edge-heavy traces keep
    // dense attractive past the base cutoff, up to 2x.
    std::size_t vertices = kCutoff + kCutoff / 2; // over base cutoff
    HbGraph::EngineDecision sparse = HbGraph::decide(
        HbGraph::Engine::Auto, vertices, 4, /*crossEdges=*/0, kBudget,
        kCutoff);
    EXPECT_EQ(sparse.resolved, HbGraph::Engine::ChainFrontier);

    // >= 1 cross edge per vertex saturates the density term.
    HbGraph::EngineDecision heavy = HbGraph::decide(
        HbGraph::Engine::Auto, vertices, 4,
        /*crossEdges=*/vertices * 2, kBudget, kCutoff);
    EXPECT_EQ(heavy.effectiveCutoff, 2 * kCutoff);
    EXPECT_EQ(heavy.resolved, HbGraph::Engine::Dense);

    // But never past 2x: one vertex over the doubled cutoff is chain.
    HbGraph::EngineDecision over = HbGraph::decide(
        HbGraph::Engine::Auto, 2 * kCutoff + 1, 4,
        /*crossEdges=*/(2 * kCutoff + 1) * 16, kBudget, kCutoff);
    EXPECT_EQ(over.resolved, HbGraph::Engine::ChainFrontier);
}

TEST(AutoEngineDecideTest, MemoryBudgetForcesChain)
{
    // 2000 vertices fit the cutoff, but dense needs n*ceil(n/64)*8
    // bytes and the decision requires 2x headroom within the budget.
    std::size_t vertices = 2000;
    std::size_t dense_bytes = vertices * ((vertices + 63) / 64) * 8;
    HbGraph::EngineDecision d = HbGraph::decide(
        HbGraph::Engine::Auto, vertices, 4, 0,
        /*budgetBytes=*/dense_bytes, kCutoff);
    EXPECT_EQ(d.denseBytes, dense_bytes);
    EXPECT_EQ(d.resolved, HbGraph::Engine::ChainFrontier)
        << "dense must keep 2x headroom within the budget";

    d = HbGraph::decide(HbGraph::Engine::Auto, vertices, 4, 0,
                        /*budgetBytes=*/2 * dense_bytes, kCutoff);
    EXPECT_EQ(d.resolved, HbGraph::Engine::Dense);
}

TEST(AutoEngineDecideTest, FixedRequestPassesThrough)
{
    for (HbGraph::Engine engine :
         {HbGraph::Engine::ChainFrontier, HbGraph::Engine::Dense,
          HbGraph::Engine::VectorClock}) {
        HbGraph::EngineDecision d = HbGraph::decide(
            engine, 100, 4, 10, kBudget, kCutoff);
        EXPECT_EQ(d.requested, engine);
        EXPECT_EQ(d.resolved, engine);
    }
}

TEST(AutoEngineDecideTest, EngineNames)
{
    EXPECT_STREQ(HbGraph::name(HbGraph::Engine::ChainFrontier),
                 "chain");
    EXPECT_STREQ(HbGraph::name(HbGraph::Engine::Dense), "dense");
    EXPECT_STREQ(HbGraph::name(HbGraph::Engine::VectorClock), "vc");
    EXPECT_STREQ(HbGraph::name(HbGraph::Engine::Auto), "auto");
}

/** A small real trace for the end-to-end forced-selection tests. */
trace::TraceStore
smallStore()
{
    TraceBuilder tb;
    tb.add(RecordType::ThreadCreate, 0, 0, "spawn", "thr:1");
    tb.add(RecordType::ThreadBegin, 0, 1, "begin", "thr:1");
    tb.mem(true, 0, 1, "w", "var:x");
    tb.add(RecordType::ThreadEnd, 0, 1, "end", "thr:1");
    tb.add(RecordType::ThreadJoin, 0, 0, "join", "thr:1");
    tb.mem(false, 0, 0, "r", "var:x");
    return tb.store();
}

TEST(AutoEngineGraphTest, CutoffAboveTraceSelectsDense)
{
    trace::TraceStore store = smallStore();
    HbGraph::Options options;
    options.engine = HbGraph::Engine::Auto;
    options.autoDenseVertexCutoff = 1u << 20;
    HbGraph graph(store, options);
    EXPECT_EQ(graph.engine(), HbGraph::Engine::Dense);
    EXPECT_EQ(graph.requestedEngine(), HbGraph::Engine::Auto);
    EXPECT_STREQ(graph.engineName(), "dense");
    EXPECT_EQ(graph.decision().resolved, HbGraph::Engine::Dense);
    EXPECT_EQ(graph.decision().vertices, graph.size());
}

TEST(AutoEngineGraphTest, CutoffBelowTraceSelectsChain)
{
    trace::TraceStore store = smallStore();
    HbGraph::Options options;
    options.engine = HbGraph::Engine::Auto;
    options.autoDenseVertexCutoff = 0;
    HbGraph graph(store, options);
    EXPECT_EQ(graph.engine(), HbGraph::Engine::ChainFrontier);
    EXPECT_EQ(graph.requestedEngine(), HbGraph::Engine::Auto);
    EXPECT_STREQ(graph.engineName(), "chain");
    EXPECT_GT(graph.chainCount(), 0u);
}

TEST(AutoEngineGraphTest, BothForcedSidesAgreeOnQueries)
{
    trace::TraceStore store = smallStore();
    HbGraph::Options dense_side;
    dense_side.engine = HbGraph::Engine::Auto;
    dense_side.autoDenseVertexCutoff = 1u << 20;
    HbGraph as_dense(store, dense_side);
    HbGraph::Options chain_side;
    chain_side.engine = HbGraph::Engine::Auto;
    chain_side.autoDenseVertexCutoff = 0;
    HbGraph as_chain(store, chain_side);

    ASSERT_NE(as_dense.engine(), as_chain.engine());
    int n = static_cast<int>(as_dense.size());
    for (int u = 0; u < n; ++u)
        for (int v = 0; v < n; ++v)
            EXPECT_EQ(as_dense.happensBefore(u, v),
                      as_chain.happensBefore(u, v))
                << u << " => " << v;
}

TEST(AutoEngineGraphTest, DecisionRecordedForFixedEngines)
{
    trace::TraceStore store = smallStore();
    HbGraph::Options options;
    options.engine = HbGraph::Engine::VectorClock;
    HbGraph graph(store, options);
    EXPECT_EQ(graph.engine(), HbGraph::Engine::VectorClock);
    EXPECT_EQ(graph.decision().requested,
              HbGraph::Engine::VectorClock);
    EXPECT_EQ(graph.decision().resolved,
              HbGraph::Engine::VectorClock);
    EXPECT_GT(graph.decision().threads, 0u);
}

} // namespace
} // namespace dcatch::hb
