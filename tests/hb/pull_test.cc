/**
 * @file
 * Unit tests for the pull-based / loop-based synchronization analysis
 * (Rule-Mpull, paper section 3.2.1), on purpose-built mini apps: the
 * distributed variant (RPC-returned value feeds a remote retry loop)
 * and the intra-node while-loop variant.
 */

#include <gtest/gtest.h>

#include <memory>

#include "detect/race_detect.hh"
#include "hb/pull.hh"
#include "runtime/shared.hh"

namespace dcatch::hb {
namespace {

using namespace dcatch::sim;

// Site constants for the distributed pull app.
constexpr const char *kSetFlag = "pp.server.set/flag.write";
constexpr const char *kGetFlag = "pp.server.get/flag.read";
constexpr const char *kCallGet = "pp.client/call.get";
constexpr const char *kLoopExit = "pp.client/loop.exit";

/** Server holds a flag; a setter event writes it; the client polls
 *  through an RPC until it sees the value. */
void
buildDistributedPull(Simulation &sim)
{
    Node &server = sim.addNode("server");
    Node &client = sim.addNode("client");
    auto flag = std::make_shared<SharedVar<int>>(server, "flag", 0);

    server.registerRpc("get", [flag](ThreadContext &ctx, const Payload &) {
        return Payload{}.setInt("flag", flag->read(ctx, kGetFlag));
    });
    EventQueue &events = server.addEventQueue("admin", 1);
    events.on("set", [flag](ThreadContext &ctx, const Event &) {
        flag->write(ctx, kSetFlag, 1);
    });
    sim.spawn(nullptr, server, "server.admin", [](ThreadContext &ctx) {
        ctx.pause(8);
        ctx.node().queue("admin").enqueue(ctx, "pp.admin/enq", "set");
    });
    sim.spawn(nullptr, client, "client.poller", [](ThreadContext &ctx) {
        ctx.retryUntil(kLoopExit, [&] {
            Payload reply =
                ctx.rpcCall(kCallGet, "server", "get", Payload{});
            return reply.getInt("flag") == 1;
        });
    });
}

model::ProgramModel
distributedPullModel()
{
    model::ModelBuilder b;
    b.fn("server.get")
        .rpc()
        .read(kGetFlag, "var:server/flag")
        .returns({kGetFlag});
    b.fn("server.set").write(kSetFlag, "var:server/flag");
    b.fn("client.poller")
        .rpcCall(kCallGet, "server.get")
        .loopExit(kLoopExit)
        .dep(kLoopExit, {kCallGet});
    return b.build();
}

TEST(PullAnalysisTest, DistributedProtocolSuppressedAndEdgeAdded)
{
    sim::SimConfig cfg;
    sim::Simulation sim(cfg);
    buildDistributedPull(sim);
    ASSERT_FALSE(sim.run().failed());

    HbGraph graph(sim.tracer().store());
    detect::RaceDetector detector;
    auto candidates = detector.detect(graph);

    // The read/write pair is reported by plain trace analysis...
    std::string pair = detect::sitePair(kGetFlag, kSetFlag);
    bool reported = false;
    for (const auto &cand : candidates)
        if (cand.sitePairKey() == pair)
            reported = true;
    ASSERT_TRUE(reported);

    // ...and recognised as pull synchronization by the analysis.
    model::ProgramModel model = distributedPullModel();
    PullAnalyzer analyzer(model, buildDistributedPull, cfg);
    PullResult result = analyzer.analyze(graph, candidates);
    EXPECT_GE(result.protocolsAnalyzed, 1);
    EXPECT_FALSE(result.edges.empty()) << "w* => loop-exit edge";
    EXPECT_FALSE(result.suppressedKeys.empty());

    graph.addEdges(result.edges);
    auto after = applyPullResult(graph, detector.detect(graph), result);
    for (const auto &cand : after)
        EXPECT_NE(cand.sitePairKey(), pair)
            << "sync pair must be suppressed";
    EXPECT_GT(graph.stats().pull, 0u);
}

// Intra-node variant: a worker thread spins on a traced flag written
// by an event handler on the same node.
constexpr const char *kLocalWrite = "lp.node.set/flag.write";
constexpr const char *kLocalRead = "lp.node.spin/flag.read";
constexpr const char *kLocalExit = "lp.node.spin/loop.exit";

void
buildLocalLoop(Simulation &sim)
{
    Node &node = sim.addNode("node");
    auto flag = std::make_shared<SharedVar<int>>(node, "flag", 0);
    EventQueue &events = node.addEventQueue("q", 1);
    events.on("set", [flag](ThreadContext &ctx, const Event &) {
        flag->write(ctx, kLocalWrite, 1);
    });
    sim.spawn(nullptr, node, "setter", [](ThreadContext &ctx) {
        ctx.pause(6);
        ctx.node().queue("q").enqueue(ctx, "lp.setter/enq", "set");
    });
    sim.spawn(nullptr, node, "spinner", [flag](ThreadContext &ctx) {
        Frame f(ctx, "spin", ScopeKind::Message, "m:spin");
        ctx.retryUntil(kLocalExit, [&] {
            return flag->read(ctx, kLocalRead) == 1;
        });
    });
}

model::ProgramModel
localLoopModel()
{
    model::ModelBuilder b;
    b.fn("node.set").write(kLocalWrite, "var:node/flag");
    b.fn("node.spin")
        .read(kLocalRead, "var:node/flag")
        .loopExit(kLocalExit)
        .dep(kLocalExit, {kLocalRead});
    return b.build();
}

TEST(PullAnalysisTest, IntraNodeWhileLoopSuppressed)
{
    sim::SimConfig cfg;
    sim::Simulation sim(cfg);
    buildLocalLoop(sim);
    ASSERT_FALSE(sim.run().failed());

    HbGraph graph(sim.tracer().store());
    detect::RaceDetector detector;
    auto candidates = detector.detect(graph);
    std::string pair = detect::sitePair(kLocalRead, kLocalWrite);

    model::ProgramModel model = localLoopModel();
    PullAnalyzer analyzer(model, buildLocalLoop, cfg);
    PullResult result = analyzer.analyze(graph, candidates);
    EXPECT_TRUE(result.suppressedKeys.size() >= 1);

    graph.addEdges(result.edges);
    auto after = applyPullResult(graph, detector.detect(graph), result);
    for (const auto &cand : after)
        EXPECT_NE(cand.sitePairKey(), pair);
}

TEST(PullAnalysisTest, NoProtocolMeansNoSecondRun)
{
    // A candidate whose read does not feed any loop exit: the
    // analyzer must do nothing (and report zero protocols).
    sim::SimConfig cfg;
    sim::Simulation sim(cfg);
    buildLocalLoop(sim);
    sim.run();
    HbGraph graph(sim.tracer().store());
    detect::RaceDetector detector;
    auto candidates = detector.detect(graph);

    model::ProgramModel empty; // no loop-exit knowledge at all
    PullAnalyzer analyzer(empty, buildLocalLoop, cfg);
    PullResult result = analyzer.analyze(graph, candidates);
    EXPECT_EQ(result.protocolsAnalyzed, 0);
    EXPECT_TRUE(result.edges.empty());
    EXPECT_TRUE(result.suppressedKeys.empty());
    EXPECT_EQ(result.rerunSeconds, 0.0);
}

} // namespace
} // namespace dcatch::hb
