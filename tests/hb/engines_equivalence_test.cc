/**
 * @file
 * Cross-validation of the four happens-before engines: the
 * chain-frontier decomposition DCatch adopts (section 3.2.2), the
 * dense reachable-set (bit-array) baseline, the vector-clock baseline
 * the paper rejects, and the adaptive selector (Engine::Auto, which
 * must resolve to one of the fixed engines and inherit its answers)
 * must all agree on every pair of vertices — on synthetic traces and
 * on every benchmark's real trace.
 */

#include <gtest/gtest.h>

#include "apps/benchmark.hh"
#include "hb/vector_clock.hh"
#include "runtime/sim.hh"
#include "support/trace_builder.hh"

namespace dcatch::hb {
namespace {

using testsupport::TraceBuilder;
using trace::RecordType;

HbGraph::Options
optionsFor(HbGraph::Engine engine)
{
    HbGraph::Options options;
    options.engine = engine;
    return options;
}

/** Exhaustively compare all four engines over one trace. */
void
expectEngineAgreement(const trace::TraceStore &store)
{
    HbGraph chain(store, optionsFor(HbGraph::Engine::ChainFrontier));
    HbGraph dense(store, optionsFor(HbGraph::Engine::Dense));
    HbGraph vc(store, optionsFor(HbGraph::Engine::VectorClock));
    HbGraph adaptive(store, optionsFor(HbGraph::Engine::Auto));
    VectorClockGraph clocks(dense);

    ASSERT_EQ(chain.size(), dense.size());
    ASSERT_EQ(vc.size(), dense.size());
    ASSERT_EQ(adaptive.size(), dense.size());
    ASSERT_EQ(clocks.size(), dense.size());
    ASSERT_NE(adaptive.engine(), HbGraph::Engine::Auto)
        << "auto must resolve to a fixed engine";
    int n = static_cast<int>(dense.size());
    for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
            bool want = dense.happensBefore(u, v);
            ASSERT_EQ(chain.happensBefore(u, v), want)
                << "chain vs dense disagree on " << u << " => " << v
                << " (" << dense.recordLine(u) << " vs "
                << dense.recordLine(v) << ")";
            ASSERT_EQ(vc.happensBefore(u, v), want)
                << "vc vs dense disagree on " << u << " => " << v
                << " (" << dense.recordLine(u) << " vs "
                << dense.recordLine(v) << ")";
            ASSERT_EQ(adaptive.happensBefore(u, v), want)
                << "auto(" << adaptive.engineName()
                << ") vs dense disagree on " << u << " => " << v;
            ASSERT_EQ(clocks.happensBefore(u, v), want)
                << "clocks vs dense disagree on " << u << " => " << v
                << " (" << dense.recordLine(u) << " vs "
                << dense.recordLine(v) << ")";
        }
    }
}

TEST(EnginesEquivalenceTest, ForkJoinChain)
{
    TraceBuilder tb;
    tb.add(RecordType::ThreadCreate, 0, 0, "spawn", "thr:1");
    tb.add(RecordType::ThreadBegin, 0, 1, "begin", "thr:1");
    tb.mem(true, 0, 1, "w", "var:x");
    tb.add(RecordType::ThreadEnd, 0, 1, "end", "thr:1");
    tb.add(RecordType::ThreadJoin, 0, 0, "join", "thr:1");
    tb.mem(false, 0, 0, "r", "var:x");
    expectEngineAgreement(tb.store());
}

TEST(EnginesEquivalenceTest, HandlerSegmentsAndEserial)
{
    TraceBuilder tb;
    tb.queue("n0/q", 0, true);
    tb.add(RecordType::EventCreate, 0, 0, "enq1", "n0/q#0");
    tb.add(RecordType::EventCreate, 0, 0, "enq2", "n0/q#1");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#0");
    tb.mem(true, 0, 1, "h1.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#0");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#1");
    tb.mem(true, 0, 1, "h2.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#1");
    expectEngineAgreement(tb.store());
}

TEST(EnginesEquivalenceTest, CrossNodeMessageDiamond)
{
    TraceBuilder tb;
    tb.mem(true, 0, 0, "w0", "var:x");
    tb.add(RecordType::MsgSend, 0, 0, "send1", "m-1");
    tb.add(RecordType::MsgSend, 0, 0, "send2", "m-2");
    tb.add(RecordType::MsgRecv, 1, 1, "recv1", "m-1");
    tb.mem(true, 1, 1, "w1", "var:x");
    tb.add(RecordType::MsgRecv, 2, 2, "recv2", "m-2");
    tb.mem(true, 2, 2, "w2", "var:x");
    expectEngineAgreement(tb.store());
}

class EnginesOnBenchmarks
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EnginesOnBenchmarks, AgreeOnRealTrace)
{
    const apps::Benchmark &bench = apps::benchmark(GetParam());
    sim::Simulation sim(bench.config);
    bench.build(sim);
    sim.run();

    HbGraph chain(sim.tracer().store(),
                  optionsFor(HbGraph::Engine::ChainFrontier));
    HbGraph dense(sim.tracer().store(),
                  optionsFor(HbGraph::Engine::Dense));
    HbGraph vc(sim.tracer().store(),
               optionsFor(HbGraph::Engine::VectorClock));
    HbGraph adaptive(sim.tracer().store(),
                     optionsFor(HbGraph::Engine::Auto));
    VectorClockGraph clocks(dense);
    ASSERT_NE(adaptive.engine(), HbGraph::Engine::Auto);

    // Exhaustive over all pairs of memory accesses (the pairs that
    // matter for detection).
    for (int u : chain.memAccesses()) {
        for (int v : chain.memAccesses()) {
            bool want = dense.happensBefore(u, v);
            ASSERT_EQ(chain.happensBefore(u, v), want)
                << "chain vs dense: " << chain.recordLine(u)
                << " vs " << chain.recordLine(v);
            ASSERT_EQ(vc.happensBefore(u, v), want)
                << "vc vs dense: " << chain.recordLine(u)
                << " vs " << chain.recordLine(v);
            ASSERT_EQ(adaptive.happensBefore(u, v), want)
                << "auto(" << adaptive.engineName() << ") vs dense: "
                << chain.recordLine(u) << " vs " << chain.recordLine(v);
            ASSERT_EQ(clocks.happensBefore(u, v), want)
                << "clocks vs dense: " << chain.recordLine(u)
                << " vs " << chain.recordLine(v);
        }
    }
    EXPECT_GT(clocks.dimensionCount(), 1);
    EXPECT_GT(chain.chainCount(), 0u);
    // The decomposition must be far below the one-chain-per-vertex
    // degenerate case for these event-driven traces.
    EXPECT_LT(chain.chainCount(), chain.size() / 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, EnginesOnBenchmarks,
    ::testing::Values("CA-1011", "HB-4539", "HB-4729", "MR-3274",
                      "MR-4637", "ZK-1144", "ZK-1270"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace dcatch::hb
