/**
 * @file
 * Cross-validation of the two happens-before engines: the
 * reachable-set (bit-array) engine DCatch uses and the vector-clock
 * baseline it rejects must agree on every pair of vertices — on
 * synthetic traces and on every benchmark's real trace.
 */

#include <gtest/gtest.h>

#include "apps/benchmark.hh"
#include "hb/vector_clock.hh"
#include "runtime/sim.hh"
#include "support/trace_builder.hh"

namespace dcatch::hb {
namespace {

using testsupport::TraceBuilder;
using trace::RecordType;

/** Exhaustively compare both engines on a graph. */
void
expectEngineAgreement(const HbGraph &graph)
{
    VectorClockGraph clocks(graph);
    ASSERT_EQ(clocks.size(), graph.size());
    int n = static_cast<int>(graph.size());
    for (int u = 0; u < n; ++u) {
        for (int v = 0; v < n; ++v) {
            ASSERT_EQ(graph.happensBefore(u, v),
                      clocks.happensBefore(u, v))
                << "engines disagree on " << u << " => " << v << " ("
                << graph.record(u).toLine() << " vs "
                << graph.record(v).toLine() << ")";
        }
    }
}

TEST(EnginesEquivalenceTest, ForkJoinChain)
{
    TraceBuilder tb;
    tb.add(RecordType::ThreadCreate, 0, 0, "spawn", "thr:1");
    tb.add(RecordType::ThreadBegin, 0, 1, "begin", "thr:1");
    tb.mem(true, 0, 1, "w", "var:x");
    tb.add(RecordType::ThreadEnd, 0, 1, "end", "thr:1");
    tb.add(RecordType::ThreadJoin, 0, 0, "join", "thr:1");
    tb.mem(false, 0, 0, "r", "var:x");
    expectEngineAgreement(HbGraph(tb.store()));
}

TEST(EnginesEquivalenceTest, HandlerSegmentsAndEserial)
{
    TraceBuilder tb;
    tb.queue("n0/q", 0, true);
    tb.add(RecordType::EventCreate, 0, 0, "enq1", "n0/q#0");
    tb.add(RecordType::EventCreate, 0, 0, "enq2", "n0/q#1");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#0");
    tb.mem(true, 0, 1, "h1.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#0");
    tb.add(RecordType::EventBegin, 0, 1, "evt", "n0/q#1");
    tb.mem(true, 0, 1, "h2.w", "var:x");
    tb.add(RecordType::EventEnd, 0, 1, "evt", "n0/q#1");
    expectEngineAgreement(HbGraph(tb.store()));
}

TEST(EnginesEquivalenceTest, CrossNodeMessageDiamond)
{
    TraceBuilder tb;
    tb.mem(true, 0, 0, "w0", "var:x");
    tb.add(RecordType::MsgSend, 0, 0, "send1", "m-1");
    tb.add(RecordType::MsgSend, 0, 0, "send2", "m-2");
    tb.add(RecordType::MsgRecv, 1, 1, "recv1", "m-1");
    tb.mem(true, 1, 1, "w1", "var:x");
    tb.add(RecordType::MsgRecv, 2, 2, "recv2", "m-2");
    tb.mem(true, 2, 2, "w2", "var:x");
    expectEngineAgreement(HbGraph(tb.store()));
}

class EnginesOnBenchmarks
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EnginesOnBenchmarks, AgreeOnRealTrace)
{
    const apps::Benchmark &bench = apps::benchmark(GetParam());
    sim::Simulation sim(bench.config);
    bench.build(sim);
    sim.run();
    HbGraph graph(sim.tracer().store());
    VectorClockGraph clocks(graph);

    // Exhaustive over all pairs of memory accesses (the pairs that
    // matter for detection) plus a sweep over consecutive vertices.
    for (int u : graph.memAccesses())
        for (int v : graph.memAccesses())
            ASSERT_EQ(graph.happensBefore(u, v),
                      clocks.happensBefore(u, v))
                << graph.record(u).toLine() << " vs "
                << graph.record(v).toLine();
    EXPECT_GT(clocks.dimensionCount(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, EnginesOnBenchmarks,
    ::testing::Values("CA-1011", "HB-4539", "HB-4729", "MR-3274",
                      "MR-4637", "ZK-1144", "ZK-1270"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace dcatch::hb
