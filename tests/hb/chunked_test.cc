/**
 * @file
 * Tests for chunked trace analysis: within-window exactness, the
 * union across windows, the documented cross-window false negatives,
 * and the key property — chunking analyses traces whose whole-graph
 * reachable sets exceed the memory budget.
 */

#include <gtest/gtest.h>

#include "apps/benchmark.hh"
#include "detect/race_detect.hh"
#include "hb/chunked.hh"
#include "runtime/sim.hh"
#include "support/trace_builder.hh"

namespace dcatch::hb {
namespace {

using testsupport::TraceBuilder;

TEST(ChunkedTest, SingleWindowMatchesWholeGraph)
{
    TraceBuilder tb;
    tb.mem(true, 0, 0, "w", "var:x", 1);
    tb.mem(false, 0, 1, "r", "var:x", 1);
    ChunkOptions options;
    options.windowRecords = 100;
    ChunkedResult result = chunkedDetect(tb.store(), options);
    EXPECT_EQ(result.windows, 1);
    ASSERT_EQ(result.candidates.size(), 1u);
}

TEST(ChunkedTest, NearbyRaceSurvivesWindowBoundary)
{
    TraceBuilder tb;
    // Padding, then a race right around the boundary of a 10-record
    // window with 5 records of overlap.
    for (int i = 0; i < 9; ++i)
        tb.mem(true, 0, 0, "pad", "var:pad" + std::to_string(i));
    tb.mem(true, 0, 1, "w", "var:x", 1);
    tb.mem(false, 0, 2, "r", "var:x", 1);
    ChunkOptions options;
    options.windowRecords = 10;
    options.overlapRecords = 5;
    ChunkedResult result = chunkedDetect(tb.store(), options);
    EXPECT_GT(result.windows, 1);
    bool found = false;
    for (const auto &cand : result.candidates)
        if (cand.var == "var:x")
            found = true;
    EXPECT_TRUE(found);
}

TEST(ChunkedTest, FarApartRaceIsMissed)
{
    TraceBuilder tb;
    tb.mem(true, 0, 1, "w", "var:x", 1);
    for (int i = 0; i < 50; ++i)
        tb.mem(true, 0, 0, "pad", "var:pad" + std::to_string(i));
    tb.mem(false, 0, 2, "r", "var:x", 1);
    ChunkOptions options;
    options.windowRecords = 10;
    options.overlapRecords = 2;
    ChunkedResult result = chunkedDetect(tb.store(), options);
    bool found = false;
    for (const auto &cand : result.candidates)
        if (cand.var == "var:x")
            found = true;
    EXPECT_FALSE(found)
        << "cross-window races are the documented false negatives";
}

TEST(ChunkedTest, AnalysesTraceThatOomsWholeGraph)
{
    // MR-3274's full-memory trace exceeds the tight budget used by
    // the Table 8 bench when analysed whole, but chunked windows fit.
    // The OOM emulation models the dense O(V^2) representation — the
    // chain-frontier engine fits the same trace in the budget, so the
    // dense engine is requested explicitly here.
    const apps::Benchmark &bench = apps::benchmark("MR-3274");
    sim::Simulation sim(bench.config);
    trace::TracerConfig tc;
    tc.selectiveMemory = false;
    sim.setTracerConfig(tc);
    bench.build(sim);
    sim.run();
    const trace::TraceStore &store = sim.tracer().store();

    constexpr std::size_t kTightBudget = 512ull << 10;
    HbGraph::Options graph_options;
    graph_options.engine = HbGraph::Engine::Dense;
    graph_options.memoryBudgetBytes = kTightBudget;
    HbGraph whole(store, graph_options);
    ASSERT_TRUE(whole.oom()) << "precondition: whole graph must OOM";

    ChunkOptions options;
    options.windowRecords = 1200;
    options.overlapRecords = 300;
    options.graph.engine = HbGraph::Engine::Dense;
    options.graph.memoryBudgetBytes = kTightBudget;
    ChunkedResult result = chunkedDetect(store, options);
    EXPECT_FALSE(result.anyWindowOom);
    EXPECT_GT(result.windows, 1);
    EXPECT_LE(result.maxWindowReachBytes, kTightBudget);
    EXPECT_FALSE(result.candidates.empty());
}

TEST(ChunkedTest, ChunkedIsSubsetOfWholeGraphReports)
{
    const apps::Benchmark &bench = apps::benchmark("ZK-1270");
    sim::Simulation sim(bench.config);
    bench.build(sim);
    sim.run();
    const trace::TraceStore &store = sim.tracer().store();

    HbGraph whole(store);
    detect::RaceDetector detector;
    auto whole_cands = detector.detect(whole);
    std::set<std::string> whole_keys;
    for (const auto &cand : whole_cands)
        whole_keys.insert(cand.staticKey());

    ChunkOptions options;
    options.windowRecords = 200;
    options.overlapRecords = 60;
    ChunkedResult chunked = chunkedDetect(store, options);
    for (const auto &cand : chunked.candidates)
        EXPECT_TRUE(whole_keys.count(cand.staticKey()))
            << "chunked reported a pair the whole graph did not: "
            << cand.staticKey();
}

} // namespace
} // namespace dcatch::hb
