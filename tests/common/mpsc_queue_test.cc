/**
 * @file
 * MpscQueue tests: FIFO per producer, no lost or duplicated elements
 * under multi-producer stress with a concurrently draining consumer,
 * and clean teardown with elements still queued.  The stress cases
 * are the ones the TSan CI job leans on.
 */

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mpsc_queue.hh"

namespace dcatch {
namespace {

TEST(MpscQueue, SingleProducerFifo)
{
    MpscQueue<int> queue;
    EXPECT_TRUE(queue.empty());
    for (int i = 0; i < 100; ++i)
        queue.push(i);
    EXPECT_EQ(queue.approxSize(), 100u);
    int value = -1;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(queue.pop(value));
        EXPECT_EQ(value, i);
    }
    EXPECT_FALSE(queue.pop(value));
    EXPECT_TRUE(queue.empty());
}

TEST(MpscQueue, DrainSink)
{
    MpscQueue<int> queue;
    for (int i = 0; i < 10; ++i)
        queue.push(i);
    std::vector<int> seen;
    EXPECT_EQ(queue.drain([&](int v) { seen.push_back(v); }), 10u);
    ASSERT_EQ(seen.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(MpscQueue, MoveOnlyElements)
{
    MpscQueue<std::unique_ptr<int>> queue;
    queue.push(std::make_unique<int>(7));
    std::unique_ptr<int> out;
    ASSERT_TRUE(queue.pop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 7);
}

TEST(MpscQueue, DestructorReleasesQueuedElements)
{
    // Leak detection (ASan build) is the assertion here.
    MpscQueue<std::unique_ptr<int>> queue;
    for (int i = 0; i < 50; ++i)
        queue.push(std::make_unique<int>(i));
}

// The contract under contention: P producers push (producer, i)
// pairs while the single consumer drains concurrently.  Every element
// arrives exactly once and each producer's elements arrive in its
// push order.
TEST(MpscQueue, MultiProducerStressPerProducerFifo)
{
    constexpr int kProducers = 8;
    constexpr int kPerProducer = 20000;

    MpscQueue<std::pair<int, int>> queue;
    std::atomic<int> running{kProducers};

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                queue.push({p, i});
            running.fetch_sub(1, std::memory_order_release);
        });

    std::vector<int> next(kProducers, 0);
    std::size_t total = 0;
    std::pair<int, int> item;
    while (running.load(std::memory_order_acquire) > 0 ||
           !queue.empty()) {
        if (!queue.pop(item)) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_GE(item.first, 0);
        ASSERT_LT(item.first, kProducers);
        // Per-producer FIFO: element i of producer p arrives after
        // its 0..i-1.
        ASSERT_EQ(item.second,
                  next[static_cast<std::size_t>(item.first)]);
        ++next[static_cast<std::size_t>(item.first)];
        ++total;
    }
    for (std::thread &producer : producers)
        producer.join();
    // A producer's final push may land after its `running` decrement;
    // one more drain after the joins picks up any stragglers.
    while (queue.pop(item)) {
        ASSERT_EQ(item.second,
                  next[static_cast<std::size_t>(item.first)]);
        ++next[static_cast<std::size_t>(item.first)];
        ++total;
    }

    EXPECT_EQ(total,
              static_cast<std::size_t>(kProducers) * kPerProducer);
    for (int p = 0; p < kProducers; ++p)
        EXPECT_EQ(next[static_cast<std::size_t>(p)], kPerProducer);
    EXPECT_EQ(queue.approxSize(), 0u);
}

} // namespace
} // namespace dcatch
