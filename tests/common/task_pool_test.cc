/**
 * @file
 * TaskPool contract tests: every index runs exactly once, results are
 * index-addressed (so merges are order-deterministic), stealing keeps
 * all workers busy under skewed task costs, exceptions surface as the
 * lowest-index failure, and jobs == 1 is the inline serial path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/task_pool.hh"

namespace dcatch {
namespace {

TEST(TaskPoolTest, ResolveJobsMapsZeroToHardware)
{
    EXPECT_EQ(TaskPool::resolveJobs(0), TaskPool::hardwareJobs());
    EXPECT_EQ(TaskPool::resolveJobs(1), 1);
    EXPECT_EQ(TaskPool::resolveJobs(7), 7);
    EXPECT_GE(TaskPool::hardwareJobs(), 1);
}

TEST(TaskPoolTest, EveryIndexRunsExactlyOnce)
{
    for (int jobs : {1, 2, 4, 8}) {
        TaskPool pool(jobs);
        constexpr std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        pool.parallelFor(n, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1)
                << "index " << i << " with " << jobs << " jobs";
    }
}

TEST(TaskPoolTest, IndexKeyedResultsAreDeterministic)
{
    // The determinism contract: writing result[i] from body(i) and
    // reading in index order yields the same sequence for any worker
    // count, even when per-task cost is wildly skewed.
    auto run = [](int jobs) {
        TaskPool pool(jobs);
        constexpr std::size_t n = 257;
        std::vector<std::uint64_t> result(n);
        pool.parallelFor(n, [&](std::size_t i) {
            std::uint64_t acc = i;
            // Skew: early indices cost ~1000x the late ones.
            std::size_t spins = (i < 16) ? 100000 : 100;
            for (std::size_t k = 0; k < spins; ++k)
                acc = acc * 6364136223846793005ull + 1442695040888963407ull;
            result[i] = acc;
        });
        return result;
    };
    auto serial = run(1);
    EXPECT_EQ(serial, run(2));
    EXPECT_EQ(serial, run(3));
    EXPECT_EQ(serial, run(8));
}

TEST(TaskPoolTest, StealingSpreadsSkewedWork)
{
    if (TaskPool::hardwareJobs() < 1)
        GTEST_SKIP();
    // All the work sits in the first quarter of the index space; with
    // stealing, more than one thread must end up executing tasks.
    // Oversubscribe so the pool spawns real workers even on a host
    // with fewer cores than jobs.
    TaskPool pool(4, /*oversubscribe=*/true);
    std::mutex mutex;
    std::set<std::thread::id> executors;
    constexpr std::size_t n = 64;
    pool.parallelFor(n, [&](std::size_t i) {
        volatile std::uint64_t acc = i;
        std::size_t spins = i < n / 4 ? 2000000 : 1;
        for (std::size_t k = 0; k < spins; ++k)
            acc = acc * 31 + 7;
        std::lock_guard<std::mutex> guard(mutex);
        executors.insert(std::this_thread::get_id());
    });
    EXPECT_GE(executors.size(), 2u)
        << "skewed front-loaded work should be stolen by idle workers";
}

TEST(TaskPoolTest, PoolIsReusableAcrossCalls)
{
    TaskPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<std::size_t> sum{0};
        std::size_t n = 1 + static_cast<std::size_t>(round) * 7 % 97;
        pool.parallelFor(n, [&](std::size_t i) { sum += i; });
        EXPECT_EQ(sum.load(), n * (n - 1) / 2) << "round " << round;
    }
}

TEST(TaskPoolTest, LowestIndexExceptionWins)
{
    for (int jobs : {1, 4}) {
        TaskPool pool(jobs);
        try {
            pool.parallelFor(100, [&](std::size_t i) {
                if (i == 17 || i == 83)
                    throw std::runtime_error(
                        "task " + std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &error) {
            EXPECT_STREQ(error.what(), "task 17");
        }
    }
}

TEST(TaskPoolTest, AllTasksStillRunWhenOneThrows)
{
    // The run-everything-despite-errors guarantee belongs to the
    // threaded path; oversubscribe keeps it threaded on small hosts
    // (the inline path documents immediate propagation instead).
    TaskPool pool(4, /*oversubscribe=*/true);
    std::vector<std::atomic<int>> hits(200);
    EXPECT_THROW(pool.parallelFor(hits.size(),
                                  [&](std::size_t i) {
                                      ++hits[i];
                                      if (i == 0)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(TaskPoolTest, EmptyAndSingletonRanges)
{
    TaskPool pool(8);
    pool.parallelFor(0, [&](std::size_t) { FAIL(); });
    int hits = 0;
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++hits;
    });
    EXPECT_EQ(hits, 1);
}

TEST(TaskPoolTest, MoreWorkersThanTasks)
{
    TaskPool pool(16);
    std::vector<std::atomic<int>> hits(3);
    pool.parallelFor(3, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(TaskPoolTest, ThreadCapKeepsLogicalWidth)
{
    // Requesting more jobs than the hardware has caps the spawned
    // threads but not the reported width (reports and shard math key
    // off the logical jobs the user asked for).
    int jobs = TaskPool::hardwareJobs() + 8;
    TaskPool pool(jobs);
    EXPECT_EQ(pool.jobs(), jobs);
    EXPECT_LE(pool.spawnedThreads(), TaskPool::hardwareJobs() - 1);
    // Still runs everything exactly once, threaded or inline.
    std::vector<std::atomic<int>> hits(100);
    pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(TaskPoolTest, OversubscribeSpawnsFullWidth)
{
    TaskPool pool(TaskPool::hardwareJobs() + 3, /*oversubscribe=*/true);
    EXPECT_EQ(pool.spawnedThreads(), TaskPool::hardwareJobs() + 2);
}

} // namespace
} // namespace dcatch
