/**
 * @file
 * Unit tests for the JSON writer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/json.hh"

namespace dcatch {
namespace {

TEST(JsonTest, Scalars)
{
    EXPECT_EQ(Json::null().dump(-1), "null");
    EXPECT_EQ(Json::boolean(true).dump(-1), "true");
    EXPECT_EQ(Json::boolean(false).dump(-1), "false");
    EXPECT_EQ(Json::num(std::int64_t{42}).dump(-1), "42");
    EXPECT_EQ(Json::num(2.5).dump(-1), "2.5");
    EXPECT_EQ(Json::str("hi").dump(-1), "\"hi\"");
}

TEST(JsonTest, Escaping)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
    EXPECT_EQ(Json::str("x\ty").dump(-1), "\"x\\ty\"");
}

TEST(JsonTest, ObjectsKeepInsertionOrder)
{
    Json obj = Json::object();
    obj.set("zeta", Json::num(std::int64_t{1}))
        .set("alpha", Json::num(std::int64_t{2}));
    EXPECT_EQ(obj.dump(-1), "{\"zeta\": 1,\"alpha\": 2}");
}

TEST(JsonTest, NestedStructures)
{
    Json arr = Json::array();
    arr.push(Json::num(std::int64_t{1}))
        .push(Json::str("two"))
        .push(Json::object().set("k", Json::boolean(false)));
    Json root = Json::object();
    root.set("items", std::move(arr)).set("empty", Json::array());
    EXPECT_EQ(root.dump(-1),
              "{\"items\": [1,\"two\",{\"k\": false}],\"empty\": []}");
}

TEST(JsonTest, IndentedOutputIsStable)
{
    Json root = Json::object();
    root.set("a", Json::num(std::int64_t{1}));
    EXPECT_EQ(root.dump(2), "{\n  \"a\": 1\n}");
}

TEST(JsonTest, NonFiniteNumbersBecomeNull)
{
    EXPECT_EQ(Json::num(std::nan("")).dump(-1), "null");
}

} // namespace
} // namespace dcatch
