/**
 * @file
 * Unit tests for the common utilities: bitset, string helpers,
 * deterministic RNG, and logging levels.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bitset.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/util.hh"

namespace dcatch {
namespace {

TEST(BitSetTest, SetResetTest)
{
    BitSet bits(130);
    EXPECT_EQ(bits.size(), 130u);
    EXPECT_FALSE(bits.test(0));
    bits.set(0);
    bits.set(64);
    bits.set(129);
    EXPECT_TRUE(bits.test(0));
    EXPECT_TRUE(bits.test(64));
    EXPECT_TRUE(bits.test(129));
    EXPECT_FALSE(bits.test(63));
    bits.reset(64);
    EXPECT_FALSE(bits.test(64));
    EXPECT_EQ(bits.count(), 2u);
}

TEST(BitSetTest, UnionWithReportsChange)
{
    BitSet a(100), b(100);
    b.set(7);
    b.set(77);
    EXPECT_TRUE(a.unionWith(b));
    EXPECT_TRUE(a.test(7));
    EXPECT_TRUE(a.test(77));
    EXPECT_FALSE(a.unionWith(b)) << "second union changes nothing";
}

TEST(BitSetTest, ByteSizeMatchesWordCount)
{
    BitSet bits(65); // needs two 64-bit words
    EXPECT_EQ(bits.byteSize(), 16u);
}

TEST(UtilTest, JoinAndSplitAreInverse)
{
    std::vector<std::string> parts = {"a", "bb", "", "ccc"};
    std::string joined = join(parts, ",");
    EXPECT_EQ(joined, "a,bb,,ccc");
    EXPECT_EQ(split(joined, ','), parts);
    EXPECT_EQ(split("", ','), std::vector<std::string>{""});
}

TEST(UtilTest, Fnv1aIsStable)
{
    EXPECT_EQ(fnv1a("dcatch"), fnv1a("dcatch"));
    EXPECT_NE(fnv1a("dcatch"), fnv1a("dcatcg"));
    EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
}

TEST(UtilTest, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(RngTest, SeededStreamsAreDeterministic)
{
    Rng a(42), b(42), c(43);
    bool all_equal = true, any_diff = false;
    for (int i = 0; i < 100; ++i) {
        auto x = a.next();
        if (x != b.next())
            all_equal = false;
        if (x != c.next())
            any_diff = true;
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff);
}

TEST(RngTest, BoundsRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBelow(13), 13u);
        auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(RngTest, ChanceIsRoughlyCalibrated)
{
    Rng rng(11);
    int hits = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i)
        if (rng.nextChance(1, 4))
            ++hits;
    EXPECT_NEAR(hits / static_cast<double>(trials), 0.25, 0.03);
}

TEST(LoggingTest, LevelParsingAndGating)
{
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("WARN"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("off"), LogLevel::Off);
    EXPECT_EQ(parseLogLevel("gibberish"), LogLevel::Info);

    LogLevel saved = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    setLogLevel(saved);
}

} // namespace
} // namespace dcatch
