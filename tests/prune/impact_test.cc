/**
 * @file
 * Unit tests for static pruning (paper section 4): each impact path
 * (intra-procedural, caller via return value, heap one-level, callee
 * via parameters, distributed via RPC return) plus the prune decision.
 */

#include <gtest/gtest.h>

#include "prune/impact.hh"

namespace dcatch::prune {
namespace {

detect::Candidate
candidate(const std::string &var, const std::string &site_a,
          const std::string &site_b)
{
    detect::Candidate cand;
    cand.var = var;
    cand.a.site = site_a;
    cand.a.callstack = "csA";
    cand.b.site = site_b;
    cand.b.callstack = "csB";
    return cand;
}

TEST(ImpactTest, IntraProceduralFailureDependence)
{
    model::ModelBuilder b;
    b.fn("f")
        .read("f.read", "var:x")
        .failure("f.abort", sim::FailureKind::Abort)
        .dep("f.abort", {"f.read"});
    model::ProgramModel m = b.build();
    StaticPruner pruner(m);
    ImpactFinding finding = pruner.analyzeSite("f.read");
    EXPECT_TRUE(finding.hasImpact);
    EXPECT_EQ(finding.reason, "local-intra:f.abort");
}

TEST(ImpactTest, NoImpactWhenFailureIndependent)
{
    model::ModelBuilder b;
    b.fn("f")
        .read("f.read", "var:x")
        .failure("f.abort", sim::FailureKind::Abort)
        .dep("f.abort", {"f.other"});
    model::ProgramModel m = b.build();
    StaticPruner pruner(m);
    EXPECT_FALSE(pruner.analyzeSite("f.read").hasImpact);
}

TEST(ImpactTest, CallerImpactViaReturnValue)
{
    model::ModelBuilder b;
    b.fn("callee").read("c.read", "var:x").returns({"c.read"});
    b.fn("caller")
        .call("caller.call", "callee")
        .failure("caller.fatal", sim::FailureKind::FatalLog)
        .dep("caller.fatal", {"caller.call"});
    model::ProgramModel m = b.build();
    StaticPruner pruner(m);
    ImpactFinding finding = pruner.analyzeSite("c.read");
    EXPECT_TRUE(finding.hasImpact);
    EXPECT_FALSE(finding.distributed);
    EXPECT_EQ(finding.reason, "local-caller:caller.fatal");
}

TEST(ImpactTest, DistributedImpactViaRpcReturn)
{
    model::ModelBuilder b;
    b.fn("rpcFn").rpc().read("rpc.read", "var:x").returns({"rpc.read"});
    b.fn("remoteCaller")
        .rpcCall("rc.call", "rpcFn")
        .loopExit("rc.loop.exit")
        .dep("rc.loop.exit", {"rc.call"});
    model::ProgramModel m = b.build();
    StaticPruner pruner(m);
    ImpactFinding finding = pruner.analyzeSite("rpc.read");
    EXPECT_TRUE(finding.hasImpact);
    EXPECT_TRUE(finding.distributed);
}

TEST(ImpactTest, HeapImpactThroughOneLevelCaller)
{
    model::ModelBuilder b;
    b.fn("writer").write("w.write", "var:H");
    b.fn("driver")
        .call("d.call", "writer")
        .read("d.read", "var:H")
        .failure("d.abort", sim::FailureKind::Abort)
        .dep("d.abort", {"d.read"});
    model::ProgramModel m = b.build();
    StaticPruner pruner(m);
    ImpactFinding finding = pruner.analyzeSite("w.write");
    EXPECT_TRUE(finding.hasImpact);
    EXPECT_EQ(finding.reason, "heap:d.abort");
}

TEST(ImpactTest, CalleeImpactViaParameters)
{
    model::ModelBuilder b;
    b.fn("validate")
        .failure("v.abort", sim::FailureKind::Abort)
        .dep("v.abort", {"$param"});
    b.fn("submit")
        .write("s.write", "var:x")
        .call("s.call", "validate")
        .dep("s.call", {"s.write"});
    model::ProgramModel m = b.build();
    StaticPruner pruner(m);
    ImpactFinding finding = pruner.analyzeSite("s.write");
    EXPECT_TRUE(finding.hasImpact);
    EXPECT_EQ(finding.reason, "local-callee:v.abort");
}

TEST(ImpactTest, UnmodelledSiteHasNoImpact)
{
    model::ProgramModel m;
    StaticPruner pruner(m);
    EXPECT_FALSE(pruner.analyzeSite("unknown.site").hasImpact);
}

TEST(ImpactTest, CandidateKeptWhenEitherSideHasImpact)
{
    model::ModelBuilder b;
    b.fn("f")
        .read("f.benign", "var:x")
        .write("f.harmful", "var:x")
        .failure("f.abort", sim::FailureKind::Abort)
        .dep("f.abort", {"f.harmful"});
    model::ProgramModel m = b.build();
    StaticPruner pruner(m);

    PruneDecision keep =
        pruner.evaluate(candidate("var:x", "f.benign", "f.harmful"));
    EXPECT_TRUE(keep.keep);
    EXPECT_FALSE(keep.sideA.hasImpact);
    EXPECT_TRUE(keep.sideB.hasImpact);

    PruneDecision drop =
        pruner.evaluate(candidate("var:x", "f.benign", "f.benign"));
    EXPECT_FALSE(drop.keep);
}

TEST(ImpactTest, PruneFiltersList)
{
    model::ModelBuilder b;
    b.fn("f")
        .read("f.benign", "var:x")
        .write("f.harmful", "var:x")
        .failure("f.abort", sim::FailureKind::Abort)
        .dep("f.abort", {"f.harmful"});
    model::ProgramModel m = b.build();
    StaticPruner pruner(m);
    std::vector<detect::Candidate> cands = {
        candidate("var:x", "f.benign", "f.harmful"),
        candidate("var:x", "f.benign", "f.benign"),
    };
    auto kept = pruner.prune(cands);
    ASSERT_EQ(kept.size(), 1u);
    EXPECT_EQ(kept[0].b.site, "f.harmful");
}

} // namespace
} // namespace dcatch::prune
