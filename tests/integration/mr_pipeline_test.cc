/**
 * @file
 * End-to-end pipeline tests on the MapReduce benchmarks: DCatch must
 * detect the known root-cause bug of each workload from a correct
 * (non-failing) monitored run, prune the noise, and confirm the bug
 * via triggering.
 */

#include <gtest/gtest.h>

#include "apps/mapreduce/mini_mr.hh"
#include "dcatch/pipeline.hh"

namespace dcatch {
namespace {

using apps::benchmark;

TEST(MrPipelineTest, MonitoredRunIsCorrect3274)
{
    const apps::Benchmark &bench = benchmark("MR-3274");
    sim::Simulation sim(bench.config);
    bench.build(sim);
    sim::RunResult result = sim.run();
    EXPECT_FALSE(result.failed()) << result.summary();
}

TEST(MrPipelineTest, MonitoredRunIsCorrect4637)
{
    const apps::Benchmark &bench = benchmark("MR-4637");
    sim::Simulation sim(bench.config);
    bench.build(sim);
    sim::RunResult result = sim.run();
    EXPECT_FALSE(result.failed()) << result.summary();
}

TEST(MrPipelineTest, TraceAnalysisFindsKnownPair3274)
{
    PipelineOptions options;
    options.runTrigger = false;
    options.measureBase = false;
    const apps::Benchmark &bench = benchmark("MR-3274");
    PipelineResult result = runPipeline(bench, options);
    ASSERT_FALSE(result.analysisOom);
    bool found = false;
    for (const auto &cand : result.afterTa)
        if (cand.sitePairKey() == bench.knownBugPairs[0])
            found = true;
    EXPECT_TRUE(found)
        << "getTask read vs. unregister remove must be concurrent";
}

TEST(MrPipelineTest, StaticPruningReducesCandidates)
{
    PipelineOptions options;
    options.measureBase = false;
    const apps::Benchmark &bench = benchmark("MR-3274");
    PipelineResult result = runPipeline(bench, options);
    ASSERT_FALSE(result.analysisOom);
    EXPECT_LT(result.afterSp.size(), result.afterTa.size());
    // The impact-free metrics race must be gone.
    for (const auto &cand : result.afterSp) {
        EXPECT_NE(cand.var, "var:AM/fetchCount")
            << "metrics race should be pruned: " << cand.staticKey();
    }
}

TEST(MrPipelineTest, LoopAnalysisSuppressesPullSyncPair)
{
    PipelineOptions options;
    options.measureBase = false;
    const apps::Benchmark &bench = benchmark("MR-3274");
    PipelineResult result = runPipeline(bench, options);
    ASSERT_FALSE(result.analysisOom);

    std::string put_read_pair =
        detect::sitePair(apps::mr::kGetTaskRead, apps::mr::kRegPut);
    bool in_sp = false, in_lp = false;
    for (const auto &cand : result.afterSp)
        if (cand.sitePairKey() == put_read_pair)
            in_sp = true;
    for (const auto &cand : result.afterLp)
        if (cand.sitePairKey() == put_read_pair)
            in_lp = true;
    EXPECT_TRUE(in_sp)
        << "put vs. getTask-read should be reported by TA+SP";
    EXPECT_FALSE(in_lp)
        << "put vs. getTask-read is pull synchronization (Figure 2)";

    // The harmful remove vs. read pair must survive loop analysis.
    bool bug_survives = false;
    for (const auto &cand : result.afterLp)
        if (cand.sitePairKey() == bench.knownBugPairs[0])
            bug_survives = true;
    EXPECT_TRUE(bug_survives);
}

TEST(MrPipelineTest, TriggerConfirmsHang3274)
{
    PipelineOptions options;
    options.measureBase = false;
    options.runTrigger = true;
    const apps::Benchmark &bench = benchmark("MR-3274");
    PipelineResult result = runPipeline(bench, options);
    ASSERT_FALSE(result.analysisOom);

    Classification cls = classify(bench, result);
    EXPECT_TRUE(cls.knownBugDetected)
        << "the Figure 1 hang must be confirmed harmful";
    EXPECT_GE(cls.bugStatic, 1);

    // The confirmed failing run must hang, not crash.
    for (const auto &report : result.triggered) {
        if (report.candidate.sitePairKey() != bench.knownBugPairs[0])
            continue;
        EXPECT_EQ(report.cls, trigger::TriggerClass::Harmful);
        bool has_hang = false;
        for (const auto &failure : report.failures)
            if (failure.kind == sim::FailureKind::LoopHang)
                has_hang = true;
        EXPECT_TRUE(has_hang) << "MR-3274 manifests as a hang";
    }
}

TEST(MrPipelineTest, TriggerConfirmsCrash4637)
{
    PipelineOptions options;
    options.measureBase = false;
    options.runTrigger = true;
    const apps::Benchmark &bench = benchmark("MR-4637");
    PipelineResult result = runPipeline(bench, options);
    ASSERT_FALSE(result.analysisOom);

    Classification cls = classify(bench, result);
    EXPECT_TRUE(cls.knownBugDetected);

    for (const auto &report : result.triggered) {
        if (report.candidate.sitePairKey() != bench.knownBugPairs[0])
            continue;
        EXPECT_EQ(report.cls, trigger::TriggerClass::Harmful);
        bool has_throw = false;
        for (const auto &failure : report.failures)
            if (failure.kind == sim::FailureKind::UncaughtException)
                has_throw = true;
        EXPECT_TRUE(has_throw) << "MR-4637 manifests as an AM crash";
    }
}

TEST(MrPipelineTest, UntracedSyncPairClassifiedSerial)
{
    PipelineOptions options;
    options.measureBase = false;
    options.runTrigger = true;
    const apps::Benchmark &bench = benchmark("MR-3274");
    PipelineResult result = runPipeline(bench, options);

    std::string serial_pair = detect::sitePair(apps::mr::kNmReadyRead,
                                               apps::mr::kNmReadyWrite);
    bool found = false;
    for (const auto &report : result.triggered) {
        if (report.candidate.sitePairKey() != serial_pair)
            continue;
        found = true;
        EXPECT_EQ(report.cls, trigger::TriggerClass::Serial)
            << "untraced-synchronization pair must be serial";
    }
    EXPECT_TRUE(found) << "nmReady pair should be reported";
}

TEST(MrPipelineTest, BenignStatusRaceClassifiedBenign)
{
    PipelineOptions options;
    options.measureBase = false;
    options.runTrigger = true;
    const apps::Benchmark &bench = benchmark("MR-3274");
    PipelineResult result = runPipeline(bench, options);

    std::string benign_pair = detect::sitePair(
        apps::mr::kStatusRead, apps::mr::kTaskDoneStatus);
    for (const auto &report : result.triggered) {
        if (report.candidate.sitePairKey() != benign_pair)
            continue;
        EXPECT_EQ(report.cls, trigger::TriggerClass::Benign)
            << "jobStatus race never fails";
    }
}

TEST(MrPipelineTest, FullTraceIsLargerThanSelective)
{
    PipelineOptions selective;
    selective.measureBase = false;
    PipelineOptions full = selective;
    full.fullMemoryTrace = true;
    full.staticPruning = false;
    full.loopAnalysis = false;
    const apps::Benchmark &bench = benchmark("MR-3274");
    PipelineResult s = runPipeline(bench, selective);
    PipelineResult f = runPipeline(bench, full);
    EXPECT_GT(f.metrics.traceBytes, s.metrics.traceBytes);
}

} // namespace
} // namespace dcatch
