/**
 * @file
 * End-to-end pipeline checks across all seven benchmarks: each
 * monitored run is correct, DCatch detects the known root-cause bug,
 * pruning reduces the report count, and triggering confirms the bug
 * as harmful (the paper's headline Table 4 result).
 */

#include <gtest/gtest.h>

#include "dcatch/pipeline.hh"

namespace dcatch {
namespace {

class AllBenchmarksTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AllBenchmarksTest, MonitoredRunIsCorrect)
{
    const apps::Benchmark &bench = apps::benchmark(GetParam());
    sim::Simulation sim(bench.config);
    bench.build(sim);
    sim::RunResult result = sim.run();
    EXPECT_FALSE(result.failed()) << result.summary();
}

TEST_P(AllBenchmarksTest, KnownBugAmongFinalReports)
{
    PipelineOptions options;
    options.measureBase = false;
    const apps::Benchmark &bench = apps::benchmark(GetParam());
    PipelineResult result = runPipeline(bench, options);
    ASSERT_FALSE(result.analysisOom);
    bool found = false;
    for (const auto &cand : result.finalReports())
        for (const std::string &pair : bench.knownBugPairs)
            if (cand.sitePairKey() == pair)
                found = true;
    EXPECT_TRUE(found) << "known root-cause pair missing from reports";
}

TEST_P(AllBenchmarksTest, PruningNeverIncreasesReports)
{
    PipelineOptions options;
    options.measureBase = false;
    const apps::Benchmark &bench = apps::benchmark(GetParam());
    PipelineResult result = runPipeline(bench, options);
    ASSERT_FALSE(result.analysisOom);
    auto ta = detect::countReports(result.afterTa);
    auto sp = detect::countReports(result.afterSp);
    auto lp = detect::countReports(result.afterLp);
    EXPECT_LE(sp.staticPairs, ta.staticPairs);
    EXPECT_LE(lp.staticPairs, sp.staticPairs);
    EXPECT_GE(lp.staticPairs, 1);
}

TEST_P(AllBenchmarksTest, StaticPruningRemovesSomething)
{
    PipelineOptions options;
    options.measureBase = false;
    const apps::Benchmark &bench = apps::benchmark(GetParam());
    PipelineResult result = runPipeline(bench, options);
    ASSERT_FALSE(result.analysisOom);
    EXPECT_LT(detect::countReports(result.afterSp).callstackPairs,
              detect::countReports(result.afterTa).callstackPairs)
        << "every mini system embeds impact-free races SP must remove";
}

TEST_P(AllBenchmarksTest, TriggerConfirmsKnownBugHarmful)
{
    PipelineOptions options;
    options.measureBase = false;
    options.runTrigger = true;
    const apps::Benchmark &bench = apps::benchmark(GetParam());
    PipelineResult result = runPipeline(bench, options);
    ASSERT_FALSE(result.analysisOom);
    Classification cls = classify(bench, result);
    EXPECT_TRUE(cls.knownBugDetected)
        << bench.id << ": known bug not confirmed harmful";
    EXPECT_GE(cls.bugStatic, 1);
}

TEST_P(AllBenchmarksTest, SelectiveTraceSmallerThanFull)
{
    PipelineOptions selective;
    selective.measureBase = false;
    selective.staticPruning = false;
    selective.loopAnalysis = false;
    PipelineOptions full = selective;
    full.fullMemoryTrace = true;
    const apps::Benchmark &bench = apps::benchmark(GetParam());
    PipelineResult s = runPipeline(bench, selective);
    PipelineResult f = runPipeline(bench, full);
    EXPECT_GT(f.metrics.traceBytes, s.metrics.traceBytes);
}

INSTANTIATE_TEST_SUITE_P(
    Table3, AllBenchmarksTest,
    ::testing::Values("CA-1011", "HB-4539", "HB-4729", "MR-3274",
                      "MR-4637", "ZK-1144", "ZK-1270"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace dcatch
