/**
 * @file
 * Pipeline option matrix: invariants across rule ablations and
 * failure-spec configurations.
 *
 *  - ablating a mechanism a system does not use leaves trace analysis
 *    unchanged (the "-" cells of Table 9);
 *  - two pipeline executions with identical options agree exactly
 *    (full determinism end to end);
 *  - restricting the failure spec prunes the corresponding bugs
 *    (excluding loop-exit failure instructions loses the MR-3274
 *    hang, exactly the configurability trade-off of section 4.1);
 *  - disabling static pruning is the paper's "trigger everything"
 *    escape hatch: the final list then includes everything TA found
 *    (minus loop-synchronization pairs).
 */

#include <gtest/gtest.h>

#include <set>

#include "dcatch/pipeline.hh"

namespace dcatch {
namespace {

std::multiset<std::string>
staticKeys(const std::vector<detect::Candidate> &cands)
{
    std::multiset<std::string> keys;
    for (const auto &cand : cands)
        keys.insert(cand.staticKey());
    return keys;
}

TEST(PipelineOptionsTest, UnusedMechanismAblationIsNeutral)
{
    struct Case
    {
        const char *bench;
        hb::RuleSet rules;
    };
    const Case cases[] = {
        {"CA-1011", hb::RuleSet::withoutRpc()},  // Cassandra: no RPC
        {"CA-1011", hb::RuleSet::withoutPush()}, // no coordination
        {"ZK-1144", hb::RuleSet::withoutRpc()},  // ZooKeeper: no RPC
        {"ZK-1270", hb::RuleSet::withoutPush()},
        {"MR-3274", hb::RuleSet::withoutPush()}, // MapReduce: no coord
        {"HB-4539", hb::RuleSet::withoutSocket()}, // HBase msgs only
    };
    for (const Case &c : cases) {
        PipelineOptions base;
        base.measureBase = false;
        base.loopAnalysis = false;
        PipelineOptions ablated = base;
        ablated.rules = c.rules;
        const apps::Benchmark &bench = apps::benchmark(c.bench);
        auto a = runPipeline(bench, base);
        auto b = runPipeline(bench, ablated);
        EXPECT_EQ(staticKeys(a.afterTa), staticKeys(b.afterTa))
            << c.bench << ": ablating an unused mechanism changed TA";
    }
}

TEST(PipelineOptionsTest, PipelineIsFullyDeterministic)
{
    PipelineOptions options;
    options.measureBase = false;
    options.runTrigger = true;
    const apps::Benchmark &bench = apps::benchmark("HB-4729");
    auto a = runPipeline(bench, options);
    auto b = runPipeline(bench, options);
    EXPECT_EQ(staticKeys(a.afterTa), staticKeys(b.afterTa));
    EXPECT_EQ(staticKeys(a.afterSp), staticKeys(b.afterSp));
    EXPECT_EQ(staticKeys(a.afterLp), staticKeys(b.afterLp));
    ASSERT_EQ(a.triggered.size(), b.triggered.size());
    for (std::size_t i = 0; i < a.triggered.size(); ++i)
        EXPECT_EQ(a.triggered[i].cls, b.triggered[i].cls);
}

TEST(PipelineOptionsTest, ExcludingLoopExitsLosesHangBugs)
{
    // MR-3274's only failure impact is the NM retry loop's exit:
    // a pruner configured without loop-exit failure instructions
    // (section 4.1 configurability) prunes the true hang bug — the
    // documented risk of narrowing the failure list.
    PipelineOptions options;
    options.measureBase = false;
    options.failureSpec.loopExits = false;
    const apps::Benchmark &bench = apps::benchmark("MR-3274");
    PipelineResult result = runPipeline(bench, options);
    for (const auto &cand : result.finalReports())
        EXPECT_NE(cand.sitePairKey(), bench.knownBugPairs[0])
            << "hang bug should be pruned without loop-exit failures";

    // Crash bugs are unaffected by the same restriction.
    const apps::Benchmark &crash = apps::benchmark("MR-4637");
    PipelineResult crash_result = runPipeline(crash, options);
    bool found = false;
    for (const auto &cand : crash_result.finalReports())
        if (cand.sitePairKey() == crash.knownBugPairs[0])
            found = true;
    EXPECT_TRUE(found);
}

TEST(PipelineOptionsTest, NoPruningIsTheTriggerEverythingEscapeHatch)
{
    PipelineOptions options;
    options.measureBase = false;
    options.staticPruning = false;
    options.loopAnalysis = false;
    const apps::Benchmark &bench = apps::benchmark("ZK-1270");
    PipelineResult result = runPipeline(bench, options);
    EXPECT_EQ(staticKeys(result.afterTa),
              staticKeys(result.finalReports()))
        << "with pruning off, everything TA found reaches triggering";
}

TEST(PipelineOptionsTest, FailureSpecAdmitsExactKinds)
{
    prune::FailureSpec spec;
    spec.aborts = false;
    model::Inst abort_inst;
    abort_inst.kind = model::InstKind::Failure;
    abort_inst.failureKind = sim::FailureKind::Abort;
    model::Inst log_inst = abort_inst;
    log_inst.failureKind = sim::FailureKind::FatalLog;
    model::Inst loop_inst;
    loop_inst.kind = model::InstKind::LoopExit;
    model::Inst plain;
    plain.kind = model::InstKind::Plain;
    EXPECT_FALSE(spec.admits(abort_inst));
    EXPECT_TRUE(spec.admits(log_inst));
    EXPECT_TRUE(spec.admits(loop_inst));
    EXPECT_FALSE(spec.admits(plain));
}

} // namespace
} // namespace dcatch
