/**
 * @file
 * Unit tests for the ProgramModel IR and its dependence queries.
 */

#include <gtest/gtest.h>

#include "model/program_model.hh"

namespace dcatch::model {
namespace {

ProgramModel
sampleModel()
{
    ModelBuilder b;
    // RPC function: read feeds the return value.
    b.fn("AM.getTask")
        .rpc()
        .read("am.getTask.read", "map:AM/jMap")
        .returns({"am.getTask.read"});
    // Caller with a retry loop whose exit depends on the RPC result.
    b.fn("NM.taskLoop")
        .rpcCall("nm.call.getTask", "AM.getTask")
        .loopExit("nm.loop.exit")
        .dep("nm.loop.exit", {"nm.call.getTask"});
    // Event handler with a failure depending on a read.
    b.fn("AM.commit")
        .read("am.commit.read", "var:AM/state")
        .failure("am.commit.throw", sim::FailureKind::UncaughtException)
        .dep("am.commit.throw", {"am.commit.read"})
        .write("am.commit.log", "var:AM/metrics");
    // Callee whose failure depends on parameters.
    b.fn("AM.validate")
        .failure("am.validate.abort", sim::FailureKind::Abort)
        .dep("am.validate.abort", {"$param"});
    b.fn("AM.submit")
        .write("am.submit.w", "var:AM/job")
        .call("am.submit.call", "AM.validate")
        .dep("am.submit.call", {"am.submit.w"});
    return b.build();
}

TEST(ProgramModelTest, FunctionOfFindsEnclosingFunction)
{
    ProgramModel m = sampleModel();
    ASSERT_NE(m.functionOf("am.getTask.read"), nullptr);
    EXPECT_EQ(m.functionOf("am.getTask.read")->name, "AM.getTask");
    EXPECT_EQ(m.functionOf("no.such.site"), nullptr);
}

TEST(ProgramModelTest, ForwardSliceFollowsTransitiveDeps)
{
    ModelBuilder b;
    b.fn("f")
        .inst("a")
        .inst("b")
        .inst("c")
        .inst("d")
        .dep("b", {"a"})
        .dep("c", {"b"})
        .dep("d", {"x"}); // unrelated
    ProgramModel m = b.build();
    auto slice = m.forwardSlice(*m.function("f"), "a");
    EXPECT_TRUE(slice.count("a"));
    EXPECT_TRUE(slice.count("b"));
    EXPECT_TRUE(slice.count("c"));
    EXPECT_FALSE(slice.count("d"));
}

TEST(ProgramModelTest, DependsOnIsIntraprocedural)
{
    ProgramModel m = sampleModel();
    EXPECT_TRUE(m.dependsOn("am.commit.throw", "am.commit.read"));
    EXPECT_FALSE(m.dependsOn("am.commit.read", "am.commit.throw"));
}

TEST(ProgramModelTest, CallersOfFindsRpcInvocations)
{
    ProgramModel m = sampleModel();
    auto callers = m.callersOf("AM.getTask");
    ASSERT_EQ(callers.size(), 1u);
    EXPECT_EQ(callers[0]->site, "nm.call.getTask");
    EXPECT_TRUE(callers[0]->rpcCall);
}

TEST(ProgramModelTest, FailureInstsIncludeLoopExits)
{
    ProgramModel m = sampleModel();
    auto fails = m.failureInsts(*m.function("NM.taskLoop"));
    ASSERT_EQ(fails.size(), 1u);
    EXPECT_EQ(fails[0]->kind, InstKind::LoopExit);
}

TEST(ProgramModelTest, LoopExitFedByDistributedProtocol)
{
    ProgramModel m = sampleModel();
    auto loop = m.loopExitFedBy("am.getTask.read");
    ASSERT_TRUE(loop.has_value());
    EXPECT_EQ(*loop, "nm.loop.exit");
}

TEST(ProgramModelTest, LoopExitFedByIntraNodeLoop)
{
    ModelBuilder b;
    b.fn("worker")
        .read("w.read", "var:n/flag")
        .loopExit("w.loop.exit")
        .dep("w.loop.exit", {"w.read"});
    ProgramModel m = b.build();
    auto loop = m.loopExitFedBy("w.read");
    ASSERT_TRUE(loop.has_value());
    EXPECT_EQ(*loop, "w.loop.exit");
}

TEST(ProgramModelTest, LoopExitFedByRejectsNonFeedingReads)
{
    ProgramModel m = sampleModel();
    // am.commit.read does not feed any loop exit.
    EXPECT_FALSE(m.loopExitFedBy("am.commit.read").has_value());
}

TEST(ProgramModelTest, BuilderMergesRepeatedFn)
{
    ModelBuilder b;
    b.fn("f").inst("a");
    b.fn("f").inst("b");
    ProgramModel m = b.build();
    EXPECT_EQ(m.function("f")->insts.size(), 2u);
}

} // namespace
} // namespace dcatch::model
