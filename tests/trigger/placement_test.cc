/**
 * @file
 * Unit tests for the request-placement analysis (paper section 5.2):
 * relocation out of single-consumer event handlers, away from shared
 * RPC handler threads, before common critical sections, out of
 * message handlers whose dispatcher the peer depends on, and the
 * many-dynamic-instances rule.
 */

#include <gtest/gtest.h>

#include "support/trace_builder.hh"
#include "trigger/placement.hh"

namespace dcatch::trigger {
namespace {

using testsupport::TraceBuilder;
using trace::RecordType;

detect::Candidate
makeCandidate(const std::string &var, trace::TraceStore::RecordView a,
              trace::TraceStore::RecordView b)
{
    detect::Candidate cand;
    cand.var = var;
    auto fill = [](trace::TraceStore::RecordView rec) {
        detect::CandidateAccess acc;
        acc.site = std::string(rec.site());
        acc.callstack = std::string(rec.callstack());
        acc.isWrite = rec.type() == RecordType::MemWrite;
        acc.thread = rec.thread();
        acc.node = rec.node();
        acc.version = rec.aux();
        return acc;
    };
    cand.a = fill(a);
    cand.b = fill(b);
    return cand;
}

trace::TraceStore::RecordView
last(const trace::TraceStore &store, int thread)
{
    auto log = store.threadLog(thread);
    return log[log.size() - 1];
}

TEST(PlacementTest, NaivePlanWhenNothingApplies)
{
    TraceBuilder tb;
    tb.mem(true, 0, 0, "w", "var:x", 1);
    tb.mem(false, 1, 1, "r", "var:x", 1);
    PlacementAnalyzer analyzer(tb.store());
    auto cand = makeCandidate("var:x", last(tb.store(), 0),
                              last(tb.store(), 1));
    Placement plan = analyzer.plan(cand);
    EXPECT_FALSE(plan.relocated);
    EXPECT_EQ(plan.a.site, "w");
    EXPECT_EQ(plan.b.site, "r");
}

TEST(PlacementTest, SameSingleConsumerQueueMovesToEnqueues)
{
    TraceBuilder tb;
    tb.queue("n0/q", 0, true);
    tb.add(RecordType::EventCreate, 0, 1, "enq1", "n0/q#0", 0, "csE1");
    tb.add(RecordType::EventCreate, 0, 2, "enq2", "n0/q#1", 0, "csE2");
    tb.add(RecordType::EventBegin, 0, 3, "evt", "n0/q#0");
    tb.add(RecordType::MemWrite, 0, 3, "h1.w", "var:x", 1, "csH1");
    tb.add(RecordType::EventEnd, 0, 3, "evt", "n0/q#0");
    tb.add(RecordType::EventBegin, 0, 3, "evt", "n0/q#1");
    tb.add(RecordType::MemWrite, 0, 3, "h2.w", "var:x", 2, "csH2");
    tb.add(RecordType::EventEnd, 0, 3, "evt", "n0/q#1");

    PlacementAnalyzer analyzer(tb.store());
    const auto &log = tb.store().threadLog(3);
    auto cand = makeCandidate("var:x", log[1], log[4]);
    Placement plan = analyzer.plan(cand);
    EXPECT_TRUE(plan.relocated);
    EXPECT_EQ(plan.a.site, "enq1");
    EXPECT_EQ(plan.b.site, "enq2");
}

TEST(PlacementTest, MultiConsumerQueueKeepsNaivePoints)
{
    TraceBuilder tb;
    tb.queue("n0/q", 0, false); // multi-consumer: no hang hazard
    tb.add(RecordType::EventCreate, 0, 1, "enq1", "n0/q#0");
    tb.add(RecordType::EventCreate, 0, 1, "enq2", "n0/q#1");
    tb.add(RecordType::EventBegin, 0, 3, "evt", "n0/q#0");
    tb.add(RecordType::MemWrite, 0, 3, "h1.w", "var:x", 1, "csH1");
    tb.add(RecordType::EventEnd, 0, 3, "evt", "n0/q#0");
    tb.add(RecordType::EventBegin, 0, 4, "evt", "n0/q#1");
    tb.add(RecordType::MemWrite, 0, 4, "h2.w", "var:x", 2, "csH2");
    tb.add(RecordType::EventEnd, 0, 4, "evt", "n0/q#1");

    PlacementAnalyzer analyzer(tb.store());
    auto cand = makeCandidate("var:x", tb.store().threadLog(3)[1],
                              tb.store().threadLog(4)[1]);
    Placement plan = analyzer.plan(cand);
    EXPECT_FALSE(plan.relocated);
}

TEST(PlacementTest, SameRpcThreadMovesToCallers)
{
    TraceBuilder tb;
    tb.add(RecordType::RpcCreate, 1, 1, "call1", "rpc-1", 0, "csC1");
    tb.add(RecordType::RpcBegin, 0, 3, "f", "rpc-1");
    tb.add(RecordType::MemWrite, 0, 3, "f.w", "var:x", 1, "csF1");
    tb.add(RecordType::RpcEnd, 0, 3, "f", "rpc-1");
    tb.add(RecordType::RpcCreate, 2, 2, "call2", "rpc-2", 0, "csC2");
    tb.add(RecordType::RpcBegin, 0, 3, "g", "rpc-2");
    tb.add(RecordType::MemWrite, 0, 3, "g.w", "var:x", 2, "csG1");
    tb.add(RecordType::RpcEnd, 0, 3, "g", "rpc-2");

    PlacementAnalyzer analyzer(tb.store());
    auto cand = makeCandidate("var:x", tb.store().threadLog(3)[1],
                              tb.store().threadLog(3)[4]);
    Placement plan = analyzer.plan(cand);
    EXPECT_TRUE(plan.relocated);
    EXPECT_EQ(plan.a.site, "call1");
    EXPECT_EQ(plan.b.site, "call2");
}

TEST(PlacementTest, CommonLockMovesBeforeCriticalSections)
{
    TraceBuilder tb;
    // Two regular threads taking the same lock around their accesses.
    tb.add(RecordType::LockAcquire, 0, 1, "cs1.acq", "lock:n0/L", 0,
           "cs1");
    tb.add(RecordType::MemWrite, 0, 1, "w1", "var:x", 1, "cs1");
    tb.add(RecordType::LockRelease, 0, 1, "cs1.acq", "lock:n0/L", 0,
           "cs1");
    tb.add(RecordType::LockAcquire, 0, 2, "cs2.acq", "lock:n0/L", 0,
           "cs2");
    tb.add(RecordType::MemWrite, 0, 2, "w2", "var:x", 2, "cs2");
    tb.add(RecordType::LockRelease, 0, 2, "cs2.acq", "lock:n0/L", 0,
           "cs2");

    PlacementAnalyzer analyzer(tb.store());
    auto cand = makeCandidate("var:x", tb.store().threadLog(1)[1],
                              tb.store().threadLog(2)[1]);
    Placement plan = analyzer.plan(cand);
    EXPECT_TRUE(plan.relocated);
    EXPECT_EQ(plan.a.site, "cs1.acq");
    EXPECT_EQ(plan.b.site, "cs2.acq");
    EXPECT_NE(plan.rationale.find("lock"), std::string::npos);
}

TEST(PlacementTest, MessageHandlerMovedWhenPeerDependsOnDispatcher)
{
    TraceBuilder tb;
    // Thread 5 = node 0's dispatcher.  Message m-1's handler writes x.
    tb.add(RecordType::MsgSend, 1, 1, "send1", "m-1", 0, "csS1");
    tb.add(RecordType::MsgRecv, 0, 5, "verbA", "m-1");
    tb.add(RecordType::MemWrite, 0, 5, "hA.w", "var:x", 1, "csA");
    // The dispatcher also enqueues the event whose handler reads x.
    tb.add(RecordType::MsgRecv, 0, 5, "verbB", "m-2");
    tb.add(RecordType::EventCreate, 0, 5, "enqB", "n0/q#0");
    tb.queue("n0/q", 0, true);
    tb.add(RecordType::EventBegin, 0, 6, "evtB", "n0/q#0");
    tb.add(RecordType::MemRead, 0, 6, "hB.r", "var:x", 1, "csB");
    tb.add(RecordType::EventEnd, 0, 6, "evtB", "n0/q#0");

    PlacementAnalyzer analyzer(tb.store());
    auto cand = makeCandidate("var:x", tb.store().threadLog(5)[1],
                              tb.store().threadLog(6)[1]);
    Placement plan = analyzer.plan(cand);
    EXPECT_TRUE(plan.relocated);
    EXPECT_EQ(plan.a.site, "send1")
        << "the write's hold must move to the sender";
}

TEST(PlacementTest, MessageHandlerKeptWhenPeerIsIndependent)
{
    TraceBuilder tb;
    tb.add(RecordType::MsgSend, 1, 1, "send1", "m-1");
    tb.add(RecordType::MsgRecv, 0, 5, "verbA", "m-1");
    tb.add(RecordType::MemWrite, 0, 5, "hA.w", "var:x", 1, "csA");
    tb.add(RecordType::MemRead, 0, 7, "free.r", "var:x", 1, "csR");

    PlacementAnalyzer analyzer(tb.store());
    auto cand = makeCandidate("var:x", tb.store().threadLog(5)[1],
                              tb.store().threadLog(7)[0]);
    Placement plan = analyzer.plan(cand);
    EXPECT_FALSE(plan.relocated)
        << "holding the dispatcher is safe when the peer runs freely";
}

TEST(PlacementTest, ManyInstancesRelocateAlongHbChain)
{
    TraceBuilder tb;
    // One enqueue; the handler's site executes five dynamic times
    // under the same callstack (loop in the handler).
    tb.add(RecordType::EventCreate, 0, 1, "enq", "n0/q#0", 0, "csE");
    tb.queue("n0/q", 0, true);
    tb.add(RecordType::EventBegin, 0, 3, "evt", "n0/q#0");
    for (int i = 0; i < 5; ++i)
        tb.add(RecordType::MemWrite, 0, 3, "h.w", "var:x", i + 1, "csH");
    tb.add(RecordType::EventEnd, 0, 3, "evt", "n0/q#0");
    tb.add(RecordType::MemRead, 1, 4, "peer.r", "var:x", 3, "csP");

    PlacementAnalyzer analyzer(tb.store());
    auto cand = makeCandidate("var:x", tb.store().threadLog(3)[2],
                              tb.store().threadLog(4)[0]);
    Placement plan = analyzer.plan(cand);
    EXPECT_TRUE(plan.relocated);
    EXPECT_EQ(plan.a.site, "enq")
        << "many dynamic instances: prefer the causally preceding "
           "request point";
}

} // namespace
} // namespace dcatch::trigger
