/**
 * @file
 * Unit tests for the OrderController on small purpose-built
 * simulations: enforcing both orders of a two-thread race, the
 * first-pass-is-confirm semantics under the serialized scheduler,
 * instance selection, and the quiescence rescue path.
 */

#include <gtest/gtest.h>

#include <memory>

#include "runtime/shared.hh"
#include "runtime/sim.hh"
#include "trigger/controller.hh"

namespace dcatch::trigger {
namespace {

using namespace dcatch::sim;

/** Two threads, one writes "w" then the other reads "r" (or vice
 *  versa depending on enforcement); the read result is captured. */
struct RaceRig
{
    std::unique_ptr<Simulation> sim;
    int observed = -1;

    explicit RaceRig(OrderController *controller)
    {
        sim = std::make_unique<Simulation>();
        Node &node = sim->addNode("n");
        auto var = std::make_shared<SharedVar<int>>(node, "x", 0);
        if (controller)
            sim->setControlHook(controller);
        sim->spawn(nullptr, node, "writer", [var](ThreadContext &ctx) {
            Frame f(ctx, "writer", ScopeKind::Event, "e:w");
            ctx.pause(4);
            var->write(ctx, "rig.write", 1);
        });
        sim->spawn(nullptr, node, "reader",
                   [var, this](ThreadContext &ctx) {
                       Frame f(ctx, "reader", ScopeKind::Event, "e:r");
                       ctx.pause(4);
                       observed = var->read(ctx, "rig.read");
                   });
    }
};

TEST(OrderControllerTest, EnforcesWriteBeforeRead)
{
    OrderController controller({"rig.write", "", 0, ""},
                               {"rig.read", "", 0, ""});
    RaceRig rig(&controller);
    EXPECT_FALSE(rig.sim->run().failed());
    EXPECT_TRUE(controller.orderEnforced());
    EXPECT_EQ(rig.observed, 1) << "read must see the write";
}

TEST(OrderControllerTest, EnforcesReadBeforeWrite)
{
    OrderController controller({"rig.read", "", 0, ""},
                               {"rig.write", "", 0, ""});
    RaceRig rig(&controller);
    EXPECT_FALSE(rig.sim->run().failed());
    EXPECT_TRUE(controller.orderEnforced());
    EXPECT_EQ(rig.observed, 0) << "read must see the initial value";
}

TEST(OrderControllerTest, BothOrdersAchievableOnATrueRace)
{
    // The defining property of a race: the controller can produce
    // both outcomes from the same program.
    int seen_first = -1, seen_second = -1;
    {
        OrderController c({"rig.write", "", 0, ""},
                          {"rig.read", "", 0, ""});
        RaceRig rig(&c);
        rig.sim->run();
        seen_first = rig.observed;
    }
    {
        OrderController c({"rig.read", "", 0, ""},
                          {"rig.write", "", 0, ""});
        RaceRig rig(&c);
        rig.sim->run();
        seen_second = rig.observed;
    }
    EXPECT_EQ(seen_first, 1);
    EXPECT_EQ(seen_second, 0);
}

TEST(OrderControllerTest, QuiesceRescuesUnmatchablePoint)
{
    // The first point's site never executes: the held second party
    // must be released at quiescence and the rescue recorded.
    OrderController controller({"rig.never", "", 0, ""},
                               {"rig.read", "", 0, ""});
    RaceRig rig(&controller);
    RunResult result = rig.sim->run();
    EXPECT_EQ(result.status, RunStatus::Completed);
    EXPECT_TRUE(controller.rescued());
    EXPECT_FALSE(controller.orderEnforced());
    EXPECT_FALSE(controller.firstReached());
    EXPECT_TRUE(controller.secondReached());
}

TEST(OrderControllerTest, InstanceSelectionHoldsTheRightOccurrence)
{
    // Writer writes three times; enforce "read before write #2"
    // (0-based instance 2): the read must observe exactly two writes.
    Simulation sim;
    Node &node = sim.addNode("n");
    auto var = std::make_shared<SharedVar<int>>(node, "x", 0);
    OrderController controller({"multi.read", "", 0, ""},
                               {"multi.write", "", 2, ""});
    sim.setControlHook(&controller);
    int observed = -1;
    sim.spawn(nullptr, node, "writer", [var](ThreadContext &ctx) {
        Frame f(ctx, "writer", ScopeKind::Event, "e:w");
        for (int i = 1; i <= 3; ++i)
            var->write(ctx, "multi.write", i);
    });
    sim.spawn(nullptr, node, "reader", [&](ThreadContext &ctx) {
        Frame f(ctx, "reader", ScopeKind::Event, "e:r");
        ctx.pause(30);
        observed = var->read(ctx, "multi.read");
    });
    EXPECT_FALSE(sim.run().failed());
    EXPECT_TRUE(controller.orderEnforced());
    EXPECT_EQ(observed, 2)
        << "the third write must have been held until the read";
}

TEST(OrderControllerTest, CallstackFramesMatchingIgnoresThreadName)
{
    // The request point carries a callstack recorded from one worker;
    // a record with the same frames on a different thread matches.
    OrderController controller(
        {"rig.write", "someOtherThread:writer", 0, ""},
        {"rig.read", "yetAnother:reader", 0, ""});
    RaceRig rig(&controller);
    rig.sim->run();
    EXPECT_TRUE(controller.orderEnforced());
}

} // namespace
} // namespace dcatch::trigger
