/**
 * @file
 * dcatch_feed: stream a trace into a running dcatchd and verify the
 * answer — the producer half of the serve smoke test and of the CI
 * equivalence check (docs/serve.md).
 *
 *   dcatch_feed --connect ADDR (--benchmark ID | --trace-dir DIR)
 *               [--producers N] [--batch N] [--run-id ID]
 *               [--check] [--quiet]
 *
 * The trace comes from a registered benchmark's monitored run
 * (simulated in-process) or from a directory written by
 * `dcatch run --trace-dir`.  Its merged record stream is partitioned
 * round-robin across N producer connections — each producer's
 * subsequence stays ascending in sequence number, but the daemon has
 * to merge the streams behind its watermark to recover the global
 * order — and sent in Records frames of --batch lines, rotating
 * between producers to maximize interleaving.
 *
 * --check recomputes the batch trace-analysis answer locally
 * (hb::HbGraph + detect::RaceDetector over the same store) and
 * demands the daemon's Report be byte-identical to
 * serve::canonicalReport of that answer.  Exit status: 0 when every
 * producer got the Report (and it matched, under --check), 1 on
 * usage/connect errors, 2 when the daemon reported an Error or the
 * report mismatched.
 */

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "apps/benchmark.hh"
#include "common/util.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "runtime/sim.hh"
#include "serve/server.hh"
#include "serve/session.hh"
#include "serve/wire.hh"
#include "trace/trace_store.hh"

namespace {

using namespace dcatch;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: dcatch_feed --connect ADDR (--benchmark ID | "
        "--trace-dir DIR)\n"
        "                   [--producers N] [--batch N] [--rate N]\n"
        "                   [--run-id ID] [--check] [--quiet]\n"
        "  --connect A    dcatchd address (unix:PATH or tcp:HOST:PORT)\n"
        "  --benchmark I  stream benchmark I's monitored run\n"
        "  --trace-dir D  stream the trace files under D\n"
        "  --producers N  concurrent producer connections (default 1)\n"
        "  --batch N      records per Records frame (default 256)\n"
        "  --rate N       pace the stream to N records/sec aggregate\n"
        "                 (default: as fast as the daemon accepts)\n"
        "  --run-id S     session run id (default: benchmark id / dir)\n"
        "  --check        verify the Report against the local batch\n"
        "                 pipeline (byte-identical) — exit 2 on "
        "mismatch\n"
        "  --quiet        suppress the progress summary\n");
    return 1;
}

/** One producer connection plus its background frame reader. */
struct Peer
{
    int fd = -1;
    std::thread reader;
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false; ///< Report, Error, or EOF seen
    bool sawReport = false;
    bool sawError = false;
    std::string report;
    std::string error;
    std::size_t candidates = 0;
};

bool
sendAll(int fd, const std::string &bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/** Drain server frames until the session resolves (Report/Error). */
void
readerLoop(Peer &peer)
{
    serve::FrameReader reader;
    char buffer[64 * 1024];
    std::vector<serve::Frame> frames;
    for (;;) {
        ssize_t n = ::read(peer.fd, buffer, sizeof(buffer));
        if (n <= 0)
            break;
        frames.clear();
        if (!reader.feed(buffer, static_cast<std::size_t>(n), frames))
            break;
        std::lock_guard<std::mutex> lock(peer.mutex);
        for (serve::Frame &frame : frames) {
            if (frame.type == serve::FrameType::Candidate) {
                ++peer.candidates;
            } else if (frame.type == serve::FrameType::Report) {
                peer.sawReport = true;
                peer.report = std::move(frame.payload);
            } else if (frame.type == serve::FrameType::Error) {
                peer.sawError = true;
                peer.error = std::move(frame.payload);
            }
        }
        if (peer.sawReport || peer.sawError)
            break;
    }
    std::lock_guard<std::mutex> lock(peer.mutex);
    peer.done = true;
    peer.cv.notify_all();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string connect, benchmark_id, trace_dir, run_id;
    int producers = 1;
    std::size_t batch = 256;
    long long rate = 0; // records/sec aggregate; 0 = unthrottled
    bool check = false, quiet = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--connect") {
            const char *v = value("--connect");
            if (!v)
                return usage();
            connect = v;
        } else if (arg == "--benchmark") {
            const char *v = value("--benchmark");
            if (!v)
                return usage();
            benchmark_id = v;
        } else if (arg == "--trace-dir") {
            const char *v = value("--trace-dir");
            if (!v)
                return usage();
            trace_dir = v;
        } else if (arg == "--run-id") {
            const char *v = value("--run-id");
            if (!v)
                return usage();
            run_id = v;
        } else if (arg == "--producers" || arg == "--batch" ||
                   arg == "--rate") {
            const char *v = value(arg.c_str());
            if (!v)
                return usage();
            long long parsed = 0;
            try {
                std::size_t used = 0;
                parsed = std::stoll(v, &used);
                if (used != std::strlen(v))
                    throw std::invalid_argument(v);
            } catch (const std::exception &) {
                std::fprintf(stderr, "%s: '%s' is not a number\n",
                             arg.c_str(), v);
                return usage();
            }
            long long cap = arg == "--rate" ? 1'000'000'000 : (1 << 16);
            if (parsed < 1 || parsed > cap) {
                std::fprintf(stderr, "%s: %lld out of range\n",
                             arg.c_str(), parsed);
                return usage();
            }
            if (arg == "--producers")
                producers = static_cast<int>(parsed);
            else if (arg == "--batch")
                batch = static_cast<std::size_t>(parsed);
            else
                rate = parsed;
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage();
        }
    }
    if (connect.empty()) {
        std::fprintf(stderr, "--connect is required\n");
        return usage();
    }
    if (benchmark_id.empty() == trace_dir.empty()) {
        std::fprintf(stderr, "exactly one of --benchmark and "
                             "--trace-dir is required\n");
        return usage();
    }

    serve::Address address;
    std::string error;
    if (!serve::parseAddress(connect, address, &error)) {
        std::fprintf(stderr, "--connect: %s\n", error.c_str());
        return usage();
    }

    // The trace to stream.  A benchmark run regenerates the monitored
    // trace in-process (the simulation is deterministic); a trace dir
    // replays bytes recorded by `dcatch run --trace-dir`.
    std::unique_ptr<sim::Simulation> sim;
    trace::TraceStore loaded;
    const trace::TraceStore *store = nullptr;
    try {
        if (!benchmark_id.empty()) {
            const apps::Benchmark &bench = apps::benchmark(benchmark_id);
            sim = std::make_unique<sim::Simulation>(bench.config);
            bench.build(*sim);
            sim->run();
            store = &sim->tracer().store();
            if (run_id.empty())
                run_id = bench.id;
        } else {
            loaded.loadFromDirectory(trace_dir);
            store = &loaded;
            if (run_id.empty())
                run_id = trace_dir;
        }
    } catch (const std::exception &err) {
        std::fprintf(stderr, "dcatch_feed: %s\n", err.what());
        return 1;
    }

    std::vector<trace::Record> merged = store->mergedRecords();

    std::vector<std::unique_ptr<Peer>> peers;
    for (int p = 0; p < producers; ++p) {
        auto peer = std::make_unique<Peer>();
        peer->fd = serve::connectTo(address, &error);
        if (peer->fd < 0) {
            std::fprintf(stderr, "dcatch_feed: %s: %s\n",
                         connect.c_str(), error.c_str());
            return 1;
        }
        peers.push_back(std::move(peer));
    }
    for (auto &peer : peers)
        peer->reader = std::thread(readerLoop, std::ref(*peer));

    bool send_ok = true;
    // Every producer announces itself; producer 0 carries the
    // metadata (once is enough — the session is shared).
    for (int p = 0; p < producers && send_ok; ++p)
        send_ok = sendAll(peers[static_cast<std::size_t>(p)]->fd,
                          serve::encodeFrame(
                              serve::FrameType::Hello,
                              serve::encodeHello({run_id, producers})));
    if (send_ok) {
        std::string meta;
        for (const auto &[id, queue] : store->queues())
            meta += serve::encodeFrame(
                serve::FrameType::QueueMeta,
                strprintf("%d %d %s", queue.node,
                          queue.singleConsumer ? 1 : 0, id.c_str()));
        for (const auto &[tid, thread] : store->threads())
            meta += serve::encodeFrame(
                serve::FrameType::ThreadMeta,
                strprintf("%d %d %d %s", thread.thread, thread.node,
                          thread.handlerThread ? 1 : 0,
                          thread.name.c_str()));
        send_ok = sendAll(peers[0]->fd, meta);
    }

    // Partition round-robin, then frame each producer's share into
    // --batch record chunks.
    std::vector<std::vector<std::string>> chunks(
        static_cast<std::size_t>(producers));
    {
        std::vector<std::string> current(
            static_cast<std::size_t>(producers));
        std::vector<std::size_t> lines(
            static_cast<std::size_t>(producers), 0);
        for (std::size_t i = 0; i < merged.size(); ++i) {
            std::size_t p = i % static_cast<std::size_t>(producers);
            merged[i].appendLine(store->symbols(), current[p]);
            current[p] += '\n';
            if (++lines[p] >= batch) {
                chunks[p].push_back(std::move(current[p]));
                current[p].clear();
                lines[p] = 0;
            }
        }
        for (std::size_t p = 0; p < current.size(); ++p)
            if (!current[p].empty())
                chunks[p].push_back(std::move(current[p]));
    }

    // Rotate between producers so their frames interleave on the
    // daemon side — the watermark merge is what's being exercised.
    // With --rate, pace by sleeping until the aggregate record count
    // falls back under rate * elapsed.
    std::size_t max_chunks = 0;
    for (const auto &list : chunks)
        max_chunks = std::max(max_chunks, list.size());
    std::size_t records_sent = 0;
    auto start = std::chrono::steady_clock::now();
    for (std::size_t round = 0; round < max_chunks && send_ok; ++round)
        for (std::size_t p = 0; p < chunks.size() && send_ok; ++p) {
            if (round >= chunks[p].size())
                continue;
            if (rate > 0) {
                auto due = start + std::chrono::duration_cast<
                                       std::chrono::steady_clock::
                                           duration>(
                                       std::chrono::duration<double>(
                                           double(records_sent) /
                                           double(rate)));
                std::this_thread::sleep_until(due);
            }
            const std::string &chunk = chunks[p][round];
            send_ok = sendAll(
                peers[p]->fd,
                serve::encodeFrame(serve::FrameType::Records, chunk));
            records_sent += static_cast<std::size_t>(
                std::count(chunk.begin(), chunk.end(), '\n'));
        }
    for (auto &peer : peers)
        if (send_ok)
            send_ok = sendAll(
                peer->fd,
                serve::encodeFrame(serve::FrameType::End, ""));
    if (!send_ok)
        std::fprintf(stderr, "dcatch_feed: connection lost while "
                             "sending\n");

    for (auto &peer : peers) {
        std::unique_lock<std::mutex> lock(peer->mutex);
        peer->cv.wait(lock, [&] { return peer->done; });
        lock.unlock();
        peer->reader.join();
        ::shutdown(peer->fd, SHUT_RDWR);
        ::close(peer->fd);
    }

    int status = 0;
    std::size_t candidates = 0;
    for (std::size_t p = 0; p < peers.size(); ++p) {
        Peer &peer = *peers[p];
        candidates += peer.candidates;
        if (peer.sawError) {
            std::fprintf(stderr,
                         "dcatch_feed: producer %zu got Error: %s\n", p,
                         peer.error.c_str());
            status = 2;
        } else if (!peer.sawReport) {
            std::fprintf(stderr, "dcatch_feed: producer %zu closed "
                                 "without a Report\n", p);
            status = 2;
        } else if (peer.report != peers[0]->report) {
            std::fprintf(stderr, "dcatch_feed: producer %zu got a "
                                 "different Report than producer 0\n",
                         p);
            status = 2;
        }
    }

    if (status == 0 && check) {
        hb::HbGraph graph(*store, hb::HbGraph::Options());
        if (graph.oom()) {
            std::fprintf(stderr, "dcatch_feed: local batch analysis "
                                 "ran out of memory\n");
            return 1;
        }
        detect::RaceDetector detector;
        std::string expected = serve::canonicalReport(
            run_id, merged.size(), detector.detect(graph));
        if (peers[0]->report != expected) {
            std::fprintf(stderr,
                         "dcatch_feed: report MISMATCH\n"
                         "--- daemon ---\n%s--- batch ---\n%s",
                         peers[0]->report.c_str(), expected.c_str());
            status = 2;
        } else if (!quiet) {
            std::printf("report matches the batch pipeline "
                        "byte-for-byte\n");
        }
    }

    if (!quiet) {
        std::printf("streamed %zu records over %d producer%s: %zu "
                    "online candidate frames, report %s\n",
                    merged.size(), producers,
                    producers == 1 ? "" : "s", candidates,
                    status == 0 ? "received" : "FAILED");
        if (status == 0)
            std::fputs(peers[0]->report.c_str(), stdout);
    }
    return status;
}
