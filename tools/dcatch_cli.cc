/**
 * @file
 * The `dcatch` command-line tool: run the detection pipeline on a
 * registered benchmark and print (or export) the bug report — the
 * interface a user of the released system drives.
 *
 *   dcatch list
 *   dcatch run <benchmark-id> [--no-prune] [--no-loop] [--trigger]
 *              [--full-trace] [--seed N] [--random] [--json]
 *              [--trace-dir DIR] [--quiet]
 *
 * Exit status: 0 on success, 1 on usage errors, 2 when the analysis
 * ran out of memory.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/util.hh"
#include "dcatch/pipeline.hh"
#include "dcatch/report_printer.hh"

namespace {

using namespace dcatch;

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  dcatch list\n"
        "  dcatch run <benchmark-id> [options]\n"
        "\noptions:\n"
        "  --no-prune    skip static pruning (section 4)\n"
        "  --no-loop     skip loop/pull synchronization analysis\n"
        "  --trigger     trigger and classify every report (section 5)\n"
        "  --full-trace  unselective memory tracing (Table 8 mode)\n"
        "  --random      use the seeded-random scheduling policy\n"
        "  --seed N      scheduling seed (with --random)\n"
        "  --json        emit the report as JSON\n"
        "  --trace-dir D also write per-thread trace files into D\n"
        "  --quiet       suppress the metrics footer\n");
    return 1;
}

int
cmdList()
{
    std::printf("%-10s %-18s %s\n", "id", "system", "workload");
    for (const apps::Benchmark &b : apps::allBenchmarks())
        std::printf("%-10s %-18s %s\n", b.id.c_str(), b.system.c_str(),
                    b.workload.c_str());
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    std::string id = argv[0];

    PipelineOptions options;
    bool json = false, quiet = false;
    std::string trace_dir;
    sim::SimConfig config;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--no-prune") {
            options.staticPruning = false;
        } else if (arg == "--no-loop") {
            options.loopAnalysis = false;
        } else if (arg == "--trigger") {
            options.runTrigger = true;
        } else if (arg == "--full-trace") {
            options.fullMemoryTrace = true;
        } else if (arg == "--random") {
            config.policy = sim::PolicyKind::Random;
        } else if (arg == "--seed" && i + 1 < argc) {
            config.seed = std::stoull(argv[++i]);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--trace-dir" && i + 1 < argc) {
            trace_dir = argv[++i];
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage();
        }
    }

    apps::Benchmark bench;
    try {
        bench = apps::benchmark(id);
    } catch (const std::exception &) {
        std::fprintf(stderr, "unknown benchmark '%s' (try: dcatch list)\n",
                     id.c_str());
        return 1;
    }
    bench.config = config;

    PipelineResult result = runPipeline(bench, options);
    if (!trace_dir.empty())
        result.monitoredTrace.writeToDirectory(trace_dir);

    if (json) {
        std::printf("%s\n", reportToJson(bench, result).dump().c_str());
    } else {
        PrintOptions print;
        print.showMetrics = !quiet;
        std::fputs(renderReport(bench, result, print).c_str(), stdout);
    }
    return result.analysisOom ? 2 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "list") == 0)
        return cmdList();
    if (std::strcmp(argv[1], "run") == 0)
        return cmdRun(argc - 2, argv + 2);
    return usage();
}
