/**
 * @file
 * The `dcatch` command-line tool: run the detection pipeline on a
 * registered benchmark and print (or export) the bug report — the
 * interface a user of the released system drives.
 *
 *   dcatch list
 *   dcatch run <benchmark-id> [--no-prune] [--no-loop] [--trigger]
 *              [--full-trace] [--seed N] [--random] [--no-overlap]
 *              [--json] [--trace-dir DIR] [--record-schedule DIR]
 *              [--quiet]
 *   dcatch replay <bundle> [--json] [--quiet]
 *   dcatch explore <benchmark-id> [--policies LIST] [--runs N]
 *              [--jobs N] [--seed-base N] [--out DIR] [--no-shrink]
 *              [--no-crossval] [--json] [--quiet]
 *   dcatch serve --listen ADDR [--jobs N] [--window E] [--retain K]
 *              [--batch N] [--quiet]
 *   dcatch --version
 *   dcatch --help            (and `dcatch <command> --help`)
 *
 * Unknown subcommands and flags are usage errors (nonzero exit), not
 * silently ignored; --help prints the same text to stdout and exits
 * 0.  Exit status: 0 on success (for `replay`: the replay was
 * identical; for `explore`: every failing run was replay-verified and
 * cross-validated; for `serve`: clean shutdown on SIGTERM/SIGINT), 1
 * on usage or load errors, 2 when the analysis ran out of memory, a
 * replay diverged / mismatched, or an explorer failure escaped
 * verification.
 */

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/util.hh"
#include "dcatch/pipeline.hh"
#include "dcatch/report_printer.hh"
#include "explore/explorer.hh"
#include "replay/bundle.hh"
#include "replay/driver.hh"
#include "serve/server.hh"

#ifndef DCATCH_VERSION
#define DCATCH_VERSION "unknown"
#endif

namespace {

using namespace dcatch;

const char *const kUsageHead =
    "usage:\n"
    "  dcatch list                      registered benchmarks\n"
    "  dcatch run <benchmark-id>        batch detection pipeline\n"
    "  dcatch replay <bundle>           re-execute a repro bundle\n"
    "  dcatch explore <benchmark-id>    adversarial schedule search\n"
    "  dcatch serve --listen ADDR       online detection daemon\n"
    "  dcatch --version                 print the version\n"
    "  dcatch --help                    this text; every command\n"
    "                                   also takes --help\n";

const char *const kRunHelp =
    "run options:\n"
    "  --no-prune    skip static pruning (section 4)\n"
    "  --no-loop     skip loop/pull synchronization analysis\n"
    "  --trigger     trigger and classify every report (section 5)\n"
    "  --full-trace  unselective memory tracing (Table 8 mode)\n"
    "  --random      use the seeded-random scheduling policy\n"
    "  --seed N      scheduling seed (with --random)\n"
    "  --jobs N      analysis/trigger worker threads (N >= 1;\n"
    "                default: hardware concurrency; output is\n"
    "                byte-identical for every N)\n"
    "  --engine E    HB reachability engine: auto, chain, dense,\n"
    "                or vc (default: auto — picks chain or dense\n"
    "                per trace; see docs/hb_auto_engine.md)\n"
    "  --no-overlap  run detection strictly after HB closure\n"
    "                instead of overlapping the two (A/B knob;\n"
    "                reports are byte-identical either way)\n"
    "  --json        emit the report as JSON\n"
    "  --trace-dir D also write per-thread trace files into D\n"
    "  --record-schedule D\n"
    "                record scheduler decisions; write repro\n"
    "                bundles under D (replay with dcatch replay)\n"
    "  --quiet       suppress the metrics footer\n";

const char *const kReplayHelp =
    "replay options:\n"
    "  --json        emit the outcome as JSON\n"
    "  --quiet       suppress the progress lines\n";

const char *const kExploreHelp =
    "explore options:\n"
    "  --policies L  comma-separated adversarial policies:\n"
    "                random, pct:<d>, delay:<k>\n"
    "                (default: random,pct:3,delay:2)\n"
    "  --runs N      runs per policy (default 10)\n"
    "  --jobs N      campaign worker threads (N >= 1)\n"
    "  --seed-base N first seed of the campaign (default 1)\n"
    "  --out DIR     write failing-run repro bundles under DIR\n"
    "  --no-shrink   skip schedule minimization\n"
    "  --no-crossval skip the detector cross-validation stage\n"
    "  --json        emit the campaign summary as JSON\n"
    "  --quiet       suppress the per-run table\n";

const char *const kServeHelp =
    "serve options:\n"
    "  --listen A    required; unix:/path/to.sock or tcp:HOST:PORT\n"
    "                (port 0 picks a free port, printed on startup)\n"
    "  --jobs N      session shard worker threads (N >= 1;\n"
    "                default 1; reports are byte-identical to the\n"
    "                batch pipeline for every N)\n"
    "  --window E    records per online-detection epoch (E >= 1;\n"
    "                default 4096); closing an epoch emits new\n"
    "                candidates and evicts aged accesses\n"
    "  --retain K    closed epochs kept in the online index (K >= 1;\n"
    "                default 2); bounds resident memory per session\n"
    "  --batch N     records appended to the HB graph per ingest\n"
    "                batch (N >= 1; default 256); larger batches\n"
    "                amortise watermark release and graph appends\n"
    "  --quiet       suppress the startup line and the exit summary\n";

/** Print the full help text to @p to (stderr on usage errors, stdout
 *  for --help). */
void
printFullHelp(std::FILE *to)
{
    std::fprintf(to, "%s\n%s\n%s\n%s\n%s", kUsageHead, kRunHelp,
                 kReplayHelp, kExploreHelp, kServeHelp);
}

int
usage()
{
    printFullHelp(stderr);
    return 1;
}

/** True when any argument asks for help.  Each cmd* scans its whole
 *  argv so `dcatch run CA-1011 --help` works, not just `dcatch run
 *  --help`. */
bool
wantsHelp(int argc, char **argv)
{
    for (int i = 0; i < argc; ++i)
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0)
            return true;
    return false;
}

/** `dcatch <command> --help`: the shared head plus that command's
 *  option table, on stdout, exit 0. */
int
commandHelp(const char *command, const char *options)
{
    std::printf("usage: dcatch %s\n\n%s", command, options);
    return 0;
}

int
cmdList(int argc, char **argv)
{
    if (argc > 0) {
        std::fprintf(stderr, "dcatch list takes no arguments "
                             "(got '%s')\n", argv[0]);
        return usage();
    }
    std::printf("%-10s %-18s %s\n", "id", "system", "workload");
    for (const apps::Benchmark &b : apps::allBenchmarks())
        std::printf("%-10s %-18s %s\n", b.id.c_str(), b.system.c_str(),
                    b.workload.c_str());
    return 0;
}

int
cmdRun(int argc, char **argv)
{
    if (wantsHelp(argc, argv))
        return commandHelp("run <benchmark-id> [options]", kRunHelp);
    if (argc < 1)
        return usage();
    std::string id = argv[0];

    PipelineOptions options;
    bool json = false, quiet = false;
    std::string trace_dir;
    sim::SimConfig config;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--no-prune") {
            options.staticPruning = false;
        } else if (arg == "--no-loop") {
            options.loopAnalysis = false;
        } else if (arg == "--trigger") {
            options.runTrigger = true;
        } else if (arg == "--full-trace") {
            options.fullMemoryTrace = true;
        } else if (arg == "--random") {
            config.policy = sim::PolicyKind::Random;
        } else if (arg == "--no-overlap") {
            options.overlapDetection = false;
        } else if (arg == "--seed") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--seed requires a value\n");
                return usage();
            }
            try {
                std::size_t used = 0;
                std::string value = argv[++i];
                config.seed = std::stoull(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
            } catch (const std::exception &) {
                std::fprintf(stderr, "--seed: '%s' is not a number\n",
                             argv[i]);
                return usage();
            }
        } else if (arg == "--jobs") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--jobs requires a value\n");
                return usage();
            }
            // Strict: a decimal integer >= 1, nothing else.  0 would
            // silently mean "hardware concurrency" at the library
            // level; the CLI rejects it so a typo can't change the
            // worker count unnoticed.
            try {
                std::size_t used = 0;
                std::string value = argv[++i];
                long long parsed = std::stoll(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
                if (parsed < 1) {
                    std::fprintf(stderr,
                                 "--jobs: %lld is not a positive "
                                 "worker count\n", parsed);
                    return usage();
                }
                options.jobs = static_cast<int>(
                    std::min<long long>(parsed, 1 << 16));
            } catch (const std::exception &) {
                std::fprintf(stderr, "--jobs: '%s' is not a number\n",
                             argv[i]);
                return usage();
            }
        } else if (arg == "--engine") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--engine requires a value\n");
                return usage();
            }
            // Strict: exactly one of the known engine names.  A typo
            // must not silently fall back to the default selector.
            std::string value = argv[++i];
            if (value == "auto") {
                options.hbEngine = hb::HbGraph::Engine::Auto;
            } else if (value == "chain") {
                options.hbEngine = hb::HbGraph::Engine::ChainFrontier;
            } else if (value == "dense") {
                options.hbEngine = hb::HbGraph::Engine::Dense;
            } else if (value == "vc") {
                options.hbEngine = hb::HbGraph::Engine::VectorClock;
            } else {
                std::fprintf(stderr,
                             "--engine: '%s' is not an engine "
                             "(expected auto, chain, dense, or vc)\n",
                             value.c_str());
                return usage();
            }
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--trace-dir") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--trace-dir requires a value\n");
                return usage();
            }
            trace_dir = argv[++i];
        } else if (arg == "--record-schedule") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--record-schedule requires a value\n");
                return usage();
            }
            options.reproDir = argv[++i];
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage();
        }
    }

    apps::Benchmark bench;
    try {
        bench = apps::benchmark(id);
    } catch (const std::exception &) {
        std::fprintf(stderr, "unknown benchmark '%s' (try: dcatch list)\n",
                     id.c_str());
        return 1;
    }
    bench.config = config;

    PipelineResult result = runPipeline(bench, options);
    if (!trace_dir.empty())
        result.monitoredTrace.writeToDirectory(trace_dir);

    if (json) {
        std::printf("%s\n", reportToJson(bench, result).dump().c_str());
    } else {
        PrintOptions print;
        print.showMetrics = !quiet;
        std::fputs(renderReport(bench, result, print).c_str(), stdout);
    }
    return result.analysisOom ? 2 : 0;
}

Json
replayOutcomeJson(const replay::ReplayOutcome &outcome)
{
    Json root = Json::object();
    root.set("benchmark", Json::str(outcome.header.benchmarkId))
        .set("label", Json::str(outcome.header.label))
        .set("identical", Json::boolean(outcome.identical()))
        .set("diverged", Json::boolean(outcome.diverged))
        .set("checksumMatch", Json::boolean(outcome.checksumMatch))
        .set("failureKindsMatch",
             Json::boolean(outcome.failureKindsMatch))
        .set("decisionsUsed",
             Json::num(static_cast<std::int64_t>(outcome.decisionsUsed)))
        .set("decisionsRecorded",
             Json::num(static_cast<std::int64_t>(
                 outcome.decisionsRecorded)))
        .set("traceChecksum",
             Json::str(strprintf(
                 "%016llx",
                 static_cast<unsigned long long>(outcome.traceChecksum))))
        .set("run", Json::str(outcome.run.summary()));
    if (outcome.diverged)
        root.set("divergence",
                 Json::str(outcome.divergence.describe()));
    return root;
}

int
cmdReplay(int argc, char **argv)
{
    if (wantsHelp(argc, argv))
        return commandHelp("replay <bundle> [options]", kReplayHelp);
    if (argc < 1)
        return usage();
    std::string bundle = argv[0];
    bool json = false, quiet = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage();
        }
    }

    replay::ReplayOutcome outcome;
    try {
        outcome = replay::replayBundle(bundle);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "dcatch replay: %s\n", error.what());
        return 1;
    }

    if (json) {
        std::printf("%s\n", replayOutcomeJson(outcome).dump().c_str());
    } else if (!quiet) {
        std::printf("replaying %s (%s), %llu recorded decisions\n",
                    outcome.header.benchmarkId.c_str(),
                    outcome.header.label.c_str(),
                    static_cast<unsigned long long>(
                        outcome.decisionsRecorded));
        std::printf("run: %s\n", outcome.run.summary().c_str());
        if (outcome.diverged)
            std::printf("DIVERGED:\n%s\n",
                        outcome.divergence.describe().c_str());
        else
            std::printf("trace checksum %016llx (%s), failure kinds "
                        "%s\n",
                        static_cast<unsigned long long>(
                            outcome.traceChecksum),
                        outcome.checksumMatch ? "match" : "MISMATCH",
                        outcome.failureKindsMatch ? "match"
                                                  : "MISMATCH");
        std::printf("replay %s\n", outcome.identical()
                                       ? "identical"
                                       : "NOT identical");
    }
    return outcome.identical() ? 0 : 2;
}

int
cmdExplore(int argc, char **argv)
{
    if (wantsHelp(argc, argv))
        return commandHelp("explore <benchmark-id> [options]",
                           kExploreHelp);
    if (argc < 1)
        return usage();
    std::string id = argv[0];

    std::string policy_list = "random,pct:3,delay:2";
    explore::ExploreOptions options;
    options.jobs = 0; // hardware concurrency
    bool json = false, quiet = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--policies") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--policies requires a value\n");
                return usage();
            }
            policy_list = argv[++i];
        } else if (arg == "--runs" || arg == "--jobs" ||
                   arg == "--seed-base") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n",
                             arg.c_str());
                return usage();
            }
            // Strict: a decimal integer, nothing else; --runs and
            // --jobs additionally demand >= 1.
            long long parsed = 0;
            try {
                std::size_t used = 0;
                std::string value = argv[++i];
                parsed = std::stoll(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
            } catch (const std::exception &) {
                std::fprintf(stderr, "%s: '%s' is not a number\n",
                             arg.c_str(), argv[i]);
                return usage();
            }
            if (arg == "--seed-base") {
                if (parsed < 0) {
                    std::fprintf(stderr,
                                 "--seed-base: %lld is negative\n",
                                 parsed);
                    return usage();
                }
                options.seedBase =
                    static_cast<std::uint64_t>(parsed);
            } else if (parsed < 1) {
                std::fprintf(stderr,
                             "%s: %lld is not a positive count\n",
                             arg.c_str(), parsed);
                return usage();
            } else if (arg == "--runs") {
                options.runsPerPolicy = static_cast<int>(
                    std::min<long long>(parsed, 1 << 20));
            } else {
                options.jobs = static_cast<int>(
                    std::min<long long>(parsed, 1 << 16));
            }
        } else if (arg == "--out") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--out requires a value\n");
                return usage();
            }
            options.bundleDir = argv[++i];
        } else if (arg == "--no-shrink") {
            options.shrink = false;
        } else if (arg == "--no-crossval") {
            options.crossValidate = false;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage();
        }
    }

    std::vector<explore::PolicySpec> policies;
    try {
        policies = explore::parsePolicyList(policy_list);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "--policies: %s\n", error.what());
        return usage();
    }

    apps::Benchmark bench;
    try {
        bench = apps::benchmark(id);
    } catch (const std::exception &) {
        std::fprintf(stderr, "unknown benchmark '%s' (try: dcatch list)\n",
                     id.c_str());
        return 1;
    }

    explore::CampaignResult result =
        explore::explore(bench, policies, options);

    if (json) {
        std::printf("%s\n", result.toJson().dump().c_str());
    } else {
        std::printf("explored %s: %zu policies x %d runs, monitored "
                    "horizon %llu steps\n",
                    bench.id.c_str(), policies.size(),
                    options.runsPerPolicy,
                    (unsigned long long)result.monitoredSteps);
        if (!quiet) {
            for (const explore::RunRecord &rec : result.runs) {
                if (!rec.failed)
                    continue;
                std::printf(
                    "  FAIL %-9s seed %-6llu %s  prefix %llu/%llu  "
                    "%s%s\n",
                    rec.policy.c_str(), (unsigned long long)rec.seed,
                    rec.signature.c_str(),
                    (unsigned long long)rec.shrunkPrefix,
                    (unsigned long long)rec.decisions,
                    rec.crossValidated ? "matched " : "UNMATCHED ",
                    rec.crossValidated ? rec.matchedPair.c_str() : "");
            }
        }
        for (const explore::PolicyCoverage &cov : result.coverage)
            std::printf("  %-9s %d/%d failing, %zu distinct "
                        "signature%s, %llu branch points (%llu "
                        "diverging)\n",
                        cov.policy.c_str(), cov.failures, cov.runs,
                        cov.signatures.size(),
                        cov.signatures.size() == 1 ? "" : "s",
                        (unsigned long long)cov.branchPoints,
                        (unsigned long long)cov.divergentChoices);
        std::printf("%d failing run%s: bundles %s, minimized %s, "
                    "cross-validation %s\n",
                    result.failures(),
                    result.failures() == 1 ? "" : "s",
                    result.allBundlesVerified() ? "verified"
                                                : "UNVERIFIED",
                    result.allMinimizedVerified() ? "verified"
                                                  : "UNVERIFIED",
                    !options.crossValidate ? "skipped"
                    : result.allFailuresCrossValidated()
                        ? "complete"
                        : "INCOMPLETE");
    }
    bool ok = result.allBundlesVerified() &&
              result.allMinimizedVerified() &&
              (!options.crossValidate ||
               result.allFailuresCrossValidated());
    return ok ? 0 : 2;
}

// SIGTERM/SIGINT land here; only an atomic store is allowed.
serve::Server *g_server = nullptr;

extern "C" void
serveSignalHandler(int)
{
    if (g_server)
        g_server->requestStop();
}

int
cmdServe(int argc, char **argv)
{
    if (wantsHelp(argc, argv))
        return commandHelp("serve --listen ADDR [options]", kServeHelp);

    std::string listen;
    serve::ServeOptions options;
    bool quiet = false;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--listen") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--listen requires a value\n");
                return usage();
            }
            listen = argv[++i];
        } else if (arg == "--jobs" || arg == "--window" ||
                   arg == "--retain" || arg == "--batch") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n",
                             arg.c_str());
                return usage();
            }
            // Strict: a decimal integer >= 1, nothing else (same
            // contract as the other subcommands' --jobs).
            long long parsed = 0;
            try {
                std::size_t used = 0;
                std::string value = argv[++i];
                parsed = std::stoll(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
            } catch (const std::exception &) {
                std::fprintf(stderr, "%s: '%s' is not a number\n",
                             arg.c_str(), argv[i]);
                return usage();
            }
            if (parsed < 1) {
                std::fprintf(stderr,
                             "%s: %lld is not a positive count\n",
                             arg.c_str(), parsed);
                return usage();
            }
            if (arg == "--jobs")
                options.jobs = static_cast<int>(
                    std::min<long long>(parsed, 1 << 16));
            else if (arg == "--window")
                options.window = static_cast<std::size_t>(
                    std::min<long long>(parsed, 1ll << 30));
            else if (arg == "--retain")
                options.retainEpochs = static_cast<int>(
                    std::min<long long>(parsed, 1 << 20));
            else
                options.batch = static_cast<std::size_t>(
                    std::min<long long>(parsed, 1ll << 20));
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return usage();
        }
    }
    if (listen.empty()) {
        std::fprintf(stderr, "dcatch serve: --listen is required\n");
        return usage();
    }
    serve::Address address;
    std::string error;
    if (!serve::parseAddress(listen, address, &error)) {
        std::fprintf(stderr, "--listen: %s\n", error.c_str());
        return usage();
    }

    serve::ServeCore core(options);
    try {
        serve::Server server(core, address);
        g_server = &server;
        std::signal(SIGTERM, serveSignalHandler);
        std::signal(SIGINT, serveSignalHandler);
        if (!quiet) {
            std::printf("dcatchd listening on %s (jobs=%d window=%zu "
                        "retain=%d batch=%zu)\n",
                        server.boundAddress().c_str(), options.jobs,
                        options.window, options.retainEpochs,
                        options.batch);
            std::fflush(stdout);
        }
        server.run();
        g_server = nullptr;
    } catch (const std::exception &err) {
        g_server = nullptr;
        std::fprintf(stderr, "dcatch serve: %s\n", err.what());
        return 1;
    }

    core.drain();
    core.shutdown();
    if (!quiet) {
        serve::ServeStats stats = core.stats();
        std::printf("dcatchd: %zu connections, %zu records across %zu "
                    "sessions (%zu finished, %zu quarantined), %zu "
                    "epochs closed, %zu online candidates\n",
                    stats.connections, stats.recordsIngested,
                    stats.sessionsOpened, stats.sessionsFinished,
                    stats.sessionsQuarantined, stats.epochsClosed,
                    stats.onlineCandidates);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "--version") == 0 ||
        std::strcmp(argv[1], "version") == 0) {
        std::printf("dcatch %s\n", DCATCH_VERSION);
        return 0;
    }
    if (std::strcmp(argv[1], "--help") == 0 ||
        std::strcmp(argv[1], "-h") == 0 ||
        std::strcmp(argv[1], "help") == 0) {
        printFullHelp(stdout);
        return 0;
    }
    if (std::strcmp(argv[1], "list") == 0)
        return cmdList(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "run") == 0)
        return cmdRun(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "replay") == 0)
        return cmdReplay(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "explore") == 0)
        return cmdExplore(argc - 2, argv + 2);
    if (std::strcmp(argv[1], "serve") == 0)
        return cmdServe(argc - 2, argv + 2);
    std::fprintf(stderr, "unknown command: %s\n", argv[1]);
    return usage();
}
