/**
 * @file
 * Using the trigger module as a stand-alone testing framework
 * (paper section 9): given a suspected pair of operations, enforce
 * both orders and observe the outcome — no detection pipeline needed.
 *
 * The target is HB-4729: the server-shutdown handler's znode delete
 * racing the enable-table handler's read-then-delete.  Forcing the
 * shutdown delete between the enable handler's getData and delete
 * crashes the HMaster; the opposite order is safe.
 */

#include <cstdio>

#include "apps/hbase/mini_hbase.hh"
#include "trigger/controller.hh"
#include "runtime/sim.hh"

using namespace dcatch;

namespace {

/** Run the workload with "first before second" enforced. */
sim::RunResult
runOrdered(const trigger::RequestPoint &first,
           const trigger::RequestPoint &second, bool *enforced)
{
    sim::Simulation simulation;
    trigger::OrderController controller(first, second);
    simulation.setControlHook(&controller);
    apps::hb::install(simulation, apps::hb::Workload::EnableExpire4729);
    sim::RunResult result = simulation.run();
    *enforced = controller.firstReached() &&
                (controller.secondReached() || controller.secondArrived());
    return result;
}

} // namespace

int
main()
{
    trigger::RequestPoint enable_delete{apps::hb::kEnableRemove, "", 0,
                                        ""};
    trigger::RequestPoint shutdown_delete{apps::hb::kShutRemove, "", 0,
                                          ""};

    std::printf("order 1: enable's delete BEFORE shutdown's delete\n");
    bool enforced = false;
    sim::RunResult safe =
        runOrdered(enable_delete, shutdown_delete, &enforced);
    std::printf("  enforced=%s -> %s\n", enforced ? "yes" : "no",
                safe.summary().c_str());

    std::printf("order 2: shutdown's delete BEFORE enable's delete\n");
    sim::RunResult crash =
        runOrdered(shutdown_delete, enable_delete, &enforced);
    std::printf("  enforced=%s -> %s\n", enforced ? "yes" : "no",
                crash.summary().c_str());

    if (crash.failed() && !safe.failed())
        std::printf("\nHB-4729 reproduced: the read-then-delete in the "
                    "enable handler is not atomic against the shutdown "
                    "handler's delete; the master aborts on NoNode.\n");
    else
        std::printf("\nunexpected outcome — check the workload.\n");
    return crash.failed() && !safe.failed() ? 0 : 1;
}
