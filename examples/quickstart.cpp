/**
 * @file
 * Quickstart: build a two-node system on the simulation substrate,
 * run it once (correctly), and let DCatch report the distributed
 * concurrency bug it is exposed to — all in ~60 lines of user code.
 *
 *   $ ./examples/quickstart
 *
 * The toy system: a "server" node owns a config value; a "worker"
 * node RPCs in to read it while a client-triggered event handler
 * rewrites it.  Nothing orders the two accesses, so DCatch flags
 * them as a DCbug candidate even though the monitored run was fine.
 */

#include <cstdio>
#include <memory>

#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "runtime/shared.hh"
#include "runtime/sim.hh"

using namespace dcatch;

int
main()
{
    sim::Simulation simulation;

    sim::Node &server = simulation.addNode("server");
    sim::Node &worker = simulation.addNode("worker");

    auto config =
        std::make_shared<sim::SharedVar<std::string>>(server, "config",
                                                      "v1");

    // RPC: workers fetch the current config.
    server.registerRpc("getConfig",
                       [config](sim::ThreadContext &ctx,
                                const sim::Payload &) {
                           std::string v =
                               config->read(ctx, "server.getConfig/read");
                           return sim::Payload{}.set("config", v);
                       });

    // Event handler: reconfiguration rewrites the value.
    sim::EventQueue &events = server.addEventQueue("admin", 1);
    events.on("reconfigure",
              [config](sim::ThreadContext &ctx, const sim::Event &) {
                  config->write(ctx, "server.reconfigure/write", "v2");
              });

    // Drivers: the worker polls; an admin thread reconfigures.
    simulation.spawn(nullptr, worker, "worker.main",
                     [](sim::ThreadContext &ctx) {
                         ctx.pause(5);
                         sim::Payload reply = ctx.rpcCall(
                             "worker/call.getConfig", "server",
                             "getConfig", sim::Payload{});
                         std::printf("worker saw config=%s\n",
                                     reply.get("config").c_str());
                     });
    simulation.spawn(nullptr, server, "server.admin",
                     [](sim::ThreadContext &ctx) {
                         ctx.pause(12);
                         ctx.node().queue("admin").enqueue(
                             ctx, "server.admin/enq", "reconfigure");
                         ctx.pause(8);
                     });

    // 1. Monitored (correct) run.
    sim::RunResult run = simulation.run();
    std::printf("monitored run: %s\n", run.summary().c_str());

    // 2. Trace analysis: HB graph + race detection.
    hb::HbGraph graph(simulation.tracer().store());
    detect::RaceDetector detector;
    std::vector<detect::Candidate> candidates = detector.detect(graph);

    std::printf("\nDCatch found %zu DCbug candidate(s):\n",
                candidates.size());
    for (const detect::Candidate &cand : candidates) {
        std::printf("  %s\n    %s  (%s)\n    %s  (%s)\n",
                    cand.var.c_str(), cand.a.site.c_str(),
                    cand.a.isWrite ? "write" : "read",
                    cand.b.site.c_str(),
                    cand.b.isWrite ? "write" : "read");
    }
    std::printf("\nThe getConfig read and the reconfigure write have no "
                "happens-before path:\na different timing could expose "
                "whichever assumption the code makes.\n");
    return 0;
}
