/**
 * @file
 * Offline trace analysis: DCatch's run-time tracer and its analyses
 * are decoupled by trace files (one per thread, paper section 3.1).
 * This example runs a workload once, writes the trace files to disk,
 * then — as a separate consumer would — loads them back and runs the
 * HB analysis and race detection on the loaded trace.
 *
 *   $ ./examples/offline_analysis [trace-dir]
 */

#include <cstdio>
#include <filesystem>

#include "apps/zookeeper/mini_zk.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "runtime/sim.hh"

using namespace dcatch;

int
main(int argc, char **argv)
{
    std::string dir = argc > 1
                          ? argv[1]
                          : (std::filesystem::temp_directory_path() /
                             "dcatch-zk1270-traces")
                                .string();

    // 1. Online phase: run the monitored workload, persist traces.
    sim::Simulation sim;
    apps::zk::install(sim, apps::zk::Workload::Epoch1270);
    sim::RunResult run = sim.run();
    std::printf("monitored run: %s\n", run.summary().c_str());
    sim.tracer().store().writeToDirectory(dir);
    std::printf("trace files written to %s (%zu records, %zu bytes)\n",
                dir.c_str(), sim.tracer().store().totalRecords(),
                sim.tracer().store().serializedBytes());

    // 2. Offline phase: a separate consumer loads the files.  Queue
    //    metadata travels out of band (a deployment would ship it in a
    //    manifest); here we re-register it from the live store.
    trace::TraceStore loaded;
    for (const auto &[queue_id, meta] : sim.tracer().store().queues())
        loaded.noteQueue(meta);
    for (const auto &[tid, meta] : sim.tracer().store().threads())
        loaded.noteThread(meta);
    std::size_t n = loaded.loadFromDirectory(dir);
    std::printf("offline consumer loaded %zu records\n", n);

    hb::HbGraph graph(loaded);
    detect::RaceDetector detector;
    auto candidates = detector.detect(graph);
    std::printf("offline analysis: %zu DCbug candidates\n",
                candidates.size());
    bool found = false;
    for (const auto &cand : candidates) {
        std::printf("  %s || %s\n", cand.a.site.c_str(),
                    cand.b.site.c_str());
        if (cand.sitePairKey() ==
            detect::sitePair(apps::zk::kLeaderHasZk2,
                             apps::zk::kFollowerInfoPut))
            found = true;
    }
    std::printf("ZK-1270 root cause %s from the loaded trace.\n",
                found ? "recovered" : "NOT recovered");
    return found ? 0 : 1;
}
