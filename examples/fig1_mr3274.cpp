/**
 * @file
 * The paper's running example, end to end: the Hadoop MapReduce hang
 * of Figures 1 and 2 (MR-3274).
 *
 * 1. Run the mini-MapReduce workload correctly and trace it.
 * 2. Trace analysis reports the concurrent conflicting accesses on
 *    jMap: getTask's read vs. register's put vs. unregister's remove.
 * 3. Loop analysis recognises put vs. read as the pull-based
 *    synchronization of Figure 2 (the retry while-loop) and prunes it.
 * 4. Static pruning keeps the remove vs. read pair: the read feeds
 *    the RPC return value, which feeds the NM loop exit — distributed
 *    impact.
 * 5. The trigger module enforces "remove right before read": the NM
 *    container hangs, exactly as Figure 1 describes.
 */

#include <cstdio>

#include "apps/mapreduce/mini_mr.hh"
#include "dcatch/pipeline.hh"

using namespace dcatch;

int
main()
{
    const apps::Benchmark &bench = apps::benchmark("MR-3274");
    std::printf("== %s: %s ==\n", bench.id.c_str(),
                bench.workload.c_str());

    PipelineOptions options;
    options.runTrigger = true;
    PipelineResult result = runPipeline(bench, options);

    std::printf("monitored run: %s\n",
                result.monitoredRun.summary().c_str());
    std::printf("trace: %zu records (%zu bytes)\n",
                result.metrics.traceRecords, result.metrics.traceBytes);
    std::printf("candidates: TA=%zu  TA+SP=%zu  TA+SP+LP=%zu\n",
                result.afterTa.size(), result.afterSp.size(),
                result.afterLp.size());

    std::string bug = detect::sitePair(apps::mr::kGetTaskRead,
                                       apps::mr::kUnregRemove);
    std::string sync = detect::sitePair(apps::mr::kGetTaskRead,
                                        apps::mr::kRegPut);

    for (const auto &cand : result.afterSp)
        if (cand.sitePairKey() == sync)
            std::printf("\nTA+SP still reports put vs. read — the "
                        "Figure 2 retry loop pair...\n");
    bool sync_pruned = true;
    for (const auto &cand : result.afterLp)
        if (cand.sitePairKey() == sync)
            sync_pruned = false;
    std::printf("...loop analysis %s it (Rule-Mpull: the put feeds the "
                "loop exit).\n",
                sync_pruned ? "pruned" : "FAILED to prune");

    for (const auto &report : result.triggered) {
        if (report.candidate.sitePairKey() != bug)
            continue;
        std::printf("\nremove vs. read: classified %s",
                    trigger::triggerClassName(report.cls));
        if (report.cls == trigger::TriggerClass::Harmful) {
            std::printf(" — failing order: %s\n",
                        report.failingOrder.c_str());
            for (const auto &failure : report.failures)
                std::printf("  %s at %s (node %d): %s\n",
                            sim::failureKindName(failure.kind),
                            failure.site.c_str(), failure.node,
                            failure.detail.c_str());
            std::printf("The NM container retried getTask forever — the "
                        "Figure 1 hang, reproduced from a correct "
                        "execution.\n");
        } else {
            std::printf("\n");
        }
    }
    return 0;
}
