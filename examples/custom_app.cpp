/**
 * @file
 * Porting DCatch to your own system (paper section 6, "Portability"):
 * supply (1) the topology and handlers on the substrate, (2) a
 * program model describing dependences onto failure instructions, and
 * (3) optionally known bug pairs — then run the full pipeline.
 *
 * The example system is a tiny primary/backup key-value store: the
 * primary applies a client put and asynchronously replicates to the
 * backup; a flush event handler on the backup writes the store to
 * "disk" and aborts if it observes a torn (half-replicated) batch.
 */

#include <cstdio>
#include <memory>

#include "apps/benchmark.hh"
#include "dcatch/pipeline.hh"
#include "runtime/shared.hh"

using namespace dcatch;

namespace {

constexpr const char *kReplApplyA = "kv.backup.repl/apply.a";
constexpr const char *kReplApplyB = "kv.backup.repl/apply.b";
constexpr const char *kFlushReadA = "kv.backup.flush/read.a";
constexpr const char *kFlushReadB = "kv.backup.flush/read.b";
constexpr const char *kFlushAbort = "kv.backup.flush/abort";

void
buildKvStore(sim::Simulation &simulation)
{
    sim::Node &primary = simulation.addNode("primary");
    sim::Node &backup = simulation.addNode("backup");

    auto a = std::make_shared<sim::SharedVar<int>>(backup, "a", 0);
    auto b = std::make_shared<sim::SharedVar<int>>(backup, "b", 0);

    // Replication handler: applies a two-key batch (not atomic!).
    backup.registerVerb("replicate",
                        [a, b](sim::ThreadContext &ctx,
                               const sim::Payload &msg) {
                            a->write(ctx, kReplApplyA,
                                     static_cast<int>(msg.getInt("a")));
                            ctx.pause(3); // torn-batch window
                            b->write(ctx, kReplApplyB,
                                     static_cast<int>(msg.getInt("b")));
                        });

    // Flush handler: snapshot both keys; a torn batch is fatal.
    sim::EventQueue &flush_q = backup.addEventQueue("flush", 1);
    flush_q.on("flush", [a, b](sim::ThreadContext &ctx,
                               const sim::Event &) {
        int va = a->read(ctx, kFlushReadA);
        int vb = b->read(ctx, kFlushReadB);
        if (va != vb)
            ctx.abortNode(kFlushAbort, "torn replicated batch on flush");
    });

    // Drivers.
    simulation.spawn(nullptr, primary, "primary.main",
                     [](sim::ThreadContext &ctx) {
                         ctx.pause(4);
                         ctx.send("kv.primary/send.repl", "backup",
                                  "replicate",
                                  sim::Payload{}.setInt("a", 7).setInt(
                                      "b", 7));
                     });
    simulation.spawn(nullptr, backup, "backup.flusher",
                     [](sim::ThreadContext &ctx) {
                         ctx.pause(30); // flush normally after the batch
                         ctx.node().queue("flush").enqueue(
                             ctx, "kv.flusher/enq", "flush");
                         ctx.pause(10);
                     });
}

model::ProgramModel
kvModel()
{
    model::ModelBuilder builder;
    builder.fn("backup.replicate")
        .write(kReplApplyA, "var:backup/a")
        .write(kReplApplyB, "var:backup/b");
    builder.fn("backup.flush")
        .read(kFlushReadA, "var:backup/a")
        .read(kFlushReadB, "var:backup/b")
        .failure(kFlushAbort, sim::FailureKind::Abort)
        .dep(kFlushAbort, {kFlushReadA, kFlushReadB});
    return builder.build();
}

} // namespace

int
main()
{
    apps::Benchmark bench;
    bench.id = "KV-torn-batch";
    bench.system = "custom primary/backup store";
    bench.workload = "replicate one batch, flush once";
    bench.build = buildKvStore;
    bench.buildModel = kvModel;
    bench.knownBugPairs = {
        detect::sitePair(kFlushReadB, kReplApplyB)};

    PipelineOptions options;
    options.runTrigger = true;
    PipelineResult result = runPipeline(bench, options);

    std::printf("monitored run: %s\n",
                result.monitoredRun.summary().c_str());
    std::printf("final reports: %zu\n", result.finalReports().size());
    for (const auto &report : result.triggered) {
        std::printf("  [%s] %s || %s\n",
                    trigger::triggerClassName(report.cls),
                    report.candidate.a.site.c_str(),
                    report.candidate.b.site.c_str());
        if (report.cls == trigger::TriggerClass::Harmful)
            for (const auto &failure : report.failures)
                std::printf("      -> %s: %s\n",
                            sim::failureKindName(failure.kind),
                            failure.detail.c_str());
    }

    Classification cls = classify(bench, result);
    std::printf("torn-batch bug %s\n", cls.knownBugDetected
                                           ? "detected and confirmed"
                                           : "NOT confirmed");
    return cls.knownBugDetected ? 0 : 1;
}
