#!/usr/bin/env bash
# Performance-regression gate for the HB reachability engines.
#
# Builds the Release tree, runs the scaling bench (which analyses the
# MR and HBase workloads at growing sizes under both the chain-frontier
# and dense engines), and then verifies BENCH_scaling.json:
#
#   1. the known root-cause bug (MR-3274 / HB-4539 site pairs) is
#      detected at every scale on BOTH engines;
#   2. at the largest trace the chain engine uses >= 5x less
#      reachability memory than the dense baseline;
#   3. the chain engine's graph build+closure is not slower than the
#      dense baseline there.
#
# Exits nonzero on any violation, so CI can run it as a gate.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build-release}"
jobs="${JOBS:-$(nproc)}"

echo "== configure + build (Release) in $build"
cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build" -j "$jobs" --target scaling >/dev/null

echo "== run scaling bench"
cd "$build"
./bench/scaling

json="$build/BENCH_scaling.json"
[ -f "$json" ] || { echo "FAIL: $json was not written" >&2; exit 1; }

echo "== verify $json"
python3 - "$json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)

failures = []

if not data.get("allBugsFound"):
    for case in data.get("cases", []):
        for name, stats in case.get("engines", {}).items():
            if not stats.get("bugFound"):
                failures.append(
                    "root-cause bug lost: %s scale %s engine %s"
                    % (case["workload"], case["scale"], name))
    if not failures:
        failures.append("allBugsFound is false")

largest = data.get("largestTrace", {})
ratio = largest.get("denseOverChainMemoryRatio", 0.0)
if not largest.get("chainSmaller5x") or ratio < 5.0:
    failures.append(
        "memory regression: dense/chain ratio %.2fx < 5x at largest "
        "trace (%s records)" % (ratio, largest.get("records")))
if not largest.get("chainBuildFaster"):
    failures.append(
        "build-time regression: chain %.2fms vs dense %.2fms at "
        "largest trace" % (largest.get("chainBuildMs", -1),
                           largest.get("denseBuildMs", -1)))

if failures:
    print("BENCH REGRESSION:")
    for f in failures:
        print("  - " + f)
    sys.exit(1)

print("ok: bug found at every scale on both engines; "
      "chain engine %.1fx smaller and faster to build "
      "(%.2fms vs %.2fms) at the largest trace (%s records)"
      % (ratio, largest["chainBuildMs"], largest["denseBuildMs"],
         largest["records"]))
EOF
