#!/usr/bin/env bash
# Performance-regression gate for the HB reachability engines and the
# parallel analysis backend.
#
# Builds the Release tree, runs the scaling bench (which analyses the
# MR and HBase workloads at growing sizes under the chain-frontier
# engine, the dense baseline, and the adaptive selector), and then
# verifies BENCH_scaling.json:
#
#   1. the known root-cause bug (MR-3274 / HB-4539 site pairs) is
#      detected at every scale on EVERY engine;
#   2. at the largest trace the chain engine uses >= 5x less
#      reachability memory than the dense baseline;
#   3. the chain engine's graph build+closure is not slower than the
#      dense baseline there;
#   4. at every scale, the auto engine's build+detect time stays
#      within scripts/crossover_floor.json's penalty of the better
#      fixed engine.
#
# Then runs the engine_crossover calibration bench and verifies
# BENCH_crossover.json against scripts/crossover_floor.json:
#
#   5. at every crossover rung, auto stays within the allowed penalty
#      of min(dense, chain) — the crossover model picks correctly.
#
# Then runs the parallel_speedup bench and verifies
# BENCH_parallel.json against scripts/parallel_floor.json:
#
#   6. parallel output is byte-identical to serial (allDeterministic);
#   7. the geomean speedup at 4 workers clears the floor for this
#      runner's core count (2.4x on >= 4 cores; on fewer cores the
#      capped pool spawns no threads, so the parallel path must be
#      overhead-free instead — >= 0.99x);
#   8. the stage-overlap geomean (end-to-end pipeline wall clock with
#      the base/monitored/model wave overlapped) clears its own floor.
#
# Then runs the trace_memory bench and verifies BENCH_trace_mem.json
# against scripts/trace_mem_floor.json:
#
#   6. the interned columnar trace store holds the largest trace in
#      >= 1.3x fewer resident bytes than the legacy string-per-record
#      layout (>= 30% reduction);
#   7. end-to-end analysis is >= 1.10x faster than analysis plus the
#      legacy copy-sort + re-intern overhead the columnar substrate
#      removed, and ingest clears the records/sec floor.
#
# Then runs the explore_coverage bench and verifies BENCH_explore.json
# against scripts/explore_floor.json:
#
#   8. every failing interleaving the adversarial campaign uncovers
#      replays byte-for-byte from its bundle (original and minimized)
#      and cross-validates against DCatch's candidate report;
#   9. at the fixed seed set, the campaign still reaches at least the
#      floor's distinct-failure-signature count on MR-3274 and
#      ZK-1270 — a drop means schedule-space coverage regressed.
#
# Then runs the serve_throughput bench and verifies BENCH_serve.json
# against scripts/serve_floor.json:
#
#  10. every streamed session's final Report is byte-identical to the
#      batch pipeline's answer (reportsOk);
#  11. aggregate online ingestion with 4 concurrent producers clears
#      the records/sec floor;
#  12. epoch eviction bounds the online index: the retained-2 index
#      high-water mark is at least the floor's ratio smaller than
#      unbounded retention at the same window, and eviction actually
#      ran (evictedAccesses > 0).
#
# Exits nonzero on any violation, so CI can run it as a gate.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build-release}"
jobs="${JOBS:-$(nproc)}"

echo "== configure + build (Release) in $build"
cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build" -j "$jobs" --target scaling engine_crossover \
    parallel_speedup trace_memory explore_coverage \
    serve_throughput >/dev/null

echo "== run scaling bench"
cd "$build"
./bench/scaling

json="$build/BENCH_scaling.json"
[ -f "$json" ] || { echo "FAIL: $json was not written" >&2; exit 1; }

echo "== verify $json"
python3 - "$json" "$repo/scripts/crossover_floor.json" <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    data = json.load(f)
with open(sys.argv[2]) as f:
    cfloor = json.load(f)

failures = []

if not data.get("allBugsFound"):
    for case in data.get("cases", []):
        for name, stats in case.get("engines", {}).items():
            if not stats.get("bugFound"):
                failures.append(
                    "root-cause bug lost: %s scale %s engine %s"
                    % (case["workload"], case["scale"], name))
    if not failures:
        failures.append("allBugsFound is false")

largest = data.get("largestTrace", {})
ratio = largest.get("denseOverChainMemoryRatio", 0.0)
if not largest.get("chainSmaller5x") or ratio < 5.0:
    failures.append(
        "memory regression: dense/chain ratio %.2fx < 5x at largest "
        "trace (%s records)" % (ratio, largest.get("records")))
if not largest.get("chainBuildFaster"):
    failures.append(
        "build-time regression: chain %.2fms vs dense %.2fms at "
        "largest trace" % (largest.get("chainBuildMs", -1),
                           largest.get("denseBuildMs", -1)))

# Auto must track the better fixed engine at every scale.
penalty = cfloor["maxAutoPenaltyPct"] / 100.0
override = os.environ.get("DCATCH_CROSSOVER_PENALTY_OVERRIDE")
if override:
    penalty = float(override) / 100.0
slack = cfloor.get("timerSlackMs", 0.0)
for case in data.get("cases", []):
    engines = case.get("engines", {})
    auto = engines.get("auto")
    if auto is None:
        failures.append(
            "auto engine missing from %s scale %s"
            % (case["workload"], case["scale"]))
        continue
    fixed = [engines[n]["buildMs"] + engines[n]["detectMs"]
             for n in ("chain", "dense") if n in engines]
    best = min(fixed)
    auto_ms = auto["buildMs"] + auto["detectMs"]
    if auto_ms > best * (1.0 + penalty) + slack:
        failures.append(
            "adaptive engine regression: auto %.2fms > best fixed "
            "%.2fms + %.0f%% + %.2fms slack at %s scale %s (picked %s)"
            % (auto_ms, best, penalty * 100, slack,
               case["workload"], case["scale"],
               auto.get("decision", {}).get("resolved", "?")))

if failures:
    print("BENCH REGRESSION:")
    for f in failures:
        print("  - " + f)
    sys.exit(1)

print("ok: bug found at every scale on every engine; "
      "chain engine %.1fx smaller and faster to build "
      "(%.2fms vs %.2fms) at the largest trace (%s records); "
      "auto within %.0f%% of the better fixed engine everywhere"
      % (ratio, largest["chainBuildMs"], largest["denseBuildMs"],
         largest["records"], penalty * 100))
EOF

echo "== run engine crossover bench"
./bench/engine_crossover

xjson="$build/BENCH_crossover.json"
[ -f "$xjson" ] || { echo "FAIL: $xjson was not written" >&2; exit 1; }

echo "== verify $xjson against scripts/crossover_floor.json"
python3 - "$xjson" "$repo/scripts/crossover_floor.json" <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    data = json.load(f)
with open(sys.argv[2]) as f:
    floor = json.load(f)

failures = []
penalty = floor["maxAutoPenaltyPct"] / 100.0
override = os.environ.get("DCATCH_CROSSOVER_PENALTY_OVERRIDE")
if override:
    penalty = float(override) / 100.0
slack = floor.get("timerSlackMs", 0.0)

for case in data.get("cases", []):
    best = min(case["denseMs"], case["chainMs"])
    if case["autoMs"] > best * (1.0 + penalty) + slack:
        failures.append(
            "crossover regression: auto %.2fms > best fixed %.2fms "
            "+ %.0f%% + %.2fms slack at %s scale %s (%s vertices, "
            "resolved %s)"
            % (case["autoMs"], best, penalty * 100, slack,
               case["workload"], case["scale"], case["vertices"],
               case["autoResolved"]))

if failures:
    print("BENCH REGRESSION:")
    for f in failures:
        print("  - " + f)
    sys.exit(1)

print("ok: auto within %.0f%% of the better fixed engine on all %d "
      "crossover rungs (configured cutoff %s, bench recommends %s)"
      % (penalty * 100, len(data.get("cases", [])),
         data.get("configuredCutoff"), data.get("recommendedCutoff")))
EOF

echo "== run parallel speedup bench"
./bench/parallel_speedup

pjson="$build/BENCH_parallel.json"
[ -f "$pjson" ] || { echo "FAIL: $pjson was not written" >&2; exit 1; }

echo "== verify $pjson against scripts/parallel_floor.json"
python3 - "$pjson" "$repo/scripts/parallel_floor.json" <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    data = json.load(f)
with open(sys.argv[2]) as f:
    floor = json.load(f)

failures = []

if not data.get("allDeterministic"):
    bad = [b["benchmark"] for b in data.get("benchmarks", [])
           if not b.get("deterministic")]
    if not data.get("detectWorkload", {}).get("deterministic", True):
        bad.append(data["detectWorkload"].get("name", "detect workload"))
    failures.append("parallel output diverged from serial: %s"
                    % (", ".join(bad) or "allDeterministic is false"))

cores = data.get("hardwareConcurrency", 1)
multi = cores >= floor.get("multiCoreMeansAtLeast", 4)
required = (floor["minGeomeanSpeedupMultiCore"] if multi
            else floor["minGeomeanSpeedupSingleCore"])
override = os.environ.get("DCATCH_PARALLEL_FLOOR_OVERRIDE")
if override:
    required = float(override)
geomean = data.get("geomeanSpeedup", 0.0)
if geomean < required:
    failures.append(
        "parallel speedup regression: geomean %.2fx < floor %.2fx "
        "(%d cores, %s-core floor%s)"
        % (geomean, required, cores, "multi" if multi else "single",
           ", overridden" if override else ""))

overlap = data.get("stageOverlap", {})
overlap_required = (floor["minOverlapSpeedupMultiCore"] if multi
                    else floor["minOverlapSpeedupSingleCore"])
if override:
    overlap_required = min(overlap_required, float(override))
overlap_geomean = overlap.get("geomeanSpeedup", 0.0)
if overlap_geomean < overlap_required:
    failures.append(
        "stage-overlap regression: end-to-end pipeline geomean %.2fx "
        "< floor %.2fx (%d cores)" % (overlap_geomean,
                                      overlap_required, cores))
if not overlap.get("allDeterministic"):
    failures.append(
        "stage-overlap output diverged from serial (full pipeline "
        "signature mismatch)")

detect_overlap = data.get("detectOverlap", {})
detect_overlap_required = (
    floor["minDetectOverlapSpeedupMultiCore"] if multi
    else floor["minDetectOverlapSpeedupSingleCore"])
if override:
    detect_overlap_required = min(detect_overlap_required,
                                  float(override))
detect_overlap_geomean = detect_overlap.get("geomeanSpeedup", 0.0)
if detect_overlap_geomean < detect_overlap_required:
    failures.append(
        "detection-overlap regression: chain build+detect geomean "
        "%.2fx < floor %.2fx with the closure-overlap pre-pass on "
        "(%d cores)" % (detect_overlap_geomean,
                        detect_overlap_required, cores))
if not detect_overlap.get("allDeterministic"):
    failures.append(
        "detection-overlap output diverged: candidate signature "
        "changed with the closure-overlap pre-pass on")

if failures:
    print("BENCH REGRESSION:")
    for f in failures:
        print("  - " + f)
    sys.exit(1)

print("ok: parallel backend deterministic; geomean speedup %.2fx "
      ">= %.2fx floor, stage overlap %.2fx >= %.2fx, detection "
      "overlap %.2fx >= %.2fx on %d core(s)"
      % (geomean, required, overlap_geomean, overlap_required,
         detect_overlap_geomean, detect_overlap_required, cores))
EOF

echo "== run trace memory bench"
./bench/trace_memory

tjson="$build/BENCH_trace_mem.json"
[ -f "$tjson" ] || { echo "FAIL: $tjson was not written" >&2; exit 1; }

echo "== verify $tjson against scripts/trace_mem_floor.json"
python3 - "$tjson" "$repo/scripts/trace_mem_floor.json" <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    data = json.load(f)
with open(sys.argv[2]) as f:
    floor = json.load(f)

failures = []
largest = data.get("largest", {})

min_ratio = floor["minMemoryRatio"]
override = os.environ.get("DCATCH_TRACE_MEM_RATIO_OVERRIDE")
if override:
    min_ratio = float(override)
ratio = largest.get("memoryRatio", 0.0)
if ratio < min_ratio:
    failures.append(
        "trace memory regression: columnar store only %.2fx smaller "
        "than legacy layout (< %.2fx floor) at %s records"
        % (ratio, min_ratio, largest.get("records")))

min_speedup = floor["minAnalysisSpeedup"]
override = os.environ.get("DCATCH_TRACE_MEM_SPEEDUP_OVERRIDE")
if override:
    min_speedup = float(override)
speedup = largest.get("analysisSpeedup", 0.0)
if speedup < min_speedup:
    failures.append(
        "trace analysis regression: end-to-end speedup %.2fx < %.2fx "
        "floor (columnar %.2fms vs legacy %.2fms)"
        % (speedup, min_speedup,
           largest.get("columnarAnalysisSec", 0) * 1e3,
           largest.get("legacyAnalysisSec", 0) * 1e3))

ingest = largest.get("ingestRecordsPerSec", 0.0)
if ingest < floor.get("minIngestRecordsPerSec", 0):
    failures.append(
        "ingest regression: %.0f records/sec < %d floor"
        % (ingest, floor["minIngestRecordsPerSec"]))

if failures:
    print("BENCH REGRESSION:")
    for f in failures:
        print("  - " + f)
    sys.exit(1)

print("ok: columnar trace %.2fx smaller, analysis %.2fx faster, "
      "ingest %.0f records/sec at the largest trace (%s records)"
      % (ratio, speedup, ingest, largest.get("records")))
EOF

echo "== run explore coverage bench"
./bench/explore_coverage

ejson="$build/BENCH_explore.json"
[ -f "$ejson" ] || { echo "FAIL: $ejson was not written" >&2; exit 1; }

echo "== verify $ejson against scripts/explore_floor.json"
python3 - "$ejson" "$repo/scripts/explore_floor.json" <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    data = json.load(f)
with open(sys.argv[2]) as f:
    floor = json.load(f)

failures = []

if not data.get("allBundlesVerified"):
    failures.append(
        "replay regression: a failing run's bundle (original or "
        "minimized) no longer replays to the same failure signature")
if not data.get("allFailuresCrossValidated"):
    unmatched = [
        "%s %s seed %s" % (b["benchmark"], r["policy"], r["seed"])
        for b in data.get("benchmarks", [])
        for r in b.get("runs", [])
        if r.get("failed") and not r.get("crossValidated")]
    failures.append(
        "detector false negative: explorer-found failure absent from "
        "DCatch's candidate report (%s)" % (", ".join(unmatched)
                                            or "see BENCH_explore.json"))

by_id = {b["benchmark"]: b for b in data.get("benchmarks", [])}
for bench_id, required in floor["minDistinctSignatures"].items():
    override = os.environ.get("DCATCH_EXPLORE_FLOOR_OVERRIDE")
    if override:
        required = int(override)
    bench = by_id.get(bench_id)
    if bench is None:
        failures.append("explore bench skipped %s entirely" % bench_id)
        continue
    distinct = set()
    for policy in bench.get("policies", []):
        distinct.update(policy.get("signatures", []))
    if len(distinct) < required:
        failures.append(
            "schedule-space coverage regression: %s uncovered %d "
            "distinct failure signature(s) < floor %d at the fixed "
            "seed set" % (bench_id, len(distinct), required))

if failures:
    print("BENCH REGRESSION:")
    for f in failures:
        print("  - " + f)
    sys.exit(1)

total = sum(b.get("failures", 0) for b in data.get("benchmarks", []))
print("ok: %d failing interleavings across %d benchmarks, all "
      "replay-verified (original + minimized) and cross-validated; "
      "signature floors hold"
      % (total, len(data.get("benchmarks", []))))
EOF

echo "== run serve throughput bench"
./bench/serve_throughput

sjson="$build/BENCH_serve.json"
[ -f "$sjson" ] || { echo "FAIL: $sjson was not written" >&2; exit 1; }

echo "== verify $sjson against scripts/serve_floor.json"
python3 - "$sjson" "$repo/scripts/serve_floor.json" <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    data = json.load(f)
with open(sys.argv[2]) as f:
    floor = json.load(f)

failures = []

if not data.get("reportsOk"):
    bad = [str(r["producers"]) for r in data.get("runs", [])
           if not r.get("reportsOk")]
    failures.append(
        "online/batch divergence: streamed Report != batch pipeline "
        "report at producer count(s) %s" % (", ".join(bad) or "?"))

rate_floor = floor["minRecordsPerSec4Producers"]
override = os.environ.get("DCATCH_SERVE_RATE_OVERRIDE")
if override:
    rate_floor = float(override)
four = next((r for r in data.get("runs", [])
             if r.get("producers") == 4), None)
if four is None:
    failures.append("serve bench skipped the 4-producer run")
elif four.get("recordsPerSec", 0.0) < rate_floor:
    failures.append(
        "serve throughput regression: %.0f records/sec aggregate "
        "with 4 producers < %.0f floor%s"
        % (four.get("recordsPerSec", 0.0), rate_floor,
           " (overridden)" if override else ""))

ratio_floor = floor["minEvictionBoundRatio"]
override = os.environ.get("DCATCH_SERVE_RATIO_OVERRIDE")
if override:
    ratio_floor = float(override)
eviction = data.get("eviction", {})
ratio = eviction.get("boundRatio", 0.0)
if ratio < ratio_floor:
    failures.append(
        "eviction bound regression: retained index only %.2fx smaller "
        "than unbounded retention (< %.2fx floor) at window %s"
        % (ratio, ratio_floor, eviction.get("window")))
if eviction.get("evictedAccesses", 0) <= 0:
    failures.append(
        "eviction never ran: evictedAccesses == 0 at window %s"
        % eviction.get("window"))

if failures:
    print("BENCH REGRESSION:")
    for f in failures:
        print("  - " + f)
    sys.exit(1)

print("ok: streamed reports byte-identical to batch; %.0f records/sec "
      "aggregate with 4 producers >= %.0f floor; eviction bounds the "
      "online index %.2fx (>= %.2fx floor, %d accesses evicted)"
      % (four["recordsPerSec"], rate_floor, ratio, ratio_floor,
         eviction.get("evictedAccesses", 0)))
EOF
