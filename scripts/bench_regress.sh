#!/usr/bin/env bash
# Performance-regression gate for the HB reachability engines and the
# parallel analysis backend.
#
# Builds the Release tree, runs the scaling bench (which analyses the
# MR and HBase workloads at growing sizes under both the chain-frontier
# and dense engines), and then verifies BENCH_scaling.json:
#
#   1. the known root-cause bug (MR-3274 / HB-4539 site pairs) is
#      detected at every scale on BOTH engines;
#   2. at the largest trace the chain engine uses >= 5x less
#      reachability memory than the dense baseline;
#   3. the chain engine's graph build+closure is not slower than the
#      dense baseline there.
#
# Then runs the parallel_speedup bench and verifies
# BENCH_parallel.json against scripts/parallel_floor.json:
#
#   4. parallel output is byte-identical to serial (allDeterministic);
#   5. the geomean speedup at 4 workers clears the floor for this
#      runner's core count (2x on >= 4 cores; on fewer cores only a
#      bounded-overhead sanity floor applies, since real speedup is
#      physically impossible there).
#
# Exits nonzero on any violation, so CI can run it as a gate.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build-release}"
jobs="${JOBS:-$(nproc)}"

echo "== configure + build (Release) in $build"
cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build" -j "$jobs" --target scaling parallel_speedup \
    >/dev/null

echo "== run scaling bench"
cd "$build"
./bench/scaling

json="$build/BENCH_scaling.json"
[ -f "$json" ] || { echo "FAIL: $json was not written" >&2; exit 1; }

echo "== verify $json"
python3 - "$json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)

failures = []

if not data.get("allBugsFound"):
    for case in data.get("cases", []):
        for name, stats in case.get("engines", {}).items():
            if not stats.get("bugFound"):
                failures.append(
                    "root-cause bug lost: %s scale %s engine %s"
                    % (case["workload"], case["scale"], name))
    if not failures:
        failures.append("allBugsFound is false")

largest = data.get("largestTrace", {})
ratio = largest.get("denseOverChainMemoryRatio", 0.0)
if not largest.get("chainSmaller5x") or ratio < 5.0:
    failures.append(
        "memory regression: dense/chain ratio %.2fx < 5x at largest "
        "trace (%s records)" % (ratio, largest.get("records")))
if not largest.get("chainBuildFaster"):
    failures.append(
        "build-time regression: chain %.2fms vs dense %.2fms at "
        "largest trace" % (largest.get("chainBuildMs", -1),
                           largest.get("denseBuildMs", -1)))

if failures:
    print("BENCH REGRESSION:")
    for f in failures:
        print("  - " + f)
    sys.exit(1)

print("ok: bug found at every scale on both engines; "
      "chain engine %.1fx smaller and faster to build "
      "(%.2fms vs %.2fms) at the largest trace (%s records)"
      % (ratio, largest["chainBuildMs"], largest["denseBuildMs"],
         largest["records"]))
EOF

echo "== run parallel speedup bench"
./bench/parallel_speedup

pjson="$build/BENCH_parallel.json"
[ -f "$pjson" ] || { echo "FAIL: $pjson was not written" >&2; exit 1; }

echo "== verify $pjson against scripts/parallel_floor.json"
python3 - "$pjson" "$repo/scripts/parallel_floor.json" <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    data = json.load(f)
with open(sys.argv[2]) as f:
    floor = json.load(f)

failures = []

if not data.get("allDeterministic"):
    bad = [b["benchmark"] for b in data.get("benchmarks", [])
           if not b.get("deterministic")]
    if not data.get("detectWorkload", {}).get("deterministic", True):
        bad.append(data["detectWorkload"].get("name", "detect workload"))
    failures.append("parallel output diverged from serial: %s"
                    % (", ".join(bad) or "allDeterministic is false"))

cores = data.get("hardwareConcurrency", 1)
multi = cores >= floor.get("multiCoreMeansAtLeast", 4)
required = (floor["minGeomeanSpeedupMultiCore"] if multi
            else floor["minGeomeanSpeedupSingleCore"])
override = os.environ.get("DCATCH_PARALLEL_FLOOR_OVERRIDE")
if override:
    required = float(override)
geomean = data.get("geomeanSpeedup", 0.0)
if geomean < required:
    failures.append(
        "parallel speedup regression: geomean %.2fx < floor %.2fx "
        "(%d cores, %s-core floor%s)"
        % (geomean, required, cores, "multi" if multi else "single",
           ", overridden" if override else ""))

if failures:
    print("BENCH REGRESSION:")
    for f in failures:
        print("  - " + f)
    sys.exit(1)

print("ok: parallel backend deterministic; geomean speedup %.2fx "
      ">= %.2fx floor on %d core(s)" % (geomean, required, cores))
EOF
