#!/usr/bin/env bash
# End-to-end smoke test for the dcatchd online service: start the
# daemon on a unix socket, stream the MR-3274 trace into it from 4
# concurrent producers with dcatch_feed, require the daemon's Report
# to be byte-identical to the local batch pipeline (--check), then
# SIGTERM the daemon and require a clean exit with a stats summary.
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: ./build)

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
sock="$(mktemp -u /tmp/dcatchd-smoke-XXXXXX.sock)"
logfile="$(mktemp /tmp/dcatchd-smoke-XXXXXX.log)"

cleanup() {
    [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -f "$sock"
}
trap cleanup EXIT

echo "== start dcatchd on unix:$sock"
"$build/tools/dcatch" serve --listen "unix:$sock" --jobs 2 \
    --window 512 >"$logfile" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || {
        echo "FAIL: daemon died during startup" >&2
        cat "$logfile" >&2
        exit 1
    }
    sleep 0.1
done
[ -S "$sock" ] || { echo "FAIL: socket never appeared" >&2; exit 1; }

echo "== feed MR-3274 with 4 producers, verify against batch pipeline"
"$build/tools/dcatch_feed" --connect "unix:$sock" \
    --benchmark MR-3274 --producers 4 --check

echo "== SIGTERM the daemon, expect a clean exit"
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
daemon_pid=""
if [ "$status" -ne 0 ]; then
    echo "FAIL: daemon exited with status $status" >&2
    cat "$logfile" >&2
    exit 1
fi

echo "== daemon log"
cat "$logfile"
echo "ok: report byte-identical to batch; daemon shut down cleanly"
