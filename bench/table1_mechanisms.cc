/**
 * @file
 * Regenerates Table 1: concurrency & communication mechanisms used by
 * each system (sync RPC, async socket, custom protocol, threads,
 * events), as implemented by the mini systems.
 */

#include "apps/benchmark.hh"
#include "bench_common.hh"

int
main()
{
    using namespace dcatch;
    bench::banner("Table 1", "concurrency & communication mechanisms");

    bench::Table table({"System", "RPC (sync)", "Socket (async)",
                        "Custom protocol", "Threads", "Events"});
    std::string last_system;
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        if (b.system == last_system)
            continue; // one row per system
        last_system = b.system;
        auto yn = [](bool v) { return std::string(v ? "X" : "-"); };
        table.row({b.system, yn(b.mechanisms.rpc), yn(b.mechanisms.socket),
                   yn(b.mechanisms.customProtocol),
                   yn(b.mechanisms.threads), yn(b.mechanisms.events)});
    }
    table.print();
    std::printf("Paper Table 1: Cassandra -/X/-, HBase X/-/X, "
                "MapReduce X/-/X*, ZooKeeper -/X/- (+threads/events "
                "everywhere).\n"
                "(*our mini MapReduce realises the custom pull protocol "
                "as the getTask retry loop of Figure 2.)\n");
    return 0;
}
