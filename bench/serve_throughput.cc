/**
 * @file
 * dcatchd ingestion throughput and memory-bound bench.
 *
 * Drives ServeCore directly (no sockets, so the numbers measure the
 * analysis path: framing, watermark merge, store append, incremental
 * HB, epoch detection) with prebuilt frame bytes for a large MR
 * Hang3274 trace.  For {1, 4, 16} concurrent producers — each
 * streaming the trace into its own run/session, the daemon's scaling
 * axis — it reports aggregate records/second and verifies every
 * session's final Report is byte-identical to the batch pipeline's
 * answer.
 *
 * A second experiment pins the epoch-eviction memory bound: the same
 * trace at the same window with retention 2 vs. effectively-unbounded
 * retention; the ratio of online-index high-water marks is the bound
 * eviction buys.
 *
 * Results go to BENCH_serve.json; scripts/bench_regress.sh gates the
 * 4-producer aggregate throughput and the eviction ratio against
 * scripts/serve_floor.json.
 */

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/benchmark.hh"
#include "apps/mapreduce/mini_mr.hh"
#include "bench_common.hh"
#include "common/json.hh"
#include "common/util.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "runtime/sim.hh"
#include "serve/service.hh"
#include "serve/session.hh"
#include "serve/wire.hh"
#include "trace/trace_store.hh"

namespace {

using namespace dcatch;
using namespace dcatch::serve;

/** Frame bytes shared by every run: metadata + records + End.  The
 *  Hello (which names the run) is prepended per session. */
std::string
sharedStreamBytes(const trace::TraceStore &store, std::size_t batch)
{
    std::string bytes;
    for (const auto &[id, queue] : store.queues())
        bytes += encodeFrame(FrameType::QueueMeta,
                             std::to_string(queue.node) + " " +
                                 (queue.singleConsumer ? "1" : "0") +
                                 " " + id);
    for (const auto &[tid, thread] : store.threads())
        bytes += encodeFrame(FrameType::ThreadMeta,
                             std::to_string(thread.thread) + " " +
                                 std::to_string(thread.node) + " " +
                                 (thread.handlerThread ? "1" : "0") +
                                 " " + thread.name);
    std::string lines;
    std::size_t in_batch = 0;
    for (const trace::Record &rec : store.mergedRecords()) {
        rec.appendLine(store.symbols(), lines);
        lines += '\n';
        if (++in_batch >= batch) {
            bytes += encodeFrame(FrameType::Records, lines);
            lines.clear();
            in_batch = 0;
        }
    }
    if (!lines.empty())
        bytes += encodeFrame(FrameType::Records, lines);
    bytes += encodeFrame(FrameType::End, "");
    return bytes;
}

struct RunResultRow
{
    int producers = 0;
    int jobs = 0;
    double wallSec = 0;
    double recordsPerSec = 0;
    bool reportsOk = true;
    ServeStats stats;
};

/** Stream @p producers concurrent sessions of @p shared and time it. */
RunResultRow
runProducers(const trace::TraceStore &store, const std::string &shared,
             int producers, std::size_t records,
             const std::vector<detect::Candidate> &candidates)
{
    RunResultRow row;
    row.producers = producers;
    row.jobs = std::min(producers, bench::jobsFromEnv());

    ServeOptions options;
    options.jobs = row.jobs;
    ServeCore core(options);

    std::vector<ConnId> conns;
    std::vector<std::string> hellos;
    for (int p = 0; p < producers; ++p) {
        conns.push_back(core.connect());
        hellos.push_back(encodeFrame(
            FrameType::Hello,
            encodeHello({"run-" + std::to_string(p), 1})));
    }

    Stopwatch watch;
    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p)
        threads.emplace_back([&, p] {
            ConnId conn = conns[static_cast<std::size_t>(p)];
            const std::string &hello =
                hellos[static_cast<std::size_t>(p)];
            core.deliver(conn, hello.data(), hello.size());
            constexpr std::size_t kChunk = 256 * 1024;
            for (std::size_t i = 0; i < shared.size(); i += kChunk)
                core.deliver(conn, shared.data() + i,
                             std::min(kChunk, shared.size() - i));
        });
    for (std::thread &thread : threads)
        thread.join();
    core.drain();
    row.wallSec = watch.milliseconds() / 1e3;
    row.recordsPerSec =
        row.wallSec > 0
            ? double(records) * producers / row.wallSec
            : 0;

    for (int p = 0; p < producers; ++p) {
        std::string expected = canonicalReport(
            "run-" + std::to_string(p), records, candidates);
        bool got = false;
        for (const Frame &frame :
             core.poll(conns[static_cast<std::size_t>(p)]))
            if (frame.type == FrameType::Report)
                got = frame.payload == expected;
        if (!got)
            row.reportsOk = false;
        core.disconnect(conns[static_cast<std::size_t>(p)]);
    }
    core.drain();
    row.stats = core.stats();
    (void)store;
    return row;
}

/** Max online-index bytes for one session at the given retention. */
ServeStats
runRetention(const std::string &shared, std::size_t window, int retain)
{
    ServeOptions options;
    options.jobs = 1;
    options.window = window;
    options.retainEpochs = retain;
    ServeCore core(options);
    ConnId conn = core.connect();
    std::string hello =
        encodeFrame(FrameType::Hello, encodeHello({"retain-run", 1}));
    core.deliver(conn, hello.data(), hello.size());
    constexpr std::size_t kChunk = 256 * 1024;
    for (std::size_t i = 0; i < shared.size(); i += kChunk)
        core.deliver(conn, shared.data() + i,
                     std::min(kChunk, shared.size() - i));
    core.drain();
    core.disconnect(conn);
    core.drain();
    return core.stats();
}

} // namespace

int
main()
{
    bench::banner("Serve throughput",
                  "dcatchd online ingestion vs. producer count");

    // The workload: MR Hang3274 scaled up until the trace is large
    // enough that per-record costs dominate session setup.
    sim::SimConfig cfg;
    cfg.maxSteps = 100'000'000;
    sim::Simulation sim(cfg);
    apps::mr::install(sim, apps::mr::Workload::Hang3274,
                      bench::smokeScale(192));
    sim.run();
    const trace::TraceStore &store = sim.tracer().store();
    std::size_t records = store.totalRecords();

    // The authoritative answer, computed once.
    hb::HbGraph graph(store, hb::HbGraph::Options());
    detect::RaceDetector detector;
    std::vector<detect::Candidate> candidates = detector.detect(graph);

    std::string shared = sharedStreamBytes(store, 512);
    std::printf("trace: %zu records, %zu candidate(s), %.1f KiB on "
                "the wire\n\n",
                records, candidates.size(), shared.size() / 1024.0);

    bench::Table table({"Producers", "Jobs", "Records/s", "Wall ms",
                        "Reports", "PendingKiB", "IndexKiB",
                        "Evicted"});
    Json runs = Json::array();
    bool all_ok = true;
    for (int producers : {1, 4, 16}) {
        RunResultRow row = runProducers(store, shared, producers,
                                        records, candidates);
        all_ok = all_ok && row.reportsOk;
        table.row({strprintf("%d", row.producers),
                   strprintf("%d", row.jobs),
                   strprintf("%.0f", row.recordsPerSec),
                   strprintf("%.1f", row.wallSec * 1e3),
                   row.reportsOk ? "exact" : "MISMATCH",
                   strprintf("%.1f", row.stats.maxPendingBytes / 1024.0),
                   strprintf("%.1f",
                             row.stats.maxOnlineIndexBytes / 1024.0),
                   strprintf("%zu", row.stats.evictedAccesses)});
        Json entry = Json::object();
        entry.set("producers", Json::num(std::int64_t(row.producers)))
            .set("jobs", Json::num(std::int64_t(row.jobs)))
            .set("recordsPerSec", Json::num(row.recordsPerSec))
            .set("wallSec", Json::num(row.wallSec))
            .set("reportsOk", Json::boolean(row.reportsOk))
            .set("maxPendingBytes",
                 Json::num(std::int64_t(row.stats.maxPendingBytes)))
            .set("maxOnlineIndexBytes",
                 Json::num(
                     std::int64_t(row.stats.maxOnlineIndexBytes)))
            .set("evictedAccesses",
                 Json::num(std::int64_t(row.stats.evictedAccesses)));
        runs.push(std::move(entry));
    }
    table.print();

    // Eviction memory bound: same window, retention 2 vs. unbounded.
    constexpr std::size_t kWindow = 1024;
    ServeStats bounded = runRetention(shared, kWindow, 2);
    ServeStats unbounded = runRetention(shared, kWindow, 1 << 20);
    double bound_ratio =
        bounded.maxOnlineIndexBytes > 0
            ? double(unbounded.maxOnlineIndexBytes) /
                  double(bounded.maxOnlineIndexBytes)
            : 0;
    std::printf("\neviction bound (window %zu): retained-2 index "
                "%.1f KiB vs unbounded %.1f KiB (%.2fx), %zu "
                "accesses evicted\n",
                kWindow, bounded.maxOnlineIndexBytes / 1024.0,
                unbounded.maxOnlineIndexBytes / 1024.0, bound_ratio,
                bounded.evictedAccesses);

    Json root = Json::object();
    root.set("bench", Json::str("serve_throughput"))
        .set("records", Json::num(std::int64_t(records)))
        .set("reportsOk", Json::boolean(all_ok))
        .set("runs", std::move(runs));
    Json eviction = Json::object();
    eviction.set("window", Json::num(std::int64_t(kWindow)))
        .set("boundedIndexBytes",
             Json::num(std::int64_t(bounded.maxOnlineIndexBytes)))
        .set("unboundedIndexBytes",
             Json::num(std::int64_t(unbounded.maxOnlineIndexBytes)))
        .set("boundRatio", Json::num(bound_ratio))
        .set("evictedAccesses",
             Json::num(std::int64_t(bounded.evictedAccesses)));
    root.set("eviction", std::move(eviction));
    std::ofstream out("BENCH_serve.json");
    out << root.dump() << "\n";
    std::printf("wrote BENCH_serve.json\n");
    return all_ok ? 0 : 1;
}
