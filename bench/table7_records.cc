/**
 * @file
 * Regenerates Table 7: breakdown of trace records by major type
 * (memory, RPC/socket, event, thread, coordination, lock) for each
 * benchmark's monitored run.
 */

#include "apps/benchmark.hh"
#include "bench_common.hh"
#include "common/util.hh"
#include "runtime/sim.hh"
#include "trace/trace_store.hh"

int
main()
{
    using namespace dcatch;
    using trace::RecordCategory;
    bench::banner("Table 7", "trace record breakdown by type");

    bench::Table table({"BugID", "Total", "Mem", "RPC/Socket", "Event",
                        "Thread", "Coord", "Lock", "Loop"});
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        sim::Simulation sim(b.config);
        b.build(sim);
        sim.run();
        const trace::TraceStore &store = sim.tracer().store();
        auto counts = store.countsByCategory();
        auto get = [&](RecordCategory cat) {
            auto it = counts.find(cat);
            return strprintf(
                "%zu", it == counts.end() ? std::size_t{0} : it->second);
        };
        table.row({b.id, strprintf("%zu", store.totalRecords()),
                   get(RecordCategory::Mem), get(RecordCategory::RpcSocket),
                   get(RecordCategory::Event), get(RecordCategory::Thread),
                   get(RecordCategory::Coord), get(RecordCategory::Lock),
                   get(RecordCategory::Loop)});
    }
    table.print();
    std::printf("Shape check (paper Table 7): traces are dominated by "
                "memory-access records; MapReduce workloads carry the "
                "most event/thread records; Cassandra and ZooKeeper "
                "traces contain socket but no RPC records; HBase "
                "workloads are the only users of the coordination "
                "service.\n");
    return 0;
}
