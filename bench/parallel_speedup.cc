/**
 * @file
 * Parallel analysis backend speedup: serial (jobs = 1, the exact old
 * code path) vs. multi-worker wall clock for the two stages the
 * backend shards — race detection over (variable, access-group)
 * partitions and trigger-module order exploration — plus a
 * detection-only measurement on a large scaling trace (MR at 16
 * submitted jobs) where the candidate-pair work dominates.
 *
 * A second section measures the *stage-overlap* speedup: end-to-end
 * pipeline wall clock (measureBase on, so the untraced base run, the
 * monitored run, and the program-model build overlap on the pool)
 * serial vs. parallel.  This exercises the pipeline-parallel wave
 * rather than the sharded kernels, and gets its own floor keys.
 *
 * A third section measures the *detection-overlap* speedup on large
 * scaling traces (MR Hang3274 at 256 submitted jobs, HBase
 * SplitAlter4539 at 32 regions): chain-engine graph build + detect
 * with the closure-overlap pre-pass off vs. on, at the same worker
 * count.  The pre-pass streams the detector's work units against the
 * pre-closure frontier snapshot while Rule-Eserial closure runs
 * (docs/hb_auto_engine.md, "Overlapped detection"); the candidate
 * output must be identical either way, and the floor keys
 * minDetectOverlapSpeedup* gate the win.
 *
 * Every parallel run is also checked byte-for-byte against its serial
 * twin (final report keys and trigger classifications), so this bench
 * doubles as an end-to-end determinism smoke test.  Results go to
 * BENCH_parallel.json; scripts/bench_regress.sh gates the speedups
 * against scripts/parallel_floor.json, scaled to the runner's core
 * count.  On a 1-core box the capped pool spawns no threads, so the
 * "parallel" configuration runs the identical inline code path — the
 * single-core floor requires that to be overhead-free (>= 0.99x).
 */

#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "apps/benchmark.hh"
#include "apps/hbase/mini_hbase.hh"
#include "apps/mapreduce/mini_mr.hh"
#include "bench_common.hh"
#include "common/json.hh"
#include "common/task_pool.hh"
#include "common/util.hh"
#include "common/chain_frontier.hh"
#include "dcatch/pipeline.hh"
#include "detect/race_detect.hh"
#include "detect/streaming.hh"
#include "hb/graph.hh"
#include "runtime/sim.hh"
#include "trigger/harness.hh"

namespace {

using namespace dcatch;

/** Candidate identity digest for the determinism cross-check. */
std::string
resultSignature(const PipelineResult &result)
{
    std::string sig;
    for (const detect::Candidate &cand : result.finalReports())
        sig += cand.callstackKey() + "\n";
    for (const trigger::TriggerReport &report : result.triggered)
        sig += report.candidate.callstackKey() + " => " +
               trigger::triggerClassName(report.cls) + "\n";
    return sig;
}

/**
 * One pipeline run; returns the parallel-amenable wall clock
 * (detection + trigger exploration) and the output signature.
 */
double
timedPipeline(const apps::Benchmark &bench, int jobs,
              std::string *signature)
{
    PipelineOptions options;
    options.measureBase = false;
    options.runTrigger = true;
    options.jobs = jobs;
    PipelineResult result = runPipeline(bench, options);
    *signature = resultSignature(result);
    return result.metrics.detectSec + result.metrics.triggerSec;
}

/**
 * One full pipeline run (base + monitored + model overlap when the
 * pool has threads); returns end-to-end wall clock.
 */
double
wallPipeline(const apps::Benchmark &bench, int jobs,
             std::string *signature)
{
    PipelineOptions options;
    options.measureBase = true;
    options.runTrigger = true;
    options.jobs = jobs;
    Stopwatch watch;
    PipelineResult result = runPipeline(bench, options);
    double sec = watch.seconds();
    *signature = resultSignature(result);
    return sec;
}

/** Best-of-N to shave scheduler noise off small intervals. */
template <class Fn>
double
bestOf(int reps, Fn &&fn)
{
    double best = fn();
    for (int i = 1; i < reps; ++i) {
        double t = fn();
        if (t < best)
            best = t;
    }
    return best;
}

/** Candidate identity digest for the detection-overlap cross-check. */
std::string
candidateSignature(const std::vector<detect::Candidate> &candidates)
{
    std::string sig;
    for (const detect::Candidate &cand : candidates)
        sig += cand.callstackKey() + " " +
               std::to_string(cand.dynamicPairs) + "\n";
    return sig;
}

/**
 * Chain-engine graph build + detect over @p store, with the
 * closure-overlap pre-pass on or off — the same orchestration the
 * pipeline runs (src/dcatch/pipeline.cc), minus the workload phases.
 * Returns the analysis wall clock and the candidate signature.
 */
double
timedOverlapAnalysis(const trace::TraceStore &store, TaskPool &pool,
                     bool overlap, std::string *signature)
{
    constexpr std::size_t kWindow = 4096;
    Stopwatch watch;
    hb::HbGraph::Options graph_options;
    graph_options.engine = hb::HbGraph::Engine::ChainFrontier;
    graph_options.pool = &pool;

    detect::AccessPlan plan;
    bool plan_built = false;
    std::once_flag plan_once;
    std::size_t tasks = 0;
    std::vector<std::vector<std::uint64_t>> ordered_shards;
    std::vector<std::unordered_set<std::uint32_t>> epoch_shards;
    if (overlap && pool.jobs() > 1) {
        tasks = static_cast<std::size_t>(pool.jobs() - 1);
        ordered_shards.resize(tasks);
        epoch_shards.resize(tasks);
        graph_options.overlap.tasks = tasks;
        graph_options.overlap.work =
            [&](const hb::HbGraph &g, const ChainFrontierIndex &snap,
                std::size_t task) {
                std::call_once(plan_once, [&] {
                    plan = detect::AccessPlan::build(g);
                    plan_built = true;
                });
                detect::StreamingDetector::prepassShard(
                    plan, snap, task, tasks, kWindow,
                    ordered_shards[task], epoch_shards[task]);
            };
    }
    hb::HbGraph graph(store, graph_options);
    detect::OrderedMemo memo;
    if (plan_built)
        for (std::size_t s = 0; s < tasks; ++s)
            memo.addPacked(ordered_shards[s]);
    detect::RaceDetector detector;
    std::vector<detect::Candidate> candidates = detector.detect(
        graph, &pool, plan_built ? &plan : nullptr,
        plan_built ? &memo : nullptr);
    double sec = watch.seconds();
    *signature = candidateSignature(candidates);
    return sec;
}

} // namespace

int
main()
{
    bench::banner("Parallel speedup",
                  "serial vs. sharded analysis backend");
    const int hardware = TaskPool::hardwareJobs();
    const int jobs = bench::jobsFromEnv(/*fallback=*/4);
    std::printf("(hardware concurrency %d, parallel runs use %d "
                "workers)\n", hardware, jobs);

    bench::Table table({"Workload", "Serial", "Parallel", "Speedup",
                        "Deterministic"});
    Json benchmarks = Json::array();
    bool all_deterministic = true;
    std::vector<double> speedups;

    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        std::string serial_sig, parallel_sig;
        double serial_sec = bestOf(3, [&] {
            return timedPipeline(b, 1, &serial_sig);
        });
        double parallel_sec = bestOf(3, [&] {
            return timedPipeline(b, jobs, &parallel_sig);
        });
        bool deterministic = serial_sig == parallel_sig;
        all_deterministic &= deterministic;
        double speedup =
            parallel_sec > 0 ? serial_sec / parallel_sec : 1.0;
        speedups.push_back(speedup);
        table.row({b.id, strprintf("%.2fms", serial_sec * 1e3),
                   strprintf("%.2fms", parallel_sec * 1e3),
                   strprintf("%.2fx", speedup),
                   deterministic ? "yes" : "NO"});
        benchmarks.push(Json::object()
            .set("benchmark", Json::str(b.id))
            .set("serialSec", Json::num(serial_sec))
            .set("parallelSec", Json::num(parallel_sec))
            .set("speedup", Json::num(speedup))
            .set("deterministic", Json::boolean(deterministic)));
    }

    // Detection-only on a large trace: MR Hang3274 at 16 submitted
    // jobs, where the (var, group) shard count is high enough for the
    // pool to matter.
    sim::SimConfig cfg;
    cfg.maxSteps = 100'000'000;
    sim::Simulation sim(cfg);
    apps::mr::install(sim, apps::mr::Workload::Hang3274,
                      bench::smokeScale(16));
    sim.run();
    hb::HbGraph graph(sim.tracer().store());
    detect::RaceDetector detector;

    auto serial_cands = detector.detect(graph);
    double detect_serial = bestOf(3, [&] {
        Stopwatch watch;
        detector.detect(graph);
        return watch.milliseconds() / 1e3;
    });
    TaskPool pool(jobs);
    auto parallel_cands = detector.detect(graph, &pool);
    double detect_parallel = bestOf(3, [&] {
        Stopwatch watch;
        detector.detect(graph, &pool);
        return watch.milliseconds() / 1e3;
    });
    bool detect_deterministic =
        serial_cands.size() == parallel_cands.size();
    for (std::size_t i = 0;
         detect_deterministic && i < serial_cands.size(); ++i)
        detect_deterministic =
            serial_cands[i].callstackKey() ==
                parallel_cands[i].callstackKey() &&
            serial_cands[i].dynamicPairs == parallel_cands[i].dynamicPairs;
    all_deterministic &= detect_deterministic;
    double detect_speedup = detect_parallel > 0
                                ? detect_serial / detect_parallel
                                : 1.0;
    speedups.push_back(detect_speedup);
    table.row({"MR scale 16 (detect only)",
               strprintf("%.2fms", detect_serial * 1e3),
               strprintf("%.2fms", detect_parallel * 1e3),
               strprintf("%.2fx", detect_speedup),
               detect_deterministic ? "yes" : "NO"});
    table.print();

    // Stage-overlap section: end-to-end pipeline wall clock with the
    // wave-1 overlap (base run / monitored run / model build) active.
    bench::Table overlap_table({"Workload", "Serial", "Parallel",
                                "Speedup", "Deterministic"});
    Json overlap_rows = Json::array();
    bool overlap_deterministic = true;
    std::vector<double> overlap_speedups;
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        std::string serial_sig, parallel_sig;
        double serial_sec = bestOf(3, [&] {
            return wallPipeline(b, 1, &serial_sig);
        });
        double parallel_sec = bestOf(3, [&] {
            return wallPipeline(b, jobs, &parallel_sig);
        });
        bool deterministic = serial_sig == parallel_sig;
        overlap_deterministic &= deterministic;
        all_deterministic &= deterministic;
        double speedup =
            parallel_sec > 0 ? serial_sec / parallel_sec : 1.0;
        overlap_speedups.push_back(speedup);
        overlap_table.row({b.id, strprintf("%.2fms", serial_sec * 1e3),
                           strprintf("%.2fms", parallel_sec * 1e3),
                           strprintf("%.2fx", speedup),
                           deterministic ? "yes" : "NO"});
        overlap_rows.push(Json::object()
            .set("benchmark", Json::str(b.id))
            .set("serialSec", Json::num(serial_sec))
            .set("parallelSec", Json::num(parallel_sec))
            .set("speedup", Json::num(speedup))
            .set("deterministic", Json::boolean(deterministic)));
    }
    std::printf("\nStage overlap (end-to-end pipeline wall clock):\n");
    overlap_table.print();
    double overlap_geomean = 1.0;
    for (double s : overlap_speedups)
        overlap_geomean *= s;
    overlap_geomean = std::pow(
        overlap_geomean, 1.0 / double(overlap_speedups.size()));

    // Detection-overlap section: chain-engine build + detect on large
    // scaling traces, closure-overlap pre-pass off vs. on at the same
    // worker count.  On a 1-core pool the pre-pass never engages and
    // both configurations run the identical code path.
    struct OverlapCase
    {
        const char *name;
        std::function<void(sim::Simulation &)> build;
    };
    const int mr_scale = bench::smokeScale(256);
    const int hb_scale = bench::smokeScale(32);
    std::vector<OverlapCase> detect_overlap_cases = {
        {"MR jobs 256",
         [mr_scale](sim::Simulation &sim) {
             apps::mr::install(sim, apps::mr::Workload::Hang3274,
                               mr_scale);
         }},
        {"HB regions 32",
         [hb_scale](sim::Simulation &sim) {
             apps::hb::install(sim, apps::hb::Workload::SplitAlter4539,
                               hb_scale);
         }},
    };
    std::vector<std::unique_ptr<sim::Simulation>> overlap_sims(
        detect_overlap_cases.size());
    {
        // Workload execution is untimed; overlap it on the pool.
        TaskPool warmup(jobs);
        warmup.parallelFor(detect_overlap_cases.size(),
                           [&](std::size_t i) {
            sim::SimConfig cfg2;
            cfg2.maxSteps = 100'000'000;
            overlap_sims[i] = std::make_unique<sim::Simulation>(cfg2);
            detect_overlap_cases[i].build(*overlap_sims[i]);
            overlap_sims[i]->run();
        });
    }
    bench::Table detect_overlap_table({"Workload", "Records",
                                       "Final-only", "Overlapped",
                                       "Speedup", "Deterministic"});
    Json detect_overlap_rows = Json::array();
    bool detect_overlap_deterministic = true;
    std::vector<double> detect_overlap_speedups;
    TaskPool overlap_pool(jobs);
    for (std::size_t i = 0; i < detect_overlap_cases.size(); ++i) {
        const trace::TraceStore &store =
            overlap_sims[i]->tracer().store();
        std::string off_sig, on_sig;
        double off_sec = bestOf(3, [&] {
            return timedOverlapAnalysis(store, overlap_pool,
                                        /*overlap=*/false, &off_sig);
        });
        double on_sec = bestOf(3, [&] {
            return timedOverlapAnalysis(store, overlap_pool,
                                        /*overlap=*/true, &on_sig);
        });
        bool deterministic = off_sig == on_sig;
        detect_overlap_deterministic &= deterministic;
        all_deterministic &= deterministic;
        double speedup = on_sec > 0 ? off_sec / on_sec : 1.0;
        detect_overlap_speedups.push_back(speedup);
        std::size_t records = store.totalRecords();
        detect_overlap_table.row(
            {detect_overlap_cases[i].name,
             strprintf("%zu", records),
             strprintf("%.2fms", off_sec * 1e3),
             strprintf("%.2fms", on_sec * 1e3),
             strprintf("%.2fx", speedup),
             deterministic ? "yes" : "NO"});
        detect_overlap_rows.push(Json::object()
            .set("benchmark", Json::str(detect_overlap_cases[i].name))
            .set("records",
                 Json::num(static_cast<std::int64_t>(records)))
            .set("finalOnlySec", Json::num(off_sec))
            .set("overlappedSec", Json::num(on_sec))
            .set("speedup", Json::num(speedup))
            .set("deterministic", Json::boolean(deterministic)));
    }
    std::printf("\nDetection overlap (chain engine, closure-overlap "
                "pre-pass off vs. on at %d workers):\n", jobs);
    detect_overlap_table.print();
    double detect_overlap_geomean = 1.0;
    for (double s : detect_overlap_speedups)
        detect_overlap_geomean *= s;
    detect_overlap_geomean = std::pow(
        detect_overlap_geomean,
        1.0 / double(detect_overlap_speedups.size()));

    double geomean = 1.0;
    for (double s : speedups)
        geomean *= s;
    geomean = std::pow(geomean, 1.0 / double(speedups.size()));
    std::printf("Shape check: parallel output is byte-identical to "
                "serial everywhere — %s; geomean speedup %.2fx "
                "(sharded kernels), %.2fx (stage overlap), %.2fx "
                "(detection overlap) at %d workers on %d-core "
                "hardware.\n",
                all_deterministic ? "holds" : "VIOLATED", geomean,
                overlap_geomean, detect_overlap_geomean, jobs,
                hardware);

    Json root = Json::object();
    root.set("bench", Json::str("parallel_speedup"))
        .set("hardwareConcurrency",
             Json::num(std::int64_t(hardware)))
        .set("jobs", Json::num(std::int64_t(jobs)))
        .set("allDeterministic", Json::boolean(all_deterministic))
        .set("geomeanSpeedup", Json::num(geomean))
        .set("benchmarks", std::move(benchmarks));
    Json overlap = Json::object();
    overlap
        .set("geomeanSpeedup", Json::num(overlap_geomean))
        .set("allDeterministic", Json::boolean(overlap_deterministic))
        .set("benchmarks", std::move(overlap_rows));
    root.set("stageOverlap", std::move(overlap));
    Json detect_overlap = Json::object();
    detect_overlap
        .set("geomeanSpeedup", Json::num(detect_overlap_geomean))
        .set("allDeterministic",
             Json::boolean(detect_overlap_deterministic))
        .set("benchmarks", std::move(detect_overlap_rows));
    root.set("detectOverlap", std::move(detect_overlap));
    Json workload = Json::object();
    workload.set("name", Json::str("MR-3274 scale 16 detect"))
        .set("records", Json::num(std::int64_t(
            sim.tracer().store().totalRecords())))
        .set("serialSec", Json::num(detect_serial))
        .set("parallelSec", Json::num(detect_parallel))
        .set("speedup", Json::num(detect_speedup))
        .set("deterministic", Json::boolean(detect_deterministic));
    root.set("detectWorkload", std::move(workload));
    std::ofstream out("BENCH_parallel.json");
    out << root.dump() << "\n";
    std::printf("wrote BENCH_parallel.json\n");
    return all_deterministic ? 0 : 1;
}
