/**
 * @file
 * Regenerates Table 6: DCatch performance — base execution time,
 * tracing time, trace-analysis time, static-pruning time, and trace
 * size, per benchmark.  The summary table averages five pipeline runs
 * (as the paper does); a google-benchmark suite then measures the
 * tracing and analysis phases with statistical rigor.
 *
 * Because this bench *times* the pipeline phases, it defaults to the
 * exact serial path (jobs = 1) so numbers stay comparable across
 * runs and machines.  Set DCATCH_BENCH_JOBS to measure the sharded
 * parallel analysis backend instead (docs/parallelism.md); the
 * dedicated speedup comparison lives in bench/parallel_speedup.cc.
 */

#include <benchmark/benchmark.h>

#include "apps/benchmark.hh"
#include "bench_common.hh"
#include "common/util.hh"
#include "dcatch/pipeline.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"

namespace {

using namespace dcatch;

void
printTable()
{
    int jobs = bench::jobsFromEnv(/*fallback=*/1);
    bench::banner("Table 6", "DCatch performance (mean of 5 runs)");
    if (jobs != 1)
        std::printf("(analysis phases on %d workers — timings are NOT "
                    "comparable to the serial default)\n", jobs);
    bench::Table table({"BugID", "Base", "Tracing", "TraceAnalysis",
                        "StaticPruning", "LoopAnalysis(rerun)",
                        "TraceSize", "paper: base/trace/analysis (s)"});
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        PhaseMetrics mean;
        const int runs = 5;
        for (int i = 0; i < runs; ++i) {
            PipelineOptions options; // measureBase defaults to true
            options.jobs = jobs;
            PipelineResult result = runPipeline(b, options);
            mean.baseSec += result.metrics.baseSec;
            mean.tracingSec += result.metrics.tracingSec;
            mean.analysisSec += result.metrics.analysisSec;
            mean.pruningSec += result.metrics.pruningSec;
            mean.loopSec += result.metrics.loopSec;
            mean.traceBytes = result.metrics.traceBytes;
        }
        table.row(
            {b.id, strprintf("%.2fms", mean.baseSec / runs * 1e3),
             strprintf("%.2fms", mean.tracingSec / runs * 1e3),
             strprintf("%.2fms", mean.analysisSec / runs * 1e3),
             strprintf("%.2fms", mean.pruningSec / runs * 1e3),
             strprintf("%.2fms", mean.loopSec / runs * 1e3),
             strprintf("%.1fKB", mean.traceBytes / 1024.0),
             strprintf("%.1f/%.1f/%.1f", b.paper.baseSec,
                       b.paper.tracingSec, b.paper.analysisSec)});
    }
    table.print();
    std::printf("Shape check: tracing adds modest overhead over base "
                "execution (the paper reports 1.9x-5.5x; here the "
                "serialized scheduler dominates both runs); trace "
                "analysis scales with trace size; the loop analysis "
                "column is dominated by its focused re-execution of "
                "the workload, as in the paper.\n\n");
}

void
BM_TracedRun(benchmark::State &state, const apps::Benchmark *bench)
{
    for (auto _ : state) {
        sim::Simulation sim(bench->config);
        bench->build(sim);
        benchmark::DoNotOptimize(sim.run());
    }
}

void
BM_TraceAnalysis(benchmark::State &state, const apps::Benchmark *bench)
{
    sim::Simulation sim(bench->config);
    bench->build(sim);
    sim.run();
    const trace::TraceStore &store = sim.tracer().store();
    for (auto _ : state) {
        hb::HbGraph graph(store);
        detect::RaceDetector detector;
        benchmark::DoNotOptimize(detector.detect(graph));
    }
    state.counters["records"] =
        static_cast<double>(store.totalRecords());
}

} // namespace

int
main(int argc, char **argv)
{
    printTable();
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        benchmark::RegisterBenchmark(("BM_TracedRun/" + b.id).c_str(),
                                     BM_TracedRun, &b);
        benchmark::RegisterBenchmark(
            ("BM_TraceAnalysis/" + b.id).c_str(), BM_TraceAnalysis, &b);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
