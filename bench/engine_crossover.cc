/**
 * @file
 * Dense-vs-chain crossover calibration for the adaptive HB engine
 * (hb::HbGraph::Engine::Auto).
 *
 * For a ladder of trace sizes (MapReduce scaled by submitted jobs,
 * HBase by regions) the bench measures HB-graph build + closure +
 * detection time under the dense bit-array engine and the
 * chain-frontier engine, then runs the Auto selector on the same
 * trace and records which engine it resolved to and the decision
 * inputs it saw.  The output (BENCH_crossover.json) serves two
 * purposes:
 *
 *  - calibration: `recommendedCutoff` is the largest vertex count at
 *    which the dense engine was still faster — the value
 *    hb::HbGraph::kAutoDenseVertexCutoff should sit near;
 *  - regression gating: scripts/bench_regress.sh checks every rung
 *    against scripts/crossover_floor.json (auto must stay within a
 *    small percentage plus a timer allowance of the better fixed
 *    engine).
 *
 * Workload executions are untimed and run concurrently; the timed
 * measurements run serially afterwards (same discipline as
 * bench/scaling.cc).
 */

#include "apps/hbase/mini_hbase.hh"
#include "apps/mapreduce/mini_mr.hh"
#include "bench_common.hh"
#include "common/json.hh"
#include "common/task_pool.hh"
#include "common/util.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "runtime/sim.hh"

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace {

using namespace dcatch;

/** Best-of-N to shave scheduler noise off small intervals. */
template <class Fn>
double
bestOf(int reps, Fn &&fn)
{
    double best = fn();
    for (int i = 1; i < reps; ++i) {
        double t = fn();
        if (t < best)
            best = t;
    }
    return best;
}

/** Build + detect under one engine; returns milliseconds. */
double
analyzeMs(const trace::TraceStore &store, hb::HbGraph::Engine engine)
{
    Stopwatch watch;
    hb::HbGraph::Options graph_options;
    graph_options.engine = engine;
    hb::HbGraph graph(store, graph_options);
    detect::RaceDetector detector;
    detector.detect(graph);
    return watch.milliseconds();
}

} // namespace

int
main()
{
    bench::banner("Engine crossover",
                  "dense vs chain analysis time; auto selection check");

    struct Case
    {
        const char *name;
        int scale;
        std::function<void(sim::Simulation &)> build;
    };
    std::vector<Case> cases;
    for (int jobs : {1, 2, 4, 8, 16, 32, 64, 128})
        cases.push_back({"MR jobs", jobs, [jobs](sim::Simulation &sim) {
                             apps::mr::install(
                                 sim, apps::mr::Workload::Hang3274, jobs);
                         }});
    for (int regions : {1, 4, 16, 32})
        cases.push_back(
            {"HB regions", regions, [regions](sim::Simulation &sim) {
                 apps::hb::install(
                     sim, apps::hb::Workload::SplitAlter4539, regions);
             }});

    // Untimed workload executions, in parallel.
    std::vector<std::unique_ptr<sim::Simulation>> sims(cases.size());
    {
        TaskPool pool(bench::jobsFromEnv());
        pool.parallelFor(cases.size(), [&](std::size_t i) {
            sim::SimConfig cfg;
            cfg.maxSteps = 100'000'000;
            sims[i] = std::make_unique<sim::Simulation>(cfg);
            cases[i].build(*sims[i]);
            sims[i]->run();
        });
    }

    bench::Table table({"Workload", "Scale", "Vertices", "Dense",
                        "Chain", "Faster", "Auto picked", "Auto"});
    Json json_cases = Json::array();
    std::size_t recommended = 0;

    for (std::size_t i = 0; i < cases.size(); ++i) {
        const trace::TraceStore &store = sims[i]->tracer().store();
        double dense_ms = bestOf(3, [&] {
            return analyzeMs(store, hb::HbGraph::Engine::Dense);
        });
        double chain_ms = bestOf(3, [&] {
            return analyzeMs(store, hb::HbGraph::Engine::ChainFrontier);
        });

        // The auto run, with its decision.
        hb::HbGraph::Options graph_options;
        graph_options.engine = hb::HbGraph::Engine::Auto;
        Stopwatch watch;
        hb::HbGraph graph(store, graph_options);
        detect::RaceDetector detector;
        detector.detect(graph);
        double auto_first = watch.milliseconds();
        double auto_ms = bestOf(2, [&] {
            return analyzeMs(store, hb::HbGraph::Engine::Auto);
        });
        auto_ms = std::min(auto_ms, auto_first);
        const hb::HbGraph::EngineDecision &d = graph.decision();

        bool dense_faster = dense_ms < chain_ms;
        if (dense_faster && d.vertices > recommended)
            recommended = d.vertices;

        table.row({cases[i].name, strprintf("%d", cases[i].scale),
                   strprintf("%zu", d.vertices),
                   strprintf("%.2fms", dense_ms),
                   strprintf("%.2fms", chain_ms),
                   dense_faster ? "dense" : "chain", graph.engineName(),
                   strprintf("%.2fms", auto_ms)});

        Json entry = Json::object();
        entry.set("workload", Json::str(cases[i].name))
            .set("scale",
                 Json::num(static_cast<std::int64_t>(cases[i].scale)))
            .set("vertices",
                 Json::num(static_cast<std::int64_t>(d.vertices)))
            .set("denseMs", Json::num(dense_ms))
            .set("chainMs", Json::num(chain_ms))
            .set("autoMs", Json::num(auto_ms))
            .set("autoResolved", Json::str(graph.engineName()))
            .set("threads",
                 Json::num(static_cast<std::int64_t>(d.threads)))
            .set("crossEdges",
                 Json::num(static_cast<std::int64_t>(d.crossEdges)))
            .set("denseBytes",
                 Json::num(static_cast<std::int64_t>(d.denseBytes)))
            .set("effectiveCutoff",
                 Json::num(static_cast<std::int64_t>(
                     d.effectiveCutoff)));
        json_cases.push(std::move(entry));
    }
    table.print();

    std::printf(
        "Crossover: dense was still the faster engine up to %zu "
        "vertices (configured cutoff %zu).\n",
        recommended, hb::HbGraph::kAutoDenseVertexCutoff);

    Json root = Json::object();
    root.set("bench", Json::str("engine_crossover"))
        .set("configuredCutoff",
             Json::num(static_cast<std::int64_t>(
                 hb::HbGraph::kAutoDenseVertexCutoff)))
        .set("recommendedCutoff",
             Json::num(static_cast<std::int64_t>(recommended)))
        .set("cases", std::move(json_cases));
    std::ofstream out("BENCH_crossover.json");
    out << root.dump() << "\n";
    std::printf("wrote BENCH_crossover.json\n");
    return 0;
}
