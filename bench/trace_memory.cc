/**
 * @file
 * Trace-substrate memory and throughput bench: quantifies what the
 * interned columnar (SoA + SymbolPool) representation buys over the
 * pre-interning array-of-structs layout, where every record carried
 * three heap-allocated std::strings and every analysis started by
 * copy-and-sorting the whole trace (allRecords()) and re-interning
 * its strings in the detector.
 *
 * For every benchmark, and for a large scaling workload (MR Hang3274
 * at 256 submitted jobs) where trace handling dominates, it measures:
 *
 *  - resident trace bytes: TraceStore::memoryBytes() (columns + pool)
 *    vs. the legacy layout, *materialized for real* as a vector of
 *    string-carrying records and accounted as vector storage plus
 *    the heap block behind every string that exceeds the SSO buffer;
 *  - ingest throughput: records/second appending interned rows into a
 *    fresh store (the runtime hook hot path: intern + columnar push);
 *  - end-to-end analysis wall clock: HB graph construction plus race
 *    detection over the columnar store, vs. the same analysis plus
 *    the legacy per-analysis overhead this PR deleted (full
 *    copy-and-sort materialization and string re-interning over all
 *    memory accesses).
 *
 * Results go to BENCH_trace_mem.json; scripts/bench_regress.sh gates
 * the memory ratio and analysis speedup against
 * scripts/trace_mem_floor.json (>= 1.3x smaller, >= 1.10x faster).
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/benchmark.hh"
#include "apps/mapreduce/mini_mr.hh"
#include "bench_common.hh"
#include "common/json.hh"
#include "common/util.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "runtime/sim.hh"
#include "trace/trace_store.hh"

namespace {

using namespace dcatch;

/** The pre-interning record layout, one heap string per text field. */
struct LegacyRecord
{
    trace::RecordType type;
    int node;
    int thread;
    std::uint64_t seq;
    std::int64_t aux;
    std::string site;
    std::string callstack;
    std::string id;
};

/** Materialize the legacy AoS copy of @p store (what the old
 *  allRecords() built on every call), sorted by global seq. */
std::vector<LegacyRecord>
materializeLegacy(const trace::TraceStore &store)
{
    std::vector<LegacyRecord> records;
    records.reserve(store.totalRecords());
    for (int t = 0; t < store.threadCount(); ++t) {
        for (trace::TraceStore::RecordView rec : store.threadLog(t)) {
            LegacyRecord legacy;
            legacy.type = rec.type();
            legacy.node = rec.node();
            legacy.thread = rec.thread();
            legacy.seq = rec.seq();
            legacy.aux = rec.aux();
            legacy.site = std::string(rec.site());
            legacy.callstack = std::string(rec.callstack());
            legacy.id = std::string(rec.id());
            records.push_back(std::move(legacy));
        }
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const LegacyRecord &a, const LegacyRecord &b) {
                         return a.seq < b.seq;
                     });
    return records;
}

/** Bytes held by the materialized legacy vector: slab + every
 *  string's heap block (strings within the SSO buffer cost nothing
 *  beyond the struct). */
std::size_t
legacyBytes(const std::vector<LegacyRecord> &records)
{
    const std::size_t sso = std::string().capacity();
    std::size_t bytes = records.capacity() * sizeof(LegacyRecord);
    auto heap = [&](const std::string &s) {
        return s.capacity() > sso ? s.capacity() + 1 : 0;
    };
    for (const LegacyRecord &rec : records)
        bytes += heap(rec.site) + heap(rec.callstack) + heap(rec.id);
    return bytes;
}

/** The per-analysis work the columnar substrate deleted: the full
 *  copy-and-sort materialization plus the detector's string
 *  re-interning pass over every memory access. */
double
legacyOverheadSec(const trace::TraceStore &store)
{
    Stopwatch watch;
    std::vector<LegacyRecord> records = materializeLegacy(store);
    std::unordered_map<std::string, std::uint32_t> interner;
    auto intern = [&](const std::string &text) {
        return interner
            .emplace(text, static_cast<std::uint32_t>(interner.size()))
            .first->second;
    };
    std::uint64_t checksum = 0;
    for (const LegacyRecord &rec : records) {
        if (rec.type != trace::RecordType::MemRead &&
            rec.type != trace::RecordType::MemWrite)
            continue;
        checksum += intern(rec.site) + intern(rec.callstack) +
                    intern(rec.id);
    }
    double sec = watch.milliseconds() / 1e3;
    // Keep the loop observable so the optimizer cannot drop it.
    if (checksum == 0xdeadbeefull)
        std::printf("(unreachable checksum)\n");
    return sec;
}

/** HB graph build + race detection (the analysis consumers of the
 *  trace substrate). */
double
analysisSec(const trace::TraceStore &store)
{
    Stopwatch watch;
    hb::HbGraph graph(store);
    detect::RaceDetector detector;
    std::size_t found = detector.detect(graph).size();
    double sec = watch.milliseconds() / 1e3;
    if (found == std::size_t(-1))
        std::printf("(unreachable)\n");
    return sec;
}

/** Re-ingest the trace through the runtime hot path (intern against
 *  a fresh pool + columnar append); returns records/second. */
double
ingestRecordsPerSec(const trace::TraceStore &store)
{
    std::vector<trace::Record> rows = store.mergedRecords();
    const trace::SymbolPool &src = store.symbols();
    Stopwatch watch;
    trace::TraceStore fresh;
    trace::SymbolPool &pool = fresh.symbols();
    for (trace::Record rec : rows) {
        rec.site = pool.intern(src.view(rec.site));
        rec.callstack = pool.intern(src.view(rec.callstack));
        rec.id = pool.intern(src.view(rec.id));
        fresh.append(rec);
    }
    double sec = watch.milliseconds() / 1e3;
    if (fresh.totalRecords() != rows.size())
        std::printf("(ingest dropped records!)\n");
    return sec > 0 ? double(rows.size()) / sec : 0.0;
}

template <class Fn>
double
bestOf(int reps, Fn &&fn)
{
    double best = fn();
    for (int i = 1; i < reps; ++i)
        best = std::min(best, fn());
    return best;
}

} // namespace

int
main()
{
    bench::banner("Trace memory",
                  "interned columnar store vs. legacy string records");

    bench::Table table({"Workload", "Records", "Columnar", "Legacy",
                        "Ratio", "Reduction"});
    Json benchmarks = Json::array();

    auto measureMemory = [&](const char *name,
                             const trace::TraceStore &store) {
        std::size_t columnar = store.memoryBytes();
        std::size_t legacy = legacyBytes(materializeLegacy(store));
        double ratio = columnar > 0 ? double(legacy) / double(columnar)
                                    : 0.0;
        double reduction =
            legacy > 0 ? 100.0 * (1.0 - double(columnar) / double(legacy))
                       : 0.0;
        table.row({name, strprintf("%zu", store.totalRecords()),
                   strprintf("%zu B", columnar),
                   strprintf("%zu B", legacy),
                   strprintf("%.2fx", ratio),
                   strprintf("%.1f%%", reduction)});
        benchmarks.push(Json::object()
            .set("benchmark", Json::str(name))
            .set("records",
                 Json::num(std::int64_t(store.totalRecords())))
            .set("columnarBytes", Json::num(std::int64_t(columnar)))
            .set("legacyBytes", Json::num(std::int64_t(legacy)))
            .set("memoryRatio", Json::num(ratio))
            .set("reductionPct", Json::num(reduction)));
        return ratio;
    };

    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        sim::Simulation sim(b.config);
        b.build(sim);
        sim.run();
        measureMemory(b.id.c_str(), sim.tracer().store());
    }

    // Large workload: MR Hang3274 at 256 submitted jobs — the trace
    // is big enough for trace handling to dominate the analysis and
    // for the per-record columnar saving to dwarf the pool's fixed
    // 64 KiB arena granularity (which dominates on the tiny
    // single-benchmark traces above).
    sim::SimConfig cfg;
    cfg.maxSteps = 100'000'000;
    sim::Simulation sim(cfg);
    apps::mr::install(sim, apps::mr::Workload::Hang3274, 256);
    sim.run();
    const trace::TraceStore &store = sim.tracer().store();
    double ratio = measureMemory("MR-3274 scale 256", store);
    table.print();

    double ingest = ingestRecordsPerSec(store);
    double columnar_sec = bestOf(3, [&] { return analysisSec(store); });
    double overhead_sec =
        bestOf(3, [&] { return legacyOverheadSec(store); });
    double legacy_sec = columnar_sec + overhead_sec;
    double speedup = columnar_sec > 0 ? legacy_sec / columnar_sec : 1.0;

    std::printf("\nLargest trace (%zu records):\n"
                "  ingest               %.0f records/sec\n"
                "  analysis (columnar)  %.2f ms\n"
                "  analysis (legacy)    %.2f ms  (+%.2f ms "
                "copy-sort+re-intern)\n"
                "  end-to-end speedup   %.2fx\n"
                "  memory ratio         %.2fx\n",
                store.totalRecords(), ingest, columnar_sec * 1e3,
                legacy_sec * 1e3, overhead_sec * 1e3, speedup, ratio);

    Json root = Json::object();
    root.set("bench", Json::str("trace_memory"))
        .set("benchmarks", std::move(benchmarks));
    Json largest = Json::object();
    largest.set("workload", Json::str("MR-3274 scale 256"))
        .set("records", Json::num(std::int64_t(store.totalRecords())))
        .set("columnarBytes",
             Json::num(std::int64_t(store.memoryBytes())))
        .set("ingestRecordsPerSec", Json::num(ingest))
        .set("columnarAnalysisSec", Json::num(columnar_sec))
        .set("legacyAnalysisSec", Json::num(legacy_sec))
        .set("legacyOverheadSec", Json::num(overhead_sec))
        .set("memoryRatio", Json::num(ratio))
        .set("analysisSpeedup", Json::num(speedup));
    root.set("largest", std::move(largest));
    std::ofstream out("BENCH_trace_mem.json");
    out << root.dump() << "\n";
    std::printf("wrote BENCH_trace_mem.json\n");
    return 0;
}
