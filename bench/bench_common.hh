/**
 * @file
 * Shared helpers for the table-regeneration benches: fixed-width table
 * printing and pipeline shortcuts.  Each bench binary regenerates one
 * table of the DCatch paper's evaluation, printing measured values
 * next to the paper's (absolute numbers differ — our substrate is a
 * deterministic simulator, not the authors' testbed — but the shapes
 * must match; EXPERIMENTS.md records both).
 */

#ifndef DCATCH_BENCH_BENCH_COMMON_HH
#define DCATCH_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/task_pool.hh"

namespace dcatch::bench {

/**
 * Workload-scale cap for CI smoke runs: DCATCH_BENCH_SMOKE_SCALE if
 * set (>= 1), else INT_MAX.  The bench-smoke CI job exports a tiny
 * value so every driver finishes in seconds while still executing its
 * full code path — determinism and shape assertions included.  Unset
 * (the default, and every perf-gated bench_regress.sh run) leaves
 * workloads at full scale, so the numbers the floors gate never see
 * the cap.
 */
inline int
smokeScaleCap()
{
    if (const char *env = std::getenv("DCATCH_BENCH_SMOKE_SCALE")) {
        char *end = nullptr;
        long parsed = std::strtol(env, &end, 10);
        if (end && *end == '\0' && parsed >= 1)
            return static_cast<int>(parsed);
    }
    return INT_MAX;
}

/** @p full capped at the smoke scale (identity unless the knob is set). */
inline int
smokeScale(int full)
{
    return std::min(full, smokeScaleCap());
}

/**
 * Worker count for parallel bench drivers: DCATCH_BENCH_JOBS if set
 * (>= 1; anything unparsable or < 1 falls back), else hardware
 * concurrency.  Timing-sensitive benches (Table 6) call this too but
 * default to 1 via the fallback argument, so their measured wall
 * clocks stay comparable run-to-run unless the user opts in.
 */
inline int
jobsFromEnv(int fallback = 0)
{
    if (const char *env = std::getenv("DCATCH_BENCH_JOBS")) {
        char *end = nullptr;
        long parsed = std::strtol(env, &end, 10);
        if (end && *end == '\0' && parsed >= 1)
            return static_cast<int>(parsed);
    }
    return TaskPool::resolveJobs(fallback);
}

/** Minimal fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    /** Append one row (must match the header count). */
    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Print with per-column auto width. */
    void
    print() const
    {
        std::vector<std::size_t> widths(headers_.size(), 0);
        auto widen = [&](const std::vector<std::string> &cells) {
            for (std::size_t i = 0; i < cells.size() && i < widths.size();
                 ++i)
                if (cells[i].size() > widths[i])
                    widths[i] = cells[i].size();
        };
        widen(headers_);
        for (const auto &r : rows_)
            widen(r);

        auto print_row = [&](const std::vector<std::string> &cells) {
            std::printf("|");
            for (std::size_t i = 0; i < widths.size(); ++i) {
                const std::string &cell =
                    i < cells.size() ? cells[i] : std::string();
                std::printf(" %-*s |", static_cast<int>(widths[i]),
                            cell.c_str());
            }
            std::printf("\n");
        };
        auto print_sep = [&] {
            std::printf("+");
            for (std::size_t w : widths) {
                for (std::size_t i = 0; i < w + 2; ++i)
                    std::printf("-");
                std::printf("+");
            }
            std::printf("\n");
        };
        print_sep();
        print_row(headers_);
        print_sep();
        for (const auto &r : rows_)
            print_row(r);
        print_sep();
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a bench banner. */
inline void
banner(const char *table, const char *what)
{
    std::printf("\n=== DCatch-C++ — %s: %s ===\n", table, what);
}

} // namespace dcatch::bench

#endif // DCATCH_BENCH_BENCH_COMMON_HH
