/**
 * @file
 * Trace-analysis scalability (the Table 6 claim: "it scales well,
 * roughly linearly, with the trace size").  The MapReduce workload is
 * scaled by the number of submitted jobs, the HBase workload by the
 * number of regions; for each size the bench analyses the same trace
 * with both fixed reachability engines — the chain-frontier
 * decomposition DCatch adopts (section 3.2.2, Raychev et al.) and the
 * dense bit-array baseline — plus the adaptive selector
 * (Engine::Auto), recording which engine it picked and the decision
 * inputs it saw.  Detection of the known root-cause bug must hold at
 * every scale on every engine, or the bench exits nonzero.
 * scripts/bench_regress.sh additionally gates that auto's
 * build+detect time stays within 5% (plus a sub-millisecond timer
 * allowance) of the better fixed engine at every scale.
 *
 * Results are also written to BENCH_scaling.json for regression
 * tracking (scripts/bench_regress.sh).
 *
 * The untimed workload executions (which dominate wall clock) run
 * concurrently on a TaskPool (DCATCH_BENCH_JOBS, default hardware
 * concurrency); the *timed* build/detect measurements then run
 * serially in case order on an otherwise idle process, so the
 * parallel warm-up cannot distort the numbers the regression gate
 * reads.
 */

#include "apps/hbase/mini_hbase.hh"
#include "apps/mapreduce/mini_mr.hh"
#include "bench_common.hh"
#include "common/json.hh"
#include "common/task_pool.hh"
#include "common/util.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "runtime/sim.hh"

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <vector>

int
main()
{
    using namespace dcatch;
    bench::banner("Scaling",
                  "trace analysis vs. workload size, per engine");

    bench::Table table({"Workload", "Scale", "Records", "Engine",
                        "Graph build", "Detect", "us/record",
                        "ReachBytes", "Candidates", "bug found"});
    std::string bug = detect::sitePair(apps::mr::kGetTaskRead,
                                       apps::mr::kUnregRemove);
    bool all_found = true;
    struct Case
    {
        const char *name;
        int scale;
        std::function<void(sim::Simulation &)> build;
        std::string bugPair;
    };
    std::vector<Case> cases;
    for (int jobs : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
        if (jobs > bench::smokeScaleCap())
            continue;
        cases.push_back({"MR jobs", jobs,
                         [jobs](sim::Simulation &sim) {
                             apps::mr::install(
                                 sim, apps::mr::Workload::Hang3274, jobs);
                         },
                         bug});
    }
    std::string hb_bug = detect::sitePair(apps::hb::kAlterEmpty,
                                          apps::hb::kSplitPut);
    for (int regions : {1, 2, 4, 8, 16, 32}) {
        if (regions > bench::smokeScaleCap())
            continue;
        cases.push_back(
            {"HB regions", regions,
             [regions](sim::Simulation &sim) {
                 apps::hb::install(
                     sim, apps::hb::Workload::SplitAlter4539, regions);
             },
             hb_bug});
    }

    Json json_cases = Json::array();
    // Memory ratio and build speedup at the largest trace (acceptance
    // check: the chain engine must be >= 5x smaller than dense there).
    std::size_t largest_records = 0;
    double largest_ratio = 0;
    double largest_chain_build = 0, largest_dense_build = 0;

    // Phase 1 (parallel, untimed): execute every workload and keep its
    // trace.  Phase 2 below does the timed analysis serially.
    std::vector<std::unique_ptr<sim::Simulation>> sims(cases.size());
    std::vector<sim::RunResult> runs(cases.size());
    {
        TaskPool pool(bench::jobsFromEnv());
        pool.parallelFor(cases.size(), [&](std::size_t i) {
            sim::SimConfig cfg;
            cfg.maxSteps = 100'000'000;
            sims[i] = std::make_unique<sim::Simulation>(cfg);
            cases[i].build(*sims[i]);
            runs[i] = sims[i]->run();
        });
    }

    for (std::size_t case_index = 0; case_index < cases.size();
         ++case_index) {
        const Case &c = cases[case_index];
        sim::Simulation &sim = *sims[case_index];
        const sim::RunResult &run = runs[case_index];
        if (run.failed())
            std::printf("!! %s scale %d failed: %s\n", c.name, c.scale,
                        run.summary().c_str());
        std::size_t records = sim.tracer().store().totalRecords();

        Json entry = Json::object();
        entry.set("workload", Json::str(c.name))
            .set("scale", Json::num(static_cast<std::int64_t>(c.scale)))
            .set("records",
                 Json::num(static_cast<std::int64_t>(records)));
        Json engines = Json::object();

        double build_by_engine[2] = {0, 0};
        std::size_t bytes_by_engine[2] = {0, 0};
        for (hb::HbGraph::Engine engine :
             {hb::HbGraph::Engine::ChainFrontier,
              hb::HbGraph::Engine::Dense, hb::HbGraph::Engine::Auto}) {
            hb::HbGraph::Options graph_options;
            graph_options.engine = engine;
            Stopwatch watch;
            hb::HbGraph graph(sim.tracer().store(), graph_options);
            double build_ms = watch.milliseconds();

            watch.reset();
            detect::RaceDetector detector;
            auto candidates = detector.detect(graph);
            double detect_ms = watch.milliseconds();

            bool found = false;
            for (const auto &cand : candidates)
                if (cand.sitePairKey() == c.bugPair)
                    found = true;
            all_found &= found;

            double total_sec = (build_ms + detect_ms) / 1e3;
            double records_per_sec =
                total_sec > 0
                    ? static_cast<double>(records) / total_sec
                    : 0;
            bool is_auto = engine == hb::HbGraph::Engine::Auto;
            if (!is_auto) {
                bool dense = engine == hb::HbGraph::Engine::Dense;
                build_by_engine[dense ? 1 : 0] = build_ms;
                bytes_by_engine[dense ? 1 : 0] = graph.reachBytes();
            }

            table.row({c.name, strprintf("%d", c.scale),
                       strprintf("%zu", records),
                       is_auto ? strprintf("auto>%s", graph.engineName())
                               : std::string(graph.engineName()),
                       strprintf("%.2fms", build_ms),
                       strprintf("%.2fms", detect_ms),
                       strprintf("%.2f",
                                 (build_ms + detect_ms) * 1e3 /
                                     static_cast<double>(records)),
                       strprintf("%zu", graph.reachBytes()),
                       strprintf("%zu", candidates.size()),
                       found ? "yes" : "NO"});

            Json stats = Json::object();
            stats.set("buildMs", Json::num(build_ms))
                .set("detectMs", Json::num(detect_ms))
                .set("recordsPerSec", Json::num(records_per_sec))
                .set("reachBytes",
                     Json::num(static_cast<std::int64_t>(
                         graph.reachBytes())))
                .set("chains",
                     Json::num(static_cast<std::int64_t>(
                         graph.chainCount())))
                .set("frontierRows",
                     Json::num(static_cast<std::int64_t>(
                         graph.frontierRows())))
                .set("incrementalUpdates",
                     Json::num(static_cast<std::int64_t>(
                         graph.incrementalUpdates())))
                .set("candidates",
                     Json::num(static_cast<std::int64_t>(
                         candidates.size())))
                .set("bugFound", Json::boolean(found));
            if (is_auto) {
                // The crossover decision and the inputs it keyed on
                // (bench_regress gates auto against the better fixed
                // engine using these rows).
                const hb::HbGraph::EngineDecision &d = graph.decision();
                Json decision = Json::object();
                decision
                    .set("resolved", Json::str(graph.engineName()))
                    .set("vertices",
                         Json::num(static_cast<std::int64_t>(
                             d.vertices)))
                    .set("threads",
                         Json::num(static_cast<std::int64_t>(
                             d.threads)))
                    .set("crossEdges",
                         Json::num(static_cast<std::int64_t>(
                             d.crossEdges)))
                    .set("denseBytes",
                         Json::num(static_cast<std::int64_t>(
                             d.denseBytes)))
                    .set("effectiveCutoff",
                         Json::num(static_cast<std::int64_t>(
                             d.effectiveCutoff)));
                stats.set("decision", std::move(decision));
            }
            engines.set(hb::HbGraph::name(engine), std::move(stats));
        }
        entry.set("engines", std::move(engines));
        json_cases.push(std::move(entry));

        if (records > largest_records && bytes_by_engine[0] > 0) {
            largest_records = records;
            largest_ratio = static_cast<double>(bytes_by_engine[1]) /
                            static_cast<double>(bytes_by_engine[0]);
            largest_chain_build = build_by_engine[0];
            largest_dense_build = build_by_engine[1];
        }
    }
    table.print();

    bool chain_smaller = largest_ratio >= 5.0;
    bool chain_faster = largest_chain_build < largest_dense_build;
    std::printf(
        "Shape check: analysis cost grows smoothly with trace size, "
        "the root-cause bug is found at every scale on both engines — "
        "%s; at the largest trace (%zu records) the chain engine uses "
        "%.1fx less reachability memory than dense (build %.2fms vs "
        "%.2fms).\n",
        all_found ? "holds" : "VIOLATED", largest_records,
        largest_ratio, largest_chain_build, largest_dense_build);

    Json root = Json::object();
    root.set("bench", Json::str("scaling"))
        .set("cases", std::move(json_cases));
    Json largest = Json::object();
    largest
        .set("records",
             Json::num(static_cast<std::int64_t>(largest_records)))
        .set("denseOverChainMemoryRatio", Json::num(largest_ratio))
        .set("chainBuildMs", Json::num(largest_chain_build))
        .set("denseBuildMs", Json::num(largest_dense_build))
        .set("chainSmaller5x", Json::boolean(chain_smaller))
        .set("chainBuildFaster", Json::boolean(chain_faster));
    root.set("largestTrace", std::move(largest))
        .set("allBugsFound", Json::boolean(all_found));
    std::ofstream out("BENCH_scaling.json");
    out << root.dump() << "\n";
    std::printf("wrote BENCH_scaling.json\n");

    return all_found ? 0 : 1;
}
