/**
 * @file
 * Trace-analysis scalability (the Table 6 claim: "it scales well,
 * roughly linearly, with the trace size").  The MapReduce workload is
 * scaled by the number of submitted jobs; for each size the bench
 * reports trace records, HB-graph build+closure time, detection time,
 * and the per-record analysis cost — which should stay in the same
 * ballpark as the trace grows (closure is the quadratic-in-theory
 * term; at these densities the word-parallel bit sets keep it flat).
 * Detection of the known MR-3274 bug must hold at every scale.
 */

#include "apps/hbase/mini_hbase.hh"
#include "apps/mapreduce/mini_mr.hh"
#include "bench_common.hh"
#include "common/util.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "runtime/sim.hh"

#include <functional>
#include <vector>

int
main()
{
    using namespace dcatch;
    bench::banner("Scaling", "trace analysis vs. workload size");

    bench::Table table({"Workload", "Scale", "Records", "Graph build",
                        "Detect", "us/record", "Candidates",
                        "bug found"});
    std::string bug = detect::sitePair(apps::mr::kGetTaskRead,
                                       apps::mr::kUnregRemove);
    bool all_found = true;
    struct Case
    {
        const char *name;
        int scale;
        std::function<void(sim::Simulation &)> build;
        std::string bugPair;
    };
    std::vector<Case> cases;
    for (int jobs : {1, 2, 4, 8, 16})
        cases.push_back({"MR jobs", jobs,
                         [jobs](sim::Simulation &sim) {
                             apps::mr::install(
                                 sim, apps::mr::Workload::Hang3274, jobs);
                         },
                         bug});
    std::string hb_bug = detect::sitePair(apps::hb::kAlterEmpty,
                                          apps::hb::kSplitPut);
    for (int regions : {1, 2, 4, 8})
        cases.push_back(
            {"HB regions", regions,
             [regions](sim::Simulation &sim) {
                 apps::hb::install(
                     sim, apps::hb::Workload::SplitAlter4539, regions);
             },
             hb_bug});

    for (const Case &c : cases) {
        sim::SimConfig cfg;
        cfg.maxSteps = 10'000'000;
        sim::Simulation sim(cfg);
        c.build(sim);
        sim::RunResult run = sim.run();
        if (run.failed())
            std::printf("!! %s scale %d failed: %s\n", c.name, c.scale,
                        run.summary().c_str());

        Stopwatch watch;
        hb::HbGraph graph(sim.tracer().store());
        double build_ms = watch.milliseconds();

        watch.reset();
        detect::RaceDetector detector;
        auto candidates = detector.detect(graph);
        double detect_ms = watch.milliseconds();

        bool found = false;
        for (const auto &cand : candidates)
            if (cand.sitePairKey() == c.bugPair)
                found = true;
        all_found &= found;

        std::size_t records = sim.tracer().store().totalRecords();
        table.row({c.name, strprintf("%d", c.scale),
                   strprintf("%zu", records),
                   strprintf("%.2fms", build_ms),
                   strprintf("%.2fms", detect_ms),
                   strprintf("%.2f",
                             (build_ms + detect_ms) * 1e3 /
                                 static_cast<double>(records)),
                   strprintf("%zu", candidates.size()),
                   found ? "yes" : "NO"});
    }
    table.print();
    std::printf("Shape check: analysis cost grows smoothly with trace "
                "size and the root-cause bug is found at every scale — "
                "%s.\n",
                all_found ? "holds" : "VIOLATED");
    return all_found ? 0 : 1;
}
