/**
 * @file
 * Regenerates Table 4: DCatch bug-detection results.  For every
 * benchmark, the full pipeline (trace -> HB analysis -> static pruning
 * -> loop analysis -> triggering) runs on a correct execution, and the
 * final reports are classified as true bugs, benign races, or serial
 * (HB-ordered) reports — by unique static-instruction pair and by
 * unique callstack pair.  The subscript convention of the paper
 * (reports tied to the known root-cause bug) is printed alongside.
 *
 * The per-benchmark pipelines are independent, so they run on a
 * TaskPool (DCATCH_BENCH_JOBS, default hardware concurrency); each
 * inner pipeline runs serially (jobs=1) since the outer fan-out
 * already saturates the workers.  Rows are printed in benchmark
 * order from index-addressed slots, so the table is identical for
 * any worker count.
 */

#include <vector>

#include "apps/benchmark.hh"
#include "bench_common.hh"
#include "common/task_pool.hh"
#include "common/util.hh"
#include "dcatch/pipeline.hh"

int
main()
{
    using namespace dcatch;
    bench::banner("Table 4", "DCatch bug detection results");

    const std::vector<apps::Benchmark> &benches = apps::allBenchmarks();
    TaskPool pool(bench::jobsFromEnv());
    std::vector<Classification> classes(benches.size());
    pool.parallelFor(benches.size(), [&](std::size_t i) {
        PipelineOptions options;
        options.measureBase = false;
        options.runTrigger = true;
        options.jobs = 1;
        PipelineResult result = runPipeline(benches[i], options);
        classes[i] = classify(benches[i], result);
    });

    bench::Table table({"BugID", "Detected?", "Bug(S)", "Benign(S)",
                        "Serial(S)", "Bug(C)", "Benign(C)", "Serial(C)",
                        "paper Bug/Benign/Serial (S)"});
    int total_bug_s = 0, total_benign_s = 0, total_serial_s = 0;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const apps::Benchmark &b = benches[i];
        const Classification &cls = classes[i];
        total_bug_s += cls.bugStatic;
        total_benign_s += cls.benignStatic;
        total_serial_s += cls.serialStatic;
        table.row({b.id, cls.knownBugDetected ? "yes" : "NO",
                   strprintf("%d (known: %d)", cls.bugStatic,
                             cls.knownBugStatic),
                   strprintf("%d", cls.benignStatic),
                   strprintf("%d", cls.serialStatic),
                   strprintf("%d", cls.bugCallstack),
                   strprintf("%d", cls.benignCallstack),
                   strprintf("%d", cls.serialCallstack),
                   strprintf("%d/%d/%d", b.paper.bugStatic,
                             b.paper.benignStatic, b.paper.serialStatic)});
    }
    table.print();
    std::printf("Totals (static): bug=%d benign=%d serial=%d   "
                "(paper totals: 20/5/7)\n",
                total_bug_s, total_benign_s, total_serial_s);
    std::printf("Shape check: every benchmark's known root-cause DCbug "
                "is detected from a correct run and confirmed harmful; "
                "benign and serial reports are the minority.\n");
    return 0;
}
