/**
 * @file
 * Regenerates Table 5: number of DCbug candidates reported by trace
 * analysis alone (TA), plus static pruning (TA+SP), plus loop-based
 * synchronization analysis (TA+SP+LP) — static-instruction-pair and
 * callstack-pair counts.
 *
 * Benchmarks run concurrently on a TaskPool (DCATCH_BENCH_JOBS,
 * default hardware concurrency); rows merge in benchmark order so
 * the table is identical for any worker count.
 */

#include <vector>

#include "apps/benchmark.hh"
#include "bench_common.hh"
#include "common/task_pool.hh"
#include "common/util.hh"
#include "dcatch/pipeline.hh"

int
main()
{
    using namespace dcatch;
    bench::banner("Table 5", "candidates after TA / TA+SP / TA+SP+LP");

    const std::vector<apps::Benchmark> &benches = apps::allBenchmarks();
    TaskPool pool(bench::jobsFromEnv());
    struct Row
    {
        detect::ReportCounts ta, sp, lp;
    };
    std::vector<Row> rows(benches.size());
    pool.parallelFor(benches.size(), [&](std::size_t i) {
        PipelineOptions options;
        options.measureBase = false;
        options.jobs = 1;
        PipelineResult result = runPipeline(benches[i], options);
        rows[i] = {detect::countReports(result.afterTa),
                   detect::countReports(result.afterSp),
                   detect::countReports(result.afterLp)};
    });

    bench::Table table({"BugID", "TA(S)", "TA+SP(S)", "TA+SP+LP(S)",
                        "TA(C)", "TA+SP(C)", "TA+SP+LP(C)",
                        "paper (S): TA/SP/LP"});
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const apps::Benchmark &b = benches[i];
        const auto &[ta, sp, lp] = rows[i];
        table.row({b.id, strprintf("%d", ta.staticPairs),
                   strprintf("%d", sp.staticPairs),
                   strprintf("%d", lp.staticPairs),
                   strprintf("%d", ta.callstackPairs),
                   strprintf("%d", sp.callstackPairs),
                   strprintf("%d", lp.callstackPairs),
                   strprintf("%d/%d/%d", b.paper.taStatic,
                             b.paper.taSpStatic, b.paper.taSpLpStatic)});
    }
    table.print();
    std::printf("Shape check: TA >= TA+SP >= TA+SP+LP for every "
                "benchmark; static pruning removes the majority of raw "
                "candidates, and loop analysis prunes pull-synchronized "
                "pairs on top (paper: <10%% of candidates survive SP for "
                "CA/HB/MR).\n");
    return 0;
}
