/**
 * @file
 * Regenerates Table 5: number of DCbug candidates reported by trace
 * analysis alone (TA), plus static pruning (TA+SP), plus loop-based
 * synchronization analysis (TA+SP+LP) — static-instruction-pair and
 * callstack-pair counts.
 */

#include "apps/benchmark.hh"
#include "bench_common.hh"
#include "common/util.hh"
#include "dcatch/pipeline.hh"

int
main()
{
    using namespace dcatch;
    bench::banner("Table 5", "candidates after TA / TA+SP / TA+SP+LP");

    bench::Table table({"BugID", "TA(S)", "TA+SP(S)", "TA+SP+LP(S)",
                        "TA(C)", "TA+SP(C)", "TA+SP+LP(C)",
                        "paper (S): TA/SP/LP"});
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        PipelineOptions options;
        options.measureBase = false;
        PipelineResult result = runPipeline(b, options);
        auto ta = detect::countReports(result.afterTa);
        auto sp = detect::countReports(result.afterSp);
        auto lp = detect::countReports(result.afterLp);
        table.row({b.id, strprintf("%d", ta.staticPairs),
                   strprintf("%d", sp.staticPairs),
                   strprintf("%d", lp.staticPairs),
                   strprintf("%d", ta.callstackPairs),
                   strprintf("%d", sp.callstackPairs),
                   strprintf("%d", lp.callstackPairs),
                   strprintf("%d/%d/%d", b.paper.taStatic,
                             b.paper.taSpStatic, b.paper.taSpLpStatic)});
    }
    table.print();
    std::printf("Shape check: TA >= TA+SP >= TA+SP+LP for every "
                "benchmark; static pruning removes the majority of raw "
                "candidates, and loop analysis prunes pull-synchronized "
                "pairs on top (paper: <10%% of candidates survive SP for "
                "CA/HB/MR).\n");
    return 0;
}
