/**
 * @file
 * Regenerates Table 3: the benchmark inventory (workload, symptom,
 * error pattern, root cause) plus the measured monitored-run size of
 * each mini system.
 */

#include "apps/benchmark.hh"
#include "bench_common.hh"
#include "common/util.hh"
#include "runtime/sim.hh"

int
main()
{
    using namespace dcatch;
    bench::banner("Table 3", "benchmark bugs and applications");

    bench::Table table({"BugID", "System", "Workload", "Symptom", "Error",
                        "Root", "Steps", "Threads", "Nodes"});
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        sim::Simulation sim(b.config);
        b.build(sim);
        sim::RunResult result = sim.run();
        int threads = sim.tracer().store().threadCount();
        table.row({b.id, b.system, b.workload, b.symptom, b.error,
                   b.rootCause,
                   strprintf("%llu",
                             static_cast<unsigned long long>(result.steps)),
                   strprintf("%d", threads),
                   strprintf("%d", sim.nodeCount())});
        if (result.failed())
            std::printf("!! monitored run of %s failed: %s\n",
                        b.id.c_str(), result.summary().c_str());
    }
    table.print();
    std::printf("All monitored runs are failure-free: DCatch predicts "
                "the bugs from correct executions.\n");
    return 0;
}
