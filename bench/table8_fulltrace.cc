/**
 * @file
 * Regenerates Table 8: the cost of unselective (full) memory-access
 * tracing versus DCatch's selective scope.  Full tracing inflates the
 * trace (the paper reports up to ~40x) and pushes the HB analysis
 * past its memory budget for the larger workloads — the paper's
 * "Out of Memory" rows are reproduced by running the analysis under a
 * deliberately tight reachable-set budget.
 */

#include "apps/benchmark.hh"
#include "bench_common.hh"
#include "common/util.hh"
#include "dcatch/pipeline.hh"

int
main()
{
    using namespace dcatch;
    bench::banner("Table 8", "full (unselective) memory tracing");

    // A tight budget stands in for the paper's 50 GB JVM heap: big
    // enough for every selective trace, small enough that the largest
    // full traces exceed it.  The emulation models the dense O(V^2)
    // ancestor sets — the chain-frontier engine fits these traces in
    // the same budget — so the dense engine is requested explicitly.
    constexpr std::size_t kTightBudget = 512ull << 10; // 512 KiB

    bench::Table table({"BugID", "Sel.TraceSize", "Full.TraceSize",
                        "Blowup", "Sel.Analysis", "Full.Analysis",
                        "paper full-trace (MB)"});
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        PipelineOptions selective;
        selective.measureBase = false;
        selective.staticPruning = false;
        selective.loopAnalysis = false;
        selective.memoryBudgetBytes = kTightBudget;
        selective.hbEngine = hb::HbGraph::Engine::Dense;
        PipelineOptions full = selective;
        full.fullMemoryTrace = true;

        PipelineResult s = runPipeline(b, selective);
        PipelineResult f = runPipeline(b, full);

        auto analysis = [](const PipelineResult &r) {
            if (r.analysisOom)
                return std::string("Out of Memory");
            return strprintf("%.2fms", r.metrics.analysisSec * 1e3);
        };
        table.row(
            {b.id, strprintf("%.1fKB", s.metrics.traceBytes / 1024.0),
             strprintf("%.1fKB", f.metrics.traceBytes / 1024.0),
             strprintf("%.1fx", static_cast<double>(f.metrics.traceBytes) /
                                    static_cast<double>(
                                        s.metrics.traceBytes)),
             analysis(s), analysis(f),
             strprintf("%.0f", b.paper.fullTraceMB)});
    }
    table.print();
    std::printf("Shape check (paper Table 8): full tracing inflates "
                "traces by a large factor and the HB analysis of the "
                "biggest full traces exhausts its memory budget, while "
                "every selective trace is analysable — the selective "
                "scope policy of section 3.1.1 is what makes DCatch "
                "scale.\n");
    return 0;
}
