/**
 * @file
 * Regenerates the triggering statistics of section 7.2: how many
 * reports the trigger module confirms as true races, how many cause
 * severe failures, how many are exposed as false positives (serial),
 * and how often the request-placement analysis had to relocate
 * request points to avoid hangs (the paper: 23 of 35 true races
 * needed non-naive placement).
 */

#include <map>

#include "apps/benchmark.hh"
#include "bench_common.hh"
#include "common/util.hh"
#include "dcatch/pipeline.hh"

int
main()
{
    using namespace dcatch;
    bench::banner("Trigger stats (section 7.2)",
                  "triggering and placement analysis");

    int total = 0, harmful = 0, benign = 0, serial = 0, relocated = 0;
    std::map<std::string, int> relocation_reasons;
    bench::Table table({"BugID", "Reports", "Harmful", "Benign", "Serial",
                        "Relocated placements"});
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        PipelineOptions options;
        options.measureBase = false;
        options.runTrigger = true;
        PipelineResult result = runPipeline(b, options);
        int h = 0, be = 0, se = 0, rel = 0;
        for (const auto &report : result.triggered) {
            ++total;
            switch (report.cls) {
              case trigger::TriggerClass::Harmful: ++h; break;
              case trigger::TriggerClass::Benign: ++be; break;
              case trigger::TriggerClass::Serial: ++se; break;
            }
            if (report.placement.relocated) {
                ++rel;
                ++relocation_reasons[report.placement.rationale];
            }
        }
        harmful += h;
        benign += be;
        serial += se;
        relocated += rel;
        table.row({b.id, strprintf("%zu", result.triggered.size()),
                   strprintf("%d", h), strprintf("%d", be),
                   strprintf("%d", se), strprintf("%d", rel)});
    }
    table.print();
    std::printf("Totals: %d reports -> %d harmful, %d benign, %d serial; "
                "%d placements relocated.\n",
                total, harmful, benign, serial, relocated);
    std::printf("Relocation reasons:\n");
    for (const auto &[reason, count] : relocation_reasons)
        std::printf("  %2dx %s\n", count, reason.c_str());
    std::printf("Paper: 47 callstack reports -> 35 true races (23 with "
                "severe failures), 12 serial false positives; naive "
                "placement failed for 23 of the 35 true races.\n");
    return 0;
}
