/**
 * @file
 * Prediction-robustness sweep: DCatch claims to find DCbugs by
 * monitoring *correct* runs, i.e. without needing the lucky buggy
 * interleaving.  This bench runs every benchmark under many random
 * schedules and reports, per benchmark: how many seeds produced a
 * correct run, and in how many of those correct runs trace analysis
 * still reported the known root-cause pair.  (Seeds whose schedule
 * happens to trigger the bug are counted separately — their existence
 * is itself evidence the bugs are real.)
 */

#include "apps/benchmark.hh"
#include "bench_common.hh"
#include "common/util.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "runtime/sim.hh"

int
main()
{
    using namespace dcatch;
    bench::banner("Seed sweep", "prediction from correct runs only");

    constexpr int kSeeds = 20;
    bench::Table table({"BugID", "Seeds", "Correct runs",
                        "Bug predicted", "Schedule hit bug"});
    bool all_predicted = true;
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        int correct = 0, predicted = 0, manifested = 0;
        for (int seed = 1; seed <= kSeeds; ++seed) {
            sim::SimConfig cfg = b.config;
            cfg.policy = sim::PolicyKind::Random;
            cfg.seed = static_cast<std::uint64_t>(seed * 7919);
            sim::Simulation sim(cfg);
            b.build(sim);
            sim::RunResult run = sim.run();
            if (run.failed()) {
                ++manifested;
                continue;
            }
            ++correct;
            hb::HbGraph graph(sim.tracer().store());
            detect::RaceDetector detector;
            bool found = false;
            for (const auto &cand : detector.detect(graph))
                for (const auto &pair : b.knownBugPairs)
                    if (cand.sitePairKey() == pair)
                        found = true;
            if (found)
                ++predicted;
            else
                all_predicted = false;
        }
        table.row({b.id, strprintf("%d", kSeeds),
                   strprintf("%d", correct), strprintf("%d", predicted),
                   strprintf("%d", manifested)});
    }
    table.print();
    std::printf("Shape check: in every correct run, under every "
                "schedule, the known bug is predicted — %s.  The rare "
                "seeds whose schedule manifests the failure directly "
                "confirm the bugs are real and timing-dependent.\n",
                all_predicted ? "holds" : "VIOLATED");
    return all_predicted ? 0 : 1;
}
