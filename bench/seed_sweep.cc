/**
 * @file
 * Prediction-robustness sweep: DCatch claims to find DCbugs by
 * monitoring *correct* runs, i.e. without needing the lucky buggy
 * interleaving.  This bench runs every benchmark under many random
 * schedules and reports, per benchmark: how many seeds produced a
 * correct run, and in how many of those correct runs trace analysis
 * still reported the known root-cause pair.  (Seeds whose schedule
 * happens to trigger the bug are counted separately — their existence
 * is itself evidence the bugs are real.)
 *
 * Every run is recorded as a ScheduleLog; each failing seed is
 * exported as a repro bundle under SEED_SWEEP_bundles/ and immediately
 * replay-verified (identical trace + failure kinds).  Results are
 * mirrored to BENCH_seed_sweep.json.
 */

#include <fstream>

#include "apps/benchmark.hh"
#include "bench_common.hh"
#include "common/json.hh"
#include "common/util.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "replay/bundle.hh"
#include "replay/driver.hh"
#include "replay/policies.hh"
#include "runtime/sim.hh"

int
main()
{
    using namespace dcatch;
    bench::banner("Seed sweep", "prediction from correct runs only");

    constexpr int kSeeds = 20;
    bench::Table table({"BugID", "Seeds", "Correct runs",
                        "Bug predicted", "Schedule hit bug", "Bundles"});
    bool all_predicted = true;
    bool all_bundles_verified = true;
    Json benchmarks = Json::array();
    Json bundles = Json::array();
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        int correct = 0, predicted = 0, manifested = 0, bundled = 0;
        for (int seed = 1; seed <= kSeeds; ++seed) {
            sim::SimConfig cfg = b.config;
            cfg.policy = sim::PolicyKind::Random;
            cfg.seed = static_cast<std::uint64_t>(seed * 7919);
            sim::Simulation sim(cfg);
            replay::ScheduleLog log;
            replay::attachRecorder(sim, log);
            b.build(sim);
            sim::RunResult run = sim.run();
            if (run.failed()) {
                ++manifested;
                // A manifesting seed is the most valuable artifact the
                // sweep produces: export it as a replayable bundle.
                replay::ScheduleHeader &header = log.header;
                header = replay::headerFromConfig(cfg);
                header.benchmarkId = b.id;
                header.label = strprintf("seed-sweep seed %llu",
                    (unsigned long long)cfg.seed);
                for (const sim::FailureEvent &failure : run.failures)
                    header.expectedFailureKinds.push_back(
                        sim::failureKindName(failure.kind));
                header.traceChecksum =
                    sim.tracer().store().contentDigest();
                header.traceRecords =
                    sim.tracer().store().totalRecords();

                Json failures = Json::array();
                for (const sim::FailureEvent &failure : run.failures)
                    failures.push(Json::str(
                        sim::failureKindName(failure.kind)));
                std::string dir = replay::writeBundle(
                    strprintf("SEED_SWEEP_bundles/%s-seed%d",
                              b.id.c_str(), seed),
                    log,
                    Json::object()
                        .set("kind", Json::str("seed-sweep"))
                        .set("benchmark", Json::str(b.id))
                        .set("seed", Json::num(
                            std::int64_t(cfg.seed)))
                        .set("failures", std::move(failures))
                        .dump());
                bool verified = replay::replayLog(log).identical();
                if (!verified)
                    all_bundles_verified = false;
                ++bundled;
                bundles.push(Json::object()
                    .set("benchmark", Json::str(b.id))
                    .set("seed", Json::num(std::int64_t(cfg.seed)))
                    .set("path", Json::str(dir))
                    .set("replayVerified", Json::boolean(verified)));
                continue;
            }
            ++correct;
            hb::HbGraph graph(sim.tracer().store());
            detect::RaceDetector detector;
            bool found = false;
            for (const auto &cand : detector.detect(graph))
                for (const auto &pair : b.knownBugPairs)
                    if (cand.sitePairKey() == pair)
                        found = true;
            if (found)
                ++predicted;
            else
                all_predicted = false;
        }
        table.row({b.id, strprintf("%d", kSeeds),
                   strprintf("%d", correct), strprintf("%d", predicted),
                   strprintf("%d", manifested),
                   strprintf("%d", bundled)});
        benchmarks.push(Json::object()
            .set("benchmark", Json::str(b.id))
            .set("seeds", Json::num(std::int64_t(kSeeds)))
            .set("correctRuns", Json::num(std::int64_t(correct)))
            .set("bugPredicted", Json::num(std::int64_t(predicted)))
            .set("scheduleHitBug", Json::num(std::int64_t(manifested))));
    }
    table.print();
    std::printf("Shape check: in every correct run, under every "
                "schedule, the known bug is predicted — %s.  The rare "
                "seeds whose schedule manifests the failure directly "
                "confirm the bugs are real and timing-dependent; each "
                "is exported under SEED_SWEEP_bundles/ and "
                "replay-verified — %s.\n",
                all_predicted ? "holds" : "VIOLATED",
                all_bundles_verified ? "all identical"
                                     : "REPLAY MISMATCH");

    Json root = Json::object();
    root.set("allPredicted", Json::boolean(all_predicted))
        .set("allBundlesReplayVerified",
             Json::boolean(all_bundles_verified))
        .set("benchmarks", std::move(benchmarks))
        .set("bundles", std::move(bundles));
    std::ofstream out("BENCH_seed_sweep.json");
    out << root.dump() << "\n";
    std::printf("wrote BENCH_seed_sweep.json\n");
    return all_predicted && all_bundles_verified ? 0 : 1;
}
