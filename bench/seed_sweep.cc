/**
 * @file
 * Prediction-robustness sweep: DCatch claims to find DCbugs by
 * monitoring *correct* runs, i.e. without needing the lucky buggy
 * interleaving.  This bench runs every benchmark under many random
 * schedules and reports, per benchmark: how many seeds produced a
 * correct run, and in how many of those correct runs trace analysis
 * still reported the known root-cause pair.  (Seeds whose schedule
 * happens to trigger the bug are counted separately — their existence
 * is itself evidence the bugs are real.)
 *
 * The per-seed runs are independent, so they execute on a
 * work-stealing TaskPool (DCATCH_BENCH_JOBS, default hardware
 * concurrency; 1 = serial).  Each seed's full lifecycle — run,
 * detect, and for failing seeds the repro-bundle export *and* its
 * replay verification — happens on the worker that owns the seed, so
 * the sweep never pays a second serial pass over failures; results
 * are merged in seed order, making the table and
 * BENCH_seed_sweep.json byte-identical for any job count.
 */

#include <fstream>

#include "apps/benchmark.hh"
#include "bench_common.hh"
#include "common/json.hh"
#include "common/task_pool.hh"
#include "common/util.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "replay/bundle.hh"
#include "replay/driver.hh"
#include "replay/policies.hh"
#include "runtime/sim.hh"

namespace {

/** Outcome of one (benchmark, seed) cell, filled in by its worker. */
struct SeedOutcome
{
    bool correct = false;
    bool predicted = false;
    bool manifested = false;
    bool bundled = false;
    bool replayVerified = false;
    std::uint64_t seed = 0;
    std::string bundleDir;
};

} // namespace

int
main()
{
    using namespace dcatch;
    bench::banner("Seed sweep", "prediction from correct runs only");

    constexpr int kSeeds = 20;
    int jobs = bench::jobsFromEnv();
    TaskPool pool(jobs);
    std::printf("(sweeping %d seeds per benchmark on %d worker%s)\n",
                kSeeds, jobs, jobs == 1 ? "" : "s");

    bench::Table table({"BugID", "Seeds", "Correct runs",
                        "Bug predicted", "Schedule hit bug", "Bundles"});
    bool all_predicted = true;
    bool all_bundles_verified = true;
    Json benchmarks = Json::array();
    Json bundles = Json::array();
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        std::vector<SeedOutcome> outcomes(kSeeds);
        pool.parallelFor(kSeeds, [&](std::size_t idx) {
            int seed = static_cast<int>(idx) + 1;
            SeedOutcome &out = outcomes[idx];
            sim::SimConfig cfg = b.config;
            cfg.policy = sim::PolicyKind::Random;
            cfg.seed = static_cast<std::uint64_t>(seed * 7919);
            out.seed = cfg.seed;
            sim::Simulation sim(cfg);
            replay::ScheduleLog log;
            replay::attachRecorder(sim, log);
            b.build(sim);
            sim::RunResult run = sim.run();
            if (run.failed()) {
                out.manifested = true;
                // A manifesting seed is the most valuable artifact
                // the sweep produces: export it as a replayable
                // bundle right here, on the worker that found it, and
                // verify the *exported* bundle replays identically —
                // no serial second pass over the failures.
                replay::ScheduleHeader &header = log.header;
                header = replay::headerFromConfig(cfg);
                header.benchmarkId = b.id;
                header.label = strprintf("seed-sweep seed %llu",
                    (unsigned long long)cfg.seed);
                for (const sim::FailureEvent &failure : run.failures)
                    header.expectedFailureKinds.push_back(
                        sim::failureKindName(failure.kind));
                header.traceChecksum =
                    sim.tracer().store().contentDigest();
                header.traceRecords =
                    sim.tracer().store().totalRecords();

                Json failures = Json::array();
                for (const sim::FailureEvent &failure : run.failures)
                    failures.push(Json::str(
                        sim::failureKindName(failure.kind)));
                out.bundleDir = replay::writeBundle(
                    strprintf("SEED_SWEEP_bundles/%s-seed%d",
                              b.id.c_str(), seed),
                    log,
                    Json::object()
                        .set("kind", Json::str("seed-sweep"))
                        .set("benchmark", Json::str(b.id))
                        .set("seed", Json::num(
                            std::int64_t(cfg.seed)))
                        .set("failures", std::move(failures))
                        .dump());
                out.bundled = true;
                // Round-trip through the on-disk bundle, not the
                // in-memory log: this also certifies what replayers
                // will actually load.
                out.replayVerified =
                    replay::replayLog(
                        replay::loadBundleLog(out.bundleDir))
                        .identical();
                return;
            }
            out.correct = true;
            hb::HbGraph graph(sim.tracer().store());
            detect::RaceDetector detector;
            for (const auto &cand : detector.detect(graph))
                for (const auto &pair : b.knownBugPairs)
                    if (cand.sitePairKey() == pair)
                        out.predicted = true;
        });

        // Seed-ordered merge: identical counts, rows, and JSON for
        // any worker count.
        int correct = 0, predicted = 0, manifested = 0, bundled = 0;
        for (const SeedOutcome &out : outcomes) {
            correct += out.correct;
            predicted += out.predicted;
            manifested += out.manifested;
            bundled += out.bundled;
            if (out.correct && !out.predicted)
                all_predicted = false;
            if (out.bundled) {
                if (!out.replayVerified)
                    all_bundles_verified = false;
                bundles.push(Json::object()
                    .set("benchmark", Json::str(b.id))
                    .set("seed", Json::num(std::int64_t(out.seed)))
                    .set("path", Json::str(out.bundleDir))
                    .set("replayVerified",
                         Json::boolean(out.replayVerified)));
            }
        }
        table.row({b.id, strprintf("%d", kSeeds),
                   strprintf("%d", correct), strprintf("%d", predicted),
                   strprintf("%d", manifested),
                   strprintf("%d", bundled)});
        benchmarks.push(Json::object()
            .set("benchmark", Json::str(b.id))
            .set("seeds", Json::num(std::int64_t(kSeeds)))
            .set("correctRuns", Json::num(std::int64_t(correct)))
            .set("bugPredicted", Json::num(std::int64_t(predicted)))
            .set("scheduleHitBug", Json::num(std::int64_t(manifested))));
    }
    table.print();
    std::printf("Shape check: in every correct run, under every "
                "schedule, the known bug is predicted — %s.  The rare "
                "seeds whose schedule manifests the failure directly "
                "confirm the bugs are real and timing-dependent; each "
                "is exported under SEED_SWEEP_bundles/ on the worker "
                "that found it and replay-verified from disk — %s.\n",
                all_predicted ? "holds" : "VIOLATED",
                all_bundles_verified ? "all identical"
                                     : "REPLAY MISMATCH");

    Json root = Json::object();
    root.set("allPredicted", Json::boolean(all_predicted))
        .set("allBundlesReplayVerified",
             Json::boolean(all_bundles_verified))
        .set("jobs", Json::num(std::int64_t(jobs)))
        .set("benchmarks", std::move(benchmarks))
        .set("bundles", std::move(bundles));
    std::ofstream out("BENCH_seed_sweep.json");
    out << root.dump() << "\n";
    std::printf("wrote BENCH_seed_sweep.json\n");
    return all_predicted && all_bundles_verified ? 0 : 1;
}
