/**
 * @file
 * Design-choice ablation for paper section 3.2.2: the chain-frontier
 * reachability engine (the Raychev et al. representation DCatch
 * cites), the dense reachable-set (bit-array) baseline, and the naive
 * vector-timestamp baseline the paper rejects ("each event handler
 * and RPC function contributing one dimension").  For every benchmark
 * trace this bench measures, for all three engines, the construction
 * time, the per-query time over all conflicting access pairs, and the
 * memory footprint — plus the number of clock dimensions and chains.
 * Results are mirrored to BENCH_ablation_reach.json.
 */

#include <benchmark/benchmark.h>

#include <fstream>

#include "apps/benchmark.hh"
#include "bench_common.hh"
#include "common/json.hh"
#include "common/util.hh"
#include "hb/vector_clock.hh"
#include "runtime/sim.hh"

namespace {

using namespace dcatch;

/** All conflicting same-variable access pairs of a graph. */
std::vector<std::pair<int, int>>
conflictingPairs(const hb::HbGraph &graph)
{
    std::map<trace::SymId, std::vector<int>> by_var;
    for (int v : graph.memAccesses())
        by_var[graph.record(v).id].push_back(v);
    std::vector<std::pair<int, int>> pairs;
    for (auto &[var, accesses] : by_var)
        for (std::size_t i = 0; i < accesses.size(); ++i)
            for (std::size_t j = i + 1; j < accesses.size(); ++j)
                pairs.emplace_back(accesses[i], accesses[j]);
    return pairs;
}

void
printTable()
{
    bench::banner("Reachability ablation (section 3.2.2)",
                  "chain frontiers vs. dense sets vs. vector clocks");
    bench::Table table({"BugID", "Vertices", "Chains", "VC dims",
                        "ChainBytes", "DenseBytes", "ClockBytes",
                        "Chain query", "Dense query", "VC query",
                        "Agree"});
    Json json_rows = Json::array();
    bool all_agree = true;
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        sim::Simulation sim(b.config);
        b.build(sim);
        sim.run();

        hb::HbGraph::Options chain_options;
        chain_options.engine = hb::HbGraph::Engine::ChainFrontier;
        hb::HbGraph chain(sim.tracer().store(), chain_options);
        hb::HbGraph::Options dense_options;
        dense_options.engine = hb::HbGraph::Engine::Dense;
        hb::HbGraph dense(sim.tracer().store(), dense_options);
        hb::VectorClockGraph clocks(dense);
        auto pairs = conflictingPairs(chain);

        // Query timings over all conflicting pairs (repeated to get
        // measurable durations).
        const int reps = 200;
        Stopwatch watch;
        std::size_t hits_chain = 0;
        for (int r = 0; r < reps; ++r)
            for (auto [u, v] : pairs)
                hits_chain += chain.concurrent(u, v) ? 1 : 0;
        double chain_us = watch.seconds() * 1e6 / reps;

        watch.reset();
        std::size_t hits_dense = 0;
        for (int r = 0; r < reps; ++r)
            for (auto [u, v] : pairs)
                hits_dense += dense.concurrent(u, v) ? 1 : 0;
        double dense_us = watch.seconds() * 1e6 / reps;

        watch.reset();
        std::size_t hits_vc = 0;
        for (int r = 0; r < reps; ++r)
            for (auto [u, v] : pairs)
                hits_vc += clocks.concurrent(u, v) ? 1 : 0;
        double vc_us = watch.seconds() * 1e6 / reps;

        bool agree = hits_chain == hits_dense && hits_dense == hits_vc;
        all_agree &= agree;
        table.row({b.id, strprintf("%zu", chain.size()),
                   strprintf("%zu", chain.chainCount()),
                   strprintf("%d", clocks.dimensionCount()),
                   strprintf("%zu", chain.reachBytes()),
                   strprintf("%zu", dense.reachBytes()),
                   strprintf("%zu", clocks.clockBytes()),
                   strprintf("%.1fus", chain_us),
                   strprintf("%.1fus", dense_us),
                   strprintf("%.1fus", vc_us),
                   agree ? "yes" : "NO"});

        Json row = Json::object();
        row.set("benchmark", Json::str(b.id))
            .set("vertices",
                 Json::num(static_cast<std::int64_t>(chain.size())))
            .set("chains",
                 Json::num(
                     static_cast<std::int64_t>(chain.chainCount())))
            .set("vcDims",
                 Json::num(static_cast<std::int64_t>(
                     clocks.dimensionCount())))
            .set("chainBytes",
                 Json::num(
                     static_cast<std::int64_t>(chain.reachBytes())))
            .set("denseBytes",
                 Json::num(
                     static_cast<std::int64_t>(dense.reachBytes())))
            .set("clockBytes",
                 Json::num(
                     static_cast<std::int64_t>(clocks.clockBytes())))
            .set("chainQueryUs", Json::num(chain_us))
            .set("denseQueryUs", Json::num(dense_us))
            .set("vcQueryUs", Json::num(vc_us))
            .set("agree", Json::boolean(agree));
        json_rows.push(std::move(row));
    }
    table.print();
    std::printf(
        "Shape check: all three engines agree on every verdict — %s; "
        "the clock dimension count grows with the number of handler "
        "instances (the paper's scalability objection), and the chain "
        "decomposition keeps the frontier footprint near-linear where "
        "dense ancestor sets grow quadratically.\n\n",
        all_agree ? "holds" : "VIOLATED");

    Json root = Json::object();
    root.set("bench", Json::str("ablation_reach"))
        .set("rows", std::move(json_rows))
        .set("allAgree", Json::boolean(all_agree));
    std::ofstream out("BENCH_ablation_reach.json");
    out << root.dump() << "\n";
    std::printf("wrote BENCH_ablation_reach.json\n\n");
}

void
BM_ChainQueries(benchmark::State &state, const apps::Benchmark *bench)
{
    sim::Simulation sim(bench->config);
    bench->build(sim);
    sim.run();
    hb::HbGraph::Options options;
    options.engine = hb::HbGraph::Engine::ChainFrontier;
    hb::HbGraph graph(sim.tracer().store(), options);
    auto pairs = conflictingPairs(graph);
    for (auto _ : state) {
        std::size_t hits = 0;
        for (auto [u, v] : pairs)
            hits += graph.concurrent(u, v) ? 1 : 0;
        benchmark::DoNotOptimize(hits);
    }
    state.counters["pairs"] = static_cast<double>(pairs.size());
    state.counters["chains"] =
        static_cast<double>(graph.chainCount());
}

void
BM_ReachQueries(benchmark::State &state, const apps::Benchmark *bench)
{
    sim::Simulation sim(bench->config);
    bench->build(sim);
    sim.run();
    hb::HbGraph::Options options;
    options.engine = hb::HbGraph::Engine::Dense;
    hb::HbGraph graph(sim.tracer().store(), options);
    auto pairs = conflictingPairs(graph);
    for (auto _ : state) {
        std::size_t hits = 0;
        for (auto [u, v] : pairs)
            hits += graph.concurrent(u, v) ? 1 : 0;
        benchmark::DoNotOptimize(hits);
    }
    state.counters["pairs"] = static_cast<double>(pairs.size());
}

void
BM_VectorClockQueries(benchmark::State &state,
                      const apps::Benchmark *bench)
{
    sim::Simulation sim(bench->config);
    bench->build(sim);
    sim.run();
    hb::HbGraph graph(sim.tracer().store());
    hb::VectorClockGraph clocks(graph);
    auto pairs = conflictingPairs(graph);
    for (auto _ : state) {
        std::size_t hits = 0;
        for (auto [u, v] : pairs)
            hits += clocks.concurrent(u, v) ? 1 : 0;
        benchmark::DoNotOptimize(hits);
    }
    state.counters["dims"] =
        static_cast<double>(clocks.dimensionCount());
}

} // namespace

int
main(int argc, char **argv)
{
    printTable();
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        benchmark::RegisterBenchmark(
            ("BM_ChainQueries/" + b.id).c_str(), BM_ChainQueries, &b);
        benchmark::RegisterBenchmark(
            ("BM_ReachQueries/" + b.id).c_str(), BM_ReachQueries, &b);
        benchmark::RegisterBenchmark(
            ("BM_VectorClockQueries/" + b.id).c_str(),
            BM_VectorClockQueries, &b);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
