/**
 * @file
 * Design-choice ablation for paper section 3.2.2: the reachable-set
 * (bit-array) engine DCatch adopts versus the naive vector-timestamp
 * baseline it rejects ("each event handler and RPC function
 * contributing one dimension").  For every benchmark trace this bench
 * measures, for both engines, the construction time, the per-query
 * time over all conflicting access pairs, and the memory footprint —
 * plus the number of clock dimensions, which is the paper's argument.
 */

#include <benchmark/benchmark.h>

#include "apps/benchmark.hh"
#include "bench_common.hh"
#include "common/util.hh"
#include "hb/vector_clock.hh"
#include "runtime/sim.hh"

namespace {

using namespace dcatch;

/** All conflicting same-variable access pairs of a graph. */
std::vector<std::pair<int, int>>
conflictingPairs(const hb::HbGraph &graph)
{
    std::map<std::string, std::vector<int>> by_var;
    for (int v : graph.memAccesses())
        by_var[graph.record(v).id].push_back(v);
    std::vector<std::pair<int, int>> pairs;
    for (auto &[var, accesses] : by_var)
        for (std::size_t i = 0; i < accesses.size(); ++i)
            for (std::size_t j = i + 1; j < accesses.size(); ++j)
                pairs.emplace_back(accesses[i], accesses[j]);
    return pairs;
}

void
printTable()
{
    bench::banner("Reachability ablation (section 3.2.2)",
                  "reachable sets vs. vector timestamps");
    bench::Table table({"BugID", "Vertices", "VC dims", "ReachBytes",
                        "ClockBytes", "Reach query", "VC query",
                        "Agree"});
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        sim::Simulation sim(b.config);
        b.build(sim);
        sim.run();
        hb::HbGraph graph(sim.tracer().store());
        hb::VectorClockGraph clocks(graph);
        auto pairs = conflictingPairs(graph);

        // Query timings over all conflicting pairs (repeated to get
        // measurable durations).
        const int reps = 200;
        Stopwatch watch;
        std::size_t hits_reach = 0;
        for (int r = 0; r < reps; ++r)
            for (auto [u, v] : pairs)
                hits_reach += graph.concurrent(u, v) ? 1 : 0;
        double reach_us = watch.seconds() * 1e6 / reps;

        watch.reset();
        std::size_t hits_vc = 0;
        for (int r = 0; r < reps; ++r)
            for (auto [u, v] : pairs)
                hits_vc += clocks.concurrent(u, v) ? 1 : 0;
        double vc_us = watch.seconds() * 1e6 / reps;

        table.row({b.id, strprintf("%zu", graph.size()),
                   strprintf("%d", clocks.dimensionCount()),
                   strprintf("%zu", graph.reachBytes()),
                   strprintf("%zu", clocks.clockBytes()),
                   strprintf("%.1fus", reach_us),
                   strprintf("%.1fus", vc_us),
                   hits_reach == hits_vc ? "yes" : "NO"});
    }
    table.print();
    std::printf(
        "Shape check: both engines agree on every verdict; the clock "
        "dimension count grows with the number of handler instances "
        "(the paper's scalability objection), and constant-time "
        "bit-array lookups beat sparse clock comparisons as traces "
        "grow.\n\n");
}

void
BM_ReachQueries(benchmark::State &state, const apps::Benchmark *bench)
{
    sim::Simulation sim(bench->config);
    bench->build(sim);
    sim.run();
    hb::HbGraph graph(sim.tracer().store());
    auto pairs = conflictingPairs(graph);
    for (auto _ : state) {
        std::size_t hits = 0;
        for (auto [u, v] : pairs)
            hits += graph.concurrent(u, v) ? 1 : 0;
        benchmark::DoNotOptimize(hits);
    }
    state.counters["pairs"] = static_cast<double>(pairs.size());
}

void
BM_VectorClockQueries(benchmark::State &state,
                      const apps::Benchmark *bench)
{
    sim::Simulation sim(bench->config);
    bench->build(sim);
    sim.run();
    hb::HbGraph graph(sim.tracer().store());
    hb::VectorClockGraph clocks(graph);
    auto pairs = conflictingPairs(graph);
    for (auto _ : state) {
        std::size_t hits = 0;
        for (auto [u, v] : pairs)
            hits += clocks.concurrent(u, v) ? 1 : 0;
        benchmark::DoNotOptimize(hits);
    }
    state.counters["dims"] =
        static_cast<double>(clocks.dimensionCount());
}

} // namespace

int
main(int argc, char **argv)
{
    printTable();
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        benchmark::RegisterBenchmark(
            ("BM_ReachQueries/" + b.id).c_str(), BM_ReachQueries, &b);
        benchmark::RegisterBenchmark(
            ("BM_VectorClockQueries/" + b.id).c_str(),
            BM_VectorClockQueries, &b);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
