/**
 * @file
 * Regenerates Table 9: false negatives / false positives introduced by
 * ignoring event, RPC, socket, or push-synchronization records during
 * trace analysis (the trace itself is unchanged; the analyser drops
 * the records, exactly as in the paper).  "-x/+y" = x candidate pairs
 * lost (false negatives) and y spurious pairs gained (false
 * positives) relative to the full-rule analysis.
 */

#include <set>

#include "apps/benchmark.hh"
#include "bench_common.hh"
#include "common/util.hh"
#include "detect/race_detect.hh"
#include "hb/graph.hh"
#include "runtime/sim.hh"

namespace {

using namespace dcatch;

struct Delta
{
    int fnStatic = 0, fpStatic = 0;
    int fnCallstack = 0, fpCallstack = 0;
    bool applicable = false;
};

Delta
ablate(const trace::TraceStore &store,
       const std::vector<detect::Candidate> &baseline, hb::RuleSet rules)
{
    Delta delta;
    delta.applicable = true;
    hb::HbGraph::Options options;
    options.rules = rules;
    hb::HbGraph graph(store, options);
    detect::RaceDetector detector;
    std::vector<detect::Candidate> ablated = detector.detect(graph);

    auto keys = [](const std::vector<detect::Candidate> &cands,
                   bool by_static) {
        std::set<std::string> out;
        for (const auto &c : cands)
            out.insert(by_static ? c.staticKey() : c.callstackKey());
        return out;
    };
    for (bool by_static : {true, false}) {
        auto base = keys(baseline, by_static);
        auto abl = keys(ablated, by_static);
        int fn = 0, fp = 0;
        for (const auto &k : base)
            if (!abl.count(k))
                ++fn;
        for (const auto &k : abl)
            if (!base.count(k))
                ++fp;
        (by_static ? delta.fnStatic : delta.fnCallstack) = fn;
        (by_static ? delta.fpStatic : delta.fpCallstack) = fp;
    }
    return delta;
}

std::string
cell(const Delta &delta)
{
    if (!delta.applicable)
        return "-";
    return strprintf("-%d/+%d", delta.fnStatic, delta.fpStatic);
}

std::string
cellCallstack(const Delta &delta)
{
    if (!delta.applicable)
        return "-";
    return strprintf("-%d/+%d", delta.fnCallstack, delta.fpCallstack);
}

} // namespace

int
main()
{
    bench::banner("Table 9",
                  "FN/FP from ignoring HB-related operations");

    bench::Table stat({"BugID", "Event(S)", "RPC(S)", "Socket(S)",
                       "Push(S)"});
    bench::Table calls({"BugID", "Event(C)", "RPC(C)", "Socket(C)",
                        "Push(C)"});
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        sim::Simulation sim(b.config);
        b.build(sim);
        sim.run();
        const trace::TraceStore &store = sim.tracer().store();
        hb::HbGraph baseline_graph(store);
        detect::RaceDetector detector;
        auto baseline = detector.detect(baseline_graph);

        Delta ev, rpc, soc, push;
        if (b.mechanisms.events)
            ev = ablate(store, baseline, hb::RuleSet::withoutEvent());
        if (b.mechanisms.rpc)
            rpc = ablate(store, baseline, hb::RuleSet::withoutRpc());
        if (b.mechanisms.socket)
            soc = ablate(store, baseline, hb::RuleSet::withoutSocket());
        if (b.system == "mini-hbase") // only HBase uses coordination
            push = ablate(store, baseline, hb::RuleSet::withoutPush());

        stat.row({b.id, cell(ev), cell(rpc), cell(soc), cell(push)});
        calls.row({b.id, cellCallstack(ev), cellCallstack(rpc),
                   cellCallstack(soc), cellCallstack(push)});
    }
    std::printf("\nBy static-instruction pair:\n");
    stat.print();
    std::printf("\nBy callstack pair:\n");
    calls.print();
    std::printf(
        "Shape check (paper Table 9): dropping a modelled operation "
        "family costs both false negatives (handler threads degrade to "
        "Rule-Preg over-ordering) and false positives (missing HB "
        "edges), in the benchmarks that use the mechanism.\n");
    return 0;
}
