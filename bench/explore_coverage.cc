/**
 * @file
 * Schedule-space exploration coverage bench: runs the explorer's
 * adversarial campaign (random / PCT / delay-bounded policies at
 * fixed seeds) over every benchmark and reports, per policy, how many
 * runs failed, how many *distinct* failure signatures were uncovered,
 * and how much runnable-set branching each policy exercised.  Every
 * failing run must replay-verify (original and minimized bundle) and
 * cross-validate against the detector's candidate list — an explorer
 * failure DCatch did not predict would be a false negative and fails
 * the bench.
 *
 * Writes BENCH_explore.json; scripts/bench_regress.sh gates the
 * distinct-signature counts of MR-3274 and ZK-1270 against
 * scripts/explore_floor.json.
 */

#include <fstream>

#include "apps/benchmark.hh"
#include "bench_common.hh"
#include "common/json.hh"
#include "common/util.hh"
#include "explore/explorer.hh"

int
main()
{
    using namespace dcatch;
    bench::banner("Explore coverage",
                  "adversarial schedule-space exploration");

    const std::vector<explore::PolicySpec> policies =
        explore::parsePolicyList("random,pct:3,delay:2");
    explore::ExploreOptions options;
    options.runsPerPolicy = 10;
    options.jobs = bench::jobsFromEnv();
    options.seedBase = 1;
    options.shrink = true;
    std::printf("(campaign: %zu policies x %d runs per benchmark, "
                "%d worker%s)\n",
                policies.size(), options.runsPerPolicy, options.jobs,
                options.jobs == 1 ? "" : "s");

    bench::Table table({"BugID", "Policy", "Failing", "Signatures",
                        "Branch pts", "Diverging", "Min prefix"});
    bool all_verified = true;
    bool all_crossval = true;
    Json benchmarks = Json::array();
    for (const apps::Benchmark &b : apps::allBenchmarks()) {
        explore::CampaignResult result =
            explore::explore(b, policies, options);
        all_verified = all_verified && result.allBundlesVerified() &&
                       result.allMinimizedVerified();
        all_crossval =
            all_crossval && result.allFailuresCrossValidated();

        for (const explore::PolicyCoverage &cov : result.coverage) {
            // Smallest minimized divergence prefix this policy
            // produced — the shrinker's headline number.
            std::uint64_t min_prefix = 0;
            bool any = false;
            for (const explore::RunRecord &rec : result.runs) {
                if (!rec.failed || rec.policy != cov.policy)
                    continue;
                if (!any || rec.shrunkPrefix < min_prefix)
                    min_prefix = rec.shrunkPrefix;
                any = true;
            }
            table.row({b.id, cov.policy,
                       strprintf("%d/%d", cov.failures, cov.runs),
                       strprintf("%zu", cov.signatures.size()),
                       strprintf("%llu",
                                 (unsigned long long)cov.branchPoints),
                       strprintf("%llu", (unsigned long long)
                                     cov.divergentChoices),
                       any ? strprintf("%llu",
                                       (unsigned long long)min_prefix)
                           : "-"});
        }
        benchmarks.push(result.toJson());
    }
    table.print();
    std::printf(
        "Shape check: every failing interleaving the adversarial "
        "policies uncover replays byte-for-byte from its bundle "
        "(original and minimized) — %s — and maps back to a candidate "
        "DCatch predicted from the monitored correct run — %s.\n",
        all_verified ? "holds" : "REPLAY MISMATCH",
        all_crossval ? "holds" : "FALSE NEGATIVE");

    Json root = Json::object();
    root.set("allBundlesVerified", Json::boolean(all_verified))
        .set("allFailuresCrossValidated", Json::boolean(all_crossval))
        .set("jobs", Json::num(static_cast<std::int64_t>(options.jobs)))
        .set("runsPerPolicy", Json::num(static_cast<std::int64_t>(
            options.runsPerPolicy)))
        .set("benchmarks", std::move(benchmarks));
    std::ofstream out("BENCH_explore.json");
    out << root.dump() << "\n";
    std::printf("wrote BENCH_explore.json\n");
    return all_verified && all_crossval ? 0 : 1;
}
