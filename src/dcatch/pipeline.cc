#include "dcatch/pipeline.hh"

#include <set>

#include "common/logging.hh"
#include "common/util.hh"
#include "detect/race_detect.hh"
#include "hb/pull.hh"
#include "prune/impact.hh"

namespace dcatch {

PipelineResult
runPipeline(const apps::Benchmark &bench, PipelineOptions options)
{
    PipelineResult result;
    Stopwatch watch;

    // Phase 0: untraced base execution (Table 6 "Base").
    if (options.measureBase) {
        sim::Simulation base(bench.config);
        trace::TracerConfig off;
        off.traceMemory = false;
        off.traceOps = false;
        off.traceLocks = false;
        base.setTracerConfig(off);
        bench.build(base);
        watch.reset();
        base.run();
        result.metrics.baseSec = watch.seconds();
    }

    // Phase 1: the monitored (traced) run.
    sim::Simulation traced(bench.config);
    trace::TracerConfig tc;
    tc.selectiveMemory = !options.fullMemoryTrace;
    traced.setTracerConfig(tc);
    bench.build(traced);
    watch.reset();
    result.monitoredRun = traced.run();
    result.metrics.tracingSec = watch.seconds();
    result.monitoredTrace = traced.tracer().store();
    result.metrics.traceBytes = result.monitoredTrace.serializedBytes();
    result.metrics.traceRecords = result.monitoredTrace.totalRecords();
    result.metrics.recordBreakdown =
        result.monitoredTrace.countsByCategory();
    if (result.monitoredRun.failed())
        DCATCH_WARN() << "monitored run of " << bench.id
                      << " was not failure-free: "
                      << result.monitoredRun.summary();

    // Phase 2: trace analysis (HB graph + race detection).
    watch.reset();
    hb::HbGraph::Options graph_options;
    graph_options.rules = options.rules;
    graph_options.memoryBudgetBytes = options.memoryBudgetBytes;
    graph_options.engine = options.hbEngine;
    hb::HbGraph graph(result.monitoredTrace, graph_options);
    auto snapshot_hb = [&result, &graph]() {
        result.metrics.hbEngine = graph.engineName();
        result.metrics.hbVertices = graph.size();
        result.metrics.hbChains = graph.chainCount();
        result.metrics.hbFrontierRows = graph.frontierRows();
        result.metrics.hbReachBytes = graph.reachBytes();
        result.metrics.hbIncrementalUpdates = graph.incrementalUpdates();
        result.metrics.hbClosureRuns = graph.closureRuns();
    };
    if (graph.oom()) {
        result.analysisOom = true;
        result.metrics.analysisSec = watch.seconds();
        result.metrics.hbEngine = graph.engineName();
        result.metrics.hbVertices = graph.size();
        return result;
    }
    snapshot_hb();
    detect::RaceDetector detector;
    result.afterTa = detector.detect(graph);
    result.metrics.analysisSec = watch.seconds();

    // Phase 3: static pruning (Table 5 "TA+SP").
    model::ProgramModel model = bench.buildModel();
    watch.reset();
    if (options.staticPruning) {
        prune::StaticPruner pruner(model, options.failureSpec);
        result.afterSp = pruner.prune(result.afterTa);
    } else {
        result.afterSp = result.afterTa;
    }
    result.metrics.pruningSec = watch.seconds();

    // Phase 4: loop/pull-based synchronization analysis ("TA+SP+LP").
    watch.reset();
    if (options.loopAnalysis) {
        hb::PullAnalyzer analyzer(model, bench.build, bench.config);
        hb::PullResult pull = analyzer.analyze(graph, result.afterSp);
        if (!pull.edges.empty()) {
            graph.addEdges(pull.edges);
            snapshot_hb(); // pull edges fold in incrementally
        }
        // Re-detect with the extra edges, re-prune, then drop pairs
        // recognised as synchronization.
        std::vector<detect::Candidate> redetected =
            detector.detect(graph);
        if (options.staticPruning) {
            prune::StaticPruner pruner(model, options.failureSpec);
            redetected = pruner.prune(redetected);
        }
        result.afterLp = hb::applyPullResult(graph, redetected, pull);
    } else {
        result.afterLp = result.afterSp;
    }
    result.metrics.loopSec = watch.seconds();

    // Phase 5: triggering and validation.
    if (options.runTrigger) {
        watch.reset();
        trigger::TriggerHarness harness(bench.build, bench.config);
        result.triggered =
            harness.testAll(result.afterLp, result.monitoredTrace);
        result.metrics.triggerSec = watch.seconds();
    }
    return result;
}

Classification
classify(const apps::Benchmark &bench, const PipelineResult &result)
{
    Classification cls;
    std::set<std::string> bug_s, benign_s, serial_s;
    std::set<std::string> bug_c, benign_c, serial_c;
    std::set<std::string> known_s;

    for (const trigger::TriggerReport &report : result.triggered) {
        const detect::Candidate &cand = report.candidate;
        switch (report.cls) {
          case trigger::TriggerClass::Harmful:
            bug_s.insert(cand.staticKey());
            bug_c.insert(cand.callstackKey());
            for (const std::string &pair : bench.knownBugPairs) {
                if (cand.sitePairKey() == pair) {
                    cls.knownBugDetected = true;
                    known_s.insert(cand.staticKey());
                }
            }
            break;
          case trigger::TriggerClass::Benign:
            benign_s.insert(cand.staticKey());
            benign_c.insert(cand.callstackKey());
            break;
          case trigger::TriggerClass::Serial:
            serial_s.insert(cand.staticKey());
            serial_c.insert(cand.callstackKey());
            break;
        }
    }
    cls.bugStatic = static_cast<int>(bug_s.size());
    cls.benignStatic = static_cast<int>(benign_s.size());
    cls.serialStatic = static_cast<int>(serial_s.size());
    cls.bugCallstack = static_cast<int>(bug_c.size());
    cls.benignCallstack = static_cast<int>(benign_c.size());
    cls.serialCallstack = static_cast<int>(serial_c.size());
    cls.knownBugStatic = static_cast<int>(known_s.size());
    return cls;
}

} // namespace dcatch
