#include "dcatch/pipeline.hh"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_set>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/task_pool.hh"
#include "common/util.hh"
#include "detect/race_detect.hh"
#include "detect/streaming.hh"
#include "hb/pull.hh"
#include "prune/impact.hh"
#include "replay/bundle.hh"
#include "replay/policies.hh"

namespace dcatch {

namespace {

Json
accessJson(const detect::CandidateAccess &access)
{
    return Json::object()
        .set("site", Json::str(access.site))
        .set("callstack", Json::str(access.callstack))
        .set("write", Json::boolean(access.isWrite))
        .set("thread", Json::num(std::int64_t(access.thread)))
        .set("node", Json::num(std::int64_t(access.node)));
}

/** report.json of the monitored-run bundle. */
std::string
monitoredBundleJson(const apps::Benchmark &bench,
                    const replay::ScheduleLog &log)
{
    return Json::object()
        .set("kind", Json::str("monitored"))
        .set("benchmark", Json::str(bench.id))
        .set("seed", Json::num(std::int64_t(log.header.seed)))
        .set("decisions", Json::num(std::int64_t(log.size())))
        .set("traceRecords",
             Json::num(std::int64_t(log.header.traceRecords)))
        .set("traceChecksum",
             Json::str(strprintf("%016llx",
                 (unsigned long long)log.header.traceChecksum)))
        .dump();
}

/** report.json of a harmful-classification bundle. */
std::string
harmfulBundleJson(const apps::Benchmark &bench,
                  const trigger::TriggerReport &report)
{
    Json failures = Json::array();
    for (const sim::FailureEvent &failure : report.failures)
        failures.push(Json::object()
            .set("kind", Json::str(sim::failureKindName(failure.kind)))
            .set("detail", Json::str(failure.detail)));
    return Json::object()
        .set("kind", Json::str("harmful"))
        .set("benchmark", Json::str(bench.id))
        .set("var", Json::str(report.candidate.var))
        .set("a", accessJson(report.candidate.a))
        .set("b", accessJson(report.candidate.b))
        .set("failingOrder", Json::str(report.failingOrder))
        .set("failures", std::move(failures))
        .set("decisions", Json::num(
            std::int64_t(report.failingSchedule
                             ? report.failingSchedule->size() : 0)))
        .dump();
}

} // namespace

PipelineResult
runPipeline(const apps::Benchmark &bench, PipelineOptions options)
{
    PipelineResult result;
    Stopwatch watch;

    // One work-stealing pool for the whole analysis side (sharded
    // detection + concurrent trigger exploration).  jobs == 1 builds
    // a thread-less pool and every consumer falls back to its exact
    // serial code path.
    TaskPool pool(TaskPool::resolveJobs(options.jobs));
    result.metrics.jobs = pool.jobs();

    // Wave 1: the untraced base run (Table 6 "Base"), the monitored
    // run (+ its repro bundle), and the static program model are
    // mutually independent, so they overlap on the pool when the host
    // has idle cores.  Each stage keeps its own stopwatch; task
    // bodies write disjoint state, and all three results are
    // identical to the serial order (which is exactly what runs when
    // the pool spawned no threads).
    std::optional<model::ProgramModel> model;
    auto run_base = [&]() {
        if (!options.measureBase)
            return;
        sim::Simulation base(bench.config);
        trace::TracerConfig off;
        off.traceMemory = false;
        off.traceOps = false;
        off.traceLocks = false;
        base.setTracerConfig(off);
        bench.build(base);
        Stopwatch base_watch;
        base.run();
        result.metrics.baseSec = base_watch.seconds();
    };
    auto run_monitored = [&]() {
        sim::Simulation traced(bench.config);
        trace::TracerConfig tc;
        tc.selectiveMemory = !options.fullMemoryTrace;
        traced.setTracerConfig(tc);
        if (!options.reproDir.empty()) {
            result.scheduleRecorded = true;
            result.monitoredSchedule =
                std::make_shared<replay::ScheduleLog>();
            replay::attachRecorder(traced, *result.monitoredSchedule);
        }
        bench.build(traced);
        Stopwatch trace_watch;
        result.monitoredRun = traced.run();
        result.metrics.tracingSec = trace_watch.seconds();
        result.monitoredTrace = traced.tracer().store();
        result.metrics.traceBytes =
            result.monitoredTrace.serializedBytes();
        result.metrics.traceRecords =
            result.monitoredTrace.totalRecords();
        result.metrics.recordBreakdown =
            result.monitoredTrace.countsByCategory();
        if (result.monitoredRun.failed())
            DCATCH_WARN() << "monitored run of " << bench.id
                          << " was not failure-free: "
                          << result.monitoredRun.summary();
        if (result.monitoredSchedule) {
            replay::ScheduleHeader &header =
                result.monitoredSchedule->header;
            header = replay::headerFromConfig(bench.config);
            header.benchmarkId = bench.id;
            header.label = "monitored";
            header.fullMemoryTrace = options.fullMemoryTrace;
            for (const sim::FailureEvent &failure :
                 result.monitoredRun.failures)
                header.expectedFailureKinds.push_back(
                    sim::failureKindName(failure.kind));
            header.traceChecksum =
                result.monitoredTrace.contentDigest();
            header.traceRecords = result.monitoredTrace.totalRecords();
            result.metrics.scheduleDecisions =
                result.monitoredSchedule->size();
            result.monitoredBundleDir = replay::writeBundle(
                options.reproDir + "/monitored",
                *result.monitoredSchedule,
                monitoredBundleJson(bench, *result.monitoredSchedule));
        }
    };
    auto build_model = [&]() { model = bench.buildModel(); };
    if (pool.spawnedThreads() > 0) {
        pool.parallelFor(3, [&](std::size_t task) {
            if (task == 0)
                run_monitored();
            else if (task == 1)
                run_base();
            else
                build_model();
        });
    } else {
        run_base();
        run_monitored();
        build_model();
    }

    // Phase 2: trace analysis (HB graph + race detection).  The
    // graph's construction-time index build borrows the same pool
    // (the wave above has fully drained by now).
    watch.reset();
    hb::HbGraph::Options graph_options;
    graph_options.rules = options.rules;
    graph_options.memoryBudgetBytes = options.memoryBudgetBytes;
    graph_options.engine = options.hbEngine;
    graph_options.pool = &pool;

    // Overlapped detection: while task 0 of the closure wave runs the
    // Eserial fixpoint + repack, the remaining workers stream the
    // detector's work units against the pre-closure frontier snapshot
    // and memoize every pair it already proves ordered.  The plan is
    // built once (first shard to arrive) from construction-final
    // state and reused by both detect passes below; the memo only
    // removes redundant reachability queries, never answers, so the
    // candidate output is byte-identical at any jobs/engine/kernel.
    // The hook is ignored by the dense/vc engines — detectPath then
    // reports "final" because the plan was never built.
    constexpr std::size_t kOverlapEpochWindow = 4096;
    detect::AccessPlan plan;
    bool plan_built = false;
    std::once_flag plan_once;
    std::size_t overlap_tasks = 0;
    std::vector<std::vector<std::uint64_t>> ordered_shards;
    std::vector<std::unordered_set<std::uint32_t>> epoch_shards;
    std::vector<double> shard_secs;
    if (options.overlapDetection && pool.jobs() > 1) {
        overlap_tasks = static_cast<std::size_t>(pool.jobs() - 1);
        ordered_shards.resize(overlap_tasks);
        epoch_shards.resize(overlap_tasks);
        shard_secs.assign(overlap_tasks, 0.0);
        graph_options.overlap.tasks = overlap_tasks;
        graph_options.overlap.work =
            [&](const hb::HbGraph &g, const ChainFrontierIndex &snap,
                std::size_t task) {
                Stopwatch shard_watch;
                std::call_once(plan_once, [&] {
                    plan = detect::AccessPlan::build(g);
                    plan_built = true;
                });
                detect::StreamingDetector::prepassShard(
                    plan, snap, task, overlap_tasks,
                    kOverlapEpochWindow, ordered_shards[task],
                    epoch_shards[task]);
                shard_secs[task] = shard_watch.seconds();
            };
    }
    hb::HbGraph graph(result.monitoredTrace, graph_options);
    auto snapshot_hb = [&result, &graph]() {
        result.metrics.hbEngine = graph.engineName();
        result.metrics.hbEngineRequested =
            hb::HbGraph::name(graph.requestedEngine());
        result.metrics.hbVertices = graph.size();
        result.metrics.hbChains = graph.chainCount();
        result.metrics.hbFrontierRows = graph.frontierRows();
        result.metrics.hbReachBytes = graph.reachBytes();
        result.metrics.hbIncrementalUpdates = graph.incrementalUpdates();
        result.metrics.hbClosureRuns = graph.closureRuns();
        const hb::HbGraph::EngineDecision &decision = graph.decision();
        result.metrics.hbDecisionThreads = decision.threads;
        result.metrics.hbDecisionCrossEdges = decision.crossEdges;
        result.metrics.hbDecisionDenseBytes = decision.denseBytes;
        result.metrics.hbDecisionCutoff = decision.effectiveCutoff;
    };
    if (graph.oom()) {
        result.analysisOom = true;
        result.metrics.analysisSec = watch.seconds();
        snapshot_hb();
        return result;
    }
    snapshot_hb();

    detect::OrderedMemo memo;
    if (plan_built) {
        std::unordered_set<std::uint32_t> epochs;
        for (std::size_t s = 0; s < overlap_tasks; ++s) {
            memo.addPacked(ordered_shards[s]);
            epochs.insert(epoch_shards[s].begin(),
                          epoch_shards[s].end());
        }
        result.metrics.overlappedEpochs = epochs.size();
        for (double sec : shard_secs)
            result.metrics.detectOverlapSec =
                std::max(result.metrics.detectOverlapSec, sec);
    }
    result.metrics.detectPath = plan_built ? "overlap" : "final";

    detect::RaceDetector detector;
    const detect::AccessPlan *plan_ptr = plan_built ? &plan : nullptr;
    const detect::OrderedMemo *memo_ptr = plan_built ? &memo : nullptr;
    Stopwatch detect_watch;
    result.afterTa = detector.detect(graph, &pool, plan_ptr, memo_ptr);
    result.metrics.detectSec = detect_watch.seconds();
    result.metrics.analysisSec = watch.seconds();

    // Phase 3: static pruning (Table 5 "TA+SP").  The model was
    // built during wave 1.
    watch.reset();
    if (options.staticPruning) {
        prune::StaticPruner pruner(*model, options.failureSpec);
        result.afterSp = pruner.prune(result.afterTa);
    } else {
        result.afterSp = result.afterTa;
    }
    result.metrics.pruningSec = watch.seconds();

    // Phase 4: loop/pull-based synchronization analysis ("TA+SP+LP").
    watch.reset();
    if (options.loopAnalysis) {
        hb::PullAnalyzer analyzer(*model, bench.build, bench.config);
        hb::PullResult pull = analyzer.analyze(graph, result.afterSp);
        if (!pull.edges.empty()) {
            graph.addEdges(pull.edges);
            snapshot_hb(); // pull edges fold in incrementally
        }
        // Re-detect with the extra edges, re-prune, then drop pairs
        // recognised as synchronization.  The plan depends only on
        // the records and pull edges only add ordering, so both the
        // plan and the memo stay valid for the re-detect.
        std::vector<detect::Candidate> redetected =
            detector.detect(graph, &pool, plan_ptr, memo_ptr);
        if (options.staticPruning) {
            prune::StaticPruner pruner(*model, options.failureSpec);
            redetected = pruner.prune(redetected);
        }
        result.afterLp = hb::applyPullResult(graph, redetected, pull);
    } else {
        result.afterLp = result.afterSp;
    }
    result.metrics.loopSec = watch.seconds();

    // Phase 5: triggering and validation.
    if (options.runTrigger) {
        watch.reset();
        trigger::TriggerHarness harness(bench.build, bench.config);
        if (!options.reproDir.empty())
            harness.enableScheduleRecording(bench.id);
        result.triggered =
            harness.testAll(result.afterLp, result.monitoredTrace,
                            &pool);
        result.metrics.triggerTasks = 2 * result.triggered.size();
        // One repro bundle per harmful classification: the failing
        // enforced-order schedule, replayable via `dcatch replay`.
        // Bundle writing stays on this thread, after the parallel
        // exploration has merged, so the harmful-NN numbering and the
        // files themselves are race-free and order-deterministic.
        int harmful = 0;
        for (trigger::TriggerReport &report : result.triggered) {
            if (report.cls != trigger::TriggerClass::Harmful ||
                !report.failingSchedule)
                continue;
            report.bundleDir = replay::writeBundle(
                strprintf("%s/harmful-%02d", options.reproDir.c_str(),
                          harmful++),
                *report.failingSchedule,
                harmfulBundleJson(bench, report));
        }
        result.metrics.triggerSec = watch.seconds();
    }
    return result;
}

Classification
classify(const apps::Benchmark &bench, const PipelineResult &result)
{
    Classification cls;
    std::set<std::string> bug_s, benign_s, serial_s;
    std::set<std::string> bug_c, benign_c, serial_c;
    std::set<std::string> known_s;

    for (const trigger::TriggerReport &report : result.triggered) {
        const detect::Candidate &cand = report.candidate;
        switch (report.cls) {
          case trigger::TriggerClass::Harmful:
            bug_s.insert(cand.staticKey());
            bug_c.insert(cand.callstackKey());
            for (const std::string &pair : bench.knownBugPairs) {
                if (cand.sitePairKey() == pair) {
                    cls.knownBugDetected = true;
                    known_s.insert(cand.staticKey());
                }
            }
            break;
          case trigger::TriggerClass::Benign:
            benign_s.insert(cand.staticKey());
            benign_c.insert(cand.callstackKey());
            break;
          case trigger::TriggerClass::Serial:
            serial_s.insert(cand.staticKey());
            serial_c.insert(cand.callstackKey());
            break;
        }
    }
    cls.bugStatic = static_cast<int>(bug_s.size());
    cls.benignStatic = static_cast<int>(benign_s.size());
    cls.serialStatic = static_cast<int>(serial_s.size());
    cls.bugCallstack = static_cast<int>(bug_c.size());
    cls.benignCallstack = static_cast<int>(benign_c.size());
    cls.serialCallstack = static_cast<int>(serial_c.size());
    cls.knownBugStatic = static_cast<int>(known_s.size());
    return cls;
}

} // namespace dcatch
