#include "dcatch/report_printer.hh"

#include <map>

#include "common/util.hh"

namespace dcatch {

namespace {

const trigger::TriggerReport *
findTrigger(const PipelineResult &result,
            const detect::Candidate &candidate)
{
    for (const auto &report : result.triggered)
        if (report.candidate.callstackKey() == candidate.callstackKey())
            return &report;
    return nullptr;
}

std::string
describeAccess(const detect::CandidateAccess &access)
{
    return strprintf("%-5s %s\n        at %s (node %d, thread %d)",
                     access.isWrite ? "WRITE" : "READ",
                     access.site.c_str(), access.callstack.c_str(),
                     access.node, access.thread);
}

} // namespace

std::string
renderReport(const apps::Benchmark &bench, const PipelineResult &result,
             PrintOptions options)
{
    std::string out;
    out += strprintf("DCatch report — %s (%s)\n", bench.id.c_str(),
                     bench.workload.c_str());
    out += strprintf("monitored run: %s\n",
                     result.monitoredRun.summary().c_str());
    if (result.analysisOom) {
        out += "trace analysis: OUT OF MEMORY (try chunked analysis)\n";
        return out;
    }
    out += strprintf(
        "candidates: %zu after trace analysis, %zu after static "
        "pruning, %zu final\n\n",
        result.afterTa.size(), result.afterSp.size(),
        result.afterLp.size());

    model::ProgramModel model = bench.buildModel();
    prune::StaticPruner pruner(model);

    int index = 0;
    for (const detect::Candidate &cand : result.finalReports()) {
        out += strprintf("[%d] conflicting concurrent accesses on %s\n",
                         ++index, cand.var.c_str());
        out += "      " + describeAccess(cand.a) + "\n";
        out += "      " + describeAccess(cand.b) + "\n";
        if (cand.dynamicPairs > 1)
            out += strprintf("      (%d concurrent dynamic pairs)\n",
                             cand.dynamicPairs);
        if (options.showImpact) {
            prune::PruneDecision decision = pruner.evaluate(cand);
            const prune::ImpactFinding &finding =
                decision.sideA.hasImpact ? decision.sideA
                                         : decision.sideB;
            if (finding.hasImpact)
                out += strprintf("      impact: %s%s\n",
                                 finding.reason.c_str(),
                                 finding.distributed
                                     ? " (crosses nodes)"
                                     : "");
        }
        if (options.showTriggers) {
            if (const trigger::TriggerReport *report =
                    findTrigger(result, cand)) {
                out += strprintf("      triggered: %s",
                                 triggerClassName(report->cls));
                if (report->cls == trigger::TriggerClass::Harmful) {
                    out += strprintf(" — failing order %s",
                                     report->failingOrder.c_str());
                    for (const auto &failure : report->failures)
                        out += strprintf("\n        %s at %s: %s",
                                         sim::failureKindName(
                                             failure.kind),
                                         failure.site.c_str(),
                                         failure.detail.c_str());
                }
                if (report->placement.relocated)
                    out += strprintf("\n        placement: %s",
                                     report->placement.rationale.c_str());
                if (!report->bundleDir.empty())
                    out += strprintf("\n        repro bundle: %s",
                                     report->bundleDir.c_str());
                out += "\n";
            }
        }
        out += "\n";
    }

    if (options.showMetrics) {
        const PhaseMetrics &m = result.metrics;
        out += strprintf(
            "phases: base %.2fms, tracing %.2fms (%zu records, %zu "
            "bytes), analysis %.2fms, pruning %.2fms, loop %.2fms, "
            "trigger %.2fms\n",
            m.baseSec * 1e3, m.tracingSec * 1e3, m.traceRecords,
            m.traceBytes, m.analysisSec * 1e3, m.pruningSec * 1e3,
            m.loopSec * 1e3, m.triggerSec * 1e3);
        out += strprintf(
            "parallel: %d job%s (detect %.2fms sharded, %zu trigger "
            "order-runs explored)\n",
            m.jobs, m.jobs == 1 ? "" : "s", m.detectSec * 1e3,
            m.triggerTasks);
        if (!m.detectPath.empty())
            out += strprintf(
                "detect: %s path (%zu overlapped epochs, pre-pass "
                "%.2fms)\n",
                m.detectPath.c_str(), m.overlappedEpochs,
                m.detectOverlapSec * 1e3);
        if (!m.hbEngine.empty()) {
            out += strprintf(
                "hb engine: %s (%zu vertices, %zu chains, %zu rows, "
                "%zu reach bytes, %zu incremental edges, %zu "
                "closures)\n",
                m.hbEngine.c_str(), m.hbVertices, m.hbChains,
                m.hbFrontierRows, m.hbReachBytes,
                m.hbIncrementalUpdates, m.hbClosureRuns);
            if (m.hbEngineRequested == "auto")
                out += strprintf(
                    "hb auto: picked %s (%zu vertices vs cutoff %zu, "
                    "%zu cross edges, %zu threads, dense needs %zu "
                    "bytes)\n",
                    m.hbEngine.c_str(), m.hbVertices,
                    m.hbDecisionCutoff, m.hbDecisionCrossEdges,
                    m.hbDecisionThreads, m.hbDecisionDenseBytes);
        }
        if (result.scheduleRecorded)
            out += strprintf(
                "schedule: %zu decisions recorded, trace checksum "
                "%016llx, bundle %s (dcatch replay <bundle>)\n",
                m.scheduleDecisions,
                (unsigned long long)(result.monitoredSchedule
                    ? result.monitoredSchedule->header.traceChecksum
                    : 0),
                result.monitoredBundleDir.c_str());
    }
    return out;
}

Json
reportToJson(const apps::Benchmark &bench, const PipelineResult &result)
{
    Json root = Json::object();
    root.set("benchmark", Json::str(bench.id))
        .set("system", Json::str(bench.system))
        .set("workload", Json::str(bench.workload))
        .set("monitoredRun",
             Json::str(result.monitoredRun.summary()))
        .set("analysisOom", Json::boolean(result.analysisOom));

    Json counts = Json::object();
    counts
        .set("afterTraceAnalysis",
             Json::num(static_cast<std::int64_t>(result.afterTa.size())))
        .set("afterStaticPruning",
             Json::num(static_cast<std::int64_t>(result.afterSp.size())))
        .set("final",
             Json::num(static_cast<std::int64_t>(result.afterLp.size())));
    root.set("candidates", std::move(counts));

    Json reports = Json::array();
    for (const detect::Candidate &cand : result.finalReports()) {
        Json entry = Json::object();
        auto access_json = [](const detect::CandidateAccess &access) {
            Json a = Json::object();
            a.set("site", Json::str(access.site))
                .set("callstack", Json::str(access.callstack))
                .set("write", Json::boolean(access.isWrite))
                .set("node", Json::num(
                                 static_cast<std::int64_t>(access.node)))
                .set("thread",
                     Json::num(static_cast<std::int64_t>(access.thread)));
            return a;
        };
        entry.set("variable", Json::str(cand.var))
            .set("a", access_json(cand.a))
            .set("b", access_json(cand.b))
            .set("dynamicPairs",
                 Json::num(static_cast<std::int64_t>(cand.dynamicPairs)));
        if (const trigger::TriggerReport *report =
                findTrigger(result, cand)) {
            entry.set("classification",
                      Json::str(triggerClassName(report->cls)));
            if (!report->failingOrder.empty())
                entry.set("failingOrder",
                          Json::str(report->failingOrder));
            Json failures = Json::array();
            for (const auto &failure : report->failures) {
                Json f = Json::object();
                f.set("kind",
                      Json::str(sim::failureKindName(failure.kind)))
                    .set("site", Json::str(failure.site))
                    .set("detail", Json::str(failure.detail));
                failures.push(std::move(f));
            }
            entry.set("failures", std::move(failures));
            if (!report->bundleDir.empty())
                entry.set("bundle", Json::str(report->bundleDir));
        }
        reports.push(std::move(entry));
    }
    root.set("reports", std::move(reports));

    Json metrics = Json::object();
    metrics.set("baseSec", Json::num(result.metrics.baseSec))
        .set("tracingSec", Json::num(result.metrics.tracingSec))
        .set("analysisSec", Json::num(result.metrics.analysisSec))
        .set("pruningSec", Json::num(result.metrics.pruningSec))
        .set("loopSec", Json::num(result.metrics.loopSec))
        .set("triggerSec", Json::num(result.metrics.triggerSec))
        .set("traceRecords",
             Json::num(static_cast<std::int64_t>(
                 result.metrics.traceRecords)))
        .set("traceBytes",
             Json::num(static_cast<std::int64_t>(
                 result.metrics.traceBytes)))
        .set("jobs",
             Json::num(static_cast<std::int64_t>(result.metrics.jobs)))
        .set("detectSec", Json::num(result.metrics.detectSec))
        .set("triggerTasks",
             Json::num(static_cast<std::int64_t>(
                 result.metrics.triggerTasks)));
    if (!result.metrics.detectPath.empty()) {
        // Mirrors hb.decision: one nested object recording which
        // detector path ran and what the overlap pre-pass covered.
        Json det = Json::object();
        det.set("path", Json::str(result.metrics.detectPath))
            .set("overlappedEpochs",
                 Json::num(static_cast<std::int64_t>(
                     result.metrics.overlappedEpochs)))
            .set("detectOverlapSec",
                 Json::num(result.metrics.detectOverlapSec));
        metrics.set("detect", std::move(det));
    }
    if (!result.metrics.hbEngine.empty()) {
        Json hb = Json::object();
        hb.set("engine", Json::str(result.metrics.hbEngine))
            .set("vertices",
                 Json::num(static_cast<std::int64_t>(
                     result.metrics.hbVertices)))
            .set("chains",
                 Json::num(static_cast<std::int64_t>(
                     result.metrics.hbChains)))
            .set("frontierRows",
                 Json::num(static_cast<std::int64_t>(
                     result.metrics.hbFrontierRows)))
            .set("reachBytes",
                 Json::num(static_cast<std::int64_t>(
                     result.metrics.hbReachBytes)))
            .set("incrementalUpdates",
                 Json::num(static_cast<std::int64_t>(
                     result.metrics.hbIncrementalUpdates)))
            .set("closureRuns",
                 Json::num(static_cast<std::int64_t>(
                     result.metrics.hbClosureRuns)));
        if (!result.metrics.hbEngineRequested.empty()) {
            Json decision = Json::object();
            decision
                .set("requested",
                     Json::str(result.metrics.hbEngineRequested))
                .set("threads",
                     Json::num(static_cast<std::int64_t>(
                         result.metrics.hbDecisionThreads)))
                .set("crossEdges",
                     Json::num(static_cast<std::int64_t>(
                         result.metrics.hbDecisionCrossEdges)))
                .set("denseBytes",
                     Json::num(static_cast<std::int64_t>(
                         result.metrics.hbDecisionDenseBytes)))
                .set("effectiveCutoff",
                     Json::num(static_cast<std::int64_t>(
                         result.metrics.hbDecisionCutoff)));
            hb.set("decision", std::move(decision));
        }
        metrics.set("hb", std::move(hb));
    }
    root.set("metrics", std::move(metrics));

    if (result.scheduleRecorded) {
        Json replay = Json::object();
        replay
            .set("monitoredBundle", Json::str(result.monitoredBundleDir))
            .set("decisions",
                 Json::num(static_cast<std::int64_t>(
                     result.metrics.scheduleDecisions)))
            .set("traceChecksum",
                 Json::str(strprintf(
                     "%016llx",
                     static_cast<unsigned long long>(
                         result.monitoredSchedule
                             ? result.monitoredSchedule->header
                                   .traceChecksum
                             : 0))));
        root.set("replay", std::move(replay));
    }
    return root;
}

} // namespace dcatch
