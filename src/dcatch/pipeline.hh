/**
 * @file
 * The end-to-end DCatch pipeline over one benchmark:
 *
 *   1. run the workload untraced (the "Base" timing of Table 6);
 *   2. run it again under the tracer (selective scope by default,
 *      full-memory for the Table 8 configuration);
 *   3. trace analysis: build the HB graph and detect concurrent
 *      conflicting access pairs (TA);
 *   4. static pruning over the program model (TA+SP);
 *   5. loop/pull-based synchronization analysis with a focused second
 *      run (TA+SP+LP) — the final DCatch bug reports;
 *   6. optionally, trigger every report and classify it as harmful,
 *      benign, or serial (section 5).
 */

#ifndef DCATCH_DCATCH_PIPELINE_HH
#define DCATCH_DCATCH_PIPELINE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/benchmark.hh"
#include "detect/report.hh"
#include "hb/graph.hh"
#include "prune/impact.hh"
#include "replay/schedule_log.hh"
#include "trace/trace_store.hh"
#include "trigger/harness.hh"

namespace dcatch {

/** Pipeline configuration. */
struct PipelineOptions
{
    bool staticPruning = true;   ///< apply section 4 pruning
    bool loopAnalysis = true;    ///< apply Rule-Mpull / loop analysis
    bool fullMemoryTrace = false; ///< Table 8: unselective tracing
    bool runTrigger = false;     ///< run the triggering module
    bool measureBase = true;     ///< run the untraced base execution
    hb::RuleSet rules = hb::RuleSet::all(); ///< Table 9 ablation knob
    prune::FailureSpec failureSpec; ///< section 4.1 failure classes
    std::size_t memoryBudgetBytes = 512ull << 20;
    /// HB reachability engine.  Auto (default) picks Dense vs
    /// ChainFrontier per trace from its shape (hb::HbGraph::decide);
    /// fixed engines remain selectable for cross-validation and the
    /// Table 8 configuration.
    hb::HbGraph::Engine hbEngine = hb::HbGraph::Engine::Auto;
    /** When non-empty, record every scheduler decision and write repro
     *  bundles under this directory: `monitored/` for the traced run
     *  and `harmful-NN/` per harmful trigger classification. */
    std::string reproDir;
    /**
     * Worker count for the parallel analysis backend (sharded race
     * detection + concurrent trigger exploration): 0 selects the
     * hardware concurrency, 1 is the exact serial path.  Output is
     * byte-identical for every value (docs/parallelism.md).
     */
    int jobs = 0;
    /**
     * Overlap detection with HB closure (docs/hb_auto_engine.md,
     * "Overlapped detection"): while Rule-Eserial closure runs on the
     * chain engine, pre-pass shards stream the detector's work units
     * against a pre-closure snapshot and memoize pairs already proven
     * ordered.  Engages only with > 1 job on the chain engine; the
     * candidate output is byte-identical either way.  `dcatch run
     * --no-overlap` clears it for A/B measurement.
     */
    bool overlapDetection = true;
};

/** Wall-clock and volume metrics per pipeline phase (Tables 6-8). */
struct PhaseMetrics
{
    double baseSec = 0;
    double tracingSec = 0;
    double analysisSec = 0;
    double pruningSec = 0;
    double loopSec = 0;
    double triggerSec = 0;
    std::size_t traceBytes = 0;
    std::size_t traceRecords = 0;
    std::map<trace::RecordCategory, std::size_t> recordBreakdown;

    /// @{ @name HB reachability engine statistics (section 3.2.2)
    std::string hbEngine;              ///< resolved: "chain"/"dense"/"vc"
    std::string hbEngineRequested;     ///< as configured (may be "auto")
    std::size_t hbVertices = 0;        ///< HB graph vertices
    std::size_t hbChains = 0;          ///< chains in the decomposition
    std::size_t hbFrontierRows = 0;    ///< materialised frontier rows
    std::size_t hbReachBytes = 0;      ///< reachability representation
    std::size_t hbIncrementalUpdates = 0; ///< incrementally folded edges
    std::size_t hbClosureRuns = 0;     ///< full re-closures (dense/vc)
    /// @}

    /// @{ @name Auto engine-selection inputs (hb::HbGraph::decide).
    /// Recorded whatever the requested engine, all deterministic.
    std::size_t hbDecisionThreads = 0;     ///< distinct trace threads
    std::size_t hbDecisionCrossEdges = 0;  ///< non-program HB edges
    std::size_t hbDecisionDenseBytes = 0;  ///< dense bit-array footprint
    std::size_t hbDecisionCutoff = 0;      ///< effective vertex cutoff
    /// @}

    /** Scheduler decisions recorded for the monitored run (0 unless
     *  PipelineOptions::reproDir was set). */
    std::size_t scheduleDecisions = 0;

    /// @{ @name Parallel analysis backend (docs/parallelism.md)
    int jobs = 1;                 ///< effective worker count
    std::size_t triggerTasks = 0; ///< enforced-order runs explored
    double detectSec = 0;         ///< race-detection share of analysis
    /// @}

    /// @{ @name Detection/closure overlap (docs/hb_auto_engine.md)
    /// "overlap" when the pre-pass streamed epochs during closure,
    /// "final" when detection ran only after closure (jobs=1,
    /// --no-overlap, or a non-chain engine); empty on OOM.
    std::string detectPath;
    std::size_t overlappedEpochs = 0; ///< epoch windows pre-passed
    double detectOverlapSec = 0;      ///< longest pre-pass shard
    /// @}
};

/** Everything the pipeline produced. */
struct PipelineResult
{
    sim::RunResult monitoredRun; ///< must be non-failing (correct run)
    trace::TraceStore monitoredTrace;
    bool analysisOom = false;    ///< HB closure exceeded its budget

    std::vector<detect::Candidate> afterTa; ///< trace analysis only
    std::vector<detect::Candidate> afterSp; ///< + static pruning
    std::vector<detect::Candidate> afterLp; ///< + loop analysis (final)

    std::vector<trigger::TriggerReport> triggered;
    PhaseMetrics metrics;

    /// @{ @name Schedule record/replay artifacts (reproDir set)
    bool scheduleRecorded = false;
    std::shared_ptr<replay::ScheduleLog> monitoredSchedule;
    std::string monitoredBundleDir; ///< bundle of the monitored run
    /// @}

    /** The final DCatch bug reports. */
    const std::vector<detect::Candidate> &finalReports() const
    {
        return afterLp;
    }
};

/** Per-benchmark classification counts (the Table 4 row). */
struct Classification
{
    bool knownBugDetected = false; ///< a harmful report matches the
                                   ///< benchmark's known root cause
    int bugStatic = 0, benignStatic = 0, serialStatic = 0;
    int bugCallstack = 0, benignCallstack = 0, serialCallstack = 0;
    int knownBugStatic = 0; ///< harmful static pairs tied to the
                            ///< known bug (Table 4 subscripts)
};

/** Run the full pipeline on one benchmark. */
PipelineResult runPipeline(const apps::Benchmark &bench,
                           PipelineOptions options = {});

/** Classify a pipeline's triggered reports (requires runTrigger). */
Classification classify(const apps::Benchmark &bench,
                        const PipelineResult &result);

} // namespace dcatch

#endif // DCATCH_DCATCH_PIPELINE_HH
