/**
 * @file
 * Human-readable and JSON rendering of pipeline results: the DCbug
 * reports a user of the tool actually reads — each candidate pair
 * with its accesses, callstacks, impact rationale, and (when the
 * trigger module ran) the confirmed classification and failing order.
 */

#ifndef DCATCH_DCATCH_REPORT_PRINTER_HH
#define DCATCH_DCATCH_REPORT_PRINTER_HH

#include <string>

#include "common/json.hh"
#include "dcatch/pipeline.hh"
#include "prune/impact.hh"

namespace dcatch {

/** Rendering options. */
struct PrintOptions
{
    bool showImpact = true;    ///< include static-impact rationale
    bool showTriggers = true;  ///< include trigger classifications
    bool showMetrics = true;   ///< include phase metrics footer
};

/** Render a full pipeline result as a text report. */
std::string renderReport(const apps::Benchmark &bench,
                         const PipelineResult &result,
                         PrintOptions options = {});

/** Render a full pipeline result as JSON. */
Json reportToJson(const apps::Benchmark &bench,
                  const PipelineResult &result);

} // namespace dcatch

#endif // DCATCH_DCATCH_REPORT_PRINTER_HH
