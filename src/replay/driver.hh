/**
 * @file
 * Benchmark-aware replay driver: re-executes a recorded ScheduleLog
 * (or a repro bundle on disk) against the registered benchmark it
 * was recorded from, reinstalling the trigger module's
 * OrderController for trigger-run logs, and reports whether the
 * replay was identical — no divergence, a byte-identical trace
 * (checksum match), and the same failure kinds.
 */

#ifndef DCATCH_REPLAY_DRIVER_HH
#define DCATCH_REPLAY_DRIVER_HH

#include <string>

#include "replay/policies.hh"
#include "replay/schedule_log.hh"
#include "trace/trace_store.hh"

namespace dcatch::replay {

/** Everything one replayed run produced. */
struct ReplayOutcome
{
    ScheduleHeader header;   ///< header of the replayed log
    sim::RunResult run;      ///< status/failures of the replayed run
    trace::TraceStore trace; ///< trace of the replayed run

    bool diverged = false;   ///< execution left the recorded schedule
    Divergence divergence;   ///< populated when diverged

    std::uint64_t decisionsUsed = 0;     ///< decisions consumed
    std::uint64_t decisionsRecorded = 0; ///< decisions in the log

    std::uint64_t traceChecksum = 0; ///< digest of the replayed trace
    bool checksumMatch = false;      ///< equals the recorded digest?
    bool failureKindsMatch = false;  ///< same failure kinds as recorded?

    /** Identical replay: no divergence, byte-identical trace, same
     *  failure kinds. */
    bool
    identical() const
    {
        return !diverged && checksumMatch && failureKindsMatch;
    }
};

/**
 * Replay @p log against its benchmark.
 * @throws std::runtime_error when the header names an unknown
 *         benchmark or an unknown policy kind
 */
ReplayOutcome replayLog(const ScheduleLog &log);

/** loadBundleLog() + replayLog(). @throws ScheduleLogError,
 *  std::runtime_error */
ReplayOutcome replayBundle(const std::string &bundle_path);

} // namespace dcatch::replay

#endif // DCATCH_REPLAY_DRIVER_HH
