/**
 * @file
 * The ScheduleLog: a compact, self-describing binary record of every
 * scheduler decision of one simulation run.
 *
 * Under the serialized token-passing scheduler the *only* source of
 * nondeterminism is the sequence of policy decisions — which runnable
 * thread receives the execution token at each step.  Event-queue
 * dequeues, RPC worker dispatch, and the seeded-random policy's RNG
 * draws are all deterministic functions of that sequence, so logging
 * each decision (the runnable set plus the chosen thread) is
 * sufficient for bit-identical replay (iReplayer / rr style record
 * and replay, specialised to a CHESS-style scheduler).
 *
 * Binary format (all integers LEB128 varints, strings length-prefixed):
 *
 *   magic "DCSL" | version | header | thread table | decisions | fnv64
 *
 * The header carries everything needed to reconstruct the run:
 * benchmark id, scheduling config (seed, policy, budgets), tracer
 * mode, the trace digest of the recorded run, the expected failure
 * kinds, and — for trigger-module runs — the enforced order's two
 * request points so replay can reinstall the OrderController.  The
 * thread table interns thread names once per tid; the trailing FNV-1a
 * checksum detects corrupt or truncated files at load time.
 */

#ifndef DCATCH_REPLAY_SCHEDULE_LOG_HH
#define DCATCH_REPLAY_SCHEDULE_LOG_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/types.hh"

namespace dcatch::replay {

/** Malformed, corrupt, or truncated schedule log. */
class ScheduleLogError : public std::runtime_error
{
  public:
    explicit ScheduleLogError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Serialized trigger request point (mirror of trigger::RequestPoint,
 *  kept dependency-free so the core replay library needs no trigger
 *  headers). */
struct RequestPointSpec
{
    std::string site;      ///< site to intercept
    std::string callstack; ///< exact callstack; empty = match any
    std::int64_t instance = 0; ///< 0-based dynamic occurrence
    std::string note;      ///< relocation rationale
};

/** Enforced-order section of a trigger-run schedule log. */
struct TriggerSpec
{
    RequestPointSpec first;  ///< party that must execute first
    RequestPointSpec second; ///< party held until the first passes
    std::string order;       ///< label, e.g. "a-then-b"
};

/** Schedule-log header: everything needed to re-drive the run. */
struct ScheduleHeader
{
    std::string benchmarkId; ///< apps::benchmark() id
    std::string label;       ///< "monitored", "trigger a-then-b", ...
    std::uint64_t seed = 1;
    std::uint32_t policy = 0; ///< sim::PolicyKind as integer
    std::uint64_t maxSteps = 0;
    std::uint32_t rpcWorkersPerNode = 0;
    std::uint32_t loopHangBound = 0;
    bool fullMemoryTrace = false; ///< tracer ran unselectively
    std::uint64_t traceChecksum = 0; ///< TraceStore::contentDigest()
    std::uint64_t traceRecords = 0;  ///< record count of that trace
    /** Failure kinds (failureKindName) the recorded run produced, in
     *  occurrence order; empty for a correct (monitored) run. */
    std::vector<std::string> expectedFailureKinds;
    bool hasTrigger = false; ///< trigger section present?
    TriggerSpec trigger;
};

/** Build a header from a SimConfig (scheduling fields only). */
ScheduleHeader headerFromConfig(const sim::SimConfig &config);

/** Reconstruct the SimConfig a log was recorded under.
 *  @throws ScheduleLogError on an unknown policy value */
sim::SimConfig configFromHeader(const ScheduleHeader &header);

/** One scheduler decision: who was runnable, who got the token. */
struct Decision
{
    std::vector<int> runnable; ///< strictly ascending thread ids
    int chosen = -1;           ///< element of runnable
};

/** The recorded decision sequence plus interned thread names. */
class ScheduleLog
{
  public:
    ScheduleHeader header;

    /** Intern a thread's name (idempotent; names are stable). */
    void noteThreadName(int tid, const std::string &name);

    /** Interned name of @p tid, or "" when never interned. */
    const std::string &threadName(int tid) const;

    /** "t<tid>(<name>)", or "t<tid>" when the name is unknown. */
    std::string threadLabel(int tid) const;

    /** Interned name table, indexed by tid. */
    const std::vector<std::string> &threadNames() const
    {
        return threadNames_;
    }

    /** Append one decision. */
    void append(Decision decision);

    std::size_t size() const { return decisions_.size(); }
    const Decision &at(std::size_t i) const { return decisions_.at(i); }

    /** Mutable decision list (divergence-injection tests). */
    std::vector<Decision> &decisions() { return decisions_; }
    const std::vector<Decision> &decisions() const { return decisions_; }

    /**
     * Serialize to the binary format.
     * @throws ScheduleLogError when a decision is malformed (runnable
     *         not strictly ascending, or chosen not in runnable)
     */
    std::string encode() const;

    /** Parse bytes produced by encode().
     *  @throws ScheduleLogError on any malformation */
    static ScheduleLog decode(const std::string &bytes);

    /** encode() into @p path. @throws ScheduleLogError on I/O error */
    void writeToFile(const std::string &path) const;

    /** Load and decode @p path. @throws ScheduleLogError */
    static ScheduleLog loadFromFile(const std::string &path);

  private:
    std::vector<std::string> threadNames_;
    std::vector<Decision> decisions_;
};

} // namespace dcatch::replay

#endif // DCATCH_REPLAY_SCHEDULE_LOG_HH
