#include "replay/policies.hh"

#include <algorithm>

#include "common/util.hh"
#include "runtime/sim.hh"

namespace dcatch::replay {

namespace {

std::string
describeSet(const std::vector<int> &tids,
            const std::vector<std::string> &labels)
{
    if (tids.empty())
        return "(none)";
    std::vector<std::string> parts;
    parts.reserve(tids.size());
    for (std::size_t i = 0; i < tids.size(); ++i)
        parts.push_back(i < labels.size() && !labels[i].empty()
                            ? labels[i]
                            : strprintf("t%d", tids[i]));
    return join(parts, " ");
}

/** Elements of @p from absent in @p other (both ascending). */
std::vector<std::size_t>
onlyIn(const std::vector<int> &from, const std::vector<int> &other)
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < from.size(); ++i)
        if (!std::binary_search(other.begin(), other.end(), from[i]))
            out.push_back(i);
    return out;
}

std::string
pickLabel(const std::vector<int> &tids,
          const std::vector<std::string> &labels, std::size_t i)
{
    if (i < labels.size() && !labels[i].empty())
        return labels[i];
    return strprintf("t%d", tids[i]);
}

} // namespace

std::string
Divergence::describe() const
{
    std::string out = strprintf(
        "schedule divergence at decision %llu: %s\n",
        static_cast<unsigned long long>(index), reason.c_str());
    out += strprintf("  expected runnable: %s\n",
                     describeSet(expectedRunnable, expectedLabels).c_str());
    if (expectedChoice >= 0) {
        std::string label = strprintf("t%d", expectedChoice);
        for (std::size_t i = 0; i < expectedRunnable.size(); ++i)
            if (expectedRunnable[i] == expectedChoice)
                label = pickLabel(expectedRunnable, expectedLabels, i);
        out += strprintf("  expected choice:   %s\n", label.c_str());
    }
    out += strprintf("  actual runnable:   %s\n",
                     describeSet(actualRunnable, actualLabels).c_str());
    for (std::size_t i : onlyIn(expectedRunnable, actualRunnable))
        out += strprintf(
            "  - %s was recorded runnable but is not\n",
            pickLabel(expectedRunnable, expectedLabels, i).c_str());
    for (std::size_t i : onlyIn(actualRunnable, expectedRunnable))
        out += strprintf(
            "  + %s is runnable but was not recorded\n",
            pickLabel(actualRunnable, actualLabels, i).c_str());
    return out;
}

ReplayDivergenceError::ReplayDivergenceError(Divergence divergence)
    : std::runtime_error(divergence.describe()),
      divergence_(std::move(divergence))
{
}

RecordingPolicy::RecordingPolicy(
    std::unique_ptr<sim::SchedulerPolicy> inner, ScheduleLog &log,
    std::function<std::string(int)> thread_name)
    : inner_(std::move(inner)), log_(log),
      threadName_(std::move(thread_name))
{
}

int
RecordingPolicy::pick(const std::vector<int> &runnable,
                      std::uint64_t step)
{
    Decision decision;
    decision.runnable = runnable;
    decision.chosen = inner_->pick(runnable, step);
    if (threadName_) {
        for (int tid : runnable) {
            if (tid < internedUpTo_)
                continue;
            log_.noteThreadName(tid, threadName_(tid));
            internedUpTo_ = std::max(internedUpTo_, tid + 1);
        }
    }
    log_.append(std::move(decision));
    return log_.decisions().back().chosen;
}

ReplayPolicy::ReplayPolicy(const ScheduleLog &log,
                           std::function<std::string(int)> thread_label)
    : log_(log), threadLabel_(std::move(thread_label))
{
}

Divergence
ReplayPolicy::diverge(const std::vector<int> &runnable,
                      const Decision *expected,
                      const std::string &reason) const
{
    Divergence divergence;
    divergence.index = next_;
    divergence.reason = reason;
    divergence.actualRunnable = runnable;
    for (int tid : runnable)
        divergence.actualLabels.push_back(
            threadLabel_ ? threadLabel_(tid) : strprintf("t%d", tid));
    if (expected) {
        divergence.expectedRunnable = expected->runnable;
        divergence.expectedChoice = expected->chosen;
        for (int tid : expected->runnable)
            divergence.expectedLabels.push_back(log_.threadLabel(tid));
    }
    return divergence;
}

int
ReplayPolicy::pick(const std::vector<int> &runnable, std::uint64_t)
{
    if (next_ >= log_.size())
        throw ReplayDivergenceError(diverge(
            runnable, nullptr,
            strprintf("schedule log exhausted after %llu decisions but "
                      "the run wants another",
                      static_cast<unsigned long long>(log_.size()))));
    const Decision &expected = log_.at(next_);
    if (expected.runnable != runnable)
        throw ReplayDivergenceError(
            diverge(runnable, &expected, "runnable-set mismatch"));
    if (!std::binary_search(runnable.begin(), runnable.end(),
                            expected.chosen))
        throw ReplayDivergenceError(
            diverge(runnable, &expected,
                    strprintf("recorded choice t%d is not runnable",
                              expected.chosen)));
    ++next_;
    return expected.chosen;
}

PrefixReplayPolicy::PrefixReplayPolicy(
    const ScheduleLog &log, std::size_t limit,
    std::unique_ptr<sim::SchedulerPolicy> fallback,
    std::function<std::string(int)> thread_label)
    : replay_(log, std::move(thread_label)),
      limit_(std::min(limit, log.size())), fallback_(std::move(fallback))
{
}

int
PrefixReplayPolicy::pick(const std::vector<int> &runnable,
                         std::uint64_t step)
{
    if (replay_.consumed() < limit_)
        return replay_.pick(runnable, step);
    return fallback_->pick(runnable, step);
}

void
attachRecorder(sim::Simulation &sim, ScheduleLog &log)
{
    sim.setSchedulerPolicy(std::make_unique<RecordingPolicy>(
        sim::makePolicy(sim.config()), log,
        [&sim](int tid) { return sim.threadName(tid); }));
}

ReplayPolicy &
attachReplayer(sim::Simulation &sim, const ScheduleLog &log)
{
    auto policy = std::make_unique<ReplayPolicy>(
        log, [&sim](int tid) { return sim.threadLabel(tid); });
    ReplayPolicy &ref = *policy;
    sim.setSchedulerPolicy(std::move(policy));
    return ref;
}

} // namespace dcatch::replay
