/**
 * @file
 * Scheduler-policy decorators of the record/replay subsystem.
 *
 * RecordingPolicy wraps any SchedulerPolicy (Fifo / Random /
 * controlled) and streams every decision — the runnable set and the
 * chosen thread — into a ScheduleLog.  ReplayPolicy re-drives the
 * scheduler from a log, checking at every step that the live runnable
 * set matches the recorded one; the moment execution no longer
 * matches it raises a structured ReplayDivergenceError (decision
 * index, expected vs. actual runnable sets with thread callstacks)
 * instead of silently steering a different run — which doubles as a
 * tripwire for accidental nondeterminism creeping into the substrate.
 */

#ifndef DCATCH_REPLAY_POLICIES_HH
#define DCATCH_REPLAY_POLICIES_HH

#include <functional>
#include <memory>
#include <string>

#include "replay/schedule_log.hh"
#include "runtime/scheduler.hh"

namespace dcatch::sim {
class Simulation;
}

namespace dcatch::replay {

/** Structured description of a replay mismatch. */
struct Divergence
{
    std::uint64_t index = 0; ///< 0-based decision index that mismatched
    std::string reason;      ///< "runnable-set mismatch", "schedule log
                             ///< exhausted", "recorded choice not
                             ///< runnable", "undrained schedule log"
    std::vector<int> expectedRunnable; ///< from the log (empty when
                                       ///< the log was exhausted)
    std::vector<int> actualRunnable;   ///< live scheduler state
    int expectedChoice = -1;           ///< recorded pick, -1 if none
    /** Live thread labels (name + current callstack) of the actual
     *  runnable set, aligned with actualRunnable. */
    std::vector<std::string> actualLabels;
    /** Interned names of the expected runnable set, aligned with
     *  expectedRunnable. */
    std::vector<std::string> expectedLabels;

    /** Multi-line human-readable report with a runnable-set diff. */
    std::string describe() const;
};

/** Raised by ReplayPolicy::pick the moment execution diverges. */
class ReplayDivergenceError : public std::runtime_error
{
  public:
    explicit ReplayDivergenceError(Divergence divergence);

    const Divergence &divergence() const { return divergence_; }

  private:
    Divergence divergence_;
};

/** Streams the wrapped policy's decisions into a ScheduleLog. */
class RecordingPolicy : public sim::SchedulerPolicy
{
  public:
    /**
     * @param inner the real policy whose decisions are recorded
     * @param log decision sink; must outlive this policy
     * @param thread_name resolves a tid to its stable thread name for
     *        the log's interned thread table (may be empty)
     */
    RecordingPolicy(std::unique_ptr<sim::SchedulerPolicy> inner,
                    ScheduleLog &log,
                    std::function<std::string(int)> thread_name);

    int pick(const std::vector<int> &runnable,
             std::uint64_t step) override;

  private:
    std::unique_ptr<sim::SchedulerPolicy> inner_;
    ScheduleLog &log_;
    std::function<std::string(int)> threadName_;
    int internedUpTo_ = 0; ///< tids below this are already interned
};

/** Re-drives the scheduler from a recorded ScheduleLog. */
class ReplayPolicy : public sim::SchedulerPolicy
{
  public:
    /**
     * @param log the recorded decisions; must outlive this policy
     * @param thread_label resolves a tid to a live diagnostic label
     *        (name + callstack) for divergence reports (may be empty)
     */
    explicit ReplayPolicy(const ScheduleLog &log,
                          std::function<std::string(int)> thread_label = {});

    /** @throws ReplayDivergenceError on the first mismatch */
    int pick(const std::vector<int> &runnable,
             std::uint64_t step) override;

    /** Decisions consumed so far. */
    std::uint64_t consumed() const { return next_; }

    /** True when every recorded decision was replayed. */
    bool drained() const { return next_ == log_.size(); }

  private:
    Divergence diverge(const std::vector<int> &runnable,
                       const Decision *expected,
                       const std::string &reason) const;

    const ScheduleLog &log_;
    std::function<std::string(int)> threadLabel_;
    std::uint64_t next_ = 0;
};

/**
 * Replays the first @p limit decisions of a log, then hands control
 * to a fallback policy instead of raising "schedule log exhausted" —
 * the primitive behind schedule shrinking (docs/exploration.md): a
 * failing run is re-driven from a *prefix* of its recorded decisions
 * and completed under plain FIFO to test whether the suffix was
 * necessary for the failure.  Within the prefix it is exactly as
 * strict as ReplayPolicy: any mismatch raises a structured
 * ReplayDivergenceError (which shrinking treats as "candidate
 * infeasible", e.g. after flipping an earlier decision).
 */
class PrefixReplayPolicy : public sim::SchedulerPolicy
{
  public:
    /**
     * @param log recorded decisions; must outlive this policy
     * @param limit replay the first min(limit, log.size()) decisions
     * @param fallback policy driving every later step (must not be
     *        null; the step numbers it sees continue past the prefix)
     * @param thread_label live diagnostic labels for divergence
     *        reports (may be empty)
     */
    PrefixReplayPolicy(const ScheduleLog &log, std::size_t limit,
                       std::unique_ptr<sim::SchedulerPolicy> fallback,
                       std::function<std::string(int)> thread_label = {});

    /** @throws ReplayDivergenceError on a mismatch inside the prefix */
    int pick(const std::vector<int> &runnable,
             std::uint64_t step) override;

    /** Prefix decisions consumed so far. */
    std::uint64_t consumed() const { return replay_.consumed(); }

  private:
    ReplayPolicy replay_;
    std::size_t limit_;
    std::unique_ptr<sim::SchedulerPolicy> fallback_;
};

/**
 * Wrap @p sim's configured policy in a RecordingPolicy targeting
 * @p log.  Must be called before sim.run(); the log must outlive the
 * simulation's run.  The caller still owns the log and is responsible
 * for filling its header (benchmark id, trace checksum, ...) after
 * the run.
 */
void attachRecorder(sim::Simulation &sim, ScheduleLog &log);

/**
 * Replace @p sim's policy with a ReplayPolicy driven by @p log.
 * Returns the policy (owned by the scheduler) so callers can query
 * consumed()/drained() after the run.
 */
ReplayPolicy &attachReplayer(sim::Simulation &sim, const ScheduleLog &log);

} // namespace dcatch::replay

#endif // DCATCH_REPLAY_POLICIES_HH
