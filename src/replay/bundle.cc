#include "replay/bundle.hh"

#include <filesystem>
#include <fstream>

#include "common/util.hh"

namespace dcatch::replay {

namespace {

void
writeText(const std::filesystem::path &path, const std::string &text)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        throw ScheduleLogError("bundle: cannot open " + path.string() +
                               " for writing");
    out << text;
    if (!out)
        throw ScheduleLogError("bundle: short write to " + path.string());
}

} // namespace

std::string
writeBundle(const std::string &directory, const ScheduleLog &log,
            const std::string &report_json)
{
    std::filesystem::path dir(directory);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        throw ScheduleLogError("bundle: cannot create " + directory +
                               ": " + ec.message());

    log.writeToFile((dir / kScheduleFile).string());
    writeText(dir / kReportFile, report_json + "\n");
    writeText(dir / kDigestFile,
              strprintf("checksum %016llx\nrecords %llu\ndecisions %zu\n",
                        static_cast<unsigned long long>(
                            log.header.traceChecksum),
                        static_cast<unsigned long long>(
                            log.header.traceRecords),
                        log.size()));
    return dir.string();
}

ScheduleLog
loadBundleLog(const std::string &path)
{
    std::filesystem::path p(path);
    if (std::filesystem::is_directory(p))
        p /= kScheduleFile;
    if (!std::filesystem::exists(p))
        throw ScheduleLogError("bundle: no schedule log at " +
                               p.string());
    return ScheduleLog::loadFromFile(p.string());
}

} // namespace dcatch::replay
