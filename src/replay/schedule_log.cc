#include "replay/schedule_log.hh"

#include <fstream>

#include "common/util.hh"

namespace dcatch::replay {

namespace {

constexpr char kMagic[4] = {'D', 'C', 'S', 'L'};
constexpr std::uint64_t kVersion = 1;

void
putVarint(std::string &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<char>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
}

void
putString(std::string &out, const std::string &value)
{
    putVarint(out, value.size());
    out.append(value);
}

/** Cursor over the encoded bytes; every read throws on truncation. */
struct Reader
{
    const std::string &bytes;
    std::size_t pos = 0;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw ScheduleLogError(strprintf(
            "schedule log: %s (at byte %zu of %zu)", what.c_str(), pos,
            bytes.size()));
    }

    std::uint64_t
    varint(const char *what)
    {
        std::uint64_t value = 0;
        int shift = 0;
        while (true) {
            if (pos >= bytes.size())
                fail(strprintf("truncated varint in %s", what));
            if (shift >= 64)
                fail(strprintf("overlong varint in %s", what));
            unsigned char byte =
                static_cast<unsigned char>(bytes[pos++]);
            value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return value;
            shift += 7;
        }
    }

    std::string
    str(const char *what)
    {
        std::uint64_t len = varint(what);
        if (len > bytes.size() - pos)
            fail(strprintf("truncated string in %s", what));
        std::string out = bytes.substr(pos, len);
        pos += len;
        return out;
    }
};

std::uint64_t
fnv64(const std::string &bytes, std::size_t count)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (std::size_t i = 0; i < count; ++i) {
        hash ^= static_cast<unsigned char>(bytes[i]);
        hash *= 1099511628211ull;
    }
    return hash;
}

void
putRequestPoint(std::string &out, const RequestPointSpec &point)
{
    putString(out, point.site);
    putString(out, point.callstack);
    putVarint(out, static_cast<std::uint64_t>(point.instance));
    putString(out, point.note);
}

RequestPointSpec
readRequestPoint(Reader &in)
{
    RequestPointSpec point;
    point.site = in.str("request point site");
    point.callstack = in.str("request point callstack");
    point.instance =
        static_cast<std::int64_t>(in.varint("request point instance"));
    point.note = in.str("request point note");
    return point;
}

} // namespace

ScheduleHeader
headerFromConfig(const sim::SimConfig &config)
{
    ScheduleHeader header;
    header.seed = config.seed;
    header.policy = static_cast<std::uint32_t>(config.policy);
    header.maxSteps = config.maxSteps;
    header.rpcWorkersPerNode =
        static_cast<std::uint32_t>(config.rpcWorkersPerNode);
    header.loopHangBound = static_cast<std::uint32_t>(config.loopHangBound);
    return header;
}

sim::SimConfig
configFromHeader(const ScheduleHeader &header)
{
    if (header.policy > static_cast<std::uint32_t>(sim::PolicyKind::Random))
        throw ScheduleLogError(strprintf(
            "schedule log: unknown policy kind %u", header.policy));
    sim::SimConfig config;
    config.policy = static_cast<sim::PolicyKind>(header.policy);
    config.seed = header.seed;
    config.maxSteps = header.maxSteps;
    config.rpcWorkersPerNode = static_cast<int>(header.rpcWorkersPerNode);
    config.loopHangBound = static_cast<int>(header.loopHangBound);
    return config;
}

void
ScheduleLog::noteThreadName(int tid, const std::string &name)
{
    if (tid < 0)
        return;
    if (static_cast<std::size_t>(tid) >= threadNames_.size())
        threadNames_.resize(static_cast<std::size_t>(tid) + 1);
    if (threadNames_[static_cast<std::size_t>(tid)].empty())
        threadNames_[static_cast<std::size_t>(tid)] = name;
}

const std::string &
ScheduleLog::threadName(int tid) const
{
    static const std::string empty;
    if (tid < 0 || static_cast<std::size_t>(tid) >= threadNames_.size())
        return empty;
    return threadNames_[static_cast<std::size_t>(tid)];
}

std::string
ScheduleLog::threadLabel(int tid) const
{
    const std::string &name = threadName(tid);
    if (name.empty())
        return strprintf("t%d", tid);
    return strprintf("t%d(%s)", tid, name.c_str());
}

void
ScheduleLog::append(Decision decision)
{
    decisions_.push_back(std::move(decision));
}

std::string
ScheduleLog::encode() const
{
    std::string out(kMagic, sizeof kMagic);
    putVarint(out, kVersion);

    putString(out, header.benchmarkId);
    putString(out, header.label);
    putVarint(out, header.seed);
    putVarint(out, header.policy);
    putVarint(out, header.maxSteps);
    putVarint(out, header.rpcWorkersPerNode);
    putVarint(out, header.loopHangBound);
    std::uint64_t flags = (header.fullMemoryTrace ? 1u : 0u) |
                          (header.hasTrigger ? 2u : 0u);
    putVarint(out, flags);
    putVarint(out, header.traceChecksum);
    putVarint(out, header.traceRecords);
    putVarint(out, header.expectedFailureKinds.size());
    for (const std::string &kind : header.expectedFailureKinds)
        putString(out, kind);
    if (header.hasTrigger) {
        putRequestPoint(out, header.trigger.first);
        putRequestPoint(out, header.trigger.second);
        putString(out, header.trigger.order);
    }

    putVarint(out, threadNames_.size());
    for (const std::string &name : threadNames_)
        putString(out, name);

    putVarint(out, decisions_.size());
    for (std::size_t d = 0; d < decisions_.size(); ++d) {
        const Decision &decision = decisions_[d];
        if (decision.runnable.empty())
            throw ScheduleLogError(strprintf(
                "schedule log: decision %zu has an empty runnable set",
                d));
        putVarint(out, decision.runnable.size());
        std::size_t chosen_index = decision.runnable.size();
        int previous = -1;
        for (std::size_t i = 0; i < decision.runnable.size(); ++i) {
            int tid = decision.runnable[i];
            if (tid <= previous)
                throw ScheduleLogError(strprintf(
                    "schedule log: decision %zu runnable set is not "
                    "strictly ascending", d));
            // First tid absolute; the rest as (delta - 1), so a packed
            // consecutive runnable set costs one byte per thread.
            putVarint(out, i == 0 ? static_cast<std::uint64_t>(tid)
                                  : static_cast<std::uint64_t>(
                                        tid - previous - 1));
            if (tid == decision.chosen)
                chosen_index = i;
            previous = tid;
        }
        if (chosen_index == decision.runnable.size())
            throw ScheduleLogError(strprintf(
                "schedule log: decision %zu chose t%d, which is not in "
                "its runnable set", d, decision.chosen));
        putVarint(out, chosen_index);
    }

    std::uint64_t checksum = fnv64(out, out.size());
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((checksum >> (8 * i)) & 0xff));
    return out;
}

ScheduleLog
ScheduleLog::decode(const std::string &bytes)
{
    if (bytes.size() < sizeof kMagic + 8 ||
        bytes.compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0)
        throw ScheduleLogError(
            "schedule log: missing DCSL magic (not a schedule log?)");

    std::size_t body = bytes.size() - 8;
    std::uint64_t stored = 0;
    for (int i = 7; i >= 0; --i)
        stored = (stored << 8) |
                 static_cast<unsigned char>(bytes[body + i]);
    if (fnv64(bytes, body) != stored)
        throw ScheduleLogError(
            "schedule log: checksum mismatch (corrupt or truncated)");

    Reader in{bytes, sizeof kMagic};
    std::uint64_t version = in.varint("version");
    if (version != kVersion)
        throw ScheduleLogError(strprintf(
            "schedule log: unsupported version %llu",
            static_cast<unsigned long long>(version)));

    ScheduleLog log;
    ScheduleHeader &h = log.header;
    h.benchmarkId = in.str("benchmark id");
    h.label = in.str("label");
    h.seed = in.varint("seed");
    h.policy = static_cast<std::uint32_t>(in.varint("policy"));
    h.maxSteps = in.varint("max steps");
    h.rpcWorkersPerNode =
        static_cast<std::uint32_t>(in.varint("rpc workers"));
    h.loopHangBound =
        static_cast<std::uint32_t>(in.varint("loop hang bound"));
    std::uint64_t flags = in.varint("flags");
    h.fullMemoryTrace = (flags & 1) != 0;
    h.hasTrigger = (flags & 2) != 0;
    h.traceChecksum = in.varint("trace checksum");
    h.traceRecords = in.varint("trace records");
    std::uint64_t kinds = in.varint("failure kind count");
    for (std::uint64_t i = 0; i < kinds; ++i)
        h.expectedFailureKinds.push_back(in.str("failure kind"));
    if (h.hasTrigger) {
        h.trigger.first = readRequestPoint(in);
        h.trigger.second = readRequestPoint(in);
        h.trigger.order = in.str("trigger order");
    }

    std::uint64_t names = in.varint("thread table size");
    for (std::uint64_t tid = 0; tid < names; ++tid)
        log.noteThreadName(static_cast<int>(tid),
                           in.str("thread name"));
    // noteThreadName skips empty names; keep the table's true size.
    log.threadNames_.resize(names);

    std::uint64_t count = in.varint("decision count");
    log.decisions_.reserve(count);
    for (std::uint64_t d = 0; d < count; ++d) {
        Decision decision;
        std::uint64_t runnable = in.varint("runnable count");
        if (runnable == 0)
            in.fail(strprintf("decision %llu has no runnable threads",
                              static_cast<unsigned long long>(d)));
        decision.runnable.reserve(runnable);
        int previous = -1;
        for (std::uint64_t i = 0; i < runnable; ++i) {
            std::uint64_t delta = in.varint("runnable tid");
            std::uint64_t tid =
                i == 0 ? delta
                       : static_cast<std::uint64_t>(previous) + delta + 1;
            if (tid > 0x7fffffff)
                in.fail("runnable tid out of range");
            decision.runnable.push_back(static_cast<int>(tid));
            previous = static_cast<int>(tid);
        }
        std::uint64_t chosen = in.varint("chosen index");
        if (chosen >= runnable)
            in.fail(strprintf(
                "decision %llu chose index %llu of %llu runnable",
                static_cast<unsigned long long>(d),
                static_cast<unsigned long long>(chosen),
                static_cast<unsigned long long>(runnable)));
        decision.chosen = decision.runnable[chosen];
        log.decisions_.push_back(std::move(decision));
    }

    if (in.pos != body)
        in.fail("trailing bytes after the decision list");
    return log;
}

void
ScheduleLog::writeToFile(const std::string &path) const
{
    std::string bytes = encode();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw ScheduleLogError("schedule log: cannot open " + path +
                               " for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out)
        throw ScheduleLogError("schedule log: short write to " + path);
}

ScheduleLog
ScheduleLog::loadFromFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw ScheduleLogError("schedule log: cannot open " + path);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return decode(bytes);
}

} // namespace dcatch::replay
