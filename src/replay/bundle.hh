/**
 * @file
 * Repro bundles: self-contained directories that make a detected
 * interleaving durable.  A bundle holds
 *
 *   schedule.bin — the binary ScheduleLog (header + every decision);
 *                  alone sufficient to re-drive the run
 *   report.json  — the bug report / run summary, for humans and
 *                  downstream tooling
 *   trace.digest — the recorded trace's checksum and record count in
 *                  a grep-friendly text form
 *
 * The trigger module writes one per *harmful* classification, the
 * seed sweep writes one per failing seed, and `dcatch run
 * --record-schedule` writes one for the monitored run; `dcatch
 * replay <bundle>` re-executes any of them.
 */

#ifndef DCATCH_REPLAY_BUNDLE_HH
#define DCATCH_REPLAY_BUNDLE_HH

#include <string>

#include "replay/schedule_log.hh"

namespace dcatch::replay {

/** File names inside a bundle directory. */
inline constexpr const char kScheduleFile[] = "schedule.bin";
inline constexpr const char kReportFile[] = "report.json";
inline constexpr const char kDigestFile[] = "trace.digest";

/**
 * Write a bundle into @p directory (created, including parents).
 * @param log schedule log with a fully populated header
 * @param report_json serialized JSON report stored alongside
 * @return the bundle directory path
 * @throws ScheduleLogError on encoding or I/O failure
 */
std::string writeBundle(const std::string &directory,
                        const ScheduleLog &log,
                        const std::string &report_json);

/**
 * Load the schedule log of a bundle.  @p path may be the bundle
 * directory or a direct path to a schedule.bin file.
 * @throws ScheduleLogError when nothing loadable is found
 */
ScheduleLog loadBundleLog(const std::string &path);

} // namespace dcatch::replay

#endif // DCATCH_REPLAY_BUNDLE_HH
