#include "replay/driver.hh"

#include <algorithm>

#include "apps/benchmark.hh"
#include "common/util.hh"
#include "replay/bundle.hh"
#include "trigger/controller.hh"

namespace dcatch::replay {

namespace {

trigger::RequestPoint
toRequestPoint(const RequestPointSpec &spec)
{
    trigger::RequestPoint point;
    point.site = spec.site;
    point.callstack = spec.callstack;
    point.instance = static_cast<int>(spec.instance);
    point.note = spec.note;
    return point;
}

std::vector<std::string>
sortedKinds(std::vector<std::string> kinds)
{
    std::sort(kinds.begin(), kinds.end());
    return kinds;
}

} // namespace

ReplayOutcome
replayLog(const ScheduleLog &log)
{
    const apps::Benchmark &bench = apps::benchmark(log.header.benchmarkId);

    ReplayOutcome outcome;
    outcome.header = log.header;
    outcome.decisionsRecorded = log.size();

    sim::Simulation sim(configFromHeader(log.header));
    if (log.header.fullMemoryTrace) {
        trace::TracerConfig tc;
        tc.selectiveMemory = false;
        sim.setTracerConfig(tc);
    }
    // A trigger-run schedule is only feasible with the enforced order
    // re-applied: the controller's holds shape the runnable sets the
    // log recorded, so replay reinstalls the same OrderController.
    trigger::OrderController controller(
        toRequestPoint(log.header.trigger.first),
        toRequestPoint(log.header.trigger.second));
    if (log.header.hasTrigger)
        sim.setControlHook(&controller);

    ReplayPolicy &policy = attachReplayer(sim, log);
    bench.build(sim);
    try {
        outcome.run = sim.run();
        if (!policy.drained()) {
            outcome.diverged = true;
            outcome.divergence.index = policy.consumed();
            outcome.divergence.reason = strprintf(
                "undrained schedule log: the run ended after %llu of "
                "%llu recorded decisions",
                static_cast<unsigned long long>(policy.consumed()),
                static_cast<unsigned long long>(log.size()));
        }
    } catch (const ReplayDivergenceError &error) {
        outcome.diverged = true;
        outcome.divergence = error.divergence();
    }
    outcome.decisionsUsed = policy.consumed();

    outcome.trace = sim.tracer().store();
    outcome.traceChecksum = outcome.trace.contentDigest();
    outcome.checksumMatch =
        !outcome.diverged &&
        outcome.traceChecksum == log.header.traceChecksum;

    std::vector<std::string> kinds;
    for (const sim::FailureEvent &failure : outcome.run.failures)
        kinds.push_back(sim::failureKindName(failure.kind));
    outcome.failureKindsMatch =
        !outcome.diverged &&
        sortedKinds(kinds) == sortedKinds(log.header.expectedFailureKinds);
    return outcome;
}

ReplayOutcome
replayBundle(const std::string &bundle_path)
{
    return replayLog(loadBundleLog(bundle_path));
}

} // namespace dcatch::replay
