/**
 * @file
 * Lightweight leveled logging for the DCatch library.
 *
 * The substrate and analysis passes are chatty when debugging but must
 * be silent by default so benchmark timing is not polluted.  Log level
 * is process-global and settable programmatically or via the
 * DCATCH_LOG environment variable (trace|debug|info|warn|error|off).
 */

#ifndef DCATCH_COMMON_LOGGING_HH
#define DCATCH_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace dcatch {

/** Severity levels, ordered from most to least verbose. */
enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

/** Return the current global log level. */
LogLevel logLevel();

/** Set the global log level. */
void setLogLevel(LogLevel level);

/** Parse a level name ("debug", "INFO", ...); unknown names map to Info. */
LogLevel parseLogLevel(const std::string &name);

/** Emit one log line (already formatted) at the given level. */
void logLine(LogLevel level, const std::string &msg);

/** True if a message at @p level would currently be emitted. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) >= static_cast<int>(logLevel());
}

namespace detail {

/** Stream-style log statement helper; emits on destruction. */
class LogStatement
{
  public:
    explicit LogStatement(LogLevel level) : level_(level) {}
    ~LogStatement() { logLine(level_, stream_.str()); }

    LogStatement(const LogStatement &) = delete;
    LogStatement &operator=(const LogStatement &) = delete;

    template <typename T>
    LogStatement &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

} // namespace detail

} // namespace dcatch

#define DCATCH_LOG(level)                                                  \
    if (!::dcatch::logEnabled(level)) {                                    \
    } else                                                                 \
        ::dcatch::detail::LogStatement(level)

#define DCATCH_TRACE() DCATCH_LOG(::dcatch::LogLevel::Trace)
#define DCATCH_DEBUG() DCATCH_LOG(::dcatch::LogLevel::Debug)
#define DCATCH_INFO() DCATCH_LOG(::dcatch::LogLevel::Info)
#define DCATCH_WARN() DCATCH_LOG(::dcatch::LogLevel::Warn)
#define DCATCH_ERROR() DCATCH_LOG(::dcatch::LogLevel::Error)

#endif // DCATCH_COMMON_LOGGING_HH
