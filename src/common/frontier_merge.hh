/**
 * @file
 * Word-level frontier-merge kernels for the chain-frontier
 * reachability index (docs/hb_auto_engine.md, "SIMD kernel
 * contract").
 *
 * A frontier entry is packed into one 64-bit word:
 *
 *     word = (chain << 32) | limit
 *
 * with both fields < 2^31.  Packing this way makes two operations the
 * merge hot loop needs collapse into plain word arithmetic:
 *
 *  - rows sorted by chain are sorted by word (the chain field owns the
 *    high bits and chains are unique within a row), so binary searches
 *    and sorted merges compare words directly;
 *  - for entries with the *same* chain, the word with the larger limit
 *    is the larger word, so the per-chain max-position update is an
 *    unsigned 64-bit max — eight entries per iteration under AVX2.
 *
 * Most unionMax calls during worklist re-closure hit rows over the
 * same chain set (a vertex merging its chain predecessor's row), which
 * is the equal-shape fast path below: one vectorised shape check, one
 * vectorised elementwise max.  Rows over *different* chain sets take
 * the sorted-merge kernels (mergeWouldChange / mergeMax): a
 * change-detection prescan that usually proves the merge a no-op, and
 * the materialising merge when it is not.  Both walk the rows with two
 * pointers, but real mixed rows are mostly long equal-chain runs with
 * a few insertions, so the AVX2 variants stream 4-word blocks while
 * the chain sequences agree and drop to a single scalar step only at
 * shape mismatches.
 *
 * Kernel selection is a runtime decision: the AVX2 path is compiled
 * behind a function-level target attribute (no -march flags), chosen
 * only when CPUID reports AVX2 and the DCATCH_NO_SIMD environment
 * variable is unset.  Building with -DDCATCH_ENABLE_SIMD=OFF removes
 * the vector path entirely (the scalar-fallback CI job).  Scalar and
 * SIMD kernels are bit-for-bit interchangeable; the property test
 * tests/property/frontier_merge_property_test.cc pins that.
 */

#ifndef DCATCH_COMMON_FRONTIER_MERGE_HH
#define DCATCH_COMMON_FRONTIER_MERGE_HH

#include <cstddef>
#include <cstdint>

namespace dcatch::frontier {

/** Packed frontier entry: chain in the high 32 bits, limit low. */
using Word = std::uint64_t;

constexpr Word
pack(std::uint32_t chain, std::uint32_t limit)
{
    return (static_cast<Word>(chain) << 32) | limit;
}

constexpr std::uint32_t
chainOf(Word w)
{
    return static_cast<std::uint32_t>(w >> 32);
}

constexpr std::uint32_t
limitOf(Word w)
{
    return static_cast<std::uint32_t>(w);
}

/** Which merge kernel is answering. */
enum class Kernel
{
    Scalar, ///< portable loop (also the DCATCH_NO_SIMD path)
    Avx2,   ///< 4 packed entries per step, runtime-CPUID gated
};

/** The kernel merges currently dispatch to. */
Kernel activeKernel();

/** Short kernel name for reports and benches. */
const char *kernelName(Kernel kernel);

/**
 * Test hook: force a specific kernel (ignores CPUID/env), or pass
 * nullptr to restore the default runtime selection.  Forcing Avx2 on
 * hardware without it (or in a -DDCATCH_ENABLE_SIMD=OFF build) falls
 * back to Scalar; check activeKernel() for the effective choice.
 */
void forceKernelForTest(const Kernel *kernel);

/**
 * Do rows @p a and @p b (both length @p n) cover the identical chain
 * sequence?  This is the gate for the elementwise fast path.
 */
bool sameChains(const Word *a, const Word *b, std::size_t n);

/**
 * Elementwise max of @p src into @p dst over @p n packed entries with
 * identical chain sequences (caller guarantees sameChains).
 * @return true when any dst word changed
 */
bool maxInPlace(Word *dst, const Word *src, std::size_t n);

/**
 * Would merging @p src (length @p nsrc) into @p dst (length @p ndst)
 * change dst?  Both rows are sorted by chain.  True when src carries a
 * chain dst lacks, or raises a limit dst already has.  This is the
 * different-shape prescan: most merges during worklist propagation are
 * no-ops, so the caller skips materialising the merged row entirely.
 */
bool mergeWouldChange(const Word *dst, std::size_t ndst,
                      const Word *src, std::size_t nsrc);

/**
 * Sorted merge of @p dst and @p src into @p out, taking the larger
 * packed word on equal chains.  @p out must have room for
 * ndst + nsrc words and must not alias either input.
 * @return the number of words written to out
 */
std::size_t mergeMax(Word *out, const Word *dst, std::size_t ndst,
                     const Word *src, std::size_t nsrc);

} // namespace dcatch::frontier

#endif // DCATCH_COMMON_FRONTIER_MERGE_HH
