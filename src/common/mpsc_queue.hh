/**
 * @file
 * Unbounded lock-free multi-producer / single-consumer queue
 * (Vyukov's non-intrusive MPSC design).
 *
 * The daemon's ingestion path: every connection-reader thread is a
 * producer pushing decoded frame batches; each session worker is the
 * single consumer draining its own queue.  Push is wait-free — one
 * exchange on the head plus one release store linking the previous
 * node — so producers never contend on a lock no matter how many
 * connections stream at once.  Pop is consumer-only and lock-free
 * except for the momentary window between a producer's exchange and
 * its link store, where the consumer simply observes "empty" and
 * retries later (the daemon polls between frames, so this costs
 * nothing).
 *
 * Contract:
 *  - any number of threads may call push() concurrently;
 *  - exactly one thread calls pop() / drain() at a time;
 *  - approxSize() is a relaxed counter for backpressure decisions and
 *    metrics, momentarily off by in-flight pushes by design;
 *  - the destructor drains remaining nodes (no concurrent use).
 *
 * Elements should be cheap to move (the serve path pushes small batch
 * handles, not individual records, so the per-push allocation
 * amortizes over hundreds of records).
 */

#ifndef DCATCH_COMMON_MPSC_QUEUE_HH
#define DCATCH_COMMON_MPSC_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <utility>

namespace dcatch {

template <typename T>
class MpscQueue
{
  public:
    MpscQueue()
    {
        Node *stub = new Node();
        head_.store(stub, std::memory_order_relaxed);
        tail_ = stub;
    }

    MpscQueue(const MpscQueue &) = delete;
    MpscQueue &operator=(const MpscQueue &) = delete;

    ~MpscQueue()
    {
        Node *n = tail_;
        while (n) {
            Node *next = n->next.load(std::memory_order_relaxed);
            delete n;
            n = next;
        }
    }

    /** Enqueue (any thread; wait-free). */
    void
    push(T value)
    {
        Node *node = new Node(std::move(value));
        // Claim the head slot, then link the previous head to us.  A
        // consumer arriving between the two sees a momentarily
        // unlinked suffix and reports empty — never a lost element.
        Node *prev = head_.exchange(node, std::memory_order_acq_rel);
        prev->next.store(node, std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Dequeue into @p out (consumer thread only).
     *  @return false when empty (or a push is mid-link). */
    bool
    pop(T &out)
    {
        Node *tail = tail_;
        Node *next = tail->next.load(std::memory_order_acquire);
        if (!next)
            return false;
        out = std::move(next->value);
        tail_ = next;
        delete tail;
        size_.fetch_sub(1, std::memory_order_relaxed);
        return true;
    }

    /**
     * Drain everything currently linked into @p sink (consumer thread
     * only).  @return number of elements consumed.
     */
    template <typename Sink>
    std::size_t
    drain(Sink &&sink)
    {
        std::size_t n = 0;
        T value;
        while (pop(value)) {
            sink(std::move(value));
            ++n;
        }
        return n;
    }

    /** Approximate element count (relaxed; for backpressure/metrics). */
    std::size_t
    approxSize() const
    {
        return size_.load(std::memory_order_relaxed);
    }

    /** True when nothing is linked (consumer thread only). */
    bool
    empty() const
    {
        return tail_->next.load(std::memory_order_acquire) == nullptr;
    }

  private:
    struct Node
    {
        Node() = default;
        explicit Node(T &&v) : value(std::move(v)) {}
        std::atomic<Node *> next{nullptr};
        T value{};
    };

    /** Most recently pushed node (producers exchange onto this). */
    std::atomic<Node *> head_;
    /** Consumer-owned stub; tail_->next is the next element out. */
    Node *tail_;
    std::atomic<std::size_t> size_{0};
};

} // namespace dcatch

#endif // DCATCH_COMMON_MPSC_QUEUE_HH
