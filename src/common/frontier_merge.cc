#include "common/frontier_merge.hh"

#include <atomic>
#include <cstdlib>

#if defined(DCATCH_ENABLE_SIMD) && (defined(__x86_64__) || defined(__i386__))
#define DCATCH_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#else
#define DCATCH_HAVE_AVX2_KERNELS 0
#endif

namespace dcatch::frontier {

namespace {

bool
sameChainsScalar(const Word *a, const Word *b, std::size_t n)
{
    // Chains sit in the high 32 bits; the limits may differ freely.
    Word diff = 0;
    for (std::size_t i = 0; i < n; ++i)
        diff |= (a[i] ^ b[i]) >> 32;
    return diff == 0;
}

bool
maxInPlaceScalar(Word *dst, const Word *src, std::size_t n)
{
    // Equal chains make the equal-chain entry max a plain word max
    // (the limit owns the low bits).  Tracking "changed" as an OR of
    // compares keeps the loop branch-free for the autovectoriser even
    // without the explicit AVX2 kernel.
    Word changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
        Word s = src[i], d = dst[i];
        if (s > d) {
            dst[i] = s;
            changed = 1;
        }
    }
    return changed != 0;
}

#if DCATCH_HAVE_AVX2_KERNELS

__attribute__((target("avx2"))) bool
sameChainsAvx2(const Word *a, const Word *b, std::size_t n)
{
    const __m256i high = _mm256_set1_epi64x(
        static_cast<long long>(0xffffffff00000000ull));
    std::size_t i = 0;
    __m256i acc = _mm256_setzero_si256();
    for (; i + 4 <= n; i += 4) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        acc = _mm256_or_si256(acc, _mm256_xor_si256(va, vb));
    }
    if (!_mm256_testz_si256(acc, high))
        return false;
    return sameChainsScalar(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) bool
maxInPlaceAvx2(Word *dst, const Word *src, std::size_t n)
{
    // Packed words stay below 2^63 (chain and limit are both < 2^31),
    // so the signed 64-bit compare AVX2 provides is an unsigned max.
    std::size_t i = 0;
    __m256i any = _mm256_setzero_si256();
    for (; i + 4 <= n; i += 4) {
        __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        __m256i gt = _mm256_cmpgt_epi64(s, d);
        any = _mm256_or_si256(any, gt);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + i),
            _mm256_blendv_epi8(d, s, gt));
    }
    bool changed = !_mm256_testz_si256(any, any);
    changed |= maxInPlaceScalar(dst + i, src + i, n - i);
    return changed;
}

bool
cpuHasAvx2()
{
    return __builtin_cpu_supports("avx2") != 0;
}

#endif // DCATCH_HAVE_AVX2_KERNELS

/** -1 = runtime selection, otherwise a forced Kernel value. */
std::atomic<int> forced{-1};

Kernel
runtimeKernel()
{
#if DCATCH_HAVE_AVX2_KERNELS
    static const bool avx2 =
        cpuHasAvx2() && std::getenv("DCATCH_NO_SIMD") == nullptr;
    return avx2 ? Kernel::Avx2 : Kernel::Scalar;
#else
    return Kernel::Scalar;
#endif
}

Kernel
effectiveKernel()
{
    int f = forced.load(std::memory_order_relaxed);
    if (f < 0)
        return runtimeKernel();
#if DCATCH_HAVE_AVX2_KERNELS
    if (static_cast<Kernel>(f) == Kernel::Avx2 && cpuHasAvx2())
        return Kernel::Avx2;
#endif
    return Kernel::Scalar;
}

} // namespace

Kernel
activeKernel()
{
    return effectiveKernel();
}

const char *
kernelName(Kernel kernel)
{
    return kernel == Kernel::Avx2 ? "avx2" : "scalar";
}

void
forceKernelForTest(const Kernel *kernel)
{
    forced.store(kernel ? static_cast<int>(*kernel) : -1,
                 std::memory_order_relaxed);
}

bool
sameChains(const Word *a, const Word *b, std::size_t n)
{
#if DCATCH_HAVE_AVX2_KERNELS
    if (effectiveKernel() == Kernel::Avx2)
        return sameChainsAvx2(a, b, n);
#endif
    return sameChainsScalar(a, b, n);
}

bool
maxInPlace(Word *dst, const Word *src, std::size_t n)
{
#if DCATCH_HAVE_AVX2_KERNELS
    if (effectiveKernel() == Kernel::Avx2)
        return maxInPlaceAvx2(dst, src, n);
#endif
    return maxInPlaceScalar(dst, src, n);
}

} // namespace dcatch::frontier
