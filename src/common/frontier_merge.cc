#include "common/frontier_merge.hh"

#include <atomic>
#include <cstdlib>

#if defined(DCATCH_ENABLE_SIMD) && (defined(__x86_64__) || defined(__i386__))
#define DCATCH_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#else
#define DCATCH_HAVE_AVX2_KERNELS 0
#endif

namespace dcatch::frontier {

namespace {

bool
sameChainsScalar(const Word *a, const Word *b, std::size_t n)
{
    // Chains sit in the high 32 bits; the limits may differ freely.
    Word diff = 0;
    for (std::size_t i = 0; i < n; ++i)
        diff |= (a[i] ^ b[i]) >> 32;
    return diff == 0;
}

bool
maxInPlaceScalar(Word *dst, const Word *src, std::size_t n)
{
    // Equal chains make the equal-chain entry max a plain word max
    // (the limit owns the low bits).  Tracking "changed" as an OR of
    // compares keeps the loop branch-free for the autovectoriser even
    // without the explicit AVX2 kernel.
    Word changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
        Word s = src[i], d = dst[i];
        if (s > d) {
            dst[i] = s;
            changed = 1;
        }
    }
    return changed != 0;
}

bool
mergeWouldChangeScalar(const Word *dst, std::size_t ndst,
                       const Word *src, std::size_t nsrc)
{
    std::size_t i = 0, j = 0;
    while (j < nsrc) {
        if (i == ndst || chainOf(src[j]) < chainOf(dst[i]))
            return true; // src carries a chain dst lacks
        if (chainOf(dst[i]) < chainOf(src[j])) {
            ++i;
        } else {
            if (src[j] > dst[i])
                return true; // equal chain, higher limit
            ++i;
            ++j;
        }
    }
    return false;
}

std::size_t
mergeMaxScalar(Word *out, const Word *dst, std::size_t ndst,
               const Word *src, std::size_t nsrc)
{
    std::size_t i = 0, j = 0, o = 0;
    while (i < ndst || j < nsrc) {
        if (j == nsrc ||
            (i < ndst && chainOf(dst[i]) < chainOf(src[j]))) {
            out[o++] = dst[i++];
        } else if (i == ndst || chainOf(src[j]) < chainOf(dst[i])) {
            out[o++] = src[j++];
        } else {
            // Equal chains: the bigger packed word carries the bigger
            // limit.
            Word d = dst[i++], s = src[j++];
            out[o++] = d > s ? d : s;
        }
    }
    return o;
}

#if DCATCH_HAVE_AVX2_KERNELS

__attribute__((target("avx2"))) bool
sameChainsAvx2(const Word *a, const Word *b, std::size_t n)
{
    const __m256i high = _mm256_set1_epi64x(
        static_cast<long long>(0xffffffff00000000ull));
    std::size_t i = 0;
    __m256i acc = _mm256_setzero_si256();
    for (; i + 4 <= n; i += 4) {
        __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        acc = _mm256_or_si256(acc, _mm256_xor_si256(va, vb));
    }
    if (!_mm256_testz_si256(acc, high))
        return false;
    return sameChainsScalar(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) bool
maxInPlaceAvx2(Word *dst, const Word *src, std::size_t n)
{
    // Packed words stay below 2^63 (chain and limit are both < 2^31),
    // so the signed 64-bit compare AVX2 provides is an unsigned max.
    std::size_t i = 0;
    __m256i any = _mm256_setzero_si256();
    for (; i + 4 <= n; i += 4) {
        __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        __m256i gt = _mm256_cmpgt_epi64(s, d);
        any = _mm256_or_si256(any, gt);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + i),
            _mm256_blendv_epi8(d, s, gt));
    }
    bool changed = !_mm256_testz_si256(any, any);
    changed |= maxInPlaceScalar(dst + i, src + i, n - i);
    return changed;
}

__attribute__((target("avx2"))) bool
mergeWouldChangeAvx2(const Word *dst, std::size_t ndst,
                     const Word *src, std::size_t nsrc)
{
    // Mixed rows are mostly equal-chain runs with a few insertions:
    // stream 4-word blocks while the chain sequences agree (one xor /
    // testz shape check, one packed compare), and take a single scalar
    // two-pointer step at each shape mismatch to realign.
    const __m256i high = _mm256_set1_epi64x(
        static_cast<long long>(0xffffffff00000000ull));
    std::size_t i = 0, j = 0;
    while (j < nsrc) {
        while (i + 4 <= ndst && j + 4 <= nsrc) {
            __m256i d = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(dst + i));
            __m256i s = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(src + j));
            if (!_mm256_testz_si256(_mm256_xor_si256(d, s), high))
                break; // chains diverge inside the block
            __m256i gt = _mm256_cmpgt_epi64(s, d);
            if (!_mm256_testz_si256(gt, gt))
                return true; // src raises a limit
            i += 4;
            j += 4;
        }
        if (j == nsrc)
            break;
        if (i == ndst || chainOf(src[j]) < chainOf(dst[i]))
            return true;
        if (chainOf(dst[i]) < chainOf(src[j])) {
            ++i;
        } else {
            if (src[j] > dst[i])
                return true;
            ++i;
            ++j;
        }
    }
    return false;
}

__attribute__((target("avx2"))) std::size_t
mergeMaxAvx2(Word *out, const Word *dst, std::size_t ndst,
             const Word *src, std::size_t nsrc)
{
    const __m256i high = _mm256_set1_epi64x(
        static_cast<long long>(0xffffffff00000000ull));
    std::size_t i = 0, j = 0, o = 0;
    while (i < ndst || j < nsrc) {
        while (i + 4 <= ndst && j + 4 <= nsrc) {
            __m256i d = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(dst + i));
            __m256i s = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(src + j));
            if (!_mm256_testz_si256(_mm256_xor_si256(d, s), high))
                break;
            __m256i gt = _mm256_cmpgt_epi64(s, d);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(out + o),
                _mm256_blendv_epi8(d, s, gt));
            i += 4;
            j += 4;
            o += 4;
        }
        if (i == ndst && j == nsrc)
            break;
        if (j == nsrc ||
            (i < ndst && chainOf(dst[i]) < chainOf(src[j]))) {
            out[o++] = dst[i++];
        } else if (i == ndst || chainOf(src[j]) < chainOf(dst[i])) {
            out[o++] = src[j++];
        } else {
            Word d = dst[i++], s = src[j++];
            out[o++] = d > s ? d : s;
        }
    }
    return o;
}

bool
cpuHasAvx2()
{
    return __builtin_cpu_supports("avx2") != 0;
}

#endif // DCATCH_HAVE_AVX2_KERNELS

/** -1 = runtime selection, otherwise a forced Kernel value. */
std::atomic<int> forced{-1};

Kernel
runtimeKernel()
{
#if DCATCH_HAVE_AVX2_KERNELS
    static const bool avx2 =
        cpuHasAvx2() && std::getenv("DCATCH_NO_SIMD") == nullptr;
    return avx2 ? Kernel::Avx2 : Kernel::Scalar;
#else
    return Kernel::Scalar;
#endif
}

Kernel
effectiveKernel()
{
    int f = forced.load(std::memory_order_relaxed);
    if (f < 0)
        return runtimeKernel();
#if DCATCH_HAVE_AVX2_KERNELS
    if (static_cast<Kernel>(f) == Kernel::Avx2 && cpuHasAvx2())
        return Kernel::Avx2;
#endif
    return Kernel::Scalar;
}

} // namespace

Kernel
activeKernel()
{
    return effectiveKernel();
}

const char *
kernelName(Kernel kernel)
{
    return kernel == Kernel::Avx2 ? "avx2" : "scalar";
}

void
forceKernelForTest(const Kernel *kernel)
{
    forced.store(kernel ? static_cast<int>(*kernel) : -1,
                 std::memory_order_relaxed);
}

bool
sameChains(const Word *a, const Word *b, std::size_t n)
{
#if DCATCH_HAVE_AVX2_KERNELS
    if (effectiveKernel() == Kernel::Avx2)
        return sameChainsAvx2(a, b, n);
#endif
    return sameChainsScalar(a, b, n);
}

bool
maxInPlace(Word *dst, const Word *src, std::size_t n)
{
#if DCATCH_HAVE_AVX2_KERNELS
    if (effectiveKernel() == Kernel::Avx2)
        return maxInPlaceAvx2(dst, src, n);
#endif
    return maxInPlaceScalar(dst, src, n);
}

bool
mergeWouldChange(const Word *dst, std::size_t ndst, const Word *src,
                 std::size_t nsrc)
{
#if DCATCH_HAVE_AVX2_KERNELS
    if (effectiveKernel() == Kernel::Avx2)
        return mergeWouldChangeAvx2(dst, ndst, src, nsrc);
#endif
    return mergeWouldChangeScalar(dst, ndst, src, nsrc);
}

std::size_t
mergeMax(Word *out, const Word *dst, std::size_t ndst, const Word *src,
         std::size_t nsrc)
{
#if DCATCH_HAVE_AVX2_KERNELS
    if (effectiveKernel() == Kernel::Avx2)
        return mergeMaxAvx2(out, dst, ndst, src, nsrc);
#endif
    return mergeMaxScalar(out, dst, ndst, src, nsrc);
}

} // namespace dcatch::frontier
