/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every source of nondeterminism in the simulation flows through a
 * seeded Rng so that a (seed, workload) pair replays identically.
 * We use SplitMix64, which is tiny, fast, and has well-understood
 * statistical behaviour for simulation scheduling purposes.
 */

#ifndef DCATCH_COMMON_RNG_HH
#define DCATCH_COMMON_RNG_HH

#include <cstdint>

namespace dcatch {

/** Deterministic SplitMix64 generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed)
    {}

    /**
     * The SplitMix64 output function: a stateless 64-bit mixer.
     * next() is mix(seed + k * gamma) for the k-th call, so pure
     * (stateless) consumers — the scheduler policies foremost — can
     * reproduce a draw sequence from (seed, k) alone.
     */
    static std::uint64_t
    mix(std::uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** The additive constant next() advances the state by. */
    static constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ull;

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        return mix(state_ += kGamma);
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    nextRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        nextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability num/den. */
    bool
    nextChance(std::uint64_t num, std::uint64_t den)
    {
        return nextBelow(den) < num;
    }

  private:
    std::uint64_t state_;
};

} // namespace dcatch

#endif // DCATCH_COMMON_RNG_HH
