#include "common/json.hh"

#include <cmath>

#include "common/util.hh"

namespace dcatch {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (unsigned char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::str(std::string value)
{
    Json j;
    j.kind_ = Kind::String;
    j.string_ = std::move(value);
    return j;
}

Json
Json::num(double value)
{
    Json j;
    j.kind_ = Kind::Number;
    j.number_ = value;
    return j;
}

Json
Json::num(std::int64_t value)
{
    Json j;
    j.kind_ = Kind::Integer;
    j.integer_ = value;
    return j;
}

Json
Json::boolean(bool value)
{
    Json j;
    j.kind_ = Kind::Bool;
    j.bool_ = value;
    return j;
}

Json
Json::null()
{
    return Json{};
}

Json &
Json::set(const std::string &key, Json value)
{
    fields_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    elements_.push_back(std::move(value));
    return *this;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto pad = [&](int d) {
        if (indent < 0)
            return std::string();
        return "\n" + std::string(static_cast<std::size_t>(indent * d),
                                  ' ');
    };
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Integer:
        out += strprintf("%lld", static_cast<long long>(integer_));
        break;
      case Kind::Number:
        if (std::isfinite(number_))
            out += strprintf("%.6g", number_);
        else
            out += "null";
        break;
      case Kind::String:
        out += "\"" + jsonEscape(string_) + "\"";
        break;
      case Kind::Array: {
        if (elements_.empty()) {
            out += "[]";
            break;
        }
        out += "[";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            out += pad(depth + 1);
            elements_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < elements_.size())
                out += ",";
        }
        out += pad(depth) + "]";
        break;
      }
      case Kind::Object: {
        if (fields_.empty()) {
            out += "{}";
            break;
        }
        out += "{";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            out += pad(depth + 1);
            out += "\"" + jsonEscape(fields_[i].first) + "\": ";
            fields_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < fields_.size())
                out += ",";
        }
        out += pad(depth) + "}";
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

} // namespace dcatch
