/**
 * @file
 * Minimal JSON writer (no parsing): enough to export DCbug reports
 * and pipeline metrics for downstream tooling.  Values are built
 * bottom-up and serialized with stable key order.
 */

#ifndef DCATCH_COMMON_JSON_HH
#define DCATCH_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dcatch {

/** A JSON value (object keys keep insertion order). */
class Json
{
  public:
    /// @{ @name Constructors for each JSON kind
    static Json object();
    static Json array();
    static Json str(std::string value);
    static Json num(double value);
    static Json num(std::int64_t value);
    static Json boolean(bool value);
    static Json null();
    /// @}

    /** Object field setter (returns *this for chaining). */
    Json &set(const std::string &key, Json value);

    /** Array element appender. */
    Json &push(Json value);

    /** Serialize; @p indent < 0 gives compact output. */
    std::string dump(int indent = 2) const;

  private:
    enum class Kind { Object, Array, String, Number, Integer, Bool, Null };

    Json() = default;

    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    std::string string_;
    double number_ = 0;
    std::int64_t integer_ = 0;
    bool bool_ = false;
    std::vector<std::pair<std::string, Json>> fields_;
    std::vector<Json> elements_;
};

/** Escape a string for embedding in JSON output. */
std::string jsonEscape(const std::string &text);

} // namespace dcatch

#endif // DCATCH_COMMON_JSON_HH
