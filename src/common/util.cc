#include "common/util.hh"

#include <cstdarg>
#include <cstdio>

namespace dcatch {

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (true) {
        std::size_t end = text.find(sep, begin);
        if (end == std::string::npos) {
            out.push_back(text.substr(begin));
            return out;
        }
        out.push_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
}

std::uint64_t
fnv1a(std::string_view text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (len > 0) {
        out.resize(static_cast<std::size_t>(len));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

} // namespace dcatch
