#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace dcatch {

namespace {

std::atomic<int> gLevel{-1};
std::mutex gEmitMutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Trace: return "TRACE";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

/** Resolve the initial level lazily from the environment. */
int
resolveLevel()
{
    int lvl = gLevel.load(std::memory_order_relaxed);
    if (lvl >= 0)
        return lvl;
    const char *env = std::getenv("DCATCH_LOG");
    LogLevel initial = env ? parseLogLevel(env) : LogLevel::Warn;
    gLevel.store(static_cast<int>(initial), std::memory_order_relaxed);
    return static_cast<int>(initial);
}

} // namespace

LogLevel
logLevel()
{
    return static_cast<LogLevel>(resolveLevel());
}

void
setLogLevel(LogLevel level)
{
    gLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
parseLogLevel(const std::string &name)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower.push_back(static_cast<char>(std::tolower(c)));
    if (lower == "trace") return LogLevel::Trace;
    if (lower == "debug") return LogLevel::Debug;
    if (lower == "info") return LogLevel::Info;
    if (lower == "warn" || lower == "warning") return LogLevel::Warn;
    if (lower == "error") return LogLevel::Error;
    if (lower == "off" || lower == "none") return LogLevel::Off;
    return LogLevel::Info;
}

void
logLine(LogLevel level, const std::string &msg)
{
    if (!logEnabled(level))
        return;
    std::lock_guard<std::mutex> guard(gEmitMutex);
    std::fprintf(stderr, "[dcatch:%s] %s\n", levelName(level), msg.c_str());
}

} // namespace dcatch
