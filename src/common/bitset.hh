/**
 * @file
 * Dynamically sized bitset used for HB-graph reachable sets.
 *
 * The race detector computes, for every vertex of the happens-before
 * graph, the set of vertices that can reach it (Raychev et al.'s
 * algorithm referenced in DCatch section 3.2.2).  Graphs have 10^4..10^6
 * vertices, so reachable sets are stored as packed bit arrays and
 * merged with word-wise ORs.
 */

#ifndef DCATCH_COMMON_BITSET_HH
#define DCATCH_COMMON_BITSET_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dcatch {

/** Fixed-capacity packed bit array with word-wise union. */
class BitSet
{
  public:
    BitSet() = default;

    /** Construct with capacity for @p nbits bits, all clear. */
    explicit BitSet(std::size_t nbits)
        : nbits_(nbits), words_((nbits + 63) / 64, 0)
    {}

    /** Number of addressable bits. */
    std::size_t size() const { return nbits_; }

    /** Set bit @p idx. */
    void
    set(std::size_t idx)
    {
        words_[idx >> 6] |= (std::uint64_t{1} << (idx & 63));
    }

    /** Clear bit @p idx. */
    void
    reset(std::size_t idx)
    {
        words_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    }

    /** Test bit @p idx. */
    bool
    test(std::size_t idx) const
    {
        return (words_[idx >> 6] >> (idx & 63)) & 1;
    }

    /**
     * Word-wise union with @p other (must have identical capacity).
     * @return true if any bit of this set changed.
     */
    bool
    unionWith(const BitSet &other)
    {
        bool changed = false;
        for (std::size_t i = 0; i < words_.size(); ++i) {
            std::uint64_t merged = words_[i] | other.words_[i];
            if (merged != words_[i]) {
                words_[i] = merged;
                changed = true;
            }
        }
        return changed;
    }

    /** Number of set bits. */
    std::size_t
    count() const
    {
        std::size_t n = 0;
        for (std::uint64_t w : words_)
            n += static_cast<std::size_t>(__builtin_popcountll(w));
        return n;
    }

    /** Approximate heap footprint in bytes (for scalability stats). */
    std::size_t byteSize() const { return words_.size() * sizeof(std::uint64_t); }

  private:
    std::size_t nbits_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace dcatch

#endif // DCATCH_COMMON_BITSET_HH
