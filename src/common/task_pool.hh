/**
 * @file
 * Deterministic work-stealing task pool for the analysis side of the
 * pipeline (sharded race detection, concurrent trigger exploration,
 * multi-run bench drivers).
 *
 * Determinism contract (see docs/parallelism.md): the pool never
 * makes scheduling order observable in results.  parallelFor(n, body)
 * runs body(i) for every i in [0, n) exactly once, on an unspecified
 * worker at an unspecified time; the *task index* is the only
 * identity a body may key its output on.  Callers write results into
 * index-addressed slots and merge them in index order afterwards, so
 * the merged output is byte-identical to a serial loop regardless of
 * worker count, stealing pattern, or wall-clock interleaving.
 *
 * Work distribution: indices are pre-split into one contiguous range
 * per worker; each worker drains its own range front-to-back and,
 * when empty, steals the back half of the largest remaining victim
 * range.  Stealing halves (rather than single indices) keeps lock
 * traffic proportional to the imbalance, not to n.
 *
 * Thread provisioning is decoupled from the logical width: a pool
 * remembers (and reports) the jobs it was asked for, but spawns at
 * most hardwareJobs() - 1 workers — oversubscribing a small machine
 * only adds context-switch overhead, and on a single-core host the
 * pool then spawns nothing at all, so parallelFor degenerates to the
 * exact serial loop (no shard mutexes, no wake/done handshakes; this
 * is what keeps the jobs>1 configuration overhead-free on one core).
 * Tests that need real concurrency regardless of the host pass
 * oversubscribe = true (or set DCATCH_OVERSUBSCRIBE) to spawn the
 * full logical width.
 *
 * A pool running inline (jobs == 1 or nothing spawned) propagates a
 * body's exception immediately, aborting later indices — callers must
 * not rely on every index running when any body throws.
 */

#ifndef DCATCH_COMMON_TASK_POOL_HH
#define DCATCH_COMMON_TASK_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dcatch {

/** Fixed-width work-stealing pool; see file comment for the
 *  determinism contract. */
class TaskPool
{
  public:
    /**
     * @param jobs logical worker count, >= 1; 1 means "no threads,
     *        run inline" (use resolveJobs() to map a user-facing 0 to
     *        the hardware concurrency)
     * @param oversubscribe spawn the full logical width even beyond
     *        the hardware concurrency (tests needing real threads on
     *        small hosts; also forced by the DCATCH_OVERSUBSCRIBE
     *        environment variable)
     */
    explicit TaskPool(int jobs, bool oversubscribe = false);
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /** Logical worker count this pool was built with (>= 1).  This is
     *  what reports show; the spawned thread count may be lower. */
    int jobs() const { return jobs_; }

    /** Worker threads actually spawned (0 when running inline). */
    int spawnedThreads() const
    {
        return static_cast<int>(threads_.size());
    }

    /** max(1, std::thread::hardware_concurrency()). */
    static int hardwareJobs();

    /**
     * Map a user-facing jobs request to an effective worker count:
     * 0 selects the hardware concurrency, anything >= 1 is taken
     * as-is.  (Negative values are a caller bug; treated as 1.)
     */
    static int resolveJobs(int requested);

    /**
     * Run body(i) for every i in [0, n); returns once all ran.  The
     * caller participates as a worker.  If any body throws, the
     * first exception (in task-index order) is rethrown after all
     * tasks finished — never concurrently with running bodies.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

  private:
    /** One worker's index range; stolen-from under its mutex. */
    struct Shard
    {
        std::mutex mutex;
        std::size_t begin = 0;
        std::size_t end = 0;
    };

    void workerLoop(std::size_t self);
    void drain(std::size_t self);
    bool takeOwn(std::size_t self, std::size_t &index);
    bool stealInto(std::size_t self);
    void recordError(std::size_t index);

    int jobs_;
    std::vector<std::thread> threads_;
    std::vector<Shard> shards_;

    // Current parallelFor (guarded by mutex_ for the scalar fields;
    // body_ is written before workers are released and read-only
    // while they run).
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(std::size_t)> *body_ = nullptr;
    std::size_t generation_ = 0; ///< bumped per parallelFor
    std::size_t active_ = 0;     ///< workers still draining
    bool stop_ = false;

    // First failing task (lowest index wins, for determinism).
    std::mutex errorMutex_;
    std::exception_ptr error_;
    std::size_t errorIndex_ = 0;
};

} // namespace dcatch

#endif // DCATCH_COMMON_TASK_POOL_HH
