/**
 * @file
 * Small shared utilities: string joining/splitting, stable hashing,
 * and a wall-clock stopwatch for the performance benchmarks.
 */

#ifndef DCATCH_COMMON_UTIL_HH
#define DCATCH_COMMON_UTIL_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dcatch {

/** Join @p parts with @p sep ("a", "b" -> "a<sep>b"). */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Split @p text on character @p sep; no empty-token suppression. */
std::vector<std::string> split(const std::string &text, char sep);

/** FNV-1a 64-bit hash, stable across runs and platforms. */
std::uint64_t fnv1a(std::string_view text);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Wall-clock stopwatch; used to time pipeline phases. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Restart the measurement. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed time in seconds since construction or reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed time in milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace dcatch

#endif // DCATCH_COMMON_UTIL_HH
