/**
 * @file
 * Append-only vector with stable element addresses and a
 * single-writer / concurrent-reader publication contract.
 *
 * The daemon (`src/serve/`) appends trace records to a session's
 * TraceStore while the incremental HB engine and the online detector
 * read earlier rows from the same store — continuously, not just
 * after a fork barrier.  std::vector cannot support that: push_back
 * reallocates, invalidating every element a reader might be touching.
 *
 * StableVector stores elements in geometrically growing chunks
 * (64, 128, 256, ... elements) that are allocated once and never
 * moved, indexed by closed-form bit math.  The writer publishes a new
 * element by storing it into its pre-allocated slot and then bumping
 * the size with release ordering; a reader that observes size() >= n
 * with acquire ordering may freely read elements [0, n) — the chunk
 * pointer stores and the element write are sequenced before the size
 * store, so the release/acquire pair on size_ makes them visible.
 * Chunk pointers are themselves atomics (relaxed) purely so the
 * pointer loads are not data races under the memory model.
 *
 * Contract:
 *  - exactly one thread calls push_back / emplace_back / clear /
 *    assignment at a time (no internal locking);
 *  - any number of threads may concurrently call size(), operator[],
 *    at(), back(), begin()/end() for indexes below an observed size;
 *  - copy/move construction and assignment require the source (and
 *    destination) to be quiescent — they are for setup/teardown and
 *    store copies, not for concurrent use.
 *
 * Iterators snapshot the size at begin(): a range-for sees the
 * elements published at that instant, never a torn suffix.
 */

#ifndef DCATCH_COMMON_STABLE_VECTOR_HH
#define DCATCH_COMMON_STABLE_VECTOR_HH

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace dcatch {

template <typename T>
class StableVector
{
  public:
    StableVector() = default;

    StableVector(const StableVector &other) { appendFrom(other); }

    StableVector &
    operator=(const StableVector &other)
    {
        if (this != &other) {
            clear();
            appendFrom(other);
        }
        return *this;
    }

    StableVector(StableVector &&other) noexcept { stealFrom(other); }

    StableVector &
    operator=(StableVector &&other) noexcept
    {
        if (this != &other) {
            destroyChunks();
            stealFrom(other);
        }
        return *this;
    }

    ~StableVector() { destroyChunks(); }

    /** Published element count (acquire: elements below it are
     *  readable). */
    std::size_t
    size() const
    {
        return size_.load(std::memory_order_acquire);
    }

    bool empty() const { return size() == 0; }

    const T &
    operator[](std::size_t i) const
    {
        return *slot(i);
    }

    T &
    operator[](std::size_t i)
    {
        return *slot(i);
    }

    const T &back() const { return (*this)[size() - 1]; }

    /** Append (writer only).  Returns the element's index. */
    std::size_t
    push_back(const T &value)
    {
        std::size_t i = size_.load(std::memory_order_relaxed);
        *writableSlot(i) = value;
        size_.store(i + 1, std::memory_order_release);
        return i;
    }

    /** Append by move (writer only). */
    std::size_t
    push_back(T &&value)
    {
        std::size_t i = size_.load(std::memory_order_relaxed);
        *writableSlot(i) = std::move(value);
        size_.store(i + 1, std::memory_order_release);
        return i;
    }

    /** Grow with default-constructed elements until size() >= n
     *  (writer only). */
    void
    ensureSize(std::size_t n)
    {
        std::size_t i = size_.load(std::memory_order_relaxed);
        while (i < n) {
            writableSlot(i); // allocate; slot is default-constructed
            ++i;
        }
        if (n > size_.load(std::memory_order_relaxed))
            size_.store(n, std::memory_order_release);
    }

    /**
     * Drop all elements (writer only; no concurrent readers).  Keeps
     * the allocated chunks — elements are reset to default on reuse
     * by assignment in push_back.
     */
    void
    clear()
    {
        // Re-default live slots so reused elements do not leak state
        // (matters for T with ownership, e.g. nested StableVectors).
        std::size_t n = size_.load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < n; ++i)
            *slot(i) = T();
        size_.store(0, std::memory_order_release);
    }

    /** Bytes of allocated chunk storage (capacity, not size). */
    std::size_t
    capacityBytes() const
    {
        std::size_t bytes = 0;
        for (std::size_t c = 0; c < kMaxChunks; ++c)
            if (chunks_[c].load(std::memory_order_relaxed))
                bytes += chunkCapacity(c) * sizeof(T);
        return bytes;
    }

    /** Input iterator over a size snapshot taken at begin(). */
    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = const T *;
        using reference = const T &;

        const T &operator*() const { return (*v_)[i_]; }
        const T *operator->() const { return &(*v_)[i_]; }
        const_iterator &
        operator++()
        {
            ++i_;
            return *this;
        }
        bool
        operator!=(const const_iterator &o) const
        {
            return i_ != o.i_;
        }
        bool
        operator==(const const_iterator &o) const
        {
            return i_ == o.i_;
        }

      private:
        friend class StableVector;
        const_iterator(const StableVector *v, std::size_t i)
            : v_(v), i_(i)
        {
        }
        const StableVector *v_;
        std::size_t i_;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size()}; }

  private:
    /** First chunk holds 64 elements; chunk c holds 64 << c. */
    static constexpr std::size_t kBaseShift = 6;
    /** 64 * (2^26 - 1) ≈ 4.3e9 elements of headroom. */
    static constexpr std::size_t kMaxChunks = 26;

    static constexpr std::size_t
    chunkCapacity(std::size_t chunk)
    {
        return std::size_t{1} << (kBaseShift + chunk);
    }

    /** chunk index and in-chunk offset for element i. */
    static constexpr std::pair<std::size_t, std::size_t>
    locate(std::size_t i)
    {
        std::size_t chunk =
            static_cast<std::size_t>(
                std::bit_width((i >> kBaseShift) + 1)) -
            1;
        std::size_t base = ((std::size_t{1} << chunk) - 1)
                           << kBaseShift;
        return {chunk, i - base};
    }

    const T *
    slot(std::size_t i) const
    {
        auto [chunk, off] = locate(i);
        T *base = chunks_[chunk].load(std::memory_order_relaxed);
        assert(base && "index beyond allocated storage");
        return base + off;
    }

    T *
    slot(std::size_t i)
    {
        auto [chunk, off] = locate(i);
        T *base = chunks_[chunk].load(std::memory_order_relaxed);
        assert(base && "index beyond allocated storage");
        return base + off;
    }

    /** Writer-side slot access; allocates the chunk on first touch. */
    T *
    writableSlot(std::size_t i)
    {
        auto [chunk, off] = locate(i);
        assert(chunk < kMaxChunks && "StableVector exhausted");
        T *base = chunks_[chunk].load(std::memory_order_relaxed);
        if (!base) {
            base = new T[chunkCapacity(chunk)]();
            chunks_[chunk].store(base, std::memory_order_relaxed);
        }
        return base + off;
    }

    void
    destroyChunks()
    {
        for (std::size_t c = 0; c < kMaxChunks; ++c) {
            T *base = chunks_[c].load(std::memory_order_relaxed);
            delete[] base;
            chunks_[c].store(nullptr, std::memory_order_relaxed);
        }
        size_.store(0, std::memory_order_relaxed);
    }

    void
    appendFrom(const StableVector &other)
    {
        std::size_t n = other.size();
        for (std::size_t i = 0; i < n; ++i)
            push_back(other[i]);
    }

    void
    stealFrom(StableVector &other) noexcept
    {
        for (std::size_t c = 0; c < kMaxChunks; ++c) {
            chunks_[c].store(
                other.chunks_[c].load(std::memory_order_relaxed),
                std::memory_order_relaxed);
            other.chunks_[c].store(nullptr,
                                   std::memory_order_relaxed);
        }
        size_.store(other.size_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
        other.size_.store(0, std::memory_order_relaxed);
    }

    std::atomic<T *> chunks_[kMaxChunks] = {};
    std::atomic<std::size_t> size_{0};
};

} // namespace dcatch

#endif // DCATCH_COMMON_STABLE_VECTOR_HH
