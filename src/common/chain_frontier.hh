/**
 * @file
 * Chain-decomposed reachability index for happens-before DAGs.
 *
 * This is the EventRacer-style representation DCatch cites in section
 * 3.2.2 (Raychev et al.): instead of one dense ancestor bit array per
 * vertex (O(V^2) bytes), the vertex set is decomposed into *chains* —
 * subsets totally ordered by happens-before, positions increasing
 * with topological index — and each vertex stores a compact frontier:
 * for every chain that contains at least one ancestor, the highest
 * reachable position in that chain.  A reachability query is then a
 * chain compare (same chain) or one binary search in a small sorted
 * frontier row.
 *
 * Three engineering devices keep the footprint near-linear in V:
 *
 *  1. **Sparse rows.**  A frontier row holds (chain, limit) entries
 *     only for chains actually reached; in event-driven traces one
 *     handler's ancestor cone spans few chains, so rows stay short
 *     even when the chain count grows with the trace.
 *
 *  2. **Row sharing.**  A vertex whose only predecessor is its chain
 *     predecessor has exactly its predecessor's ancestors outside its
 *     own chain, so it aliases the predecessor's row instead of
 *     materialising one.  Rows exist only at "join" vertices (>= 2
 *     predecessors) and chain heads.  The own-chain entry of a shared
 *     row is deliberately never consulted (same-chain queries compare
 *     positions), which is what makes the aliasing sound.
 *
 *  3. **Incremental closure.**  Adding an edge u -> v merges u's
 *     frontier into v and propagates forward along the *affected
 *     cone* only (monotone worklist in topological order), instead of
 *     recomputing all V rows — this turns the Rule-Eserial fixpoint
 *     and pull-edge batches from O(iterations * V^2) into near-linear
 *     work.
 *
 * Rows store entries *packed* — one 64-bit word per entry, chain in
 * the high half, limit in the low half (common/frontier_merge.hh) —
 * so the inner merge loop of the worklist re-closure operates on
 * whole words: rows over the same chain set (the overwhelmingly
 * common case, a vertex merging its chain predecessor's row) collapse
 * to an elementwise unsigned max, vectorised under AVX2 when the CPU
 * has it.  Rows over different chain sets take the sorted-merge
 * kernels, which stream equal-chain runs in 4-word blocks under AVX2
 * and realign with scalar steps at shape mismatches.
 *
 * After derived edges (Eserial) have been added, repack() re-runs the
 * chain decomposition greedily against the now-complete order: handler
 * instances serialized by Eserial collapse into shared chains, which
 * shrinks both the chain count and every frontier row.
 *
 * The index is generic over any DAG given as predecessor lists whose
 * edges all point forward in index order (index order == one valid
 * topological order), which is exactly the HB-graph invariant.
 */

#ifndef DCATCH_COMMON_CHAIN_FRONTIER_HH
#define DCATCH_COMMON_CHAIN_FRONTIER_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/frontier_merge.hh"

namespace dcatch {

/** Chain-decomposed sparse-frontier reachability index. */
class ChainFrontierIndex
{
  public:
    /**
     * A frontier row: packed (chain, limit) words sorted by chain.
     * Decode entries with frontier::chainOf / frontier::limitOf; the
     * limit is the max ancestor position in that chain, plus one.
     */
    using Row = std::vector<frontier::Word>;

    ChainFrontierIndex() = default;

    /**
     * Build over a DAG in topological (index) order.
     * @param preds in-edge lists; every edge points forward in index
     *              order; the referenced object must outlive the index
     *              (addEdge/repack re-read it)
     * @param chainHint per-vertex chain predecessor (e.g. the HB
     *              graph's program-order predecessor), -1 to open a
     *              new chain
     */
    void
    build(const std::vector<std::vector<int>> &preds,
          const std::vector<int> &chainHint)
    {
        n_ = preds.size();
        succs_.assign(n_, {});
        for (std::size_t v = 0; v < n_; ++v)
            for (int u : preds[v])
                succs_[static_cast<std::size_t>(u)].push_back(
                    static_cast<int>(v));

        chainOf_.assign(n_, 0);
        posOf_.assign(n_, 0);
        chainPred_.assign(chainHint.begin(), chainHint.end());
        std::uint32_t chains = 0;
        for (std::size_t v = 0; v < n_; ++v) {
            int p = chainPred_[v];
            if (p >= 0) {
                chainOf_[v] = chainOf_[static_cast<std::size_t>(p)];
                posOf_[v] = posOf_[static_cast<std::size_t>(p)] + 1;
            } else {
                chainOf_[v] = chains++;
                posOf_[v] = 0;
            }
        }
        chainCount_ = chains;
        chainLen_.assign(chains, 0);
        for (std::size_t v = 0; v < n_; ++v)
            ++chainLen_[chainOf_[v]];
        rebuildRows(preds);
    }

    /**
     * Extend the index with vertices [size(), preds.size()) — the
     * streaming path: the daemon's incremental HB construction
     * appends each arriving batch instead of rebuilding.  New
     * vertices may only have predecessors below them (the usual
     * forward-edge invariant), so their rows derive from already-
     * exact rows and no existing row changes: the extension is exact
     * in O(new vertices * row width).
     *
     * The chain hint is honoured only when the hinted predecessor is
     * still the tail of its chain (always true for program-order
     * hints between repacks); otherwise the vertex opens a fresh
     * chain, keeping the (chain, pos) coordinates injective.
     */
    void
    appendVertices(const std::vector<std::vector<int>> &preds,
                   const std::vector<int> &chainHint)
    {
        std::size_t newN = preds.size();
        succs_.resize(newN);
        chainOf_.resize(newN);
        posOf_.resize(newN);
        chainPred_.resize(newN, -1);
        rowOf_.resize(newN, -1);
        chainLen_.resize(chainCount_, 0);
        for (std::size_t v = n_; v < newN; ++v) {
            for (int u : preds[v])
                succs_[static_cast<std::size_t>(u)].push_back(
                    static_cast<int>(v));
            int p = chainHint[v];
            auto sp = static_cast<std::size_t>(p);
            if (p >= 0 &&
                posOf_[sp] + 1 == chainLen_[chainOf_[sp]]) {
                chainPred_[v] = p;
                chainOf_[v] = chainOf_[sp];
                posOf_[v] = posOf_[sp] + 1;
                ++chainLen_[chainOf_[sp]];
            } else {
                chainPred_[v] = -1;
                chainOf_[v] = chainCount_++;
                posOf_[v] = 0;
                chainLen_.push_back(1);
            }
            const std::vector<int> &pv = preds[v];
            if (pv.size() == 1 && pv[0] == chainPred_[v]) {
                rowOf_[v] =
                    rowOf_[static_cast<std::size_t>(pv[0])];
            } else {
                Row row;
                for (int u : pv) {
                    auto su = static_cast<std::size_t>(u);
                    unionMax(
                        row,
                        rows_[static_cast<std::size_t>(rowOf_[su])]);
                    raise(row, chainOf_[su], posOf_[su] + 1);
                }
                rowOf_[v] = static_cast<std::int32_t>(rows_.size());
                rowOwner_.push_back(static_cast<int>(v));
                rows_.push_back(std::move(row));
            }
        }
        n_ = newN;
    }

    /** Does vertex @p u strictly happen before vertex @p v? */
    bool
    reaches(int u, int v) const
    {
        if (u < 0 || v < 0 || u >= static_cast<int>(n_) ||
            v >= static_cast<int>(n_))
            return false;
        if (u >= v)
            return false; // edges only point forward in index order
        auto su = static_cast<std::size_t>(u);
        auto sv = static_cast<std::size_t>(v);
        if (chainOf_[su] == chainOf_[sv])
            return posOf_[su] < posOf_[sv];
        const Row &row = rows_[static_cast<std::size_t>(rowOf_[sv])];
        std::uint32_t limit = limitIn(row, chainOf_[su]);
        return limit > posOf_[su];
    }

    /**
     * Incrementally incorporate a new edge u -> v (u < v).  The
     * caller must have appended u to preds[v] already.  Propagates
     * frontiers forward along the affected cone only.
     */
    void
    addEdge(int u, int v, const std::vector<std::vector<int>> &preds)
    {
        auto su = static_cast<std::size_t>(u);
        auto sv = static_cast<std::size_t>(v);
        succs_[su].push_back(v);
        ++incrementalEdges_;

        // v gains an ancestor set that its chain predecessor does not
        // have, so it can no longer alias a shared row.
        if (rowOwner_[static_cast<std::size_t>(rowOf_[sv])] != v)
            forkRow(v);

        Row &dst = rows_[static_cast<std::size_t>(rowOf_[sv])];
        bool changed =
            unionMax(dst, rows_[static_cast<std::size_t>(rowOf_[su])]);
        changed |= raise(dst, chainOf_[su], posOf_[su] + 1);
        (void)preds;
        if (changed)
            propagateFrom(v);
    }

    /**
     * Fold edge u -> v into v's row only, without propagating to the
     * downstream cone.  Queries against v (and the chain run aliasing
     * v's row) are exact immediately; other rows become stale until
     * refresh().  This is the batch mode for derived-edge fixpoints:
     * each pass folds its edges in O(row) apiece and one refresh per
     * pass re-closes everything — instead of paying an O(cone)
     * propagation per edge.  A stale row can only under-approximate,
     * which at worst makes the fixpoint add a redundant (implied)
     * edge, never miss one.
     *
     * The merge is pushed through v's own (short) chain run so that
     * queries against the run's tail — exactly what the Eserial
     * fixpoint asks about the enclosing handler segment — stay exact
     * even when a mid-segment join vertex owns a private row.
     */
    void
    addEdgeDeferred(int u, int v)
    {
        auto su = static_cast<std::size_t>(u);
        auto sv = static_cast<std::size_t>(v);
        succs_[su].push_back(v);
        ++incrementalEdges_;
        if (rowOwner_[static_cast<std::size_t>(rowOf_[sv])] != v)
            forkRow(v);
        Row &dst = rows_[static_cast<std::size_t>(rowOf_[sv])];
        unionMax(dst, rows_[static_cast<std::size_t>(rowOf_[su])]);
        raise(dst, chainOf_[su], posOf_[su] + 1);

        // Chain-run propagation: follow v's chain successors, merging
        // into each privately-owned row met along the run (aliased
        // vertices see the update for free).
        int cur = v;
        for (;;) {
            int next = -1;
            auto sc = static_cast<std::size_t>(cur);
            for (int s : succs_[sc]) {
                auto ss = static_cast<std::size_t>(s);
                if (chainOf_[ss] == chainOf_[sc] &&
                    posOf_[ss] == posOf_[sc] + 1) {
                    next = s;
                    break;
                }
            }
            if (next < 0)
                break;
            auto sn = static_cast<std::size_t>(next);
            if (rowOf_[sn] != rowOf_[static_cast<std::size_t>(cur)])
                unionMax(rows_[static_cast<std::size_t>(rowOf_[sn])],
                         rows_[static_cast<std::size_t>(
                             rowOf_[static_cast<std::size_t>(cur)])]);
            cur = next;
        }
    }

    /**
     * Recompute all rows from the (updated) predecessor lists in one
     * topological sweep, restoring full closure after a batch of
     * addEdgeDeferred() calls.
     */
    void
    refresh(const std::vector<std::vector<int>> &preds)
    {
        rebuildRows(preds);
    }

    /**
     * Re-run the greedy chain decomposition against the current
     * (complete) reachability and rebuild all rows.  Call after the
     * derived-edge fixpoint has converged: vertices serialized by
     * derived edges collapse into shared chains, shrinking both the
     * chain count and every frontier row.
     */
    void
    repack(const std::vector<std::vector<int>> &preds)
    {
        std::vector<std::uint32_t> chain(n_, 0), pos(n_, 0);
        std::vector<int> pred(n_, -1);
        std::vector<int> tails; // current tail vertex per new chain
        for (std::size_t v = 0; v < n_; ++v) {
            int chosen = -1;
            // Prefer continuing the chain of a predecessor that is a
            // current tail (covers program order and derived serial
            // edges alike).
            for (int u : preds[v]) {
                int c = static_cast<int>(chain[static_cast<std::size_t>(u)]);
                if (tails[static_cast<std::size_t>(c)] == u) {
                    chosen = c;
                    break;
                }
            }
            // Otherwise any chain whose tail is an ancestor extends.
            if (chosen < 0)
                for (std::size_t c = 0; c < tails.size(); ++c)
                    if (reaches(tails[c], static_cast<int>(v))) {
                        chosen = static_cast<int>(c);
                        break;
                    }
            if (chosen < 0) {
                chosen = static_cast<int>(tails.size());
                tails.push_back(static_cast<int>(v));
                pred[v] = -1;
                pos[v] = 0;
            } else {
                int tail = tails[static_cast<std::size_t>(chosen)];
                pred[v] = tail;
                pos[v] = pos[static_cast<std::size_t>(tail)] + 1;
                tails[static_cast<std::size_t>(chosen)] =
                    static_cast<int>(v);
            }
            chain[v] = static_cast<std::uint32_t>(chosen);
        }
        chainOf_ = std::move(chain);
        posOf_ = std::move(pos);
        chainPred_ = std::move(pred);
        chainCount_ = static_cast<std::uint32_t>(tails.size());
        chainLen_.assign(chainCount_, 0);
        for (std::size_t v = 0; v < n_; ++v)
            ++chainLen_[chainOf_[v]];
        rebuildRows(preds);
        ++repacks_;
    }

    /// @{ @name Introspection for stats, benches and budget checks
    std::size_t size() const { return n_; }
    std::size_t chainCount() const { return chainCount_; }

    /** Chain id of @p v (stable until repack()). */
    std::uint32_t
    chainIdOf(int v) const
    {
        return chainOf_[static_cast<std::size_t>(v)];
    }

    /** Position of @p v within its chain (stable until repack()). */
    std::uint32_t
    posInChain(int v) const
    {
        return posOf_[static_cast<std::size_t>(v)];
    }

    /**
     * The frontier row @p v resolves to (possibly shared).  Packed
     * entries are sorted by chain; the entry for v's own chain, if
     * present, is stale by design and must be ignored by callers.
     */
    const Row &
    frontierRow(int v) const
    {
        return rows_[static_cast<std::size_t>(
            rowOf_[static_cast<std::size_t>(v)])];
    }
    std::size_t rowCount() const { return rows_.size(); }
    std::size_t repacks() const { return repacks_; }

    /** Edges integrated incrementally (Eserial fixpoint + pull). */
    std::size_t incrementalEdges() const { return incrementalEdges_; }

    /** Total frontier entries across all materialised rows. */
    std::size_t
    entryCount() const
    {
        std::size_t entries = 0;
        for (const Row &row : rows_)
            entries += row.size();
        return entries;
    }

    /**
     * Heap footprint of the reachability representation: frontier
     * entries, row headers, the per-vertex chain/pos/row arrays, and
     * the successor adjacency the incremental propagation needs.
     */
    std::size_t
    bytes() const
    {
        std::size_t total = entryCount() * sizeof(frontier::Word);
        total += rows_.size() * (sizeof(Row) + sizeof(int));
        total += n_ * (sizeof(std::uint32_t) * 2 + sizeof(std::int32_t));
        for (const std::vector<int> &s : succs_)
            total += s.size() * sizeof(int);
        return total;
    }
    /// @}

  private:
    /** Frontier limit of @p chain in @p row (0 when absent). */
    static std::uint32_t
    limitIn(const Row &row, std::uint32_t chain)
    {
        // Packed rows are sorted by word, and the chain owns the high
        // bits, so the first word >= pack(chain, 0) is chain's entry
        // when one exists.
        auto it = std::lower_bound(row.begin(), row.end(),
                                   frontier::pack(chain, 0));
        return (it != row.end() && frontier::chainOf(*it) == chain)
                   ? frontier::limitOf(*it)
                   : 0;
    }

    /**
     * Element-wise max of @p src into @p dst (both sorted by chain).
     * Same-chain-set rows take the word-level kernel; mixed rows fall
     * back to a change-detection prescan plus sorted merge.
     * @return true when any entry of dst changed
     */
    static bool
    unionMax(Row &dst, const Row &src)
    {
        if (src.empty())
            return false;
        if (dst.empty()) {
            dst = src;
            return true;
        }
        // Fast path: identical chain sequences (a vertex merging its
        // chain predecessor's row) need no reshaping — elementwise
        // packed max, in place, vectorised when the CPU has AVX2.
        if (dst.size() == src.size() &&
            frontier::sameChains(dst.data(), src.data(), dst.size()))
            return frontier::maxInPlace(dst.data(), src.data(),
                                        dst.size());
        // Change-detection prescan: during worklist propagation most
        // merges are no-ops (the destination already dominates), so
        // avoid materialising the merged row unless something changes.
        // Both the prescan and the merge stream 4-word blocks under
        // AVX2 while the chain sequences agree (frontier_merge.hh).
        if (!frontier::mergeWouldChange(dst.data(), dst.size(),
                                        src.data(), src.size()))
            return false;
        Row out(dst.size() + src.size());
        out.resize(frontier::mergeMax(out.data(), dst.data(),
                                      dst.size(), src.data(),
                                      src.size()));
        dst = std::move(out);
        return true;
    }

    /** Raise @p chain's limit in @p row to at least @p limit. */
    static bool
    raise(Row &row, std::uint32_t chain, std::uint32_t limit)
    {
        frontier::Word word = frontier::pack(chain, limit);
        auto it = std::lower_bound(row.begin(), row.end(),
                                   frontier::pack(chain, 0));
        if (it != row.end() && frontier::chainOf(*it) == chain) {
            if (*it >= word)
                return false;
            *it = word;
            return true;
        }
        row.insert(it, word);
        return true;
    }

    /**
     * Materialise all rows from scratch in topological order,
     * aliasing a vertex to its chain predecessor's row when that
     * predecessor is its only in-edge.
     */
    void
    rebuildRows(const std::vector<std::vector<int>> &preds)
    {
        rows_.clear();
        rowOwner_.clear();
        rowOf_.assign(n_, -1);
        for (std::size_t v = 0; v < n_; ++v) {
            const std::vector<int> &pv = preds[v];
            if (pv.size() == 1 && pv[0] == chainPred_[v]) {
                rowOf_[v] = rowOf_[static_cast<std::size_t>(pv[0])];
                continue;
            }
            Row row;
            for (int u : pv) {
                auto su = static_cast<std::size_t>(u);
                unionMax(row,
                         rows_[static_cast<std::size_t>(rowOf_[su])]);
                raise(row, chainOf_[su], posOf_[su] + 1);
            }
            rowOf_[v] = static_cast<std::int32_t>(rows_.size());
            rowOwner_.push_back(static_cast<int>(v));
            rows_.push_back(std::move(row));
        }
    }

    /**
     * Give @p v a private copy of its (currently shared) row and move
     * the sharing chain descendants of v over to the copy, so updates
     * to v reach exactly v and its chain suffix.
     */
    void
    forkRow(int v)
    {
        auto sv = static_cast<std::size_t>(v);
        std::int32_t old = rowOf_[sv];
        auto fresh = static_cast<std::int32_t>(rows_.size());
        rows_.push_back(rows_[static_cast<std::size_t>(old)]);
        rowOwner_.push_back(v);
        rowOf_[sv] = fresh;
        int cur = v;
        for (;;) {
            int next = -1;
            auto sc = static_cast<std::size_t>(cur);
            for (int s : succs_[sc]) {
                auto ss = static_cast<std::size_t>(s);
                if (rowOf_[ss] == old && chainOf_[ss] == chainOf_[sc] &&
                    posOf_[ss] == posOf_[sc] + 1) {
                    next = s;
                    break;
                }
            }
            if (next < 0)
                break;
            rowOf_[static_cast<std::size_t>(next)] = fresh;
            cur = next;
        }
    }

    /** Push @p from's frontier through the affected cone. */
    void
    propagateFrom(int from)
    {
        std::priority_queue<int, std::vector<int>, std::greater<int>> pq;
        // queued_ is self-clearing (set on push, cleared on pop), so
        // the scratch buffer is reusable across addEdge calls.
        std::vector<bool> &queued = queued_;
        queued.resize(n_, false);
        pq.push(from);
        queued[static_cast<std::size_t>(from)] = true;
        while (!pq.empty()) {
            int v = pq.top();
            pq.pop();
            auto sv = static_cast<std::size_t>(v);
            queued[sv] = false;
            for (int s : succs_[sv]) {
                auto ss = static_cast<std::size_t>(s);
                bool changed;
                if (rowOf_[ss] == rowOf_[sv]) {
                    // s aliases v's row: content already updated, but
                    // s's own successors still need the news.
                    changed = true;
                } else {
                    Row &dst =
                        rows_[static_cast<std::size_t>(rowOf_[ss])];
                    changed = unionMax(
                        dst,
                        rows_[static_cast<std::size_t>(rowOf_[sv])]);
                    changed |= raise(dst, chainOf_[sv], posOf_[sv] + 1);
                }
                if (changed && !queued[ss]) {
                    queued[ss] = true;
                    pq.push(s);
                }
            }
        }
    }

    std::size_t n_ = 0;
    std::uint32_t chainCount_ = 0;
    std::vector<std::uint32_t> chainOf_; ///< chain id per vertex
    std::vector<std::uint32_t> posOf_;   ///< position within chain
    std::vector<std::uint32_t> chainLen_; ///< vertices per chain
    std::vector<int> chainPred_;         ///< chain predecessor, -1 at head
    std::vector<std::int32_t> rowOf_;    ///< row index per vertex
    std::vector<Row> rows_;              ///< materialised frontier rows
    std::vector<int> rowOwner_;          ///< owning vertex per row
    std::vector<std::vector<int>> succs_; ///< out-edges (propagation)
    std::vector<bool> queued_; ///< propagation scratch (self-clearing)
    std::size_t incrementalEdges_ = 0;
    std::size_t repacks_ = 0;
};

} // namespace dcatch

#endif // DCATCH_COMMON_CHAIN_FRONTIER_HH
