#include "common/task_pool.hh"

#include <algorithm>
#include <cstdlib>

namespace dcatch {

int
TaskPool::hardwareJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

int
TaskPool::resolveJobs(int requested)
{
    if (requested == 0)
        return hardwareJobs();
    return std::max(1, requested);
}

TaskPool::TaskPool(int jobs, bool oversubscribe)
    : jobs_(std::max(1, jobs))
{
    // Provision threads for what the hardware can actually run; the
    // logical width stays as requested (and reported).  On a host
    // with fewer cores than jobs this spawns fewer threads — down to
    // none on one core, which sends parallelFor to the inline path.
    if (std::getenv("DCATCH_OVERSUBSCRIBE") != nullptr)
        oversubscribe = true;
    int width = oversubscribe ? jobs_ : std::min(jobs_, hardwareJobs());
    shards_ = std::vector<Shard>(static_cast<std::size_t>(width));
    threads_.reserve(static_cast<std::size_t>(width - 1));
    for (int w = 1; w < width; ++w)
        threads_.emplace_back(
            [this, w] { workerLoop(static_cast<std::size_t>(w)); });
}

TaskPool::~TaskPool()
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
TaskPool::recordError(std::size_t index)
{
    std::lock_guard<std::mutex> guard(errorMutex_);
    if (!error_ || index < errorIndex_) {
        error_ = std::current_exception();
        errorIndex_ = index;
    }
}

bool
TaskPool::takeOwn(std::size_t self, std::size_t &index)
{
    Shard &shard = shards_[self];
    std::lock_guard<std::mutex> guard(shard.mutex);
    if (shard.begin >= shard.end)
        return false;
    index = shard.begin++;
    return true;
}

bool
TaskPool::stealInto(std::size_t self)
{
    // Pick the victim with the most remaining work and take the back
    // half of its range.  The scan is racy (sizes move under us) but
    // only as a heuristic: the actual transfer is under the victim's
    // lock, and a stale choice merely steals from a smaller victim.
    std::size_t victim = shards_.size();
    std::size_t best = 0;
    for (std::size_t w = 0; w < shards_.size(); ++w) {
        if (w == self)
            continue;
        std::lock_guard<std::mutex> guard(shards_[w].mutex);
        std::size_t remaining = shards_[w].end - shards_[w].begin;
        if (remaining > best) {
            best = remaining;
            victim = w;
        }
    }
    if (victim == shards_.size())
        return false;

    std::size_t begin, end;
    {
        Shard &from = shards_[victim];
        std::lock_guard<std::mutex> guard(from.mutex);
        std::size_t remaining = from.end - from.begin;
        if (remaining == 0)
            return false;
        std::size_t take = (remaining + 1) / 2;
        begin = from.end - take;
        end = from.end;
        from.end = begin;
    }
    Shard &own = shards_[self];
    std::lock_guard<std::mutex> guard(own.mutex);
    own.begin = begin;
    own.end = end;
    return true;
}

void
TaskPool::drain(std::size_t self)
{
    const std::function<void(std::size_t)> &body = *body_;
    for (;;) {
        std::size_t index;
        while (takeOwn(self, index)) {
            try {
                body(index);
            } catch (...) {
                recordError(index);
            }
        }
        if (!stealInto(self))
            return;
    }
}

void
TaskPool::workerLoop(std::size_t self)
{
    std::size_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this, seen] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
        }
        drain(self);
        {
            std::lock_guard<std::mutex> guard(mutex_);
            if (--active_ == 0)
                done_.notify_all();
        }
    }
}

void
TaskPool::parallelFor(std::size_t n,
                      const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (jobs_ == 1 || n == 1 || threads_.empty()) {
        // Exact serial path: no threads, exceptions propagate as-is.
        // threads_.empty() covers a logical width capped down to one
        // worker on a single-core host.
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    // Pre-split [0, n) into one contiguous slice per worker.  Empty
    // slices are fine; those workers go straight to stealing.
    std::size_t workers = shards_.size();
    std::size_t chunk = n / workers;
    std::size_t extra = n % workers;
    std::size_t at = 0;
    for (std::size_t w = 0; w < workers; ++w) {
        std::size_t len = chunk + (w < extra ? 1 : 0);
        std::lock_guard<std::mutex> guard(shards_[w].mutex);
        shards_[w].begin = at;
        shards_[w].end = at + len;
        at += len;
    }

    {
        std::lock_guard<std::mutex> guard(errorMutex_);
        error_ = nullptr;
        errorIndex_ = 0;
    }
    {
        std::lock_guard<std::mutex> guard(mutex_);
        body_ = &body;
        active_ = workers - 1; // caller drains shard 0 itself
        ++generation_;
    }
    wake_.notify_all();
    drain(0);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return active_ == 0; });
        body_ = nullptr;
    }

    std::exception_ptr error;
    {
        std::lock_guard<std::mutex> guard(errorMutex_);
        error = error_;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace dcatch
