#include "explore/shrink.hh"

#include <utility>

#include "common/util.hh"
#include "explore/explorer.hh"
#include "replay/policies.hh"
#include "runtime/sim.hh"

namespace dcatch::explore {

namespace {

/** One candidate evaluation: recorded prefix + FIFO continuation. */
struct Attempt
{
    bool reproduced = false;
    replay::ScheduleLog recorded;
    std::string signature;
};

Attempt
runPrefix(const apps::Benchmark &bench, const replay::ScheduleLog &log,
          std::size_t prefix, const std::string &target_signature)
{
    Attempt attempt;
    sim::Simulation sim(replay::configFromHeader(log.header));
    sim.setSchedulerPolicy(std::make_unique<replay::RecordingPolicy>(
        std::make_unique<replay::PrefixReplayPolicy>(
            log, prefix, std::make_unique<sim::FifoPolicy>(),
            [&sim](int tid) { return sim.threadLabel(tid); }),
        attempt.recorded,
        [&sim](int tid) { return sim.threadName(tid); }));
    bench.build(sim);
    sim::RunResult run;
    try {
        run = sim.run();
    } catch (const replay::ReplayDivergenceError &) {
        // The prefix itself comes from a deterministic recording, so
        // this only fires if the substrate lost determinism — treat
        // the candidate as infeasible rather than crash the shrink.
        return attempt;
    }
    attempt.signature = failureSignature(run);
    if (attempt.signature != target_signature)
        return attempt;
    attempt.reproduced = true;

    replay::ScheduleHeader header = log.header;
    header.expectedFailureKinds.clear();
    for (const sim::FailureEvent &failure : run.failures)
        header.expectedFailureKinds.push_back(
            sim::failureKindName(failure.kind));
    header.traceChecksum = sim.tracer().store().contentDigest();
    header.traceRecords = sim.tracer().store().totalRecords();
    header.label = strprintf(
        "%s (shrunk to %zu-decision prefix)",
        log.header.label.c_str(), prefix);
    attempt.recorded.header = std::move(header);
    return attempt;
}

} // namespace

ShrinkResult
shrinkSchedule(const apps::Benchmark &bench,
               const replay::ScheduleLog &log,
               const std::string &target_signature,
               const ShrinkOptions &options)
{
    ShrinkResult result;
    result.originalDecisions = log.size();
    result.signature = target_signature;
    result.minimized = log;
    result.divergencePrefix = log.size();

    // Greedy tail-chunk removal, halving: repeatedly cut `chunk`
    // decisions off the known-good prefix while the failure still
    // reproduces; on the first miss, halve the chunk.  chunk == 1 is
    // the single-decision pass that certifies local minimality.
    std::size_t best = log.size();
    std::size_t chunk = best == 0 ? 0 : (best + 1) / 2;
    while (chunk >= 1 && result.replaysUsed < options.maxReplays) {
        while (best > 0 && result.replaysUsed < options.maxReplays) {
            std::size_t candidate = best > chunk ? best - chunk : 0;
            ++result.replaysUsed;
            Attempt attempt =
                runPrefix(bench, log, candidate, target_signature);
            if (!attempt.reproduced)
                break;
            best = candidate;
            result.minimized = std::move(attempt.recorded);
            result.divergencePrefix = best;
        }
        if (chunk == 1)
            break;
        chunk /= 2;
    }
    return result;
}

} // namespace dcatch::explore
