#include "explore/explorer.hh"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "common/task_pool.hh"
#include "common/util.hh"
#include "dcatch/pipeline.hh"
#include "explore/crossval.hh"
#include "explore/shrink.hh"
#include "replay/bundle.hh"
#include "replay/driver.hh"
#include "replay/policies.hh"
#include "runtime/faults.hh"
#include "runtime/sim.hh"

namespace dcatch::explore {

std::string
PolicySpec::text() const
{
    switch (kind) {
      case Kind::Random:
        return "random";
      case Kind::Pct:
        return strprintf("pct:%d", param);
      case Kind::DelayBounded:
        return strprintf("delay:%d", param);
    }
    return "random";
}

namespace {

/** Strict non-negative decimal parse. @throws std::invalid_argument */
int
parseParam(const std::string &what, const std::string &text)
{
    if (text.empty())
        throw std::invalid_argument(
            strprintf("%s requires a parameter (got '%s')",
                      what.c_str(), text.c_str()));
    std::size_t used = 0;
    long long value = 0;
    try {
        value = std::stoll(text, &used);
    } catch (const std::exception &) {
        throw std::invalid_argument(strprintf(
            "%s: '%s' is not a number", what.c_str(), text.c_str()));
    }
    if (used != text.size())
        throw std::invalid_argument(strprintf(
            "%s: '%s' is not a number", what.c_str(), text.c_str()));
    if (value < 0 || value > 1'000'000)
        throw std::invalid_argument(strprintf(
            "%s: %lld is out of range [0, 1000000]", what.c_str(),
            value));
    return static_cast<int>(value);
}

} // namespace

PolicySpec
parsePolicySpec(const std::string &text)
{
    PolicySpec spec;
    std::string name = text;
    std::string param;
    std::size_t colon = text.find(':');
    if (colon != std::string::npos) {
        name = text.substr(0, colon);
        param = text.substr(colon + 1);
    }
    if (name == "random") {
        if (colon != std::string::npos)
            throw std::invalid_argument(
                "policy 'random' takes no parameter");
        spec.kind = PolicySpec::Kind::Random;
        return spec;
    }
    if (name == "pct") {
        spec.kind = PolicySpec::Kind::Pct;
        spec.param = parseParam("pct", param);
        return spec;
    }
    if (name == "delay") {
        spec.kind = PolicySpec::Kind::DelayBounded;
        spec.param = parseParam("delay", param);
        return spec;
    }
    throw std::invalid_argument(strprintf(
        "unknown policy '%s' (expected random, pct:<d>, delay:<k>)",
        text.c_str()));
}

std::vector<PolicySpec>
parsePolicyList(const std::string &text)
{
    std::vector<PolicySpec> specs;
    std::set<std::string> seen;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t comma = text.find(',', start);
        std::string item = comma == std::string::npos
                               ? text.substr(start)
                               : text.substr(start, comma - start);
        PolicySpec spec = parsePolicySpec(item);
        if (!seen.insert(spec.text()).second)
            throw std::invalid_argument(strprintf(
                "duplicate policy '%s'", spec.text().c_str()));
        specs.push_back(spec);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (specs.empty())
        throw std::invalid_argument("empty policy list");
    return specs;
}

std::unique_ptr<sim::SchedulerPolicy>
makePolicy(const PolicySpec &spec, std::uint64_t seed,
           std::uint64_t horizon)
{
    switch (spec.kind) {
      case PolicySpec::Kind::Random:
        return std::make_unique<sim::RandomPolicy>(seed);
      case PolicySpec::Kind::Pct:
        return std::make_unique<sim::PctPolicy>(seed, spec.param,
                                                horizon);
      case PolicySpec::Kind::DelayBounded:
        return std::make_unique<sim::DelayBoundedPolicy>(
            seed, spec.param, horizon);
    }
    return std::make_unique<sim::RandomPolicy>(seed);
}

namespace {

/** Injected-fault site family excluded from failure signatures. */
bool
isInjectedSite(const std::string &site)
{
    return site.rfind("fault.inject/", 0) == 0;
}

} // namespace

std::string
failureSignature(const sim::RunResult &run)
{
    std::set<std::string> parts;
    for (const sim::FailureEvent &failure : run.failures)
        if (!isInjectedSite(failure.site))
            parts.insert(strprintf("%s@%s",
                                   sim::failureKindName(failure.kind),
                                   failure.site.c_str()));
    if (run.status == sim::RunStatus::Completed && parts.empty())
        return "";
    std::string signature = sim::runStatusName(run.status);
    for (const std::string &part : parts) {
        signature += ';';
        signature += part;
    }
    return signature;
}

bool
isExploreFailure(const sim::RunResult &run)
{
    return !failureSignature(run).empty();
}

namespace {

/** "pct:3" -> "pct3" (bundle directory names). */
std::string
sanitize(const std::string &text)
{
    std::string out;
    for (char c : text)
        if (c != ':')
            out.push_back(c);
    return out;
}

void
fillFailureHeader(replay::ScheduleLog &log, const apps::Benchmark &bench,
                  const sim::SimConfig &config,
                  const std::string &label, const sim::Simulation &sim,
                  const sim::RunResult &run)
{
    log.header = replay::headerFromConfig(config);
    log.header.benchmarkId = bench.id;
    log.header.label = label;
    for (const sim::FailureEvent &failure : run.failures)
        log.header.expectedFailureKinds.push_back(
            sim::failureKindName(failure.kind));
    log.header.traceChecksum = sim.tracer().store().contentDigest();
    log.header.traceRecords = sim.tracer().store().totalRecords();
}

Json
failureReportJson(const apps::Benchmark &bench, const RunRecord &rec,
                  const sim::RunResult &run)
{
    Json failures = Json::array();
    for (const sim::FailureEvent &failure : run.failures)
        failures.push(Json::object()
            .set("kind", Json::str(sim::failureKindName(failure.kind)))
            .set("site", Json::str(failure.site))
            .set("step", Json::num(static_cast<std::int64_t>(
                failure.step))));
    return Json::object()
        .set("kind", Json::str("explore"))
        .set("benchmark", Json::str(bench.id))
        .set("policy", Json::str(rec.policy))
        .set("seed",
             Json::num(static_cast<std::int64_t>(rec.seed)))
        .set("status", Json::str(rec.status))
        .set("signature", Json::str(rec.signature))
        .set("failures", std::move(failures));
}

} // namespace

int
CampaignResult::failures() const
{
    int count = 0;
    for (const RunRecord &rec : runs)
        count += rec.failed;
    return count;
}

std::vector<std::string>
CampaignResult::distinctSignatures() const
{
    std::set<std::string> out;
    for (const RunRecord &rec : runs)
        if (rec.failed)
            out.insert(rec.signature);
    return std::vector<std::string>(out.begin(), out.end());
}

bool
CampaignResult::allFailuresCrossValidated() const
{
    for (const RunRecord &rec : runs)
        if (rec.failed && !rec.crossValidated)
            return false;
    return true;
}

bool
CampaignResult::allBundlesVerified() const
{
    for (const RunRecord &rec : runs)
        if (rec.failed && !rec.replayVerified)
            return false;
    return true;
}

bool
CampaignResult::allMinimizedVerified() const
{
    for (const RunRecord &rec : runs)
        if (rec.failed && !rec.minimizedVerified)
            return false;
    return true;
}

Json
CampaignResult::toJson() const
{
    Json policies = Json::array();
    for (const PolicyCoverage &cov : coverage) {
        Json signatures = Json::array();
        for (const std::string &sig : cov.signatures)
            signatures.push(Json::str(sig));
        policies.push(Json::object()
            .set("policy", Json::str(cov.policy))
            .set("runs", Json::num(static_cast<std::int64_t>(cov.runs)))
            .set("failures",
                 Json::num(static_cast<std::int64_t>(cov.failures)))
            .set("distinctSignatures", Json::num(
                static_cast<std::int64_t>(cov.signatures.size())))
            .set("signatures", std::move(signatures))
            .set("branchPoints", Json::num(
                static_cast<std::int64_t>(cov.branchPoints)))
            .set("divergentChoices", Json::num(
                static_cast<std::int64_t>(cov.divergentChoices))));
    }
    Json runsJson = Json::array();
    for (const RunRecord &rec : runs) {
        Json entry = Json::object()
            .set("policy", Json::str(rec.policy))
            .set("seed",
                 Json::num(static_cast<std::int64_t>(rec.seed)))
            .set("status", Json::str(rec.status))
            .set("failed", Json::boolean(rec.failed))
            .set("steps",
                 Json::num(static_cast<std::int64_t>(rec.steps)));
        if (rec.failed) {
            entry.set("signature", Json::str(rec.signature))
                .set("replayVerified", Json::boolean(rec.replayVerified))
                .set("crossValidated",
                     Json::boolean(rec.crossValidated))
                .set("matchedPair", Json::str(rec.matchedPair))
                .set("matchTier", Json::str(rec.matchTier))
                .set("shrunkPrefix", Json::num(
                    static_cast<std::int64_t>(rec.shrunkPrefix)))
                .set("shrinkReplays", Json::num(
                    static_cast<std::int64_t>(rec.shrinkReplays)))
                .set("minimizedVerified",
                     Json::boolean(rec.minimizedVerified));
            if (!rec.bundleDir.empty())
                entry.set("bundle", Json::str(rec.bundleDir))
                    .set("minimizedBundle",
                         Json::str(rec.minimizedBundleDir));
        }
        runsJson.push(std::move(entry));
    }
    return Json::object()
        .set("benchmark", Json::str(benchmarkId))
        .set("monitoredSteps",
             Json::num(static_cast<std::int64_t>(monitoredSteps)))
        .set("finalReports",
             Json::num(static_cast<std::int64_t>(finalReportCount)))
        .set("failures",
             Json::num(static_cast<std::int64_t>(failures())))
        .set("allFailuresCrossValidated",
             Json::boolean(allFailuresCrossValidated()))
        .set("allBundlesVerified", Json::boolean(allBundlesVerified()))
        .set("allMinimizedVerified",
             Json::boolean(allMinimizedVerified()))
        .set("policies", std::move(policies))
        .set("runs", std::move(runsJson));
}

CampaignResult
explore(const apps::Benchmark &bench,
        const std::vector<PolicySpec> &policies,
        const ExploreOptions &options)
{
    if (policies.empty())
        throw std::invalid_argument("explore: empty policy list");
    if (options.runsPerPolicy < 1)
        throw std::invalid_argument("explore: runsPerPolicy must be >= 1");

    CampaignResult result;
    result.benchmarkId = bench.id;

    // Monitored stage: one correct FIFO run.  With cross-validation
    // it is the full detection pipeline (we need the candidate lists
    // and the monitored trace's site order); otherwise a bare run,
    // just to size the exploration horizon.
    std::map<std::string, std::size_t> monitoredOrder;
    std::vector<detect::Candidate> finalReports, afterTa;
    if (options.crossValidate) {
        PipelineOptions po;
        po.measureBase = false;
        po.jobs = options.jobs;
        PipelineResult monitored = runPipeline(bench, po);
        if (monitored.monitoredRun.failed())
            throw std::runtime_error(strprintf(
                "explore: monitored run of %s failed: %s",
                bench.id.c_str(),
                monitored.monitoredRun.summary().c_str()));
        monitoredOrder = siteFirstOccurrence(monitored.monitoredTrace);
        finalReports = std::move(monitored.afterLp);
        afterTa = std::move(monitored.afterTa);
        result.monitoredSteps = monitored.monitoredRun.steps;
        result.finalReportCount = finalReports.size();
    } else {
        sim::Simulation sim(bench.config);
        bench.build(sim);
        result.monitoredSteps = sim.run().steps;
    }
    const std::uint64_t horizon = result.monitoredSteps;

    const std::size_t total =
        policies.size() * static_cast<std::size_t>(options.runsPerPolicy);
    std::vector<RunRecord> records(total);
    TaskPool pool(TaskPool::resolveJobs(options.jobs));
    pool.parallelFor(total, [&](std::size_t idx) {
        const PolicySpec &spec = policies
            [idx / static_cast<std::size_t>(options.runsPerPolicy)];
        RunRecord &rec = records[idx];
        rec.policy = spec.text();
        rec.seed = options.seedBase + idx;

        sim::SimConfig config = bench.config;
        // The header's policy field is FIFO: replay installs a
        // ReplayPolicy anyway, and the adversarial policy's identity
        // lives in the label and the campaign JSON.
        config.policy = sim::PolicyKind::Fifo;
        config.seed = rec.seed;
        config.maxSteps = std::min<std::uint64_t>(
            config.maxSteps,
            horizon * options.hangFactor + options.hangSlack);

        sim::Simulation sim(config);
        replay::ScheduleLog log;
        sim.setSchedulerPolicy(std::make_unique<replay::RecordingPolicy>(
            makePolicy(spec, rec.seed, horizon), log,
            [&sim](int tid) { return sim.threadName(tid); }));
        bench.build(sim);
        sim::RunResult run = sim.run();

        rec.status = sim::runStatusName(run.status);
        rec.steps = run.steps;
        rec.decisions = log.size();
        rec.signature = failureSignature(run);
        rec.failed = isExploreFailure(run);
        for (std::size_t i = 0; i < log.size(); ++i) {
            const replay::Decision &decision = log.at(i);
            if (decision.runnable.size() < 2)
                continue;
            ++rec.branchPoints;
            if (decision.chosen !=
                decision.runnable[i % decision.runnable.size()])
                ++rec.divergentChoices;
        }
        if (!rec.failed)
            return;

        fillFailureHeader(log, bench, config,
                          strprintf("explore %s seed %llu",
                                    rec.policy.c_str(),
                                    (unsigned long long)rec.seed),
                          sim, run);

        if (options.crossValidate) {
            CrossValMatch match = crossValidate(
                finalReports, afterTa, monitoredOrder,
                siteFirstOccurrence(sim.tracer().store()));
            rec.crossValidated = match.matched;
            rec.matchedPair = match.pairKey;
            rec.matchTier = match.tier;
        }

        // Capture before shrink: the bundle holds the *original*
        // failing schedule; the minimized one goes alongside it.
        if (!options.bundleDir.empty()) {
            rec.bundleDir = replay::writeBundle(
                strprintf("%s/%s-%s-seed%llu",
                          options.bundleDir.c_str(), bench.id.c_str(),
                          sanitize(rec.policy).c_str(),
                          (unsigned long long)rec.seed),
                log, failureReportJson(bench, rec, run).dump());
            rec.replayVerified =
                replay::replayLog(replay::loadBundleLog(rec.bundleDir))
                    .identical();
        } else {
            rec.replayVerified = replay::replayLog(log).identical();
        }

        if (options.shrink) {
            ShrinkOptions so;
            so.maxReplays = options.shrinkBudget;
            ShrinkResult shrunk =
                shrinkSchedule(bench, log, rec.signature, so);
            rec.shrunkPrefix = shrunk.divergencePrefix;
            rec.shrinkReplays = shrunk.replaysUsed;
            rec.minimizedSignature = shrunk.signature;
            if (!options.bundleDir.empty()) {
                rec.minimizedBundleDir = replay::writeBundle(
                    rec.bundleDir + "-min", shrunk.minimized,
                    failureReportJson(bench, rec, run)
                        .set("shrunkPrefix", Json::num(
                            static_cast<std::int64_t>(
                                shrunk.divergencePrefix)))
                        .dump());
                rec.minimizedVerified =
                    replay::replayLog(
                        replay::loadBundleLog(rec.minimizedBundleDir))
                        .identical();
            } else {
                rec.minimizedVerified =
                    replay::replayLog(shrunk.minimized).identical();
            }
        } else {
            rec.minimizedVerified = rec.replayVerified;
        }
    });
    result.runs = std::move(records);

    // Policy-ordered aggregation (deterministic for any job count:
    // records are merged in campaign-index order).
    for (std::size_t p = 0; p < policies.size(); ++p) {
        PolicyCoverage cov;
        cov.policy = policies[p].text();
        std::set<std::string> signatures;
        for (int i = 0; i < options.runsPerPolicy; ++i) {
            const RunRecord &rec = result.runs
                [p * static_cast<std::size_t>(options.runsPerPolicy) +
                 static_cast<std::size_t>(i)];
            ++cov.runs;
            cov.failures += rec.failed;
            cov.branchPoints += rec.branchPoints;
            cov.divergentChoices += rec.divergentChoices;
            if (rec.failed)
                signatures.insert(rec.signature);
        }
        cov.signatures.assign(signatures.begin(), signatures.end());
        result.coverage.push_back(std::move(cov));
    }
    return result;
}

} // namespace dcatch::explore
