/**
 * @file
 * Schedule-space exploration harness (docs/exploration.md).
 *
 * DCatch *predicts* distributed concurrency bugs from one monitored
 * correct run; the explorer attacks the same benchmarks from the
 * opposite direction, running the workload under adversarial
 * scheduling policies — PCT-style random priorities, delay-bounded
 * round-robin, pure random — across many seeds and capturing every
 * run that fails (assertion aborts, node crashes outside injected
 * faults, deadlocks, step-budget hangs) as a replay-verified repro
 * bundle.  Each failing schedule is then delta-debugged down to its
 * minimal divergence prefix (explore/shrink.hh) and cross-validated
 * against the detector's candidate list (explore/crossval.hh): a
 * failure the explorer can produce but DCatch did not predict is a
 * false negative.
 */

#ifndef DCATCH_EXPLORE_EXPLORER_HH
#define DCATCH_EXPLORE_EXPLORER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/benchmark.hh"
#include "common/json.hh"
#include "runtime/scheduler.hh"
#include "runtime/types.hh"

namespace dcatch::explore {

/** One adversarial scheduling policy the campaign fans over. */
struct PolicySpec
{
    enum class Kind {
        Random,       ///< seeded uniform-random (sim::RandomPolicy)
        Pct,          ///< PCT random priorities (sim::PctPolicy)
        DelayBounded, ///< delay-bounded round-robin
    };

    Kind kind = Kind::Random;
    /** PCT depth d / delay budget; unused for Random. */
    int param = 0;

    /** Canonical text: "random", "pct:<d>", "delay:<k>". */
    std::string text() const;
};

/**
 * Parse one policy spec: "random", "pct:<d>" or "delay:<k>" with a
 * non-negative decimal parameter.
 * @throws std::invalid_argument on anything else
 */
PolicySpec parsePolicySpec(const std::string &text);

/**
 * Parse a comma-separated policy list; must be non-empty and free of
 * duplicates.  @throws std::invalid_argument
 */
std::vector<PolicySpec> parsePolicyList(const std::string &text);

/** Instantiate the scheduler policy a spec names. @p horizon is the
 *  step range PCT change points / delay points are spread over
 *  (typically the monitored run's step count). */
std::unique_ptr<sim::SchedulerPolicy>
makePolicy(const PolicySpec &spec, std::uint64_t seed,
           std::uint64_t horizon);

/**
 * Canonical failure signature of a run: the run status followed by
 * every "kind@site" failure, sorted and deduplicated, *excluding*
 * failures at injected-fault sites (sim::kInjectedCrashSite) — those
 * are the workload's doing, not the schedule's.  Empty for a fully
 * correct run.
 */
std::string failureSignature(const sim::RunResult &run);

/** True when a run counts as an exploration failure: non-Completed
 *  status or any failure outside injected-fault sites. */
bool isExploreFailure(const sim::RunResult &run);

/** Campaign configuration. */
struct ExploreOptions
{
    int runsPerPolicy = 10;
    /** Worker threads (TaskPool::resolveJobs semantics: 0 = hardware
     *  concurrency).  Results are byte-identical for every value. */
    int jobs = 1;
    /** Seed of run i under policy p is seedBase + p * runsPerPolicy
     *  + i (the flat campaign index). */
    std::uint64_t seedBase = 1;
    /** Write failing-run bundles under this directory; empty = keep
     *  logs in memory only (replay verification still runs). */
    std::string bundleDir;
    bool shrink = true;
    std::uint64_t shrinkBudget = 64;
    /** Step-budget watchdog: adversarial runs are cut off at
     *  monitoredSteps * hangFactor + hangSlack and reported as
     *  "step-limit" failures (hangs). */
    std::uint64_t hangFactor = 8;
    std::uint64_t hangSlack = 5000;
    /** Run the full detection pipeline on the monitored run and map
     *  every failure back to its candidate list. */
    bool crossValidate = true;
};

/** Everything one campaign run produced. */
struct RunRecord
{
    std::string policy; ///< canonical spec text
    std::uint64_t seed = 0;
    std::string status; ///< sim::runStatusName
    bool failed = false;
    std::string signature; ///< failureSignature ("" when passed)
    std::uint64_t steps = 0;
    std::uint64_t decisions = 0;
    /** Decisions with more than one runnable thread. */
    std::uint64_t branchPoints = 0;
    /** Branch points where the pick differs from FIFO's. */
    std::uint64_t divergentChoices = 0;

    /// @{ @name Failing runs only
    std::string bundleDir;      ///< written bundle ("" when not kept)
    bool replayVerified = false; ///< bundle replays identically
    bool crossValidated = false; ///< mapped to a DCatch candidate
    std::string matchedPair;     ///< candidate site-pair key
    std::string matchTier;       ///< crossval.hh tier string
    std::uint64_t shrunkPrefix = 0;  ///< minimal divergence prefix
    std::uint64_t shrinkReplays = 0; ///< shrink candidate evaluations
    std::string minimizedBundleDir;
    bool minimizedVerified = false; ///< minimized bundle replays
                                    ///< identically (byte-for-byte)
    std::string minimizedSignature; ///< must equal signature
    /// @}
};

/** Per-policy aggregate for the coverage report. */
struct PolicyCoverage
{
    std::string policy;
    int runs = 0;
    int failures = 0;
    std::vector<std::string> signatures; ///< distinct, sorted
    std::uint64_t branchPoints = 0;
    std::uint64_t divergentChoices = 0;
};

/** Full campaign result over one benchmark. */
struct CampaignResult
{
    std::string benchmarkId;
    std::uint64_t monitoredSteps = 0; ///< FIFO run length (horizon)
    std::size_t finalReportCount = 0; ///< |afterLp| (crossValidate)
    std::vector<RunRecord> runs;      ///< campaign order
    std::vector<PolicyCoverage> coverage; ///< policy input order

    int failures() const;
    /** Distinct failure signatures across all policies. */
    std::vector<std::string> distinctSignatures() const;
    bool allFailuresCrossValidated() const;
    bool allBundlesVerified() const;
    bool allMinimizedVerified() const;

    Json toJson() const;
};

/** Run one exploration campaign. */
CampaignResult explore(const apps::Benchmark &bench,
                       const std::vector<PolicySpec> &policies,
                       const ExploreOptions &options);

} // namespace dcatch::explore

#endif // DCATCH_EXPLORE_EXPLORER_HH
