/**
 * @file
 * Delta-debugging shrinker for recorded failing schedules.
 *
 * A failing explorer run is captured as a ScheduleLog — potentially
 * thousands of decisions, most of them irrelevant to the failure.
 * The shrinker searches for the *minimal divergence prefix*: the
 * shortest prefix of the recorded decisions that still reproduces the
 * same failure signature when the rest of the run is completed under
 * plain deterministic FIFO.  Each candidate is evaluated by actually
 * re-running the benchmark under a PrefixReplayPolicy (recorded
 * prefix, FIFO fallback); the successful candidate's own recording
 * becomes the minimized log, so the minimized bundle replays
 * byte-for-byte like any other bundle.
 *
 * Search: greedy tail-chunk removal with halving chunk sizes (try
 * dropping the last half, then quarters, ... down to single
 * decisions), i.e. ddmin specialized to prefixes — the only shapes a
 * deterministic scheduler can re-drive, since removing a *middle*
 * decision invalidates every later runnable set.
 */

#ifndef DCATCH_EXPLORE_SHRINK_HH
#define DCATCH_EXPLORE_SHRINK_HH

#include <cstdint>
#include <string>

#include "apps/benchmark.hh"
#include "replay/schedule_log.hh"

namespace dcatch::explore {

/** Shrink search knobs. */
struct ShrinkOptions
{
    /** Replay budget: candidate evaluations before giving up with the
     *  best prefix found so far. */
    std::uint64_t maxReplays = 64;
};

/** Result of shrinking one failing schedule. */
struct ShrinkResult
{
    /** Full recording of the minimized run (prefix + FIFO
     *  continuation); replays identically via replay::replayLog. */
    replay::ScheduleLog minimized;
    /** Minimal recorded-prefix length that still fails. */
    std::uint64_t divergencePrefix = 0;
    /** Candidate evaluations spent. */
    std::uint64_t replaysUsed = 0;
    /** Failure signature of the minimized run (== the target). */
    std::string signature;
    /** Decision count of the original (unshrunk) log. */
    std::uint64_t originalDecisions = 0;
    /** True when the prefix is shorter than the original log. */
    bool
    changed() const
    {
        return divergencePrefix < originalDecisions;
    }
};

/**
 * Shrink @p log (a recorded failing run of @p bench) toward the
 * minimal divergence prefix reproducing @p target_signature
 * (explore::failureSignature of the original run).
 */
ShrinkResult shrinkSchedule(const apps::Benchmark &bench,
                            const replay::ScheduleLog &log,
                            const std::string &target_signature,
                            const ShrinkOptions &options = {});

} // namespace dcatch::explore

#endif // DCATCH_EXPLORE_SHRINK_HH
