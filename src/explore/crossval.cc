#include "explore/crossval.hh"

namespace dcatch::explore {

std::map<std::string, std::size_t>
siteFirstOccurrence(const trace::TraceStore &trace)
{
    std::map<std::string, std::size_t> first;
    std::size_t index = 0;
    for (const auto record : trace.merged()) {
        first.emplace(std::string(record.site()), index);
        ++index;
    }
    return first;
}

namespace {

/**
 * Relative first-occurrence order of the candidate's two sites
 * flipped between the monitored and the failing trace.  A site absent
 * from the failing trace counts as infinitely late: when the
 * monitored-earlier site never executed before the failure tore the
 * run down, the monitored-later site observably ran first — the
 * purest manifestation of the order violation (e.g. ZK-1144's
 * election read running before any vote write ever happens).
 */
bool
orderFlipped(const detect::Candidate &candidate,
             const std::map<std::string, std::size_t> &monitored,
             const std::map<std::string, std::size_t> &failing)
{
    constexpr std::size_t kNever = static_cast<std::size_t>(-1);
    auto ma = monitored.find(candidate.a.site);
    auto mb = monitored.find(candidate.b.site);
    if (ma == monitored.end() || mb == monitored.end() ||
        ma->second == mb->second)
        return false;
    auto it = failing.find(candidate.a.site);
    std::size_t fa = it == failing.end() ? kNever : it->second;
    it = failing.find(candidate.b.site);
    std::size_t fb = it == failing.end() ? kNever : it->second;
    if (fa == fb) // both absent (kNever) or same record
        return false;
    return (ma->second < mb->second) != (fa < fb);
}

/** Both of the candidate's sites executed in the failing run. */
bool
bothPresent(const detect::Candidate &candidate,
            const std::map<std::string, std::size_t> &failing)
{
    return failing.count(candidate.a.site) > 0 &&
           failing.count(candidate.b.site) > 0;
}

} // namespace

CrossValMatch
crossValidate(const std::vector<detect::Candidate> &finalReports,
              const std::vector<detect::Candidate> &afterTa,
              const std::map<std::string, std::size_t> &monitored,
              const std::map<std::string, std::size_t> &failing)
{
    CrossValMatch match;
    // Strongest evidence first: a flipped pair proves the adversarial
    // schedule reordered exactly the accesses DCatch predicted race.
    for (const detect::Candidate &candidate : finalReports) {
        if (orderFlipped(candidate, monitored, failing)) {
            match.matched = true;
            match.pairKey = candidate.sitePairKey();
            match.tier = "final-flip";
            return match;
        }
    }
    for (const detect::Candidate &candidate : afterTa) {
        if (orderFlipped(candidate, monitored, failing)) {
            match.matched = true;
            match.pairKey = candidate.sitePairKey();
            match.tier = "ta-flip";
            return match;
        }
    }
    // Fallback: the failure often kills the run at the racing access
    // itself, so the "second" site never re-executes and the order
    // can't flip — presence of both sites still ties the failure to
    // the predicted pair.
    for (const detect::Candidate &candidate : finalReports) {
        if (bothPresent(candidate, failing)) {
            match.matched = true;
            match.pairKey = candidate.sitePairKey();
            match.tier = "final";
            return match;
        }
    }
    for (const detect::Candidate &candidate : afterTa) {
        if (bothPresent(candidate, failing)) {
            match.matched = true;
            match.pairKey = candidate.sitePairKey();
            match.tier = "ta";
            return match;
        }
    }
    return match;
}

} // namespace dcatch::explore
