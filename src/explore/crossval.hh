/**
 * @file
 * Ground-truth cross-validation between the schedule explorer and the
 * DCatch detector: every failure the explorer finds by *running* an
 * adversarial schedule should be explainable by a candidate DCatch
 * *predicted* from the monitored (correct) run.  The mapping compares
 * the first-occurrence order of each candidate's two sites in the
 * monitored trace against the failing trace — a candidate whose sites
 * executed in the opposite order in the failing run is the racing
 * pair the schedule flipped.
 */

#ifndef DCATCH_EXPLORE_CROSSVAL_HH
#define DCATCH_EXPLORE_CROSSVAL_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "detect/report.hh"
#include "trace/trace_store.hh"

namespace dcatch::explore {

/** First-occurrence index of every site in a trace's merged order. */
std::map<std::string, std::size_t>
siteFirstOccurrence(const trace::TraceStore &trace);

/** Outcome of mapping one explorer failure onto the candidate list. */
struct CrossValMatch
{
    bool matched = false;
    /** detect::sitePair key of the matched candidate. */
    std::string pairKey;
    /**
     * Match strictness, strongest first:
     *   "final-flip" — final report (TA+SP+LP) whose site order flipped
     *   "ta-flip"    — pre-pruning candidate whose site order flipped
     *   "final"      — final report, both sites present in the failing
     *                  trace (order unchanged: the failure cut the run
     *                  short before the reordered site re-executed)
     *   "ta"         — same, pre-pruning candidate
     */
    std::string tier;
};

/**
 * Map one failing run onto the monitored run's candidates.
 * @param finalReports the pipeline's final reports (afterLp)
 * @param afterTa the pre-pruning candidate list (fallback tier)
 * @param monitored site order of the monitored (correct) trace
 * @param failing site order of the failing explorer run's trace
 */
CrossValMatch
crossValidate(const std::vector<detect::Candidate> &finalReports,
              const std::vector<detect::Candidate> &afterTa,
              const std::map<std::string, std::size_t> &monitored,
              const std::map<std::string, std::size_t> &failing);

} // namespace dcatch::explore

#endif // DCATCH_EXPLORE_CROSSVAL_HH
