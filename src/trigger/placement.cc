#include "trigger/placement.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dcatch::trigger {

using trace::Record;
using trace::RecordType;

PlacementAnalyzer::PlacementAnalyzer(const trace::TraceStore &store,
                                     Options options)
    : store_(store), options_(options)
{
}

PlacementAnalyzer::AccessContext
PlacementAnalyzer::locate(const detect::CandidateAccess &access) const
{
    AccessContext ctx;
    // Resolve the access identity to symbol ids once; a symbol absent
    // from the pool cannot occur in the trace at all.
    const trace::SymbolPool &pool = store_.symbols();
    trace::SymId site_sym = pool.find(access.site);
    trace::SymId stack_sym = pool.find(access.callstack);
    if (site_sym == trace::kNoSym || stack_sym == trace::kNoSym)
        return ctx;
    // Locate the exact dynamic occurrence (site, callstack, thread,
    // access kind, value version) in the per-thread logs.
    for (int t = 0; t < store_.threadCount(); ++t) {
        trace::TraceStore::ThreadLogView log = store_.threadLog(t);
        int instance = 0;
        for (std::size_t i = 0; i < log.size(); ++i) {
            trace::TraceStore::RecordView rec = log[i];
            bool same_static = rec.isMemoryAccess() &&
                               rec.siteSym() == site_sym &&
                               rec.callstackSym() == stack_sym;
            if (!same_static)
                continue;
            bool is_target = rec.thread() == access.thread &&
                             rec.aux() == access.version &&
                             (rec.type() == RecordType::MemWrite) ==
                                 access.isWrite;
            if (!is_target) {
                ++instance;
                continue;
            }
            ctx.found = true;
            ctx.thread = t;
            ctx.pos = i;
            ctx.instance = instance;
            break;
        }
        if (ctx.found)
            break;
    }
    if (!ctx.found)
        return ctx;

    // Walk the thread log up to the access: handler segment + locks.
    trace::TraceStore::ThreadLogView log = store_.threadLog(ctx.thread);
    std::string handler_kind, handler_id;
    for (std::size_t i = 0; i <= ctx.pos; ++i) {
        trace::TraceStore::RecordView rec = log[i];
        switch (rec.type()) {
          case RecordType::EventBegin:
            handler_kind = "event";
            handler_id = rec.id();
            break;
          case RecordType::RpcBegin:
            handler_kind = "rpc";
            handler_id = rec.id();
            break;
          case RecordType::MsgRecv:
            handler_kind = "msg";
            handler_id = rec.id();
            break;
          case RecordType::CoordPushed:
            handler_kind = "watch";
            handler_id = rec.id();
            break;
          case RecordType::EventEnd:
          case RecordType::RpcEnd:
            handler_kind.clear();
            handler_id.clear();
            break;
          case RecordType::LockAcquire: {
            int lock_instance = 0;
            for (std::size_t j = 0; j < i; ++j)
                if (log[j].type() == RecordType::LockAcquire &&
                    log[j].siteSym() == rec.siteSym() &&
                    log[j].callstackSym() == rec.callstackSym())
                    ++lock_instance;
            ctx.locksHeld.emplace_back(rec.id());
            ctx.lockSites.emplace_back(rec.site());
            ctx.lockStacks.emplace_back(rec.callstack());
            ctx.lockInstances.push_back(lock_instance);
            break;
          }
          case RecordType::LockRelease: {
            auto it = std::find(ctx.locksHeld.rbegin(),
                                ctx.locksHeld.rend(), rec.id());
            if (it != ctx.locksHeld.rend()) {
                std::size_t idx = ctx.locksHeld.size() - 1 -
                    static_cast<std::size_t>(
                        std::distance(ctx.locksHeld.rbegin(), it));
                ctx.locksHeld.erase(ctx.locksHeld.begin() +
                                    static_cast<long>(idx));
                ctx.lockSites.erase(ctx.lockSites.begin() +
                                    static_cast<long>(idx));
                ctx.lockStacks.erase(ctx.lockStacks.begin() +
                                     static_cast<long>(idx));
                ctx.lockInstances.erase(ctx.lockInstances.begin() +
                                        static_cast<long>(idx));
            }
            break;
          }
          default:
            break;
        }
    }
    ctx.handlerKind = handler_kind;
    ctx.handlerId = handler_id;
    if (handler_kind == "event") {
        ctx.queueId = handler_id.substr(0, handler_id.find('#'));
        auto meta = store_.queues().find(ctx.queueId);
        ctx.queueSingleConsumer =
            meta != store_.queues().end() && meta->second.singleConsumer;
    }
    return ctx;
}

bool
PlacementAnalyzer::relocateToCause(const AccessContext &ctx,
                                   RequestPoint &point,
                                   const char *why) const
{
    // Find the causally preceding record: the EventCreate with this
    // event's id, or the RpcCreate with this RPC's tag.
    RecordType want;
    if (ctx.handlerKind == "event")
        want = RecordType::EventCreate;
    else if (ctx.handlerKind == "rpc")
        want = RecordType::RpcCreate;
    else if (ctx.handlerKind == "msg")
        want = RecordType::MsgSend;
    else
        return false;

    trace::SymId id_sym = store_.symbols().find(ctx.handlerId);
    if (id_sym == trace::kNoSym)
        return false;
    for (int t = 0; t < store_.threadCount(); ++t) {
        trace::TraceStore::ThreadLogView log = store_.threadLog(t);
        for (std::size_t i = 0; i < log.size(); ++i) {
            trace::TraceStore::RecordView rec = log[i];
            if (rec.type() != want || rec.idSym() != id_sym)
                continue;
            int instance = 0;
            for (std::size_t j = 0; j < i; ++j)
                if (log[j].type() == want &&
                    log[j].siteSym() == rec.siteSym() &&
                    log[j].callstackSym() == rec.callstackSym())
                    ++instance;
            point.site = rec.site();
            point.callstack = rec.callstack();
            point.instance = instance;
            point.note = why;
            return true;
        }
    }
    return false;
}

bool
PlacementAnalyzer::causeFlowsThroughThread(const AccessContext &access,
                                           int thread) const
{
    // Walk the causal chain of the handler instance enclosing
    // @p access: handler instance -> its Create/Send record -> the
    // handler enclosing THAT record, a few levels deep.  True when
    // any link executed on @p thread.
    std::string kind = access.handlerKind;
    std::string id = access.handlerId;
    for (int depth = 0; depth < 4 && !kind.empty(); ++depth) {
        RecordType want;
        if (kind == "event")
            want = RecordType::EventCreate;
        else if (kind == "rpc")
            want = RecordType::RpcCreate;
        else if (kind == "msg")
            want = RecordType::MsgSend;
        else
            return false; // watcher chains end at the coord service
        trace::SymId id_sym = store_.symbols().find(id);
        if (id_sym == trace::kNoSym)
            return false;
        bool found = false;
        for (int t = 0; t < store_.threadCount() && !found; ++t) {
            trace::TraceStore::ThreadLogView log = store_.threadLog(t);
            for (std::size_t i = 0; i < log.size(); ++i) {
                trace::TraceStore::RecordView rec = log[i];
                if (rec.type() != want || rec.idSym() != id_sym)
                    continue;
                if (rec.thread() == thread)
                    return true;
                // Continue the walk from the enclosing handler of the
                // cause record.
                kind.clear();
                id.clear();
                for (std::size_t j = 0; j < i; ++j) {
                    switch (log[j].type()) {
                      case RecordType::EventBegin:
                        kind = "event";
                        id = log[j].id();
                        break;
                      case RecordType::RpcBegin:
                        kind = "rpc";
                        id = log[j].id();
                        break;
                      case RecordType::MsgRecv:
                        kind = "msg";
                        id = log[j].id();
                        break;
                      case RecordType::EventEnd:
                      case RecordType::RpcEnd:
                        kind.clear();
                        id.clear();
                        break;
                      default:
                        break;
                    }
                }
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    return false;
}

Placement
PlacementAnalyzer::plan(const detect::Candidate &candidate) const
{
    Placement placement;
    placement.a = {candidate.a.site, candidate.a.callstack, 0, ""};
    placement.b = {candidate.b.site, candidate.b.callstack, 0, ""};

    AccessContext ca = locate(candidate.a);
    AccessContext cb = locate(candidate.b);
    if (ca.found)
        placement.a.instance = ca.instance;
    if (cb.found)
        placement.b.instance = cb.instance;
    if (!ca.found || !cb.found) {
        placement.rationale = "access not located in trace; naive plan";
        return placement;
    }

    // Case 1: same single-consumer event queue -> hold the enqueues.
    if (ca.handlerKind == "event" && cb.handlerKind == "event" &&
        ca.queueId == cb.queueId && ca.queueSingleConsumer) {
        bool ra = relocateToCause(ca, placement.a,
                                  "single-consumer queue: hold enqueue");
        bool rb = relocateToCause(cb, placement.b,
                                  "single-consumer queue: hold enqueue");
        if (ra && rb) {
            placement.relocated = true;
            placement.rationale =
                "both handlers share single-consumer queue " + ca.queueId;
            return placement;
        }
    }

    // Case 2: RPC handlers on the same handler thread -> hold callers.
    if (ca.handlerKind == "rpc" && cb.handlerKind == "rpc" &&
        ca.thread == cb.thread) {
        bool ra = relocateToCause(ca, placement.a,
                                  "same RPC handler thread: hold caller");
        bool rb = relocateToCause(cb, placement.b,
                                  "same RPC handler thread: hold caller");
        if (ra && rb) {
            placement.relocated = true;
            placement.rationale = "both RPCs served by one handler thread";
            return placement;
        }
    }

    // Case 3: common lock -> hold before the critical sections.
    for (std::size_t i = 0; i < ca.locksHeld.size(); ++i) {
        auto it = std::find(cb.locksHeld.begin(), cb.locksHeld.end(),
                            ca.locksHeld[i]);
        if (it == cb.locksHeld.end())
            continue;
        std::size_t j =
            static_cast<std::size_t>(it - cb.locksHeld.begin());
        placement.a = {ca.lockSites[i], ca.lockStacks[i],
                       ca.lockInstances[i],
                       "common lock: hold before critical section"};
        placement.b = {cb.lockSites[j], cb.lockStacks[j],
                       cb.lockInstances[j],
                       "common lock: hold before critical section"};
        placement.relocated = true;
        placement.rationale =
            "accesses guarded by common lock " + ca.locksHeld[i];
        return placement;
    }

    // A request point inside a socket-message handler holds the
    // node's (single) message dispatcher.  If the OTHER access's
    // causal chain flows through that same dispatcher, the hold
    // starves the peer and the run hangs — the problem of section
    // 5.2.  Relocate such points to the sender's Send operation on
    // the other node; keep them in place otherwise (holding the
    // dispatcher is then exactly what blocks all equivalent racing
    // messages).
    bool msg_moved = false;
    if (ca.handlerKind == "msg" && causeFlowsThroughThread(cb, ca.thread))
        msg_moved |= relocateToCause(
            ca, placement.a, "message handler: hold the sender instead");
    if (cb.handlerKind == "msg" && causeFlowsThroughThread(ca, cb.thread))
        msg_moved |= relocateToCause(
            cb, placement.b, "message handler: hold the sender instead");
    if (msg_moved) {
        placement.relocated = true;
        placement.rationale =
            "moved out of message handler(s) to avoid starving the "
            "dispatcher the peer depends on";
    }

    // Many dynamic instances: prefer the causally preceding request
    // point in a different thread/node when one exists.
    auto count_instances = [&](const detect::CandidateAccess &acc) {
        const trace::SymbolPool &pool = store_.symbols();
        trace::SymId site_sym = pool.find(acc.site);
        trace::SymId stack_sym = pool.find(acc.callstack);
        if (site_sym == trace::kNoSym || stack_sym == trace::kNoSym)
            return 0;
        int n = 0;
        for (int t = 0; t < store_.threadCount(); ++t)
            for (trace::TraceStore::RecordView rec : store_.threadLog(t))
                if (rec.isMemoryAccess() && rec.siteSym() == site_sym &&
                    rec.callstackSym() == stack_sym)
                    ++n;
        return n;
    };
    bool moved = false;
    if (count_instances(candidate.a) > options_.manyInstanceThreshold)
        moved |= relocateToCause(ca, placement.a,
                                 "many dynamic instances: hold cause");
    if (count_instances(candidate.b) > options_.manyInstanceThreshold)
        moved |= relocateToCause(cb, placement.b,
                                 "many dynamic instances: hold cause");
    if (moved) {
        placement.relocated = true;
        placement.rationale = "relocated along the HB chain to bound "
                              "dynamic request instances";
    }
    return placement;
}

} // namespace dcatch::trigger
