/**
 * @file
 * Request-point placement analysis (paper section 5.2).
 *
 * The naive placement — intercept execution right before each racing
 * access — hangs or floods the controller in three situations the
 * paper identifies; the analyzer relocates request points instead:
 *
 *  1. both accesses run in event handlers of the same single-consumer
 *     queue -> move requests to the corresponding enqueue sites;
 *  2. both accesses run in RPC handlers served by the same handler
 *     thread on the same node -> move requests to the RPC callers;
 *  3. both accesses sit inside critical sections of the same lock ->
 *     move requests before the lock acquisitions (the runtime fires
 *     the control hook before a lock is acquired for this reason);
 *
 * and, for sites with many dynamic instances, pins the request to the
 * specific dynamic occurrence that raced (or the causally preceding
 * enqueue/RPC call when one exists).
 */

#ifndef DCATCH_TRIGGER_PLACEMENT_HH
#define DCATCH_TRIGGER_PLACEMENT_HH

#include <string>
#include <vector>

#include "detect/report.hh"
#include "trace/trace_store.hh"

namespace dcatch::trigger {

/** One (possibly relocated) request point. */
struct RequestPoint
{
    std::string site;      ///< site to intercept
    std::string callstack; ///< exact callstack; empty = match any
    int instance = 0;      ///< 0-based dynamic occurrence to intercept
    std::string note;      ///< relocation rationale ("" = original)
};

/** The plan for one candidate. */
struct Placement
{
    RequestPoint a, b;
    bool relocated = false;    ///< any request moved?
    std::string rationale;     ///< summary of why
};

/** Computes placements from the pass-1 trace. */
class PlacementAnalyzer
{
  public:
    struct Options
    {
        /** Above this many dynamic instances of a site+callstack, the
         *  analyzer prefers a causally preceding request point. */
        int manyInstanceThreshold = 3;
    };

    PlacementAnalyzer(const trace::TraceStore &store, Options options);
    explicit PlacementAnalyzer(const trace::TraceStore &store)
        : PlacementAnalyzer(store, Options())
    {
    }

    /** Compute the placement for a candidate pair. */
    Placement plan(const detect::Candidate &candidate) const;

  private:
    /** Context of one access occurrence within its thread log. */
    struct AccessContext
    {
        bool found = false;
        int thread = -1;
        std::size_t pos = 0;          ///< index in the thread log
        int instance = 0;             ///< occurrence among same site+cs
        std::string handlerKind;      ///< "event"/"rpc"/"msg"/"watch"/""
        std::string handlerId;        ///< event id / rpc tag / msg tag
        std::string queueId;          ///< for events
        bool queueSingleConsumer = false;
        std::vector<std::string> locksHeld; ///< lock ids, outermost first
        /// sites of held locks' acquire records, aligned with locksHeld
        std::vector<std::string> lockSites;
        std::vector<std::string> lockStacks;
        std::vector<int> lockInstances;
    };

    AccessContext locate(const detect::CandidateAccess &access) const;

    /** Request point at an event's enqueue (or RPC's call, or
     *  message's send) record. */
    bool relocateToCause(const AccessContext &ctx, RequestPoint &point,
                         const char *why) const;

    /** Does the causal chain feeding @p access's handler instance
     *  pass through @p thread (which a hold would block)? */
    bool causeFlowsThroughThread(const AccessContext &access,
                                 int thread) const;

    const trace::TraceStore &store_;
    Options options_;
};

} // namespace dcatch::trigger

#endif // DCATCH_TRIGGER_PLACEMENT_HH
