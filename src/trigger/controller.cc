#include "trigger/controller.hh"

#include "common/logging.hh"

namespace dcatch::trigger {

namespace {

/**
 * Drop the leading thread name from a callstack ("AM.rpcWorker0:rpc:f"
 * -> "rpc:f").  Which worker of a pool serves a handler is schedule
 * dependent, and holding a request perturbs the schedule, so request
 * points match on frames only.
 */
std::string_view
framesOnly(std::string_view callstack)
{
    std::size_t pos = callstack.find(':');
    return pos == std::string_view::npos ? callstack
                                         : callstack.substr(pos + 1);
}

} // namespace

bool
OrderController::matches(const RequestPoint &point,
                         const trace::SymbolPool &pool,
                         const trace::Record &rec, int &counter) const
{
    // Record sites are interned before the hook fires, so a point
    // whose site is absent from the pool can never match.
    trace::SymId site_sym = pool.find(point.site);
    if (site_sym == trace::kNoSym || rec.site != site_sym)
        return false;
    if (!point.callstack.empty() &&
        framesOnly(pool.view(rec.callstack)) !=
            framesOnly(point.callstack))
        return false;
    return counter++ == point.instance;
}

void
OrderController::beforeOperation(sim::ThreadContext &ctx,
                                 const trace::Record &rec)
{
    const trace::SymbolPool &pool =
        ctx.sim().tracer().store().symbols();
    if (!firstSeen_ && matches(first_, pool, rec, firstCounter_)) {
        // Under the serialized scheduler the operation's effect is
        // applied before the thread yields, i.e. before any other
        // thread (in particular the held second party) can run — so
        // passing this point is also the "confirm".
        firstSeen_ = true;
        DCATCH_DEBUG() << "trigger: first point passed at "
                       << pool.view(rec.site);
        return;
    }

    if (!secondSeen_ && matches(second_, pool, rec, secondCounter_)) {
        secondArrived_ = true;
        if (!firstSeen_ && !released_) {
            DCATCH_DEBUG() << "trigger: holding second point at "
                           << pool.view(rec.site);
            holdingSecond_ = true;
            ctx.blockUntil([this] { return firstSeen_ || released_; });
            holdingSecond_ = false;
        }
        secondSeen_ = true;
        DCATCH_DEBUG() << "trigger: second point passed at "
                       << pool.view(rec.site);
    }
}

bool
OrderController::onQuiesce()
{
    if (!holdingSecond_)
        return false;
    DCATCH_DEBUG() << "trigger: quiesce while holding — releasing";
    released_ = true;
    rescued_ = true;
    return true;
}

} // namespace dcatch::trigger
