#include "trigger/harness.hh"

#include "common/logging.hh"
#include "common/task_pool.hh"
#include "replay/policies.hh"
#include "trigger/controller.hh"

namespace dcatch::trigger {

namespace {

replay::RequestPointSpec
toSpec(const RequestPoint &point)
{
    replay::RequestPointSpec spec;
    spec.site = point.site;
    spec.callstack = point.callstack;
    spec.instance = point.instance;
    spec.note = point.note;
    return spec;
}

} // namespace

const char *
triggerClassName(TriggerClass cls)
{
    switch (cls) {
      case TriggerClass::Serial: return "serial";
      case TriggerClass::Benign: return "benign";
      case TriggerClass::Harmful: return "harmful";
    }
    return "?";
}

OrderRun
TriggerHarness::runOrder(const RequestPoint &first,
                         const RequestPoint &second,
                         const std::string &label) const
{
    OrderRun run;
    run.order = label;

    sim::Simulation sim(config_);
    OrderController controller(first, second);
    sim.setControlHook(&controller);
    if (recordSchedules_) {
        run.schedule = std::make_shared<replay::ScheduleLog>();
        replay::attachRecorder(sim, *run.schedule);
    }
    build_(sim);
    run.result = sim.run();
    if (run.schedule) {
        replay::ScheduleHeader &header = run.schedule->header;
        header = replay::headerFromConfig(config_);
        header.benchmarkId = benchmarkId_;
        header.label = "trigger " + label;
        header.hasTrigger = true;
        header.trigger.first = toSpec(first);
        header.trigger.second = toSpec(second);
        header.trigger.order = label;
        for (const sim::FailureEvent &failure : run.result.failures)
            header.expectedFailureKinds.push_back(
                sim::failureKindName(failure.kind));
        header.traceChecksum = sim.tracer().store().contentDigest();
        header.traceRecords = sim.tracer().store().totalRecords();
    }
    run.enforced = controller.orderEnforced();
    run.rescued = controller.rescued();
    run.exercised = controller.firstReached() &&
                    (controller.secondReached() ||
                     controller.secondArrived());
    DCATCH_DEBUG() << "trigger order " << label
                   << (run.enforced ? " enforced" : " NOT enforced")
                   << ", " << run.result.summary();
    return run;
}

void
TriggerHarness::classifyRuns(TriggerReport &report)
{
    bool any_enforced = false;
    bool any_failed = false;
    for (const OrderRun &run : report.runs) {
        if (run.enforced)
            any_enforced = true;
        if (run.exercised && run.result.failed()) {
            any_failed = true;
            report.failingOrder = run.order;
            report.failures = run.result.failures;
            report.failingSchedule = run.schedule;
        }
    }

    if (any_failed)
        report.cls = TriggerClass::Harmful;
    else if (!any_enforced)
        report.cls = TriggerClass::Serial;
    else if (report.runs[0].enforced != report.runs[1].enforced)
        // Exactly one order achievable: the accesses are ordered by
        // synchronization DCatch did not model.
        report.cls = TriggerClass::Serial;
    else
        report.cls = TriggerClass::Benign;
}

TriggerReport
TriggerHarness::test(const detect::Candidate &candidate,
                     const trace::TraceStore &pass1) const
{
    TriggerReport report;
    report.candidate = candidate;

    PlacementAnalyzer analyzer(pass1);
    report.placement = analyzer.plan(candidate);

    report.runs.push_back(runOrder(report.placement.a,
                                   report.placement.b, "a-then-b"));
    report.runs.push_back(runOrder(report.placement.b,
                                   report.placement.a, "b-then-a"));

    classifyRuns(report);
    return report;
}

std::vector<TriggerReport>
TriggerHarness::testAll(const std::vector<detect::Candidate> &candidates,
                        const trace::TraceStore &pass1,
                        TaskPool *pool) const
{
    std::size_t n = candidates.size();
    if (pool == nullptr || pool->jobs() <= 1 || n == 0) {
        std::vector<TriggerReport> reports;
        reports.reserve(n);
        for (const detect::Candidate &cand : candidates)
            reports.push_back(test(cand, pass1));
        return reports;
    }

    // Stage 1: placement analysis per candidate (read-only over the
    // pass-1 trace), each task writing only its own report slot.
    std::vector<TriggerReport> reports(n);
    pool->parallelFor(n, [&](std::size_t i) {
        reports[i].candidate = candidates[i];
        PlacementAnalyzer analyzer(pass1);
        reports[i].placement = analyzer.plan(candidates[i]);
    });

    // Stage 2: one task per enforced ordering (2 per candidate), each
    // with its own Simulation.  Task 2i is candidate i's "a-then-b",
    // task 2i+1 its "b-then-a": the task index alone fixes where the
    // result lands, so the merged runs vector is identical to the
    // serial loop's for any worker count or stealing pattern.
    for (TriggerReport &report : reports)
        report.runs.resize(2);
    pool->parallelFor(2 * n, [&](std::size_t t) {
        TriggerReport &report = reports[t / 2];
        bool forward = (t % 2) == 0;
        const RequestPoint &first =
            forward ? report.placement.a : report.placement.b;
        const RequestPoint &second =
            forward ? report.placement.b : report.placement.a;
        report.runs[t % 2] =
            runOrder(first, second, forward ? "a-then-b" : "b-then-a");
    });

    // Stage 3: serial classification in candidate order.
    for (TriggerReport &report : reports)
        classifyRuns(report);
    return reports;
}

} // namespace dcatch::trigger
