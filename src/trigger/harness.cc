#include "trigger/harness.hh"

#include "common/logging.hh"
#include "replay/policies.hh"
#include "trigger/controller.hh"

namespace dcatch::trigger {

namespace {

replay::RequestPointSpec
toSpec(const RequestPoint &point)
{
    replay::RequestPointSpec spec;
    spec.site = point.site;
    spec.callstack = point.callstack;
    spec.instance = point.instance;
    spec.note = point.note;
    return spec;
}

} // namespace

const char *
triggerClassName(TriggerClass cls)
{
    switch (cls) {
      case TriggerClass::Serial: return "serial";
      case TriggerClass::Benign: return "benign";
      case TriggerClass::Harmful: return "harmful";
    }
    return "?";
}

OrderRun
TriggerHarness::runOrder(const RequestPoint &first,
                         const RequestPoint &second,
                         const std::string &label) const
{
    OrderRun run;
    run.order = label;

    sim::Simulation sim(config_);
    OrderController controller(first, second);
    sim.setControlHook(&controller);
    if (recordSchedules_) {
        run.schedule = std::make_shared<replay::ScheduleLog>();
        replay::attachRecorder(sim, *run.schedule);
    }
    build_(sim);
    run.result = sim.run();
    if (run.schedule) {
        replay::ScheduleHeader &header = run.schedule->header;
        header = replay::headerFromConfig(config_);
        header.benchmarkId = benchmarkId_;
        header.label = "trigger " + label;
        header.hasTrigger = true;
        header.trigger.first = toSpec(first);
        header.trigger.second = toSpec(second);
        header.trigger.order = label;
        for (const sim::FailureEvent &failure : run.result.failures)
            header.expectedFailureKinds.push_back(
                sim::failureKindName(failure.kind));
        header.traceChecksum = sim.tracer().store().contentDigest();
        header.traceRecords = sim.tracer().store().totalRecords();
    }
    run.enforced = controller.orderEnforced();
    run.rescued = controller.rescued();
    run.exercised = controller.firstReached() &&
                    (controller.secondReached() ||
                     controller.secondArrived());
    DCATCH_DEBUG() << "trigger order " << label
                   << (run.enforced ? " enforced" : " NOT enforced")
                   << ", " << run.result.summary();
    return run;
}

TriggerReport
TriggerHarness::test(const detect::Candidate &candidate,
                     const trace::TraceStore &pass1) const
{
    TriggerReport report;
    report.candidate = candidate;

    PlacementAnalyzer analyzer(pass1);
    report.placement = analyzer.plan(candidate);

    report.runs.push_back(runOrder(report.placement.a,
                                   report.placement.b, "a-then-b"));
    report.runs.push_back(runOrder(report.placement.b,
                                   report.placement.a, "b-then-a"));

    bool any_enforced = false;
    bool any_failed = false;
    for (const OrderRun &run : report.runs) {
        if (run.enforced)
            any_enforced = true;
        if (run.exercised && run.result.failed()) {
            any_failed = true;
            report.failingOrder = run.order;
            report.failures = run.result.failures;
            report.failingSchedule = run.schedule;
        }
    }

    if (any_failed)
        report.cls = TriggerClass::Harmful;
    else if (!any_enforced)
        report.cls = TriggerClass::Serial;
    else if (report.runs[0].enforced != report.runs[1].enforced)
        // Exactly one order achievable: the accesses are ordered by
        // synchronization DCatch did not model.
        report.cls = TriggerClass::Serial;
    else
        report.cls = TriggerClass::Benign;
    return report;
}

std::vector<TriggerReport>
TriggerHarness::testAll(const std::vector<detect::Candidate> &candidates,
                        const trace::TraceStore &pass1) const
{
    std::vector<TriggerReport> reports;
    reports.reserve(candidates.size());
    for (const detect::Candidate &cand : candidates)
        reports.push_back(test(cand, pass1));
    return reports;
}

} // namespace dcatch::trigger
