/**
 * @file
 * The timing-manipulation controller (paper section 5.1).
 *
 * The paper's infrastructure has client-side request/confirm APIs and
 * a message-controller server that grants permissions so that, for a
 * pair of operations A and B, both "A right before B" and "B right
 * before A" are explored.  In our substrate the controller is a
 * ControlHook: request points fire inside beforeOperation (which runs
 * before the operation executes), the "confirm" is implicit in the
 * party's next intercepted operation, and quiescence (no runnable
 * thread) is the controller's signal that a held request will never
 * be matched by its peer — the evidence used to classify reports as
 * serial (ordered by custom synchronization DCatch does not model).
 */

#ifndef DCATCH_TRIGGER_CONTROLLER_HH
#define DCATCH_TRIGGER_CONTROLLER_HH

#include <string>

#include "runtime/hooks.hh"
#include "runtime/sim.hh"
#include "trigger/placement.hh"

namespace dcatch::trigger {

/**
 * Enforces "first executes before second" between two request points
 * within one run:
 *
 *  - when the second party reaches its point before the first party
 *    has executed, its thread is held until the first party passes
 *    (under the serialized scheduler the first operation's effect is
 *    applied before any other thread runs, so no separate confirm
 *    message is needed);
 *  - on quiescence the hold is dropped and the timeout is recorded —
 *    the signal that unmodelled synchronization orders the pair.
 */
class OrderController : public sim::ControlHook
{
  public:
    OrderController(RequestPoint first, RequestPoint second)
        : first_(std::move(first)), second_(std::move(second))
    {
    }

    void beforeOperation(sim::ThreadContext &ctx,
                         const trace::Record &rec) override;

    bool onQuiesce() override;

    /// @{ @name Outcome queries (valid after the run)
    bool firstReached() const { return firstSeen_; }
    bool secondReached() const { return secondSeen_; }
    /** Both points fired and the enforced order held without a
     *  quiescence rescue. */
    bool
    orderEnforced() const
    {
        return firstSeen_ && secondSeen_ && !rescued_;
    }
    /** A hold had to be dropped because the system quiesced. */
    bool rescued() const { return rescued_; }

    /** The second party at least arrived at its request point (it may
     *  have been killed by a failure before completing). */
    bool secondArrived() const { return secondArrived_; }
    /// @}

  private:
    /** Does @p rec match @p point (advancing its instance counter)?
     *  @p pool resolves the record's interned symbol fields. */
    bool matches(const RequestPoint &point,
                 const trace::SymbolPool &pool, const trace::Record &rec,
                 int &counter) const;

    RequestPoint first_, second_;
    int firstCounter_ = 0, secondCounter_ = 0;
    bool firstSeen_ = false;     ///< first party passed its point
    bool secondSeen_ = false;    ///< second party passed its point
    bool secondArrived_ = false; ///< second party reached its point
    bool holdingSecond_ = false; ///< second party currently blocked
    bool released_ = false;      ///< quiesce dropped the hold
    bool rescued_ = false;
};

} // namespace dcatch::trigger

#endif // DCATCH_TRIGGER_CONTROLLER_HH
