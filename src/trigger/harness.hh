/**
 * @file
 * End-to-end DCbug triggering and validation (paper section 5).
 *
 * For each DCatch report (s, t) the harness re-runs the system twice,
 * enforcing "s right before t" and "t right before s", and classifies
 * the report:
 *
 *  - harmful: some enforced order produced a failure (abort, fatal
 *    log, uncaught exception, hang);
 *  - benign: both orders were enforced and neither failed;
 *  - serial: an order could not be enforced — while one request was
 *    held the rest of the system quiesced without the peer arriving,
 *    i.e. unmodelled custom synchronization orders the accesses.
 */

#ifndef DCATCH_TRIGGER_HARNESS_HH
#define DCATCH_TRIGGER_HARNESS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "detect/report.hh"
#include "replay/schedule_log.hh"
#include "runtime/sim.hh"
#include "trace/trace_store.hh"
#include "trigger/placement.hh"

namespace dcatch {
class TaskPool;
}

namespace dcatch::trigger {

/** Classification of a DCatch report after triggering. */
enum class TriggerClass { Serial, Benign, Harmful };

/** Name of a classification. */
const char *triggerClassName(TriggerClass cls);

/** Result of one enforced-order run. */
struct OrderRun
{
    std::string order;       ///< "a-then-b" or "b-then-a"
    bool enforced = false;   ///< both points hit, no quiesce rescue
    bool rescued = false;    ///< a hold was dropped at quiescence
    /** Both parties reached their points (the second may have been
     *  killed by the failure before completing — e.g. its node
     *  aborted as a result of the enforced order). */
    bool exercised = false;
    sim::RunResult result;

    /** Schedule log of this run, when the harness records schedules
     *  (shared so OrderRun stays cheaply copyable). */
    std::shared_ptr<replay::ScheduleLog> schedule;
};

/** Full triggering report for one candidate. */
struct TriggerReport
{
    detect::Candidate candidate;
    TriggerClass cls = TriggerClass::Benign;
    Placement placement;
    std::vector<OrderRun> runs;
    std::string failingOrder; ///< which order failed (when harmful)

    /** Failures observed in the failing run (when harmful). */
    std::vector<sim::FailureEvent> failures;

    /** Repro bundle directory (set by the pipeline when it writes a
     *  bundle for a harmful report). */
    std::string bundleDir;

    /** Schedule log of the failing run (when harmful and the harness
     *  records schedules). */
    std::shared_ptr<replay::ScheduleLog> failingSchedule;
};

/** The triggering harness, bound to one benchmark's topology. */
class TriggerHarness
{
  public:
    /**
     * @param build topology builder (fresh Simulation per run)
     * @param config simulation config used for the trigger runs
     */
    TriggerHarness(std::function<void(sim::Simulation &)> build,
                   sim::SimConfig config)
        : build_(std::move(build)), config_(config)
    {
    }

    /**
     * Record every trigger run's schedule so harmful classifications
     * can be exported as repro bundles.  @p benchmark_id is stamped
     * into each log's header (replay needs it to rebuild the
     * topology).
     */
    void
    enableScheduleRecording(std::string benchmark_id)
    {
        benchmarkId_ = std::move(benchmark_id);
        recordSchedules_ = true;
    }

    /**
     * Trigger one candidate.
     * @param pass1 the trace of the original (correct) monitored run,
     *        used by the placement analysis
     */
    TriggerReport test(const detect::Candidate &candidate,
                       const trace::TraceStore &pass1) const;

    /**
     * Trigger a whole report list.  @return reports in input order.
     *
     * When @p pool is non-null with more than one worker, the
     * placement analyses and every enforced-order exploration run
     * concurrently — each candidate ordering gets its own
     * Simulation instance on a worker — and results are merged back
     * in candidate/order placement order, so reports (including
     * classifications and recorded failing schedules) are
     * byte-identical to the serial path (docs/parallelism.md).
     */
    std::vector<TriggerReport>
    testAll(const std::vector<detect::Candidate> &candidates,
            const trace::TraceStore &pass1,
            TaskPool *pool = nullptr) const;

  private:
    OrderRun runOrder(const RequestPoint &first,
                      const RequestPoint &second,
                      const std::string &label) const;

    /** Classify from report.runs (shared by test and testAll). */
    static void classifyRuns(TriggerReport &report);

    std::function<void(sim::Simulation &)> build_;
    sim::SimConfig config_;
    std::string benchmarkId_;
    bool recordSchedules_ = false;
};

} // namespace dcatch::trigger

#endif // DCATCH_TRIGGER_HARNESS_HH
