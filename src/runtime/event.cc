#include "runtime/event.hh"

#include "common/util.hh"
#include "runtime/node.hh"
#include "runtime/sim.hh"

namespace dcatch::sim {

EventQueue::EventQueue(Node &node, std::string name, int consumers)
    : node_(node), name_(std::move(name)), consumers_(consumers)
{
    queueId_ = node_.name() + "/" + name_;
}

void
EventQueue::on(const std::string &type, Handler handler)
{
    handlers_[type] = std::move(handler);
}

void
EventQueue::enqueue(ThreadContext &ctx, const char *site,
                    const std::string &type, Payload payload)
{
    Event event;
    event.id = strprintf("%s#%d", queueId_.c_str(), nextEventSerial_++);
    event.type = type;
    event.payload = std::move(payload);
    event.enqSite = site;
    node_.sim().opRecord(ctx, trace::RecordType::EventCreate, event.id,
                         site);
    pending_.push_back(std::move(event));
    node_.sim().accessYield(ctx);
}

void
EventQueue::start()
{
    if (started_)
        return;
    started_ = true;

    trace::QueueMeta meta;
    meta.queueId = queueId_;
    meta.node = node_.index();
    meta.singleConsumer = (consumers_ == 1);
    node_.sim().tracer().store().noteQueue(meta);

    for (int i = 0; i < consumers_; ++i) {
        node_.sim().spawn(
            nullptr, node_,
            strprintf("%s.consumer%d", queueId_.c_str(), i),
            [this](ThreadContext &ctx) { consumerLoop(ctx); },
            /*daemon=*/true);
    }
}

void
EventQueue::consumerLoop(ThreadContext &ctx)
{
    Simulation &sim = node_.sim();
    while (true) {
        ctx.blockUntil([this] { return !pending_.empty(); });
        Event event = pending_.front();
        pending_.pop_front();

        sim.opTrace(ctx, trace::RecordType::EventBegin, event.id,
                    event.type.c_str());
        {
            Frame frame(ctx, "evt:" + event.type, ScopeKind::Event,
                        "e:" + event.id);
            auto it = handlers_.find(event.type);
            if (it != handlers_.end()) {
                try {
                    it->second(ctx, event);
                } catch (const Simulation::UncaughtSignal &) {
                    // event dispatcher survives handler exceptions;
                    // the failure was already recorded
                }
            }
        }
        sim.opTrace(ctx, trace::RecordType::EventEnd, event.id,
                    event.type.c_str());
    }
}

} // namespace dcatch::sim
