#include "runtime/coord.hh"

#include "common/util.hh"
#include "runtime/node.hh"
#include "runtime/sim.hh"

namespace dcatch::sim {

const char *
coordChangeName(CoordChange change)
{
    switch (change) {
      case CoordChange::Created: return "Created";
      case CoordChange::Deleted: return "Deleted";
      case CoordChange::DataChanged: return "DataChanged";
    }
    return "?";
}

namespace {

std::string
znodeVarId(const std::string &path)
{
    return "znode:" + path;
}

} // namespace

bool
CoordService::create(ThreadContext &ctx, const char *site,
                     const std::string &path, const std::string &data)
{
    if (znodes_.count(path)) {
        // Failed create still touches the znode (write attempt).
        sim_.memAccess(ctx, true, znodeVarId(path), site, -1);
        return false;
    }
    std::int64_t version = ++nextVersion_;
    sim_.traceAccess(ctx, true, znodeVarId(path), site, version);
    // Re-validate after the control point: the hook may have held
    // this thread while another client created the path.
    if (znodes_.count(path)) {
        sim_.accessYield(ctx);
        return false;
    }
    znodes_[path] = Znode{data, version};
    sim_.accessYield(ctx);
    publish(ctx, path, CoordChange::Created, version, data);
    return true;
}

bool
CoordService::remove(ThreadContext &ctx, const char *site,
                     const std::string &path)
{
    if (!znodes_.count(path)) {
        sim_.memAccess(ctx, true, znodeVarId(path), site, -1);
        return false;
    }
    std::int64_t version = ++nextVersion_;
    sim_.traceAccess(ctx, true, znodeVarId(path), site, version);
    // Re-validate after the control point (see create()).
    bool existed = znodes_.erase(path) > 0;
    sim_.accessYield(ctx);
    if (!existed)
        return false;
    publish(ctx, path, CoordChange::Deleted, version, "");
    return true;
}

bool
CoordService::setData(ThreadContext &ctx, const char *site,
                      const std::string &path, const std::string &data)
{
    auto it = znodes_.find(path);
    if (it == znodes_.end()) {
        sim_.memAccess(ctx, true, znodeVarId(path), site, -1);
        return false;
    }
    std::int64_t version = ++nextVersion_;
    sim_.traceAccess(ctx, true, znodeVarId(path), site, version);
    // Re-validate after the control point (see create()).
    it = znodes_.find(path);
    if (it == znodes_.end()) {
        sim_.accessYield(ctx);
        return false;
    }
    it->second.data = data;
    it->second.version = version;
    sim_.accessYield(ctx);
    publish(ctx, path, CoordChange::DataChanged, version, data);
    return true;
}

std::optional<std::string>
CoordService::getData(ThreadContext &ctx, const char *site,
                      const std::string &path)
{
    auto it = znodes_.find(path);
    std::int64_t version = it == znodes_.end() ? 0 : it->second.version;
    sim_.traceAccess(ctx, false, znodeVarId(path), site, version);
    std::optional<std::string> out;
    if (it != znodes_.end())
        out = it->second.data;
    sim_.accessYield(ctx);
    return out;
}

bool
CoordService::exists(ThreadContext &ctx, const char *site,
                     const std::string &path)
{
    bool present = znodes_.count(path) > 0;
    std::int64_t version = present ? znodes_.at(path).version : 0;
    sim_.traceAccess(ctx, false, znodeVarId(path), site, version);
    present = znodes_.count(path) > 0;
    sim_.accessYield(ctx);
    return present;
}

void
CoordService::watch(Node &node, const std::string &path_prefix,
                    WatchHandler handler)
{
    auto watcher = std::make_unique<Watcher>();
    watcher->node = &node;
    watcher->prefix = path_prefix;
    watcher->handler = std::move(handler);
    watchers_.push_back(std::move(watcher));
}

void
CoordService::publish(ThreadContext &ctx, const std::string &path,
                      CoordChange change, std::int64_t version,
                      const std::string &data)
{
    std::string update_id =
        strprintf("%s#%lld", path.c_str(), static_cast<long long>(version));
    sim_.opRecord(ctx, trace::RecordType::CoordUpdate, update_id,
                  coordChangeName(change));
    for (auto &watcher : watchers_) {
        if (path.rfind(watcher->prefix, 0) != 0)
            continue;
        if (watcher->node->crashed())
            continue;
        CoordNotification note;
        note.path = path;
        note.change = change;
        note.version = version;
        note.data = data;
        watcher->inbox.push_back(note);
    }
    sim_.accessYield(ctx);
}

void
CoordService::start()
{
    if (started_)
        return;
    started_ = true;
    for (std::size_t i = 0; i < watchers_.size(); ++i) {
        Watcher *watcher = watchers_[i].get();
        sim_.spawn(
            nullptr, *watcher->node,
            strprintf("%s.zkWatcher%zu", watcher->node->name().c_str(), i),
            [this, watcher](ThreadContext &ctx) {
                watcherLoop(ctx, *watcher);
            },
            /*daemon=*/true);
    }
}

void
CoordService::watcherLoop(ThreadContext &ctx, Watcher &watcher)
{
    while (true) {
        ctx.blockUntil([&watcher] { return !watcher.inbox.empty(); });
        CoordNotification note = watcher.inbox.front();
        watcher.inbox.pop_front();

        std::string push_id = strprintf(
            "%s#%lld", note.path.c_str(),
            static_cast<long long>(note.version));
        sim_.opTrace(ctx, trace::RecordType::CoordPushed, push_id,
                     coordChangeName(note.change));
        Frame frame(ctx, "watch:" + note.path, ScopeKind::Event,
                    "w:" + push_id);
        try {
            watcher.handler(ctx, note);
        } catch (const Simulation::UncaughtSignal &) {
            // watcher thread survives; failure already recorded
        }
    }
}

} // namespace dcatch::sim
