#include "runtime/node.hh"

#include <cassert>

#include "common/util.hh"
#include "runtime/sim.hh"

namespace dcatch::sim {

Node::Node(Simulation &sim, int index, std::string name)
    : sim_(sim), index_(index), name_(std::move(name))
{
}

void
Node::registerRpc(const std::string &name, RpcFn fn)
{
    rpcFns_[name] = std::move(fn);
}

bool
Node::hasRpc(const std::string &name) const
{
    return rpcFns_.count(name) > 0;
}

void
Node::registerVerb(const std::string &verb, VerbHandler handler)
{
    verbs_[verb] = std::move(handler);
}

EventQueue &
Node::addEventQueue(const std::string &name, int consumers)
{
    queues_.push_back(std::make_unique<EventQueue>(*this, name, consumers));
    return *queues_.back();
}

EventQueue &
Node::queue(const std::string &name)
{
    for (auto &q : queues_)
        if (q->queueId() == name_ + "/" + name)
            return *q;
    throw std::out_of_range("no such queue: " + name);
}

void
Node::start()
{
    assert(!started_);
    started_ = true;
    if (!rpcFns_.empty()) {
        for (int i = 0; i < sim_.config().rpcWorkersPerNode; ++i) {
            sim_.spawn(nullptr, *this,
                       strprintf("%s.rpcWorker%d", name_.c_str(), i),
                       [this](ThreadContext &ctx) { rpcWorkerLoop(ctx); },
                       /*daemon=*/true);
        }
    }
    if (!verbs_.empty()) {
        sim_.spawn(nullptr, *this, name_ + ".msgDispatch",
                   [this](ThreadContext &ctx) { msgDispatchLoop(ctx); },
                   /*daemon=*/true);
    }
    for (auto &q : queues_)
        q->start();
}

void
Node::rpcWorkerLoop(ThreadContext &ctx)
{
    while (true) {
        ctx.blockUntil([this] { return !rpcQueue.empty(); });
        RpcRequest req = rpcQueue.front();
        rpcQueue.pop_front();

        sim_.opTrace(ctx, trace::RecordType::RpcBegin, req.tag,
                     req.fn.c_str());
        Payload reply;
        {
            Frame frame(ctx, "rpc:" + req.fn, ScopeKind::Rpc,
                        "r:" + req.tag);
            auto it = rpcFns_.find(req.fn);
            if (it == rpcFns_.end()) {
                reply.set("__error", "no_such_rpc");
            } else {
                try {
                    reply = it->second(ctx, req.args);
                } catch (const Simulation::UncaughtSignal &) {
                    // The RPC runtime converts handler exceptions into
                    // error replies (as Hadoop's RPC server does); the
                    // failure event was already recorded.
                    reply = Payload{}.set("__error", "remote_exception");
                }
            }
        }
        sim_.opTrace(ctx, trace::RecordType::RpcEnd, req.tag,
                     req.fn.c_str());
        rpcReplies[req.tag] = reply;
    }
}

void
Node::msgDispatchLoop(ThreadContext &ctx)
{
    while (true) {
        ctx.blockUntil([this] { return !msgQueue.empty(); });
        InMessage msg = msgQueue.front();
        msgQueue.pop_front();

        sim_.opTrace(ctx, trace::RecordType::MsgRecv, msg.tag,
                     msg.verb.c_str());
        Frame frame(ctx, "verb:" + msg.verb, ScopeKind::Message,
                    "m:" + msg.tag);
        auto it = verbs_.find(msg.verb);
        if (it != verbs_.end()) {
            try {
                it->second(ctx, msg.payload);
            } catch (const Simulation::UncaughtSignal &) {
                // handler thread survives; failure already recorded
            }
        }
    }
}

} // namespace dcatch::sim
