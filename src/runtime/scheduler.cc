#include "runtime/scheduler.hh"

#include <algorithm>
#include <cassert>

#include "common/logging.hh"

namespace dcatch::sim {

namespace {

/** Internal unwind signal for killing simulated threads at shutdown. */
struct ThreadKilled {};

} // namespace

int
FifoPolicy::pick(const std::vector<int> &runnable, std::uint64_t step)
{
    // step is 1-based, so (step - 1) is the number of prior picks —
    // identical to the historical cursor-based round-robin.
    return runnable[(step - 1) % runnable.size()];
}

int
RandomPolicy::pick(const std::vector<int> &runnable, std::uint64_t step)
{
    // The step-th draw of Rng(seed_), computed statelessly: draw
    // sequences (and thus recorded schedules) are byte-identical to
    // the old advancing-Rng implementation.
    return runnable[Rng::mix(seed_ + step * Rng::kGamma) %
                    runnable.size()];
}

namespace {

/** Ascending list of @p count hash-chosen steps in [1, horizon]. */
std::vector<std::uint64_t>
hashSteps(std::uint64_t seed, int count, std::uint64_t horizon)
{
    if (horizon == 0)
        horizon = 1;
    Rng rng(seed);
    std::vector<std::uint64_t> steps;
    steps.reserve(static_cast<std::size_t>(count < 0 ? 0 : count));
    for (int i = 0; i < count; ++i)
        steps.push_back(1 + rng.nextBelow(horizon));
    std::sort(steps.begin(), steps.end());
    return steps;
}

} // namespace

PctPolicy::PctPolicy(std::uint64_t seed, int depth, std::uint64_t horizon)
    : seed_(seed),
      changeSteps_(hashSteps(seed ^ 0xc2b2ae3d27d4eb4full, depth, horizon))
{
}

std::uint64_t
PctPolicy::epoch(std::uint64_t step) const
{
    return static_cast<std::uint64_t>(
        std::upper_bound(changeSteps_.begin(), changeSteps_.end(), step) -
        changeSteps_.begin());
}

int
PctPolicy::pick(const std::vector<int> &runnable, std::uint64_t step)
{
    // Highest (seed, epoch, tid)-hashed priority runs; ties (never in
    // practice with 64-bit draws) break toward the lower tid.
    std::uint64_t e = epoch(step);
    int best = runnable.front();
    std::uint64_t best_prio = 0;
    for (int tid : runnable) {
        std::uint64_t prio = Rng::mix(
            seed_ + e * 0x9e3779b97f4a7c15ull +
            static_cast<std::uint64_t>(tid) * 0xbf58476d1ce4e5b9ull);
        if (tid == runnable.front() || prio > best_prio) {
            best = tid;
            best_prio = prio;
        }
    }
    return best;
}

DelayBoundedPolicy::DelayBoundedPolicy(std::uint64_t seed, int budget,
                                       std::uint64_t horizon)
    : delaySteps_(hashSteps(seed ^ 0x94d049bb133111ebull, budget, horizon))
{
}

int
DelayBoundedPolicy::pick(const std::vector<int> &runnable,
                         std::uint64_t step)
{
    // Round-robin shifted once per spent delay: each delay point
    // skips the thread FIFO would have admitted at that step.
    std::uint64_t spent = static_cast<std::uint64_t>(
        std::upper_bound(delaySteps_.begin(), delaySteps_.end(), step) -
        delaySteps_.begin());
    return runnable[(step - 1 + spent) % runnable.size()];
}

std::unique_ptr<SchedulerPolicy>
makePolicy(const SimConfig &config)
{
    switch (config.policy) {
      case PolicyKind::Fifo:
        return std::make_unique<FifoPolicy>();
      case PolicyKind::Random:
        return std::make_unique<RandomPolicy>(config.seed);
    }
    return std::make_unique<FifoPolicy>();
}

Scheduler::Scheduler(std::unique_ptr<SchedulerPolicy> policy)
    : policy_(std::move(policy))
{
}

void
Scheduler::setPolicy(std::unique_ptr<SchedulerPolicy> policy)
{
    std::lock_guard<std::mutex> lock(mutex_);
    assert(steps_ == 0 && "policy must be set before the first step");
    policy_ = std::move(policy);
}

Scheduler::~Scheduler()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        shuttingDown_ = true;
        cv_.notify_all();
        // Wait until every simulated thread has observed the shutdown
        // flag and unwound.
        cv_.wait(lock, [this] {
            for (const auto &slot : threads_)
                if (slot->state != ThreadState::Finished)
                    return false;
            return true;
        });
    }
    for (auto &slot : threads_)
        if (slot->worker.joinable())
            slot->worker.join();
}

int
Scheduler::addThread(std::function<void()> body, bool daemon)
{
    std::lock_guard<std::mutex> lock(mutex_);
    int tid = static_cast<int>(threads_.size());
    auto slot = std::make_unique<ThreadSlot>();
    slot->daemon = daemon;
    slot->state = ThreadState::Runnable;
    slot->body = std::move(body);
    threads_.push_back(std::move(slot));
    threads_.back()->worker = std::thread([this, tid] { threadMain(tid); });
    return tid;
}

void
Scheduler::threadMain(int tid)
{
    ThreadSlot *slot = nullptr;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        slot = threads_[tid].get();
        cv_.wait(lock, [this, tid] {
            return current_ == tid || shuttingDown_;
        });
        if (shuttingDown_) {
            slot->state = ThreadState::Finished;
            if (current_ == tid)
                current_ = -1;
            cv_.notify_all();
            return;
        }
    }
    try {
        slot->body();
    } catch (const ThreadKilled &) {
        // normal shutdown unwind
    } catch (const std::exception &e) {
        DCATCH_ERROR() << "simulated thread " << tid
                       << " escaped exception: " << e.what();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    threads_[tid]->state = ThreadState::Finished;
    if (current_ == tid)
        current_ = -1;
    cv_.notify_all();
}

void
Scheduler::yield(int tid)
{
    std::unique_lock<std::mutex> lock(mutex_);
    threads_[tid]->state = ThreadState::Runnable;
    current_ = -1;
    cv_.notify_all();
    cv_.wait(lock, [this, tid] {
        return current_ == tid || shuttingDown_;
    });
    if (shuttingDown_ && current_ != tid)
        throw ThreadKilled{};
}

void
Scheduler::blockUntil(int tid, std::function<bool()> pred)
{
    std::unique_lock<std::mutex> lock(mutex_);
    threads_[tid]->state = ThreadState::Blocked;
    threads_[tid]->blockedOn = std::move(pred);
    current_ = -1;
    cv_.notify_all();
    cv_.wait(lock, [this, tid] {
        return current_ == tid || shuttingDown_;
    });
    if (shuttingDown_ && current_ != tid)
        throw ThreadKilled{};
}

void
Scheduler::wakeUnblockedLocked()
{
    for (auto &slot : threads_) {
        if (slot->state == ThreadState::Blocked && slot->blockedOn &&
            slot->blockedOn()) {
            slot->state = ThreadState::Runnable;
            slot->blockedOn = nullptr;
        }
    }
}

std::vector<int>
Scheduler::runnableLocked() const
{
    std::vector<int> out;
    for (std::size_t i = 0; i < threads_.size(); ++i)
        if (threads_[i]->state == ThreadState::Runnable)
            out.push_back(static_cast<int>(i));
    return out;
}

bool
Scheduler::completedLocked() const
{
    for (const auto &slot : threads_)
        if (!slot->daemon && slot->state != ThreadState::Finished)
            return false;
    return true;
}

RunStatus
Scheduler::run(std::uint64_t max_steps, std::function<bool()> on_quiesce)
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        wakeUnblockedLocked();
        if (completedLocked())
            return RunStatus::Completed;

        std::vector<int> runnable = runnableLocked();
        if (runnable.empty()) {
            // Give the quiescence hook (trigger controller) a chance
            // to release a held thread before declaring deadlock.
            if (on_quiesce && on_quiesce()) {
                wakeUnblockedLocked();
                runnable = runnableLocked();
            }
            if (runnable.empty())
                return RunStatus::Deadlock;
        }

        if (steps_ >= max_steps)
            return RunStatus::StepLimit;
        ++steps_;

        int tid = policy_->pick(runnable, steps_);
        current_ = tid;
        threads_[tid]->state = ThreadState::Running;
        cv_.notify_all();
        cv_.wait(lock, [this] { return current_ == -1; });
    }
}

ThreadState
Scheduler::threadState(int tid) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return threads_[tid]->state;
}

bool
Scheduler::allFinished() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &slot : threads_)
        if (slot->state != ThreadState::Finished)
            return false;
    return true;
}

} // namespace dcatch::sim
