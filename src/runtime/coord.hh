/**
 * @file
 * ZooKeeper-like coordination service (paper Rule-Mpush).
 *
 * Nodes create/delete/setData znodes; subscriber nodes register
 * watchers on path prefixes and receive push notifications in a
 * dedicated watcher thread.  Znode accesses are also traced as
 * ordinary shared-memory accesses (var id "znode:<path>") so that
 * races on znodes — e.g. HB-4729's concurrent delete vs.
 * read-then-delete — are visible to the race detector, exactly as
 * DCatch reports them.
 */

#ifndef DCATCH_RUNTIME_COORD_HH
#define DCATCH_RUNTIME_COORD_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/types.hh"

namespace dcatch::sim {

/** Change type carried by a watcher notification. */
enum class CoordChange { Created, Deleted, DataChanged };

/** Name of a change type. */
const char *coordChangeName(CoordChange change);

/** One watcher notification. */
struct CoordNotification
{
    std::string path;
    CoordChange change = CoordChange::Created;
    std::int64_t version = 0; ///< update version (pairs Update/Pushed)
    std::string data;         ///< znode data after the change
};

/** ZooKeeper-like znode store with push-based watcher notifications. */
class CoordService
{
  public:
    using WatchHandler =
        std::function<void(ThreadContext &, const CoordNotification &)>;

    explicit CoordService(Simulation &sim) : sim_(sim) {}

    /**
     * Create a znode.  Traces a MemWrite on "znode:<path>" plus, on
     * success, a CoordUpdate (Rule-Mpush source).
     * @return false if the path already exists
     */
    bool create(ThreadContext &ctx, const char *site,
                const std::string &path, const std::string &data = "");

    /** Delete a znode. @return false if the path does not exist. */
    bool remove(ThreadContext &ctx, const char *site,
                const std::string &path);

    /** Overwrite znode data. @return false if the path is missing. */
    bool setData(ThreadContext &ctx, const char *site,
                 const std::string &path, const std::string &data);

    /** Read znode data (MemRead trace). */
    std::optional<std::string> getData(ThreadContext &ctx,
                                       const char *site,
                                       const std::string &path);

    /** Existence test (MemRead trace). */
    bool exists(ThreadContext &ctx, const char *site,
                const std::string &path);

    /**
     * Subscribe @p node to changes under @p path_prefix.  Must be
     * called during setup (before the run).  Notifications are
     * delivered in a dedicated watcher thread on the subscriber node,
     * inside an event-handler traced scope.
     */
    void watch(Node &node, const std::string &path_prefix,
               WatchHandler handler);

    /** Spawn watcher threads; called by Simulation at run start. */
    void start();

  private:
    struct Znode
    {
        std::string data;
        std::int64_t version = 0;
    };

    struct Watcher
    {
        Node *node = nullptr;
        std::string prefix;
        WatchHandler handler;
        std::deque<CoordNotification> inbox;
        int serial = 0; ///< per-watcher notification counter
    };

    /** Record the write, notify watchers, trace CoordUpdate. */
    void publish(ThreadContext &ctx, const std::string &path,
                 CoordChange change, std::int64_t version,
                 const std::string &data);

    void watcherLoop(ThreadContext &ctx, Watcher &watcher);

    Simulation &sim_;
    std::map<std::string, Znode> znodes_;
    std::int64_t nextVersion_ = 0;
    std::vector<std::unique_ptr<Watcher>> watchers_;
    bool started_ = false;
};

} // namespace dcatch::sim

#endif // DCATCH_RUNTIME_COORD_HH
