/**
 * @file
 * Per-thread execution context.
 *
 * A ThreadContext carries the identity of a simulated thread (node,
 * global id, name), its callstack of RAII frames, and the "traced
 * scope" depth used by the selective tracer: memory accesses are
 * recorded only while the thread executes inside an RPC function, an
 * event handler, a socket/verb handler, or one of their callees
 * (paper section 3.1.1).
 *
 * App-facing conveniences (RPC calls, message sends, failure
 * reporting, retry loops) live here so application code reads like
 * code written against a real distributed-system framework.
 */

#ifndef DCATCH_RUNTIME_CONTEXT_HH
#define DCATCH_RUNTIME_CONTEXT_HH

#include <functional>
#include <string>
#include <vector>

#include "runtime/types.hh"
#include "trace/symbol_pool.hh"

namespace dcatch::sim {

/** Kinds of handler scopes a frame can open. */
enum class ScopeKind {
    Regular,    ///< plain function frame, no tracing-scope change
    Rpc,        ///< RPC function body
    Event,      ///< event-handler body
    Message,    ///< socket/verb-handler body
};

/** Execution context of one simulated thread. */
class ThreadContext
{
  public:
    ThreadContext(Simulation &sim, Node &node, int tid, std::string name);

    Simulation &sim() { return sim_; }
    Node &node() { return node_; }
    int tid() const { return tid_; }
    const std::string &name() const { return name_; }

    /** Joined callstack string ("a>b>c") for trace records. */
    std::string callstack() const;

    /**
     * The callstack interned in the tracer's symbol pool.  Cached per
     * frame state: the string is built and interned once per distinct
     * push/pop transition instead of once per traced operation (the
     * hot-path win of the interned trace substrate).
     */
    trace::SymId callstackSym();

    /** True while inside an RPC/event/message handler or a callee. */
    bool inTracedScope() const { return tracedDepth_ > 0; }

    /**
     * Key identifying the current handler segment, used to apply
     * Rule-Pnreg: program order only links operations of the same
     * handler instance.  Empty for regular (non-handler) threads.
     */
    const std::string &segmentKey() const { return segment_; }

    /** Give up the token; another thread may run. */
    void yield();

    /** Yield @p times times (used by apps to bias the default order). */
    void pause(int times);

    /** Block until @p pred holds (evaluated with no thread running). */
    void blockUntil(std::function<bool()> pred);

    // ------------------------------------------------------------------
    // Distributed-system verbs (implemented in sim.cc).
    // ------------------------------------------------------------------

    /**
     * Synchronous RPC to @p target_node.  Blocks until the reply
     * arrives.  If the target node crashed, the reply payload carries
     * field "__error".
     */
    Payload rpcCall(const char *site, const std::string &target_node,
                    const std::string &function, Payload args);

    /** Asynchronous socket message to @p target_node (never blocks). */
    void send(const char *site, const std::string &target_node,
              const std::string &verb, Payload message);

    // ------------------------------------------------------------------
    // Failure instructions (paper section 4.1).
    // ------------------------------------------------------------------

    /** System.exit / abort: records the failure and crashes the node. */
    [[noreturn]] void abortNode(const char *site, const std::string &msg);

    /** Log::fatal / Log::error: records the failure, continues. */
    void fatalLog(const char *site, const std::string &msg);

    /** Uncaught RuntimeException: records the failure, kills the
     *  current thread only. */
    [[noreturn]] void throwUncaught(const char *site,
                                    const std::string &msg);

    /**
     * Instrumented retry loop ("while (!attempt()) {}").  Calls
     * @p attempt until it returns true.  Each iteration is traced
     * (LoopIter); a successful exit is traced as LoopExit at @p site.
     * If the loop spins beyond the configured hang bound, a LoopHang
     * failure is recorded at @p site and the call returns false.
     * @return true if the loop exited normally.
     */
    bool retryUntil(const char *site, std::function<bool()> attempt);

  private:
    friend class Frame;
    friend class Simulation;

    Simulation &sim_;
    Node &node_;
    int tid_;
    std::string name_;
    std::vector<std::string> frames_;
    int tracedDepth_ = 0;
    std::string segment_;
    int loopSerial_ = 0; ///< per-thread counter for loop instance ids
    /// callstackSym() cache; invalidated on frame push/pop and when
    /// the simulation swaps tracers (and thereby symbol pools)
    trace::SymId callstackSym_ = trace::kNoSym;
};

/**
 * RAII callstack frame.  Opening a frame with a handler ScopeKind
 * enters the traced scope and starts a new Pnreg segment.
 */
class Frame
{
  public:
    /**
     * @param ctx owning thread context
     * @param name frame name for callstacks
     * @param kind handler kind (Regular for plain calls)
     * @param segment handler-instance key for Pnreg (ignored when
     *        kind == Regular)
     */
    Frame(ThreadContext &ctx, std::string name,
          ScopeKind kind = ScopeKind::Regular, std::string segment = "");
    ~Frame();

    Frame(const Frame &) = delete;
    Frame &operator=(const Frame &) = delete;

  private:
    ThreadContext &ctx_;
    ScopeKind kind_;
    std::string savedSegment_;
};

} // namespace dcatch::sim

#endif // DCATCH_RUNTIME_CONTEXT_HH
