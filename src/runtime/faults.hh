/**
 * @file
 * Fault injection helpers.
 *
 * Distributed systems must tolerate component failures (the paper's
 * "more subtle fault tolerance" challenge); several benchmark
 * workloads — expire-server in HB-4729 foremost — revolve around
 * node death.  These helpers schedule crashes declaratively so tests
 * and workloads can exercise fault-tolerance paths.
 */

#ifndef DCATCH_RUNTIME_FAULTS_HH
#define DCATCH_RUNTIME_FAULTS_HH

#include <string>

#include "runtime/sim.hh"

namespace dcatch::sim {

/** Site id stamped on injected crashes; failure-signature logic (the
 *  schedule explorer foremost) uses the prefix to tell injected
 *  faults apart from organic failures. */
inline constexpr const char *kInjectedCrashSite = "fault.inject/crash";

/**
 * Crash @p node_name at the first scheduling point at or after
 * scheduler step @p at_step.  The injection is keyed off the global
 * step count, so the crash point is the same under *any* scheduling
 * policy — FIFO, seeded-random, or the explorer's adversarial
 * PCT/delay-bounded policies — and replays exactly from a recorded
 * schedule.  (The historical variant counted the injector thread's
 * own pauses, which drifted with how often each policy admitted the
 * injector.)
 *
 * The crash is recorded as an Abort failure at @p site
 * (kInjectedCrashSite by default), every thread of the node unwinds
 * at its next operation, in-flight RPCs to the node fail with
 * "__error" = "node_crashed", and queued messages to it are dropped.
 */
inline void
injectCrash(Simulation &sim, const std::string &node_name,
            std::uint64_t at_step, const char *site = kInjectedCrashSite)
{
    Node &node = sim.node(node_name);
    sim.spawn(nullptr, node, node_name + ".faultInjector",
              [&sim, at_step, site](ThreadContext &ctx) {
                  ctx.blockUntil([&sim, at_step] {
                      return sim.scheduler().steps() >= at_step;
                  });
                  ctx.abortNode(site, "injected crash");
              },
              /*daemon=*/true);
}

} // namespace dcatch::sim

#endif // DCATCH_RUNTIME_FAULTS_HH
