/**
 * @file
 * Fault injection helpers.
 *
 * Distributed systems must tolerate component failures (the paper's
 * "more subtle fault tolerance" challenge); several benchmark
 * workloads — expire-server in HB-4729 foremost — revolve around
 * node death.  These helpers schedule crashes declaratively so tests
 * and workloads can exercise fault-tolerance paths.
 */

#ifndef DCATCH_RUNTIME_FAULTS_HH
#define DCATCH_RUNTIME_FAULTS_HH

#include <string>

#include "runtime/sim.hh"

namespace dcatch::sim {

/**
 * Crash @p node_name after the injector thread has yielded
 * @p after_pauses times (a deterministic point under the FIFO
 * policy).  The crash is recorded as an Abort failure at
 * @p site ("fault.inject/crash" by default), every thread of the
 * node unwinds at its next operation, in-flight RPCs to the node
 * fail with "__error" = "node_crashed", and queued messages to it
 * are dropped.
 */
inline void
injectCrash(Simulation &sim, const std::string &node_name,
            int after_pauses, const char *site = "fault.inject/crash")
{
    Node &node = sim.node(node_name);
    sim.spawn(nullptr, node, node_name + ".faultInjector",
              [after_pauses, site](ThreadContext &ctx) {
                  ctx.pause(after_pauses);
                  ctx.abortNode(site, "injected crash");
              },
              /*daemon=*/true);
}

} // namespace dcatch::sim

#endif // DCATCH_RUNTIME_FAULTS_HH
