/**
 * @file
 * Traced shared memory.
 *
 * SharedVar<T> and SharedMap<K,V> stand in for the heap objects and
 * static variables that DCatch instruments in the Java targets.  Every
 * access produces (subject to the tracer's scoping policy) a MemRead /
 * MemWrite record carrying the variable id, the static site id, the
 * callstack, and a value version — the version stream is what the
 * pull-based synchronization analysis consumes to find which write
 * fed the final read of a synchronization loop.
 *
 * Map accesses have two granularities, mirroring how DCatch treats
 * Java collections: element operations touch "map:<name>#<key>", and
 * structural operations (put/erase) additionally write the map-level
 * id "map:<name>", which size()/empty() read — so HBase-style races
 * between add(region) and isEmpty() are visible.
 */

#ifndef DCATCH_RUNTIME_SHARED_HH
#define DCATCH_RUNTIME_SHARED_HH

#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "runtime/node.hh"
#include "runtime/sim.hh"

namespace dcatch::sim {

namespace detail {

/** Convert a map key to its trace-id fragment. */
template <typename K>
std::string
keyString(const K &key)
{
    std::ostringstream out;
    out << key;
    return out.str();
}

} // namespace detail

/** A single traced shared variable. */
template <typename T>
class SharedVar
{
  public:
    /** @param node owning node (scopes the variable id) */
    SharedVar(Node &node, const std::string &name, T init = {})
        : varId_("var:" + node.name() + "/" + name),
          value_(std::move(init))
    {
    }

    /** Trace-level variable id. */
    const std::string &varId() const { return varId_; }

    /** Traced read at @p site. */
    T
    read(ThreadContext &ctx, const char *site)
    {
        ctx.sim().traceAccess(ctx, false, varId_, site, version_);
        T value = value_;
        ctx.sim().accessYield(ctx);
        return value;
    }

    /** Traced write at @p site. */
    void
    write(ThreadContext &ctx, const char *site, T value)
    {
        ++version_;
        ctx.sim().traceAccess(ctx, true, varId_, site, version_);
        value_ = std::move(value);
        ctx.sim().accessYield(ctx);
    }

    /** Untraced peek (setup/assertion code only — not a program op). */
    const T &peek() const { return value_; }

  private:
    std::string varId_;
    T value_;
    std::int64_t version_ = 0;
};

/** A traced associative container. */
template <typename K, typename V>
class SharedMap
{
  public:
    SharedMap(Node &node, const std::string &name)
        : baseId_("map:" + node.name() + "/" + name)
    {
    }

    /** Map-level trace id (read by size()/empty()). */
    const std::string &mapId() const { return baseId_; }

    /** Element-level trace id for @p key. */
    std::string
    keyId(const K &key) const
    {
        return baseId_ + "#" + detail::keyString(key);
    }

    /** Traced element read; nullopt when the key is absent. */
    std::optional<V>
    get(ThreadContext &ctx, const char *site, const K &key)
    {
        ctx.sim().traceAccess(ctx, false, keyId(key), site,
                              keyVersions_[key]);
        auto it = entries_.find(key);
        std::optional<V> out;
        if (it != entries_.end())
            out = it->second;
        ctx.sim().accessYield(ctx);
        return out;
    }

    /** Traced element presence test. */
    bool
    contains(ThreadContext &ctx, const char *site, const K &key)
    {
        ctx.sim().traceAccess(ctx, false, keyId(key), site,
                              keyVersions_[key]);
        bool present = entries_.count(key) > 0;
        ctx.sim().accessYield(ctx);
        return present;
    }

    /** Traced insert/overwrite (element write + structural write). */
    void
    put(ThreadContext &ctx, const char *site, const K &key, V value)
    {
        // The element write carries the semantic mutation; the
        // structural (map-level) write follows as its own step.
        ctx.sim().traceAccess(ctx, true, keyId(key), site,
                              ++keyVersions_[key]);
        entries_[key] = std::move(value);
        ctx.sim().accessYield(ctx);
        ctx.sim().memAccess(ctx, true, baseId_, site, ++mapVersion_);
    }

    /** Traced erase. @return true if the key existed. */
    bool
    erase(ThreadContext &ctx, const char *site, const K &key)
    {
        ctx.sim().traceAccess(ctx, true, keyId(key), site,
                              ++keyVersions_[key]);
        bool existed = entries_.erase(key) > 0;
        ctx.sim().accessYield(ctx);
        ctx.sim().memAccess(ctx, true, baseId_, site, ++mapVersion_);
        return existed;
    }

    /** Traced size (structural read). */
    std::size_t
    size(ThreadContext &ctx, const char *site)
    {
        ctx.sim().traceAccess(ctx, false, baseId_, site, mapVersion_);
        std::size_t n = entries_.size();
        ctx.sim().accessYield(ctx);
        return n;
    }

    /** Traced emptiness test (structural read). */
    bool
    empty(ThreadContext &ctx, const char *site)
    {
        ctx.sim().traceAccess(ctx, false, baseId_, site, mapVersion_);
        bool is_empty = entries_.empty();
        ctx.sim().accessYield(ctx);
        return is_empty;
    }

    /** Untraced peek (setup/assertion code only). */
    const std::map<K, V> &peek() const { return entries_; }

  private:
    std::string baseId_;
    std::map<K, V> entries_;
    std::map<K, std::int64_t> keyVersions_; ///< survives erase
    std::int64_t mapVersion_ = 0;
};

} // namespace dcatch::sim

#endif // DCATCH_RUNTIME_SHARED_HH
