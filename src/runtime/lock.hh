/**
 * @file
 * Traced locks.
 *
 * Locks are not part of the DCatch HB model (mutual exclusion is not
 * ordering — paper section 2.3), but lock/unlock operations are traced
 * so that the trigger module can identify critical sections and place
 * its request points outside them (paper sections 3.1.1 and 5.2).
 */

#ifndef DCATCH_RUNTIME_LOCK_HH
#define DCATCH_RUNTIME_LOCK_HH

#include <string>

#include "runtime/node.hh"
#include "runtime/sim.hh"

namespace dcatch::sim {

/** A mutual-exclusion lock scoped to one node. */
class SimLock
{
  public:
    SimLock(Node &node, const std::string &name)
        : lockId_("lock:" + node.name() + "/" + name)
    {
    }

    /** Trace-level lock id. */
    const std::string &lockId() const { return lockId_; }

    /**
     * Acquire the lock, blocking while another thread holds it.  The
     * control hook fires *before* acquisition so the trigger module
     * can hold a thread outside the critical section.
     */
    void
    acquire(ThreadContext &ctx, const char *site)
    {
        // Control point before blocking (see file comment).
        trace::SymbolPool &pool =
            ctx.sim().tracer().store().symbols();
        trace::Record pre;
        pre.type = trace::RecordType::LockAcquire;
        pre.node = ctx.node().index();
        pre.thread = ctx.tid();
        pre.site = pool.intern(site);
        pre.callstack = ctx.callstackSym();
        pre.id = pool.intern(lockId_);
        ctx.sim().controlPoint(ctx, pre);

        ctx.blockUntil([this] { return !held_; });
        held_ = true;
        owner_ = ctx.tid();
        ctx.sim().lockTrace(ctx, trace::RecordType::LockAcquire, lockId_,
                            site);
    }

    /** Release the lock (caller must be the owner). */
    void
    release(ThreadContext &ctx, const char *site)
    {
        held_ = false;
        owner_ = -1;
        ctx.sim().lockTrace(ctx, trace::RecordType::LockRelease, lockId_,
                            site);
    }

    /** True while some thread holds the lock. */
    bool held() const { return held_; }

  private:
    std::string lockId_;
    bool held_ = false;
    int owner_ = -1;
};

/** RAII critical section. */
class Locked
{
  public:
    Locked(SimLock &lock, ThreadContext &ctx, const char *site)
        : lock_(lock), ctx_(ctx), site_(site)
    {
        lock_.acquire(ctx_, site_);
    }

    ~Locked() { lock_.release(ctx_, site_); }

    Locked(const Locked &) = delete;
    Locked &operator=(const Locked &) = delete;

  private:
    SimLock &lock_;
    ThreadContext &ctx_;
    const char *site_;
};

} // namespace dcatch::sim

#endif // DCATCH_RUNTIME_LOCK_HH
