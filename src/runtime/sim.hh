/**
 * @file
 * The Simulation: owns the scheduler, the tracer, all nodes, the
 * coordination service, and the failure log.  This is the root object
 * an application builds its topology on and the only object the
 * DCatch pipeline needs to run a workload.
 */

#ifndef DCATCH_RUNTIME_SIM_HH
#define DCATCH_RUNTIME_SIM_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/context.hh"
#include "runtime/coord.hh"
#include "runtime/hooks.hh"
#include "runtime/node.hh"
#include "runtime/scheduler.hh"
#include "runtime/types.hh"
#include "trace/trace_store.hh"

namespace dcatch::sim {

/** Handle to a spawned thread, usable for joining (Rule-Tjoin). */
struct ThreadHandle
{
    int tid = -1;
    std::string threadObjId; ///< "thr:<tid>", the fork/join pairing id
};

/** The root simulation object. */
class Simulation
{
  public:
    explicit Simulation(SimConfig config = {});
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    const SimConfig &config() const { return config_; }

    /** Replace the tracer configuration (before run()). */
    void setTracerConfig(trace::TracerConfig config);

    trace::Tracer &tracer() { return *tracer_; }
    const trace::Tracer &tracer() const { return *tracer_; }

    /** Install the trigger-module control hook (may be nullptr). */
    void setControlHook(ControlHook *hook) { hook_ = hook; }

    /**
     * Replace the scheduler policy (before run()).  The record/replay
     * subsystem injects its recording decorator / replay policy here;
     * the policy constructed from the SimConfig is discarded.
     */
    void setSchedulerPolicy(std::unique_ptr<SchedulerPolicy> policy);

    /** Name a simulated thread was spawned with ("" if out of range). */
    std::string threadName(int tid) const;

    /**
     * "t<tid>(<name>:<frames>)" — thread identity plus its current
     * callstack.  Only meaningful while no simulated thread is running
     * (scheduler quiescent), which is when replay divergence is
     * diagnosed.
     */
    std::string threadLabel(int tid) const;

    /** Create a node (setup phase only). */
    Node &addNode(const std::string &name);

    /** Look up a node by name (must exist). */
    Node &node(const std::string &name);

    /** Look up a node by index. */
    Node &nodeAt(int index) { return *nodes_.at(index); }

    /** Number of nodes. */
    int nodeCount() const { return static_cast<int>(nodes_.size()); }

    /** The shared coordination (ZooKeeper-like) service. */
    CoordService &coord() { return *coord_; }

    /**
     * Spawn a simulated thread.
     * @param parent spawning context, or nullptr during setup; when
     *        non-null, Create(t) is traced in the parent (Rule-Tfork)
     * @param daemon daemon threads do not count toward completion
     * @param site static site id of the spawn call
     */
    ThreadHandle spawn(ThreadContext *parent, Node &node,
                       const std::string &name,
                       std::function<void(ThreadContext &)> body,
                       bool daemon = false, const char *site = "");

    /** Join a previously spawned thread (Rule-Tjoin). */
    void joinThread(ThreadContext &self, const ThreadHandle &handle,
                    const char *site = "");

    /**
     * Run the simulation: starts node service threads and the
     * coordination service, then schedules until completion, deadlock,
     * or step budget exhaustion.  May be called exactly once.
     */
    RunResult run();

    /** Failures recorded so far (also available via RunResult). */
    const std::vector<FailureEvent> &failures() const { return failures_; }

    // ------------------------------------------------------------------
    // Internal services used by the substrate primitives.
    // ------------------------------------------------------------------

    /** Globally unique tag "<prefix>-<n>" (RPC/message pairing ids). */
    std::string freshTag(const char *prefix);

    /**
     * Control hook + trace record for a shared-memory access.  The
     * caller applies the actual mutation (or reads the value) right
     * after this returns and then calls accessYield(): record and
     * effect are thereby atomic with respect to scheduling, which the
     * trigger module relies on when it orders two accesses.
     * @param version value version involved (new version for writes,
     *        observed version for reads) — consumed by the pull-based
     *        synchronization analysis
     */
    void traceAccess(ThreadContext &ctx, bool is_write,
                     const std::string &var_id, const char *site,
                     std::int64_t version);

    /** Yield point following a shared-memory access. */
    void accessYield(ThreadContext &ctx);

    /** traceAccess + accessYield in one call (no effect in between);
     *  used for accesses whose effect is managed by the caller in the
     *  same step, e.g. coordination-service state. */
    void memAccess(ThreadContext &ctx, bool is_write,
                   const std::string &var_id, const char *site,
                   std::int64_t version);

    /** Trace + hook + yield for an HB-related operation. */
    void opTrace(ThreadContext &ctx, trace::RecordType type,
                 const std::string &id, const char *site,
                 std::int64_t aux = 0);

    /**
     * Control hook + trace record for an HB-related operation, with
     * no yield: the caller applies the operation's effect (enqueue,
     * message push, ...) and then calls accessYield(), so that — as
     * for memory accesses — the effect is atomic with the record
     * under the serialized scheduler.
     */
    void opRecord(ThreadContext &ctx, trace::RecordType type,
                  const std::string &id, const char *site,
                  std::int64_t aux = 0);

    /** Trace a lock operation (no hook, no yield). */
    void lockTrace(ThreadContext &ctx, trace::RecordType type,
                   const std::string &id, const char *site);

    /** Invoke the control hook only (no tracing) — used where the
     *  hook must fire before a blocking acquisition. */
    void controlPoint(ThreadContext &ctx, const trace::Record &rec);

    /** Record a failure event. */
    void reportFailure(ThreadContext &ctx, FailureKind kind,
                       const char *site, const std::string &detail);

    /** Scheduler access for context primitives. */
    Scheduler &scheduler() { return *scheduler_; }

    /** Check crash state and unwind the thread if its node died. */
    void checkCrashed(ThreadContext &ctx);

    /** Unwind signal: the thread's node has crashed. */
    struct NodeCrashedSignal {};

    /** Unwind signal: uncaught exception kills the current thread. */
    struct UncaughtSignal {};

    /** True once run() has been called. */
    bool started() const { return started_; }

    /** Thread-finished flag, used by join predicates. */
    bool threadFinished(int tid) const { return finished_.at(tid); }

  private:
    friend class ThreadContext;

    SimConfig config_;
    std::unique_ptr<trace::Tracer> tracer_;
    std::unique_ptr<Scheduler> scheduler_;
    std::unique_ptr<CoordService> coord_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::unique_ptr<ThreadContext>> contexts_;
    std::vector<bool> finished_;
    std::vector<FailureEvent> failures_;
    ControlHook *hook_ = nullptr;
    std::uint64_t nextTag_ = 0;
    bool started_ = false;
};

} // namespace dcatch::sim

#endif // DCATCH_RUNTIME_SIM_HH
