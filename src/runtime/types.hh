/**
 * @file
 * Core value types shared across the simulation substrate: payloads,
 * failure descriptions, run results, and simulation configuration.
 */

#ifndef DCATCH_RUNTIME_TYPES_HH
#define DCATCH_RUNTIME_TYPES_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dcatch::sim {

class Simulation;
class Node;
class ThreadContext;
class EventQueue;

/**
 * Key/value payload carried by RPC calls, socket messages, and events.
 * Values are strings; integer helpers cover the common cases.
 */
class Payload
{
  public:
    Payload() = default;

    /** Set a string field (returns *this for chaining). */
    Payload &
    set(const std::string &key, std::string value)
    {
        kv_[key] = std::move(value);
        return *this;
    }

    /** Set an integer field. */
    Payload &
    setInt(const std::string &key, std::int64_t value)
    {
        kv_[key] = std::to_string(value);
        return *this;
    }

    /** Get a string field, or @p def when absent. */
    std::string
    get(const std::string &key, const std::string &def = "") const
    {
        auto it = kv_.find(key);
        return it == kv_.end() ? def : it->second;
    }

    /** Get an integer field, or @p def when absent or unparsable. */
    std::int64_t
    getInt(const std::string &key, std::int64_t def = 0) const
    {
        auto it = kv_.find(key);
        if (it == kv_.end())
            return def;
        try {
            return std::stoll(it->second);
        } catch (...) {
            return def;
        }
    }

    /** Field presence test. */
    bool has(const std::string &key) const { return kv_.count(key) > 0; }

    /** Underlying map (for diagnostics). */
    const std::map<std::string, std::string> &fields() const { return kv_; }

  private:
    std::map<std::string, std::string> kv_;
};

/** Failure classes recognised by DCatch (paper section 4.1). */
enum class FailureKind {
    Abort,             ///< System.exit / abort: whole node dies
    FatalLog,          ///< Log::fatal / Log::error severe message
    UncaughtException, ///< RuntimeException killing one thread
    LoopHang,          ///< retry loop that never makes progress
};

/** Name of a failure kind. */
const char *failureKindName(FailureKind kind);

/** One observed failure during a run. */
struct FailureEvent
{
    FailureKind kind = FailureKind::FatalLog;
    std::string site;   ///< failure-instruction site id
    int node = -1;      ///< node on which the failure fired
    std::string detail; ///< free-form diagnostic
    std::uint64_t step = 0; ///< scheduler step at which it fired
};

/** Terminal status of a simulation run. */
enum class RunStatus {
    Completed, ///< all non-daemon threads finished
    Deadlock,  ///< no runnable thread before completion
    StepLimit, ///< exceeded the step budget (livelock guard)
};

/** Name of a run status. */
const char *runStatusName(RunStatus status);

/** Outcome of one simulation run. */
struct RunResult
{
    RunStatus status = RunStatus::Completed;
    std::vector<FailureEvent> failures;
    std::uint64_t steps = 0;

    /** True when the run deviated from fully correct behaviour. */
    bool
    failed() const
    {
        return status != RunStatus::Completed || !failures.empty();
    }

    /** True if some failure of @p kind occurred. */
    bool hasFailure(FailureKind kind) const;

    /** One-line human-readable summary. */
    std::string summary() const;
};

/** Scheduling policy selector. */
enum class PolicyKind {
    Fifo,   ///< deterministic round-robin (default correct runs)
    Random, ///< seeded random exploration
};

/** Simulation configuration. */
struct SimConfig
{
    PolicyKind policy = PolicyKind::Fifo;
    std::uint64_t seed = 1;
    std::uint64_t maxSteps = 2'000'000;
    int rpcWorkersPerNode = 2;
    /** Iteration bound after which an instrumented retry loop is
     *  declared hung (LoopHang failure). */
    int loopHangBound = 60;
};

} // namespace dcatch::sim

#endif // DCATCH_RUNTIME_TYPES_HH
