/**
 * @file
 * Control-hook interface between the substrate and the trigger module.
 *
 * The trigger module (paper section 5) needs to intercept execution at
 * traced operations and to act when the system quiesces.  The runtime
 * knows nothing about triggering; it only calls into this interface.
 */

#ifndef DCATCH_RUNTIME_HOOKS_HH
#define DCATCH_RUNTIME_HOOKS_HH

namespace dcatch::trace { struct Record; }

namespace dcatch::sim {

class Simulation;
class ThreadContext;

/** Observer/controller invoked at every traced operation. */
class ControlHook
{
  public:
    virtual ~ControlHook() = default;

    /**
     * Called before a traced operation executes.  @p rec is fully
     * populated except for the sequence number.  The hook may block
     * the calling thread via ctx.blockUntil() — this is how the
     * trigger controller holds execution at a request point.
     */
    virtual void beforeOperation(ThreadContext &ctx,
                                 const trace::Record &rec)
    {
        (void)ctx;
        (void)rec;
    }

    /**
     * Called when no simulated thread is runnable, before the
     * scheduler declares deadlock.
     * @return true if the hook changed state such that some blocked
     *         predicate may now hold (e.g. it released a held request)
     */
    virtual bool onQuiesce() { return false; }
};

} // namespace dcatch::sim

#endif // DCATCH_RUNTIME_HOOKS_HH
