/**
 * @file
 * A simulated node: RPC server, socket-message endpoint, event queues,
 * and regular threads (paper Figure 4b).
 */

#ifndef DCATCH_RUNTIME_NODE_HH
#define DCATCH_RUNTIME_NODE_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/event.hh"
#include "runtime/types.hh"

namespace dcatch::sim {

/** An in-flight RPC request queued at the callee node. */
struct RpcRequest
{
    std::string tag;  ///< unique tag pairing Create/Begin/End/Join
    std::string fn;   ///< RPC function name
    Payload args;
    int callerNode = -1;
};

/** An in-flight socket message queued at the receiver node. */
struct InMessage
{
    std::string tag;  ///< unique tag pairing Send/Recv
    std::string verb; ///< dispatch key
    Payload payload;
    int fromNode = -1;
};

/** One simulated node of the distributed system. */
class Node
{
  public:
    using RpcFn = std::function<Payload(ThreadContext &, const Payload &)>;
    using VerbHandler =
        std::function<void(ThreadContext &, const Payload &)>;

    Node(Simulation &sim, int index, std::string name);

    Simulation &sim() { return sim_; }
    int index() const { return index_; }
    const std::string &name() const { return name_; }

    /** True once the node has aborted (all its threads stop). */
    bool crashed() const { return crashed_; }

    /** Mark the node as crashed. */
    void markCrashed() { crashed_ = true; }

    // ------------------------------------------------------------------
    // RPC server side.
    // ------------------------------------------------------------------

    /** Register RPC function @p name. */
    void registerRpc(const std::string &name, RpcFn fn);

    /** True when @p name is a registered RPC function. */
    bool hasRpc(const std::string &name) const;

    // ------------------------------------------------------------------
    // Socket-message (verb) handling.
    // ------------------------------------------------------------------

    /** Register the handler for messages with @p verb. */
    void registerVerb(const std::string &verb, VerbHandler handler);

    // ------------------------------------------------------------------
    // Event queues.
    // ------------------------------------------------------------------

    /** Create an event queue owned by this node. */
    EventQueue &addEventQueue(const std::string &name, int consumers = 1);

    /** Look up a previously created queue (must exist). */
    EventQueue &queue(const std::string &name);

    // ------------------------------------------------------------------
    // Service threads.
    // ------------------------------------------------------------------

    /**
     * Spawn RPC workers, the message dispatcher, and event-queue
     * consumers.  Invoked by Simulation::start() before the run.
     */
    void start();

    /// @{ @name Internal state shared with Simulation (RPC/socket
    ///     plumbing; mutated only while holding the execution token).
    std::deque<RpcRequest> rpcQueue;
    std::map<std::string, Payload> rpcReplies;
    std::deque<InMessage> msgQueue;
    /// @}

  private:
    void rpcWorkerLoop(ThreadContext &ctx);
    void msgDispatchLoop(ThreadContext &ctx);

    Simulation &sim_;
    int index_;
    std::string name_;
    bool crashed_ = false;
    bool started_ = false;
    std::map<std::string, RpcFn> rpcFns_;
    std::map<std::string, VerbHandler> verbs_;
    std::vector<std::unique_ptr<EventQueue>> queues_;
};

} // namespace dcatch::sim

#endif // DCATCH_RUNTIME_NODE_HH
