/**
 * @file
 * Serialized token-passing scheduler.
 *
 * Every simulated thread is a real std::thread, but exactly one holds
 * the execution token at any moment (CHESS-style serialization).  All
 * simulation state is therefore free of data races and every run is a
 * deterministic function of (policy, seed, workload).  Yield points
 * sit at every traced operation, which is also where the trigger
 * module intercepts execution.
 */

#ifndef DCATCH_RUNTIME_SCHEDULER_HH
#define DCATCH_RUNTIME_SCHEDULER_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "runtime/types.hh"

namespace dcatch::sim {

/** Lifecycle state of a simulated thread. */
enum class ThreadState {
    Starting, ///< std::thread exists, has not been admitted yet
    Runnable, ///< waiting for the token
    Running,  ///< holds the token
    Blocked,  ///< waiting for a predicate to become true
    Finished, ///< body returned (or thread was killed)
};

/**
 * Pluggable choice of which runnable thread to admit next.
 *
 * Purity contract: every concrete base policy (FIFO, random, PCT,
 * delay-bounded) is a *pure function* of (constructor parameters,
 * runnable, step) — no mutable state, no dependence on call history.
 * The scheduler calls pick() exactly once per step with consecutive
 * 1-based step numbers, but a pure policy answers the same for any
 * query order, which is what lets the schedule-space shrinker replay
 * a decision prefix and re-derive the continuation from the policy
 * alone (docs/exploration.md).  Decorators that are inherently
 * stateful (RecordingPolicy, ReplayPolicy, PrefixReplayPolicy) are
 * exempt: they wrap base policies rather than make choices.
 */
class SchedulerPolicy
{
  public:
    virtual ~SchedulerPolicy() = default;

    /**
     * Pick the next thread to run.
     * @param runnable non-empty list of runnable thread ids,
     *        strictly ascending
     * @param step current scheduler step (1-based; the scheduler
     *        increments before picking)
     * @return an element of @p runnable
     */
    virtual int pick(const std::vector<int> &runnable,
                     std::uint64_t step) = 0;
};

/** Deterministic round-robin policy: runnable[(step - 1) % size]. */
class FifoPolicy : public SchedulerPolicy
{
  public:
    int pick(const std::vector<int> &runnable, std::uint64_t step) override;
};

/** Seeded uniform-random policy. */
class RandomPolicy : public SchedulerPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed) : seed_(seed) {}

    int pick(const std::vector<int> &runnable, std::uint64_t step) override;

  private:
    std::uint64_t seed_;
};

/**
 * PCT-style random-priority policy (probabilistic concurrency
 * testing): every thread gets a random base priority drawn from
 * (seed, tid), the highest-priority runnable thread runs, and at
 * @p depth hash-chosen priority-change steps within @p horizon all
 * priorities are re-drawn — a reshuffle variant of PCT's demotion
 * points, chosen because it keeps pick() a pure function of
 * (seed, runnable, step), which prefix-replay shrinking relies on.
 */
class PctPolicy : public SchedulerPolicy
{
  public:
    /**
     * @param seed randomness source for priorities and change points
     * @param depth number of priority-change points (PCT's d); 0
     *        degenerates to a fixed random priority order
     * @param horizon step range [1, horizon] the change points are
     *        spread over (use the expected run length)
     */
    PctPolicy(std::uint64_t seed, int depth, std::uint64_t horizon);

    int pick(const std::vector<int> &runnable, std::uint64_t step) override;

  private:
    /** Number of change points at or before @p step. */
    std::uint64_t epoch(std::uint64_t step) const;

    std::uint64_t seed_;
    std::vector<std::uint64_t> changeSteps_; ///< ascending, size depth
};

/**
 * Delay-bounded round-robin: FIFO order perturbed by at most
 * @p budget scheduling delays, each at a hash-chosen step within
 * @p horizon; a delay skips the thread FIFO would have run (shifts
 * the round-robin cursor by one from that step on).  Pure function
 * of (seed, runnable, step).
 */
class DelayBoundedPolicy : public SchedulerPolicy
{
  public:
    DelayBoundedPolicy(std::uint64_t seed, int budget,
                       std::uint64_t horizon);

    int pick(const std::vector<int> &runnable, std::uint64_t step) override;

  private:
    std::vector<std::uint64_t> delaySteps_; ///< ascending, size budget
};

/** Create a policy instance from a SimConfig. */
std::unique_ptr<SchedulerPolicy> makePolicy(const SimConfig &config);

/**
 * The token-passing scheduler.  The host thread runs the scheduling
 * loop; simulated threads call yield()/blockUntil()/finish() from
 * within their bodies.
 */
class Scheduler
{
  public:
    explicit Scheduler(std::unique_ptr<SchedulerPolicy> policy);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Replace the scheduling policy.  Only legal before the first
     * scheduling step — the record/replay subsystem uses this to wrap
     * the configured policy in a recording decorator or to substitute
     * a log-driven replay policy.
     */
    void setPolicy(std::unique_ptr<SchedulerPolicy> policy);

    /**
     * Register a simulated thread and start its backing std::thread.
     * The body does not begin executing until the scheduler admits it.
     * @param daemon daemon threads (service workers) do not count
     *        toward run completion
     * @return the new thread's id
     */
    int addThread(std::function<void()> body, bool daemon);

    /** Give up the token and wait to be re-admitted. */
    void yield(int tid);

    /**
     * Block until @p pred evaluates true.  The predicate is evaluated
     * by the scheduler loop while no simulated thread is running, so
     * it may read any simulation state without synchronization.
     */
    void blockUntil(int tid, std::function<bool()> pred);

    /**
     * Run until completion (all non-daemon threads finished), deadlock,
     * or the step budget is exhausted.  Also invokes @p on_quiesce when
     * no thread is runnable before declaring deadlock; if it returns
     * true, blocked predicates are re-evaluated and the run continues.
     */
    RunStatus run(std::uint64_t max_steps,
                  std::function<bool()> on_quiesce = {});

    /** Number of scheduling steps taken so far. */
    std::uint64_t steps() const { return steps_; }

    /** State of a thread (host-side inspection). */
    ThreadState threadState(int tid) const;

    /** True when every blocked/runnable/running count is zero except
     *  finished threads — used in tests. */
    bool allFinished() const;

  private:
    struct ThreadSlot
    {
        std::thread worker;
        ThreadState state = ThreadState::Starting;
        bool daemon = false;
        std::function<bool()> blockedOn; ///< predicate while Blocked
        std::function<void()> body;
    };

    /** Thread-body trampoline: waits for first admission, runs body. */
    void threadMain(int tid);

    /** Called with the lock held: move unblocked threads to Runnable. */
    void wakeUnblockedLocked();

    /** Collect runnable thread ids with the lock held. */
    std::vector<int> runnableLocked() const;

    /** True when all non-daemon threads have finished. */
    bool completedLocked() const;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::unique_ptr<ThreadSlot>> threads_;
    std::unique_ptr<SchedulerPolicy> policy_;
    int current_ = -1;       ///< tid holding the token, -1 = host
    bool shuttingDown_ = false;
    std::uint64_t steps_ = 0;
};

} // namespace dcatch::sim

#endif // DCATCH_RUNTIME_SCHEDULER_HH
