/**
 * @file
 * Asynchronous event queues (paper section 2.2).
 *
 * Events are enqueued by any thread and processed by pre-defined
 * handlers in dedicated handler thread(s).  All queues are FIFO with
 * one dispatching point; a queue with exactly one handling thread is
 * a "single-consumer queue", whose handlers are serialized
 * (Rule-Eserial); multi-consumer queues run handlers concurrently.
 */

#ifndef DCATCH_RUNTIME_EVENT_HH
#define DCATCH_RUNTIME_EVENT_HH

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "runtime/types.hh"

namespace dcatch::sim {

/** One queued event instance. */
struct Event
{
    std::string id;      ///< unique instance id "<queueId>#<n>"
    std::string type;    ///< handler dispatch key
    Payload payload;
    std::string enqSite; ///< site of the enqueue call
};

/** A FIFO event queue with its pool of handler threads. */
class EventQueue
{
  public:
    using Handler = std::function<void(ThreadContext &, const Event &)>;

    /**
     * @param node owning node
     * @param name queue name, unique within the node
     * @param consumers number of handler threads (1 = single-consumer)
     */
    EventQueue(Node &node, std::string name, int consumers);

    /** Register the handler for events of @p type. */
    void on(const std::string &type, Handler handler);

    /**
     * Enqueue an event (traces Create(e), Rule-Eenq source).
     * @param site static site id of the enqueue call
     */
    void enqueue(ThreadContext &ctx, const char *site,
                 const std::string &type, Payload payload = {});

    /** Globally unique queue id ("<node>/<name>"). */
    const std::string &queueId() const { return queueId_; }

    /** True when exactly one handler thread serves the queue. */
    bool singleConsumer() const { return consumers_ == 1; }

    /** Number of events waiting (not yet picked up). */
    std::size_t pendingCount() const { return pending_.size(); }

    /** Spawn the handler threads; called by Node::start(). */
    void start();

  private:
    void consumerLoop(ThreadContext &ctx);

    Node &node_;
    std::string name_;
    std::string queueId_;
    int consumers_;
    int nextEventSerial_ = 0;
    std::deque<Event> pending_;
    std::map<std::string, Handler> handlers_;
    bool started_ = false;
};

} // namespace dcatch::sim

#endif // DCATCH_RUNTIME_EVENT_HH
