#include "runtime/sim.hh"

#include <cassert>

#include "common/logging.hh"
#include "common/util.hh"

namespace dcatch::sim {

const char *
failureKindName(FailureKind kind)
{
    switch (kind) {
      case FailureKind::Abort: return "Abort";
      case FailureKind::FatalLog: return "FatalLog";
      case FailureKind::UncaughtException: return "UncaughtException";
      case FailureKind::LoopHang: return "LoopHang";
    }
    return "?";
}

const char *
runStatusName(RunStatus status)
{
    switch (status) {
      case RunStatus::Completed: return "Completed";
      case RunStatus::Deadlock: return "Deadlock";
      case RunStatus::StepLimit: return "StepLimit";
    }
    return "?";
}

bool
RunResult::hasFailure(FailureKind kind) const
{
    for (const FailureEvent &f : failures)
        if (f.kind == kind)
            return true;
    return false;
}

std::string
RunResult::summary() const
{
    std::string out = strprintf("%s steps=%llu failures=%zu",
                                runStatusName(status),
                                static_cast<unsigned long long>(steps),
                                failures.size());
    for (const FailureEvent &f : failures)
        out += strprintf(" [%s@%s n%d: %s]", failureKindName(f.kind),
                         f.site.c_str(), f.node, f.detail.c_str());
    return out;
}

// ---------------------------------------------------------------------
// ThreadContext
// ---------------------------------------------------------------------

ThreadContext::ThreadContext(Simulation &sim, Node &node, int tid,
                             std::string name)
    : sim_(sim), node_(node), tid_(tid), name_(std::move(name))
{
}

std::string
ThreadContext::callstack() const
{
    if (frames_.empty())
        return name_;
    return name_ + ":" + join(frames_, ">");
}

trace::SymId
ThreadContext::callstackSym()
{
    if (callstackSym_ == trace::kNoSym)
        callstackSym_ =
            sim_.tracer().store().symbols().intern(callstack());
    return callstackSym_;
}

void
ThreadContext::yield()
{
    sim_.scheduler().yield(tid_);
    sim_.checkCrashed(*this);
}

void
ThreadContext::pause(int times)
{
    for (int i = 0; i < times; ++i)
        yield();
}

void
ThreadContext::blockUntil(std::function<bool()> pred)
{
    Node *node = &node_;
    // A predicate may become true (waking several waiters) and be
    // invalidated again by whichever waiter runs first — e.g. two RPC
    // workers woken by one request.  Re-check once we actually hold
    // the execution token and re-block if the condition was consumed.
    while (true) {
        sim_.scheduler().blockUntil(tid_, [node, pred] {
            return node->crashed() || pred();
        });
        sim_.checkCrashed(*this);
        if (pred())
            return;
    }
}

Payload
ThreadContext::rpcCall(const char *site, const std::string &target_node,
                       const std::string &function, Payload args)
{
    Node &target = sim_.node(target_node);
    std::string tag = sim_.freshTag("rpc");
    sim_.opRecord(*this, trace::RecordType::RpcCreate, tag, site);
    if (!target.crashed())
        target.rpcQueue.push_back({tag, function, std::move(args),
                                   node_.index()});
    sim_.accessYield(*this);
    if (target.crashed() && !target.rpcReplies.count(tag))
        return Payload{}.set("__error", "node_crashed");
    Node *tp = &target;
    blockUntil([tp, tag] {
        return tp->crashed() || tp->rpcReplies.count(tag) > 0;
    });
    auto it = tp->rpcReplies.find(tag);
    if (it == tp->rpcReplies.end())
        return Payload{}.set("__error", "node_crashed");
    Payload reply = it->second;
    tp->rpcReplies.erase(it);
    sim_.opTrace(*this, trace::RecordType::RpcJoin, tag, site);
    return reply;
}

void
ThreadContext::send(const char *site, const std::string &target_node,
                    const std::string &verb, Payload message)
{
    Node &target = sim_.node(target_node);
    std::string tag = sim_.freshTag("msg");
    sim_.opRecord(*this, trace::RecordType::MsgSend, tag, site);
    if (!target.crashed())
        target.msgQueue.push_back({tag, verb, std::move(message),
                                   node_.index()});
    sim_.accessYield(*this);
}

void
ThreadContext::abortNode(const char *site, const std::string &msg)
{
    sim_.reportFailure(*this, FailureKind::Abort, site, msg);
    node_.markCrashed();
    throw Simulation::NodeCrashedSignal{};
}

void
ThreadContext::fatalLog(const char *site, const std::string &msg)
{
    sim_.reportFailure(*this, FailureKind::FatalLog, site, msg);
}

void
ThreadContext::throwUncaught(const char *site, const std::string &msg)
{
    sim_.reportFailure(*this, FailureKind::UncaughtException, site, msg);
    throw Simulation::UncaughtSignal{};
}

bool
ThreadContext::retryUntil(const char *site, std::function<bool()> attempt)
{
    std::string loop_id =
        strprintf("loop:%s/%d", name_.c_str(), loopSerial_++);
    int bound = sim_.config().loopHangBound;
    for (int i = 0;; ++i) {
        sim_.opTrace(*this, trace::RecordType::LoopIter, loop_id, site, i);
        if (attempt()) {
            sim_.opTrace(*this, trace::RecordType::LoopExit, loop_id, site,
                         i);
            return true;
        }
        if (i >= bound) {
            sim_.reportFailure(*this, FailureKind::LoopHang, site,
                               "retry loop exceeded hang bound");
            return false;
        }
        yield();
    }
}

// ---------------------------------------------------------------------
// Frame
// ---------------------------------------------------------------------

Frame::Frame(ThreadContext &ctx, std::string name, ScopeKind kind,
             std::string segment)
    : ctx_(ctx), kind_(kind), savedSegment_(ctx.segment_)
{
    ctx_.frames_.push_back(std::move(name));
    ctx_.callstackSym_ = trace::kNoSym;
    if (kind_ != ScopeKind::Regular) {
        ++ctx_.tracedDepth_;
        ctx_.segment_ = std::move(segment);
    }
}

Frame::~Frame()
{
    ctx_.frames_.pop_back();
    ctx_.callstackSym_ = trace::kNoSym;
    if (kind_ != ScopeKind::Regular) {
        --ctx_.tracedDepth_;
        ctx_.segment_ = savedSegment_;
    }
}

// ---------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------

Simulation::Simulation(SimConfig config)
    : config_(config),
      tracer_(std::make_unique<trace::Tracer>()),
      scheduler_(std::make_unique<Scheduler>(makePolicy(config))),
      coord_(std::make_unique<CoordService>(*this))
{
}

Simulation::~Simulation()
{
    // Tear down the scheduler first: it joins (and unwinds) every
    // simulated thread, and those threads' stacks reference contexts_
    // and nodes_ during unwinding (Frame destructors etc.).
    scheduler_.reset();
}

void
Simulation::setSchedulerPolicy(std::unique_ptr<SchedulerPolicy> policy)
{
    assert(!started_ && "scheduler policy must be set before run()");
    scheduler_->setPolicy(std::move(policy));
}

std::string
Simulation::threadName(int tid) const
{
    if (tid < 0 || static_cast<std::size_t>(tid) >= contexts_.size())
        return "";
    return contexts_[static_cast<std::size_t>(tid)]->name();
}

std::string
Simulation::threadLabel(int tid) const
{
    if (tid < 0 || static_cast<std::size_t>(tid) >= contexts_.size())
        return strprintf("t%d", tid);
    return strprintf(
        "t%d(%s)", tid,
        contexts_[static_cast<std::size_t>(tid)]->callstack().c_str());
}

void
Simulation::setTracerConfig(trace::TracerConfig config)
{
    assert(!started_ && "tracer config must be set before run()");
    tracer_ = std::make_unique<trace::Tracer>(std::move(config));
    // The new tracer owns a fresh symbol pool; cached callstack ids
    // minted against the old pool must not leak into it.
    for (auto &ctx : contexts_)
        ctx->callstackSym_ = trace::kNoSym;
}

Node &
Simulation::addNode(const std::string &name)
{
    assert(!started_ && "topology must be built before run()");
    nodes_.push_back(std::make_unique<Node>(
        *this, static_cast<int>(nodes_.size()), name));
    return *nodes_.back();
}

Node &
Simulation::node(const std::string &name)
{
    for (auto &n : nodes_)
        if (n->name() == name)
            return *n;
    throw std::out_of_range("no such node: " + name);
}

ThreadHandle
Simulation::spawn(ThreadContext *parent, Node &node,
                  const std::string &name,
                  std::function<void(ThreadContext &)> body, bool daemon,
                  const char *site)
{
    int tid = static_cast<int>(contexts_.size());
    auto ctx = std::make_unique<ThreadContext>(*this, node, tid, name);
    ThreadContext *cp = ctx.get();
    contexts_.push_back(std::move(ctx));
    finished_.push_back(false);

    std::string obj_id = strprintf("thr:%d", tid);
    if (parent)
        opTrace(*parent, trace::RecordType::ThreadCreate, obj_id, site);

    trace::ThreadMeta meta;
    meta.thread = tid;
    meta.node = node.index();
    meta.name = name;
    meta.handlerThread = daemon;
    tracer_->store().noteThread(meta);

    int got = scheduler_->addThread(
        [this, cp, obj_id, tid, body = std::move(body)] {
            try {
                opTrace(*cp, trace::RecordType::ThreadBegin, obj_id, "");
                body(*cp);
                opTrace(*cp, trace::RecordType::ThreadEnd, obj_id, "");
            } catch (const NodeCrashedSignal &) {
                // node died; thread unwinds silently
            } catch (const UncaughtSignal &) {
                // uncaught exception killed this thread only
            }
            finished_[tid] = true;
        },
        daemon);
    assert(got == tid && "scheduler and simulation tids out of sync");
    (void)got;
    return {tid, obj_id};
}

void
Simulation::joinThread(ThreadContext &self, const ThreadHandle &handle,
                       const char *site)
{
    int tid = handle.tid;
    self.blockUntil([this, tid] { return finished_[tid]; });
    opTrace(self, trace::RecordType::ThreadJoin, handle.threadObjId, site);
}

RunResult
Simulation::run()
{
    assert(!started_ && "run() may be called only once");
    started_ = true;
    for (auto &node : nodes_)
        node->start();
    coord_->start();

    auto on_quiesce = [this] { return hook_ ? hook_->onQuiesce() : false; };
    RunStatus status = scheduler_->run(config_.maxSteps, on_quiesce);

    RunResult result;
    result.status = status;
    result.failures = failures_;
    result.steps = scheduler_->steps();
    DCATCH_DEBUG() << "run finished: " << result.summary();
    return result;
}

std::string
Simulation::freshTag(const char *prefix)
{
    return strprintf("%s-%llu", prefix,
                     static_cast<unsigned long long>(nextTag_++));
}

void
Simulation::traceAccess(ThreadContext &ctx, bool is_write,
                        const std::string &var_id, const char *site,
                        std::int64_t version)
{
    checkCrashed(ctx);
    trace::SymbolPool &pool = tracer_->store().symbols();
    trace::Record rec;
    rec.type = is_write ? trace::RecordType::MemWrite
                        : trace::RecordType::MemRead;
    rec.node = ctx.node().index();
    rec.thread = ctx.tid();
    rec.site = pool.intern(site);
    rec.callstack = ctx.callstackSym();
    rec.id = pool.intern(var_id);
    rec.aux = version;
    if (hook_)
        hook_->beforeOperation(ctx, rec);
    tracer_->recordMemAccess(rec, ctx.inTracedScope());
}

void
Simulation::accessYield(ThreadContext &ctx)
{
    scheduler_->yield(ctx.tid());
    checkCrashed(ctx);
}

void
Simulation::memAccess(ThreadContext &ctx, bool is_write,
                      const std::string &var_id, const char *site,
                      std::int64_t version)
{
    traceAccess(ctx, is_write, var_id, site, version);
    accessYield(ctx);
}

void
Simulation::opRecord(ThreadContext &ctx, trace::RecordType type,
                     const std::string &id, const char *site,
                     std::int64_t aux)
{
    checkCrashed(ctx);
    trace::SymbolPool &pool = tracer_->store().symbols();
    trace::Record rec;
    rec.type = type;
    rec.node = ctx.node().index();
    rec.thread = ctx.tid();
    rec.site = pool.intern(site);
    rec.callstack = ctx.callstackSym();
    rec.id = pool.intern(id);
    rec.aux = aux;
    if (hook_)
        hook_->beforeOperation(ctx, rec);
    tracer_->recordOp(rec);
}

void
Simulation::opTrace(ThreadContext &ctx, trace::RecordType type,
                    const std::string &id, const char *site,
                    std::int64_t aux)
{
    opRecord(ctx, type, id, site, aux);
    accessYield(ctx);
}

void
Simulation::lockTrace(ThreadContext &ctx, trace::RecordType type,
                      const std::string &id, const char *site)
{
    trace::SymbolPool &pool = tracer_->store().symbols();
    trace::Record rec;
    rec.type = type;
    rec.node = ctx.node().index();
    rec.thread = ctx.tid();
    rec.site = pool.intern(site);
    rec.callstack = ctx.callstackSym();
    rec.id = pool.intern(id);
    tracer_->recordLockOp(rec);
}

void
Simulation::controlPoint(ThreadContext &ctx, const trace::Record &rec)
{
    if (hook_)
        hook_->beforeOperation(ctx, rec);
}

void
Simulation::reportFailure(ThreadContext &ctx, FailureKind kind,
                          const char *site, const std::string &detail)
{
    FailureEvent event;
    event.kind = kind;
    event.site = site;
    event.node = ctx.node().index();
    event.detail = detail;
    event.step = scheduler_->steps();
    failures_.push_back(event);
    DCATCH_DEBUG() << "failure: " << failureKindName(kind) << " at " << site
                   << " on node " << ctx.node().name() << ": " << detail;
}

void
Simulation::checkCrashed(ThreadContext &ctx)
{
    if (ctx.node().crashed())
        throw NodeCrashedSignal{};
}

} // namespace dcatch::sim
