/**
 * @file
 * Static program model — the WALA substitute.
 *
 * DCatch's static pruning (paper section 4) runs over a program
 * dependence graph that WALA computes from Java bytecode.  Our C++
 * mini systems instead *register* an explicit dependence IR whose
 * instruction identities (site ids) are shared with the dynamic trace,
 * playing the role of bytecode instruction identity.
 *
 * The IR answers exactly the queries the pruning algorithm needs:
 *  - which function contains a site; which sites a site flows to
 *    (data or control dependence, transitively, within a function);
 *  - which sites the function's return value depends on;
 *  - which call sites invoke a function (and whether the call is an
 *    RPC from another node);
 *  - which instructions are failure instructions (section 4.1), and
 *    of what kind;
 *  - which heap variables an instruction reads/writes (for one-level
 *    caller/callee heap impact);
 *  - which loop-exit instructions depend on a given site (used both
 *    as potential failure instructions and by the pull-based
 *    synchronization analysis).
 */

#ifndef DCATCH_MODEL_PROGRAM_MODEL_HH
#define DCATCH_MODEL_PROGRAM_MODEL_HH

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "runtime/types.hh"

namespace dcatch::model {

/** Instruction kinds in the model IR. */
enum class InstKind {
    Plain,    ///< ordinary instruction (incl. memory accesses)
    Call,     ///< call site (local call or RPC invocation)
    Failure,  ///< failure instruction (abort/fatal-log/throw)
    LoopExit, ///< loop-exit instruction (potential failure; Mpull sink)
};

/** One modelled instruction. */
struct Inst
{
    std::string site;          ///< unique site id, shared with traces
    InstKind kind = InstKind::Plain;
    sim::FailureKind failureKind = sim::FailureKind::FatalLog;
    std::string callee;        ///< for Call: target function name
    bool rpcCall = false;      ///< for Call: cross-node RPC invocation
    std::string heapVar;       ///< heap/global variable id touched
    bool heapWrite = false;    ///< write (vs. read) of heapVar
};

/** One modelled function. */
struct Function
{
    std::string name;
    bool isRpc = false;     ///< RPC function (distributed impact source)
    std::vector<Inst> insts;

    /** Dependence edges within the function: dst <- {srcs}.  The
     *  pseudo-source "$param" marks dependence on call parameters. */
    std::map<std::string, std::set<std::string>> deps;

    /** Sites the function's return value depends on. */
    std::set<std::string> returnDeps;
};

/** The registered model of one mini system. */
class ProgramModel
{
  public:
    /** Add a function (name must be unique). */
    void addFunction(Function fn);

    /** Function containing @p site, or nullptr. */
    const Function *functionOf(const std::string &site) const;

    /** Function by name, or nullptr. */
    const Function *function(const std::string &name) const;

    /** Instruction by site, or nullptr. */
    const Inst *inst(const std::string &site) const;

    /**
     * Transitive intra-procedural dependence: does @p dst_site depend
     * (data or control) on @p src_site within their common function?
     */
    bool dependsOn(const std::string &dst_site,
                   const std::string &src_site) const;

    /** All sites within fn that transitively depend on @p src_site
     *  (including src itself). */
    std::set<std::string> forwardSlice(const Function &fn,
                                       const std::string &src_site) const;

    /** Call instructions (across all functions) targeting @p fn_name. */
    std::vector<const Inst *> callersOf(const std::string &fn_name) const;

    /** Function containing instruction @p site (by site), or nullptr —
     *  same as functionOf but for call sites etc. */
    const Function *enclosing(const std::string &site) const
    {
        return functionOf(site);
    }

    /** All failure instructions of @p fn (incl. loop exits). */
    std::vector<const Inst *> failureInsts(const Function &fn) const;

    /** All functions (for iteration/statistics). */
    const std::map<std::string, Function> &functions() const
    {
        return fns_;
    }

    /**
     * Pull-analysis query: find a loop-exit site fed by @p read_site.
     * True when read_site's enclosing function F has return depending
     * on read_site, some call site c invokes F, and a LoopExit
     * instruction in c's function depends on c.  Also true for the
     * intra-node variant where a LoopExit in F's own function depends
     * directly on read_site.
     * @return the loop-exit site, or nullopt
     */
    std::optional<std::string>
    loopExitFedBy(const std::string &read_site) const;

  private:
    std::map<std::string, Function> fns_;
    std::map<std::string, std::string> siteToFn_;
};

/**
 * Fluent builder for ProgramModel functions, so mini systems can
 * declare their model next to their code:
 *
 *   ModelBuilder b;
 *   b.fn("AM.getTask").rpc()
 *       .read("mr.am.getTask.read", "map:AM/jMap")
 *       .returns({"mr.am.getTask.read"});
 */
class FunctionBuilder
{
  public:
    explicit FunctionBuilder(Function &fn) : fn_(fn) {}

    /** Mark as RPC function. */
    FunctionBuilder &rpc();

    /** Plain instruction. */
    FunctionBuilder &inst(const std::string &site);

    /** Heap read instruction. */
    FunctionBuilder &read(const std::string &site,
                          const std::string &heap_var);

    /** Heap write instruction. */
    FunctionBuilder &write(const std::string &site,
                           const std::string &heap_var);

    /** Call site (local). */
    FunctionBuilder &call(const std::string &site,
                          const std::string &callee);

    /** RPC call site (remote). */
    FunctionBuilder &rpcCall(const std::string &site,
                             const std::string &callee);

    /** Failure instruction. */
    FunctionBuilder &failure(const std::string &site,
                             sim::FailureKind kind);

    /** Loop-exit instruction (potential failure, Mpull sink). */
    FunctionBuilder &loopExit(const std::string &site);

    /** Add dependence edges: @p dst depends on each of @p srcs
     *  ("$param" marks parameter dependence). */
    FunctionBuilder &dep(const std::string &dst,
                         const std::vector<std::string> &srcs);

    /** Declare the return value's dependences. */
    FunctionBuilder &returns(const std::vector<std::string> &srcs);

  private:
    Function &fn_;
};

/** Builder root. */
class ModelBuilder
{
  public:
    /** Start (or continue) building function @p name. */
    FunctionBuilder fn(const std::string &name, bool is_rpc = false);

    /** Finalize into a ProgramModel. */
    ProgramModel build() const;

  private:
    std::map<std::string, Function> fns_;
    std::vector<std::string> order_;
};

} // namespace dcatch::model

#endif // DCATCH_MODEL_PROGRAM_MODEL_HH
