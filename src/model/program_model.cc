#include "model/program_model.hh"

#include <deque>

#include "common/logging.hh"

namespace dcatch::model {

void
ProgramModel::addFunction(Function fn)
{
    for (const Inst &inst : fn.insts) {
        auto [it, inserted] = siteToFn_.emplace(inst.site, fn.name);
        if (!inserted && it->second != fn.name)
            DCATCH_WARN() << "site " << inst.site
                          << " registered in two functions";
    }
    fns_[fn.name] = std::move(fn);
}

const Function *
ProgramModel::functionOf(const std::string &site) const
{
    auto it = siteToFn_.find(site);
    if (it == siteToFn_.end())
        return nullptr;
    return &fns_.at(it->second);
}

const Function *
ProgramModel::function(const std::string &name) const
{
    auto it = fns_.find(name);
    return it == fns_.end() ? nullptr : &it->second;
}

const Inst *
ProgramModel::inst(const std::string &site) const
{
    const Function *fn = functionOf(site);
    if (!fn)
        return nullptr;
    for (const Inst &inst : fn->insts)
        if (inst.site == site)
            return &inst;
    return nullptr;
}

std::set<std::string>
ProgramModel::forwardSlice(const Function &fn,
                           const std::string &src_site) const
{
    // BFS over the (reversed) dependence edges: deps maps dst -> srcs,
    // so we walk every dst whose src set intersects the slice.
    std::set<std::string> slice{src_site};
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &[dst, srcs] : fn.deps) {
            if (slice.count(dst))
                continue;
            for (const std::string &src : srcs) {
                if (slice.count(src)) {
                    slice.insert(dst);
                    changed = true;
                    break;
                }
            }
        }
    }
    return slice;
}

bool
ProgramModel::dependsOn(const std::string &dst_site,
                        const std::string &src_site) const
{
    const Function *fn = functionOf(dst_site);
    if (!fn)
        return false;
    return forwardSlice(*fn, src_site).count(dst_site) > 0;
}

std::vector<const Inst *>
ProgramModel::callersOf(const std::string &fn_name) const
{
    std::vector<const Inst *> out;
    for (const auto &[name, fn] : fns_)
        for (const Inst &inst : fn.insts)
            if (inst.kind == InstKind::Call && inst.callee == fn_name)
                out.push_back(&inst);
    return out;
}

std::vector<const Inst *>
ProgramModel::failureInsts(const Function &fn) const
{
    std::vector<const Inst *> out;
    for (const Inst &inst : fn.insts)
        if (inst.kind == InstKind::Failure || inst.kind == InstKind::LoopExit)
            out.push_back(&inst);
    return out;
}

std::optional<std::string>
ProgramModel::loopExitFedBy(const std::string &read_site) const
{
    const Function *fn = functionOf(read_site);
    if (!fn)
        return std::nullopt;

    // Intra-node variant: a loop exit in the same function depends
    // directly on the read.
    std::set<std::string> slice = forwardSlice(*fn, read_site);
    for (const Inst &inst : fn->insts)
        if (inst.kind == InstKind::LoopExit && slice.count(inst.site))
            return inst.site;

    // Distributed variant: read feeds the RPC return; the RPC's return
    // value feeds a loop exit in the calling function on another node.
    if (!fn->isRpc)
        return std::nullopt;
    bool feeds_return = false;
    for (const std::string &ret_src : fn->returnDeps)
        if (slice.count(ret_src)) {
            feeds_return = true;
            break;
        }
    if (!feeds_return)
        return std::nullopt;

    for (const Inst *call : callersOf(fn->name)) {
        const Function *caller = functionOf(call->site);
        if (!caller)
            continue;
        std::set<std::string> call_slice =
            forwardSlice(*caller, call->site);
        for (const Inst &inst : caller->insts)
            if (inst.kind == InstKind::LoopExit &&
                call_slice.count(inst.site))
                return inst.site;
    }
    return std::nullopt;
}

// ---------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------

FunctionBuilder &
FunctionBuilder::rpc()
{
    fn_.isRpc = true;
    return *this;
}

FunctionBuilder &
FunctionBuilder::inst(const std::string &site)
{
    Inst inst;
    inst.site = site;
    fn_.insts.push_back(std::move(inst));
    return *this;
}

FunctionBuilder &
FunctionBuilder::read(const std::string &site, const std::string &heap_var)
{
    Inst inst;
    inst.site = site;
    inst.heapVar = heap_var;
    inst.heapWrite = false;
    fn_.insts.push_back(std::move(inst));
    return *this;
}

FunctionBuilder &
FunctionBuilder::write(const std::string &site,
                       const std::string &heap_var)
{
    Inst inst;
    inst.site = site;
    inst.heapVar = heap_var;
    inst.heapWrite = true;
    fn_.insts.push_back(std::move(inst));
    return *this;
}

FunctionBuilder &
FunctionBuilder::call(const std::string &site, const std::string &callee)
{
    Inst inst;
    inst.site = site;
    inst.kind = InstKind::Call;
    inst.callee = callee;
    fn_.insts.push_back(std::move(inst));
    return *this;
}

FunctionBuilder &
FunctionBuilder::rpcCall(const std::string &site,
                         const std::string &callee)
{
    Inst inst;
    inst.site = site;
    inst.kind = InstKind::Call;
    inst.callee = callee;
    inst.rpcCall = true;
    fn_.insts.push_back(std::move(inst));
    return *this;
}

FunctionBuilder &
FunctionBuilder::failure(const std::string &site, sim::FailureKind kind)
{
    Inst inst;
    inst.site = site;
    inst.kind = InstKind::Failure;
    inst.failureKind = kind;
    fn_.insts.push_back(std::move(inst));
    return *this;
}

FunctionBuilder &
FunctionBuilder::loopExit(const std::string &site)
{
    Inst inst;
    inst.site = site;
    inst.kind = InstKind::LoopExit;
    inst.failureKind = sim::FailureKind::LoopHang;
    fn_.insts.push_back(std::move(inst));
    return *this;
}

FunctionBuilder &
FunctionBuilder::dep(const std::string &dst,
                     const std::vector<std::string> &srcs)
{
    for (const std::string &src : srcs)
        fn_.deps[dst].insert(src);
    return *this;
}

FunctionBuilder &
FunctionBuilder::returns(const std::vector<std::string> &srcs)
{
    for (const std::string &src : srcs)
        fn_.returnDeps.insert(src);
    return *this;
}

FunctionBuilder
ModelBuilder::fn(const std::string &name, bool is_rpc)
{
    auto it = fns_.find(name);
    if (it == fns_.end()) {
        Function fn;
        fn.name = name;
        fn.isRpc = is_rpc;
        it = fns_.emplace(name, std::move(fn)).first;
        order_.push_back(name);
    }
    if (is_rpc)
        it->second.isRpc = true;
    return FunctionBuilder(it->second);
}

ProgramModel
ModelBuilder::build() const
{
    ProgramModel model;
    for (const std::string &name : order_)
        model.addFunction(fns_.at(name));
    return model;
}

} // namespace dcatch::model
