/**
 * @file
 * Vector-clock happens-before engine — the baseline DCatch rejects.
 *
 * Paper section 3.2.2: "Naively computing and comparing the
 * vector-timestamps of every pair of vertices would be too slow.
 * Note that each vector time-stamp will have a huge number of
 * dimensions, with each event handler and RPC function contributing
 * one dimension."  This module implements exactly that baseline so
 * the design choice can be measured (bench/ablation_reach) and the
 * reachable-set engine can be cross-validated against it
 * (tests/hb/engines_equivalence_test).
 *
 * Every Pnreg segment (one handler instance, or one regular thread)
 * is a clock dimension.  A vertex's timestamp is the component-wise
 * maximum over its HB predecessors, incremented in its own dimension.
 * u happens-before v iff ts(u) <= ts(v) component-wise and u != v —
 * which, on the same segment-chain construction as HbGraph, matches
 * the reachable-set answer exactly.
 */

#ifndef DCATCH_HB_VECTOR_CLOCK_HH
#define DCATCH_HB_VECTOR_CLOCK_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hb/graph.hh"
#include "trace/trace_store.hh"

namespace dcatch::hb {

/** Sparse vector timestamp: dimension id -> counter. */
class VectorClock
{
  public:
    /** Advance this clock's own dimension. */
    void
    tick(int dimension)
    {
        ++clock_[dimension];
    }

    /** Component-wise maximum with @p other. */
    void
    merge(const VectorClock &other)
    {
        for (const auto &[dim, value] : other.clock_) {
            std::int64_t &mine = clock_[dim];
            if (value > mine)
                mine = value;
        }
    }

    /** Value in dimension @p dim (0 when absent). */
    std::int64_t
    get(int dim) const
    {
        auto it = clock_.find(dim);
        return it == clock_.end() ? 0 : it->second;
    }

    /** Component-wise <=. */
    bool
    lessEq(const VectorClock &other) const
    {
        for (const auto &[dim, value] : clock_) {
            auto it = other.clock_.find(dim);
            if (it == other.clock_.end() || it->second < value)
                return false;
        }
        return true;
    }

    /** Number of non-zero dimensions. */
    std::size_t dimensions() const { return clock_.size(); }

    /** Approximate heap footprint in bytes. */
    std::size_t
    byteSize() const
    {
        return clock_.size() *
               (sizeof(int) + sizeof(std::int64_t) + 32 /* node */);
    }

  private:
    std::map<int, std::int64_t> clock_;
};

/**
 * Vector-clock HB engine over a trace: same rule set and segment
 * construction as HbGraph, different concurrency query machinery.
 */
class VectorClockGraph
{
  public:
    /** Build over the edge set of @p graph (same vertex indexing). */
    explicit VectorClockGraph(const HbGraph &graph);

    /** Number of vertices (records). */
    std::size_t size() const { return clocks_.size(); }

    /** Number of clock dimensions (segments). */
    int dimensionCount() const { return nextDimension_; }

    /** Does vertex @p u happen before vertex @p v? */
    bool happensBefore(int u, int v) const;

    /** Are vertices @p u and @p v concurrent? */
    bool
    concurrent(int u, int v) const
    {
        return u != v && !happensBefore(u, v) && !happensBefore(v, u);
    }

    /** Total bytes held by all timestamps (for the ablation bench). */
    std::size_t clockBytes() const;

  private:
    std::vector<VectorClock> clocks_;
    std::vector<int> chainOf_;           ///< chain id per vertex
    std::vector<std::int64_t> tickOf_;   ///< own-dimension counter
    int nextDimension_ = 0;
};

} // namespace dcatch::hb

#endif // DCATCH_HB_VECTOR_CLOCK_HH
