/**
 * @file
 * Pull-based / loop-based custom-synchronization analysis
 * (Rule-Mpull, paper section 3.2.1).
 *
 * For each candidate (r, w) where the read r sits inside an RPC
 * function whose return value depends on r and feeds a loop-exit
 * condition at a caller (or, intra-node, where a loop exit in r's own
 * function depends on r), DCatch re-runs the workload tracing only
 * the affected variables (a focused second run) and determines which
 * write w* supplied the value consumed by the last read before the
 * loop exited.  If w* came from a different thread, then
 * w* happens-before the loop exit: an HB edge is added, and the
 * (r, w*) pair itself is recognised as custom synchronization and
 * suppressed — put() vs. getTask() in the paper's Figure 2 is exactly
 * such a pair, while remove() vs. getTask() is not and survives.
 */

#ifndef DCATCH_HB_PULL_HH
#define DCATCH_HB_PULL_HH

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "detect/report.hh"
#include "hb/graph.hh"
#include "model/program_model.hh"
#include "runtime/sim.hh"

namespace dcatch::hb {

/** Result of the pull analysis. */
struct PullResult
{
    /** HB edges (w* vertex -> loop-exit vertex) in the pass-1 graph. */
    std::vector<std::pair<int, int>> edges;

    /** Callstack keys of candidates recognised as synchronization. */
    std::set<std::string> suppressedKeys;

    /** Number of (read site, loop exit) protocols analysed. */
    int protocolsAnalyzed = 0;

    /** Wall-clock seconds spent in the focused second run. */
    double rerunSeconds = 0.0;
};

/** The analyzer; re-runs the workload via the supplied factory. */
class PullAnalyzer
{
  public:
    /**
     * @param model the system's program model
     * @param build topology builder (same one used for the traced run)
     * @param config simulation config (same seed/policy => identical
     *        deterministic execution, so versions line up)
     */
    PullAnalyzer(const model::ProgramModel &model,
                 std::function<void(sim::Simulation &)> build,
                 sim::SimConfig config)
        : model_(model), build_(std::move(build)), config_(config)
    {
    }

    /**
     * Analyse candidates against the pass-1 graph.  Does nothing (and
     * performs no second run) when no candidate matches a pull/loop
     * protocol shape.
     */
    PullResult analyze(const HbGraph &pass1,
                       const std::vector<detect::Candidate> &candidates);

  private:
    const model::ProgramModel &model_;
    std::function<void(sim::Simulation &)> build_;
    sim::SimConfig config_;
};

/** Remove suppressed candidates and those ordered by the new edges. */
std::vector<detect::Candidate>
applyPullResult(const HbGraph &graph,
                const std::vector<detect::Candidate> &candidates,
                const PullResult &result);

} // namespace dcatch::hb

#endif // DCATCH_HB_PULL_HH
