#include "hb/chunked.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "detect/race_detect.hh"

namespace dcatch::hb {

namespace {

/** Copy a seq-ordered slice of records into a fresh store sharing the
 *  parent's symbol pool (slices must keep resolving the same SymIds),
 *  keeping the queue/thread metadata (needed for Eserial and
 *  segmentation). */
trace::TraceStore
sliceStore(const trace::TraceStore &store,
           const std::vector<trace::Record> &all, std::size_t begin,
           std::size_t end)
{
    trace::TraceStore out(store.sharedSymbols());
    for (const auto &[queue_id, meta] : store.queues())
        out.noteQueue(meta);
    for (const auto &[tid, meta] : store.threads())
        out.noteThread(meta);
    for (std::size_t i = begin; i < end && i < all.size(); ++i)
        out.append(all[i]);
    return out;
}

} // namespace

ChunkedResult
chunkedDetect(const trace::TraceStore &store, ChunkOptions options)
{
    ChunkedResult result;
    // Materialized (not streamed): windows are random-access slices of
    // the global order.  The rows are PODs, so this copies no strings.
    std::vector<trace::Record> all = store.mergedRecords();
    if (options.windowRecords == 0)
        options.windowRecords = 1;
    std::size_t stride =
        options.windowRecords > options.overlapRecords
            ? options.windowRecords - options.overlapRecords
            : options.windowRecords;

    detect::RaceDetector detector;
    std::map<std::string, detect::Candidate> dedup;

    for (std::size_t begin = 0; begin < all.size(); begin += stride) {
        std::size_t end =
            std::min(all.size(), begin + options.windowRecords);
        trace::TraceStore window = sliceStore(store, all, begin, end);
        ++result.windows;

        HbGraph graph(window, options.graph);
        if (graph.oom()) {
            // A single window still too big: report and skip it.
            result.anyWindowOom = true;
            DCATCH_WARN() << "chunked analysis: window of "
                          << (end - begin)
                          << " records exceeded the memory budget";
            if (end >= all.size())
                break;
            continue;
        }
        result.maxWindowReachBytes =
            std::max(result.maxWindowReachBytes, graph.reachBytes());

        for (detect::Candidate &cand : detector.detect(graph)) {
            auto [it, inserted] =
                dedup.emplace(cand.callstackKey(), cand);
            if (!inserted)
                it->second.dynamicPairs += cand.dynamicPairs;
        }
        if (end >= all.size())
            break;
    }

    result.candidates.reserve(dedup.size());
    for (auto &[key, cand] : dedup)
        result.candidates.push_back(std::move(cand));
    return result;
}

} // namespace dcatch::hb
