#include "hb/graph.hh"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <stdexcept>

#include "common/logging.hh"
#include "common/task_pool.hh"
#include "hb/vector_clock.hh"

namespace dcatch::hb {

using trace::Record;
using trace::RecordType;

RuleSet
RuleSet::withoutEvent()
{
    RuleSet r;
    r.event = false;
    return r;
}

RuleSet
RuleSet::withoutRpc()
{
    RuleSet r;
    r.rpc = false;
    return r;
}

RuleSet
RuleSet::withoutSocket()
{
    RuleSet r;
    r.socket = false;
    return r;
}

RuleSet
RuleSet::withoutPush()
{
    RuleSet r;
    r.push = false;
    return r;
}

namespace {

/** Should this record be a vertex, given the enabled rule families? */
bool
keepRecord(const Record &rec, const RuleSet &rules)
{
    switch (rec.type) {
      case RecordType::MemRead:
      case RecordType::MemWrite:
      case RecordType::LoopIter:
      case RecordType::LoopExit:
        return true;
      case RecordType::LockAcquire:
      case RecordType::LockRelease:
        // Locks are not part of the HB model (section 2.3).
        return false;
      case RecordType::ThreadCreate:
      case RecordType::ThreadBegin:
      case RecordType::ThreadEnd:
      case RecordType::ThreadJoin:
        return rules.thread;
      case RecordType::EventCreate:
      case RecordType::EventBegin:
      case RecordType::EventEnd:
        return rules.event;
      case RecordType::RpcCreate:
      case RecordType::RpcBegin:
      case RecordType::RpcEnd:
      case RecordType::RpcJoin:
        return rules.rpc;
      case RecordType::MsgSend:
      case RecordType::MsgRecv:
        return rules.socket;
      case RecordType::CoordUpdate:
      case RecordType::CoordPushed:
        return rules.push;
    }
    return true;
}

/** Does this record open a new Pnreg handler segment? */
bool
opensSegment(RecordType type)
{
    return type == RecordType::EventBegin || type == RecordType::RpcBegin ||
           type == RecordType::MsgRecv || type == RecordType::CoordPushed;
}

/** Does this record close the current handler segment (inclusive)? */
bool
closesSegment(RecordType type)
{
    return type == RecordType::EventEnd || type == RecordType::RpcEnd;
}

/** findVertex hash key over the identifying (site, id) symbol pair. */
std::uint64_t
symPair(trace::SymId site, trace::SymId id)
{
    return (static_cast<std::uint64_t>(site) << 32) | id;
}

} // namespace

HbGraph::HbGraph(const trace::TraceStore &store, Options options)
    : options_(options), pool_(store.sharedSymbols())
{
    recs_.reserve(store.totalRecords());
    for (auto it = store.merged().begin(); it != store.merged().end();
         ++it) {
        Record rec = (*it).record();
        if (keepRecord(rec, options_.rules))
            recs_.push_back(rec);
    }
    preds_.assign(recs_.size(), {});
    progPred_.assign(recs_.size(), -1);
    for (std::size_t v = 0; v < recs_.size(); ++v)
        if (recs_[v].isMemoryAccess())
            memVertices_.push_back(static_cast<int>(v));

    // The two hash indexes and the program edges touch disjoint state
    // (byTypeId_, vertexIndex_, preds_/progPred_/stats_.program), so a
    // pool overlaps them; the serial order is index order either way,
    // making the result identical.
    if (options_.pool != nullptr && options_.pool->jobs() > 1) {
        HbGraph *self = this;
        const trace::TraceStore *st = &store;
        options_.pool->parallelFor(2, [self, st](std::size_t task) {
            if (task == 0)
                self->buildIndexes();
            else
                self->buildProgramEdges(*st);
        });
    } else {
        buildIndexes();
        buildProgramEdges(store);
    }
    buildPairingEdges();

    std::set<int> threads;
    for (const Record &rec : recs_)
        threads.insert(rec.thread);
    decision_ =
        decide(options_.engine, recs_.size(), threads.size(),
               stats_.total() - stats_.program,
               options_.memoryBudgetBytes, options_.autoDenseVertexCutoff);
    engine_ = decision_.resolved;

    if (engine_ == Engine::Dense) {
        // Budget check before allocating the O(V^2) bit arrays
        // (Table 8 OOM emulation).
        std::size_t need = decision_.denseBytes;
        if (need > options_.memoryBudgetBytes) {
            DCATCH_WARN()
                << "HB graph dense reachable sets need " << need
                << " bytes, budget is " << options_.memoryBudgetBytes
                << " — marking OOM";
            oom_ = true;
            return;
        }
        close();
        if (options_.rules.event)
            applyEventSerial(store);
        return;
    }

    if (engine_ == Engine::VectorClock) {
        closeFull(); // initial clock construction
        if (vc_->clockBytes() > options_.memoryBudgetBytes) {
            DCATCH_WARN() << "HB graph vector clocks need "
                          << vc_->clockBytes() << " bytes, budget is "
                          << options_.memoryBudgetBytes
                          << " — marking OOM";
            oom_ = true;
            return;
        }
        if (options_.rules.event)
            applyEventSerial(store);
        return;
    }

    frontier_.build(preds_, progPred_);
    if (frontier_.bytes() > options_.memoryBudgetBytes) {
        DCATCH_WARN() << "HB graph chain frontiers need "
                      << frontier_.bytes() << " bytes, budget is "
                      << options_.memoryBudgetBytes << " — marking OOM";
        oom_ = true;
        return;
    }
    if (options_.overlap.tasks > 0 && options_.overlap.work &&
        options_.pool != nullptr && options_.pool->jobs() > 1) {
        // Overlapped detection: the pre-pass shards query a read-only
        // copy of the just-built frontier (program + pairing closure)
        // while task 0 performs the exact serial closure steps of the
        // else-branch below — same calls, same order, so every stat
        // and closure result is byte-identical to the serial path.
        ChainFrontierIndex snapshot = frontier_;
        options_.pool->parallelFor(
            options_.overlap.tasks + 1, [&](std::size_t task) {
                if (task == 0) {
                    if (options_.rules.event)
                        applyEventSerial(store);
                    frontier_.repack(preds_);
                } else {
                    options_.overlap.work(*this, snapshot, task - 1);
                }
            });
    } else {
        if (options_.rules.event)
            applyEventSerial(store);
        // Derived Eserial edges serialize handler instances;
        // re-packing the chain decomposition against the completed
        // order collapses them into shared chains and shrinks every
        // frontier row.
        frontier_.repack(preds_);
    }
    if (frontier_.bytes() > options_.memoryBudgetBytes) {
        DCATCH_WARN() << "HB graph chain frontiers need "
                      << frontier_.bytes()
                      << " bytes after repack, budget is "
                      << options_.memoryBudgetBytes << " — marking OOM";
        oom_ = true;
    }
}

HbGraph::EngineDecision
HbGraph::decide(Engine requested, std::size_t vertices,
                std::size_t threads, std::size_t crossEdges,
                std::size_t budgetBytes, std::size_t vertexCutoff)
{
    EngineDecision d;
    d.requested = requested;
    d.vertices = vertices;
    d.threads = threads;
    d.crossEdges = crossEdges;
    d.denseBytes = vertices * ((vertices + 63) / 64) * 8;
    d.budgetBytes = budgetBytes;
    d.vertexCutoff = vertexCutoff;
    // Cross-edge density in sixteenths of an edge per vertex, capped
    // at 1 edge/vertex: edge-heavy traces fatten frontier rows, so
    // the dense engine stays competitive up to 2x more vertices.
    std::size_t density16 =
        vertices == 0 ? 0
                      : std::min<std::size_t>(crossEdges * 16 / vertices, 16);
    d.effectiveCutoff = vertexCutoff + vertexCutoff * density16 / 16;
    if (requested != Engine::Auto) {
        d.resolved = requested;
        return d;
    }
    bool fits = d.denseBytes * 2 <= budgetBytes;
    d.resolved = (vertices <= d.effectiveCutoff && fits)
                     ? Engine::Dense
                     : Engine::ChainFrontier;
    return d;
}

const char *
HbGraph::name(Engine engine)
{
    switch (engine) {
      case Engine::ChainFrontier:
        return "chain";
      case Engine::Dense:
        return "dense";
      case Engine::VectorClock:
        return "vc";
      case Engine::Auto:
        return "auto";
    }
    return "?";
}

const char *
HbGraph::engineName() const
{
    return name(engine_);
}

bool
HbGraph::addEdge(int u, int v, std::size_t EdgeStats::*counter)
{
    if (u == v)
        return false;
    if (u > v) {
        // All well-formed HB edges point forward in the global
        // sequence order; anything else indicates a tracing bug.
        DCATCH_WARN() << "dropping backward HB edge " << u << "->" << v;
        return false;
    }
    preds_[static_cast<std::size_t>(v)].push_back(u);
    ++(stats_.*counter);
    return true;
}

void
HbGraph::buildIndexes()
{
    for (std::size_t v = 0; v < recs_.size(); ++v) {
        const Record &rec = recs_[v];
        byTypeId_[static_cast<std::size_t>(rec.type)][rec.id].push_back(
            static_cast<int>(v));
        vertexIndex_[static_cast<std::size_t>(rec.type)]
                    [symPair(rec.site, rec.id)]
                        .push_back(static_cast<int>(v));
    }
}

void
HbGraph::buildProgramEdges(const trace::TraceStore &store)
{
    // Group vertices by thread, preserving seq order.
    std::map<int, std::vector<int>> by_thread;
    for (std::size_t v = 0; v < recs_.size(); ++v)
        by_thread[recs_[v].thread].push_back(static_cast<int>(v));
    (void)store;

    for (auto &[tid, verts] : by_thread) {
        // A thread is handler-style if its (filtered) log contains any
        // segment-opening record.  Note this is evaluated after rule
        // filtering: dropping event records makes an event-consumer
        // thread look regular, so Rule-Preg over-orders it — the false
        // negatives of the Table 9 ablation.
        bool handler = false;
        for (int v : verts)
            if (opensSegment(recs_[static_cast<std::size_t>(v)].type)) {
                handler = true;
                break;
            }

        if (!handler) {
            for (std::size_t i = 1; i < verts.size(); ++i)
                if (addEdge(verts[i - 1], verts[i], &EdgeStats::program))
                    progPred_[static_cast<std::size_t>(verts[i])] =
                        verts[i - 1];
            continue;
        }

        // Rule-Pnreg: chain only within one handler instance.
        int prev = -1;
        bool in_segment = false;
        for (int v : verts) {
            RecordType type = recs_[static_cast<std::size_t>(v)].type;
            if (opensSegment(type)) {
                prev = v;
                in_segment = true;
                continue;
            }
            if (!in_segment) {
                prev = -1;
                continue;
            }
            if (addEdge(prev, v, &EdgeStats::program))
                progPred_[static_cast<std::size_t>(v)] = prev;
            prev = v;
            if (closesSegment(type)) {
                in_segment = false;
                prev = -1;
            }
        }
    }
}

void
HbGraph::buildPairingEdges()
{
    auto pair_first = [&](RecordType from, RecordType to,
                          std::size_t EdgeStats::*counter) {
        const auto &sinks = byTypeId_[static_cast<std::size_t>(to)];
        for (const auto &[id, sources] :
             byTypeId_[static_cast<std::size_t>(from)]) {
            auto it = sinks.find(id);
            if (it == sinks.end())
                continue;
            // Pair positionally: the i-th source with the i-th sink
            // (ids are unique per instance for all current op kinds,
            // so these vectors almost always have size one).
            std::size_t n = std::min(sources.size(), it->second.size());
            for (std::size_t i = 0; i < n; ++i)
                addEdge(sources[i], it->second[i], counter);
        }
    };

    auto pair_broadcast = [&](RecordType from, RecordType to,
                              std::size_t EdgeStats::*counter) {
        const auto &sinks = byTypeId_[static_cast<std::size_t>(to)];
        for (const auto &[id, sources] :
             byTypeId_[static_cast<std::size_t>(from)]) {
            auto it = sinks.find(id);
            if (it == sinks.end())
                continue;
            for (int src : sources)
                for (int dst : it->second)
                    addEdge(src, dst, counter);
        }
    };

    if (options_.rules.thread) {
        pair_first(RecordType::ThreadCreate, RecordType::ThreadBegin,
                   &EdgeStats::fork);
        pair_first(RecordType::ThreadEnd, RecordType::ThreadJoin,
                   &EdgeStats::join);
    }
    if (options_.rules.event)
        pair_first(RecordType::EventCreate, RecordType::EventBegin,
                   &EdgeStats::eenq);
    if (options_.rules.rpc) {
        pair_first(RecordType::RpcCreate, RecordType::RpcBegin,
                   &EdgeStats::rpc);
        pair_first(RecordType::RpcEnd, RecordType::RpcJoin,
                   &EdgeStats::rpc);
    }
    if (options_.rules.socket)
        pair_first(RecordType::MsgSend, RecordType::MsgRecv,
                   &EdgeStats::socket);
    if (options_.rules.push)
        pair_broadcast(RecordType::CoordUpdate, RecordType::CoordPushed,
                       &EdgeStats::push);
}

void
HbGraph::integrateEdge(int u, int v)
{
    if (engine_ == Engine::ChainFrontier)
        frontier_.addEdge(u, v, preds_);
    // Dense / vector clock: the caller re-closes once per batch.
}

void
HbGraph::applyEventSerial(const trace::TraceStore &store)
{
    // Collect, per single-consumer queue, each event's Create / Begin /
    // End vertices.
    struct EventVerts
    {
        int create = -1, begin = -1, end = -1;
    };
    // Keys are string_views into the symbol pool — stable for the
    // pool's lifetime, and the outer map keeps queues in the same
    // lexicographic order as the old string-keyed map.
    std::map<std::string_view, std::map<trace::SymId, EventVerts>> queues;
    for (std::size_t v = 0; v < recs_.size(); ++v) {
        const Record &rec = recs_[v];
        if (rec.type != RecordType::EventCreate &&
            rec.type != RecordType::EventBegin &&
            rec.type != RecordType::EventEnd)
            continue;
        std::string_view event_id = pool_->view(rec.id);
        std::string_view queue_id =
            event_id.substr(0, event_id.find('#'));
        auto meta = store.queues().find(queue_id);
        if (meta == store.queues().end() || !meta->second.singleConsumer)
            continue;
        EventVerts &ev = queues[queue_id][rec.id];
        if (rec.type == RecordType::EventCreate)
            ev.create = static_cast<int>(v);
        else if (rec.type == RecordType::EventBegin)
            ev.begin = static_cast<int>(v);
        else
            ev.end = static_cast<int>(v);
    }

    // Sort each queue's completed events by handler begin once; the
    // fixpoint passes only re-examine ordering, the event sets are
    // fixed.  For the chain engine, additionally group each queue's
    // Create vertices by their chain, sorted by position: a Create's
    // ancestors among the queue's other Creates are then exactly the
    // per-chain prefixes below its frontier-row limits, so each
    // handler inspects O(frontier row) candidate chains instead of
    // scanning every earlier handler.
    struct QueueEvents
    {
        std::vector<const EventVerts *> list;
        std::vector<std::pair<std::uint32_t,
                              std::vector<std::pair<std::uint32_t, int>>>>
            creatorChains; // sorted by chain id
    };
    std::vector<QueueEvents> queue_events;
    for (auto &[queue_id, events] : queues) {
        QueueEvents q;
        for (auto &[id, ev] : events)
            if (ev.create >= 0 && ev.begin >= 0 && ev.end >= 0)
                q.list.push_back(&ev);
        std::sort(q.list.begin(), q.list.end(),
                  [](const EventVerts *a, const EventVerts *b) {
                      return a->begin < b->begin;
                  });
        if (engine_ == Engine::ChainFrontier) {
            std::map<std::uint32_t, std::vector<std::pair<std::uint32_t, int>>>
                by_chain;
            for (std::size_t idx = 0; idx < q.list.size(); ++idx) {
                int c = q.list[idx]->create;
                by_chain[frontier_.chainIdOf(c)].emplace_back(
                    frontier_.posInChain(c), static_cast<int>(idx));
            }
            for (auto &[chain, vec] : by_chain) {
                std::sort(vec.begin(), vec.end());
                q.creatorChains.emplace_back(chain, std::move(vec));
            }
        }
        queue_events.push_back(std::move(q));
    }

    // Fixpoint: adding End(e1) => Begin(e2) edges may order more
    // Create pairs, enabling further edges (section 3.2.1).
    if (engine_ == Engine::ChainFrontier) {
        // Versioned per-chain scratch: filling one decodes a frontier
        // row into O(1)-lookup form, so the quadratic pair scan pays
        // one array probe per check instead of a binary search over
        // the row.  Stamps avoid clearing between handlers.
        const std::size_t chain_count = frontier_.chainCount();
        std::vector<std::uint32_t> climit(chain_count, 0);
        std::vector<std::uint32_t> cver(chain_count, 0);
        std::vector<std::uint32_t> blimit(chain_count, 0);
        std::vector<std::uint32_t> bver(chain_count, 0);
        std::uint32_t cstamp = 0, bstamp = 0;
        auto fill = [&](int v, std::vector<std::uint32_t> &limit,
                        std::vector<std::uint32_t> &ver,
                        std::uint32_t &stamp) {
            ++stamp;
            for (frontier::Word w : frontier_.frontierRow(v)) {
                std::uint32_t chain = frontier::chainOf(w);
                limit[chain] = frontier::limitOf(w);
                ver[chain] = stamp;
            }
        };
        // u => v given v's row is decoded into (limit, ver, stamp).
        // Mirrors ChainFrontierIndex::reaches; the own-chain row
        // entry is stale by design, so same-chain compares positions.
        auto ordered = [&](int u, int v,
                          const std::vector<std::uint32_t> &limit,
                          const std::vector<std::uint32_t> &ver,
                          std::uint32_t stamp) {
            if (u < 0 || u >= v)
                return false;
            std::uint32_t cu = frontier_.chainIdOf(u);
            if (cu == frontier_.chainIdOf(v))
                return frontier_.posInChain(u) < frontier_.posInChain(v);
            return ver[cu] == stamp &&
                   limit[cu] > frontier_.posInChain(u);
        };
        // Add pass: scan earlier handlers nearest-first with
        // immediate (deferred-mode) integration — once end(j-1) =>
        // begin(j) lands, its row already implies end(i) => begin(j)
        // for the handlers serialized before it, so the recorded edge
        // set stays near the transitive reduction.
        auto scan_queue = [&](QueueEvents &q) {
            bool added = false;
            std::vector<const EventVerts *> &list = q.list;
            for (std::size_t j = 1; j < list.size(); ++j) {
                int cj = list[j]->create, bj = list[j]->begin;
                fill(cj, climit, cver, cstamp);
                fill(bj, blimit, bver, bstamp);
                for (std::size_t i = j; i-- > 0;) {
                    if (!ordered(list[i]->create, cj, climit, cver,
                                 cstamp))
                        continue;
                    if (ordered(list[i]->end, bj, blimit, bver, bstamp))
                        continue; // already ordered
                    if (addEdge(list[i]->end, bj,
                                &EdgeStats::eserial)) {
                        frontier_.addEdgeDeferred(list[i]->end, bj);
                        fill(bj, blimit, bver, bstamp);
                        added = true;
                    }
                }
            }
            return added;
        };
        // Verification pass (run on the re-closed index): for each
        // handler j it suffices to check the *maximal* create-
        // ancestor per chain.  Any earlier Create in the same chain
        // precedes that tip's Create, so by strong induction over
        // begin order its End already reaches the tip's Begin, and
        // the tip's End => Begin(j) ordering carries it to j.  This
        // confirms the fixpoint in O(handlers x frontier row) instead
        // of re-running the quadratic pair scan.
        auto queue_satisfied = [&](QueueEvents &q) {
            std::vector<const EventVerts *> &list = q.list;
            for (std::size_t j = 0; j < list.size(); ++j) {
                int cj = list[j]->create, bj = list[j]->begin;
                fill(bj, blimit, bver, bstamp);
                auto tip_ordered =
                    [&](const std::vector<std::pair<std::uint32_t, int>>
                            &vec,
                        std::uint32_t limit) {
                        auto k = static_cast<std::size_t>(
                            std::lower_bound(
                                vec.begin(), vec.end(),
                                std::make_pair(limit, -1)) -
                            vec.begin());
                        while (k-- > 0) {
                            auto i = static_cast<std::size_t>(
                                vec[k].second);
                            if (i >= j)
                                continue; // handler begins after j
                            return ordered(list[i]->end, bj, blimit,
                                           bver, bstamp);
                        }
                        return true;
                    };
                std::uint32_t cj_chain = frontier_.chainIdOf(cj);
                const auto &creators = q.creatorChains;
                auto self = std::lower_bound(
                    creators.begin(), creators.end(), cj_chain,
                    [](const auto &a, std::uint32_t c) {
                        return a.first < c;
                    });
                if (self != creators.end() && self->first == cj_chain &&
                    !tip_ordered(self->second,
                                 frontier_.posInChain(cj)))
                    return false;
                // Creator chains among cj's ancestors: sorted-merge
                // its frontier row against the queue's creator list.
                const auto &row = frontier_.frontierRow(cj);
                std::size_t a = 0, b = 0;
                while (a < row.size() && b < creators.size()) {
                    std::uint32_t chain = frontier::chainOf(row[a]);
                    if (chain < creators[b].first) {
                        ++a;
                    } else if (creators[b].first < chain) {
                        ++b;
                    } else {
                        if (chain != cj_chain &&
                            !tip_ordered(creators[b].second,
                                         frontier::limitOf(row[a])))
                            return false;
                        ++a;
                        ++b;
                    }
                }
            }
            return true;
        };
        for (;;) {
            bool added = false;
            for (QueueEvents &q : queue_events)
                added |= scan_queue(q);
            if (added)
                frontier_.refresh(preds_);
            bool satisfied = true;
            for (QueueEvents &q : queue_events)
                satisfied &= queue_satisfied(q);
            if (satisfied)
                break;
        }
        return;
    }

    // Dense / vector-clock engines: same pair scan against the
    // closure-so-far, re-closing once per changed pass.
    bool changed = true;
    while (changed) {
        changed = false;
        for (QueueEvents &q : queue_events) {
            std::vector<const EventVerts *> &list = q.list;
            for (std::size_t j = 1; j < list.size(); ++j) {
                for (std::size_t i = j; i-- > 0;) {
                    if (!happensBefore(list[i]->create, list[j]->create))
                        continue;
                    if (happensBefore(list[i]->end, list[j]->begin))
                        continue; // already ordered
                    if (addEdge(list[i]->end, list[j]->begin,
                                &EdgeStats::eserial))
                        changed = true;
                }
            }
        }
        if (changed)
            closeFull();
    }
}

void
HbGraph::closeFull()
{
    if (engine_ == Engine::Dense) {
        close();
    } else if (engine_ == Engine::VectorClock) {
        // Clocks are derived from the whole edge set; rebuilding is
        // the vector-clock analogue of a dense re-closure (and is
        // exactly the cost the paper's section 3.2.2 complains about).
        vc_ = std::make_unique<VectorClockGraph>(*this);
        ++closureRuns_;
    }
}

void
HbGraph::close()
{
    std::size_t n = recs_.size();
    ancestors_.assign(n, BitSet(n));
    for (std::size_t v = 0; v < n; ++v) {
        BitSet &anc = ancestors_[v];
        for (int u : preds_[v]) {
            anc.unionWith(ancestors_[static_cast<std::size_t>(u)]);
            anc.set(static_cast<std::size_t>(u));
        }
    }
    ++closureRuns_;
}

bool
HbGraph::happensBefore(int u, int v) const
{
    if (oom_)
        throw std::runtime_error(
            "HB graph exceeded its memory budget (OOM)");
    if (u == v || v < 0 || u < 0)
        return false;
    if (u > v)
        return false; // edges only point forward in seq order
    if (engine_ == Engine::ChainFrontier)
        return frontier_.reaches(u, v);
    if (engine_ == Engine::VectorClock)
        return vc_->happensBefore(u, v);
    return ancestors_[static_cast<std::size_t>(v)].test(
        static_cast<std::size_t>(u));
}

int
HbGraph::findVertex(trace::RecordType type, trace::SymId site,
                    trace::SymId id, std::int64_t aux) const
{
    const auto &index = vertexIndex_[static_cast<std::size_t>(type)];
    auto it = index.find(symPair(site, id));
    if (it == index.end())
        return -1;
    for (int v : it->second)
        if (aux < 0 || recs_[static_cast<std::size_t>(v)].aux == aux)
            return v;
    return -1;
}

int
HbGraph::findVertex(trace::RecordType type, std::string_view site,
                    std::string_view id, std::int64_t aux) const
{
    trace::SymId site_sym = pool_->find(site);
    trace::SymId id_sym = pool_->find(id);
    if (site_sym == trace::kNoSym || id_sym == trace::kNoSym)
        return -1;
    return findVertex(type, site_sym, id_sym, aux);
}

void
HbGraph::addEdges(const std::vector<std::pair<int, int>> &edges)
{
    bool added = false;
    for (auto [u, v] : edges)
        if (addEdge(u, v, &EdgeStats::pull)) {
            integrateEdge(u, v);
            added = true;
        }
    if (added && engine_ != Engine::ChainFrontier)
        closeFull();
}

std::size_t
HbGraph::reachBytes() const
{
    if (engine_ == Engine::ChainFrontier)
        return frontier_.bytes();
    if (engine_ == Engine::VectorClock)
        return vc_ ? vc_->clockBytes() : 0;
    std::size_t bytes = 0;
    for (const BitSet &set : ancestors_)
        bytes += set.byteSize();
    return bytes;
}

std::size_t
HbGraph::chainCount() const
{
    if (engine_ == Engine::ChainFrontier)
        return frontier_.chainCount();
    if (engine_ == Engine::VectorClock && vc_)
        return static_cast<std::size_t>(vc_->dimensionCount());
    return 0;
}

std::size_t
HbGraph::frontierRows() const
{
    return engine_ == Engine::ChainFrontier ? frontier_.rowCount() : 0;
}

std::size_t
HbGraph::incrementalUpdates() const
{
    return engine_ == Engine::ChainFrontier
               ? frontier_.incrementalEdges()
               : 0;
}

// ---------------------------------------------------------------------
// Streaming (incremental) construction — the dcatchd ingestion path
// ---------------------------------------------------------------------

struct HbGraph::StreamState
{
    const trace::TraceStore *store = nullptr;
    std::uint64_t lastSeq = 0;
    bool haveSeq = false;
    bool finished = false;
    bool exactLost = false;

    /**
     * Per-thread program-order machine.  The batch build classifies a
     * thread handler iff its complete filtered log contains a
     * segment-opening record — hindsight a stream does not have.  The
     * stream predicts handler for every thread unless ThreadMeta
     * (registered by the client before the thread's records) promises
     * handlerThread == false, and repairs the one benign
     * misprediction:
     *
     *  - predicted handler, no opener ever arrives: the batch build
     *    would have chained the whole log (Rule-Preg).  Edges can
     *    always be *added*, so finishStream() chains retroactively —
     *    exactness preserved.  This is why handler is the safe
     *    default: its eager Rule-Pnreg edges are always a subset of
     *    the batch closure (any opener makes the thread handler-style
     *    in hindsight), so exactness never depends on the guess.
     *  - promised regular, an opener arrives after >= 2 records: the
     *    eager Rule-Preg edges over-order and cannot be retracted —
     *    exactLost, and the session rebuilds a batch graph at End for
     *    the authoritative report.  Only an explicit (wrong) client
     *    promise can reach this path.
     */
    struct ThreadState
    {
        bool handlerMode = false; ///< current prediction
        bool sawOpener = false;
        bool inSegment = false;
        int prev = -1;          ///< pending program-order predecessor
        std::vector<int> verts; ///< this thread's vertices, in order
    };
    std::vector<ThreadState> threads;

    /** Rule-Eserial bookkeeping: one entry per event id, completed
     *  triples listed per queue in handler-begin order. */
    struct EventVerts
    {
        int create = -1, begin = -1, end = -1;
    };
    struct QueueState
    {
        std::map<trace::SymId, EventVerts> events;
        std::vector<const EventVerts *> complete; ///< sorted by begin
        /** Prefix of `complete` already converged by a previous
         *  flush; new edges between old vertices reset it. */
        std::size_t stable = 0;
    };
    std::map<std::string, QueueState, std::less<>> queues;
};

// Defined here so unique_ptr<StreamState> destroys a complete type.
HbGraph::~HbGraph() = default;

HbGraph::HbGraph(StreamTag, const trace::TraceStore &store,
                 Options options)
    : options_(options), pool_(store.sharedSymbols()),
      stream_(std::make_unique<StreamState>())
{
    engine_ = Engine::ChainFrontier;
    decision_.requested = options_.engine;
    decision_.resolved = engine_;
    decision_.budgetBytes = options_.memoryBudgetBytes;
    decision_.vertexCutoff = options_.autoDenseVertexCutoff;
    stream_->store = &store;
}

std::unique_ptr<HbGraph>
HbGraph::streaming(const trace::TraceStore &store, Options options)
{
    // Only the chain-frontier engine supports incremental closure.
    options.engine = Engine::ChainFrontier;
    return std::unique_ptr<HbGraph>(
        new HbGraph(StreamTag{}, store, options));
}

bool
HbGraph::streamExact() const
{
    return stream_ != nullptr && !stream_->exactLost;
}

void
HbGraph::streamProgramEdge(int v, const Record &rec)
{
    StreamState &st = *stream_;
    if (rec.thread < 0)
        return;
    auto tid = static_cast<std::size_t>(rec.thread);
    if (tid >= st.threads.size())
        st.threads.resize(tid + 1);
    StreamState::ThreadState &ts = st.threads[tid];
    if (ts.verts.empty()) {
        auto it = st.store->threads().find(rec.thread);
        ts.handlerMode = it == st.store->threads().end() ||
                         it->second.handlerThread;
    }
    ts.verts.push_back(v);

    if (opensSegment(rec.type)) {
        if (!ts.handlerMode && ts.verts.size() > 2) {
            // Predicted regular: Rule-Preg edges over the >= 2
            // pre-opener records are already in the closure, but the
            // batch build (which sees the opener in hindsight) would
            // have isolated them.  Over-ordering cannot be retracted.
            DCATCH_WARN() << "stream thread " << rec.thread
                          << " opened a handler segment after "
                          << (ts.verts.size() - 1)
                          << " eagerly-chained records; batch "
                             "equivalence lost";
            st.exactLost = true;
        }
        ts.handlerMode = true;
        ts.sawOpener = true;
        ts.inSegment = true;
        ts.prev = v;
        return;
    }
    if (!ts.handlerMode) {
        if (ts.prev >= 0 && addEdge(ts.prev, v, &EdgeStats::program))
            progPred_[static_cast<std::size_t>(v)] = ts.prev;
        ts.prev = v;
        return;
    }
    // Rule-Pnreg: chain only within one handler instance.
    if (!ts.inSegment) {
        ts.prev = -1;
        return;
    }
    if (ts.prev >= 0 && addEdge(ts.prev, v, &EdgeStats::program))
        progPred_[static_cast<std::size_t>(v)] = ts.prev;
    ts.prev = v;
    if (closesSegment(rec.type)) {
        ts.inSegment = false;
        ts.prev = -1;
    }
}

void
HbGraph::streamPairingEdges(int v, const Record &rec)
{
    // Mirrors buildPairingEdges: the i-th source pairs with the i-th
    // sink per id.  An edge is attempted when the *later* endpoint
    // arrives, so each pair is attempted exactly once; a sink that
    // precedes its source yields the same dropped-backward-edge
    // outcome the batch build produces.
    auto mate = [&](RecordType other, bool v_is_sink,
                    std::size_t EdgeStats::*counter) {
        const auto &mine =
            byTypeId_[static_cast<std::size_t>(rec.type)][rec.id];
        std::size_t idx = mine.size() - 1; // v's position, just pushed
        const auto &theirs =
            byTypeId_[static_cast<std::size_t>(other)][rec.id];
        if (idx >= theirs.size())
            return;
        if (v_is_sink)
            addEdge(theirs[idx], v, counter);
        else
            addEdge(v, theirs[idx], counter);
    };

    const RuleSet &rules = options_.rules;
    switch (rec.type) {
      case RecordType::ThreadCreate:
        if (rules.thread)
            mate(RecordType::ThreadBegin, false, &EdgeStats::fork);
        break;
      case RecordType::ThreadBegin:
        if (rules.thread)
            mate(RecordType::ThreadCreate, true, &EdgeStats::fork);
        break;
      case RecordType::ThreadEnd:
        if (rules.thread)
            mate(RecordType::ThreadJoin, false, &EdgeStats::join);
        break;
      case RecordType::ThreadJoin:
        if (rules.thread)
            mate(RecordType::ThreadEnd, true, &EdgeStats::join);
        break;
      case RecordType::EventCreate:
        if (rules.event)
            mate(RecordType::EventBegin, false, &EdgeStats::eenq);
        break;
      case RecordType::EventBegin:
        if (rules.event)
            mate(RecordType::EventCreate, true, &EdgeStats::eenq);
        break;
      case RecordType::RpcCreate:
        if (rules.rpc)
            mate(RecordType::RpcBegin, false, &EdgeStats::rpc);
        break;
      case RecordType::RpcBegin:
        if (rules.rpc)
            mate(RecordType::RpcCreate, true, &EdgeStats::rpc);
        break;
      case RecordType::RpcEnd:
        if (rules.rpc)
            mate(RecordType::RpcJoin, false, &EdgeStats::rpc);
        break;
      case RecordType::RpcJoin:
        if (rules.rpc)
            mate(RecordType::RpcEnd, true, &EdgeStats::rpc);
        break;
      case RecordType::MsgSend:
        if (rules.socket)
            mate(RecordType::MsgRecv, false, &EdgeStats::socket);
        break;
      case RecordType::MsgRecv:
        if (rules.socket)
            mate(RecordType::MsgSend, true, &EdgeStats::socket);
        break;
      case RecordType::CoordUpdate:
        if (rules.push)
            for (int dst : byTypeId_[static_cast<std::size_t>(
                     RecordType::CoordPushed)][rec.id])
                if (dst != v)
                    addEdge(v, dst, &EdgeStats::push);
        break;
      case RecordType::CoordPushed:
        if (rules.push)
            for (int src : byTypeId_[static_cast<std::size_t>(
                     RecordType::CoordUpdate)][rec.id])
                if (src != v)
                    addEdge(src, v, &EdgeStats::push);
        break;
      default:
        break;
    }
}

void
HbGraph::append(const Record &rec)
{
    assert(stream_ && "append() requires a streaming graph");
    StreamState &st = *stream_;
    assert(!st.finished && "append() after finishStream()");
    assert((!st.haveSeq || rec.seq > st.lastSeq) &&
           "streamed records must arrive in ascending seq order");
    st.lastSeq = rec.seq;
    st.haveSeq = true;

    if (!keepRecord(rec, options_.rules))
        return;
    int v = static_cast<int>(recs_.size());
    recs_.push_back(rec);
    preds_.emplace_back();
    progPred_.push_back(-1);
    if (rec.isMemoryAccess())
        memVertices_.push_back(v);
    byTypeId_[static_cast<std::size_t>(rec.type)][rec.id].push_back(v);
    vertexIndex_[static_cast<std::size_t>(rec.type)]
                [symPair(rec.site, rec.id)]
                    .push_back(v);
    decision_.vertices = recs_.size();

    streamProgramEdge(v, rec);
    streamPairingEdges(v, rec);

    if (options_.rules.event &&
        (rec.type == RecordType::EventCreate ||
         rec.type == RecordType::EventBegin ||
         rec.type == RecordType::EventEnd)) {
        std::string_view event_id = pool_->view(rec.id);
        std::string_view queue_id =
            event_id.substr(0, event_id.find('#'));
        auto it = st.queues.find(queue_id);
        if (it == st.queues.end())
            it = st.queues.emplace(std::string(queue_id),
                                   StreamState::QueueState{})
                     .first;
        StreamState::QueueState &q = it->second;
        StreamState::EventVerts &ev = q.events[rec.id];
        if (rec.type == RecordType::EventCreate)
            ev.create = v;
        else if (rec.type == RecordType::EventBegin)
            ev.begin = v;
        else
            ev.end = v;
        if (ev.create >= 0 && ev.begin >= 0 && ev.end >= 0) {
            // Completed triple: insert in handler-begin order (single
            // consumer means completion order == begin order, so this
            // is almost always an append).
            auto pos = std::lower_bound(
                q.complete.begin(), q.complete.end(), &ev,
                [](const StreamState::EventVerts *a,
                   const StreamState::EventVerts *b) {
                    return a->begin < b->begin;
                });
            auto at = static_cast<std::size_t>(pos -
                                               q.complete.begin());
            q.complete.insert(pos, &ev);
            if (at < q.stable)
                q.stable = at;
        }
    }
}

void
HbGraph::streamEventSerial()
{
    StreamState &st = *stream_;
    auto single_consumer = [&](std::string_view key) {
        auto meta = st.store->queues().find(key);
        return meta != st.store->queues().end() &&
               meta->second.singleConsumer;
    };
    // Nearest-first pair scan with immediate deferred integration —
    // once end(j-1) => begin(j) lands, its (chain-run updated) row
    // already implies end(i) => begin(j) for earlier handlers, so the
    // recorded edge set stays near the transitive reduction, as in
    // the batch fixpoint.
    auto scan = [&](StreamState::QueueState &q,
                    std::size_t from) -> bool {
        bool added = false;
        auto &list = q.complete;
        for (std::size_t j = std::max<std::size_t>(from, 1);
             j < list.size(); ++j) {
            for (std::size_t i = j; i-- > 0;) {
                if (!happensBefore(list[i]->create, list[j]->create))
                    continue;
                if (happensBefore(list[i]->end, list[j]->begin))
                    continue; // already ordered
                if (addEdge(list[i]->end, list[j]->begin,
                            &EdgeStats::eserial)) {
                    frontier_.addEdgeDeferred(list[i]->end,
                                              list[j]->begin);
                    added = true;
                }
            }
        }
        return added;
    };

    // First pass only visits handlers completed since the queue last
    // converged: reachability between old vertices cannot change from
    // vertex appends alone (edges point forward), only from Eserial
    // edges — which trigger the full re-scan loop below.
    bool added = false;
    for (auto &[key, q] : st.queues)
        if (single_consumer(key))
            added |= scan(q, q.stable);
    while (added) {
        frontier_.refresh(preds_);
        added = false;
        for (auto &[key, q] : st.queues)
            if (single_consumer(key))
                added |= scan(q, 1);
    }
    for (auto &[key, q] : st.queues)
        if (single_consumer(key))
            q.stable = q.complete.size();
}

void
HbGraph::flush()
{
    assert(stream_ && "flush() requires a streaming graph");
    if (oom_)
        return;
    if (frontier_.size() < recs_.size())
        frontier_.appendVertices(preds_, progPred_);
    if (options_.rules.event)
        streamEventSerial();
    if (frontier_.bytes() > options_.memoryBudgetBytes) {
        DCATCH_WARN() << "streaming HB graph chain frontiers need "
                      << frontier_.bytes() << " bytes, budget is "
                      << options_.memoryBudgetBytes << " — marking OOM";
        oom_ = true;
    }
}

void
HbGraph::finishStream()
{
    assert(stream_ && "finishStream() requires a streaming graph");
    StreamState &st = *stream_;
    assert(!st.finished && "finishStream() called twice");
    st.finished = true;
    if (oom_)
        return;
    if (frontier_.size() < recs_.size())
        frontier_.appendVertices(preds_, progPred_);

    // Threads predicted handler that never opened a segment: the
    // batch build classifies them regular in hindsight — chain their
    // whole logs retroactively (additions are always safe).
    bool retro = false;
    for (StreamState::ThreadState &ts : st.threads) {
        if (!ts.handlerMode || ts.sawOpener)
            continue;
        for (std::size_t i = 1; i < ts.verts.size(); ++i)
            if (addEdge(ts.verts[i - 1], ts.verts[i],
                        &EdgeStats::program)) {
                progPred_[static_cast<std::size_t>(ts.verts[i])] =
                    ts.verts[i - 1];
                frontier_.addEdgeDeferred(ts.verts[i - 1],
                                          ts.verts[i]);
                retro = true;
            }
    }
    if (retro) {
        frontier_.refresh(preds_);
        // Old-vertex reachability changed: previously converged
        // Eserial prefixes may order new pairs.
        for (auto &[key, q] : st.queues)
            q.stable = 0;
    }
    if (options_.rules.event)
        streamEventSerial();
    // Collapse Eserial-serialized handler instances into shared
    // chains, exactly as the batch constructor does after its
    // fixpoint.
    frontier_.repack(preds_);

    std::set<int> threads;
    for (const Record &rec : recs_)
        threads.insert(rec.thread);
    decision_.threads = threads.size();
    decision_.crossEdges = stats_.total() - stats_.program;
    decision_.denseBytes =
        recs_.size() * ((recs_.size() + 63) / 64) * 8;

    if (frontier_.bytes() > options_.memoryBudgetBytes) {
        DCATCH_WARN() << "streaming HB graph chain frontiers need "
                      << frontier_.bytes()
                      << " bytes after repack, budget is "
                      << options_.memoryBudgetBytes << " — marking OOM";
        oom_ = true;
    }
}

} // namespace dcatch::hb
