#include "hb/graph.hh"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hh"

namespace dcatch::hb {

using trace::Record;
using trace::RecordType;

RuleSet
RuleSet::withoutEvent()
{
    RuleSet r;
    r.event = false;
    return r;
}

RuleSet
RuleSet::withoutRpc()
{
    RuleSet r;
    r.rpc = false;
    return r;
}

RuleSet
RuleSet::withoutSocket()
{
    RuleSet r;
    r.socket = false;
    return r;
}

RuleSet
RuleSet::withoutPush()
{
    RuleSet r;
    r.push = false;
    return r;
}

namespace {

/** Should this record be a vertex, given the enabled rule families? */
bool
keepRecord(const Record &rec, const RuleSet &rules)
{
    switch (rec.type) {
      case RecordType::MemRead:
      case RecordType::MemWrite:
      case RecordType::LoopIter:
      case RecordType::LoopExit:
        return true;
      case RecordType::LockAcquire:
      case RecordType::LockRelease:
        // Locks are not part of the HB model (section 2.3).
        return false;
      case RecordType::ThreadCreate:
      case RecordType::ThreadBegin:
      case RecordType::ThreadEnd:
      case RecordType::ThreadJoin:
        return rules.thread;
      case RecordType::EventCreate:
      case RecordType::EventBegin:
      case RecordType::EventEnd:
        return rules.event;
      case RecordType::RpcCreate:
      case RecordType::RpcBegin:
      case RecordType::RpcEnd:
      case RecordType::RpcJoin:
        return rules.rpc;
      case RecordType::MsgSend:
      case RecordType::MsgRecv:
        return rules.socket;
      case RecordType::CoordUpdate:
      case RecordType::CoordPushed:
        return rules.push;
    }
    return true;
}

/** Does this record open a new Pnreg handler segment? */
bool
opensSegment(RecordType type)
{
    return type == RecordType::EventBegin || type == RecordType::RpcBegin ||
           type == RecordType::MsgRecv || type == RecordType::CoordPushed;
}

/** Does this record close the current handler segment (inclusive)? */
bool
closesSegment(RecordType type)
{
    return type == RecordType::EventEnd || type == RecordType::RpcEnd;
}

} // namespace

HbGraph::HbGraph(const trace::TraceStore &store, Options options)
    : options_(options)
{
    std::vector<Record> all = store.allRecords();
    recs_.reserve(all.size());
    for (Record &rec : all)
        if (keepRecord(rec, options_.rules))
            recs_.push_back(std::move(rec));
    preds_.assign(recs_.size(), {});
    progPred_.assign(recs_.size(), -1);
    for (std::size_t v = 0; v < recs_.size(); ++v)
        if (recs_[v].isMemoryAccess())
            memVertices_.push_back(static_cast<int>(v));

    // Reachable-set budget check (Table 8 OOM emulation).
    std::size_t need = recs_.size() * ((recs_.size() + 63) / 64) * 8;
    if (need > options_.memoryBudgetBytes) {
        DCATCH_WARN() << "HB graph reachable sets need " << need
                      << " bytes, budget is "
                      << options_.memoryBudgetBytes << " — marking OOM";
        oom_ = true;
        return;
    }

    buildProgramEdges(store);
    buildPairingEdges();
    close();
    if (options_.rules.event)
        applyEventSerial(store);
}

bool
HbGraph::addEdge(int u, int v, std::size_t EdgeStats::*counter)
{
    if (u == v)
        return false;
    if (u > v) {
        // All well-formed HB edges point forward in the global
        // sequence order; anything else indicates a tracing bug.
        DCATCH_WARN() << "dropping backward HB edge " << u << "->" << v;
        return false;
    }
    preds_[static_cast<std::size_t>(v)].push_back(u);
    ++(stats_.*counter);
    return true;
}

void
HbGraph::buildProgramEdges(const trace::TraceStore &store)
{
    // Group vertices by thread, preserving seq order.
    std::map<int, std::vector<int>> by_thread;
    for (std::size_t v = 0; v < recs_.size(); ++v)
        by_thread[recs_[v].thread].push_back(static_cast<int>(v));
    (void)store;

    for (auto &[tid, verts] : by_thread) {
        // A thread is handler-style if its (filtered) log contains any
        // segment-opening record.  Note this is evaluated after rule
        // filtering: dropping event records makes an event-consumer
        // thread look regular, so Rule-Preg over-orders it — the false
        // negatives of the Table 9 ablation.
        bool handler = false;
        for (int v : verts)
            if (opensSegment(recs_[static_cast<std::size_t>(v)].type)) {
                handler = true;
                break;
            }

        if (!handler) {
            for (std::size_t i = 1; i < verts.size(); ++i)
                if (addEdge(verts[i - 1], verts[i], &EdgeStats::program))
                    progPred_[static_cast<std::size_t>(verts[i])] =
                        verts[i - 1];
            continue;
        }

        // Rule-Pnreg: chain only within one handler instance.
        int prev = -1;
        bool in_segment = false;
        for (int v : verts) {
            RecordType type = recs_[static_cast<std::size_t>(v)].type;
            if (opensSegment(type)) {
                prev = v;
                in_segment = true;
                continue;
            }
            if (!in_segment) {
                prev = -1;
                continue;
            }
            if (addEdge(prev, v, &EdgeStats::program))
                progPred_[static_cast<std::size_t>(v)] = prev;
            prev = v;
            if (closesSegment(type)) {
                in_segment = false;
                prev = -1;
            }
        }
    }
}

void
HbGraph::buildPairingEdges()
{
    // Index vertices by (type, id).
    std::map<std::pair<RecordType, std::string>, std::vector<int>> index;
    for (std::size_t v = 0; v < recs_.size(); ++v)
        index[{recs_[v].type, recs_[v].id}].push_back(static_cast<int>(v));

    auto pair_first = [&](RecordType from, RecordType to,
                          std::size_t EdgeStats::*counter) {
        for (auto &[key, sources] : index) {
            if (key.first != from)
                continue;
            auto it = index.find({to, key.second});
            if (it == index.end())
                continue;
            // Pair positionally: the i-th source with the i-th sink
            // (ids are unique per instance for all current op kinds,
            // so these vectors almost always have size one).
            std::size_t n = std::min(sources.size(), it->second.size());
            for (std::size_t i = 0; i < n; ++i)
                addEdge(sources[i], it->second[i], counter);
        }
    };

    auto pair_broadcast = [&](RecordType from, RecordType to,
                              std::size_t EdgeStats::*counter) {
        for (auto &[key, sources] : index) {
            if (key.first != from)
                continue;
            auto it = index.find({to, key.second});
            if (it == index.end())
                continue;
            for (int src : sources)
                for (int dst : it->second)
                    addEdge(src, dst, counter);
        }
    };

    if (options_.rules.thread) {
        pair_first(RecordType::ThreadCreate, RecordType::ThreadBegin,
                   &EdgeStats::fork);
        pair_first(RecordType::ThreadEnd, RecordType::ThreadJoin,
                   &EdgeStats::join);
    }
    if (options_.rules.event)
        pair_first(RecordType::EventCreate, RecordType::EventBegin,
                   &EdgeStats::eenq);
    if (options_.rules.rpc) {
        pair_first(RecordType::RpcCreate, RecordType::RpcBegin,
                   &EdgeStats::rpc);
        pair_first(RecordType::RpcEnd, RecordType::RpcJoin,
                   &EdgeStats::rpc);
    }
    if (options_.rules.socket)
        pair_first(RecordType::MsgSend, RecordType::MsgRecv,
                   &EdgeStats::socket);
    if (options_.rules.push)
        pair_broadcast(RecordType::CoordUpdate, RecordType::CoordPushed,
                       &EdgeStats::push);
}

void
HbGraph::applyEventSerial(const trace::TraceStore &store)
{
    // Collect, per single-consumer queue, each event's Create / Begin /
    // End vertices.
    struct EventVerts
    {
        int create = -1, begin = -1, end = -1;
    };
    std::map<std::string, std::map<std::string, EventVerts>> queues;
    for (std::size_t v = 0; v < recs_.size(); ++v) {
        const Record &rec = recs_[v];
        if (rec.type != RecordType::EventCreate &&
            rec.type != RecordType::EventBegin &&
            rec.type != RecordType::EventEnd)
            continue;
        std::string queue_id = rec.id.substr(0, rec.id.find('#'));
        auto meta = store.queues().find(queue_id);
        if (meta == store.queues().end() || !meta->second.singleConsumer)
            continue;
        EventVerts &ev = queues[queue_id][rec.id];
        if (rec.type == RecordType::EventCreate)
            ev.create = static_cast<int>(v);
        else if (rec.type == RecordType::EventBegin)
            ev.begin = static_cast<int>(v);
        else
            ev.end = static_cast<int>(v);
    }

    // Fixpoint: adding End(e1) => Begin(e2) edges may order more
    // Create pairs, enabling further edges (section 3.2.1).
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &[queue_id, events] : queues) {
            std::vector<const EventVerts *> list;
            for (auto &[id, ev] : events)
                if (ev.create >= 0 && ev.begin >= 0 && ev.end >= 0)
                    list.push_back(&ev);
            std::sort(list.begin(), list.end(),
                      [](const EventVerts *a, const EventVerts *b) {
                          return a->begin < b->begin;
                      });
            for (std::size_t i = 0; i < list.size(); ++i) {
                for (std::size_t j = i + 1; j < list.size(); ++j) {
                    if (!happensBefore(list[i]->create, list[j]->create))
                        continue;
                    if (happensBefore(list[i]->end, list[j]->begin))
                        continue; // already ordered
                    if (addEdge(list[i]->end, list[j]->begin,
                                &EdgeStats::eserial))
                        changed = true;
                }
            }
        }
        if (changed)
            close();
    }
}

void
HbGraph::close()
{
    std::size_t n = recs_.size();
    ancestors_.assign(n, BitSet(n));
    for (std::size_t v = 0; v < n; ++v) {
        BitSet &anc = ancestors_[v];
        for (int u : preds_[v]) {
            anc.unionWith(ancestors_[static_cast<std::size_t>(u)]);
            anc.set(static_cast<std::size_t>(u));
        }
    }
}

bool
HbGraph::happensBefore(int u, int v) const
{
    if (oom_)
        throw std::runtime_error(
            "HB graph exceeded its memory budget (OOM)");
    if (u == v || v < 0 || u < 0)
        return false;
    if (u > v)
        return false; // edges only point forward in seq order
    return ancestors_[static_cast<std::size_t>(v)].test(
        static_cast<std::size_t>(u));
}

int
HbGraph::findVertex(trace::RecordType type, const std::string &site,
                    const std::string &id, std::int64_t aux) const
{
    for (std::size_t v = 0; v < recs_.size(); ++v) {
        const Record &rec = recs_[v];
        if (rec.type == type && rec.site == site && rec.id == id &&
            (aux < 0 || rec.aux == aux))
            return static_cast<int>(v);
    }
    return -1;
}

void
HbGraph::addEdges(const std::vector<std::pair<int, int>> &edges)
{
    bool added = false;
    for (auto [u, v] : edges)
        if (addEdge(u, v, &EdgeStats::pull))
            added = true;
    if (added)
        close();
}

std::size_t
HbGraph::reachBytes() const
{
    std::size_t bytes = 0;
    for (const BitSet &set : ancestors_)
        bytes += set.byteSize();
    return bytes;
}

} // namespace dcatch::hb
