#include "hb/pull.hh"

#include <algorithm>
#include <map>
#include <string_view>

#include "common/logging.hh"
#include "common/util.hh"

namespace dcatch::hb {

using trace::Record;
using trace::RecordType;

PullResult
PullAnalyzer::analyze(const HbGraph &pass1,
                      const std::vector<detect::Candidate> &candidates)
{
    PullResult result;

    // 1. Find candidates matching a pull/loop protocol shape: a read
    //    whose value feeds a loop-exit condition (possibly through an
    //    RPC return value) per the program model.
    struct Protocol
    {
        std::string var, readSite, loopSite;
    };
    std::vector<Protocol> protocols;
    std::vector<std::string> focus_vars;
    auto consider = [&](const detect::CandidateAccess &side,
                        const std::string &var) {
        if (side.isWrite)
            return;
        auto loop_site = model_.loopExitFedBy(side.site);
        if (!loop_site)
            return;
        for (const Protocol &p : protocols)
            if (p.var == var && p.readSite == side.site &&
                p.loopSite == *loop_site)
                return;
        protocols.push_back({var, side.site, *loop_site});
        if (std::find(focus_vars.begin(), focus_vars.end(), var) ==
            focus_vars.end())
            focus_vars.push_back(var);
    };
    for (const detect::Candidate &cand : candidates) {
        consider(cand.a, cand.var);
        consider(cand.b, cand.var);
    }
    if (protocols.empty())
        return result;
    result.protocolsAnalyzed = static_cast<int>(protocols.size());

    // 2. Focused second run: trace only the protocol variables (all
    //    reads and writes, regardless of scope) plus HB operations.
    Stopwatch watch;
    sim::Simulation rerun(config_);
    trace::TracerConfig tc;
    tc.focusVars = focus_vars;
    rerun.setTracerConfig(tc);
    build_(rerun);
    rerun.run();
    result.rerunSeconds = watch.seconds();

    // The rerun owns a different symbol pool than pass1's trace, so
    // protocol strings are resolved against it here (find, not
    // intern: a symbol the rerun never recorded matches nothing) and
    // rerun symbols cross back to pass1 as strings via findVertex.
    const trace::SymbolPool &rpool = rerun.tracer().store().symbols();
    std::vector<Record> recs = rerun.tracer().store().mergedRecords();

    // 3. For each dynamic loop exit, find the last matching read
    //    before it and the write that produced the value it saw.
    for (const Protocol &proto : protocols) {
        trace::SymId loop_sym = rpool.find(proto.loopSite);
        trace::SymId read_sym = rpool.find(proto.readSite);
        trace::SymId var_sym = rpool.find(proto.var);
        if (loop_sym == trace::kNoSym || var_sym == trace::kNoSym)
            continue;
        for (const Record &exit_rec : recs) {
            if (exit_rec.type != RecordType::LoopExit ||
                exit_rec.site != loop_sym)
                continue;
            const Record *last_read = nullptr;
            for (const Record &r : recs) {
                if (r.seq >= exit_rec.seq)
                    break;
                if (r.type == RecordType::MemRead &&
                    r.site == read_sym && r.id == var_sym)
                    last_read = &r;
            }
            if (!last_read || last_read->aux <= 0)
                continue;
            const Record *writer = nullptr;
            for (const Record &w : recs) {
                if (w.type == RecordType::MemWrite && w.id == var_sym &&
                    w.aux == last_read->aux) {
                    writer = &w;
                    break;
                }
            }
            if (!writer || writer->thread == last_read->thread)
                continue;

            std::string_view writer_site = rpool.view(writer->site);

            // w* in one thread fed the loop exit in another:
            // w* happens-before the loop exit (Rule-Mpull), and the
            // (read, w*) pair is custom synchronization.
            int wv = pass1.findVertex(RecordType::MemWrite, writer_site,
                                      proto.var, writer->aux);
            int lv = pass1.findVertex(RecordType::LoopExit,
                                      proto.loopSite,
                                      rpool.view(exit_rec.id));
            if (wv >= 0 && lv >= 0 && wv < lv)
                result.edges.emplace_back(wv, lv);

            for (const detect::Candidate &cand : candidates) {
                if (cand.var != proto.var)
                    continue;
                bool matches =
                    (cand.a.site == proto.readSite &&
                     cand.b.site == writer_site) ||
                    (cand.b.site == proto.readSite &&
                     cand.a.site == writer_site);
                if (matches)
                    result.suppressedKeys.insert(cand.callstackKey());
            }
            DCATCH_DEBUG() << "pull sync: write " << writer_site
                           << " feeds loop exit " << proto.loopSite;
        }
    }
    return result;
}

std::vector<detect::Candidate>
applyPullResult(const HbGraph &, // graph already re-closed by caller
                const std::vector<detect::Candidate> &candidates,
                const PullResult &result)
{
    std::vector<detect::Candidate> kept;
    for (const detect::Candidate &cand : candidates)
        if (!result.suppressedKeys.count(cand.callstackKey()))
            kept.push_back(cand);
    return kept;
}

} // namespace dcatch::hb
