#include "hb/pull.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "common/util.hh"

namespace dcatch::hb {

using trace::Record;
using trace::RecordType;

PullResult
PullAnalyzer::analyze(const HbGraph &pass1,
                      const std::vector<detect::Candidate> &candidates)
{
    PullResult result;

    // 1. Find candidates matching a pull/loop protocol shape: a read
    //    whose value feeds a loop-exit condition (possibly through an
    //    RPC return value) per the program model.
    struct Protocol
    {
        std::string var, readSite, loopSite;
    };
    std::vector<Protocol> protocols;
    std::vector<std::string> focus_vars;
    auto consider = [&](const detect::CandidateAccess &side,
                        const std::string &var) {
        if (side.isWrite)
            return;
        auto loop_site = model_.loopExitFedBy(side.site);
        if (!loop_site)
            return;
        for (const Protocol &p : protocols)
            if (p.var == var && p.readSite == side.site &&
                p.loopSite == *loop_site)
                return;
        protocols.push_back({var, side.site, *loop_site});
        if (std::find(focus_vars.begin(), focus_vars.end(), var) ==
            focus_vars.end())
            focus_vars.push_back(var);
    };
    for (const detect::Candidate &cand : candidates) {
        consider(cand.a, cand.var);
        consider(cand.b, cand.var);
    }
    if (protocols.empty())
        return result;
    result.protocolsAnalyzed = static_cast<int>(protocols.size());

    // 2. Focused second run: trace only the protocol variables (all
    //    reads and writes, regardless of scope) plus HB operations.
    Stopwatch watch;
    sim::Simulation rerun(config_);
    trace::TracerConfig tc;
    tc.focusVars = focus_vars;
    rerun.setTracerConfig(tc);
    build_(rerun);
    rerun.run();
    result.rerunSeconds = watch.seconds();

    std::vector<Record> recs = rerun.tracer().store().allRecords();

    // 3. For each dynamic loop exit, find the last matching read
    //    before it and the write that produced the value it saw.
    for (const Protocol &proto : protocols) {
        for (const Record &exit_rec : recs) {
            if (exit_rec.type != RecordType::LoopExit ||
                exit_rec.site != proto.loopSite)
                continue;
            const Record *last_read = nullptr;
            for (const Record &r : recs) {
                if (r.seq >= exit_rec.seq)
                    break;
                if (r.type == RecordType::MemRead &&
                    r.site == proto.readSite && r.id == proto.var)
                    last_read = &r;
            }
            if (!last_read || last_read->aux <= 0)
                continue;
            const Record *writer = nullptr;
            for (const Record &w : recs) {
                if (w.type == RecordType::MemWrite && w.id == proto.var &&
                    w.aux == last_read->aux) {
                    writer = &w;
                    break;
                }
            }
            if (!writer || writer->thread == last_read->thread)
                continue;

            // w* in one thread fed the loop exit in another:
            // w* happens-before the loop exit (Rule-Mpull), and the
            // (read, w*) pair is custom synchronization.
            int wv = pass1.findVertex(RecordType::MemWrite, writer->site,
                                      proto.var, writer->aux);
            int lv = pass1.findVertex(RecordType::LoopExit,
                                      proto.loopSite, exit_rec.id);
            if (wv >= 0 && lv >= 0 && wv < lv)
                result.edges.emplace_back(wv, lv);

            for (const detect::Candidate &cand : candidates) {
                if (cand.var != proto.var)
                    continue;
                bool matches =
                    (cand.a.site == proto.readSite &&
                     cand.b.site == writer->site) ||
                    (cand.b.site == proto.readSite &&
                     cand.a.site == writer->site);
                if (matches)
                    result.suppressedKeys.insert(cand.callstackKey());
            }
            DCATCH_DEBUG() << "pull sync: write " << writer->site
                           << " feeds loop exit " << proto.loopSite;
        }
    }
    return result;
}

std::vector<detect::Candidate>
applyPullResult(const HbGraph &, // graph already re-closed by caller
                const std::vector<detect::Candidate> &candidates,
                const PullResult &result)
{
    std::vector<detect::Candidate> kept;
    for (const detect::Candidate &cand : candidates)
        if (!result.suppressedKeys.count(cand.callstackKey()))
            kept.push_back(cand);
    return kept;
}

} // namespace dcatch::hb
