/**
 * @file
 * Chunked trace analysis — the scalability fallback the paper
 * proposes for traces whose reachable sets exceed memory (section
 * 7.2, false-negative discussion): "DCatch will need to chunk the
 * traces and conduct detection within each chunk, an approach used by
 * previous LCbug detection tools."
 *
 * The trace is split into overlapping windows by global sequence
 * number; a full HB graph is built per window (each window fits the
 * memory budget) and candidates are unioned across windows.  Races
 * whose two accesses fall farther apart than a window are missed —
 * the documented false-negative trade-off.  Within-window verdicts
 * are exact for all base rules (every HB path between two in-window
 * records only visits records between them in sequence order, hence
 * inside the window); only derived Rule-Eserial edges can be lost
 * when an event's Create fell before the window, which errs toward
 * reporting (a false positive the trigger module then filters).
 */

#ifndef DCATCH_HB_CHUNKED_HH
#define DCATCH_HB_CHUNKED_HH

#include <cstddef>
#include <vector>

#include "detect/report.hh"
#include "hb/graph.hh"
#include "trace/trace_store.hh"

namespace dcatch::hb {

/** Chunking configuration. */
struct ChunkOptions
{
    /** Records per window. */
    std::size_t windowRecords = 1500;

    /** Records shared between consecutive windows, so nearby races
     *  spanning a boundary are still seen together. */
    std::size_t overlapRecords = 500;

    /** Per-window HB graph options (rules + memory budget). */
    HbGraph::Options graph;
};

/** Result of a chunked detection run. */
struct ChunkedResult
{
    std::vector<detect::Candidate> candidates; ///< unioned, deduped
    int windows = 0;
    std::size_t maxWindowReachBytes = 0; ///< peak per-window memory
    bool anyWindowOom = false; ///< a window still exceeded the budget
};

/**
 * Run detection window by window.
 *
 * Candidate dedup uses callstack keys, like the whole-trace detector;
 * a pair seen in several windows is reported once.
 */
ChunkedResult chunkedDetect(const trace::TraceStore &store,
                            ChunkOptions options = {});

} // namespace dcatch::hb

#endif // DCATCH_HB_CHUNKED_HH
