/**
 * @file
 * The happens-before graph (paper sections 2 and 3.2).
 *
 * Vertices are trace records; edges encode the MTEP rules:
 *
 *   Rule-Mrpc   Create(r,n1) => Begin(r,n2); End(r,n2) => Join(r,n1)
 *   Rule-Msoc   Send(m,n1)   => Recv(m,n2)
 *   Rule-Mpush  Update(s,n1) => Pushed(s,n2)
 *   Rule-Mpull  (added separately by the pull analysis)
 *   Rule-Tfork  Create(t)    => Begin(t)
 *   Rule-Tjoin  End(t)       => Join(t)
 *   Rule-Eenq   Create(e)    => Begin(e)
 *   Rule-Eserial End(e1)     => Begin(e2) for single-consumer queues,
 *                               applied to fixpoint as the last rule
 *   Rule-Preg   program order within a regular thread
 *   Rule-Pnreg  program order only within one handler instance
 *
 * Concurrency queries run against one of two reachability engines
 * (section 3.2.2, Raychev et al.):
 *
 *  - `Engine::ChainFrontier` (default): chain decomposition + sparse
 *    shared frontier rows (common/chain_frontier.hh).  O(V * C)
 *    worst-case memory with C chains, near-linear in practice, and
 *    *incremental*: Rule-Eserial and pull edges propagate along the
 *    affected cone instead of re-closing the whole graph.
 *  - `Engine::Dense`: one ancestor bit array per vertex, O(V^2 / 8)
 *    bytes, full re-closure after every derived-edge batch.  Kept as
 *    the cross-validation baseline and for the Table 8 out-of-memory
 *    emulation (the paper's JVM-heap exhaustion corresponds to this
 *    dense representation).
 *
 * Rule families can be disabled to reproduce the Table 9 ablation:
 * disabling a family removes the corresponding records entirely (as
 * if the tracer had not logged them), which both removes edges (false
 * positives) and degrades handler-thread segmentation to Rule-Preg
 * (false negatives) — the same two effects the paper describes.
 */

#ifndef DCATCH_HB_GRAPH_HH
#define DCATCH_HB_GRAPH_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bitset.hh"
#include "common/chain_frontier.hh"
#include "trace/trace_store.hh"

namespace dcatch::hb {

/** Which HB rule families are applied. */
struct RuleSet
{
    bool thread = true; ///< Tfork/Tjoin
    bool event = true;  ///< Eenq/Eserial + event segmentation
    bool rpc = true;    ///< Mrpc + RPC segmentation
    bool socket = true; ///< Msoc + message segmentation
    bool push = true;   ///< Mpush + watcher segmentation

    /** All rules enabled. */
    static RuleSet all() { return RuleSet{}; }

    /** Named single-family ablations (Table 9 columns). */
    static RuleSet withoutEvent();
    static RuleSet withoutRpc();
    static RuleSet withoutSocket();
    static RuleSet withoutPush();
};

/** Edge counts per rule, for diagnostics and the ablation bench. */
struct EdgeStats
{
    std::size_t program = 0;
    std::size_t fork = 0, join = 0;
    std::size_t eenq = 0, eserial = 0;
    std::size_t rpc = 0;
    std::size_t socket = 0;
    std::size_t push = 0;
    std::size_t pull = 0;

    std::size_t
    total() const
    {
        return program + fork + join + eenq + eserial + rpc + socket +
               push + pull;
    }
};

/** The happens-before DAG over one run's trace. */
class HbGraph
{
  public:
    /** Reachability engine choice (see file comment). */
    enum class Engine
    {
        ChainFrontier, ///< chain decomposition, incremental closure
        Dense,         ///< per-vertex ancestor bit arrays (baseline)
    };

    /** Construction options. */
    struct Options
    {
        RuleSet rules = RuleSet::all();

        Engine engine = Engine::ChainFrontier;

        /**
         * Budget for the reachability representation of the chosen
         * engine.  Exceeding it marks the graph "out of memory"
         * (mirrors the paper's Table 8, where full-memory traces
         * exhaust a 50 GB JVM heap) — queries then throw and the
         * pipeline reports the analysis as OOM.
         */
        std::size_t memoryBudgetBytes = 512ull << 20;
    };

    HbGraph(const trace::TraceStore &store, Options options);

    /** Construct with default options (all rules, default budget). */
    explicit HbGraph(const trace::TraceStore &store)
        : HbGraph(store, Options())
    {
    }

    /** True when the reachability budget was exceeded. */
    bool oom() const { return oom_; }

    /** The engine answering reachability queries. */
    Engine engine() const { return options_.engine; }

    /** Short engine name for reports and benches. */
    const char *engineName() const;

    /** Number of vertices (records). */
    std::size_t size() const { return recs_.size(); }

    /** Record at vertex @p v (POD row; symbol fields are SymIds). */
    const trace::Record &record(int v) const
    {
        return recs_[static_cast<std::size_t>(v)];
    }

    /** The symbol pool the vertices' SymId fields resolve against. */
    const trace::SymbolPool &symbols() const { return *pool_; }

    /** Resolved symbol text of vertex @p v's fields. */
    std::string_view site(int v) const
    {
        return pool_->view(record(v).site);
    }
    std::string_view id(int v) const { return pool_->view(record(v).id); }
    std::string_view callstack(int v) const
    {
        return pool_->view(record(v).callstack);
    }

    /** Serialized trace line of vertex @p v, for diagnostics. */
    std::string recordLine(int v) const
    {
        return record(v).toLine(*pool_);
    }

    /** Vertex indices of all memory-access records. */
    const std::vector<int> &memAccesses() const { return memVertices_; }

    /** Does vertex @p u happen before vertex @p v? */
    bool happensBefore(int u, int v) const;

    /** Are vertices @p u and @p v concurrent? */
    bool
    concurrent(int u, int v) const
    {
        return u != v && !happensBefore(u, v) && !happensBefore(v, u);
    }

    /**
     * Find a vertex by record identity (hash lookup).
     * @param aux matched when >= 0; pass -1 to ignore
     * @return vertex index, or -1 when absent
     */
    int findVertex(trace::RecordType type, trace::SymId site,
                   trace::SymId id, std::int64_t aux = -1) const;

    /** String overload: resolves @p site / @p id against the pool
     *  first (symbols never interned cannot name a vertex). */
    int findVertex(trace::RecordType type, std::string_view site,
                   std::string_view id, std::int64_t aux = -1) const;

    /**
     * Add extra HB edges (Rule-Mpull results) and update the closure
     * — incrementally along the affected cone for the chain-frontier
     * engine, by full re-closure for the dense engine.  Edges must go
     * from an earlier to a later vertex.
     */
    void addEdges(const std::vector<std::pair<int, int>> &edges);

    /** Edge counts per rule. */
    const EdgeStats &stats() const { return stats_; }

    /** Bytes held by the reachability representation. */
    std::size_t reachBytes() const;

    /** Chains in the decomposition (0 for the dense engine). */
    std::size_t chainCount() const;

    /** Materialised frontier rows (0 for the dense engine). */
    std::size_t frontierRows() const;

    /** Edges integrated incrementally instead of by re-closure. */
    std::size_t incrementalUpdates() const;

    /** Full closure recomputations run (dense engine only). */
    std::size_t closureRuns() const { return closureRuns_; }

    /** Predecessor lists (in-edges) per vertex — used by alternative
     *  HB engines built on the same edge set (vector clocks). */
    const std::vector<std::vector<int>> &predecessors() const
    {
        return preds_;
    }

    /** Program-order (chain) predecessor per vertex, -1 when the
     *  vertex starts a Pnreg segment or a regular thread. */
    const std::vector<int> &programPredecessors() const
    {
        return progPred_;
    }

  private:
    /** Append an edge u -> v (u must precede v). */
    bool addEdge(int u, int v, std::size_t EdgeStats::*counter);

    /** Hash indexes for findVertex and pairing-edge construction. */
    void buildIndexes();

    /** Program-order edges with Preg/Pnreg segmentation. */
    void buildProgramEdges(const trace::TraceStore &store);

    /** Pairing edges (fork/join, enq, rpc, socket, push). */
    void buildPairingEdges();

    /** Rule-Eserial fixpoint (incremental or re-closing, per engine). */
    void applyEventSerial(const trace::TraceStore &store);

    /** Incorporate a just-added edge into the closure. */
    void integrateEdge(int u, int v);

    /** Recompute all dense reachable sets in topological order. */
    void close();

    static constexpr std::size_t kRecordTypes =
        static_cast<std::size_t>(trace::RecordType::LoopExit) + 1;

    Options options_;
    std::shared_ptr<const trace::SymbolPool> pool_;
    std::vector<trace::Record> recs_;
    std::vector<std::vector<int>> preds_;
    std::vector<int> progPred_;
    std::vector<int> memVertices_;
    EdgeStats stats_;
    bool oom_ = false;
    std::size_t closureRuns_ = 0;

    /** Vertices per (type, id), ascending — drives pairing edges. */
    std::array<std::unordered_map<trace::SymId, std::vector<int>>,
               kRecordTypes>
        byTypeId_;
    /** Vertices per (type, site, id), ascending — drives findVertex.
     *  Keyed by the packed (site, id) SymId pair. */
    std::array<std::unordered_map<std::uint64_t, std::vector<int>>,
               kRecordTypes>
        vertexIndex_;

    std::vector<BitSet> ancestors_;  ///< dense engine state
    ChainFrontierIndex frontier_;    ///< chain-frontier engine state
};

} // namespace dcatch::hb

#endif // DCATCH_HB_GRAPH_HH
