/**
 * @file
 * The happens-before graph (paper sections 2 and 3.2).
 *
 * Vertices are trace records; edges encode the MTEP rules:
 *
 *   Rule-Mrpc   Create(r,n1) => Begin(r,n2); End(r,n2) => Join(r,n1)
 *   Rule-Msoc   Send(m,n1)   => Recv(m,n2)
 *   Rule-Mpush  Update(s,n1) => Pushed(s,n2)
 *   Rule-Mpull  (added separately by the pull analysis)
 *   Rule-Tfork  Create(t)    => Begin(t)
 *   Rule-Tjoin  End(t)       => Join(t)
 *   Rule-Eenq   Create(e)    => Begin(e)
 *   Rule-Eserial End(e1)     => Begin(e2) for single-consumer queues,
 *                               applied to fixpoint as the last rule
 *   Rule-Preg   program order within a regular thread
 *   Rule-Pnreg  program order only within one handler instance
 *
 * Concurrency queries run against one of three reachability engines
 * (section 3.2.2, Raychev et al.), or an adaptive selector:
 *
 *  - `Engine::ChainFrontier`: chain decomposition + sparse shared
 *    frontier rows (common/chain_frontier.hh).  O(V * C) worst-case
 *    memory with C chains, near-linear in practice, and
 *    *incremental*: Rule-Eserial and pull edges propagate along the
 *    affected cone instead of re-closing the whole graph.
 *  - `Engine::Dense`: one ancestor bit array per vertex, O(V^2 / 8)
 *    bytes, full re-closure after every derived-edge batch.  Kept as
 *    the cross-validation baseline and for the Table 8 out-of-memory
 *    emulation (the paper's JVM-heap exhaustion corresponds to this
 *    dense representation).  On small traces its word-parallel bit
 *    rows beat the sparse index outright.
 *  - `Engine::VectorClock`: the per-segment vector-timestamp baseline
 *    the paper rejects (hb/vector_clock.hh), selectable here so the
 *    cross-validation harness and the CLI can drive all engines
 *    through one interface.
 *  - `Engine::Auto` (the pipeline default): picks Dense or
 *    ChainFrontier per trace from its shape — vertex count,
 *    cross-thread edge density, and the dense footprint against the
 *    memory budget (see decide()).  The crossover vertex cutoff is
 *    calibrated by bench/engine_crossover; docs/hb_auto_engine.md
 *    documents the model.
 *
 * Rule families can be disabled to reproduce the Table 9 ablation:
 * disabling a family removes the corresponding records entirely (as
 * if the tracer had not logged them), which both removes edges (false
 * positives) and degrades handler-thread segmentation to Rule-Preg
 * (false negatives) — the same two effects the paper describes.
 */

#ifndef DCATCH_HB_GRAPH_HH
#define DCATCH_HB_GRAPH_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bitset.hh"
#include "common/chain_frontier.hh"
#include "trace/trace_store.hh"

namespace dcatch {
class TaskPool;
}

namespace dcatch::hb {

class VectorClockGraph;

/** Which HB rule families are applied. */
struct RuleSet
{
    bool thread = true; ///< Tfork/Tjoin
    bool event = true;  ///< Eenq/Eserial + event segmentation
    bool rpc = true;    ///< Mrpc + RPC segmentation
    bool socket = true; ///< Msoc + message segmentation
    bool push = true;   ///< Mpush + watcher segmentation

    /** All rules enabled. */
    static RuleSet all() { return RuleSet{}; }

    /** Named single-family ablations (Table 9 columns). */
    static RuleSet withoutEvent();
    static RuleSet withoutRpc();
    static RuleSet withoutSocket();
    static RuleSet withoutPush();
};

/** Edge counts per rule, for diagnostics and the ablation bench. */
struct EdgeStats
{
    std::size_t program = 0;
    std::size_t fork = 0, join = 0;
    std::size_t eenq = 0, eserial = 0;
    std::size_t rpc = 0;
    std::size_t socket = 0;
    std::size_t push = 0;
    std::size_t pull = 0;

    std::size_t
    total() const
    {
        return program + fork + join + eenq + eserial + rpc + socket +
               push + pull;
    }
};

/** The happens-before DAG over one run's trace. */
class HbGraph
{
  public:
    /** Reachability engine choice (see file comment). */
    enum class Engine
    {
        ChainFrontier, ///< chain decomposition, incremental closure
        Dense,         ///< per-vertex ancestor bit arrays (baseline)
        VectorClock,   ///< per-segment vector timestamps (baseline)
        Auto,          ///< pick Dense vs ChainFrontier from trace shape
    };

    /**
     * Default Auto crossover: traces at or below this many vertices
     * run Dense (budget permitting), larger ones ChainFrontier.  The
     * value is calibrated against bench/engine_crossover output
     * (BENCH_crossover.json); the density term in decide() can raise
     * the effective cutoff up to 2x for edge-heavy traces.
     */
    static constexpr std::size_t kAutoDenseVertexCutoff = 3000;

    /**
     * How Engine::Auto resolved (recorded for every graph, whatever
     * the requested engine, so reports can show the inputs the
     * selector saw).
     */
    struct EngineDecision
    {
        Engine requested = Engine::Auto;
        Engine resolved = Engine::ChainFrontier;
        std::size_t vertices = 0;   ///< HB vertices (kept records)
        std::size_t threads = 0;    ///< distinct trace threads
        std::size_t crossEdges = 0; ///< non-program (cross-thread) edges
        std::size_t denseBytes = 0; ///< dense bit-array footprint
        std::size_t budgetBytes = 0;
        std::size_t vertexCutoff = 0;    ///< configured crossover knob
        std::size_t effectiveCutoff = 0; ///< after the density scaling
    };

    /**
     * The pure Auto selection model: Dense iff the trace is small
     * enough that one word-parallel closure beats building the sparse
     * index, and the dense rows fit the budget with 2x headroom.
     * Cross-edge density scales the vertex cutoff up to 2x — dense
     * traces fatten frontier rows, moving the crossover out.
     * Deterministic, integer-only, unit-tested both sides in
     * tests/hb/auto_engine_test.cc.
     */
    static EngineDecision decide(Engine requested, std::size_t vertices,
                                 std::size_t threads,
                                 std::size_t crossEdges,
                                 std::size_t budgetBytes,
                                 std::size_t vertexCutoff);

    /** Construction options. */
    struct Options
    {
        RuleSet rules = RuleSet::all();

        Engine engine = Engine::ChainFrontier;

        /**
         * Budget for the reachability representation of the chosen
         * engine.  Exceeding it marks the graph "out of memory"
         * (mirrors the paper's Table 8, where full-memory traces
         * exhaust a 50 GB JVM heap) — queries then throw and the
         * pipeline reports the analysis as OOM.
         */
        std::size_t memoryBudgetBytes = 512ull << 20;

        /**
         * Engine::Auto crossover knob (vertices at or below run
         * Dense).  Exposed so the crossover bench and the forced-
         * selection unit tests can drive both sides of the model.
         */
        std::size_t autoDenseVertexCutoff = kAutoDenseVertexCutoff;

        /**
         * Optional worker pool for the construction-time index build
         * (hash indexes and program edges are independent and build
         * concurrently).  Results are identical with or without a
         * pool; pass nullptr (default) for the serial build.  The
         * pool must not currently be running a parallelFor.
         */
        TaskPool *pool = nullptr;

        /**
         * Closure-overlap hook (chain engine only).  When tasks > 0
         * with a pool of > 1 jobs, the constructor runs derived-edge
         * closure + repack as task 0 of one parallelFor wave and
         * invokes work(graph, snapshot, task) for tasks 0..tasks-1
         * concurrently, where snapshot is a copy of the chain-
         * frontier index taken right after the initial build (program
         * and pairing edges fully closed; derived Eserial edges not
         * yet applied).  The callback runs mid-construction: it may
         * read only state that is final before closure — records,
         * memAccesses, symbols, size — and must answer reachability
         * against the snapshot, never the graph.  Snapshot verdicts
         * are monotone-safe: edges only accumulate, so "ordered in
         * the snapshot" is final.  Closure results and every graph
         * stat are identical with or without the hook.
         */
        struct ClosureOverlap
        {
            std::size_t tasks = 0;
            std::function<void(const HbGraph &,
                               const ChainFrontierIndex &, std::size_t)>
                work;
        };
        ClosureOverlap overlap;
    };

    HbGraph(const trace::TraceStore &store, Options options);
    ~HbGraph();

    /** Construct with default options (all rules, default budget). */
    explicit HbGraph(const trace::TraceStore &store)
        : HbGraph(store, Options())
    {
    }

    /**
     * Streaming construction (the dcatchd path): the graph starts
     * empty and grows by append() as records arrive, instead of
     * rebuilding from a complete trace.  @p store is the session's
     * live store — consulted for queue/thread metadata, which must be
     * registered before the records that depend on it.  Records must
     * be appended in ascending global seq order (the daemon's
     * watermark guarantees this); program and pairing edges integrate
     * immediately, vertices batch into the chain-frontier index at
     * the next flush(), and the Rule-Eserial fixpoint re-runs
     * incrementally per flush.  Only Engine::ChainFrontier supports
     * incremental closure, so the engine is forced.
     *
     * Reachability after finishStream() equals the batch graph's over
     * the same trace whenever streamExact() — mid-stream it may only
     * under-approximate (missing not-yet-derivable edges), so online
     * candidate sets are supersets of the final one.
     */
    static std::unique_ptr<HbGraph>
    streaming(const trace::TraceStore &store, Options options);

    /** True for graphs made by streaming(). */
    bool isStreaming() const { return stream_ != nullptr; }

    /** Append one record (streaming graphs only; ascending seq). */
    void append(const trace::Record &rec);

    /** Append a batch of records in seq order (streaming only). */
    void
    append(const std::vector<trace::Record> &batch)
    {
        for (const trace::Record &rec : batch)
            append(rec);
    }

    /**
     * Close an epoch: integrate appended vertices into the
     * reachability index, re-run the Rule-Eserial fixpoint over the
     * events complete so far, and re-check the memory budget.
     * happensBefore()/concurrent() are exact for the appended prefix
     * afterwards (modulo edges only derivable from future records).
     */
    void flush();

    /**
     * Final flush at end-of-stream: applies the deferred
     * program-order decision for threads that never revealed a
     * handler segment (the batch build classifies them regular in
     * hindsight), converges the Eserial fixpoint, and repacks the
     * chain decomposition.  No append() after this.
     */
    void finishStream();

    /**
     * Did incremental construction preserve exact batch semantics?
     * False only when a thread a ThreadMeta promised regular (and was
     * therefore chained eagerly) later opened a handler segment —
     * edges cannot be retracted, so the caller must rebuild a batch
     * graph from the accumulated store for the authoritative report.
     * Threads without metadata always stream exactly.
     */
    bool streamExact() const;

    /** True when the reachability budget was exceeded. */
    bool oom() const { return oom_; }

    /** The engine answering reachability queries (never Auto). */
    Engine engine() const { return engine_; }

    /** The engine the caller asked for (possibly Auto). */
    Engine requestedEngine() const { return options_.engine; }

    /** How the engine was (or would have been) selected. */
    const EngineDecision &decision() const { return decision_; }

    /** Short engine name for reports and benches (resolved engine). */
    const char *engineName() const;

    /** Short name of any engine value ("auto" included). */
    static const char *name(Engine engine);

    /** Number of vertices (records). */
    std::size_t size() const { return recs_.size(); }

    /** Record at vertex @p v (POD row; symbol fields are SymIds). */
    const trace::Record &record(int v) const
    {
        return recs_[static_cast<std::size_t>(v)];
    }

    /** The symbol pool the vertices' SymId fields resolve against. */
    const trace::SymbolPool &symbols() const { return *pool_; }

    /** Resolved symbol text of vertex @p v's fields. */
    std::string_view site(int v) const
    {
        return pool_->view(record(v).site);
    }
    std::string_view id(int v) const { return pool_->view(record(v).id); }
    std::string_view callstack(int v) const
    {
        return pool_->view(record(v).callstack);
    }

    /** Serialized trace line of vertex @p v, for diagnostics. */
    std::string recordLine(int v) const
    {
        return record(v).toLine(*pool_);
    }

    /** Vertex indices of all memory-access records. */
    const std::vector<int> &memAccesses() const { return memVertices_; }

    /** Does vertex @p u happen before vertex @p v? */
    bool happensBefore(int u, int v) const;

    /** Are vertices @p u and @p v concurrent? */
    bool
    concurrent(int u, int v) const
    {
        return u != v && !happensBefore(u, v) && !happensBefore(v, u);
    }

    /**
     * Find a vertex by record identity (hash lookup).
     * @param aux matched when >= 0; pass -1 to ignore
     * @return vertex index, or -1 when absent
     */
    int findVertex(trace::RecordType type, trace::SymId site,
                   trace::SymId id, std::int64_t aux = -1) const;

    /** String overload: resolves @p site / @p id against the pool
     *  first (symbols never interned cannot name a vertex). */
    int findVertex(trace::RecordType type, std::string_view site,
                   std::string_view id, std::int64_t aux = -1) const;

    /**
     * Add extra HB edges (Rule-Mpull results) and update the closure
     * — incrementally along the affected cone for the chain-frontier
     * engine, by full re-closure for the dense engine.  Edges must go
     * from an earlier to a later vertex.
     */
    void addEdges(const std::vector<std::pair<int, int>> &edges);

    /** Edge counts per rule. */
    const EdgeStats &stats() const { return stats_; }

    /** Bytes held by the reachability representation. */
    std::size_t reachBytes() const;

    /** Chains in the decomposition (0 for the dense engine). */
    std::size_t chainCount() const;

    /** Materialised frontier rows (0 for the dense engine). */
    std::size_t frontierRows() const;

    /** Edges integrated incrementally instead of by re-closure. */
    std::size_t incrementalUpdates() const;

    /** Full closure recomputations run (dense engine only). */
    std::size_t closureRuns() const { return closureRuns_; }

    /** Predecessor lists (in-edges) per vertex — used by alternative
     *  HB engines built on the same edge set (vector clocks). */
    const std::vector<std::vector<int>> &predecessors() const
    {
        return preds_;
    }

    /** Program-order (chain) predecessor per vertex, -1 when the
     *  vertex starts a Pnreg segment or a regular thread. */
    const std::vector<int> &programPredecessors() const
    {
        return progPred_;
    }

  private:
    struct StreamState; ///< incremental-construction state (graph.cc)
    struct StreamTag
    {
    };
    HbGraph(StreamTag, const trace::TraceStore &store, Options options);

    /** Incremental program-order edges for one appended record. */
    void streamProgramEdge(int v, const trace::Record &rec);

    /** Incremental pairing edges for one appended record. */
    void streamPairingEdges(int v, const trace::Record &rec);

    /** Per-flush incremental Rule-Eserial fixpoint. */
    void streamEventSerial();

    /** Append an edge u -> v (u must precede v). */
    bool addEdge(int u, int v, std::size_t EdgeStats::*counter);

    /** Hash indexes for findVertex and pairing-edge construction. */
    void buildIndexes();

    /** Program-order edges with Preg/Pnreg segmentation. */
    void buildProgramEdges(const trace::TraceStore &store);

    /** Pairing edges (fork/join, enq, rpc, socket, push). */
    void buildPairingEdges();

    /** Rule-Eserial fixpoint (incremental or re-closing, per engine). */
    void applyEventSerial(const trace::TraceStore &store);

    /** Incorporate a just-added edge into the closure. */
    void integrateEdge(int u, int v);

    /** Recompute all dense reachable sets in topological order. */
    void close();

    /** Re-close after a derived-edge batch (Dense bit arrays or a
     *  vector-clock rebuild; no-op for the incremental engine). */
    void closeFull();

    static constexpr std::size_t kRecordTypes =
        static_cast<std::size_t>(trace::RecordType::LoopExit) + 1;

    Options options_;
    Engine engine_ = Engine::ChainFrontier; ///< resolved (never Auto)
    EngineDecision decision_;
    std::shared_ptr<const trace::SymbolPool> pool_;
    std::vector<trace::Record> recs_;
    std::vector<std::vector<int>> preds_;
    std::vector<int> progPred_;
    std::vector<int> memVertices_;
    EdgeStats stats_;
    bool oom_ = false;
    std::size_t closureRuns_ = 0;

    /** Vertices per (type, id), ascending — drives pairing edges. */
    std::array<std::unordered_map<trace::SymId, std::vector<int>>,
               kRecordTypes>
        byTypeId_;
    /** Vertices per (type, site, id), ascending — drives findVertex.
     *  Keyed by the packed (site, id) SymId pair. */
    std::array<std::unordered_map<std::uint64_t, std::vector<int>>,
               kRecordTypes>
        vertexIndex_;

    std::vector<BitSet> ancestors_;  ///< dense engine state
    ChainFrontierIndex frontier_;    ///< chain-frontier engine state
    std::unique_ptr<VectorClockGraph> vc_; ///< vector-clock engine state
    std::unique_ptr<StreamState> stream_;  ///< non-null when streaming
};

} // namespace dcatch::hb

#endif // DCATCH_HB_GRAPH_HH
