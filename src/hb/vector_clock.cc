#include "hb/vector_clock.hh"

namespace dcatch::hb {

VectorClockGraph::VectorClockGraph(const HbGraph &graph)
{
    std::size_t n = graph.size();
    clocks_.resize(n);
    chainOf_.assign(n, -1);
    tickOf_.assign(n, 0);

    const auto &preds = graph.predecessors();
    const auto &prog = graph.programPredecessors();

    // Vertices are already in topological (sequence) order.
    for (std::size_t v = 0; v < n; ++v) {
        // Chain decomposition: continue the program-order chain when
        // one exists; otherwise open a fresh dimension — one per
        // handler instance / regular thread / isolated vertex, which
        // is exactly the "each event handler and RPC function
        // contributes one dimension" observation of section 3.2.2.
        int chain;
        if (prog[v] >= 0) {
            chain = chainOf_[static_cast<std::size_t>(prog[v])];
            tickOf_[v] = tickOf_[static_cast<std::size_t>(prog[v])] + 1;
        } else {
            chain = nextDimension_++;
            tickOf_[v] = 1;
        }
        chainOf_[v] = chain;

        VectorClock &clock = clocks_[v];
        for (int u : preds[v])
            clock.merge(clocks_[static_cast<std::size_t>(u)]);
        clock.tick(chain);
        // The own-dimension value must reflect the chain position.
        // (merge + tick already gives exactly tickOf_ because the
        // chain predecessor carried tickOf_-1 in this dimension.)
    }
}

bool
VectorClockGraph::happensBefore(int u, int v) const
{
    if (u == v || u < 0 || v < 0)
        return false;
    auto su = static_cast<std::size_t>(u);
    auto sv = static_cast<std::size_t>(v);
    // Same chain: ordered by chain position.
    if (chainOf_[su] == chainOf_[sv])
        return tickOf_[su] < tickOf_[sv];
    // Chain-decomposition query: u reaches v iff v's timestamp in
    // u's chain dimension has advanced to (at least) u's tick.
    return clocks_[sv].get(chainOf_[su]) >= tickOf_[su];
}

std::size_t
VectorClockGraph::clockBytes() const
{
    std::size_t bytes = 0;
    for (const VectorClock &clock : clocks_)
        bytes += clock.byteSize();
    return bytes;
}

} // namespace dcatch::hb
