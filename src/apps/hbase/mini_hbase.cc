#include "apps/hbase/mini_hbase.hh"

#include <memory>

#include "apps/common.hh"
#include "runtime/shared.hh"

namespace dcatch::apps::hb {

using namespace dcatch::sim;

namespace {

constexpr const char *kUnassignedPath = "/hbase/unassigned/r1";
constexpr const char *kRegionStatePrefix = "/hbase/region/";

/** Shared state of the mini HBase deployment. */
struct State
{
    explicit State(Node &master)
        : regionsToOpen(master, "regionsToOpen"),
          tableState(master, "tableState", "ENABLED"),
          schemaVersion(master, "schemaVersion", "v1"),
          hrsReady(master, "hrsReady", 0),
          enableRequested(master, "enableRequested", 0),
          regionMetrics(master, "regionMetrics", 0)
    {
    }

    SharedMap<std::string, std::string> regionsToOpen;
    SharedVar<std::string> tableState;
    SharedVar<std::string> schemaVersion;
    SharedVar<int> hrsReady;
    SharedVar<int> enableRequested;
    SharedVar<int> regionMetrics; ///< impact-free metrics race
    bool hrsReadyPlain = false;
};

void
installMaster(Simulation &sim, Node &master,
              const std::shared_ptr<State> &st)
{
    // Two independent single-consumer executors, like the master's
    // split/table handler pools: handlers across queues run
    // concurrently, handlers within a queue are serialized.
    EventQueue &split_q = master.addEventQueue("splitQ", 1);
    EventQueue &table_q = master.addEventQueue("tableQ", 1);
    EventQueue &shutdown_q = master.addEventQueue("shutdownQ", 1);

    split_q.on("split", [st](ThreadContext &ctx, const Event &e) {
        std::string region = e.payload.get("region", "r1a");
        // Figure 3, step (1): add the daughter region...
        st->regionsToOpen.put(ctx, kSplitPut, region, "OPENING");
        // ... steps (2)-(3): ask the HRS to open it (synchronous RPC
        // from the handler, standing in for the spawned thread t).
        ctx.rpcCall(kSplitCallOpen, "HRS", "openRegion",
                    Payload{}.set("region", region));
        // Impact-free bookkeeping: concurrent with the watcher's
        // counterpart (the RPC returned at enqueue time; the open
        // continues asynchronously) — fodder for static pruning.
        st->regionMetrics.write(ctx, "hb.master.split/metrics.write", 1);
    });

    table_q.on("alter", [st](ThreadContext &ctx, const Event &) {
        bool busy = !st->regionsToOpen.empty(ctx, kAlterEmpty);
        if (busy)
            ctx.abortNode(kAlterAbort,
                          "alter clashed with in-flight split");
        st->schemaVersion.write(ctx, kAlterSchema, "v2");
    });

    table_q.on("enable", [st](ThreadContext &ctx, const Event &) {
        Simulation &sim = ctx.sim();
        // Ordered against the RPC handler's write through Rule-Eenq:
        // a candidate only when event records are ablated (Table 9).
        st->enableRequested.read(ctx, kEnableReqRead);
        if (sim.coord().exists(ctx, kEnableExists, kUnassignedPath)) {
            sim.coord().getData(ctx, kEnableRead, kUnassignedPath);
            if (!sim.coord().remove(ctx, kEnableRemove, kUnassignedPath))
                ctx.abortNode(kEnableAbort,
                              "NoNode deleting unassigned znode");
        }
        st->tableState.write(ctx, kEnableState, "ENABLED");
    });

    shutdown_q.on("serverShutdown", [](ThreadContext &ctx, const Event &) {
        // Best-effort cleanup of the dead server's unassigned znode;
        // a failed delete is swallowed (the HB-4729 hazard).
        ctx.sim().coord().remove(ctx, kShutRemove, kUnassignedPath);
    });

    // Assignment-manager watcher on the unassigned znodes: its read
    // is ordered against the HRS's create through Rule-Mpush — a
    // candidate only when push records are ablated (Table 9).
    sim.coord().watch(master, "/hbase/unassigned/",
                      [](ThreadContext &ctx,
                         const CoordNotification &note) {
                          if (note.change == CoordChange::Created)
                              ctx.sim().coord().getData(
                                  ctx, kWatchUnassignedRead, note.path);
                      });

    // Push notifications from the region-state znode (Figure 3 steps
    // (6)-(8)): erase the opened region and enable the table when the
    // open set drains.
    sim.coord().watch(
        master, kRegionStatePrefix,
        [st](ThreadContext &ctx, const CoordNotification &note) {
            if (note.data != "OPENED")
                return;
            std::string region =
                note.path.substr(std::string(kRegionStatePrefix).size());
            st->regionMetrics.write(ctx,
                                    "hb.master.watch/metrics.write", 0);
            st->regionsToOpen.erase(ctx, kWatchErase, region);
            if (st->regionsToOpen.empty(ctx, kWatchEmpty))
                st->tableState.write(ctx, kWatchEnable, "ENABLED");
        });

    master.registerRpc(
        "splitTable", [](ThreadContext &ctx, const Payload &args) {
            int regions = static_cast<int>(args.getInt("regions", 1));
            for (int r = 0; r < regions; ++r)
                ctx.node().queue("splitQ").enqueue(
                    ctx, kSplitRpcEnq, "split",
                    Payload{}.set("region",
                                  "r1" +
                                      std::string(1, static_cast<char>(
                                                         'a' + r))));
            return Payload{}.set("ok", "1");
        });
    master.registerRpc("alterTable",
                       [](ThreadContext &ctx, const Payload &) {
                           ctx.node().queue("tableQ").enqueue(
                               ctx, kAlterRpcEnq, "alter");
                           return Payload{}.set("ok", "1");
                       });
    master.registerRpc("enableTable",
                       [st](ThreadContext &ctx, const Payload &) {
                           st->enableRequested.write(ctx, kEnableReqWrite,
                                                     1);
                           ctx.node().queue("tableQ").enqueue(
                               ctx, kEnableRpcEnq, "enable");
                           return Payload{}.set("ok", "1");
                       });
    master.registerRpc("getSchema",
                       [st](ThreadContext &ctx, const Payload &) {
                           std::string v =
                               st->schemaVersion.read(ctx, kGetSchemaRead);
                           if (v == "__corrupt")
                               ctx.throwUncaught(kGetSchemaThrow,
                                                 "corrupt schema");
                           return Payload{}.set("version", v);
                       });

    master.registerVerb("expireServer",
                        [](ThreadContext &ctx, const Payload &) {
                            ctx.node().queue("shutdownQ").enqueue(
                                ctx, kExpireEnq, "serverShutdown");
                        });

    master.registerVerb("hrsRegister",
                        [st](ThreadContext &ctx, const Payload &) {
                            st->hrsReady.write(ctx, kHrsReadyWrite, 1);
                            st->hrsReadyPlain = true;
                        });

    // Balancer thread: waits for HRS registration through an untraced
    // flag, then reads the traced mirror — serial report by design.
    sim.spawn(nullptr, master, "HMaster.balancer",
              [st](ThreadContext &ctx) {
                  ctx.blockUntil([st] { return st->hrsReadyPlain; });
                  Frame f(ctx, "balancer", ScopeKind::Event, "e:balancer");
                  if (st->hrsReady.read(ctx, kHrsReadyRead) != 1)
                      ctx.throwUncaught(kHrsReadyThrow,
                                        "balancer saw no region server");
              });
}

void
installHrs(Simulation &sim, Node &hrs, Workload workload)
{
    EventQueue &open_q = hrs.addEventQueue("openQ", 1);

    open_q.on("open", [](ThreadContext &ctx, const Event &e) {
        // Figure 3, steps (5)-(6): finish opening, publish the region
        // state znode so the master's watcher fires.
        ctx.sim().coord().create(
            ctx, kOpenZkSet,
            kRegionStatePrefix + e.payload.get("region", "r1a"),
            "OPENED");
    });

    hrs.registerRpc("openRegion",
                    [](ThreadContext &ctx, const Payload &args) {
                        // Figure 3, step (4): queue a region-open event.
                        ctx.node().queue("openQ").enqueue(
                            ctx, kOpenEnq, "open",
                            Payload{}.set("region",
                                          args.get("region", "r1a")));
                        return Payload{}.set("ok", "1");
                    });

    sim.spawn(nullptr, hrs, "HRS.startup",
              [workload](ThreadContext &ctx) {
                  Frame f(ctx, "hrsStartup", ScopeKind::Message,
                          "m:hrs-startup");
                  if (workload == Workload::EnableExpire4729)
                      ctx.sim().coord().create(ctx, kHrsCreateUnassigned,
                                               kUnassignedPath, "r1");
                  ctx.send("hb.hrs.startup/send.register", "HMaster",
                           "hrsRegister", Payload{});
              });
}

} // namespace

void
install(Simulation &sim, Workload workload, int regions)
{
    Node &master = sim.addNode("HMaster");
    Node &hrs = sim.addNode("HRS");
    Node &client = sim.addNode("client");

    auto st = std::make_shared<State>(master);
    installMaster(sim, master, st);
    installHrs(sim, hrs, workload);
    // HB-4729's workload touches far more code in the real system
    // than HB-4539's (paper Table 8: 60 MB vs. 26 MB full traces).
    if (workload == Workload::EnableExpire4729) {
        installBackgroundLoad(sim, master, 500);
        installBackgroundLoad(sim, hrs, 400);
        installBackgroundLoad(sim, client, 250);
    } else {
        installBackgroundLoad(sim, master, 200);
        installBackgroundLoad(sim, hrs, 150);
        installBackgroundLoad(sim, client, 100);
    }

    // A second client thread polls the schema concurrently with the
    // admin operations (benign race against the alter handler).
    if (workload == Workload::SplitAlter4539) {
        sim.spawn(nullptr, client, "client.monitor",
                  [](ThreadContext &ctx) {
                      ctx.pause(30);
                      ctx.rpcCall(kClientGetSchema, "HMaster", "getSchema",
                                  Payload{});
                      ctx.pause(55);
                      ctx.rpcCall(kClientGetSchema, "HMaster", "getSchema",
                                  Payload{});
                  });
    }

    sim.spawn(nullptr, client, "client.driver",
              [workload, regions](ThreadContext &ctx) {
                  ctx.pause(15); // let HRS create znodes and register
                  if (workload == Workload::SplitAlter4539) {
                      ctx.rpcCall(kClientSplit, "HMaster", "splitTable",
                                  Payload{}.setInt("regions", regions));
                      ctx.pause(60 + 25 * regions); // splits complete
                      ctx.rpcCall(kClientAlter, "HMaster", "alterTable",
                                  Payload{});
                      ctx.pause(30);
                  } else {
                      ctx.rpcCall(kClientEnable, "HMaster", "enableTable",
                                  Payload{});
                      ctx.pause(40); // enable normally completes
                      ctx.send(kClientExpire, "HMaster", "expireServer",
                               Payload{});
                      ctx.pause(40);
                  }
              });
}

model::ProgramModel
buildModel()
{
    model::ModelBuilder b;

    b.fn("HMaster.split")
        .write(kSplitPut, "map:HMaster/regionsToOpen")
        .rpcCall(kSplitCallOpen, "HRS.openRegion");

    b.fn("HMaster.alter")
        .read(kAlterEmpty, "map:HMaster/regionsToOpen")
        .failure(kAlterAbort, sim::FailureKind::Abort)
        .dep(kAlterAbort, {kAlterEmpty})
        .write(kAlterSchema, "var:HMaster/schemaVersion");

    b.fn("HMaster.enable")
        .read(kEnableReqRead, "var:HMaster/enableRequested")
        .read(kEnableExists, "znode:/hbase/unassigned/r1")
        .read(kEnableRead, "znode:/hbase/unassigned/r1")
        .write(kEnableRemove, "znode:/hbase/unassigned/r1")
        .failure(kEnableAbort, sim::FailureKind::Abort)
        .dep(kEnableRead, {kEnableExists})
        .dep(kEnableRemove, {kEnableExists})
        .dep(kEnableAbort, {kEnableRemove, kEnableExists, kEnableRead})
        .write(kEnableState, "var:HMaster/tableState");

    b.fn("HMaster.serverShutdown")
        .write(kShutRemove, "znode:/hbase/unassigned/r1");

    b.fn("HMaster.watchUnassigned")
        .read(kWatchUnassignedRead, "znode:/hbase/unassigned/r1");

    b.fn("HMaster.watchRegionState")
        .write(kWatchErase, "map:HMaster/regionsToOpen")
        .read(kWatchEmpty, "map:HMaster/regionsToOpen")
        .write(kWatchEnable, "var:HMaster/tableState")
        .dep(kWatchEnable, {kWatchEmpty});

    b.fn("HMaster.splitTable").rpc().inst(kSplitRpcEnq);
    b.fn("HMaster.alterTable").rpc().inst(kAlterRpcEnq);
    b.fn("HMaster.enableTable")
        .rpc()
        .write(kEnableReqWrite, "var:HMaster/enableRequested")
        .inst(kEnableRpcEnq);

    b.fn("HMaster.getSchema")
        .rpc()
        .read(kGetSchemaRead, "var:HMaster/schemaVersion")
        .failure(kGetSchemaThrow, sim::FailureKind::UncaughtException)
        .dep(kGetSchemaThrow, {kGetSchemaRead})
        .returns({kGetSchemaRead});

    b.fn("HMaster.expireServer").inst(kExpireEnq);
    b.fn("HMaster.hrsRegister")
        .write(kHrsReadyWrite, "var:HMaster/hrsReady");

    b.fn("HMaster.balancer")
        .read(kHrsReadyRead, "var:HMaster/hrsReady")
        .failure(kHrsReadyThrow, sim::FailureKind::UncaughtException)
        .dep(kHrsReadyThrow, {kHrsReadyRead});

    b.fn("HRS.openRegion").rpc().inst(kOpenEnq);
    b.fn("HRS.open").write(kOpenZkSet, "znode:/hbase/region/r1a");
    b.fn("HRS.startup")
        .write(kHrsCreateUnassigned, "znode:/hbase/unassigned/r1");


    b.fn("client.driver")
        .rpcCall(kClientSplit, "HMaster.splitTable")
        .rpcCall(kClientAlter, "HMaster.alterTable")
        .rpcCall(kClientEnable, "HMaster.enableTable")
        .rpcCall(kClientGetSchema, "HMaster.getSchema")
        .inst(kClientExpire);

    return b.build();
}

} // namespace dcatch::apps::hb
