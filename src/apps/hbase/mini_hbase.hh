/**
 * @file
 * Mini HBase: HMaster / HRegionServer (HRS) / client over the
 * framework's ZooKeeper-like coordination service, reproducing the
 * concurrency structure of the paper's two HBase benchmarks.
 *
 * HB-4539 (split table & alter table -> system master crash, OV):
 * the split handler adds daughter regions to the master's
 * regionsToOpen list and drives HRS region opening through an RPC,
 * an HRS event, a znode update, and a push notification back to the
 * master (exactly the Figure 3 chain — those accesses are ORDERED
 * and must not be reported).  The alter-table handler concurrently
 * reads regionsToOpen.isEmpty(); seeing a mid-split state kills the
 * master.
 *
 * HB-4729 (enable table & expire server -> system master crash, AV):
 * the server-shutdown handler best-effort deletes the region's
 * unassigned znode concurrently with the enable-table handler's
 * read-then-delete of the same znode; a delete sneaking between the
 * read and the delete makes the enable handler's delete fail and the
 * master aborts.
 */

#ifndef DCATCH_APPS_HBASE_MINI_HBASE_HH
#define DCATCH_APPS_HBASE_MINI_HBASE_HH

#include "model/program_model.hh"
#include "runtime/sim.hh"

namespace dcatch::apps::hb {

/// @{ @name Static site ids
// --- HB-4539 (split & alter) ---
inline constexpr const char *kSplitPut = "hb.master.split/regions.put";
inline constexpr const char *kSplitCallOpen = "hb.master.split/call.open";
inline constexpr const char *kOpenEnq = "hb.hrs.openRegion/enq.open";
inline constexpr const char *kOpenZkSet = "hb.hrs.open/zk.setOpened";
inline constexpr const char *kWatchErase = "hb.master.watch/regions.erase";
inline constexpr const char *kWatchEmpty = "hb.master.watch/regions.empty";
inline constexpr const char *kWatchEnable = "hb.master.watch/state.write";
inline constexpr const char *kAlterEmpty = "hb.master.alter/regions.empty";
inline constexpr const char *kAlterAbort = "hb.master.alter/abort";
inline constexpr const char *kAlterSchema = "hb.master.alter/schema.write";
inline constexpr const char *kGetSchemaRead = "hb.master.getSchema/read";
inline constexpr const char *kGetSchemaThrow = "hb.master.getSchema/throw";
inline constexpr const char *kSplitRpcEnq = "hb.master.splitTable/enq";
inline constexpr const char *kAlterRpcEnq = "hb.master.alterTable/enq";
// --- HB-4729 (enable & expire) ---
inline constexpr const char *kHrsCreateUnassigned =
    "hb.hrs.startup/zk.createUnassigned";
inline constexpr const char *kEnableExists = "hb.master.enable/zk.exists";
inline constexpr const char *kEnableRead = "hb.master.enable/zk.getData";
inline constexpr const char *kEnableRemove = "hb.master.enable/zk.delete";
inline constexpr const char *kEnableAbort = "hb.master.enable/abort";
inline constexpr const char *kEnableState = "hb.master.enable/state.write";
inline constexpr const char *kShutRemove = "hb.master.shutdown/zk.delete";
inline constexpr const char *kEnableRpcEnq = "hb.master.enableTable/enq";
inline constexpr const char *kEnableReqWrite =
    "hb.master.enableTable/req.write";
inline constexpr const char *kEnableReqRead =
    "hb.master.enable/req.read";
inline constexpr const char *kWatchUnassignedRead =
    "hb.master.watchUnassigned/zk.getData";
inline constexpr const char *kExpireEnq = "hb.master.expire/enq.shutdown";
// --- shared ---
inline constexpr const char *kHrsReadyWrite =
    "hb.master.hrsRegister/ready.write";
inline constexpr const char *kHrsReadyRead =
    "hb.master.balancer/ready.read";
inline constexpr const char *kHrsReadyThrow =
    "hb.master.balancer/throw";
inline constexpr const char *kClientSplit = "hb.client/call.split";
inline constexpr const char *kClientAlter = "hb.client/call.alter";
inline constexpr const char *kClientEnable = "hb.client/call.enable";
inline constexpr const char *kClientExpire = "hb.client/send.expire";
inline constexpr const char *kClientGetSchema =
    "hb.client/call.getSchema";
/// @}

/** Which HBase workload to drive. */
enum class Workload {
    SplitAlter4539,   ///< split table & alter table
    EnableExpire4729, ///< enable table & expire server
};

/**
 * Build the topology and workload drivers on @p sim.
 * @param regions number of regions the split workload divides
 *        (HB-4539 only); scaling it grows the Figure 3 chain count
 *        without changing the bugs — used by the scalability bench
 */
void install(sim::Simulation &sim, Workload workload, int regions = 1);

/** The HBase program model (shared by both workloads). */
model::ProgramModel buildModel();

} // namespace dcatch::apps::hb

#endif // DCATCH_APPS_HBASE_MINI_HBASE_HH
