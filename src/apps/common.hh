/**
 * @file
 * Helpers shared by the mini systems.
 */

#ifndef DCATCH_APPS_COMMON_HH
#define DCATCH_APPS_COMMON_HH

#include <memory>
#include <string>

#include "runtime/shared.hh"
#include "runtime/sim.hh"

namespace dcatch::apps {

/**
 * Spawn a background thread on @p node performing @p ops accesses to
 * node-local shared state *outside* any RPC/event/message handler.
 *
 * Real systems execute far more memory accesses than the slice DCatch
 * traces; this stands in for that bulk.  Under the default selective
 * policy (paper section 3.1.1) none of these accesses are recorded;
 * under full-memory tracing (the Table 8 configuration) all of them
 * are — reproducing the selective-vs-full trace-size gap.
 */
inline void
installBackgroundLoad(sim::Simulation &sim, sim::Node &node, int ops)
{
    auto counter = std::make_shared<sim::SharedVar<int>>(
        node, "localBookkeeping", 0);
    std::string site = "bg." + node.name() + "/bookkeeping.write";
    // Store the site string inside the closure (c_str() must stay
    // valid for the thread's lifetime).
    sim.spawn(nullptr, node, node.name() + ".bgload",
              [counter, ops, site](sim::ThreadContext &ctx) {
                  for (int i = 0; i < ops; ++i) {
                      counter->write(ctx, site.c_str(), i);
                      counter->read(ctx, site.c_str());
                  }
              },
              /*daemon=*/false);
}

} // namespace dcatch::apps

#endif // DCATCH_APPS_COMMON_HH
