/**
 * @file
 * Benchmark registry: the seven TaxDC-derived workloads of Table 3,
 * each binding a mini system topology, a workload driver, a program
 * model, the known root-cause bug sites, and the paper's reference
 * numbers for side-by-side reporting in the benches.
 */

#ifndef DCATCH_APPS_BENCHMARK_HH
#define DCATCH_APPS_BENCHMARK_HH

#include <functional>
#include <string>
#include <vector>

#include "model/program_model.hh"
#include "runtime/sim.hh"

namespace dcatch::apps {

/** Paper-reported numbers for one benchmark (for comparison prints). */
struct PaperNumbers
{
    int bugStatic = 0, benignStatic = 0, serialStatic = 0;
    int bugCallstack = 0, benignCallstack = 0, serialCallstack = 0;
    int taStatic = 0, taSpStatic = 0, taSpLpStatic = 0; ///< Table 5
    double baseSec = 0, tracingSec = 0, analysisSec = 0,
           pruningSec = 0;  ///< Table 6
    double traceMB = 0;     ///< Table 6
    double fullTraceMB = 0; ///< Table 8
};

/** Which mechanisms the mini system uses (Table 1). */
struct Mechanisms
{
    bool rpc = false;
    bool socket = false;
    bool customProtocol = false;
    bool threads = true;
    bool events = true;
};

/** One registered benchmark. */
struct Benchmark
{
    std::string id;       ///< e.g. "MR-3274"
    std::string system;   ///< e.g. "mini-mapreduce"
    std::string workload; ///< human-readable workload description
    std::string symptom;  ///< failure symptom (Table 3)
    std::string error;    ///< LE / LH / DE / DH (Table 3)
    std::string rootCause; ///< OV / AV (Table 3)
    Mechanisms mechanisms;
    PaperNumbers paper;

    /** Build the topology + workload drivers on a fresh Simulation. */
    std::function<void(sim::Simulation &)> build;

    /** The system's program model (WALA substitute). */
    std::function<model::ProgramModel()> buildModel;

    /**
     * Site-pair keys (detect::sitePair) of the known root-cause
     * DCbug(s) this workload was selected for.
     */
    std::vector<std::string> knownBugPairs;

    /** Simulation config for the monitored (correct) run. */
    sim::SimConfig config;
};

/** All seven benchmarks, in Table 3 order. */
const std::vector<Benchmark> &allBenchmarks();

/** Look up one benchmark by id (throws if unknown). */
const Benchmark &benchmark(const std::string &id);

} // namespace dcatch::apps

#endif // DCATCH_APPS_BENCHMARK_HH
